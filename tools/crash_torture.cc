// crash_torture: subprocess crash/recovery driver for the update journal.
//
// Each trial forks a child that runs a multi-threaded journaled update
// storm against a file-backed JournaledTree, SIGKILLs it at a random
// moment, then reopens the index in the parent and checks the full
// durability contract:
//
//   1. Open() succeeds and ValidateTree passes (structural invariants).
//   2. Committed-prefix semantics: thread t inserts ids t*kStride+0,1,2,…
//      in order and deletes its own oldest live id now and then, so the
//      set of t's ids present after recovery must be one contiguous
//      window [d, n) — any gap means a non-prefix of t's op sequence
//      survived.
//   3. Every surviving record's rectangle matches the deterministic
//      function of its id (no torn data pages leaked into the tree).
//   4. Leak-free space accounting: num_allocated == reachable tree pages
//      + journal region pages, exactly.
//
// --journal=off runs a no-kill baseline leg (storm to completion, clean
// close, reopen) to separate harness bugs from recovery bugs.
//
// Exit status: 0 all trials passed, 1 a check failed (the seed and trial
// are printed so the run can be replayed).

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "rtree/journaled_tree.h"

namespace {

using prtree::ConstNodeView;
using prtree::JournaledTree;
using prtree::kInvalidPageId;
using prtree::PageId;
using prtree::Record2;
using prtree::Rect2;
using prtree::Status;

// Ids are partitioned per thread so the prefix check can group them.
constexpr uint32_t kStride = 1u << 20;

Rect2 RectFor(uint32_t id) {
  // Deterministic, collision-friendly little boxes over [0, 1000)^2.
  std::mt19937 rng(id * 2654435761u + 12345u);
  std::uniform_real_distribution<double> pos(0.0, 1000.0);
  std::uniform_real_distribution<double> ext(0.1, 4.0);
  Rect2 r;
  r.lo = {pos(rng), pos(rng)};
  r.hi = {r.lo[0] + ext(rng), r.lo[1] + ext(rng)};
  return r;
}

struct Config {
  std::string backend = "file";
  std::string path = "/tmp/prtree_crash_torture.idx";
  int threads = 8;
  int trials = 8;
  int ops_per_thread = 4000;
  uint64_t seed = 42;
  bool journal = true;
  bool smoke = false;
  int max_kill_ms = 400;
};

JournaledTree<2>::Options TreeOptions(const Config& cfg) {
  JournaledTree<2>::Options o;
  o.backend = cfg.backend;
  o.device.block_size = 4096;
  o.journal.region_pages = 64;
  return o;
}

// ---- child ----------------------------------------------------------------

[[noreturn]] void RunChild(const Config& cfg, uint64_t trial_seed,
                           int ready_fd) {
  std::unique_ptr<JournaledTree<2>> t;
  Status st = JournaledTree<2>::Create(cfg.path, TreeOptions(cfg), &t);
  if (!st.ok()) {
    std::fprintf(stderr, "child: Create failed: %s\n", st.message().c_str());
    _exit(3);
  }
  // Tell the parent the storm is about to start, then run until killed.
  char ok = 'R';
  if (write(ready_fd, &ok, 1) != 1) _exit(3);
  close(ready_fd);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.threads));
  for (int tid = 0; tid < cfg.threads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937_64 rng(trial_seed * 977u + static_cast<uint64_t>(tid));
      const uint32_t base = static_cast<uint32_t>(tid) * kStride;
      uint32_t next = 0;     // next id to insert
      uint32_t oldest = 0;   // oldest id still live
      for (int op = 0; op < cfg.ops_per_thread; ++op) {
        const bool del = next - oldest > 4 && rng() % 4 == 0;
        if (del) {
          const uint32_t id = base + oldest;
          bool deleted = false;
          if (!t->Delete(Record2{RectFor(id), id}, &deleted).ok() ||
              !deleted) {
            _exit(4);  // a committed insert went missing mid-run
          }
          ++oldest;
        } else {
          const uint32_t id = base + next;
          if (!t->Insert(Record2{RectFor(id), id}).ok()) _exit(4);
          ++next;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  if (cfg.journal) {
    // Completed without being killed: leave the journal dirty on purpose
    // (exit without destructors) so the parent still exercises recovery.
    _exit(0);
  }
  t.reset();  // clean close: checkpoint + superblock write-out
  _exit(0);
}

// ---- parent checks --------------------------------------------------------

size_t CountReachablePages(prtree::FileBlockDevice* dev, PageId root) {
  if (root == kInvalidPageId) return 0;
  std::vector<uint8_t> mark(dev->num_pages(), 0);
  std::vector<PageId> stack{root};
  std::vector<std::byte> buf(dev->block_size());
  size_t n = 0;
  while (!stack.empty()) {
    PageId p = stack.back();
    stack.pop_back();
    if (p >= mark.size() || mark[p] != 0) continue;
    mark[p] = 1;
    ++n;
    if (!dev->ReadMeta(p, buf.data()).ok()) continue;
    ConstNodeView<2> node(buf.data(), dev->block_size());
    if (!node.IsFormatted() || node.is_leaf()) continue;
    for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
  }
  return n;
}

bool CheckRecovered(const Config& cfg, uint64_t trial_seed) {
  JournaledTree<2>::Options o = TreeOptions(cfg);
  std::unique_ptr<JournaledTree<2>> t;
  JournaledTree<2>::RecoveryReport rep;
  Status st = JournaledTree<2>::Open(cfg.path, o, &t, &rep);
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL(seed=%llu): Open: %s\n",
                 static_cast<unsigned long long>(trial_seed),
                 st.message().c_str());
    return false;
  }

  // Committed-prefix + data-integrity checks over a full-space query.
  Rect2 all;
  all.lo = {-1.0, -1.0};
  all.hi = {1100.0, 1100.0};
  std::vector<std::vector<uint32_t>> per_thread(
      static_cast<size_t>(cfg.threads));
  bool rects_ok = true;
  size_t emitted = 0;
  t->tree().Query(all, [&](const Record2& rec) {
    ++emitted;
    const uint32_t tid = rec.id / kStride;
    if (tid < per_thread.size()) per_thread[tid].push_back(rec.id % kStride);
    if (!(rec.rect == RectFor(rec.id))) rects_ok = false;
  });
  if (!rects_ok) {
    std::fprintf(stderr, "FAIL(seed=%llu): recovered rect != RectFor(id)\n",
                 static_cast<unsigned long long>(trial_seed));
    return false;
  }
  if (emitted != t->tree().size()) {
    std::fprintf(stderr,
                 "FAIL(seed=%llu): tree.size()=%llu but query emitted %zu\n",
                 static_cast<unsigned long long>(trial_seed),
                 static_cast<unsigned long long>(t->tree().size()), emitted);
    return false;
  }
  for (int tid = 0; tid < cfg.threads; ++tid) {
    auto& ids = per_thread[static_cast<size_t>(tid)];
    std::sort(ids.begin(), ids.end());
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      if (ids[i + 1] != ids[i] + 1) {
        std::fprintf(stderr,
                     "FAIL(seed=%llu): thread %d ids not contiguous "
                     "(%u then %u) — non-prefix recovery\n",
                     static_cast<unsigned long long>(trial_seed), tid,
                     ids[i], ids[i + 1]);
        return false;
      }
    }
  }

  // Leak check: after recovery's sweep + fresh checkpoint, every allocated
  // page is either a live tree page or part of the new journal region.
  const size_t reachable = CountReachablePages(
      t->device(), t->tree().empty() ? kInvalidPageId : t->tree().root());
  const size_t expected = reachable + t->journal().journal_pages();
  if (t->device()->num_allocated() != expected) {
    std::fprintf(stderr,
                 "FAIL(seed=%llu): num_allocated=%zu, want %zu "
                 "(%zu tree + %zu journal) — leaked pages\n",
                 static_cast<unsigned long long>(trial_seed),
                 t->device()->num_allocated(), expected, reachable,
                 t->journal().journal_pages());
    return false;
  }
  return true;
}

int RunTrial(const Config& cfg, int trial) {
  const uint64_t trial_seed = cfg.seed + static_cast<uint64_t>(trial);
  int pipefd[2];
  if (pipe(pipefd) != 0) {
    std::perror("pipe");
    return 1;
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    close(pipefd[0]);
    RunChild(cfg, trial_seed, pipefd[1]);
  }
  close(pipefd[1]);
  char ready = 0;
  if (read(pipefd[0], &ready, 1) != 1 || ready != 'R') {
    std::fprintf(stderr, "child never came up (trial %d)\n", trial);
    close(pipefd[0]);
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    return 1;
  }
  close(pipefd[0]);

  if (cfg.journal) {
    std::mt19937_64 rng(trial_seed ^ 0x9E3779B97F4A7C15ull);
    const int us = static_cast<int>(
        rng() % (static_cast<uint64_t>(cfg.max_kill_ms) * 1000 + 1));
    usleep(static_cast<useconds_t>(us));
    kill(pid, SIGKILL);
  }
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  if (!cfg.journal &&
      (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)) {
    std::fprintf(stderr, "baseline child failed (trial %d, status %d)\n",
                 trial, wstatus);
    return 1;
  }
  if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) >= 3) {
    std::fprintf(stderr, "child reported a mid-run failure (trial %d)\n",
                 trial);
    return 1;
  }
  return CheckRecovered(cfg, trial_seed) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--backend=", 10) == 0) {
      cfg.backend = arg + 10;
    } else if (std::strncmp(arg, "--path=", 7) == 0) {
      cfg.path = arg + 7;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      cfg.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      cfg.trials = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--ops-per-thread=", 17) == 0) {
      cfg.ops_per_thread = std::atoi(arg + 17);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      cfg.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--max-kill-ms=", 14) == 0) {
      cfg.max_kill_ms = std::atoi(arg + 14);
    } else if (std::strcmp(arg, "--journal=on") == 0) {
      cfg.journal = true;
    } else if (std::strcmp(arg, "--journal=off") == 0) {
      cfg.journal = false;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      cfg.smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: crash_torture [--backend=file|uring] [--path=P] "
                   "[--threads=N] [--trials=N] [--ops-per-thread=N] "
                   "[--seed=S] [--max-kill-ms=N] [--journal=on|off] "
                   "[--smoke]\n");
      return 2;
    }
  }
  if (cfg.smoke) {
    cfg.trials = std::min(cfg.trials, 3);
    cfg.threads = std::min(cfg.threads, 4);
    cfg.ops_per_thread = std::min(cfg.ops_per_thread, 800);
    cfg.max_kill_ms = std::min(cfg.max_kill_ms, 120);
  }
  if (cfg.threads < 1 || cfg.trials < 1 || cfg.ops_per_thread < 1) {
    std::fprintf(stderr, "--threads/--trials/--ops-per-thread must be >= 1\n");
    return 2;
  }

  for (int trial = 0; trial < cfg.trials; ++trial) {
    if (int rc = RunTrial(cfg, trial); rc != 0) {
      std::fprintf(stderr, "crash_torture: trial %d FAILED (seed=%llu)\n",
                   trial,
                   static_cast<unsigned long long>(
                       cfg.seed + static_cast<uint64_t>(trial)));
      return rc;
    }
  }
  std::remove(cfg.path.c_str());
  std::printf("crash_torture: %d/%d trials passed (backend=%s, journal=%s)\n",
              cfg.trials, cfg.trials, cfg.backend.c_str(),
              cfg.journal ? "on" : "off");
  return 0;
}
