#!/usr/bin/env bash
# Fails if any file under docs/ is unreachable from README.md.
#
# Reachability is a BFS over markdown references: README.md may link a doc
# directly ("docs/NAME.md"), and docs may link each other ("NAME.md" or
# "docs/NAME.md").  A doc nobody links is dead documentation — either link
# it or delete it.  Registered as the tier-1 ctest entry `docs_links_check`.
set -euo pipefail

root="${1:-.}"
cd "$root"

if [ ! -d docs ]; then
  echo "no docs/ directory under $root" >&2
  exit 1
fi

declare -A reachable
queue=()

# Seed: docs referenced from README.md.
for doc in docs/*.md; do
  name="$(basename "$doc")"
  if grep -qF "docs/$name" README.md; then
    reachable["$name"]=1
    queue+=("$name")
  fi
done

# BFS: docs referenced from reachable docs.
while [ "${#queue[@]}" -gt 0 ]; do
  cur="${queue[0]}"
  queue=("${queue[@]:1}")
  for doc in docs/*.md; do
    name="$(basename "$doc")"
    [ -n "${reachable[$name]:-}" ] && continue
    # Escape regex metacharacters and require a non-word char (or line
    # start) before the name, so FOO.md never matches inside IO_FOO.md.
    esc="$(printf '%s' "$name" | sed 's/[][\.*^$()+?{|]/\\&/g')"
    if grep -qE "(^|[^A-Za-z0-9_])(docs/)?$esc" "docs/$cur"; then
      reachable["$name"]=1
      queue+=("$name")
    fi
  done
done

status=0
for doc in docs/*.md; do
  name="$(basename "$doc")"
  if [ -z "${reachable[$name]:-}" ]; then
    echo "FAIL: docs/$name is not reachable from README.md" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "docs reachability OK (${#reachable[@]} docs reachable from README.md)"
fi
exit "$status"
