#!/usr/bin/env python3
"""Render BENCH JSON into the committed docs/eval/ figures.

Consumes the per-bench JSON written by `run_eval.py` (one
`<bench>.memory.json` per figure, the harness/bench_json.h schema:
{"bench", "params", "tables": [{"name", "columns", "rows"}]}) and emits,
for every figure in FIGURES:

  docs/eval/<bench>.md         parameters + markdown tables
  docs/eval/<bench>[.chart].svg  hand-rolled deterministic SVG plots

Only stdlib is used (the container has no matplotlib) and the output is
byte-deterministic: timing columns (seconds / *_ms / speedup) are dropped
before rendering, floats are formatted with fixed precision, and nothing
depends on dict order, clocks or randomness.  Re-running the eval at the
committed sizes therefore regenerates docs/eval/ byte-identically — that is
what CI's eval-smoke job checks.
"""

import json
import math
import os

# ----------------------------------------------------------------------------
# Palette (light mode, validated): categorical hues are assigned to the
# paper's variants in fixed order and never cycled; text wears ink tokens,
# never the series color.

VARIANT_COLORS = {
    "PR": "#2a78d6",   # blue — the protagonist
    "H": "#eb6834",    # orange
    "H4": "#1baf7a",   # aqua-green
    "TGS": "#eda100",  # yellow
    "STR": "#e87ba4",  # magenta
}
FALLBACK_COLORS = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4"]

SURFACE = "#fcfcfb"
INK = "#0b0b0b"
INK_SECONDARY = "#52514e"
INK_MUTED = "#898781"
GRID = "#e1e0d9"
AXIS = "#c3c2b7"
FONT = "font-family=\"system-ui,-apple-system,sans-serif\""

TIMING_MARKERS = ("seconds", "_ms", "speedup")


def is_timing(column):
    return any(m in column for m in TIMING_MARKERS)


def series_color(name, idx):
    key = name.split("_")[0].upper()
    return VARIANT_COLORS.get(key, FALLBACK_COLORS[idx % len(FALLBACK_COLORS)])


def series_label(name):
    """"PR_pct_of_optimal" -> "PR", "pr_io" -> "PR", else the raw name."""
    key = name.split("_")[0].upper()
    if key in VARIANT_COLORS:
        return key
    return name


def fmt_num(v):
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float):
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return f"{v:.4g}"
    return str(v)


def fmt_tick(v):
    """Axis tick label: compact, deterministic."""
    a = abs(v)
    if a >= 1e6 and v == int(v):
        return fmt_num(v / 1e6) + "M"
    if a >= 1e4 and v == int(v):
        return fmt_num(v / 1e3) + "k"
    return fmt_num(round(v, 6))


# ----------------------------------------------------------------------------
# SVG primitives.  Coordinates are rounded to 2 decimals so output bytes do
# not depend on platform float printing quirks.


def _c(x):
    s = f"{x:.2f}"
    return s[:-3] if s.endswith(".00") else s


def nice_ticks(lo, hi, target=5):
    if hi <= lo:
        hi = lo + 1
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / target))
    for mult in (1, 2, 2.5, 5, 10):
        if span / (step * mult) <= target:
            step *= mult
            break
    # Cover the full data range: the scale's domain is [min(ticks),
    # max(ticks)], so a max tick below `hi` would push points off the plot.
    start = math.floor(lo / step) * step
    end = math.ceil(hi / step - 1e-9) * step
    ticks = []
    i = 0
    while start + i * step <= end + step * 1e-9:
        ticks.append(round(start + i * step, 10))
        i += 1
    return ticks


def log_ticks(lo, hi):
    ticks = []
    d = math.floor(math.log10(lo))
    while 10 ** d <= hi * (1 + 1e-9):
        if 10 ** d >= lo * (1 - 1e-9):
            ticks.append(10 ** d)
        d += 1
    return ticks


class Svg:
    W, H = 640, 360
    ML, MR, MT, MB = 72, 16, 34, 48

    def __init__(self, title):
        self.parts = [
            f"<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{self.W}\" "
            f"height=\"{self.H}\" viewBox=\"0 0 {self.W} {self.H}\">",
            f"<rect width=\"{self.W}\" height=\"{self.H}\" fill=\"{SURFACE}\"/>",
            f"<text x=\"{self.ML}\" y=\"20\" {FONT} font-size=\"14\" "
            f"font-weight=\"600\" fill=\"{INK}\">{esc(title)}</text>",
        ]

    def plot_rect(self):
        return (self.ML, self.MT, self.W - self.MR, self.H - self.MB)

    def add(self, s):
        self.parts.append(s)

    def finish(self):
        self.parts.append("</svg>")
        return "\n".join(self.parts) + "\n"


def esc(s):
    return (str(s).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


class Scale:
    def __init__(self, lo, hi, out_lo, out_hi, log=False):
        self.log = log and lo > 0
        self.lo, self.hi = (math.log10(lo), math.log10(hi)) if self.log \
            else (lo, hi)
        if self.hi <= self.lo:
            self.hi = self.lo + 1
        self.out_lo, self.out_hi = out_lo, out_hi

    def __call__(self, v):
        x = math.log10(v) if self.log else v
        f = (x - self.lo) / (self.hi - self.lo)
        return self.out_lo + f * (self.out_hi - self.out_lo)


def draw_axes(svg, sx, sy, xticks, yticks, xlabel, ylabel):
    x0, y0, x1, y1 = svg.plot_rect()
    for t in yticks:
        y = sy(t)
        svg.add(f"<line x1=\"{_c(x0)}\" y1=\"{_c(y)}\" x2=\"{_c(x1)}\" "
                f"y2=\"{_c(y)}\" stroke=\"{GRID}\" stroke-width=\"1\"/>")
        svg.add(f"<text x=\"{_c(x0 - 6)}\" y=\"{_c(y + 3.5)}\" {FONT} "
                f"font-size=\"11\" text-anchor=\"end\" "
                f"fill=\"{INK_MUTED}\">{fmt_tick(t)}</text>")
    svg.add(f"<line x1=\"{_c(x0)}\" y1=\"{_c(y1)}\" x2=\"{_c(x1)}\" "
            f"y2=\"{_c(y1)}\" stroke=\"{AXIS}\" stroke-width=\"1\"/>")
    for t in xticks:
        x = sx(t)
        svg.add(f"<line x1=\"{_c(x)}\" y1=\"{_c(y1)}\" x2=\"{_c(x)}\" "
                f"y2=\"{_c(y1 + 4)}\" stroke=\"{AXIS}\" stroke-width=\"1\"/>")
        svg.add(f"<text x=\"{_c(x)}\" y=\"{_c(y1 + 17)}\" {FONT} "
                f"font-size=\"11\" text-anchor=\"middle\" "
                f"fill=\"{INK_MUTED}\">{fmt_tick(t)}</text>")
    svg.add(f"<text x=\"{_c((x0 + x1) / 2)}\" y=\"{svg.H - 10}\" {FONT} "
            f"font-size=\"12\" text-anchor=\"middle\" "
            f"fill=\"{INK_SECONDARY}\">{esc(xlabel)}</text>")
    svg.add(f"<text x=\"14\" y=\"{_c((y0 + y1) / 2)}\" {FONT} "
            f"font-size=\"12\" text-anchor=\"middle\" "
            f"fill=\"{INK_SECONDARY}\" transform=\"rotate(-90 14 "
            f"{_c((y0 + y1) / 2)})\">{esc(ylabel)}</text>")


def draw_legend(svg, names_colors):
    if len(names_colors) < 2:
        return  # a single series is named by the title
    x = svg.plot_rect()[2]
    x -= sum(18 + 8 * len(n) + 14 for n, _ in names_colors)
    y = 20
    for name, color in names_colors:
        svg.add(f"<rect x=\"{_c(x)}\" y=\"{y - 9}\" width=\"12\" "
                f"height=\"12\" rx=\"2\" fill=\"{color}\"/>")
        svg.add(f"<text x=\"{_c(x + 18)}\" y=\"{y + 1}\" {FONT} "
                f"font-size=\"12\" fill=\"{INK_SECONDARY}\">{esc(name)}"
                f"</text>")
        x += 18 + 8 * len(name) + 14


def line_chart(title, xlabel, ylabel, xs, series, logx=False, logy=False):
    """series: list of (name, [y...]) aligned with xs."""
    svg = Svg(title)
    x0, y0, x1, y1 = svg.plot_rect()
    ys = [v for _, vals in series for v in vals if v is not None]
    ylo, yhi = min(ys + [0]) if not logy else min(ys), max(ys)
    yticks = log_ticks(ylo, yhi) if logy else nice_ticks(ylo, yhi)
    if not logy:
        ylo, yhi = min(yticks), max(yticks)
    if logx:
        xticks = log_ticks(min(xs), max(xs))
        if len(xticks) < 2:  # under two decades: mark the data points
            xticks = sorted(set(xs))
    else:
        xticks = xs if len(xs) <= 8 else nice_ticks(min(xs), max(xs))
    sx = Scale(min(xs), max(xs), x0 + 8, x1 - 8, log=logx)
    sy = Scale(ylo, yhi, y1, y0 + 6, log=logy)
    draw_axes(svg, sx, sy, xticks, yticks, xlabel, ylabel)
    legend = []
    for i, (name, vals) in enumerate(series):
        color = series_color(name, i)
        pts = [(sx(x), sy(v)) for x, v in zip(xs, vals) if v is not None]
        path = " ".join(f"{_c(px)},{_c(py)}" for px, py in pts)
        svg.add(f"<polyline points=\"{path}\" fill=\"none\" "
                f"stroke=\"{color}\" stroke-width=\"2\" "
                f"stroke-linejoin=\"round\"/>")
        for px, py in pts:
            svg.add(f"<circle cx=\"{_c(px)}\" cy=\"{_c(py)}\" r=\"4\" "
                    f"fill=\"{color}\" stroke=\"{SURFACE}\" "
                    f"stroke-width=\"2\"/>")
        legend.append((series_label(name), color))
    draw_legend(svg, legend)
    return svg.finish()


def bar_chart(title, xlabel, ylabel, labels, values, colors=None):
    svg = Svg(title)
    x0, y0, x1, y1 = svg.plot_rect()
    yticks = nice_ticks(min(0, min(values)), max(values))
    sy = Scale(min(yticks), max(yticks), y1, y0 + 6)
    draw_axes(svg, sy=sy, sx=lambda v: v, xticks=[], yticks=yticks,
              xlabel=xlabel, ylabel=ylabel)
    n = len(labels)
    slot = (x1 - x0) / n
    width = min(56.0, slot * 0.6)
    for i, (label, value) in enumerate(zip(labels, values)):
        color = colors[i] if colors else series_color(str(label), i)
        cx = x0 + slot * (i + 0.5)
        top = sy(value)
        base = sy(max(min(yticks), 0))  # bars anchor to the zero line
        svg.add(f"<rect x=\"{_c(cx - width / 2)}\" y=\"{_c(top)}\" "
                f"width=\"{_c(width)}\" height=\"{_c(max(base - top, 0))}\" "
                f"rx=\"4\" fill=\"{color}\"/>")
        svg.add(f"<text x=\"{_c(cx)}\" y=\"{_c(top - 6)}\" {FONT} "
                f"font-size=\"11\" text-anchor=\"middle\" fill=\"{INK}\">"
                f"{fmt_num(round(value, 2))}</text>")
        svg.add(f"<text x=\"{_c(cx)}\" y=\"{_c(y1 + 17)}\" {FONT} "
                f"font-size=\"11\" text-anchor=\"middle\" "
                f"fill=\"{INK_SECONDARY}\">{esc(label)}</text>")
    return svg.finish()


# ----------------------------------------------------------------------------
# Per-figure specs: which table becomes which chart.  `series="auto"` plots
# every numeric non-timing column except x and avg_results.

FIGURES = {
    "fig09_bulkload_tiger": {
        "title": "Figure 9: bulk-load cost on TIGER-like data",
        "charts": [{"table": "build", "kind": "bar_grouped",
                    "label": ["region", "variant"],
                    "value": "blocks_per_record",
                    "ylabel": "build I/O (blocks per record)"}],
    },
    "fig10_bulkload_scaling": {
        "title": "Figure 10: bulk-load I/O vs dataset size",
        "charts": [{"table": "build_io", "kind": "line", "x": "records",
                    "series": ["H_io", "H4_io", "PR_io", "TGS_io"],
                    "ylabel": "build I/O (blocks)"}],
    },
    "fig11_tgs_synthetic": {
        "title": "Figure 11: TGS build cost on synthetic data",
        "charts": [{"table": "tgs_build", "kind": "bar",
                    "label": ["dataset"], "value": "tgs_over_pr_io",
                    "ylabel": "TGS / PR build I/O"}],
    },
    "fig12_query_western": {
        "title": "Figure 12: query cost, TIGER-like Western",
        "charts": [{"table": "query_cost", "kind": "line",
                    "x": "query_area_pct", "series": "auto",
                    "xlabel": "query area (% of extent)",
                    "ylabel": "leaf I/O (% of optimal T/B)"}],
    },
    "fig13_query_eastern": {
        "title": "Figure 13: query cost, TIGER-like Eastern",
        "charts": [{"table": "query_cost", "kind": "line",
                    "x": "query_area_pct", "series": "auto",
                    "xlabel": "query area (% of extent)",
                    "ylabel": "leaf I/O (% of optimal T/B)"}],
    },
    "fig14_query_scaling": {
        "title": "Figure 14: query cost vs dataset size",
        "charts": [{"table": "query_cost", "kind": "line", "x": "records",
                    "series": "auto",
                    "ylabel": "leaf I/O (% of optimal T/B)"}],
    },
    "fig15_query_synthetic": {
        "title": "Figure 15: query cost on synthetic families",
        "charts": [
            {"table": "size", "kind": "line", "x": "max_side",
             "series": "auto", "logx": True, "suffix": "size",
             "ylabel": "leaf I/O (% of optimal T/B)"},
            {"table": "aspect", "kind": "line", "x": "aspect",
             "series": "auto", "logx": True, "suffix": "aspect",
             "ylabel": "leaf I/O (% of optimal T/B)"},
            {"table": "skewed", "kind": "line", "x": "c", "series": "auto",
             "suffix": "skewed",
             "ylabel": "leaf I/O (% of optimal T/B)"},
        ],
    },
    "table1_cluster": {
        "title": "Table 1: CLUSTER worst-case queries",
        "charts": [{"table": "cluster_query", "kind": "bar",
                    "label": ["variant"], "value": "pct_tree_visited",
                    "ylabel": "% of tree visited per query"}],
    },
    "thm3_worstcase": {
        "title": "Theorem 3: empty queries on the worst-case grid",
        "charts": [{"table": "worstcase", "kind": "bar",
                    "label": ["variant"], "value": "pct_leaves",
                    "ylabel": "% of leaves visited (empty query)"}],
    },
    "ablation_block_size": {
        "title": "Ablation: block size",
        "charts": [{"table": "block_size", "kind": "line", "x": "block_size",
                    "series": ["pct_of_optimal"], "logx": True,
                    "ylabel": "leaf I/O (% of optimal T/B)"}],
    },
    "ablation_cache": {
        "title": "Ablation: internal-node caching",
        "charts": [{"table": "cache", "kind": "bar", "label": ["variant"],
                    "value": "overhead_pct",
                    "ylabel": "uncached overhead (%)"}],
    },
    "ablation_memory": {
        "title": "Ablation: memory budget vs build I/O",
        "charts": [{"table": "memory", "kind": "line", "x": "memory_kb",
                    "series": ["pr_io", "h_io"], "logx": True,
                    "xlabel": "memory budget (KB)",
                    "ylabel": "build I/O (blocks)"}],
    },
    "ablation_priority_size": {
        "title": "Ablation: priority-leaf fill fraction",
        "charts": [{"table": "priority_fill", "kind": "line", "x": "fill",
                    "series": ["pct_of_optimal"],
                    "ylabel": "leaf I/O (% of optimal T/B)"}],
    },
    "ablation_query_bound": {
        "title": "Ablation: Theorem 1 constant",
        "charts": [{"table": "bound", "kind": "line", "x": "n",
                    "series": ["pr_constant"],
                    "ylabel": "measured c in c*sqrt(N/B)"}],
    },
    "ablation_updates": {
        "title": "Ablation: updates",
        "charts": [{"table": "updates", "kind": "bar",
                    "label": ["configuration"], "value": "leaves_per_query",
                    "ylabel": "leaves per stabbing query"}],
    },
}


def get_table(doc, name):
    for t in doc["tables"]:
        if t["name"] == name:
            return t
    return None


def markdown_table(table):
    keep = [i for i, c in enumerate(table["columns"]) if not is_timing(c)]
    cols = [table["columns"][i] for i in keep]
    lines = ["| " + " | ".join(cols) + " |",
             "|" + "|".join("---" for _ in cols) + "|"]
    for row in table["rows"]:
        lines.append("| " + " | ".join(fmt_num(row[i]) for i in keep) + " |")
    return "\n".join(lines)


def auto_series(table, x):
    skip = {x, "avg_results"}
    return [c for c in table["columns"]
            if c not in skip and not is_timing(c)
            and any(isinstance(r[table["columns"].index(c)], (int, float))
                    for r in table["rows"])]


def render_chart(doc, spec, title):
    table = get_table(doc, spec["table"])
    if table is None or not table["rows"]:
        return None
    cols = table["columns"]
    if spec["kind"] == "line":
        xi = cols.index(spec["x"])
        names = (auto_series(table, spec["x"]) if spec["series"] == "auto"
                 else spec["series"])
        xs = [r[xi] for r in table["rows"]]
        series = [(n, [r[cols.index(n)] for r in table["rows"]])
                  for n in names]
        return line_chart(title, spec.get("xlabel", spec["x"]),
                          spec["ylabel"], xs, series,
                          logx=spec.get("logx", False),
                          logy=spec.get("logy", False))
    vi = cols.index(spec["value"])
    lis = [cols.index(c) for c in spec["label"]]
    labels = [" ".join(str(r[i]) for i in lis) for r in table["rows"]]
    if spec["kind"] == "bar_grouped":
        # color by the last label component (the variant), label with both
        colors = [series_color(str(r[lis[-1]]), i)
                  for i, r in enumerate(table["rows"])]
    else:
        colors = [series_color(labels[i], i) for i in range(len(labels))]
    values = [r[vi] for r in table["rows"]]
    return bar_chart(title, "", spec["ylabel"], labels, values, colors)


def render_figure(doc, out_dir):
    name = doc["bench"]
    spec = FIGURES[name]
    images = []
    for chart in spec["charts"]:
        svgtext = render_chart(doc, chart, spec["title"] +
                               (f" — {chart['suffix']}" if "suffix" in chart
                                else ""))
        if svgtext is None:
            continue
        fname = name + ("." + chart["suffix"] if "suffix" in chart else "") \
            + ".svg"
        with open(os.path.join(out_dir, fname), "w") as f:
            f.write(svgtext)
        images.append(fname)

    lines = [f"# {spec['title']}", "",
             f"Generated by `tools/eval/run_eval.py` from "
             f"`{name} --json` output; counters only "
             f"(timing columns are dropped — see docs/BENCH_FORMAT.md).", ""]
    params = doc.get("params", {})
    if params:
        lines.append("Parameters: " +
                     ", ".join(f"{k}={fmt_num(v)}"
                               for k, v in sorted(params.items())) + ".")
        lines.append("")
    for img in images:
        lines.append(f"![{spec['title']}]({img})")
        lines.append("")
    for table in doc["tables"]:
        lines.append(f"## {table['name']}")
        lines.append("")
        lines.append(markdown_table(table))
        lines.append("")
    with open(os.path.join(out_dir, name + ".md"), "w") as f:
        f.write("\n".join(lines))


def render_all(results_dir, out_dir, device="memory"):
    os.makedirs(out_dir, exist_ok=True)
    rendered = []
    for name in sorted(FIGURES):
        path = os.path.join(results_dir, f"{name}.{device}.json")
        if not os.path.exists(path):
            continue
        with open(path) as f:
            doc = json.load(f)
        render_figure(doc, out_dir)
        rendered.append(name)
    return rendered


# ----------------------------------------------------------------------------


def self_test():
    """Render a fixture twice into temp dirs; the bytes must match."""
    import tempfile
    fixture = {
        "bench": "fig12_query_western",
        "params": {"n": 1000, "queries": 4, "seed": 1, "device": "memory"},
        "tables": [{
            "name": "query_cost",
            "columns": ["query_area_pct", "avg_results",
                        "TGS_pct_of_optimal", "PR_pct_of_optimal",
                        "H_pct_of_optimal", "H4_pct_of_optimal"],
            "rows": [[0.25, 10, 300.0, 250.0, 400.5, 500.25],
                     [1.0, 40, 200.0, 150.0, 300.5, 400.25],
                     [2.0, 80, 150.0, 120.0, 250.5, 300.25]],
        }],
    }
    bar_fixture = {
        "bench": "table1_cluster",
        "params": {"n": 1000},
        "tables": [{
            "name": "cluster_query",
            "columns": ["variant", "avg_leaf_io", "pct_tree_visited",
                        "avg_results", "build_io"],
            "rows": [["H", 50.0, 40.0, 3, 100], ["PR", 2.0, 1.5, 3, 120]],
        }],
    }
    outputs = []
    for _ in range(2):
        with tempfile.TemporaryDirectory() as tmp:
            for doc in (fixture, bar_fixture):
                render_figure(doc, tmp)
            blob = {}
            for f in sorted(os.listdir(tmp)):
                with open(os.path.join(tmp, f), "rb") as fh:
                    blob[f] = fh.read()
            outputs.append(blob)
    assert outputs[0] == outputs[1], "renderer is not deterministic"
    files = sorted(outputs[0])
    assert files == ["fig12_query_western.md", "fig12_query_western.svg",
                     "table1_cluster.md", "table1_cluster.svg"], files
    svg = outputs[0]["fig12_query_western.svg"].decode()
    assert VARIANT_COLORS["PR"] in svg and VARIANT_COLORS["TGS"] in svg
    assert "</svg>" in svg
    md = outputs[0]["fig12_query_western.md"].decode()
    assert "| query_area_pct |" in md and "300.2" in md
    # Timing columns must never reach the committed docs.
    timing_doc = {
        "bench": "ablation_memory", "params": {},
        "tables": [{"name": "memory",
                    "columns": ["memory_kb", "pr_io", "pr_seconds", "h_io",
                                "pr_over_h"],
                    "rows": [[512, 100, 1.23456, 50, 2.0],
                             [1024, 90, 0.5, 45, 2.0]]}],
    }
    with tempfile.TemporaryDirectory() as tmp:
        render_figure(timing_doc, tmp)
        with open(os.path.join(tmp, "ablation_memory.md")) as f:
            md = f.read()
        assert "pr_seconds" not in md and "1.23456" not in md
    print("render.py self-test OK")


if __name__ == "__main__":
    self_test()
