#!/usr/bin/env python3
"""Reproduce the paper's figures from the repo's bench binaries.

One command regenerates everything the evaluation chapter commits:

    cmake -B build -S . && cmake --build build -j
    python3 tools/eval/run_eval.py --quick     # CI sizes, ~a minute
    python3 tools/eval/run_eval.py             # paper-scale sizes

For every figure bench (fig09..fig15, table1, thm3, ablation_*) the driver
runs the binary once per storage backend (--device=memory|file|uring) with
--json, collects the raw JSON under tools/eval/results/ (gitignored), then

  1. cross-checks the backends: after dropping timing keys the three JSON
     documents must be identical — leaf I/Os and result counts are
     properties of the algorithm, not the storage stack (docs/IO_MODEL.md);
  2. renders the *memory* run into committed markdown + SVG under
     docs/eval/ (tools/eval/render.py, stdlib-only, byte-deterministic).

The committed docs/eval/ files are generated at the --quick sizes, so CI
can re-run the whole pipeline and `git diff --exit-code docs/eval` — a
drifting counter or a nondeterministic renderer fails the eval-smoke job.
Without --quick the benches run at their paper-scale defaults (same
figures, bigger N; the rendered output then intentionally differs from the
committed quick-size output — inspect it, don't commit it, or re-commit a
new quick baseline as docs/BENCH_FORMAT.md describes).

The out-of-core scale leg (outofcore_sweep --records) is separate: it runs
only with --records=SPEC (e.g. --records=10M..100M), writes
tools/eval/results/BENCH_scale.json, and is gated by tools/bench_compare.py
against bench/baselines/scale.json rather than rendered.

Exit status is nonzero if any bench fails, any cross-device check differs,
or (with --check) the rendered docs do not match the committed ones.
"""

import argparse
import filecmp
import json
import os
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import render  # noqa: E402

ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
RESULTS_DIR = os.path.join(ROOT, "tools", "eval", "results")
DOCS_DIR = os.path.join(ROOT, "docs", "eval")
DEVICES = ["memory", "file", "uring"]

# Quick sizes are chosen so the whole matrix finishes in about a minute on
# one CI core while every internal sweep still produces all of its points.
# Full mode runs each bench at its paper-scale default (no --n override).
BENCHES = {
    "fig09_bulkload_tiger": {"n": 40000, "queries": 32},
    "fig10_bulkload_scaling": {"n": 64000, "queries": 32},
    "fig11_tgs_synthetic": {"n": 30000, "queries": 32},
    "fig12_query_western": {"n": 40000, "queries": 32},
    "fig13_query_eastern": {"n": 40000, "queries": 32},
    "fig14_query_scaling": {"n": 64000, "queries": 32},
    "fig15_query_synthetic": {"n": 30000, "queries": 32},
    "table1_cluster": {"n": 40000, "queries": 32},
    "thm3_worstcase": {"n": 16000, "queries": 32},
    "ablation_block_size": {"n": 40000, "queries": 32},
    "ablation_cache": {"n": 40000, "queries": 32},
    "ablation_memory": {"n": 64000, "queries": 32},
    "ablation_priority_size": {"n": 30000, "queries": 32},
    "ablation_query_bound": {},  # sweeps its own grid sizes
    "ablation_updates": {"n": 24000, "queries": 32},
}

TIMING_MARKERS = ("seconds", "_ms", "speedup")


def strip_timing(obj):
    if isinstance(obj, dict):
        return {k: strip_timing(v) for k, v in obj.items()
                if not any(m in k for m in TIMING_MARKERS)}
    if isinstance(obj, list):
        return [strip_timing(v) for v in obj]
    return obj


def strip_device(doc):
    doc = dict(doc)
    params = dict(doc.get("params", {}))
    params.pop("device", None)
    doc["params"] = params
    # Timing lives in table *cells*, keyed by column name — drop those
    # columns, not just dict keys.
    tables = []
    for t in doc.get("tables", []):
        keep = [i for i, c in enumerate(t["columns"])
                if not any(m in c for m in TIMING_MARKERS)]
        tables.append({"name": t["name"],
                       "columns": [t["columns"][i] for i in keep],
                       "rows": [[r[i] for i in keep] for r in t["rows"]]})
    doc["tables"] = tables
    return doc


def run_bench(bench_dir, name, device, quick, extra=()):
    binary = os.path.join(bench_dir, name)
    if not os.path.exists(binary):
        sys.exit(f"bench binary not found: {binary} (build the repo first: "
                 "cmake -B build -S . && cmake --build build -j)")
    out = os.path.join(RESULTS_DIR, f"{name}.{device}.json")
    cmd = [binary, f"--device={device}", f"--json={out}"]
    if quick:
        cmd += [f"--{k}={v}" for k, v in BENCHES[name].items()]
    cmd += list(extra)
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        print(proc.stdout)
        sys.exit(f"FAILED: {' '.join(cmd)}")
    return out


def cross_device_check(name, paths):
    docs = []
    for p in paths:
        with open(p) as f:
            docs.append(strip_timing(strip_device(json.load(f))))
    for device, doc in zip(DEVICES[1:], docs[1:]):
        if doc != docs[0]:
            return f"{name}: {device} run differs from memory run"
    return None


def run_scale_leg(bench_dir, records, out_path):
    binary = os.path.join(bench_dir, "outofcore_sweep")
    cmd = [binary, f"--records={records}", f"--out={out_path}"]
    print(f"[scale] {' '.join(cmd)}")
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        sys.exit("FAILED: out-of-core scale leg")
    baseline = os.path.join(ROOT, "bench", "baselines", "scale.json")
    compare = os.path.join(ROOT, "tools", "bench_compare.py")
    if os.path.exists(baseline):
        print("[scale] note: bench/baselines/scale.json gates the --smoke "
              "sizes; full-size runs are compared only for deterministic="
              "true")
        with open(out_path) as f:
            doc = json.load(f)
        if doc.get("deterministic") is not True:
            sys.exit("scale leg: deterministic != true")
    return compare


def regenerate_docs(check):
    """Render into docs/eval (or, with check=True, diff against it)."""
    if not check:
        rendered = render.render_all(RESULTS_DIR, DOCS_DIR)
        return rendered, []
    with tempfile.TemporaryDirectory() as tmp:
        rendered = render.render_all(RESULTS_DIR, tmp)
        diffs = []
        for f in sorted(os.listdir(tmp)):
            committed = os.path.join(DOCS_DIR, f)
            if not os.path.exists(committed):
                diffs.append(f"missing committed file: docs/eval/{f}")
            elif not filecmp.cmp(os.path.join(tmp, f), committed,
                                 shallow=False):
                diffs.append(f"docs/eval/{f} differs from regenerated "
                             "output")
        return rendered, diffs


def main():
    ap = argparse.ArgumentParser(
        description="run the figure matrix and regenerate docs/eval/")
    ap.add_argument("--quick", action="store_true",
                    help="CI sizes (the committed docs/eval baseline)")
    ap.add_argument("--bench-dir", default=os.path.join(ROOT, "build",
                                                        "bench"),
                    help="directory with the built bench binaries")
    ap.add_argument("--figures", default="",
                    help="only run benches whose name contains this "
                         "substring")
    ap.add_argument("--devices", default=",".join(DEVICES),
                    help="comma list of backends (default memory,file,"
                         "uring)")
    ap.add_argument("--records", default="",
                    help="also run the out-of-core scale leg, e.g. "
                         "--records=10M..100M (file+uring, streamed)")
    ap.add_argument("--check", action="store_true",
                    help="verify committed docs/eval instead of rewriting "
                         "it (CI mode; implies rendering to a temp dir)")
    ap.add_argument("--render-only", action="store_true",
                    help="skip the benches; re-render from existing "
                         "tools/eval/results/")
    ap.add_argument("--self-test", action="store_true",
                    help="exercise the renderer on fixtures (no binaries "
                         "needed; registered as a ctest)")
    args = ap.parse_args()

    if args.self_test:
        render.self_test()
        # The figure registry must stay in sync with the renderer's specs.
        missing = [n for n in BENCHES if n not in render.FIGURES]
        assert not missing, f"no render spec for: {missing}"
        assert strip_timing({"a": {"seconds": 1, "leaves": 2},
                             "b_ms": 3, "speedup_x": 4}) == \
            {"a": {"leaves": 2}}
        print("run_eval.py self-test OK")
        return 0

    devices = [d for d in args.devices.split(",") if d]
    os.makedirs(RESULTS_DIR, exist_ok=True)
    failures = []
    names = [n for n in sorted(BENCHES) if args.figures in n]

    if not args.render_only:
        for name in names:
            paths = []
            for device in devices:
                mode = "quick" if args.quick else "full"
                print(f"[{mode}] {name} --device={device}")
                paths.append(run_bench(args.bench_dir, name, device,
                                       args.quick))
            if len(paths) > 1:
                err = cross_device_check(name, paths)
                if err:
                    failures.append(err)
        if args.records:
            run_scale_leg(args.bench_dir, args.records,
                          os.path.join(RESULTS_DIR, "BENCH_scale.json"))

    rendered, diffs = regenerate_docs(args.check)
    failures += diffs

    print(f"\nrendered {len(rendered)} figures "
          f"{'(checked against committed docs/eval)' if args.check else 'into docs/eval/'}")
    if failures:
        print("FAILURES:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
