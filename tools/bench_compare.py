#!/usr/bin/env python3
"""Gate a BENCH_*.json produced by this run against a committed baseline.

Used by the bench-smoke CI job (and runnable locally):

    python3 tools/bench_compare.py bench/baselines/outofcore_smoke.json \
        BENCH_outofcore.json --threshold 0.25

The two files are flattened to dotted numeric keys and every key present in
the *baseline* is checked in the current run (new keys in the current run
never break an old baseline).  What a key means decides how it is gated:

 * exact keys (leaf I/Os, result counts, block-transfer counts, dataset
   shape) are deterministic functions of the workload — any drift is an
   algorithmic change, not noise, and fails at zero tolerance;
 * speedup keys (any path containing "speedup") are wall-clock *ratios of
   two same-machine runs*, the only timing numbers comparable across
   machines; higher is better, and a drop of more than --threshold
   (default 25%) fails;
 * "deterministic" must be true in the current run — the benches set it
   false when their internal cross-checks (identical trees across thread
   counts, identical traversals across devices/budgets) break;
 * latency keys (p50/p99 percentiles, any leaf ending in "_ms") are
   echoed side-by-side with the baseline but never gated — like raw
   seconds they do not transfer across machines, and unlike speedups the
   mixed-workload percentiles also move with core count;
 * raw "seconds" and everything else numeric are reported but never gated:
   absolute wall-clock does not transfer between a laptop, a CI runner and
   a dev box (docs/TUNING.md covers re-baselining).
"""

import argparse
import json
import sys

# Deterministic counters: exact match required.  Anything countable in the
# external-memory model belongs here; anything measured in seconds does not.
EXACT_LEAF_KEYS = {
    "leaves",
    "results",
    "demand_reads",
    "prefetch_reads",
    "io_blocks",
    "pool_hits",
    "pool_misses",
    "prefetch_staged",
    "prefetch_useful",
    "tree_nodes",
    "tree_leaves",
    "capacity",
    "n",
    "queries",
    "threads",
    "budget",
    "ops",
    "final_size",
    "knn_results",
    "writes",
    "write_batches",
    # Journal leg (bench/throughput_concurrent.cc --journal=on): all
    # deterministic functions of the op stream — journal frames, commits
    # and region size never depend on timing (docs/DURABILITY.md).
    "meta_reads",
    "meta_writes",
    "committed",
    "journal_pages",
}

# Reported, never gated.
INFO_LEAF_KEYS = {"seconds", "host_threads", "ring_active"}


def flatten(obj, prefix=""):
    out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(flatten(v, f"{prefix}{k}."))
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            out.update(flatten(v, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = obj
    return out


def classify(path):
    leaf = path.rsplit(".", 1)[-1]
    if leaf == "deterministic":
        return "deterministic"
    if "speedup" in path:
        return "speedup"
    if leaf.endswith("_ms") or "p50" in leaf or "p99" in leaf:
        return "latency"
    if leaf in EXACT_LEAF_KEYS:
        return "exact"
    if leaf in INFO_LEAF_KEYS:
        return "info"
    return "info"


def compare(baseline, current, threshold):
    """Returns (failures, notes): lists of human-readable strings."""
    base = flatten(baseline)
    cur = flatten(current)
    failures = []
    notes = []
    for path in sorted(base):
        kind = classify(path)
        if kind == "info":
            continue
        if kind == "latency":
            # Echo next to the baseline for eyeballing; never gate (absolute
            # latency is machine-bound, and a bench may drop a percentile).
            if path in cur and isinstance(cur[path], (int, float)):
                notes.append(
                    f"{path}: {cur[path]:.4f} vs baseline "
                    f"{base[path]:.4f} (latency, not gated)"
                )
            continue
        if path not in cur:
            failures.append(f"missing in current run: {path}")
            continue
        b, c = base[path], cur[path]
        if kind == "deterministic":
            if c is not True:
                failures.append(f"{path}: current run is not deterministic")
            continue
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            continue
        if kind == "exact":
            if b != c:
                failures.append(f"{path}: expected {b}, got {c} (exact)")
        elif kind == "speedup":
            floor = b * (1.0 - threshold)
            if c < floor:
                failures.append(
                    f"{path}: speedup {c:.3f} fell below {floor:.3f} "
                    f"(baseline {b:.3f}, threshold {threshold:.0%})"
                )
            else:
                notes.append(f"{path}: {c:.3f} vs baseline {b:.3f} ok")
    return failures, notes


def self_test():
    baseline = {
        "n": 100,
        "deterministic": True,
        "points": [
            {"leaves": 10, "seconds": 1.0},
            {"leaves": 20, "seconds": 2.0},
        ],
        "speedup_readahead": {"0.125": 1.50},
    }
    good = {
        "n": 100,
        "deterministic": True,
        "points": [
            # seconds may drift wildly: never gated.
            {"leaves": 10, "seconds": 9.0},
            {"leaves": 20, "seconds": 0.1},
        ],
        "speedup_readahead": {"0.125": 1.20},  # within 25% of 1.50
        "new_metric": 42,  # extra keys never fail an old baseline
    }
    fails, _ = compare(baseline, good, 0.25)
    assert fails == [], fails

    drifted = json.loads(json.dumps(good))
    drifted["points"][1]["leaves"] = 21
    fails, _ = compare(baseline, drifted, 0.25)
    assert len(fails) == 1 and "exact" in fails[0], fails

    # Block-write counters (PR 8 write path) gate exactly, like reads.
    wbase = {"legs": [{"writes": 500, "write_batches": 8, "seconds": 1.0}]}
    wcur = {"legs": [{"writes": 500, "write_batches": 8, "seconds": 0.2}]}
    fails, _ = compare(wbase, wcur, 0.25)
    assert fails == [], fails
    wcur["legs"][0]["write_batches"] = 9
    fails, _ = compare(wbase, wcur, 0.25)
    assert len(fails) == 1 and "exact" in fails[0], fails

    slow = json.loads(json.dumps(good))
    slow["speedup_readahead"]["0.125"] = 1.0  # > 25% below 1.50
    fails, _ = compare(baseline, slow, 0.25)
    assert len(fails) == 1 and "speedup" in fails[0], fails

    broken = json.loads(json.dumps(good))
    broken["deterministic"] = False
    fails, _ = compare(baseline, broken, 0.25)
    assert any("deterministic" in f for f in fails), fails

    truncated = json.loads(json.dumps(good))
    del truncated["points"][1]
    fails, _ = compare(baseline, truncated, 0.25)
    assert any("missing" in f for f in fails), fails

    # Latency percentiles: echoed-but-never-gated, even when they drift
    # wildly or disappear from the current run.
    lat_base = {"legs": [{"threads": 2, "window_p50_ms": 0.5,
                          "window_p99_ms": 2.0, "knn_p50_ms": 1.0}]}
    lat_cur = {"legs": [{"threads": 2, "window_p50_ms": 50.0,
                         "window_p99_ms": 0.001}]}  # knn_p50_ms dropped
    fails, notes = compare(lat_base, lat_cur, 0.25)
    assert fails == [], fails
    assert sum("not gated" in n for n in notes) == 2, notes

    print("bench_compare self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("current", nargs="?", help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative drop in speedup metrics (default 0.25)",
    )
    parser.add_argument(
        "--self-test", action="store_true", help="run the built-in checks"
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current JSON files are required")
    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)
    failures, notes = compare(baseline, current, args.threshold)
    for note in notes:
        print(f"  ok: {note}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(
            f"{len(failures)} regression(s) against {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"no regressions against {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
