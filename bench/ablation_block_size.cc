// Ablation: disk block size (§3.1).
//
// The paper fixes 4 KB blocks (fan-out 113), noting earlier studies use
// 1 KB-4 KB.  This bench sweeps the block size and reports PR-tree build
// I/O, query I/O and the fan-out, showing how B enters the
// O(sqrt(N/B) + T/B) bound.

#include <cstdio>

#include "core/prtree.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "io/buffer_pool.h"
#include "util/table_printer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/200000);
  size_t n = opts.ScaledN();
  std::printf("=== Ablation: block size sweep (PR-tree, SIZE(0.01), "
              "n=%zu) ===\n", n);
  auto data = workload::MakeSize(n, 0.01, opts.seed);

  BenchJson json("ablation_block_size");
  AddBenchParams(opts, n, &json);
  BenchJson::Table* jt = json.AddTable(
      "block_size", {"block_size", "fanout", "build_io", "leaves_per_query",
                     "pct_of_optimal"});

  TablePrinter table({"block size", "fan-out B", "build I/Os",
                      "leaves/query", "%T/B"});
  for (size_t block : {size_t{1024}, size_t{2048}, size_t{4096},
                       size_t{8192}, size_t{16384}}) {
    // --device forwards here too: the block size is the sweep variable, so
    // the device is opened by hand rather than through BuildIndex.
    std::unique_ptr<BlockDevice> dev = OpenDeviceOrDie(opts.device, block);
    RTree<2> tree(dev.get());
    WorkEnv env{dev.get(), ScaledMemoryBudget(n)};
    Stream<Record2> input(dev.get());
    input.Append(data);
    input.Flush();
    dev->ResetStats();
    AbortIfError(BulkLoadPrTree<2>(env, &input, &tree));
    uint64_t build_io = dev->stats().Total();
    TreeStats ts = tree.ComputeStats();

    auto queries = workload::MakeSquareQueries(tree.Mbr(), 0.01,
                                               opts.queries, opts.seed + 17);
    BufferPool pool(dev.get(), ts.num_nodes + 16);
    tree.CacheInternalNodes(&pool);
    uint64_t leaves = 0, results = 0;
    for (const auto& q : queries) {
      QueryStats qs = tree.Query(q, [](const Record2&) {}, &pool);
      leaves += qs.leaves_visited;
      results += qs.results;
    }
    double pct = 100.0 * static_cast<double>(leaves) /
                 (static_cast<double>(results) /
                  static_cast<double>(tree.capacity()));
    table.AddRow({TablePrinter::FmtCount(block),
                  TablePrinter::FmtCount(tree.capacity()),
                  TablePrinter::FmtCount(build_io),
                  TablePrinter::Fmt(static_cast<double>(leaves) /
                                        static_cast<double>(queries.size()),
                                    1),
                  TablePrinter::Fmt(pct, 1) + "%"});
    jt->AddRow({static_cast<unsigned long long>(block),
                static_cast<unsigned long long>(tree.capacity()),
                static_cast<unsigned long long>(build_io),
                static_cast<double>(leaves) /
                    static_cast<double>(queries.size()),
                pct});
  }
  table.Print();
  std::printf("(expected: larger blocks -> fewer, larger leaves; build and "
              "query I/O both scale ~1/B)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
