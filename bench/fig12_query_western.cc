// Figure 12: query performance on the Western TIGER data for square
// windows of area 0.25%-2% of the data extent.
//
// Paper result: all four R-trees are within ~10% of each other and close
// to the optimal T/B; ordering TGS <= PR <= H <= H4 (TGS ~100-105%,
// H4 up to ~120%).

#include <cstdio>

#include "bench/bench_query_common.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/400000);
  size_t n = opts.ScaledN();
  std::printf("=== Figure 12: query cost vs window size, Western TIGER-like "
              "(n=%zu, %zu queries/point) ===\n", n, opts.queries);
  auto data = workload::MakeTigerLike(n, workload::TigerRegion::kWestern,
                                      opts.seed);
  VariantSet set = BuildAllVariants(data, opts);
  Rect2 extent = set.indexes.front().tree->Mbr();

  BenchJson json("fig12_query_western");
  AddBenchParams(opts, n, &json);
  BenchJson::Table* jt =
      json.AddTable("query_cost", QueryJsonColumns(set, "query_area_pct"));

  TablePrinter table(QueryTableHeaders(set, "query area %"));
  int qseed = 100;
  for (double pct : {0.25, 0.50, 0.75, 1.00, 1.25, 1.50, 1.75, 2.00}) {
    auto queries = workload::MakeSquareQueries(extent, pct / 100.0,
                                               opts.queries,
                                               opts.seed + qseed++);
    AddQueryRow(set, queries, TablePrinter::Fmt(pct, 2), &table, jt, pct);
  }
  table.Print();
  std::printf("(paper shape: all variants within ~10%%, ordering "
              "TGS <= PR <= H <= H4, all near 100%% of T/B)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
