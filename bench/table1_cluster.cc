// Table 1: query performance on the CLUSTER dataset — the paper's
// worst-case-style experiment for the heuristic R-trees.
//
// Paper result (10,000 clusters x 1,000 points; long skinny horizontal
// queries of area 1e-7 through all clusters, returning ~0.3% of the
// points):
//
//     tree:                 H       H4      PR     TGS
//     # I/Os:            32,920  83,389  1,060  22,158
//     % of tree visited:   37%     94%    1.2%    25%
//
// i.e. the PR-tree beats every heuristic by well over an order of
// magnitude.  Defaults here: 1,000 clusters x 200 points (use
// --scale to grow; --scale=50 reaches paper scale).

#include <cstdio>

#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/200000);
  size_t n = opts.ScaledN();
  // Keep the paper's 10:1 cluster:size ratio as n scales.
  size_t clusters = std::max<size_t>(10, n / 200);
  size_t per_cluster = n / clusters;
  std::printf("=== Table 1: CLUSTER dataset (%zu clusters x %zu points), "
              "thin horizontal stab queries ===\n", clusters, per_cluster);

  auto data = workload::MakeCluster(clusters, per_cluster, opts.seed);

  BenchJson json("table1_cluster");
  AddBenchParams(opts, n, &json);
  json.Param("clusters", static_cast<unsigned long long>(clusters));
  json.Param("per_cluster", static_cast<unsigned long long>(per_cluster));
  BenchJson::Table* jt = json.AddTable(
      "cluster_query", {"variant", "avg_leaf_io", "pct_tree_visited",
                        "avg_results", "build_io"});

  TablePrinter table({"tree", "# leaf I/Os (avg)", "% of R-tree visited",
                      "avg T", "build I/Os"});
  double pr_frac = 0, worst_frac = 0;
  for (Variant v : {Variant::kHilbert, Variant::kHilbert4D, Variant::kPrTree,
                    Variant::kTgs}) {
    BuiltIndex index =
        BuildIndex(v, data, /*memory_bytes=*/0, opts.threads, opts.device);
    Rect2 extent = index.tree->Mbr();
    auto queries = workload::MakeHorizontalStabQueries(
        extent, /*height=*/1e-7, /*band=*/0.9, opts.queries, opts.seed + 5);
    QueryMeasurement m = MeasureQueries(index, queries);
    if (v == Variant::kPrTree) pr_frac = m.frac_tree_visited;
    worst_frac = std::max(worst_frac, m.frac_tree_visited);
    table.AddRow({VariantName(v),
                  TablePrinter::FmtCount(
                      static_cast<uint64_t>(m.avg_leaves)),
                  TablePrinter::FmtPercent(100 * m.frac_tree_visited),
                  TablePrinter::FmtCount(
                      static_cast<uint64_t>(m.avg_results)),
                  TablePrinter::FmtCount(index.build_io.Total())});
    jt->AddRow({VariantName(v), m.avg_leaves, 100 * m.frac_tree_visited,
                m.avg_results,
                static_cast<unsigned long long>(index.build_io.Total())});
  }
  table.Print();
  std::printf("(paper: H 37%%, H4 94%%, PR 1.2%%, TGS 25%% — PR wins by "
              ">10x; here PR visits %.1f%% vs worst heuristic %.1f%%)\n",
              100 * pr_frac, 100 * worst_frac);
  json.WriteFile(opts.json_path);
  return 0;
}
