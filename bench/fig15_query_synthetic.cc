// Figure 15: query performance on the synthetic extreme datasets, with
// square queries of area 0.01 (skew-transformed for SKEWED so output size
// stays comparable).
//
// Paper result (10M rectangles):
//   SIZE(max_side):  all near-optimal for small rectangles; as max_side
//                    grows PR and H4 clearly beat TGS, and H degrades the
//                    most (up to ~340% of T/B at max_side=0.2).
//   ASPECT(a):       PR == H4 stay near optimal for all aspect ratios;
//                    TGS and especially H degrade steeply.
//   SKEWED(c):       PR is flat (order-based construction is invariant to
//                    the monotone squeeze); H, H4, TGS degrade as c grows.
//
// --family=size|aspect|skewed runs one family (default: all three).

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_query_common.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  std::string family = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--family=", 9) == 0) family = argv[i] + 9;
  }
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/150000);
  size_t n = opts.ScaledN();
  std::printf("=== Figure 15: query cost on synthetic datasets "
              "(n=%zu, area-0.01 queries, %zu queries/point) ===\n",
              n, opts.queries);
  int qseed = 400;
  BenchJson json("fig15_query_synthetic");
  AddBenchParams(opts, n, &json);
  json.Param("family", family);

  if (family == "all" || family == "size") {
    TablePrinter table({"max_side", "avg T", "TGS %T/B", "PR %T/B",
                        "H %T/B", "H4 %T/B"});
    BenchJson::Table* jt = nullptr;
    for (double max_side : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
      auto data = workload::MakeSize(n, max_side, opts.seed);
      VariantSet set = BuildAllVariants(data, opts);
      if (jt == nullptr) {
        jt = json.AddTable("size", QueryJsonColumns(set, "max_side"));
      }
      auto queries = workload::MakeSquareQueries(
          set.indexes.front().tree->Mbr(), 0.01, opts.queries,
          opts.seed + qseed++);
      AddQueryRow(set, queries, TablePrinter::Fmt(max_side, 3), &table, jt,
                  max_side);
    }
    std::printf("\n--- SIZE(max_side) ---\n");
    table.Print();
    std::printf("(paper shape: PR,H4 < TGS << H as max_side grows)\n");
  }

  if (family == "all" || family == "aspect") {
    TablePrinter table({"aspect", "avg T", "TGS %T/B", "PR %T/B", "H %T/B",
                        "H4 %T/B"});
    BenchJson::Table* jt = nullptr;
    for (double aspect : {1e1, 1e2, 1e3, 1e4, 1e5}) {
      auto data = workload::MakeAspect(n, aspect, opts.seed);
      VariantSet set = BuildAllVariants(data, opts);
      if (jt == nullptr) {
        jt = json.AddTable("aspect", QueryJsonColumns(set, "aspect"));
      }
      auto queries = workload::MakeSquareQueries(
          set.indexes.front().tree->Mbr(), 0.01, opts.queries,
          opts.seed + qseed++);
      AddQueryRow(set, queries, TablePrinter::Fmt(aspect, 0), &table, jt,
                  aspect);
    }
    std::printf("\n--- ASPECT(a) ---\n");
    table.Print();
    std::printf("(paper shape: PR == H4 near optimal; TGS and "
                "especially H degrade with aspect)\n");
  }

  if (family == "all" || family == "skewed") {
    TablePrinter table({"c", "avg T", "TGS %T/B", "PR %T/B", "H %T/B",
                        "H4 %T/B"});
    BenchJson::Table* jt = nullptr;
    for (int c : {1, 3, 5, 7, 9}) {
      auto data = workload::MakeSkewed(n, c, opts.seed);
      VariantSet set = BuildAllVariants(data, opts);
      if (jt == nullptr) {
        jt = json.AddTable("skewed", QueryJsonColumns(set, "c"));
      }
      auto queries = workload::MakeSkewedQueries(0.01, c, opts.queries,
                                                 opts.seed + qseed++);
      AddQueryRow(set, queries, std::to_string(c), &table, jt, c);
    }
    std::printf("\n--- SKEWED(c) ---\n");
    table.Print();
    std::printf("(paper shape: PR flat in c; H, H4, TGS degrade as the "
                "point set gets more skewed)\n");
  }
  json.WriteFile(opts.json_path);
  return 0;
}
