// Shared driver for the query-performance figures (12-15): builds every
// paper variant once per dataset and reports leaf I/Os as a percentage of
// the optimal T/B, the paper's y-axis.

#ifndef PRTREE_BENCH_BENCH_QUERY_COMMON_H_
#define PRTREE_BENCH_BENCH_QUERY_COMMON_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/queries.h"

namespace prtree {
namespace harness {

/// All paper variants built over one dataset, ready for repeated query
/// batches.
struct VariantSet {
  std::vector<Variant> variants;
  std::vector<BuiltIndex> indexes;
};

/// `opts` forwards --threads and --device/--path; the built trees (and all
/// reported I/O counts) are identical regardless of either.  With an
/// explicit --path the file is suffixed per variant — every variant's
/// device stays alive for the whole query phase, so they cannot share one
/// file.
inline VariantSet BuildAllVariants(const std::vector<Record2>& data,
                                   const BenchOptions& opts = {}) {
  VariantSet set;
  set.variants = PaperVariants();
  for (Variant v : set.variants) {
    DeviceSpec spec = opts.device;
    if (!spec.path.empty()) {
      spec.path += std::string(".") + LoaderKindName(v);
    }
    set.indexes.push_back(
        BuildIndex(v, data, /*memory_bytes=*/0, opts.threads, spec));
  }
  return set;
}

/// Runs one query batch against every variant and appends a table row:
/// label | avg T | <variant>%... (percent of optimal T/B).  When
/// `json_table` is set the same row is captured raw (x_value instead of
/// the formatted label, unrounded averages and percentages) for
/// tools/eval/run_eval.py.
inline void AddQueryRow(const VariantSet& set,
                        const std::vector<Rect2>& queries,
                        const std::string& label, TablePrinter* table,
                        BenchJson::Table* json_table = nullptr,
                        double x_value = 0) {
  std::vector<std::string> row{label};
  std::vector<BenchJson::Cell> json_row{x_value};
  bool first = true;
  for (size_t i = 0; i < set.indexes.size(); ++i) {
    QueryMeasurement m = MeasureQueries(set.indexes[i], queries);
    if (first) {
      row.push_back(TablePrinter::FmtCount(
          static_cast<uint64_t>(m.avg_results)));
      json_row.emplace_back(m.avg_results);
      first = false;
    }
    row.push_back(TablePrinter::Fmt(m.pct_of_optimal, 1) + "%");
    json_row.emplace_back(m.pct_of_optimal);
  }
  table->AddRow(std::move(row));
  if (json_table != nullptr) json_table->AddRow(std::move(json_row));
}

inline std::vector<std::string> QueryTableHeaders(const VariantSet& set,
                                                  const std::string& x_name) {
  std::vector<std::string> headers{x_name, "avg T"};
  for (Variant v : set.variants) {
    headers.push_back(std::string(VariantName(v)) + " %T/B");
  }
  return headers;
}

/// JSON column names matching the AddQueryRow json_row layout:
/// x_name | avg_results | <variant>_pct_of_optimal...
inline std::vector<std::string> QueryJsonColumns(const VariantSet& set,
                                                 const std::string& x_name) {
  std::vector<std::string> cols{x_name, "avg_results"};
  for (Variant v : set.variants) {
    cols.push_back(std::string(VariantName(v)) + "_pct_of_optimal");
  }
  return cols;
}

}  // namespace harness
}  // namespace prtree

#endif  // PRTREE_BENCH_BENCH_QUERY_COMMON_H_
