// Shared driver for the query-performance figures (12-15): builds every
// paper variant once per dataset and reports leaf I/Os as a percentage of
// the optimal T/B, the paper's y-axis.

#ifndef PRTREE_BENCH_BENCH_QUERY_COMMON_H_
#define PRTREE_BENCH_BENCH_QUERY_COMMON_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/queries.h"

namespace prtree {
namespace harness {

/// All paper variants built over one dataset, ready for repeated query
/// batches.
struct VariantSet {
  std::vector<Variant> variants;
  std::vector<BuiltIndex> indexes;
};

/// `opts` forwards --threads and --device/--path; the built trees (and all
/// reported I/O counts) are identical regardless of either.  With an
/// explicit --path the file is suffixed per variant — every variant's
/// device stays alive for the whole query phase, so they cannot share one
/// file.
inline VariantSet BuildAllVariants(const std::vector<Record2>& data,
                                   const BenchOptions& opts = {}) {
  VariantSet set;
  set.variants = PaperVariants();
  for (Variant v : set.variants) {
    DeviceSpec spec = opts.device;
    if (!spec.path.empty()) {
      spec.path += std::string(".") + LoaderKindName(v);
    }
    set.indexes.push_back(
        BuildIndex(v, data, /*memory_bytes=*/0, opts.threads, spec));
  }
  return set;
}

/// Runs one query batch against every variant and appends a table row:
/// label | avg T | <variant>%... (percent of optimal T/B).
inline void AddQueryRow(const VariantSet& set,
                        const std::vector<Rect2>& queries,
                        const std::string& label, TablePrinter* table) {
  std::vector<std::string> row{label};
  bool first = true;
  for (size_t i = 0; i < set.indexes.size(); ++i) {
    QueryMeasurement m = MeasureQueries(set.indexes[i], queries);
    if (first) {
      row.push_back(TablePrinter::FmtCount(
          static_cast<uint64_t>(m.avg_results)));
      first = false;
    }
    row.push_back(TablePrinter::Fmt(m.pct_of_optimal, 1) + "%");
  }
  table->AddRow(std::move(row));
}

inline std::vector<std::string> QueryTableHeaders(const VariantSet& set,
                                                  const std::string& x_name) {
  std::vector<std::string> headers{x_name, "avg T"};
  for (Variant v : set.variants) {
    headers.push_back(std::string(VariantName(v)) + " %T/B");
  }
  return headers;
}

}  // namespace harness
}  // namespace prtree

#endif  // PRTREE_BENCH_BENCH_QUERY_COMMON_H_
