// Micro-benchmarks (google-benchmark) for the library's hot operations:
// Hilbert keys, rectangle predicates, node scans, pseudo-PR-tree
// construction, external sort throughput and PR-tree queries.

#include <benchmark/benchmark.h>

#include "baselines/hilbert_rtree.h"
#include "core/prtree.h"
#include "core/pseudo_prtree.h"
#include "geom/hilbert.h"
#include "geom/rect_batch.h"
#include "harness/experiment.h"
#include "io/buffer_pool.h"
#include "io/external_sort.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace prtree {
namespace {

void BM_HilbertKey2D(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::pair<uint32_t, uint32_t>> pts(1024);
  for (auto& p : pts) {
    p = {static_cast<uint32_t>(rng.UniformInt(0, (1u << 31) - 1)),
         static_cast<uint32_t>(rng.UniformInt(0, (1u << 31) - 1))};
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = pts[i++ & 1023];
    benchmark::DoNotOptimize(HilbertIndex2(p.first, p.second, 31));
  }
}
BENCHMARK(BM_HilbertKey2D);

void BM_HilbertKey4D(benchmark::State& state) {
  auto data = workload::MakeSize(1024, 0.01, 2);
  Rect2 extent = MakeRect(0, 0, 1, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HilbertCornerKey<2>(data[i++ & 1023].rect, extent));
  }
}
BENCHMARK(BM_HilbertKey4D);

void BM_RectIntersects(benchmark::State& state) {
  auto data = workload::MakeSize(1024, 0.05, 3);
  Rect2 q = MakeRect(0.4, 0.4, 0.6, 0.6);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(data[i++ & 1023].rect.Intersects(q));
  }
}
BENCHMARK(BM_RectIntersects);

void BM_NodeScan(benchmark::State& state) {
  std::vector<std::byte> buf(kDefaultBlockSize);
  NodeView<2> node(buf.data(), buf.size());
  node.Format(0);
  auto data = workload::MakeSize(113, 0.05, 4);
  for (const auto& rec : data) node.Append(rec.rect, rec.id);
  Rect2 q = MakeRect(0.4, 0.4, 0.6, 0.6);
  for (auto _ : state) {
    int hits = 0;
    for (int i = 0; i < node.count(); ++i) {
      if (node.GetRect(i).Intersects(q)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 113);
}
BENCHMARK(BM_NodeScan);

// ---- rect-kernel microbenches (geom/rect_batch.h) ----------------------
//
// One full node's worth of entries (fan-out 113 at 4 KB blocks) through
// the batched kernels, with the dispatch pinned per leg: Arg(0) scalar,
// Arg(1) the best level this build/CPU has (AVX2, NEON, or scalar again
// when neither exists — the label says which ran).  Kernel regressions
// show up here independently of tree traversal.

constexpr size_t kKernelFanout = 113;

struct KernelRuns {
  std::vector<Real> xmin, ymin, xmax, ymax;
};

KernelRuns MakeKernelRuns(uint64_t seed) {
  auto data = workload::MakeSize(kKernelFanout, 0.05, seed);
  KernelRuns runs;
  for (const auto& rec : data) {
    runs.xmin.push_back(rec.rect.lo[0]);
    runs.ymin.push_back(rec.rect.lo[1]);
    runs.xmax.push_back(rec.rect.hi[0]);
    runs.ymax.push_back(rec.rect.hi[1]);
  }
  return runs;
}

// Pins the kernel dispatch for one bench leg; restores on destruction.
class ScopedSimdLevel {
 public:
  ScopedSimdLevel(benchmark::State& state, int64_t arg) : prev_(
      ActiveSimdLevel()) {
    SimdLevel actual = ForceSimdLevel(arg == 0 ? SimdLevel::kScalar
                                               : SimdLevel::kAvx2);
    state.SetLabel(SimdLevelName(actual));
  }
  ~ScopedSimdLevel() { ForceSimdLevel(prev_); }

 private:
  SimdLevel prev_;
};

void BM_RectKernelIntersect(benchmark::State& state) {
  ScopedSimdLevel pin(state, state.range(0));
  KernelRuns runs = MakeKernelRuns(4);
  Rect2 q = MakeRect(0.4, 0.4, 0.6, 0.6);
  uint64_t mask[RectMaskWords(kKernelFanout)];
  for (auto _ : state) {
    BatchIntersect(q, runs.xmin.data(), runs.ymin.data(), runs.xmax.data(),
                   runs.ymax.data(), kKernelFanout, mask);
    benchmark::DoNotOptimize(mask[0]);
  }
  state.SetItemsProcessed(state.iterations() * kKernelFanout);
}
BENCHMARK(BM_RectKernelIntersect)->Arg(0)->Arg(1);

void BM_RectKernelContains(benchmark::State& state) {
  ScopedSimdLevel pin(state, state.range(0));
  KernelRuns runs = MakeKernelRuns(4);
  Rect2 q = MakeRect(0.2, 0.2, 0.8, 0.8);
  uint64_t mask[RectMaskWords(kKernelFanout)];
  for (auto _ : state) {
    BatchContainedIn(q, runs.xmin.data(), runs.ymin.data(), runs.xmax.data(),
                     runs.ymax.data(), kKernelFanout, mask);
    benchmark::DoNotOptimize(mask[0]);
  }
  state.SetItemsProcessed(state.iterations() * kKernelFanout);
}
BENCHMARK(BM_RectKernelContains)->Arg(0)->Arg(1);

void BM_RectKernelMinDist(benchmark::State& state) {
  ScopedSimdLevel pin(state, state.range(0));
  KernelRuns runs = MakeKernelRuns(4);
  Real d2[kKernelFanout];
  for (auto _ : state) {
    BatchMinDist2(0.5, 0.5, runs.xmin.data(), runs.ymin.data(),
                  runs.xmax.data(), runs.ymax.data(), kKernelFanout, d2);
    benchmark::DoNotOptimize(d2[0]);
  }
  state.SetItemsProcessed(state.iterations() * kKernelFanout);
}
BENCHMARK(BM_RectKernelMinDist)->Arg(0)->Arg(1);

void BM_PseudoPrTreeBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto data = workload::MakeSize(n, 0.01, 5);
  for (auto _ : state) {
    auto copy = data;
    PseudoPRTreeBuilder<2> builder(113);
    size_t leaves = 0;
    builder.EmitLeaves(&copy, [&](const PseudoLeafChunk&) { ++leaves; });
    benchmark::DoNotOptimize(leaves);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PseudoPrTreeBuild)->Arg(10000)->Arg(100000);

void BM_ExternalSortThroughput(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto data = workload::MakeSize(n, 0.01, 6);
  for (auto _ : state) {
    MemoryBlockDevice dev(kDefaultBlockSize);
    WorkEnv env{&dev, 1u << 20};
    Stream<Record2> sorted =
        ExternalSortVector(env, data, CoordLess<2>{0});
    benchmark::DoNotOptimize(sorted.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSortThroughput)->Arg(100000);

void BM_PrTreeWindowQuery(benchmark::State& state) {
  static MemoryBlockDevice dev(kDefaultBlockSize);
  static RTree<2>* tree = [] {
    auto data = workload::MakeTigerLike(
        200000, workload::TigerRegion::kEastern, 7);
    auto* t = new RTree<2>(&dev);
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 8u << 20}, data, t));
    return t;
  }();
  static BufferPool pool(&dev, 1u << 16);
  static bool warmed = [] {
    tree->CacheInternalNodes(&pool);
    return true;
  }();
  (void)warmed;
  auto queries = workload::MakeSquareQueries(tree->Mbr(), 0.01, 64, 8);
  size_t i = 0;
  uint64_t results = 0;
  for (auto _ : state) {
    QueryStats qs = tree->Query(queries[i++ & 63],
                                [](const Record2&) {}, &pool);
    results += qs.results;
  }
  benchmark::DoNotOptimize(results);
}
BENCHMARK(BM_PrTreeWindowQuery);

void BM_BulkLoadPrTreeEndToEnd(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto data = workload::MakeSize(n, 0.01, 9);
  for (auto _ : state) {
    MemoryBlockDevice dev(kDefaultBlockSize);
    RTree<2> tree(&dev);
    AbortIfError(BulkLoadPrTree<2>(
        WorkEnv{&dev, harness::ScaledMemoryBudget(n)}, data, &tree));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BulkLoadPrTreeEndToEnd)->Arg(100000);

}  // namespace
}  // namespace prtree
