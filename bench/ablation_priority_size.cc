// Ablation: priority-leaf size.
//
// The PR-tree's priority leaves hold B rectangles; the precursor structure
// of Agarwal et al. [2] used priority "boxes" of size 1, which costs a
// log_B N factor in the query bound (§1.1).  This bench sweeps the
// priority-leaf fill fraction and measures query cost on an extreme
// dataset, showing why B-sized priority leaves matter in practice.

#include <cstdio>

#include "core/prtree.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "io/buffer_pool.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/150000);
  size_t n = opts.ScaledN();
  std::printf("=== Ablation: PR-tree priority-leaf size "
              "(ASPECT(1000), n=%zu) ===\n", n);
  auto data = workload::MakeAspect(n, 1000, opts.seed);

  BenchJson json("ablation_priority_size");
  AddBenchParams(opts, n, &json);
  BenchJson::Table* jt = json.AddTable(
      "priority_fill", {"fill", "leaves_per_query", "pct_of_optimal",
                        "leaves", "utilization_pct"});

  TablePrinter table({"priority fill", "leaves/query", "%T/B", "leaves",
                      "space util"});
  for (double frac : {0.01, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    MemoryBlockDevice dev(kDefaultBlockSize);
    RTree<2> tree(&dev);
    WorkEnv env{&dev, ScaledMemoryBudget(n)};
    PrTreeOptions popts;
    popts.priority_fraction = frac;
    AbortIfError(BulkLoadPrTree<2>(env, data, &tree, popts));
    TreeStats ts = tree.ComputeStats();

    auto queries = workload::MakeSquareQueries(tree.Mbr(), 0.01,
                                               opts.queries, opts.seed + 9);
    BufferPool pool(&dev, ts.num_nodes + 16);
    tree.CacheInternalNodes(&pool);
    uint64_t leaves = 0, results = 0;
    for (const auto& q : queries) {
      QueryStats qs = tree.Query(q, [](const Record2&) {}, &pool);
      leaves += qs.leaves_visited;
      results += qs.results;
    }
    double pct = results == 0
                     ? 0
                     : 100.0 * static_cast<double>(leaves) /
                           (static_cast<double>(results) /
                            static_cast<double>(tree.capacity()));
    table.AddRow({TablePrinter::Fmt(frac, 2),
                  TablePrinter::Fmt(static_cast<double>(leaves) /
                                        static_cast<double>(queries.size()),
                                    1),
                  TablePrinter::Fmt(pct, 1) + "%",
                  TablePrinter::FmtCount(ts.num_leaves),
                  TablePrinter::FmtPercent(100 * ts.utilization)});
    jt->AddRow({frac,
                static_cast<double>(leaves) /
                    static_cast<double>(queries.size()),
                pct, static_cast<unsigned long long>(ts.num_leaves),
                100 * ts.utilization});
  }
  table.Print();
  std::printf("(expected: small priority leaves approach the [2] structure "
              "— more leaves, worse query cost; fill 1.0 is the PR-tree)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
