// Figure 10: bulk-loading I/O on the five Eastern datasets of increasing
// size (paper: 2.1, 5.7, 9.2, 12.7, 16.7 million rectangles).
//
// Paper result: H/H4 and PR scale linearly with dataset size (the
// log_{M/B}(N/B) factor is constant across these sizes); TGS grows slightly
// super-linearly (its factor is log2 N).

#include <cstdio>

#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/556000);
  // The paper's five sizes as fractions of the full Eastern set.
  const double kFractions[] = {2.08 / 16.72, 5.67 / 16.72, 9.16 / 16.72,
                               12.66 / 16.72, 1.0};
  std::printf("=== Figure 10: bulk-loading I/O vs dataset size "
              "(Eastern prefixes of %zu) ===\n", opts.ScaledN());

  // Size-graded datasets are prefixes of one fixed-seed stream, mirroring
  // the paper's region unions.
  auto full = workload::MakeTigerLike(opts.ScaledN(),
                                      workload::TigerRegion::kEastern,
                                      opts.seed);
  BenchJson json("fig10_bulkload_scaling");
  AddBenchParams(opts, opts.ScaledN(), &json);
  BenchJson::Table* jt = json.AddTable(
      "build_io", {"records", "H_io", "H4_io", "PR_io", "TGS_io",
                   "tgs_over_pr", "pr_over_h"});

  TablePrinter table({"records", "H", "H4", "PR", "TGS",
                      "TGS/PR", "PR/H"});
  for (double f : kFractions) {
    size_t n = static_cast<size_t>(f * static_cast<double>(full.size()));
    std::vector<Record2> data(full.begin(), full.begin() + n);
    double ios[4] = {0, 0, 0, 0};
    int i = 0;
    for (Variant v : {Variant::kHilbert, Variant::kHilbert4D,
                      Variant::kPrTree, Variant::kTgs}) {
      BuiltIndex index = BuildIndex(v, data, 0, opts.threads, opts.device);
      ios[i++] = static_cast<double>(index.build_io.Total());
    }
    table.AddRow({TablePrinter::FmtCount(n),
                  TablePrinter::FmtCount(static_cast<uint64_t>(ios[0])),
                  TablePrinter::FmtCount(static_cast<uint64_t>(ios[1])),
                  TablePrinter::FmtCount(static_cast<uint64_t>(ios[2])),
                  TablePrinter::FmtCount(static_cast<uint64_t>(ios[3])),
                  TablePrinter::Fmt(ios[3] / ios[2], 2),
                  TablePrinter::Fmt(ios[2] / ios[0], 2)});
    jt->AddRow({static_cast<unsigned long long>(n), ios[0], ios[1], ios[2],
                ios[3], ios[3] / ios[2], ios[2] / ios[0]});
  }
  table.Print();
  std::printf("(paper shape: H/H4/PR linear in n; TGS slightly "
              "super-linear; PR ~2.5x H; TGS ~4.5x PR)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
