// Warm-pool query throughput: the in-memory hot path the SoA layout and
// SIMD kernels exist for.
//
// PRs 2–6 made the I/O side fast; once the buffer pool holds the whole
// tree, query time is pure CPU — per-node rectangle tests.  This bench
// pins that down: it bulk-loads the same dataset twice (once in the v1
// AoS node layout, once in the v2 SoA layout), gives each tree a pool
// larger than the tree, warms it fully, and runs one window batch and one
// kNN batch per leg of the {layout} x {scalar, SIMD} matrix.  The legs
// must agree bit-for-bit on every QueryStats counter, result count and
// kNN distance (the dispatch contract of geom/rect_batch.h); only the
// wall clock may differ.  SIMD speedup is per-core, so the headline
// ratio — SIMD-over-SoA vs scalar-over-AoS, the shipped configuration vs
// the pre-PR one — shows on a single-core CI container too.
//
// Writes BENCH_warmquery.json (gated against
// bench/baselines/warmquery.json by tools/bench_compare.py: counters
// exact, "speedup" keys one-sided with a 25% band — the committed
// baseline is deliberately floored below measured hardware numbers, see
// docs/TUNING.md).
//
//   --n=<records>     dataset size (default 400k)
//   --queries=<count> window queries per measurement (default 512)
//   --qarea=<frac>    window area as a fraction of the unit square
//                     (default 0.0005 — small windows keep the per-node
//                     test, not result emission, the dominant cost)
//   --knn=<count>     kNN queries per measurement (default 128)
//   --k=<neighbors>   neighbours per kNN query (default 16)
//   --seed=<uint64>   generator seed
//   --repeats=<count> timing repeats, minimum kept (default 5)
//   --out=<path>      JSON output path (default BENCH_warmquery.json)
//   --smoke           tiny run for the ctest tier1 label (checks the
//                     cross-leg identity contract, never gates speed)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "geom/rect_batch.h"
#include "harness/experiment.h"
#include "io/buffer_pool.h"
#include "rtree/knn.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;  // NOLINT

namespace {

struct LegResult {
  const char* layout = "";  // "v1" / "v2"
  std::string simd;         // "scalar" / "avx2" / "neon"
  double window_seconds = 0;
  double knn_seconds = 0;
  uint64_t leaves = 0;
  uint64_t internal = 0;
  uint64_t results = 0;
  uint64_t knn_leaves = 0;
  uint64_t knn_internal = 0;
  uint64_t knn_results = 0;
  uint64_t knn_digest = 0;  // FNV over result ids + distance bits
};

// FNV-1a over the exact bytes that must match across legs: neighbour ids
// and IEEE-754 distance bits, in reported order.
void DigestNeighbor(uint64_t* h, uint32_t id, Real dist) {
  uint64_t bits;
  std::memcpy(&bits, &dist, sizeof(bits));
  for (uint64_t v : {static_cast<uint64_t>(id), bits}) {
    for (int b = 0; b < 64; b += 8) {
      *h ^= (v >> b) & 0xff;
      *h *= 1099511628211ull;
    }
  }
}

LegResult RunLeg(const harness::BuiltIndex& index, const char* layout,
                 SimdLevel level, const std::vector<Rect2>& windows,
                 const std::vector<std::array<Real, 2>>& knn_points,
                 size_t k, int repeats) {
  LegResult leg;
  leg.layout = layout;
  leg.simd = SimdLevelName(ForceSimdLevel(level));

  // Pool bigger than the tree: after one warmup pass every node is
  // resident and the measurement is pure CPU.
  BufferPool pool(index.device.get(),
                  static_cast<size_t>(index.tree_stats.num_nodes) + 16);
  index.tree->CacheInternalNodes(&pool);

  auto window_pass = [&](bool record) {
    uint64_t leaves = 0, internal = 0, results = 0;
    for (const Rect2& q : windows) {
      QueryStats qs = index.tree->Query(q, [](const Record2&) {}, &pool);
      leaves += qs.leaves_visited;
      internal += qs.internal_visited;
      results += qs.results;
    }
    if (record) {
      leg.leaves = leaves;
      leg.internal = internal;
      leg.results = results;
    }
  };
  auto knn_pass = [&](bool record) {
    uint64_t leaves = 0, internal = 0, results = 0, digest = 1469598103934665603ull;
    for (const auto& p : knn_points) {
      QueryStats qs;
      auto neighbors = KnnSearch<2>(*index.tree, p, k, &qs, &pool);
      leaves += qs.leaves_visited;
      internal += qs.internal_visited;
      results += qs.results;
      for (const auto& nb : neighbors) {
        DigestNeighbor(&digest, nb.record.id, nb.distance);
      }
    }
    if (record) {
      leg.knn_leaves = leaves;
      leg.knn_internal = internal;
      leg.knn_results = results;
      leg.knn_digest = digest;
    }
  };

  window_pass(/*record=*/true);  // warmup + counter capture
  knn_pass(/*record=*/true);
  for (int rep = 0; rep < repeats; ++rep) {
    Timer tw;
    window_pass(/*record=*/false);
    double ws = tw.Seconds();
    if (rep == 0 || ws < leg.window_seconds) leg.window_seconds = ws;
    Timer tk;
    knn_pass(/*record=*/false);
    double ks = tk.Seconds();
    if (rep == 0 || ks < leg.knn_seconds) leg.knn_seconds = ks;
  }
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 400'000;
  size_t num_queries = 512;
  double qarea = 0.0005;
  size_t num_knn = 128;
  size_t k = 16;
  uint64_t seed = 1;
  int repeats = 5;
  std::string out_path = "BENCH_warmquery.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--n=", 4) == 0) {
      n = std::strtoull(arg + 4, nullptr, 10);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      num_queries = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--qarea=", 8) == 0) {
      qarea = std::strtod(arg + 8, nullptr);
    } else if (std::strncmp(arg, "--knn=", 6) == 0) {
      num_knn = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "--k=", 4) == 0) {
      k = std::strtoull(arg + 4, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--repeats=", 10) == 0) {
      repeats = static_cast<int>(std::strtol(arg + 10, nullptr, 10));
      if (repeats < 1) repeats = 1;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--n=N] [--queries=Q] "
                   "[--qarea=F] [--knn=K] [--k=NB] [--seed=S] [--repeats=R] "
                   "[--out=PATH] [--smoke]\n",
                   arg, argv[0]);
      return 2;
    }
  }
  if (smoke) {
    n = 40'000;
    num_queries = 64;
    num_knn = 16;
    repeats = 2;
  }

  auto data = workload::MakeSize(n, 0.001, seed);
  auto windows = workload::MakeSquareQueries(MakeRect(0, 0, 1, 1), qarea,
                                             num_queries, seed + 17);
  std::vector<std::array<Real, 2>> knn_points;
  {
    Rng rng(seed + 29);
    knn_points.reserve(num_knn);
    for (size_t i = 0; i < num_knn; ++i) {
      knn_points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    }
  }

  std::printf("=== query_warm: n=%zu, windows=%zu (area %.2e), knn=%zu x k=%zu%s ===\n",
              n, num_queries, qarea, num_knn, k, smoke ? " (smoke)" : "");

  // The same records through the same loader in both node layouts: same
  // tree shape, same page ids, different byte layout inside each page.
  NodeLayout prev_layout = SetDefaultNodeLayout(NodeLayout::kAoS);
  harness::BuiltIndex v1 = harness::BuildIndex(
      harness::Variant::kPrTree, data, /*memory_bytes=*/0, /*threads=*/1);
  SetDefaultNodeLayout(NodeLayout::kSoA);
  harness::BuiltIndex v2 = harness::BuildIndex(
      harness::Variant::kPrTree, data, /*memory_bytes=*/0, /*threads=*/1);
  SetDefaultNodeLayout(prev_layout);

  const SimdLevel prev_level = ActiveSimdLevel();
  std::vector<LegResult> legs;
  legs.push_back(RunLeg(v1, "v1", SimdLevel::kScalar, windows, knn_points, k,
                        repeats));
  legs.push_back(RunLeg(v1, "v1", SimdLevel::kAvx2, windows, knn_points, k,
                        repeats));
  legs.push_back(RunLeg(v2, "v2", SimdLevel::kScalar, windows, knn_points, k,
                        repeats));
  legs.push_back(RunLeg(v2, "v2", SimdLevel::kAvx2, windows, knn_points, k,
                        repeats));
  ForceSimdLevel(prev_level);

  std::printf("%4s %8s %12s %12s %12s %12s %14s\n", "fmt", "simd",
              "window s", "knn s", "leaf I/Os", "results", "knn digest");
  for (const LegResult& leg : legs) {
    std::printf("%4s %8s %12.4f %12.4f %12llu %12llu %14llx\n", leg.layout,
                leg.simd.c_str(), leg.window_seconds, leg.knn_seconds,
                static_cast<unsigned long long>(leg.leaves),
                static_cast<unsigned long long>(leg.results),
                static_cast<unsigned long long>(leg.knn_digest));
  }

  // The identity contract: every leg visits the same nodes, returns the
  // same results, and reports bit-identical kNN distances — layout and
  // SIMD dispatch may only change the clock.
  bool ok = true;
  for (const LegResult& leg : legs) {
    const LegResult& ref = legs[0];
    if (leg.leaves != ref.leaves || leg.internal != ref.internal ||
        leg.results != ref.results || leg.knn_leaves != ref.knn_leaves ||
        leg.knn_internal != ref.knn_internal ||
        leg.knn_results != ref.knn_results ||
        leg.knn_digest != ref.knn_digest) {
      std::fprintf(stderr, "!! leg %s/%s diverged from %s/%s\n", leg.layout,
                   leg.simd.c_str(), ref.layout, ref.simd.c_str());
      ok = false;
    }
  }
  // The v1 and v2 builds must also be the same tree, page for page count.
  if (v1.tree_stats.num_nodes != v2.tree_stats.num_nodes ||
      v1.tree_stats.num_leaves != v2.tree_stats.num_leaves ||
      v1.tree_stats.height != v2.tree_stats.height) {
    std::fprintf(stderr, "!! v1/v2 builds differ in shape\n");
    ok = false;
  }

  const LegResult& base = legs[0];   // v1 + scalar: the pre-PR configuration
  const LegResult& best = legs[3];   // v2 + SIMD:   the shipped configuration
  double window_speedup =
      best.window_seconds > 0 ? base.window_seconds / best.window_seconds : 1;
  double knn_speedup =
      best.knn_seconds > 0 ? base.knn_seconds / best.knn_seconds : 1;
  std::printf("warm window speedup (v2-%s over v1-scalar): %.2fx\n",
              best.simd.c_str(), window_speedup);
  std::printf("warm knn speedup    (v2-%s over v1-scalar): %.2fx\n",
              best.simd.c_str(), knn_speedup);

  std::string json = "{\n  \"bench\": \"query_warm\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"n\": %zu,\n  \"queries\": %zu,\n  \"knn_queries\": %zu,\n"
                "  \"k\": %zu,\n  \"capacity\": %zu,\n"
                "  \"tree_nodes\": %llu,\n  \"tree_leaves\": %llu,\n"
                "  \"simd\": \"%s\",\n",
                n, num_queries, num_knn, k, v2.tree->capacity(),
                static_cast<unsigned long long>(v2.tree_stats.num_nodes),
                static_cast<unsigned long long>(v2.tree_stats.num_leaves),
                legs[3].simd.c_str());
  json += buf;
  json += "  \"legs\": [\n";
  for (size_t i = 0; i < legs.size(); ++i) {
    const LegResult& leg = legs[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"layout\": \"%s\", \"simd\": \"%s\", "
        "\"window_seconds\": %.6f, \"knn_seconds\": %.6f, "
        "\"leaves\": %llu, \"results\": %llu, \"knn_results\": %llu}%s\n",
        leg.layout, leg.simd.c_str(), leg.window_seconds, leg.knn_seconds,
        static_cast<unsigned long long>(leg.leaves),
        static_cast<unsigned long long>(leg.results),
        static_cast<unsigned long long>(leg.knn_results),
        i + 1 < legs.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"speedup_simd_window\": %.3f,\n"
                "  \"speedup_simd_knn\": %.3f,\n",
                window_speedup, knn_speedup);
  json += buf;
  json += std::string("  \"deterministic\": ") + (ok ? "true" : "false") +
          "\n}\n";

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "IDENTITY CHECK FAILED\n");
    return 1;
  }
  return 0;
}
