// Ablation: internal-node cache (§3.3, footnote 5).
//
// The paper caches all internal nodes during query experiments and notes
// that "experiments with the cache disabled showed that the cache actually
// had relatively little effect on the window query performance".  This
// bench measures total device reads per query with (a) all internal nodes
// cached, (b) no cache, for every variant.

#include <cstdio>

#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/300000);
  size_t n = opts.ScaledN();
  std::printf("=== Ablation: internal-node cache on/off "
              "(Eastern TIGER-like, n=%zu, 1%% queries) ===\n", n);
  auto data = workload::MakeTigerLike(n, workload::TigerRegion::kEastern,
                                      opts.seed);

  BenchJson json("ablation_cache");
  AddBenchParams(opts, n, &json);
  BenchJson::Table* jt = json.AddTable(
      "cache", {"variant", "reads_cached", "reads_cold", "overhead_pct"});

  TablePrinter table({"tree", "reads/query (cached)", "reads/query (cold)",
                      "overhead"});
  for (Variant v : PaperVariants()) {
    BuiltIndex index =
        BuildIndex(v, data, /*memory_bytes=*/0, opts.threads, opts.device);
    auto queries = workload::MakeSquareQueries(index.tree->Mbr(), 0.01,
                                               opts.queries, opts.seed + 3);
    QueryMeasurement cached = MeasureQueries(index, queries, true);
    QueryMeasurement cold = MeasureQueries(index, queries, false);
    double cached_reads = cached.avg_leaves;  // internals are cache hits
    double cold_reads = cold.avg_leaves + cold.avg_internal;
    double overhead_pct = 100 * (cold_reads - cached_reads) /
                          (cached_reads > 0 ? cached_reads : 1);
    table.AddRow({VariantName(v), TablePrinter::Fmt(cached_reads, 1),
                  TablePrinter::Fmt(cold_reads, 1),
                  TablePrinter::FmtPercent(overhead_pct)});
    jt->AddRow({VariantName(v), cached_reads, cold_reads, overhead_pct});
  }
  table.Print();
  std::printf("(paper: the cache has relatively little effect — leaf reads "
              "dominate; internal overhead is a few percent)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
