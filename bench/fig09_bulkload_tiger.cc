// Figure 9: bulk-loading performance on the TIGER datasets — block I/Os and
// wall-clock seconds for H/H4, PR and TGS on the Western and Eastern data.
//
// Paper result (16.7M Eastern / 12M Western rectangles): H and H4 use the
// same I/O and ~2.5x fewer than PR; TGS uses ~4.5x more I/O than PR.  In
// time, H/H4 are >3x faster than PR and TGS ~3x slower than PR.
//
// This harness runs a laptop-scale replica (defaults: Western 400k, Eastern
// 556k records, memory budget scaled to keep the paper's ~9:1 data:memory
// ratio); pass --scale=30 to approach paper scale.

#include <cstdio>

#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/556000);
  std::printf(
      "=== Figure 9: bulk-loading on TIGER-like data "
      "(Eastern n=%zu, Western n=%zu) ===\n",
      opts.ScaledN(), opts.ScaledN() * 12 / 167 * 10);

  struct RegionSpec {
    const char* name;
    workload::TigerRegion region;
    size_t n;
  };
  // Paper ratio: Western 12M vs Eastern 16.7M.
  RegionSpec regions[] = {
      {"Western", workload::TigerRegion::kWestern,
       opts.ScaledN() * 12 / 167 * 10},
      {"Eastern", workload::TigerRegion::kEastern, opts.ScaledN()},
  };

  BenchJson json("fig09_bulkload_tiger");
  AddBenchParams(opts, opts.ScaledN(), &json);
  BenchJson::Table* jt = json.AddTable(
      "build", {"region", "variant", "records", "io_blocks",
                "blocks_per_record", "seconds", "utilization_pct"});

  for (const auto& spec : regions) {
    auto data = workload::MakeTigerLike(spec.n, spec.region, opts.seed);
    TablePrinter table({"variant", "blocks read+written", "blocks/record",
                        "seconds", "space util"});
    double pr_io = 0;
    for (Variant v : {Variant::kHilbert, Variant::kHilbert4D,
                      Variant::kPrTree, Variant::kTgs}) {
      BuiltIndex index = BuildIndex(v, data, 0, opts.threads, opts.device);
      double io = static_cast<double>(index.build_io.Total());
      if (v == Variant::kPrTree) pr_io = io;
      table.AddRow({VariantName(v), TablePrinter::FmtCount(index.build_io.Total()),
                    TablePrinter::Fmt(io / static_cast<double>(spec.n), 4),
                    TablePrinter::Fmt(index.build_seconds, 2),
                    TablePrinter::FmtPercent(
                        100 * index.tree_stats.utilization)});
      jt->AddRow({spec.name, VariantName(v),
                  static_cast<unsigned long long>(spec.n),
                  static_cast<unsigned long long>(index.build_io.Total()),
                  io / static_cast<double>(spec.n), index.build_seconds,
                  100 * index.tree_stats.utilization});
    }
    std::printf("\n--- %s data (%zu rectangles) ---\n", spec.name, spec.n);
    table.Print();
    std::printf("(paper shape: H == H4 ~= PR/2.5, TGS ~= 4.5*PR;"
                " PR I/O here = %.0f)\n", pr_io);
  }
  json.WriteFile(opts.json_path);
  return 0;
}
