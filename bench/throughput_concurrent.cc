// Multi-core throughput: read-only query scaling plus the mixed
// insert/delete/window/kNN workload over the MVCC dynamic forest.
//
// Leg 1 (always runs): the paper reports per-query I/Os on a single
// thread (§3.3); this sweep measures what the same setup sustains when
// many threads query one shared PR-tree through one sharded BufferPool.
// The cache protocol is unchanged (internal nodes warmed, leaf misses are
// the I/Os); queries/sec at 1..8 threads plus the per-thread QueryStats
// cross-check: summed over threads they must equal the single-thread
// totals exactly, because each query's traversal is deterministic and its
// counters are private.
//
// Leg 2 (--mix=): the snapshot-read story under writes.  A DynamicPRTree
// serves a mixed workload — x% inserts, y% deletes, z% window queries,
// w% kNN — from 1..16 threads; every query runs on an epoch-pinned
// snapshot, so readers never block on writers and never see a torn
// version.  Reports ops/sec and p50/p99 query latency per thread count
// into BENCH_mixed.json (gated by tools/bench_compare.py: op counts and
// the serial-leg counters exactly, latencies echoed but never gated).
// The run self-checks determinism: the serial counters must reproduce,
// every threaded leg must converge to the same final size, and a snapshot
// pinned before the storm must stay frozen through it.
//
// Leg 3 (--journal=on): the crash-consistent journaled update path vs
// the plain in-place updater over one deterministic op stream — demand
// counters must match exactly (journaling is meta-traffic only), and the
// journal's counters plus the off/on wall-clock ratio land in the JSON.
//
//   $ ./build/bench/throughput_concurrent [--n=N] [--queries=Q]
//       [--mix=40,10,40,10] [--threads-max=16] [--journal=on|off]
//       [--out=BENCH_mixed.json] [--smoke]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_prtree.h"
#include "io/file_block_device.h"
#include "rtree/journaled_tree.h"
#include "rtree/update.h"
#include "rtree/validate.h"
#include "harness/experiment.h"
#include "io/block_device.h"
#include "io/buffer_pool.h"
#include "util/random.h"
#include "util/parallel.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

namespace {

struct SweepPoint {
  int threads;
  double seconds;
  QueryStats total;  // summed over the per-thread stats
};

SweepPoint RunSweep(const BuiltIndex& index, BufferPool* pool,
                    const std::vector<Rect2>& queries, int threads) {
  std::vector<QueryStats> per_thread(threads);
  Timer timer;
  ParallelForChunks(0, queries.size(), threads,
                    [&](int t, size_t lo, size_t hi) {
                      QueryStats local;
                      for (size_t i = lo; i < hi; ++i) {
                        local += index.tree->Query(queries[i],
                                                   [](const Record2&) {},
                                                   pool);
                      }
                      per_thread[t] = local;
                    });
  SweepPoint p{threads, timer.Seconds(), QueryStats{}};
  for (const auto& qs : per_thread) p.total += qs;
  return p;
}

bool SameStats(const QueryStats& a, const QueryStats& b) {
  return a.nodes_visited == b.nodes_visited &&
         a.internal_visited == b.internal_visited &&
         a.leaves_visited == b.leaves_visited && a.results == b.results;
}

int RunStaticSweep(const BenchOptions& opts, size_t n, size_t num_queries) {
  std::printf("=== Concurrent query throughput "
              "(PR-tree, Eastern TIGER-like, n=%zu, %zu x 1%% queries) ===\n",
              n, num_queries);
  auto data = workload::MakeTigerLike(n, workload::TigerRegion::kEastern,
                                      opts.seed);
  BuiltIndex index = BuildIndex(Variant::kPrTree, data);
  auto queries = workload::MakeSquareQueries(index.tree->Mbr(), 0.01,
                                             num_queries, opts.seed + 3);

  BufferPool pool(index.device.get(), index.tree_stats.num_nodes + 16);
  index.tree->CacheInternalNodes(&pool);
  std::printf("tree: %llu nodes (%llu leaves), pool: %zu frames over %zu "
              "shards, host: %d hardware threads\n",
              static_cast<unsigned long long>(index.tree_stats.num_nodes),
              static_cast<unsigned long long>(index.tree_stats.num_leaves),
              pool.capacity(), pool.num_shards(), HardwareThreads());

  // Warm pass: populates the leaf frames so every sweep measures the same
  // steady state, and records the single-thread reference totals.
  SweepPoint reference = RunSweep(index, &pool, queries, 1);

  TablePrinter table({"threads", "queries/s", "speedup", "leaves/query",
                      "stats == 1-thread"});
  double base_qps = 0;
  for (int threads : {1, 2, 4, 8}) {
    SweepPoint p = RunSweep(index, &pool, queries, threads);
    double qps = static_cast<double>(queries.size()) / p.seconds;
    if (threads == 1) base_qps = qps;
    table.AddRow({std::to_string(threads), TablePrinter::Fmt(qps, 0),
                  TablePrinter::Fmt(qps / base_qps, 2) + "x",
                  TablePrinter::Fmt(static_cast<double>(p.total.leaves_visited) /
                                        static_cast<double>(queries.size()),
                                    1),
                  SameStats(p.total, reference.total) ? "yes" : "NO"});
    if (!SameStats(p.total, reference.total)) {
      std::fprintf(stderr,
                   "FAIL: per-thread QueryStats at %d threads do not sum to "
                   "the single-thread totals\n",
                   threads);
      return 1;
    }
  }
  table.Print();
  std::printf("(per-thread QueryStats are private and exact; their sums match "
              "the single-thread run at every point of the sweep)\n");
  return 0;
}

// ---- mixed workload over the dynamic forest ----------------------------

enum class OpKind { kInsert, kDelete, kWindow, kKnn };

struct Op {
  OpKind kind;
  Record2 rec;       // insert/delete
  Rect2 window;      // window
  std::array<Real, 2> point;  // knn
};

struct Mix {
  int insert = 40;
  int del = 10;
  int window = 40;
  int knn = 10;
};

/// The deterministic op streams of one leg: `threads` disjoint sequences
/// (each thread inserts its own fresh ids and deletes its own slice of
/// the pre-populated records, so the final record set is independent of
/// interleaving).
std::vector<std::vector<Op>> MakeOpStreams(const Mix& mix, int threads,
                                           size_t ops_per_thread,
                                           const std::vector<Record2>& base,
                                           const Rect2& extent,
                                           uint64_t seed) {
  std::vector<std::vector<Op>> streams(threads);
  auto windows = workload::MakeSquareQueries(
      extent, 0.01, threads * ops_per_thread, seed + 11);
  Rng rng(seed + 17);
  DataId next_id = static_cast<DataId>(base.size());
  size_t next_del = 0;  // round-robins over the pre-populated records
  size_t next_win = 0;
  for (int t = 0; t < threads; ++t) {
    auto& stream = streams[t];
    stream.reserve(ops_per_thread);
    for (size_t i = 0; i < ops_per_thread; ++i) {
      int pick = static_cast<int>(rng.Uniform(0.0, 100.0));
      Op op;
      if (pick < mix.insert) {
        op.kind = OpKind::kInsert;
        double side = rng.Uniform(0.0, 0.01);
        double lo_x = rng.Uniform(0.0, 1.0 - side);
        double lo_y = rng.Uniform(0.0, 1.0 - side);
        op.rec = Record2{MakeRect(lo_x, lo_y, lo_x + side, lo_y + side),
                         next_id++};
      } else if (pick < mix.insert + mix.del && next_del < base.size()) {
        op.kind = OpKind::kDelete;
        op.rec = base[next_del++];
      } else if (pick < mix.insert + mix.del + mix.window ||
                 mix.knn == 0) {
        op.kind = OpKind::kWindow;
        op.window = windows[next_win++ % windows.size()];
      } else {
        op.kind = OpKind::kKnn;
        op.point = {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
      }
      stream.push_back(op);
    }
  }
  return streams;
}

struct SerialCounters {
  uint64_t final_size = 0;
  uint64_t results = 0;      // window-query live results
  uint64_t leaves = 0;       // window-query leaf visits
  uint64_t knn_results = 0;
  bool operator==(const SerialCounters&) const = default;
};

/// Runs every stream back-to-back on one thread and totals the exact
/// counters — the deterministic reference the CI baseline gates on.
SerialCounters RunSerial(const std::vector<Record2>& base,
                         const std::vector<std::vector<Op>>& streams,
                         const DynamicPrTreeOptions& opts) {
  MemoryBlockDevice dev(4096);
  BufferPool pool(&dev, 4096);
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 22}, opts);
  index.AttachPool(&pool);
  for (const auto& rec : base) index.Insert(rec);
  SerialCounters c;
  for (const auto& stream : streams) {
    for (const auto& op : stream) {
      switch (op.kind) {
        case OpKind::kInsert:
          index.Insert(op.rec);
          break;
        case OpKind::kDelete:
          index.Delete(op.rec);
          break;
        case OpKind::kWindow: {
          QueryStats qs = index.Query(op.window, [](const Record2&) {},
                                      &pool);
          c.results += qs.results;
          c.leaves += qs.leaves_visited;
          break;
        }
        case OpKind::kKnn: {
          auto nn = index.Knn(op.point, 10, nullptr, &pool);
          c.knn_results += nn.size();
          break;
        }
      }
    }
  }
  c.final_size = index.size();
  return c;
}

struct MixedLeg {
  int threads = 0;
  size_t ops = 0;
  double seconds = 0;
  double window_p50_ms = 0;
  double window_p99_ms = 0;
  double knn_p50_ms = 0;
  double knn_p99_ms = 0;
  uint64_t final_size = 0;
  bool snapshot_frozen = true;
};

double PercentileMs(std::vector<double>* lat, double q) {
  if (lat->empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(lat->size() - 1));
  std::nth_element(lat->begin(), lat->begin() + idx, lat->end());
  return (*lat)[idx];
}

MixedLeg RunMixedLeg(const std::vector<Record2>& base,
                     const std::vector<std::vector<Op>>& streams,
                     const DynamicPrTreeOptions& opts) {
  MemoryBlockDevice dev(4096);
  BufferPool pool(&dev, 4096);
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 22}, opts);
  index.AttachPool(&pool);
  for (const auto& rec : base) index.Insert(rec);

  const int threads = static_cast<int>(streams.size());
  // Pin the pre-storm version: it must stay frozen through the whole leg.
  auto snap = index.Snapshot();
  const Rect2 probe = MakeRect(0.25, 0.25, 0.75, 0.75);
  std::vector<Record2> tmp;
  const QueryStats frozen =
      snap.Query(probe, [&](const Record2& r) { tmp.push_back(r); }, &pool);

  std::vector<std::vector<double>> win_lat(threads), knn_lat(threads);
  std::vector<std::thread> workers;
  Timer timer;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& wl = win_lat[t];
      auto& kl = knn_lat[t];
      for (const auto& op : streams[t]) {
        switch (op.kind) {
          case OpKind::kInsert:
            index.Insert(op.rec);
            break;
          case OpKind::kDelete:
            index.Delete(op.rec);
            break;
          case OpKind::kWindow: {
            auto t0 = std::chrono::steady_clock::now();
            index.Query(op.window, [](const Record2&) {}, &pool);
            auto t1 = std::chrono::steady_clock::now();
            wl.push_back(
                std::chrono::duration<double, std::milli>(t1 - t0).count());
            break;
          }
          case OpKind::kKnn: {
            auto t0 = std::chrono::steady_clock::now();
            index.Knn(op.point, 10, nullptr, &pool);
            auto t1 = std::chrono::steady_clock::now();
            kl.push_back(
                std::chrono::duration<double, std::milli>(t1 - t0).count());
            break;
          }
        }
      }
    });
  }

  MixedLeg leg;
  leg.threads = threads;
  // While the storm runs, the pinned snapshot must keep answering with the
  // exact pre-storm counters.
  for (int round = 0; round < 8; ++round) {
    QueryStats qs = snap.Query(probe, [](const Record2&) {}, &pool);
    if (!SameStats(qs, frozen)) leg.snapshot_frozen = false;
  }
  for (auto& w : workers) w.join();
  leg.seconds = timer.Seconds();
  {
    QueryStats qs = snap.Query(probe, [](const Record2&) {}, &pool);
    if (!SameStats(qs, frozen)) leg.snapshot_frozen = false;
  }
  snap.Release();

  std::vector<double> all_win, all_knn;
  for (auto& v : win_lat) all_win.insert(all_win.end(), v.begin(), v.end());
  for (auto& v : knn_lat) all_knn.insert(all_knn.end(), v.begin(), v.end());
  for (const auto& s : streams) leg.ops += s.size();
  leg.window_p50_ms = PercentileMs(&all_win, 0.50);
  leg.window_p99_ms = PercentileMs(&all_win, 0.99);
  leg.knn_p50_ms = PercentileMs(&all_knn, 0.50);
  leg.knn_p99_ms = PercentileMs(&all_knn, 0.99);
  leg.final_size = index.size();
  return leg;
}

// ---- Journaled update leg (--journal=on) ---------------------------------
// One deterministic single-thread insert/delete stream run twice: through
// the plain in-place updater on a bare file device, and through the
// crash-consistent journaled stack (rtree/journaled_tree.h).  The §3.3
// demand counters must be byte-identical — journal traffic is meta-class
// only (docs/DURABILITY.md) — and that identity feeds "deterministic".
// The wall-clock ratio journal-off/journal-on is the one timing number
// exported (a same-machine ratio, gated with a floored baseline).

struct JournalLeg {
  size_t ops = 0;
  uint64_t final_size = 0;
  uint64_t demand_reads = 0;
  uint64_t writes = 0;
  uint64_t meta_reads = 0;
  uint64_t meta_writes = 0;
  uint64_t committed = 0;
  size_t journal_pages = 0;
  double on_seconds = 0.0;
  double off_seconds = 0.0;
  bool identical = false;  // demand counters matched across the two legs
};

JournalLeg RunJournalLeg(size_t n_ops, uint64_t seed,
                         const std::string& scratch) {
  struct JOp {
    bool insert;
    Record2 rec;
  };
  std::vector<JOp> jops;
  jops.reserve(n_ops);
  {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> pos(0.0, 1.0);
    std::uniform_real_distribution<double> ext(0.0001, 0.002);
    uint32_t next = 1, oldest = 1;
    for (size_t i = 0; i < n_ops; ++i) {
      if (next - oldest > 8 && rng() % 4 == 0) {
        jops.push_back({false, Record2{MakeRect(0, 0, 0, 0), oldest}});
        ++oldest;
      } else {
        Rect2 r;
        r.lo = {pos(rng), pos(rng)};
        r.hi = {r.lo[0] + ext(rng), r.lo[1] + ext(rng)};
        jops.push_back({true, Record2{r, next}});
        ++next;
      }
    }
    // Deletes need the record's true rect; patch them in from the insert.
    std::vector<Rect2> rects(next);
    for (auto& op : jops) {
      if (op.insert) rects[op.rec.id] = op.rec.rect;
    }
    for (auto& op : jops) {
      if (!op.insert) op.rec.rect = rects[op.rec.id];
    }
  }

  JournalLeg leg;
  leg.ops = n_ops;

  // Journal OFF: plain in-place updates on a bare file device.
  const std::string off_path = scratch + ".off";
  IoStats off_stats;
  {
    FileDeviceOptions dopts;
    dopts.block_size = 4096;
    dopts.truncate = true;
    std::unique_ptr<FileBlockDevice> dev;
    AbortIfError(FileBlockDevice::Open(off_path, dopts, &dev));
    RTree<2> tree(dev.get());
    RTreeUpdater<2> updater(&tree);
    dev->ResetStats();
    Timer timer;
    for (const auto& op : jops) {
      if (op.insert) {
        updater.Insert(op.rec);
      } else {
        updater.Delete(op.rec);
      }
    }
    leg.off_seconds = timer.Seconds();
    off_stats = dev->stats();
  }
  std::remove(off_path.c_str());

  // Journal ON: every op staged, committed and durable.
  {
    JournaledTree<2>::Options topts;
    topts.device.block_size = 4096;
    std::unique_ptr<JournaledTree<2>> t;
    AbortIfError(JournaledTree<2>::Create(scratch, topts, &t));
    t->device()->ResetStats();
    Timer timer;
    for (const auto& op : jops) {
      if (op.insert) {
        AbortIfError(t->Insert(op.rec));
      } else {
        AbortIfError(t->Delete(op.rec));
      }
    }
    leg.on_seconds = timer.Seconds();
    const IoStats on_stats = t->device()->stats();
    AbortIfError(ValidateTree(t->tree()));
    leg.final_size = t->tree().size();
    leg.demand_reads = on_stats.reads;
    leg.writes = on_stats.writes;
    leg.meta_reads = on_stats.meta_reads;
    leg.meta_writes = on_stats.meta_writes;
    leg.committed = t->journal().committed_ops();
    leg.journal_pages = t->journal().journal_pages();
    leg.identical = on_stats.reads == off_stats.reads &&
                    on_stats.writes == off_stats.writes &&
                    off_stats.meta_writes == 0;
  }
  std::remove(scratch.c_str());
  return leg;
}

int RunMixed(const BenchOptions& opts, const Mix& mix, size_t n,
             size_t ops_per_leg, int threads_max, bool journal,
             const std::string& out_path) {
  std::printf("\n=== Mixed workload over the dynamic forest "
              "(n=%zu, %zu ops/leg, mix %d%%ins/%d%%del/%d%%win/%d%%knn) "
              "===\n",
              n, ops_per_leg, mix.insert, mix.del, mix.window, mix.knn);
  auto base = workload::MakeTigerLike(n, workload::TigerRegion::kEastern,
                                      opts.seed);
  // MakeTigerLike ids are 0..n-1; insert ops continue from n.
  const Rect2 extent = MakeRect(0, 0, 1, 1);
  DynamicPrTreeOptions dopts;  // defaults: one block's worth of buffer

  std::vector<int> thread_counts;
  for (int t = 1; t <= threads_max; t *= 2) thread_counts.push_back(t);

  // Serial reference, run twice: the exact counters must reproduce.
  auto serial_streams = MakeOpStreams(mix, 1, ops_per_leg, base, extent,
                                      opts.seed);
  SerialCounters serial = RunSerial(base, serial_streams, dopts);
  bool deterministic = serial == RunSerial(base, serial_streams, dopts);
  std::printf("serial: final_size=%llu window_results=%llu "
              "window_leaves=%llu knn_results=%llu%s\n",
              static_cast<unsigned long long>(serial.final_size),
              static_cast<unsigned long long>(serial.results),
              static_cast<unsigned long long>(serial.leaves),
              static_cast<unsigned long long>(serial.knn_results),
              deterministic ? "" : "  [NOT REPRODUCIBLE]");

  TablePrinter table({"threads", "ops/s", "win p50 ms", "win p99 ms",
                      "knn p50 ms", "knn p99 ms", "snapshot frozen"});
  std::vector<MixedLeg> legs;
  for (int t : thread_counts) {
    size_t per_thread = ops_per_leg / static_cast<size_t>(t);
    auto streams = MakeOpStreams(mix, t, per_thread, base, extent,
                                 opts.seed + static_cast<uint64_t>(t));
    MixedLeg leg = RunMixedLeg(base, streams, dopts);
    // Disjoint per-thread id ranges: the final size is interleaving-free.
    MixedLeg ref;
    {
      SerialCounters sc = RunSerial(base, streams, dopts);
      ref.final_size = sc.final_size;
    }
    if (leg.final_size != ref.final_size) deterministic = false;
    if (!leg.snapshot_frozen) deterministic = false;
    table.AddRow(
        {std::to_string(t),
         TablePrinter::Fmt(static_cast<double>(leg.ops) / leg.seconds, 0),
         TablePrinter::Fmt(leg.window_p50_ms, 4),
         TablePrinter::Fmt(leg.window_p99_ms, 4),
         TablePrinter::Fmt(leg.knn_p50_ms, 4),
         TablePrinter::Fmt(leg.knn_p99_ms, 4),
         leg.snapshot_frozen ? "yes" : "NO"});
    legs.push_back(leg);
  }
  table.Print();

  std::string json = "{\n  \"bench\": \"throughput_mixed\",\n";
  json += "  \"n\": " + std::to_string(n) + ",\n";
  json += "  \"host_threads\": " + std::to_string(HardwareThreads()) + ",\n";
  json += "  \"mix\": {\"insert\": " + std::to_string(mix.insert) +
          ", \"delete\": " + std::to_string(mix.del) +
          ", \"window\": " + std::to_string(mix.window) +
          ", \"knn\": " + std::to_string(mix.knn) + "},\n";
  json += "  \"serial\": {\"final_size\": " +
          std::to_string(serial.final_size) +
          ", \"results\": " + std::to_string(serial.results) +
          ", \"leaves\": " + std::to_string(serial.leaves) +
          ", \"knn_results\": " + std::to_string(serial.knn_results) +
          "},\n";
  json += "  \"legs\": [\n";
  for (size_t i = 0; i < legs.size(); ++i) {
    const MixedLeg& leg = legs[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"threads\": %d, \"ops\": %zu, \"final_size\": %llu, "
        "\"seconds\": %.6f, \"window_p50_ms\": %.4f, "
        "\"window_p99_ms\": %.4f, \"knn_p50_ms\": %.4f, "
        "\"knn_p99_ms\": %.4f}%s\n",
        leg.threads, leg.ops,
        static_cast<unsigned long long>(leg.final_size), leg.seconds,
        leg.window_p50_ms, leg.window_p99_ms, leg.knn_p50_ms,
        leg.knn_p99_ms, i + 1 < legs.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  if (journal) {
    JournalLeg jl = RunJournalLeg(ops_per_leg, opts.seed,
                                  out_path + ".journal.idx");
    if (!jl.identical) deterministic = false;
    const double speedup =
        jl.on_seconds > 0 ? jl.off_seconds / jl.on_seconds : 0.0;
    std::printf("journal: %zu ops committed=%llu final_size=%llu "
                "demand r/w=%llu/%llu meta r/w=%llu/%llu "
                "off/on=%.2fx%s\n",
                jl.ops, static_cast<unsigned long long>(jl.committed),
                static_cast<unsigned long long>(jl.final_size),
                static_cast<unsigned long long>(jl.demand_reads),
                static_cast<unsigned long long>(jl.writes),
                static_cast<unsigned long long>(jl.meta_reads),
                static_cast<unsigned long long>(jl.meta_writes), speedup,
                jl.identical ? "" : "  [DEMAND COUNTERS DIVERGED]");
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  \"journal\": {\"ops\": %zu, \"final_size\": %llu, "
        "\"demand_reads\": %llu, \"writes\": %llu, \"meta_reads\": %llu, "
        "\"meta_writes\": %llu, \"committed\": %llu, "
        "\"journal_pages\": %zu, \"journal_speedup\": %.4f, "
        "\"seconds\": %.6f, \"deterministic\": %s},\n",
        jl.ops, static_cast<unsigned long long>(jl.final_size),
        static_cast<unsigned long long>(jl.demand_reads),
        static_cast<unsigned long long>(jl.writes),
        static_cast<unsigned long long>(jl.meta_reads),
        static_cast<unsigned long long>(jl.meta_writes),
        static_cast<unsigned long long>(jl.committed), jl.journal_pages,
        speedup, jl.on_seconds, jl.identical ? "true" : "false");
    json += buf;
  }
  json += std::string("  \"deterministic\": ") +
          (deterministic ? "true" : "false") + "\n}\n";
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: mixed-workload determinism cross-checks "
                         "(serial reproduction / final size / frozen "
                         "snapshot) did not hold\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out this bench's own flags; everything else goes to the shared
  // parser (--n, --queries, --seed, --scale, ...).
  bool smoke = false;
  bool journal = false;
  bool mix_given = false;
  Mix mix;
  int threads_max = 16;
  std::string out_path = "BENCH_mixed.json";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--mix=", 6) == 0) {
      mix_given = true;
      if (std::sscanf(arg + 6, "%d,%d,%d,%d", &mix.insert, &mix.del,
                      &mix.window, &mix.knn) != 4 ||
          mix.insert + mix.del + mix.window + mix.knn != 100 ||
          mix.insert < 0 || mix.del < 0 || mix.window < 0 || mix.knn < 0) {
        std::fprintf(stderr,
                     "--mix takes four non-negative percentages summing to "
                     "100: --mix=insert,delete,window,knn\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--threads-max=", 14) == 0) {
      threads_max = std::atoi(arg + 14);
      if (threads_max < 1 || threads_max > 64) {
        std::fprintf(stderr, "--threads-max must be in [1, 64]\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--journal=on") == 0) {
      journal = true;
    } else if (std::strcmp(arg, "--journal=off") == 0) {
      journal = false;
    } else {
      rest.push_back(arg);
    }
  }
  BenchOptions opts = ParseBenchFlags(static_cast<int>(rest.size()),
                                      rest.data(), /*default_n=*/300000);
  size_t n = opts.ScaledN();
  size_t num_queries = opts.queries_set ? opts.queries : 4000;
  size_t ops_per_leg = opts.queries_set ? opts.queries : 20000;
  if (smoke) {
    n = 5000;
    num_queries = 500;
    ops_per_leg = 2000;
    threads_max = std::min(threads_max, 2);
    if (!mix_given) mix_given = true;  // smoke always runs the mixed leg
  }

  int rc = RunStaticSweep(opts, n, num_queries);
  if (rc != 0) return rc;
  if (mix_given) {
    rc = RunMixed(opts, mix, smoke ? n : n / 10, ops_per_leg, threads_max,
                  journal, out_path);
  }
  return rc;
}
