// Multi-core query throughput: the first concurrency numbers in the bench
// trajectory.
//
// The paper reports per-query I/Os on a single thread (§3.3); this driver
// measures what the same §3.3 setup sustains when many threads query one
// shared PR-tree through one sharded BufferPool — the pin-based page cache
// that replaced copy-on-fetch.  The cache protocol is unchanged (internal
// nodes warmed, leaf misses are the I/Os); the sweep reports queries/sec at
// 1, 2, 4 and 8 threads plus the per-thread QueryStats cross-check: summed
// over threads they must equal the single-thread totals exactly, because
// each query's traversal is deterministic and its counters are private.
//
//   $ ./build/release/bench/throughput_concurrent [--n=N] [--queries=Q]

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "io/buffer_pool.h"
#include "util/parallel.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

namespace {

struct SweepPoint {
  int threads;
  double seconds;
  QueryStats total;  // summed over the per-thread stats
};

SweepPoint RunSweep(const BuiltIndex& index, BufferPool* pool,
                    const std::vector<Rect2>& queries, int threads) {
  std::vector<QueryStats> per_thread(threads);
  Timer timer;
  ParallelForChunks(0, queries.size(), threads,
                    [&](int t, size_t lo, size_t hi) {
                      QueryStats local;
                      for (size_t i = lo; i < hi; ++i) {
                        local += index.tree->Query(queries[i],
                                                   [](const Record2&) {},
                                                   pool);
                      }
                      per_thread[t] = local;
                    });
  SweepPoint p{threads, timer.Seconds(), QueryStats{}};
  for (const auto& qs : per_thread) p.total += qs;
  return p;
}

bool SameStats(const QueryStats& a, const QueryStats& b) {
  return a.nodes_visited == b.nodes_visited &&
         a.internal_visited == b.internal_visited &&
         a.leaves_visited == b.leaves_visited && a.results == b.results;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/300000);
  size_t n = opts.ScaledN();
  // The default 100 windows of §3.3 are too few to time a multi-core sweep;
  // use a few thousand unless the user asked for a specific count.
  size_t num_queries = opts.queries_set ? opts.queries : 4000;
  std::printf("=== Concurrent query throughput "
              "(PR-tree, Eastern TIGER-like, n=%zu, %zu x 1%% queries) ===\n",
              n, num_queries);
  auto data = workload::MakeTigerLike(n, workload::TigerRegion::kEastern,
                                      opts.seed);
  BuiltIndex index = BuildIndex(Variant::kPrTree, data);
  auto queries = workload::MakeSquareQueries(index.tree->Mbr(), 0.01,
                                             num_queries, opts.seed + 3);

  BufferPool pool(index.device.get(), index.tree_stats.num_nodes + 16);
  index.tree->CacheInternalNodes(&pool);
  std::printf("tree: %llu nodes (%llu leaves), pool: %zu frames over %zu "
              "shards, host: %d hardware threads\n",
              static_cast<unsigned long long>(index.tree_stats.num_nodes),
              static_cast<unsigned long long>(index.tree_stats.num_leaves),
              pool.capacity(), pool.num_shards(), HardwareThreads());

  // Warm pass: populates the leaf frames so every sweep measures the same
  // steady state, and records the single-thread reference totals.
  SweepPoint reference = RunSweep(index, &pool, queries, 1);

  TablePrinter table({"threads", "queries/s", "speedup", "leaves/query",
                      "stats == 1-thread"});
  double base_qps = 0;
  for (int threads : {1, 2, 4, 8}) {
    SweepPoint p = RunSweep(index, &pool, queries, threads);
    double qps = static_cast<double>(queries.size()) / p.seconds;
    if (threads == 1) base_qps = qps;
    table.AddRow({std::to_string(threads), TablePrinter::Fmt(qps, 0),
                  TablePrinter::Fmt(qps / base_qps, 2) + "x",
                  TablePrinter::Fmt(static_cast<double>(p.total.leaves_visited) /
                                        static_cast<double>(queries.size()),
                                    1),
                  SameStats(p.total, reference.total) ? "yes" : "NO"});
    if (!SameStats(p.total, reference.total)) {
      std::fprintf(stderr,
                   "FAIL: per-thread QueryStats at %d threads do not sum to "
                   "the single-thread totals\n",
                   threads);
      return 1;
    }
  }
  table.Print();
  std::printf("(per-thread QueryStats are private and exact; their sums match "
              "the single-thread run at every point of the sweep)\n");
  return 0;
}
