// Figure 11: TGS bulk-loading cost on the synthetic datasets — the paper's
// demonstration that TGS construction (unlike H/H4/PR) depends strongly on
// the data distribution.
//
// Paper result (10M rectangles each): TGS build time varies from 3,726s to
// 14,034s across SIZE(max_side) and ASPECT(a), i.e. 2.8-10.9x slower than
// PR in time and 4.6-16.4x in I/O, while H/H4 (381s / 1.0M I/Os) and PR
// (1,289s / 2.6M I/Os) are constant across all synthetic datasets.

#include <cstdio>
#include <string>

#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/150000);
  size_t n = opts.ScaledN();
  std::printf("=== Figure 11: TGS bulk-loading on synthetic data "
              "(n=%zu per dataset) ===\n", n);

  // Forwards --threads and --device; with an explicit --path the file is
  // suffixed per variant because two variants' devices can be alive at
  // once (cf. BuildAllVariants).
  auto build = [&](Variant v, const std::vector<Record2>& data) {
    DeviceSpec spec = opts.device;
    if (!spec.path.empty()) {
      spec.path += std::string(".") + LoaderKindName(v);
    }
    return BuildIndex(v, data, /*memory_bytes=*/0, opts.threads, spec);
  };

  BenchJson json("fig11_tgs_synthetic");
  AddBenchParams(opts, n, &json);
  BenchJson::Table* jref =
      json.AddTable("reference", {"variant", "io_blocks", "seconds"});
  BenchJson::Table* jt = json.AddTable(
      "tgs_build", {"dataset", "tgs_io", "tgs_seconds", "tgs_over_pr_io",
                    "pr_io"});

  // Reference: PR (and H) on one dataset — their cost is distribution-
  // independent (verified by the variation rows below).
  auto ref_data = workload::MakeSize(n, 0.01, opts.seed);
  BuiltIndex pr_ref = build(Variant::kPrTree, ref_data);
  BuiltIndex h_ref = build(Variant::kHilbert, ref_data);
  jref->AddRow({"PR", static_cast<unsigned long long>(pr_ref.build_io.Total()),
                pr_ref.build_seconds});
  jref->AddRow({"H", static_cast<unsigned long long>(h_ref.build_io.Total()),
                h_ref.build_seconds});
  std::printf("reference on SIZE(0.01): PR %s I/Os %.2fs | H %s I/Os %.2fs\n",
              TablePrinter::FmtCount(pr_ref.build_io.Total()).c_str(),
              pr_ref.build_seconds,
              TablePrinter::FmtCount(h_ref.build_io.Total()).c_str(),
              h_ref.build_seconds);

  TablePrinter table({"dataset", "TGS I/Os", "TGS seconds", "TGS/PR I/O",
                      "PR I/Os (same data)"});
  auto run = [&](const std::string& name, const std::vector<Record2>& data) {
    BuiltIndex tgs = build(Variant::kTgs, data);
    BuiltIndex pr = build(Variant::kPrTree, data);
    table.AddRow({name, TablePrinter::FmtCount(tgs.build_io.Total()),
                  TablePrinter::Fmt(tgs.build_seconds, 2),
                  TablePrinter::Fmt(
                      static_cast<double>(tgs.build_io.Total()) /
                          static_cast<double>(pr.build_io.Total()),
                      2),
                  TablePrinter::FmtCount(pr.build_io.Total())});
    jt->AddRow({name, static_cast<unsigned long long>(tgs.build_io.Total()),
                tgs.build_seconds,
                static_cast<double>(tgs.build_io.Total()) /
                    static_cast<double>(pr.build_io.Total()),
                static_cast<unsigned long long>(pr.build_io.Total())});
  };

  for (double max_side : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    char name[64];
    std::snprintf(name, sizeof(name), "SIZE(%g)", max_side);
    run(name, workload::MakeSize(n, max_side, opts.seed));
  }
  for (double aspect : {1e1, 1e2, 1e3, 1e4, 1e5}) {
    char name[64];
    std::snprintf(name, sizeof(name), "ASPECT(%g)", aspect);
    run(name, workload::MakeAspect(n, aspect, opts.seed));
  }
  // §3.3 text: "The point datasets, skewed(c) and cluster, were all built
  // in between 3,471 and 4,456 seconds" — i.e. at the cheap end of TGS's
  // range.
  run("SKEWED(5)", workload::MakeSkewed(n, 5, opts.seed));
  run("CLUSTER", workload::MakeCluster(std::max<size_t>(10, n / 200),
                                       200, opts.seed));
  table.Print();
  std::printf("(paper shape: TGS cost varies several-fold across datasets "
              "and is always a multiple of PR's)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
