// Figure 11: TGS bulk-loading cost on the synthetic datasets — the paper's
// demonstration that TGS construction (unlike H/H4/PR) depends strongly on
// the data distribution.
//
// Paper result (10M rectangles each): TGS build time varies from 3,726s to
// 14,034s across SIZE(max_side) and ASPECT(a), i.e. 2.8-10.9x slower than
// PR in time and 4.6-16.4x in I/O, while H/H4 (381s / 1.0M I/Os) and PR
// (1,289s / 2.6M I/Os) are constant across all synthetic datasets.

#include <cstdio>

#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/150000);
  size_t n = opts.ScaledN();
  std::printf("=== Figure 11: TGS bulk-loading on synthetic data "
              "(n=%zu per dataset) ===\n", n);

  // Reference: PR (and H) on one dataset — their cost is distribution-
  // independent (verified by the variation rows below).
  auto ref_data = workload::MakeSize(n, 0.01, opts.seed);
  BuiltIndex pr_ref = BuildIndex(Variant::kPrTree, ref_data);
  BuiltIndex h_ref = BuildIndex(Variant::kHilbert, ref_data);
  std::printf("reference on SIZE(0.01): PR %s I/Os %.2fs | H %s I/Os %.2fs\n",
              TablePrinter::FmtCount(pr_ref.build_io.Total()).c_str(),
              pr_ref.build_seconds,
              TablePrinter::FmtCount(h_ref.build_io.Total()).c_str(),
              h_ref.build_seconds);

  TablePrinter table({"dataset", "TGS I/Os", "TGS seconds", "TGS/PR I/O",
                      "PR I/Os (same data)"});
  auto run = [&](const std::string& name, const std::vector<Record2>& data) {
    BuiltIndex tgs = BuildIndex(Variant::kTgs, data);
    BuiltIndex pr = BuildIndex(Variant::kPrTree, data);
    table.AddRow({name, TablePrinter::FmtCount(tgs.build_io.Total()),
                  TablePrinter::Fmt(tgs.build_seconds, 2),
                  TablePrinter::Fmt(
                      static_cast<double>(tgs.build_io.Total()) /
                          static_cast<double>(pr.build_io.Total()),
                      2),
                  TablePrinter::FmtCount(pr.build_io.Total())});
  };

  for (double max_side : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    char name[64];
    std::snprintf(name, sizeof(name), "SIZE(%g)", max_side);
    run(name, workload::MakeSize(n, max_side, opts.seed));
  }
  for (double aspect : {1e1, 1e2, 1e3, 1e4, 1e5}) {
    char name[64];
    std::snprintf(name, sizeof(name), "ASPECT(%g)", aspect);
    run(name, workload::MakeAspect(n, aspect, opts.seed));
  }
  // §3.3 text: "The point datasets, skewed(c) and cluster, were all built
  // in between 3,471 and 4,456 seconds" — i.e. at the cheap end of TGS's
  // range.
  run("SKEWED(5)", workload::MakeSkewed(n, 5, opts.seed));
  run("CLUSTER", workload::MakeCluster(std::max<size_t>(10, n / 200),
                                       200, opts.seed));
  table.Print();
  std::printf("(paper shape: TGS cost varies several-fold across datasets "
              "and is always a multiple of PR's)\n");
  return 0;
}
