// Ablation: empirical verification of the Theorem 1 query bound.
//
// Sweeps N on the §2.4 worst-case grid and compares the PR-tree's measured
// worst-case empty-query leaf visits against c * sqrt(N/B): the measured
// curve must grow like sqrt(N) with a stable constant, while the packed
// Hilbert R-tree's cost grows linearly in N.

#include <cmath>
#include <cstdio>

#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/0);
  const size_t rows = NodeCapacity<2>(kDefaultBlockSize);  // B = 113
  std::printf("=== Ablation: Theorem 1 query bound on the worst-case grid "
              "(B=%zu) ===\n", rows);

  BenchJson json("ablation_query_bound");
  AddBenchParams(opts, opts.n, &json);
  json.Param("rows", static_cast<unsigned long long>(rows));
  BenchJson::Table* jt = json.AddTable(
      "bound", {"n", "sqrt_n_over_b", "pr_worst_leaves", "pr_constant",
                "h_worst_leaves", "h_per_mille"});

  TablePrinter table({"N", "sqrt(N/B)", "PR worst leaves", "PR constant c",
                      "H worst leaves", "H/N per mille"});
  for (size_t columns : {128, 256, 512, 1024, 2048}) {
    auto data = workload::MakeWorstCaseGrid(columns, rows);
    const size_t n = data.size();
    std::vector<Rect2> queries;
    for (int row = 1; row < 12; ++row) {
      double y = row / static_cast<double>(rows) -
                 0.5 / static_cast<double>(n);
      queries.push_back(
          MakeRect(-1, y, static_cast<double>(columns) + 1, y));
    }
    auto worst = [&](Variant v) {
      BuiltIndex index =
          BuildIndex(v, data, /*memory_bytes=*/0, opts.threads, opts.device);
      uint64_t w = 0;
      for (const auto& q : queries) {
        QueryStats qs = index.tree->Query(q, [](const Record2&) {});
        w = std::max(w, qs.leaves_visited);
      }
      return w;
    };
    uint64_t pr = worst(Variant::kPrTree);
    uint64_t h = worst(Variant::kHilbert);
    double bound = std::sqrt(static_cast<double>(n) /
                             static_cast<double>(rows));
    table.AddRow({TablePrinter::FmtCount(n), TablePrinter::Fmt(bound, 1),
                  TablePrinter::FmtCount(pr),
                  TablePrinter::Fmt(static_cast<double>(pr) / bound, 2),
                  TablePrinter::FmtCount(h),
                  TablePrinter::Fmt(1000.0 * static_cast<double>(h) /
                                        static_cast<double>(n),
                                    2)});
    jt->AddRow({static_cast<unsigned long long>(n), bound,
                static_cast<unsigned long long>(pr),
                static_cast<double>(pr) / bound,
                static_cast<unsigned long long>(h),
                1000.0 * static_cast<double>(h) / static_cast<double>(n)});
  }
  table.Print();
  std::printf("(expected: PR constant c stays bounded as N grows 16x; "
              "H grows linearly with N)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
