// Ablation: memory budget M.
//
// Theorem 1's bulk-loading bound is O((N/B) log_{M/B} (N/B)) — the
// dependence on M shows up as a staircase: each time the budget halves
// past a threshold, the grid construction (and the external sorts beneath
// it) need another level of recursion / merge pass.  This bench sweeps M
// at fixed N for PR and H, exposing exactly that staircase.

#include <cstdio>

#include "core/prtree.h"
#include "baselines/hilbert_rtree.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/400000);
  size_t n = opts.ScaledN();
  std::printf("=== Ablation: memory budget sweep (SIZE(0.01), n=%zu, "
              "data = %.1f MB) ===\n", n,
              static_cast<double>(n * sizeof(Record2)) / (1u << 20));
  auto data = workload::MakeSize(n, 0.01, opts.seed);

  BenchJson json("ablation_memory");
  AddBenchParams(opts, n, &json);
  BenchJson::Table* jt = json.AddTable(
      "memory", {"memory_kb", "pr_io", "pr_seconds", "h_io", "pr_over_h"});

  TablePrinter table({"memory budget", "PR I/Os", "PR seconds", "H I/Os",
                      "PR/H"});
  for (size_t mem_kb : {512u, 1024u, 2048u, 4096u, 8192u, 32768u,
                        131072u}) {
    size_t mem = static_cast<size_t>(mem_kb) << 10;

    MemoryBlockDevice dev_pr(kDefaultBlockSize);
    RTree<2> pr(&dev_pr);
    Stream<Record2> in_pr(&dev_pr);
    in_pr.Append(data);
    in_pr.Flush();
    dev_pr.ResetStats();
    Timer t;
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev_pr, mem}, &in_pr, &pr));
    double pr_seconds = t.Seconds();
    uint64_t pr_io = dev_pr.stats().Total();

    MemoryBlockDevice dev_h(kDefaultBlockSize);
    RTree<2> h(&dev_h);
    Stream<Record2> in_h(&dev_h);
    in_h.Append(data);
    in_h.Flush();
    dev_h.ResetStats();
    AbortIfError(BulkLoadHilbert(WorkEnv{&dev_h, mem}, &in_h, &h));
    uint64_t h_io = dev_h.stats().Total();

    table.AddRow({TablePrinter::FmtCount(mem_kb) + " KB",
                  TablePrinter::FmtCount(pr_io),
                  TablePrinter::Fmt(pr_seconds, 2),
                  TablePrinter::FmtCount(h_io),
                  TablePrinter::Fmt(static_cast<double>(pr_io) /
                                        static_cast<double>(h_io),
                                    2)});
    jt->AddRow({static_cast<unsigned long long>(mem_kb),
                static_cast<unsigned long long>(pr_io), pr_seconds,
                static_cast<unsigned long long>(h_io),
                static_cast<double>(pr_io) / static_cast<double>(h_io)});
  }
  table.Print();
  std::printf("(expected: a log_{M/B}(N/B) staircase — I/O steps up as M "
              "shrinks, flat once the data fits in memory)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
