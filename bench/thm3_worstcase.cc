// Theorem 3 / §2.4: the Halton–Hammersley grid on which a zero-output line
// query forces the packed Hilbert, 4-D Hilbert and TGS R-trees to visit
// Θ(N/B) leaves, while the PR-tree stays within its O(sqrt(N/B)) bound.

#include <cmath>
#include <cstdio>

#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "util/table_printer.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/115712);
  const size_t rows = NodeCapacity<2>(kDefaultBlockSize);  // B = 113
  size_t columns = std::max<size_t>(4, opts.ScaledN() / rows);
  auto data = workload::MakeWorstCaseGrid(columns, rows);
  const size_t n = data.size();
  std::printf("=== Theorem 3: worst-case grid (%zu columns x %zu rows = "
              "%zu points) ===\n", columns, rows, n);

  // Empty-result horizontal line queries between the point rows.
  std::vector<Rect2> queries;
  for (int row = 1; row < 20; ++row) {
    double y = row / static_cast<double>(rows) -
               0.5 / static_cast<double>(n);
    queries.push_back(MakeRect(-1, y, static_cast<double>(columns) + 1, y));
  }

  BenchJson json("thm3_worstcase");
  AddBenchParams(opts, n, &json);
  json.Param("columns", static_cast<unsigned long long>(columns));
  json.Param("rows", static_cast<unsigned long long>(rows));
  BenchJson::Table* jt = json.AddTable(
      "worstcase", {"variant", "avg_leaves", "pct_leaves", "results"});

  TablePrinter table({"tree", "leaves visited (avg)", "% of leaves",
                      "results"});
  for (Variant v : {Variant::kHilbert, Variant::kHilbert4D, Variant::kPrTree,
                    Variant::kTgs}) {
    BuiltIndex index =
        BuildIndex(v, data, /*memory_bytes=*/0, opts.threads, opts.device);
    QueryMeasurement m = MeasureQueries(index, queries);
    table.AddRow({VariantName(v),
                  TablePrinter::FmtCount(
                      static_cast<uint64_t>(m.avg_leaves)),
                  TablePrinter::FmtPercent(100 * m.frac_tree_visited),
                  TablePrinter::FmtCount(m.total_results)});
    jt->AddRow({VariantName(v), m.avg_leaves, 100 * m.frac_tree_visited,
                static_cast<unsigned long long>(m.total_results)});
  }
  table.Print();
  double bound = std::sqrt(static_cast<double>(n) / static_cast<double>(rows));
  std::printf("(T = 0 for every query; Theorem 3: H/H4/TGS visit Θ(N/B) "
              "leaves; Theorem 1 bound for PR: O(sqrt(N/B)) = O(%.0f))\n",
              bound);
  json.WriteFile(opts.json_path);
  return 0;
}
