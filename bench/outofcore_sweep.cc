// Out-of-core query sweep: buffer-pool budget « dataset, on the real
// file-backed devices, with frontier readahead on and off.
//
// The paper reports query cost in leaf I/Os because, in the external-memory
// model, *which* blocks a traversal touches is the algorithm's property
// (§3.3).  This bench measures the other axis — what the storage engine
// makes of those touches when the pool cannot hold the tree: at each budget
// point (a fraction of the tree's pages, 1/16 → 1/2) it runs the same query
// batch twice, scalar (each leaf miss is one synchronous pread) and with
// readahead (each frontier is prefetched as one batch — a single io_uring
// submission on --device=uring).  Leaf I/Os, results and visit counters are
// asserted identical across every budget, readahead mode and device: the
// sweep only redistributes the same block transfers in time.
//
// Writes BENCH_outofcore.json (see tools/bench_compare.py for the gating
// semantics: `leaves`/`results`/reads are exact, `speedup` entries are
// ratio-gated, raw seconds are informational).  On a single-core CI
// container the speedups sit near 1x — re-baseline on real hardware per
// docs/TUNING.md.
//
//   --n=<records>        dataset size (default 300k)
//   --queries=<count>    windows per measurement (default 256)
//   --seed=<uint64>      generator seed
//   --device=file|uring  storage backend (default file)
//   --path=<file>        device file path (default: anonymous temp file)
//   --budgets=a,b,...    pool budgets as fractions (default
//                        0.0625,0.125,0.25,0.5)
//   --repeats=<count>    timing repeats per point, minimum kept (default 3)
//   --direct             request O_DIRECT: misses pay real device latency
//                        instead of warm page-cache memcpys, which is the
//                        regime where batched readahead wins (best effort;
//                        silently buffered where the fs refuses)
//   --out=<path>         JSON output path (default BENCH_outofcore.json)
//   --smoke              tiny run for the ctest tier1 label
//   --verify-cross-device  additionally run the sweep on the *other*
//                        file-backed device and require identical leaf
//                        I/Os and result counts point by point
//   --write              run the build-phase write leg instead of the query
//                        sweep: at each budget point (memory budget as a
//                        fraction of the dataset's bytes) the same PR-tree
//                        grid build runs once on the plain file backend
//                        (scalar pwrites) and once on --device (staged
//                        WriteBatch submissions), on real temp files.  The
//                        device files must hash identically (FNV-64 after
//                        Sync+close) and every demand counter must match —
//                        batching may only move wall-clock.  Writes
//                        BENCH_writepath.json (--out overrides).
//   --records=SPEC       run the out-of-core scale leg instead of the query
//                        sweep: at each dataset size the records are
//                        *streamed* from the seeded generator straight into
//                        a device-resident Stream (RecordGenerator — 100M
//                        records never materialize in RAM), grid-built
//                        (force_grid) under the paper-proportional memory
//                        budget, then measured with window queries and kNN
//                        on BOTH the file and uring backends.  Every demand
//                        counter (and the kNN result digest) must be
//                        byte-identical across the two devices; the check
//                        folds into "deterministic".  SPEC is a comma list
//                        of counts with K/M suffixes; "A..B" expands by
//                        doubling from A and always includes B
//                        (10M..100M -> 10M,20M,40M,80M,100M).  Writes
//                        BENCH_scale.json (--out overrides).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/prtree.h"
#include "harness/experiment.h"
#include "io/buffer_pool.h"
#include "io/stream.h"
#include "io/uring_block_device.h"
#include "io/write_stager.h"
#include "rtree/knn.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;  // NOLINT

namespace {

struct SweepPoint {
  double budget_frac = 0;
  size_t capacity = 0;
  bool readahead = false;
  double seconds = 0;
  uint64_t leaves = 0;
  uint64_t internal = 0;
  uint64_t results = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t demand_reads = 0;
  uint64_t prefetch_reads = 0;
  uint64_t prefetch_staged = 0;
  uint64_t prefetch_useful = 0;
};

struct SweepResult {
  std::string device;
  bool ring_active = false;
  bool direct_io = false;  // negotiated, not requested
  harness::BuiltIndex index;
  std::vector<SweepPoint> points;
};

SweepPoint RunPoint(const harness::BuiltIndex& index,
                    const std::vector<Rect2>& queries, double frac,
                    bool readahead, int repeats) {
  SweepPoint pt;
  pt.budget_frac = frac;
  pt.readahead = readahead;
  pt.capacity = std::max<size_t>(
      4, static_cast<size_t>(frac *
                             static_cast<double>(index.tree_stats.num_nodes)));

  // Each repeat is a fresh pool over the same device (the out-of-core
  // state of interest), timed whole; the minimum is the noise-robust
  // statistic.  The counters are recorded once — they are deterministic,
  // so every repeat produces the identical set.
  pt.seconds = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    BufferPool pool(index.device.get(), pt.capacity);
    pool.set_readahead(readahead);
    index.device->ResetStats();
    uint64_t leaves = 0, internal = 0, results = 0;

    Timer timer;
    for (const Rect2& q : queries) {
      QueryStats qs = index.tree->Query(q, [](const Record2&) {}, &pool);
      leaves += qs.leaves_visited;
      internal += qs.internal_visited;
      results += qs.results;
    }
    double seconds = timer.Seconds();
    if (rep == 0 || seconds < pt.seconds) pt.seconds = seconds;

    IoStats io = index.device->stats();
    pt.leaves = leaves;
    pt.internal = internal;
    pt.results = results;
    pt.demand_reads = io.reads;
    pt.prefetch_reads = io.prefetch_reads;
    pt.pool_hits = pool.hits();
    pt.pool_misses = pool.misses();
    pt.prefetch_staged = pool.prefetch_staged();
    pt.prefetch_useful = pool.prefetch_useful();
  }
  return pt;
}

SweepResult RunSweep(const std::string& device_kind, const std::string& path,
                     bool direct_io, const std::vector<Record2>& data,
                     const std::vector<Rect2>& queries,
                     const std::vector<double>& budgets, int repeats) {
  SweepResult r;
  r.device = device_kind;
  harness::DeviceSpec spec;
  spec.kind = device_kind;
  spec.path = path;
  spec.direct_io = direct_io;
  r.index = harness::BuildIndex(harness::Variant::kPrTree, data,
                                /*memory_bytes=*/0, /*threads=*/1, spec);
  if (auto* uring =
          dynamic_cast<UringBlockDevice*>(r.index.device.get())) {
    r.ring_active = uring->ring_active();
  }
  if (auto* file = dynamic_cast<FileBlockDevice*>(r.index.device.get())) {
    r.direct_io = file->direct_io();
  }
  std::printf("--- %s device (%s%s): %llu nodes, %llu leaves ---\n",
              device_kind.c_str(),
              r.ring_active ? "io_uring active" : "pread path",
              r.direct_io ? ", O_DIRECT" : "",
              static_cast<unsigned long long>(r.index.tree_stats.num_nodes),
              static_cast<unsigned long long>(r.index.tree_stats.num_leaves));
  std::printf("%8s %9s %10s %10s %12s %12s %14s %9s\n", "budget", "frames",
              "readahead", "seconds", "leaf I/Os", "pool misses",
              "prefetch(use%)", "speedup");
  for (double frac : budgets) {
    SweepPoint scalar =
        RunPoint(r.index, queries, frac, /*readahead=*/false, repeats);
    SweepPoint ahead =
        RunPoint(r.index, queries, frac, /*readahead=*/true, repeats);
    double speedup =
        ahead.seconds > 0 ? scalar.seconds / ahead.seconds : 1.0;
    for (const SweepPoint* pt : {&scalar, &ahead}) {
      double use = pt->prefetch_staged > 0
                       ? 100.0 * static_cast<double>(pt->prefetch_useful) /
                             static_cast<double>(pt->prefetch_staged)
                       : 0.0;
      std::printf("%8.4f %9zu %10s %10.3f %12llu %12llu %8llu(%3.0f%%) %8.2fx\n",
                  pt->budget_frac, pt->capacity, pt->readahead ? "on" : "off",
                  pt->seconds, static_cast<unsigned long long>(pt->leaves),
                  static_cast<unsigned long long>(pt->pool_misses),
                  static_cast<unsigned long long>(pt->prefetch_staged), use,
                  pt->readahead ? speedup : 1.0);
    }
    r.points.push_back(scalar);
    r.points.push_back(ahead);
  }
  return r;
}

/// The §3.3 invariant this sweep must never bend: readahead and budget
/// change when blocks are read, never what the traversal visits or
/// returns.  Every point of a sweep must agree on leaves/internal/results.
bool CheckUniform(const SweepResult& r) {
  bool ok = true;
  for (const SweepPoint& pt : r.points) {
    if (pt.leaves != r.points[0].leaves ||
        pt.internal != r.points[0].internal ||
        pt.results != r.points[0].results) {
      std::fprintf(stderr,
                   "!! %s: budget %.4f readahead=%d changed the traversal "
                   "(leaves %llu vs %llu)\n",
                   r.device.c_str(), pt.budget_frac, pt.readahead ? 1 : 0,
                   static_cast<unsigned long long>(pt.leaves),
                   static_cast<unsigned long long>(r.points[0].leaves));
      ok = false;
    }
  }
  return ok;
}

std::string JsonForSweep(const SweepResult& r,
                         const std::vector<double>& budgets) {
  char buf[512];
  std::string json = "  {\n";
  json += "    \"device\": \"" + r.device + "\",\n";
  json += std::string("    \"ring_active\": ") +
          (r.ring_active ? "true" : "false") + ",\n";
  json += std::string("    \"direct_io\": ") +
          (r.direct_io ? "true" : "false") + ",\n";
  std::snprintf(buf, sizeof(buf),
                "    \"tree_nodes\": %llu,\n    \"tree_leaves\": %llu,\n",
                static_cast<unsigned long long>(r.index.tree_stats.num_nodes),
                static_cast<unsigned long long>(
                    r.index.tree_stats.num_leaves));
  json += buf;
  json += "    \"points\": [\n";
  for (size_t i = 0; i < r.points.size(); ++i) {
    const SweepPoint& pt = r.points[i];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"budget\": %.4f, \"capacity\": %zu, \"readahead\": %s, "
        "\"seconds\": %.6f, \"leaves\": %llu, \"results\": %llu, "
        "\"pool_hits\": %llu, \"pool_misses\": %llu, \"demand_reads\": %llu, "
        "\"prefetch_reads\": %llu, \"prefetch_staged\": %llu, "
        "\"prefetch_useful\": %llu}%s\n",
        pt.budget_frac, pt.capacity, pt.readahead ? "true" : "false",
        pt.seconds, static_cast<unsigned long long>(pt.leaves),
        static_cast<unsigned long long>(pt.results),
        static_cast<unsigned long long>(pt.pool_hits),
        static_cast<unsigned long long>(pt.pool_misses),
        static_cast<unsigned long long>(pt.demand_reads),
        static_cast<unsigned long long>(pt.prefetch_reads),
        static_cast<unsigned long long>(pt.prefetch_staged),
        static_cast<unsigned long long>(pt.prefetch_useful),
        i + 1 < r.points.size() ? "," : "");
    json += buf;
  }
  json += "    ],\n";
  // Wall-clock ratios of two same-machine, same-device runs: the only
  // timing numbers stable enough to gate on (machine speed cancels).
  json += "    \"speedup_readahead\": {";
  for (size_t b = 0; b < budgets.size(); ++b) {
    const SweepPoint& scalar = r.points[2 * b];
    const SweepPoint& ahead = r.points[2 * b + 1];
    std::snprintf(buf, sizeof(buf), "%s\"%.4f\": %.3f",
                  b == 0 ? "" : ", ", budgets[b],
                  ahead.seconds > 0 ? scalar.seconds / ahead.seconds : 1.0);
    json += buf;
  }
  json += "}\n  }";
  return json;
}

// ---------------------------------------------------------------------------
// --write: the build-phase leg.  Same PR-tree grid build, scalar pwrites vs
// staged WriteBatch submissions, byte-identity asserted via an FNV-64 hash
// of the closed device file.

struct WritePoint {
  double budget_frac = 0;
  size_t memory_bytes = 0;
  double seconds = 0;
  uint64_t writes = 0;
  uint64_t demand_reads = 0;
  uint64_t write_batches = 0;
  uint64_t io_blocks = 0;  // reads + writes: the paper's build cost (§3.3)
  uint64_t file_hash = 0;  // FNV-64 of the device file after Sync + close
};

struct WriteLeg {
  std::string device;
  bool ring_active = false;
  bool direct_io = false;
  std::vector<WritePoint> points;
};

uint64_t FnvHashFile(const std::string& path) {
  uint64_t h = 1469598103934665603ull;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::vector<unsigned char> buf(1 << 16);
  size_t got;
  while ((got = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    for (size_t i = 0; i < got; ++i) {
      h ^= buf[i];
      h *= 1099511628211ull;
    }
  }
  std::fclose(f);
  return h;
}

WriteLeg RunWriteLeg(const std::string& device_kind, const std::string& path,
                     bool direct_io, const std::vector<Record2>& data,
                     const std::vector<double>& budgets, int repeats) {
  WriteLeg leg;
  leg.device = device_kind;
  const size_t data_bytes = data.size() * sizeof(Record2);
  for (double frac : budgets) {
    WritePoint pt;
    pt.budget_frac = frac;
    pt.memory_bytes = std::max<size_t>(
        1u << 20, static_cast<size_t>(frac * static_cast<double>(data_bytes)));
    for (int rep = 0; rep < repeats; ++rep) {
      std::remove(path.c_str());
      harness::DeviceSpec spec;
      spec.kind = device_kind;
      spec.path = path;
      spec.direct_io = direct_io;
      auto dev = harness::OpenDeviceOrDie(spec, kDefaultBlockSize);
      if (auto* uring = dynamic_cast<UringBlockDevice*>(dev.get())) {
        leg.ring_active = uring->ring_active();
      }
      if (auto* file = dynamic_cast<FileBlockDevice*>(dev.get())) {
        leg.direct_io = file->direct_io();
      }
      WorkEnv env{dev.get(), pt.memory_bytes};
      PrTreeOptions opts;
      opts.force_grid = true;  // always the external, write-heavy path
      dev->ResetStats();
      Timer timer;
      RTree<2> tree(dev.get());
      AbortIfError(BulkLoadPrTree<2>(env, data, &tree, opts));
      AbortIfError(dev->Sync());
      double seconds = timer.Seconds();
      if (rep == 0 || seconds < pt.seconds) pt.seconds = seconds;
      IoStats io = dev->stats();
      pt.writes = io.writes;
      pt.demand_reads = io.reads;
      pt.write_batches = io.write_batches;
      pt.io_blocks = io.Total();
      dev.reset();  // close before hashing: the file is the artifact
      pt.file_hash = FnvHashFile(path);
    }
    leg.points.push_back(pt);
  }
  std::remove(path.c_str());
  return leg;
}

std::string JsonForWriteLeg(const WriteLeg& leg) {
  char buf[512];
  std::string json = "  {\n";
  json += "    \"device\": \"" + leg.device + "\",\n";
  json += std::string("    \"ring_active\": ") +
          (leg.ring_active ? "true" : "false") + ",\n";
  json += std::string("    \"direct_io\": ") +
          (leg.direct_io ? "true" : "false") + ",\n";
  json += "    \"points\": [\n";
  for (size_t i = 0; i < leg.points.size(); ++i) {
    const WritePoint& pt = leg.points[i];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"budget\": %.4f, \"seconds\": %.6f, \"writes\": %llu, "
        "\"demand_reads\": %llu, \"write_batches\": %llu, "
        "\"io_blocks\": %llu, \"file_hash\": \"%016llx\"}%s\n",
        pt.budget_frac, pt.seconds,
        static_cast<unsigned long long>(pt.writes),
        static_cast<unsigned long long>(pt.demand_reads),
        static_cast<unsigned long long>(pt.write_batches),
        static_cast<unsigned long long>(pt.io_blocks),
        static_cast<unsigned long long>(pt.file_hash),
        i + 1 < leg.points.size() ? "," : "");
    json += buf;
  }
  json += "    ]\n  }";
  return json;
}

// Isolated write-engine microbenchmark: the same page train written once
// through the scalar Write() loop and once through staged WriteBatch
// submissions, a fresh device each time.  The full build legs above mix in
// the pipeline's demand *reads* (untouched by batching), so their ratio is
// Amdahl-diluted; this one measures the write path alone.
double MicroWriteSeconds(const std::string& device_kind,
                         const std::string& path, bool direct_io,
                         bool batched, size_t pages, int repeats) {
  double best = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    std::remove(path.c_str());
    harness::DeviceSpec spec;
    spec.kind = device_kind;
    spec.path = path;
    spec.direct_io = direct_io;
    auto dev = harness::OpenDeviceOrDie(spec, kDefaultBlockSize);
    std::vector<std::byte> buf(kDefaultBlockSize);
    std::vector<PageId> ids;
    ids.reserve(pages);
    for (size_t i = 0; i < pages; ++i) ids.push_back(dev->Allocate());
    Timer timer;
    {
      WriteStager stager(dev.get(), batched ? 0 : 1);
      for (size_t i = 0; i < pages; ++i) {
        std::memset(buf.data(), static_cast<int>(i & 0xff), buf.size());
        stager.Stage(ids[i], buf.data());
      }
    }
    AbortIfError(dev->Sync());
    double seconds = timer.Seconds();
    if (rep == 0 || seconds < best) best = seconds;
    dev.reset();
  }
  std::remove(path.c_str());
  return best;
}

int RunWritePhase(const std::string& device_kind, const std::string& path,
                  bool direct_io, size_t n, uint64_t seed,
                  const std::vector<double>& budgets, int repeats,
                  const std::string& out_path) {
  auto data = workload::MakeSize(n, 0.001, seed);
  std::string base = path.empty()
                         ? "/tmp/prtree_writepath." +
                               std::to_string(static_cast<long>(getpid()))
                         : path;

  std::printf("=== outofcore_sweep --write: n=%zu, scalar file vs batched "
              "%s ===\n", n, device_kind.c_str());
  WriteLeg scalar = RunWriteLeg("file", base + ".scalar", /*direct_io=*/
                                direct_io, data, budgets, repeats);
  WriteLeg batched =
      RunWriteLeg(device_kind, base + ".batched", direct_io, data, budgets,
                  repeats);

  bool ok = true;
  std::printf("%8s %10s %10s %8s %12s %9s %8s\n", "budget", "scalar s",
              "batched s", "speedup", "io_blocks", "batches", "bytes");
  for (size_t b = 0; b < budgets.size(); ++b) {
    const WritePoint& s = scalar.points[b];
    const WritePoint& u = batched.points[b];
    bool same = s.file_hash == u.file_hash && s.writes == u.writes &&
                s.demand_reads == u.demand_reads &&
                s.io_blocks == u.io_blocks;
    if (!same) {
      std::fprintf(stderr,
                   "!! budget %.4f: batched build diverged from scalar "
                   "(hash %016llx vs %016llx, writes %llu vs %llu)\n",
                   s.budget_frac,
                   static_cast<unsigned long long>(u.file_hash),
                   static_cast<unsigned long long>(s.file_hash),
                   static_cast<unsigned long long>(u.writes),
                   static_cast<unsigned long long>(s.writes));
      ok = false;
    }
    std::printf("%8.4f %10.3f %10.3f %7.2fx %12llu %9llu %8s\n",
                s.budget_frac, s.seconds, u.seconds,
                u.seconds > 0 ? s.seconds / u.seconds : 1.0,
                static_cast<unsigned long long>(s.io_blocks),
                static_cast<unsigned long long>(u.write_batches),
                same ? "equal" : "DIFFER");
  }

  const size_t micro_pages = std::max<size_t>(1024, n / 40);
  double micro_scalar = MicroWriteSeconds("file", base + ".scalar",
                                          direct_io, /*batched=*/false,
                                          micro_pages, repeats);
  double micro_batched = MicroWriteSeconds(device_kind, base + ".batched",
                                           direct_io, /*batched=*/true,
                                           micro_pages, repeats);
  double micro_speedup =
      micro_batched > 0 ? micro_scalar / micro_batched : 1.0;
  std::printf("write-only micro (%zu pages): scalar %.3fs, batched %.3fs "
              "-> %.2fx\n", micro_pages, micro_scalar, micro_batched,
              micro_speedup);

  std::string json = "{\n  \"bench\": \"writepath\",\n";
  json += "  \"n\": " + std::to_string(n) + ",\n";
  json += "  \"micro_pages\": " + std::to_string(micro_pages) + ",\n";
  json += "  \"legs\": [\n" + JsonForWriteLeg(scalar) + ",\n" +
          JsonForWriteLeg(batched) + "\n  ],\n";
  // Same-machine wall-clock ratio, the only gateable timing number.
  json += "  \"speedup_writebatch\": {";
  char buf[64];
  for (size_t b = 0; b < budgets.size(); ++b) {
    const WritePoint& s = scalar.points[b];
    const WritePoint& u = batched.points[b];
    std::snprintf(buf, sizeof(buf), "%s\"%.4f\": %.3f", b == 0 ? "" : ", ",
                  budgets[b], u.seconds > 0 ? s.seconds / u.seconds : 1.0);
    json += buf;
  }
  json += "},\n";
  std::snprintf(buf, sizeof(buf), "  \"speedup_writebatch_micro\": %.3f,\n",
                micro_speedup);
  json += buf;
  json += std::string("  \"deterministic\": ") + (ok ? "true" : "false") +
          "\n}\n";

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "BYTE-IDENTITY CHECK FAILED\n");
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --records: the out-of-core scale leg.  Dataset sizes are parsed from a
// K/M-suffixed spec; each point streams the seeded generator straight into
// a device-resident Stream (no in-RAM dataset), grid-builds, then measures
// window queries and kNN on both file and uring, asserting byte-identical
// demand counters across the two backends.

size_t ParseRecordCount(const std::string& tok) {
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end != nullptr) {
    if (*end == 'K' || *end == 'k') v *= 1e3;
    if (*end == 'M' || *end == 'm') v *= 1e6;
  }
  return static_cast<size_t>(v);
}

// "a,b,c" with K/M suffixes; "A..B" doubles from A and always ends at B.
std::vector<size_t> ParseRecordsSpec(const std::string& spec) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    size_t dots = tok.find("..");
    if (dots == std::string::npos) {
      out.push_back(ParseRecordCount(tok));
      continue;
    }
    size_t lo = ParseRecordCount(tok.substr(0, dots));
    size_t hi = ParseRecordCount(tok.substr(dots + 2));
    for (size_t v = lo; v < hi; v *= 2) out.push_back(v);
    if (out.empty() || out.back() != hi) out.push_back(hi);
  }
  return out;
}

struct ScalePoint {
  size_t records = 0;
  // Build phase (grid path, paper-proportional memory budget).
  double build_seconds = 0;
  uint64_t build_io = 0;
  uint64_t build_writes = 0;
  uint64_t tree_nodes = 0;
  uint64_t tree_leaves = 0;
  // Window phase (readahead pool at a fraction of the tree).
  double window_seconds = 0;
  uint64_t window_leaves = 0;
  uint64_t window_results = 0;
  uint64_t window_demand_reads = 0;
  uint64_t window_prefetch_reads = 0;
  // kNN phase (same pool configuration).
  double knn_seconds = 0;
  uint64_t knn_leaves = 0;
  uint64_t knn_results = 0;
  uint64_t knn_digest = 0;  // FNV over neighbor ids + distance bits
};

struct ScaleLeg {
  std::string device;
  bool ring_active = false;
  bool direct_io = false;
  std::vector<ScalePoint> points;
};

ScalePoint RunScalePoint(const std::string& device_kind,
                         const std::string& path, bool direct_io, size_t n,
                         uint64_t seed, size_t num_queries, size_t num_knn,
                         size_t k, double pool_frac, ScaleLeg* leg) {
  ScalePoint pt;
  pt.records = n;
  harness::DeviceSpec spec;
  spec.kind = device_kind;
  spec.path = path;
  spec.direct_io = direct_io;
  auto dev = harness::OpenDeviceOrDie(spec, kDefaultBlockSize);
  if (auto* uring = dynamic_cast<UringBlockDevice*>(dev.get())) {
    leg->ring_active = uring->ring_active();
  }
  if (auto* file = dynamic_cast<FileBlockDevice*>(dev.get())) {
    leg->direct_io = file->direct_io();
  }

  // Stage the dataset straight from the generator: the only RAM cost is
  // the stream's one-block write buffer.
  Stream<Record2> input(dev.get());
  {
    auto gen = workload::NewSizeGenerator(n, 0.001, seed);
    Record2 rec;
    while (gen->Next(&rec)) input.Push(rec);
    input.Flush();
  }

  WorkEnv env{dev.get(), harness::ScaledMemoryBudget(n)};
  PrTreeOptions opts;
  opts.force_grid = true;  // always the external, write-heavy path
  dev->ResetStats();
  Timer build_timer;
  RTree<2> tree(dev.get());
  AbortIfError(BulkLoadPrTree<2>(env, &input, &tree, opts));
  pt.build_seconds = build_timer.Seconds();
  IoStats build_io = dev->stats();
  pt.build_io = build_io.Total();
  pt.build_writes = build_io.writes;
  TreeStats ts = tree.ComputeStats();
  pt.tree_nodes = ts.num_nodes;
  pt.tree_leaves = ts.num_leaves;

  // Out-of-core query state: the pool holds a fraction of the tree, with
  // frontier readahead on (the uring backend's batched path).
  size_t capacity = std::max<size_t>(
      4, static_cast<size_t>(pool_frac * static_cast<double>(ts.num_nodes)));
  auto queries = workload::MakeSquareQueries(tree.Mbr(), 0.01, num_queries,
                                             seed + 17);
  {
    BufferPool pool(dev.get(), capacity);
    pool.set_readahead(true);
    dev->ResetStats();
    Timer timer;
    for (const Rect2& q : queries) {
      QueryStats qs = tree.Query(q, [](const Record2&) {}, &pool);
      pt.window_leaves += qs.leaves_visited;
      pt.window_results += qs.results;
    }
    pt.window_seconds = timer.Seconds();
    IoStats io = dev->stats();
    pt.window_demand_reads = io.reads;
    pt.window_prefetch_reads = io.prefetch_reads;
  }

  Rng rng(seed + 31);
  {
    BufferPool pool(dev.get(), capacity);
    pool.set_readahead(true);
    uint64_t digest = 1469598103934665603ull;
    Timer timer;
    for (size_t i = 0; i < num_knn; ++i) {
      std::array<Real, 2> p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
      QueryStats qs;
      auto neighbors = KnnSearch<2>(tree, p, k, &qs, &pool);
      pt.knn_leaves += qs.leaves_visited;
      pt.knn_results += neighbors.size();
      for (const auto& nb : neighbors) {
        uint64_t bits;
        static_assert(sizeof(nb.distance) <= sizeof(bits));
        bits = 0;
        std::memcpy(&bits, &nb.distance, sizeof(nb.distance));
        digest ^= nb.record.id;
        digest *= 1099511628211ull;
        digest ^= bits;
        digest *= 1099511628211ull;
      }
    }
    pt.knn_seconds = timer.Seconds();
    pt.knn_digest = digest;
  }
  return pt;
}

std::string JsonForScaleLeg(const ScaleLeg& leg) {
  char buf[640];
  std::string json = "  {\n";
  json += "    \"device\": \"" + leg.device + "\",\n";
  json += std::string("    \"ring_active\": ") +
          (leg.ring_active ? "true" : "false") + ",\n";
  json += std::string("    \"direct_io\": ") +
          (leg.direct_io ? "true" : "false") + ",\n";
  json += "    \"points\": [\n";
  for (size_t i = 0; i < leg.points.size(); ++i) {
    const ScalePoint& pt = leg.points[i];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"n\": %zu,\n"
        "       \"build\": {\"seconds\": %.6f, \"io_blocks\": %llu, "
        "\"writes\": %llu, \"tree_nodes\": %llu, \"tree_leaves\": %llu},\n"
        "       \"window\": {\"seconds\": %.6f, \"leaves\": %llu, "
        "\"results\": %llu, \"demand_reads\": %llu, "
        "\"prefetch_reads\": %llu},\n"
        "       \"knn\": {\"seconds\": %.6f, \"leaves\": %llu, "
        "\"knn_results\": %llu, \"digest\": \"%016llx\"}}%s\n",
        pt.records, pt.build_seconds,
        static_cast<unsigned long long>(pt.build_io),
        static_cast<unsigned long long>(pt.build_writes),
        static_cast<unsigned long long>(pt.tree_nodes),
        static_cast<unsigned long long>(pt.tree_leaves), pt.window_seconds,
        static_cast<unsigned long long>(pt.window_leaves),
        static_cast<unsigned long long>(pt.window_results),
        static_cast<unsigned long long>(pt.window_demand_reads),
        static_cast<unsigned long long>(pt.window_prefetch_reads),
        pt.knn_seconds, static_cast<unsigned long long>(pt.knn_leaves),
        static_cast<unsigned long long>(pt.knn_results),
        static_cast<unsigned long long>(pt.knn_digest),
        i + 1 < leg.points.size() ? "," : "");
    json += buf;
  }
  json += "    ]\n  }";
  return json;
}

int RunScalePhase(const std::vector<size_t>& records, const std::string& path,
                  bool direct_io, uint64_t seed, size_t num_queries,
                  int repeats, const std::string& out_path) {
  (void)repeats;  // each point is one full build — repeats would double it
  const size_t num_knn = std::min<size_t>(num_queries, 64);
  const size_t k = 10;
  const double pool_frac = 0.125;
  std::printf("=== outofcore_sweep --records: %zu sizes, file+uring, "
              "streamed build + window + kNN ===\n", records.size());

  ScaleLeg file_leg{"file", false, false, {}};
  ScaleLeg uring_leg{"uring", false, false, {}};
  bool ok = true;
  std::printf("%12s %7s %10s %12s %10s %12s %10s %6s\n", "records", "dev",
              "build s", "build I/O", "window s", "demand reads", "knn s",
              "agree");
  for (size_t n : records) {
    ScalePoint fp = RunScalePoint(
        "file", path.empty() ? "" : path + ".file", direct_io, n, seed,
        num_queries, num_knn, k, pool_frac, &file_leg);
    ScalePoint up = RunScalePoint(
        "uring", path.empty() ? "" : path + ".uring", direct_io, n, seed,
        num_queries, num_knn, k, pool_frac, &uring_leg);
    // The §3.3 invariant at scale: which blocks the build writes and the
    // traversals demand is a property of the algorithm, not the backend.
    bool same = fp.build_io == up.build_io &&
                fp.build_writes == up.build_writes &&
                fp.tree_nodes == up.tree_nodes &&
                fp.tree_leaves == up.tree_leaves &&
                fp.window_leaves == up.window_leaves &&
                fp.window_results == up.window_results &&
                fp.window_demand_reads == up.window_demand_reads &&
                fp.window_prefetch_reads == up.window_prefetch_reads &&
                fp.knn_leaves == up.knn_leaves &&
                fp.knn_results == up.knn_results &&
                fp.knn_digest == up.knn_digest;
    if (!same) {
      std::fprintf(stderr,
                   "!! n=%zu: file and uring disagree on demand counters\n",
                   n);
      ok = false;
    }
    for (const ScalePoint* pt : {&fp, &up}) {
      std::printf("%12zu %7s %10.3f %12llu %10.3f %12llu %10.3f %6s\n",
                  n, pt == &fp ? "file" : "uring", pt->build_seconds,
                  static_cast<unsigned long long>(pt->build_io),
                  pt->window_seconds,
                  static_cast<unsigned long long>(pt->window_demand_reads),
                  pt->knn_seconds, same ? "yes" : "NO");
    }
    file_leg.points.push_back(fp);
    uring_leg.points.push_back(up);
  }

  std::string json = "{\n  \"bench\": \"scale_sweep\",\n";
  json += "  \"queries\": " + std::to_string(num_queries) + ",\n";
  json += "  \"knn\": " + std::to_string(num_knn) + ",\n";
  json += "  \"k\": " + std::to_string(k) + ",\n";
  json += "  \"legs\": [\n" + JsonForScaleLeg(file_leg) + ",\n" +
          JsonForScaleLeg(uring_leg) + "\n  ],\n";
  json += std::string("  \"deterministic\": ") + (ok ? "true" : "false") +
          "\n}\n";
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "CROSS-DEVICE IDENTITY CHECK FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 300'000;
  size_t num_queries = 256;
  uint64_t seed = 1;
  std::string device_kind = "file";
  std::string path;
  std::string out_path = "BENCH_outofcore.json";
  std::vector<double> budgets = {0.0625, 0.125, 0.25, 0.5};
  int repeats = 3;
  bool direct_io = false;
  bool smoke = false;
  bool verify_cross = false;
  bool write_phase = false;
  bool out_set = false;
  std::string records_spec;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--n=", 4) == 0) {
      n = std::strtoull(arg + 4, nullptr, 10);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      num_queries = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--device=", 9) == 0) {
      device_kind = arg + 9;
    } else if (std::strncmp(arg, "--path=", 7) == 0) {
      path = arg + 7;
    } else if (std::strncmp(arg, "--budgets=", 10) == 0) {
      budgets.clear();
      const char* p = arg + 10;
      char* end = nullptr;
      while (*p != '\0') {
        budgets.push_back(std::strtod(p, &end));
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (std::strncmp(arg, "--repeats=", 10) == 0) {
      repeats = static_cast<int>(std::strtol(arg + 10, nullptr, 10));
      if (repeats < 1) repeats = 1;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
      out_set = true;
    } else if (std::strcmp(arg, "--direct") == 0) {
      direct_io = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--verify-cross-device") == 0) {
      verify_cross = true;
    } else if (std::strcmp(arg, "--write") == 0) {
      write_phase = true;
    } else if (std::strncmp(arg, "--records=", 10) == 0) {
      records_spec = arg + 10;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--n=N] [--queries=Q] "
                   "[--seed=S] [--device=file|uring] [--path=FILE] "
                   "[--budgets=a,b,...] [--repeats=R] [--direct] "
                   "[--out=PATH] [--smoke] [--verify-cross-device] "
                   "[--write] [--records=SPEC]\n",
                   arg, argv[0]);
      return 2;
    }
  }
  if (device_kind != "file" && device_kind != "uring") {
    std::fprintf(stderr, "--device must be file or uring (the sweep "
                         "measures real storage)\n");
    return 2;
  }
  if (smoke) {
    n = 40'000;
    num_queries = 64;
    budgets = {0.125, 0.5};
    repeats = 2;
  }
  if (!records_spec.empty()) {
    if (smoke) records_spec = "40K,80K";  // tiny but still two scale points
    if (!out_set) out_path = "BENCH_scale.json";
    std::vector<size_t> records = ParseRecordsSpec(records_spec);
    if (records.empty()) {
      std::fprintf(stderr, "--records spec parsed to nothing\n");
      return 2;
    }
    return RunScalePhase(records, path, direct_io, seed, num_queries,
                         repeats, out_path);
  }
  if (write_phase) {
    if (!out_set) out_path = "BENCH_writepath.json";
    return RunWritePhase(device_kind, path, direct_io, n, seed, budgets,
                         repeats, out_path);
  }

  auto data = workload::MakeSize(n, 0.001, seed);
  auto queries = workload::MakeSquareQueries(MakeRect(0, 0, 1, 1), 0.01,
                                             num_queries, seed + 17);

  std::printf("=== outofcore_sweep: n=%zu, queries=%zu, device=%s%s ===\n",
              n, num_queries, device_kind.c_str(), smoke ? " (smoke)" : "");

  SweepResult primary =
      RunSweep(device_kind, path, direct_io, data, queries, budgets, repeats);
  bool ok = CheckUniform(primary);

  std::vector<SweepResult> sweeps;
  sweeps.push_back(std::move(primary));

  if (verify_cross) {
    std::string other = device_kind == "file" ? "uring" : "file";
    // Anonymous temp device for the cross-check: never clobber --path.
    SweepResult secondary =
        RunSweep(other, "", direct_io, data, queries, budgets, repeats);
    ok = CheckUniform(secondary) && ok;
    for (size_t i = 0; i < secondary.points.size(); ++i) {
      const SweepPoint& a = sweeps[0].points[i];
      const SweepPoint& b = secondary.points[i];
      if (a.leaves != b.leaves || a.results != b.results ||
          a.demand_reads != b.demand_reads ||
          a.prefetch_reads != b.prefetch_reads) {
        std::fprintf(stderr,
                     "!! cross-device mismatch at budget %.4f readahead=%d\n",
                     a.budget_frac, a.readahead ? 1 : 0);
        ok = false;
      }
    }
    if (ok) {
      std::printf("cross-device check: file and uring agree on every "
                  "leaf I/O, result and transfer count\n");
    }
    sweeps.push_back(std::move(secondary));
  }

  std::string json = "{\n  \"bench\": \"outofcore_sweep\",\n";
  json += "  \"n\": " + std::to_string(n) + ",\n";
  json += "  \"queries\": " + std::to_string(num_queries) + ",\n";
  json += "  \"sweeps\": [\n";
  for (size_t i = 0; i < sweeps.size(); ++i) {
    json += JsonForSweep(sweeps[i], budgets);
    json += i + 1 < sweeps.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += std::string("  \"deterministic\": ") + (ok ? "true" : "false") +
          "\n}\n";

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "DETERMINISM CHECK FAILED\n");
    return 1;
  }
  return 0;
}
