// Figure 14: query performance for fixed 1%-area square windows on the
// five Eastern datasets of increasing size.
//
// Paper result: the normalised query cost (% of T/B) is flat in dataset
// size for every variant, with the same TGS <= PR <= H <= H4 ordering as
// Figures 12-13.

#include <cstdio>

#include "bench/bench_query_common.h"
#include "workload/datasets.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/556000);
  const double kFractions[] = {2.08 / 16.72, 5.67 / 16.72, 9.16 / 16.72,
                               12.66 / 16.72, 1.0};
  std::printf("=== Figure 14: 1%% queries vs dataset size, Eastern "
              "TIGER-like (up to n=%zu) ===\n", opts.ScaledN());
  auto full = workload::MakeTigerLike(opts.ScaledN(),
                                      workload::TigerRegion::kEastern,
                                      opts.seed);

  BenchJson json("fig14_query_scaling");
  AddBenchParams(opts, opts.ScaledN(), &json);
  BenchJson::Table* jt = nullptr;

  TablePrinter table({"records", "avg T", "TGS %T/B", "PR %T/B", "H %T/B",
                      "H4 %T/B"});
  int qseed = 300;
  for (double f : kFractions) {
    size_t n = static_cast<size_t>(f * static_cast<double>(full.size()));
    std::vector<Record2> data(full.begin(), full.begin() + n);
    VariantSet set = BuildAllVariants(data, opts);
    if (jt == nullptr) {
      jt = json.AddTable("query_cost", QueryJsonColumns(set, "records"));
    }
    Rect2 extent = set.indexes.front().tree->Mbr();
    auto queries = workload::MakeSquareQueries(extent, 0.01, opts.queries,
                                               opts.seed + qseed++);
    AddQueryRow(set, queries, TablePrinter::FmtCount(n), &table, jt,
                static_cast<double>(n));
  }
  table.Print();
  std::printf("(paper shape: flat in dataset size; TGS <= PR <= H <= H4)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
