// Ablation: dynamic updates (§1.2, §4).
//
// The paper: a bulk-loaded PR-tree "can be updated using any known update
// heuristic for R-trees, but then its performance cannot be guaranteed
// theoretically anymore and its practical performance might suffer as
// well"; the logarithmic method keeps the guarantee.  This bench measures
// query cost on extreme (CLUSTER) data for:
//   (a) the freshly bulk-loaded PR-tree,
//   (b) the same tree after Guttman-inserting an extra 25% of records,
//   (c) the logarithmic-method DynamicPRTree holding the same final set.

#include <cstdio>

#include "core/dynamic_prtree.h"
#include "core/prtree.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "io/buffer_pool.h"
#include "rtree/update.h"
#include "util/table_printer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;           // NOLINT
using namespace prtree::harness;  // NOLINT

namespace {

double AvgLeaves(const RTree<2>& tree, BlockDevice* dev,
                 const std::vector<Rect2>& queries) {
  TreeStats ts = tree.ComputeStats();
  BufferPool pool(dev, ts.num_nodes + 16);
  tree.CacheInternalNodes(&pool);
  uint64_t leaves = 0;
  for (const auto& q : queries) {
    leaves += tree.Query(q, [](const Record2&) {}, &pool).leaves_visited;
  }
  return static_cast<double>(leaves) / static_cast<double>(queries.size());
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchFlags(argc, argv, /*default_n=*/120000);
  size_t n = opts.ScaledN();
  size_t clusters = std::max<size_t>(10, n / 200);
  auto data = workload::MakeCluster(clusters, n / clusters, opts.seed);
  size_t base_n = data.size() * 4 / 5;
  std::printf("=== Ablation: updates on CLUSTER data (bulk %zu + insert "
              "%zu) ===\n", base_n, data.size() - base_n);

  std::vector<Record2> base(data.begin(), data.begin() + base_n);
  std::vector<Record2> extra(data.begin() + base_n, data.end());

  // (a) bulk-loaded PR-tree over the base set.
  MemoryBlockDevice dev_a(kDefaultBlockSize);
  RTree<2> tree_a(&dev_a);
  AbortIfError(BulkLoadPrTree<2>(
      WorkEnv{&dev_a, ScaledMemoryBudget(base_n)}, base, &tree_a));

  // (b) same, then Guttman-insert the extra records.
  MemoryBlockDevice dev_b(kDefaultBlockSize);
  RTree<2> tree_b(&dev_b);
  AbortIfError(BulkLoadPrTree<2>(
      WorkEnv{&dev_b, ScaledMemoryBudget(base_n)}, base, &tree_b));
  RTreeUpdater<2> updater(&tree_b);
  for (const auto& rec : extra) updater.Insert(rec);

  // (c) logarithmic-method dynamic PR-tree over everything.
  MemoryBlockDevice dev_c(kDefaultBlockSize);
  DynamicPRTree<2> dynamic(WorkEnv{&dev_c, ScaledMemoryBudget(n)});
  for (const auto& rec : data) dynamic.Insert(rec);

  // Stab the clusters exactly: the MBR's y-extent is the cluster band.
  Rect2 extent = tree_a.Mbr();
  auto queries = workload::MakeHorizontalStabQueries(extent, 1e-7, 0.9,
                                                     opts.queries,
                                                     opts.seed + 21);

  BenchJson json("ablation_updates");
  AddBenchParams(opts, n, &json);
  BenchJson::Table* jt = json.AddTable(
      "updates", {"configuration", "records", "leaves_per_query"});

  double a_leaves = AvgLeaves(tree_a, &dev_a, queries);
  double b_leaves = AvgLeaves(tree_b, &dev_b, queries);
  TablePrinter table({"configuration", "records", "leaves/query"});
  table.AddRow({"PR bulk-loaded (base set)",
                TablePrinter::FmtCount(tree_a.size()),
                TablePrinter::Fmt(a_leaves, 1)});
  table.AddRow({"PR + 25% Guttman inserts",
                TablePrinter::FmtCount(tree_b.size()),
                TablePrinter::Fmt(b_leaves, 1)});
  uint64_t dyn_leaves = 0;
  for (const auto& q : queries) {
    dyn_leaves += dynamic.Query(q, [](const Record2&) {}).leaves_visited;
  }
  double c_leaves = static_cast<double>(dyn_leaves) /
                    static_cast<double>(queries.size());
  table.AddRow({"logarithmic-method dynamic PR",
                TablePrinter::FmtCount(dynamic.size()),
                TablePrinter::Fmt(c_leaves, 1)});
  jt->AddRow({"bulk", static_cast<unsigned long long>(tree_a.size()),
              a_leaves});
  jt->AddRow({"guttman", static_cast<unsigned long long>(tree_b.size()),
              b_leaves});
  jt->AddRow({"logmethod", static_cast<unsigned long long>(dynamic.size()),
              c_leaves});
  table.Print();
  std::printf("(expected: Guttman inserts degrade the bulk-loaded tree; "
              "the logarithmic method preserves PR-quality queries at "
              "somewhat higher constant)\n");
  json.WriteFile(opts.json_path);
  return 0;
}
