// Parallel bulk-load sweep: wall-clock build time at 1/2/4/8 threads for
// the BulkLoader pipeline on synthetic and TIGER-like data, with a
// determinism cross-check (every thread count must produce the identical
// tree — same root page, height, node count and build I/O).
//
// Writes the perf-trajectory file BENCH_bulkload.json (override with
// --out=).  Speedups are relative to the same loader at threads=1; on a
// single-core host all configurations time alike and the sweep degenerates
// to a determinism + overhead check.
//
//   --n=<records>   dataset size (default 1M, the acceptance config)
//   --seed=<uint>   generator seed
//   --out=<path>    JSON output path (default BENCH_bulkload.json)
//   --smoke         tiny run (n=20k, threads 1/2) for the ctest tier1 label

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rtree/bulk_loader.h"
#include "rtree/validate.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "workload/datasets.h"

using namespace prtree;  // NOLINT

namespace {

struct RunResult {
  std::string loader;
  int threads = 1;
  double seconds = 0;
  uint64_t io_blocks = 0;
  double speedup = 1.0;
  // Determinism fingerprint.
  PageId root = kInvalidPageId;
  int height = 0;
  uint64_t num_nodes = 0;
};

struct LoaderConfig {
  std::string label;
  LoaderKind kind;
  bool in_memory_budget;  // else the paper-proportional external budget
};

RunResult BuildOnce(const LoaderConfig& cfg, const std::vector<Record2>& data,
                    int threads) {
  MemoryBlockDevice device(kDefaultBlockSize);
  RTree<2> tree(&device);
  BuildOptions opts;
  opts.threads = threads;
  size_t data_bytes = data.size() * sizeof(Record2);
  opts.memory_bytes = cfg.in_memory_budget
                          ? std::max<size_t>(4 * data_bytes, 64u << 20)
                          : std::max<size_t>(data_bytes / 9, 2u << 20);
  auto loader = MakeBulkLoader<2>(cfg.kind, opts);

  Stream<Record2> input(&device);
  input.Append(data);
  input.Flush();
  device.ResetStats();

  Timer timer;
  AbortIfError(loader->Build(&device, &input, &tree));
  RunResult r;
  r.loader = cfg.label;
  r.threads = threads;
  r.seconds = timer.Seconds();
  r.io_blocks = device.stats().Total();
  r.root = tree.root();
  r.height = tree.height();
  TreeStats ts = tree.ComputeStats();
  r.num_nodes = ts.num_nodes;
  AbortIfError(ValidateTree(tree));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 1'000'000;
  uint64_t seed = 1;
  std::string out_path = "BENCH_bulkload.json";
  bool smoke = false;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--n=", 4) == 0) {
      n = std::strtoull(arg + 4, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--n=N] [--seed=S] "
                   "[--out=PATH] [--smoke]\n",
                   arg, argv[0]);
      return 2;
    }
  }
  if (smoke) {
    n = 20'000;
    thread_counts = {1, 2};
  }

  const std::vector<LoaderConfig> configs = {
      // PR-tree with a generous budget: the in-memory pseudo-PR-tree
      // recursion — the acceptance path ("1M-record in-memory dataset").
      {"pr-inmem", LoaderKind::kPrTree, true},
      // PR-tree at the paper's ~9:1 data:memory ratio: the external grid
      // algorithm with task-parallel base-case regions.
      {"pr-grid", LoaderKind::kPrTree, false},
      {"hilbert4d", LoaderKind::kHilbert4D, true},
      {"str", LoaderKind::kStr, true},
      // TGS is omitted: its O((N/B) log2(N/B)) split cascade dwarfs the
      // sortable fraction, so a thread sweep mostly measures its serial
      // partitioning (fig11 covers TGS build cost).
  };

  struct DatasetSpec {
    const char* name;
    std::vector<Record2> data;
  };
  std::vector<DatasetSpec> datasets;
  datasets.push_back({"uniform", workload::MakeSize(n, 0.001, seed)});
  datasets.push_back(
      {"tiger_western",
       workload::MakeTigerLike(n, workload::TigerRegion::kWestern, seed)});

  std::printf("=== bulkload_parallel: n=%zu, host threads=%d%s ===\n", n,
              HardwareThreads(), smoke ? " (smoke)" : "");

  bool deterministic = true;
  std::string json = "{\n  \"bench\": \"bulkload_parallel\",\n";
  json += "  \"n\": " + std::to_string(n) + ",\n";
  json += "  \"host_threads\": " + std::to_string(HardwareThreads()) + ",\n";
  json += "  \"datasets\": [\n";

  for (size_t d = 0; d < datasets.size(); ++d) {
    const auto& spec = datasets[d];
    std::printf("\n--- %s (%zu rectangles) ---\n", spec.name,
                spec.data.size());
    std::printf("%-10s %8s %10s %12s %9s\n", "loader", "threads", "seconds",
                "io blocks", "speedup");
    json += "    {\"name\": \"" + std::string(spec.name) + "\", \"runs\": [\n";
    bool first_run = true;
    for (const auto& cfg : configs) {
      RunResult base;
      for (int t : thread_counts) {
        RunResult r = BuildOnce(cfg, spec.data, t);
        if (t == thread_counts.front()) {
          base = r;
        } else if (r.root != base.root || r.height != base.height ||
                   r.num_nodes != base.num_nodes ||
                   r.io_blocks != base.io_blocks) {
          deterministic = false;
          std::printf("!! %s: threads=%d differs from threads=%d\n",
                      cfg.label.c_str(), t, thread_counts.front());
        }
        r.speedup = base.seconds > 0 ? base.seconds / r.seconds : 1.0;
        std::printf("%-10s %8d %10.3f %12llu %8.2fx\n", cfg.label.c_str(), t,
                    r.seconds, static_cast<unsigned long long>(r.io_blocks),
                    r.speedup);
        if (!first_run) json += ",\n";
        first_run = false;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "      {\"loader\": \"%s\", \"threads\": %d, "
                      "\"seconds\": %.6f, \"io_blocks\": %llu, "
                      "\"speedup\": %.3f}",
                      cfg.label.c_str(), t, r.seconds,
                      static_cast<unsigned long long>(r.io_blocks), r.speedup);
        json += buf;
      }
    }
    json += "\n    ]}";
    json += (d + 1 < datasets.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += std::string("  \"deterministic\": ") +
          (deterministic ? "true" : "false") + "\n}\n";

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "DETERMINISM CHECK FAILED\n");
    return 1;
  }
  return 0;
}
