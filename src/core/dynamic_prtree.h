// Dynamic PR-tree via the external logarithmic method (§1.2, §4; [4, 20]).
//
// The bulk-loaded PR-tree answers queries worst-case optimally, but Guttman
// updates destroy that guarantee.  The logarithmic method instead keeps a
// forest of O(log(N/M)) static PR-trees with geometrically increasing
// capacities plus a small in-memory insertion buffer:
//
//  * Insert appends to the buffer; when it fills, the buffer and the
//    occupied levels 0..i are merged and rebuilt into the smallest level i
//    whose capacity holds them all.  Rebuilds use the optimal bulk loader,
//    giving the paper's O(log_B(N/M) + (1/B) log_{M/B}(N/B) log2(N/M))
//    amortised insertion bound.
//  * Delete finds the exact record, removes it from the buffer or marks a
//    tombstone; once tombstones outnumber live records the whole forest is
//    rebuilt, keeping space linear and deletions O(log_B(N/M)) amortised.
//  * A window query runs on every level and the buffer and filters
//    tombstones; each level is worst-case optimal, so the total is
//    O(log(N/M)) times the static bound — the paper's "maintaining the
//    optimal query performance".
//
// Concurrency — snapshot reads under writes (multi-version concurrency):
// the forest is published as a sequence of immutable ForestVersions (the
// level roots, a frozen buffer, a frozen tombstone set).  A level rebuild
// happens entirely on freshly allocated pages: the merge reads the old
// trees, the bulk loader writes new ones, and a single version-pointer
// swap publishes the result; the replaced pages go to an EpochManager
// limbo list and return to the device free list only once every reader
// that could still reach them has drained.  Readers take a SnapshotHandle
// (an epoch guard plus a version pointer) and see a perfectly frozen
// record set — and, because nothing they traverse is ever overwritten or
// recycled underneath them, byte-identical QueryStats — regardless of
// concurrent Insert/Delete traffic.  Writers serialize among themselves.

#ifndef PRTREE_CORE_DYNAMIC_PRTREE_H_
#define PRTREE_CORE_DYNAMIC_PRTREE_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/prtree.h"
#include "io/epoch.h"
#include "rtree/knn.h"
#include "rtree/validate.h"

namespace prtree {

/// Options for the dynamic PR-tree.
struct DynamicPrTreeOptions {
  /// In-memory insertion buffer capacity; 0 derives it from the node
  /// capacity (one block's worth, the natural M-independent choice).
  size_t buffer_capacity = 0;
  /// PR-tree construction options used for level rebuilds.
  PrTreeOptions build;
};

/// \brief An insert/delete/query spatial index with PR-tree query
/// guarantees, built as a logarithmic forest of bulk-loaded PR-trees.
///
/// Records are identified by their (id, rectangle) pair, which must be
/// unique among live records.  Re-inserting an exactly deleted record
/// cancels its pending tombstone; deleting and re-inserting the same id at
/// a new position (the moving-objects pattern) is fully supported.
///
/// Concurrency: any number of threads may query (each query runs on an
/// internally taken snapshot) while any number of threads insert/delete
/// (writers serialize on an internal mutex).  For a stable multi-query
/// view, hold a SnapshotHandle from Snapshot().  A BufferPool kept across
/// updates should be registered with AttachPool() so frames of reclaimed
/// pages are dropped before their ids are recycled (an attached pool must
/// outlive the forest or be detached); a pool used only between updates
/// needs no registration.
template <int D = 2>
class DynamicPRTree {
 public:
  using RecordT = Record<D>;
  using RectT = Rect<D>;
  using TombstoneMap = std::unordered_multimap<DataId, RectT>;

  /// One level of a published version: enough to traverse the static tree
  /// without touching the writer's mutable RTree object.
  struct LevelRoot {
    PageId root;
    size_t size;
  };

  /// An immutable published state of the forest.  Level pages referenced
  /// here are never overwritten (rebuilds are copy-on-write), and never
  /// freed while a snapshot holding this version is alive.
  struct ForestVersion {
    std::vector<LevelRoot> levels;
    std::shared_ptr<const std::vector<RecordT>> buffer;
    std::shared_ptr<const TombstoneMap> tombstones;
    size_t live = 0;
  };

  class SnapshotHandle;

  DynamicPRTree(WorkEnv env,
                const DynamicPrTreeOptions& opts = DynamicPrTreeOptions{})
      : env_(env), opts_(opts), epochs_(env.device), view_(env.device) {
    size_t cap = NodeCapacity<D>(env.device->block_size());
    buffer_capacity_ =
        opts_.buffer_capacity != 0 ? opts_.buffer_capacity : cap;
    buffer_snap_ = std::make_shared<const std::vector<RecordT>>();
    tombstones_snap_ = std::make_shared<const TombstoneMap>();
    PublishLocked();  // version 0: the empty forest
  }

  /// Number of live (non-tombstoned) records.
  size_t size() const {
    std::lock_guard<std::mutex> lock(version_mu_);
    return version_->live;
  }

  /// Number of static levels currently allocated (occupied or not).
  size_t num_levels() const {
    std::lock_guard<std::mutex> lock(version_mu_);
    return version_->levels.size();
  }

  /// Pending tombstones (records physically present but deleted).
  size_t tombstones() const {
    std::lock_guard<std::mutex> lock(version_mu_);
    return version_->tombstones->size();
  }

  /// \brief Inserts `rec`.  Amortised O((1/B) log(N)) block I/Os plus the
  /// buffer append.
  void Insert(const RecordT& rec) {
    std::lock_guard<std::mutex> wl(write_mu_);
    auto it = FindTombstone(rec);
    if (it != tombstones_.end()) {
      // Re-insertion of an exactly deleted record: the physical copy in
      // some level is indistinguishable from the new record, so cancelling
      // the tombstone is the insert.
      tombstones_.erase(it);
      tombstones_dirty_ = true;
      ++live_;
      PublishLocked();
      return;
    }
    buffer_.push_back(rec);
    buffer_dirty_ = true;
    ++live_;
    std::vector<PageId> replaced;
    if (buffer_.size() >= buffer_capacity_) FlushBufferLocked(&replaced);
    PublishLocked();
    epochs_.Retire(std::move(replaced));
  }

  /// \brief Deletes the record matching `rec` exactly.  Returns false if
  /// not present.
  bool Delete(const RecordT& rec) {
    std::lock_guard<std::mutex> wl(write_mu_);
    for (size_t i = 0; i < buffer_.size(); ++i) {
      if (buffer_[i].id == rec.id && buffer_[i].rect == rec.rect) {
        buffer_[i] = buffer_.back();
        buffer_.pop_back();
        buffer_dirty_ = true;
        --live_;
        PublishLocked();
        return true;
      }
    }
    if (FindTombstone(rec) != tombstones_.end()) {
      return false;  // this exact record is already deleted
    }
    // Exact-match probe of the static levels (a writer-private read; the
    // levels only change under write_mu_, which we hold).
    bool found = false;
    for (auto& level : levels_) {
      if (level.empty()) continue;
      level.Query(rec.rect, [&](const RecordT& r) {
        if (r.id == rec.id && r.rect == rec.rect) found = true;
      });
      if (found) break;
    }
    if (!found) return false;
    tombstones_.emplace(rec.id, rec.rect);
    tombstones_dirty_ = true;
    --live_;
    std::vector<PageId> replaced;
    if (tombstones_.size() > live_) RebuildAllLocked(&replaced);
    PublishLocked();
    epochs_.Retire(std::move(replaced));
    return true;
  }

  /// \brief Pins the current version: an epoch guard (pages of this
  /// version will not be reclaimed while the handle lives) plus the
  /// version pointer.  Queries through the handle see one frozen record
  /// set no matter how much concurrent update traffic runs.
  SnapshotHandle Snapshot() const {
    // Enter the epoch *before* loading the version pointer: any version
    // observable after entry retires its pages with a later stamp, so
    // whichever version we load, its pages outlive the guard.
    EpochGuard guard = epochs_.Enter();
    std::shared_ptr<const ForestVersion> version;
    {
      std::lock_guard<std::mutex> lock(version_mu_);
      version = version_;
    }
    return SnapshotHandle(this, std::move(guard), std::move(version));
  }

  /// \brief Window query over the forest; emits every live intersecting
  /// record.  Returns aggregate visit statistics (the buffer scan is
  /// memory-resident and costs no I/O).  If `pool` is given, every level's
  /// node reads go through it (one shared pool serves the whole forest).
  ///
  /// Runs on an internally taken snapshot, so it is safe — and sees a
  /// consistent record set with deterministic QueryStats — concurrently
  /// with Insert/Delete from other threads.
  template <typename Emit>
  QueryStats Query(const RectT& window, Emit emit,
                   BufferPool* pool = nullptr) const {
    return Snapshot().Query(window, emit, pool);
  }

  /// Materialising query.
  std::vector<RecordT> QueryToVector(const RectT& window,
                                     BufferPool* pool = nullptr) const {
    std::vector<RecordT> out;
    Query(window, [&](const RecordT& r) { out.push_back(r); }, pool);
    return out;
  }

  /// \brief k-nearest-neighbour search over the forest: best-first on
  /// every occupied level (tombstones filtered inside the traversal, so
  /// they never displace a live candidate), a scan of the buffer, and a
  /// (distance, id)-ordered merge.  Runs on an internally taken snapshot.
  std::vector<Neighbor<D>> Knn(const std::array<Real, D>& point, size_t k,
                               QueryStats* stats = nullptr,
                               BufferPool* pool = nullptr) const {
    return Snapshot().Knn(point, k, stats, pool);
  }

  /// Registers `pool` so frames of pages reclaimed by rebuilds are
  /// invalidated before the ids can be recycled.  Required for pools kept
  /// across updates; the pool must outlive the forest or be detached.
  void AttachPool(BufferPool* pool) const { epochs_.AttachPool(pool); }
  void DetachPool(BufferPool* pool) const { epochs_.DetachPool(pool); }

  /// The reclamation registry (diagnostics: limbo_pages(),
  /// active_readers()).
  const EpochManager& epochs() const { return epochs_; }

  /// Per-level record counts (diagnostics and tests).
  std::vector<size_t> LevelSizes() const {
    std::lock_guard<std::mutex> lock(version_mu_);
    std::vector<size_t> out;
    for (const auto& level : version_->levels) out.push_back(level.size);
    return out;
  }

  /// Validates every level's structure.  Writer-side call: must not run
  /// concurrently with Insert/Delete.
  Status Validate() const {
    for (const auto& level : levels_) {
      if (level.empty()) continue;
      PRTREE_RETURN_NOT_OK(ValidateTree(level));
    }
    return Status::OK();
  }

  /// \brief A pinned, immutable view of the forest: queries through the
  /// handle all observe the same record set, and the pages they traverse
  /// are guaranteed untouched (not overwritten, not recycled) until the
  /// handle is released.  Move-only; release early with Release() to let
  /// the writer reclaim pages this snapshot was holding.
  class SnapshotHandle {
   public:
    SnapshotHandle(SnapshotHandle&&) noexcept = default;
    SnapshotHandle& operator=(SnapshotHandle&&) noexcept = default;

    /// Live records in this version.
    size_t size() const { return version_->live; }

    /// Drops the epoch pin (idempotent).  The handle must not be queried
    /// afterwards.
    void Release() {
      guard_.Release();
      version_.reset();
    }

    /// Window query over the pinned version; same contract as
    /// DynamicPRTree::Query.  Stats are byte-identical across re-runs on
    /// one handle, writers or no writers.
    template <typename Emit>
    QueryStats Query(const RectT& window, Emit emit,
                     BufferPool* pool = nullptr) const {
      PRTREE_CHECK(version_ != nullptr);  // queried after Release()
      QueryStats qs;
      uint64_t live_results = 0;
      for (const auto& rec : *version_->buffer) {
        if (rec.rect.Intersects(window)) {
          ++live_results;
          emit(rec);
        }
      }
      const TombstoneMap& tombs = *version_->tombstones;
      for (const auto& level : version_->levels) {
        if (level.size == 0) continue;
        qs += tree_->view_.QueryFrom(level.root, window,
                                     [&](const RecordT& r) {
                                       if (Tombstoned(tombs, r)) return;
                                       ++live_results;
                                       emit(r);
                                     },
                                     pool);
      }
      // Per-level stats count physical hits; report live results instead.
      qs.results = live_results;
      return qs;
    }

    std::vector<RecordT> QueryToVector(const RectT& window,
                                       BufferPool* pool = nullptr) const {
      std::vector<RecordT> out;
      Query(window, [&](const RecordT& r) { out.push_back(r); }, pool);
      return out;
    }

    /// kNN over the pinned version; same contract as DynamicPRTree::Knn.
    std::vector<Neighbor<D>> Knn(const std::array<Real, D>& point, size_t k,
                                 QueryStats* stats = nullptr,
                                 BufferPool* pool = nullptr) const {
      PRTREE_CHECK(version_ != nullptr);  // queried after Release()
      std::vector<Neighbor<D>> cand;
      QueryStats agg;
      for (const auto& rec : *version_->buffer) {
        cand.push_back(Neighbor<D>{rec, MinDist<D>(point, rec.rect)});
      }
      const TombstoneMap& tombs = *version_->tombstones;
      for (const auto& level : version_->levels) {
        if (level.size == 0) continue;
        QueryStats ls;
        auto part = KnnSearchFrom<D>(
            tree_->view_, level.root, point, k, &ls, pool,
            [&](const RecordT& r) { return !Tombstoned(tombs, r); });
        agg += ls;
        cand.insert(cand.end(), part.begin(), part.end());
      }
      // Merge the per-level k-best lists and the buffer candidates with
      // the traversal's own ordering: distance, ties by id.
      std::sort(cand.begin(), cand.end(),
                [](const Neighbor<D>& a, const Neighbor<D>& b) {
                  if (a.distance != b.distance) {
                    return a.distance < b.distance;
                  }
                  return a.record.id < b.record.id;
                });
      if (cand.size() > k) cand.resize(k);
      agg.results = cand.size();
      if (stats != nullptr) *stats = agg;
      return cand;
    }

   private:
    friend class DynamicPRTree;
    SnapshotHandle(const DynamicPRTree* tree, EpochGuard guard,
                   std::shared_ptr<const ForestVersion> version)
        : tree_(tree), guard_(std::move(guard)),
          version_(std::move(version)) {}

    const DynamicPRTree* tree_;
    EpochGuard guard_;
    std::shared_ptr<const ForestVersion> version_;
  };

 private:
  /// Capacity of level i: buffer_capacity * 2^(i+1).
  size_t LevelCapacity(size_t i) const {
    return buffer_capacity_ << (i + 1);
  }

  /// Exact (id, rect) membership in a frozen tombstone set.
  static bool Tombstoned(const TombstoneMap& tombs, const RecordT& rec) {
    auto [lo, hi] = tombs.equal_range(rec.id);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == rec.rect) return true;
    }
    return false;
  }

  /// \brief Publishes the working state as a new immutable version.
  /// Caller holds write_mu_.  The version pointer swap is the atomic
  /// commit point; the caller retires replaced pages *after* this returns
  /// (publish-then-retire: a reader can never load a version whose pages
  /// are already in limbo with an older stamp than its entry epoch).
  void PublishLocked() {
    if (buffer_dirty_) {
      buffer_snap_ = std::make_shared<const std::vector<RecordT>>(buffer_);
      buffer_dirty_ = false;
    }
    if (tombstones_dirty_) {
      tombstones_snap_ = std::make_shared<const TombstoneMap>(tombstones_);
      tombstones_dirty_ = false;
    }
    auto v = std::make_shared<ForestVersion>();
    v->levels.reserve(levels_.size());
    for (const auto& level : levels_) {
      v->levels.push_back(LevelRoot{level.root(), level.size()});
    }
    v->buffer = buffer_snap_;
    v->tombstones = tombstones_snap_;
    v->live = live_;
    std::lock_guard<std::mutex> lock(version_mu_);
    version_ = std::move(v);
  }

  /// Merges the buffer into the smallest level that absorbs it, building
  /// the new tree on fresh pages.  The pages of every consumed level land
  /// in `replaced` for the caller to retire after publishing.
  void FlushBufferLocked(std::vector<PageId>* replaced) {
    // Smallest level i whose capacity absorbs the buffer plus levels 0..i.
    size_t total = buffer_.size();
    size_t target = 0;
    while (true) {
      if (target < levels_.size()) total += levels_[target].size();
      if (total <= LevelCapacity(target)) break;
      ++target;
    }
    std::vector<RecordT> all = std::move(buffer_);
    buffer_.clear();
    buffer_dirty_ = true;
    for (size_t i = 0; i <= target && i < levels_.size(); ++i) {
      if (levels_[i].empty()) continue;
      auto recs = DumpRecords(levels_[i]);
      AppendLive(recs, &all);
      levels_[i].DetachPages(replaced);
    }
    while (levels_.size() <= target) levels_.emplace_back(env_.device);
    AbortIfError(BulkLoadPrTree<D>(env_, all, &levels_[target], opts_.build));
  }

  void RebuildAllLocked(std::vector<PageId>* replaced) {
    std::vector<RecordT> all = std::move(buffer_);
    buffer_.clear();
    buffer_dirty_ = true;
    for (auto& level : levels_) {
      if (level.empty()) continue;
      auto recs = DumpRecords(level);
      AppendLive(recs, &all);
      level.DetachPages(replaced);
    }
    PRTREE_CHECK(tombstones_.empty());
    PRTREE_CHECK(all.size() == live_);
    levels_.clear();
    if (all.empty()) return;
    size_t target = 0;
    while (LevelCapacity(target) < all.size()) ++target;
    while (levels_.size() <= target) levels_.emplace_back(env_.device);
    AbortIfError(BulkLoadPrTree<D>(env_, all, &levels_[target], opts_.build));
  }

  /// Appends `recs` to `out`, dropping (and consuming) tombstoned records.
  void AppendLive(const std::vector<RecordT>& recs,
                  std::vector<RecordT>* out) {
    for (const auto& r : recs) {
      auto it = FindTombstone(r);
      if (it != tombstones_.end()) {
        tombstones_.erase(it);
        tombstones_dirty_ = true;
        continue;
      }
      out->push_back(r);
    }
  }

  /// Finds the tombstone matching `rec` exactly (id and rectangle).
  typename TombstoneMap::const_iterator FindTombstone(
      const RecordT& rec) const {
    auto [lo, hi] = tombstones_.equal_range(rec.id);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == rec.rect) return it;
    }
    return tombstones_.end();
  }

  WorkEnv env_;
  DynamicPrTreeOptions opts_;
  size_t buffer_capacity_;

  // ---- writer-private working state (guarded by write_mu_) -------------
  std::vector<RecordT> buffer_;
  std::vector<RTree<D>> levels_;
  // Keyed by id with exact-rectangle equality: two records may share an id
  // transiently (a deleted-but-unpurged copy plus a re-inserted one at a
  // new position), so tombstones must identify the full (id, rect) pair.
  TombstoneMap tombstones_;
  size_t live_ = 0;
  // Frozen copies shared with published versions, re-made only when the
  // corresponding working copy changed since the last publish.
  std::shared_ptr<const std::vector<RecordT>> buffer_snap_;
  std::shared_ptr<const TombstoneMap> tombstones_snap_;
  bool buffer_dirty_ = false;
  bool tombstones_dirty_ = false;

  // ---- reader-facing state ---------------------------------------------
  mutable EpochManager epochs_;
  // A rootless tree over the same device: snapshot traversals borrow its
  // QueryFrom/KnnSearchFrom (which never touch root/height/size), keeping
  // them independent of the writer's mutable level objects.
  RTree<D> view_;
  std::mutex write_mu_;          // serializes Insert/Delete
  mutable std::mutex version_mu_;  // guards version_
  std::shared_ptr<const ForestVersion> version_;
};

}  // namespace prtree

#endif  // PRTREE_CORE_DYNAMIC_PRTREE_H_
