// Dynamic PR-tree via the external logarithmic method (§1.2, §4; [4, 20]).
//
// The bulk-loaded PR-tree answers queries worst-case optimally, but Guttman
// updates destroy that guarantee.  The logarithmic method instead keeps a
// forest of O(log(N/M)) static PR-trees with geometrically increasing
// capacities plus a small in-memory insertion buffer:
//
//  * Insert appends to the buffer; when it fills, the buffer and the
//    occupied levels 0..i are merged and rebuilt into the smallest level i
//    whose capacity holds them all.  Rebuilds use the optimal bulk loader,
//    giving the paper's O(log_B(N/M) + (1/B) log_{M/B}(N/B) log2(N/M))
//    amortised insertion bound.
//  * Delete finds the exact record, removes it from the buffer or marks a
//    tombstone; once tombstones outnumber live records the whole forest is
//    rebuilt, keeping space linear and deletions O(log_B(N/M)) amortised.
//  * A window query runs on every level and the buffer and filters
//    tombstones; each level is worst-case optimal, so the total is
//    O(log(N/M)) times the static bound — the paper's "maintaining the
//    optimal query performance".

#ifndef PRTREE_CORE_DYNAMIC_PRTREE_H_
#define PRTREE_CORE_DYNAMIC_PRTREE_H_

#include <unordered_map>
#include <vector>

#include "core/prtree.h"
#include "rtree/validate.h"

namespace prtree {

/// Options for the dynamic PR-tree.
struct DynamicPrTreeOptions {
  /// In-memory insertion buffer capacity; 0 derives it from the node
  /// capacity (one block's worth, the natural M-independent choice).
  size_t buffer_capacity = 0;
  /// PR-tree construction options used for level rebuilds.
  PrTreeOptions build;
};

/// \brief An insert/delete/query spatial index with PR-tree query
/// guarantees, built as a logarithmic forest of bulk-loaded PR-trees.
///
/// Records are identified by their (id, rectangle) pair, which must be
/// unique among live records.  Re-inserting an exactly deleted record
/// cancels its pending tombstone; deleting and re-inserting the same id at
/// a new position (the moving-objects pattern) is fully supported.
template <int D = 2>
class DynamicPRTree {
 public:
  using RecordT = Record<D>;
  using RectT = Rect<D>;

  DynamicPRTree(WorkEnv env,
                const DynamicPrTreeOptions& opts = DynamicPrTreeOptions{})
      : env_(env), opts_(opts) {
    size_t cap = NodeCapacity<D>(env.device->block_size());
    buffer_capacity_ =
        opts_.buffer_capacity != 0 ? opts_.buffer_capacity : cap;
  }

  /// Number of live (non-tombstoned) records.
  size_t size() const { return live_; }

  /// Number of static levels currently allocated (occupied or not).
  size_t num_levels() const { return levels_.size(); }

  /// Pending tombstones (records physically present but deleted).
  size_t tombstones() const { return tombstones_.size(); }

  /// \brief Inserts `rec`.  Amortised O((1/B) log(N)) block I/Os plus the
  /// buffer append.
  void Insert(const RecordT& rec) {
    auto it = FindTombstone(rec);
    if (it != tombstones_.end()) {
      // Re-insertion of an exactly deleted record: the physical copy in
      // some level is indistinguishable from the new record, so cancelling
      // the tombstone is the insert.
      tombstones_.erase(it);
      ++live_;
      return;
    }
    buffer_.push_back(rec);
    ++live_;
    if (buffer_.size() >= buffer_capacity_) FlushBuffer();
  }

  /// \brief Deletes the record matching `rec` exactly.  Returns false if
  /// not present.
  bool Delete(const RecordT& rec) {
    for (size_t i = 0; i < buffer_.size(); ++i) {
      if (buffer_[i].id == rec.id && buffer_[i].rect == rec.rect) {
        buffer_[i] = buffer_.back();
        buffer_.pop_back();
        --live_;
        return true;
      }
    }
    if (FindTombstone(rec) != tombstones_.end()) {
      return false;  // this exact record is already deleted
    }
    // Exact-match probe of the static levels.
    bool found = false;
    for (auto& level : levels_) {
      if (level.empty()) continue;
      level.Query(rec.rect, [&](const RecordT& r) {
        if (r.id == rec.id && r.rect == rec.rect) found = true;
      });
      if (found) break;
    }
    if (!found) return false;
    tombstones_.emplace(rec.id, rec.rect);
    --live_;
    if (tombstones_.size() > live_) RebuildAll();
    return true;
  }

  /// \brief Window query over the forest; emits every live intersecting
  /// record.  Returns aggregate visit statistics (the buffer scan is
  /// memory-resident and costs no I/O).  If `pool` is given, every level's
  /// node reads go through it (one shared pool serves the whole forest).
  ///
  /// Concurrency: queries are read-only over the buffer, levels and
  /// tombstones, so any number of threads may query one forest through a
  /// shared pool as long as no Insert/Delete runs concurrently — the same
  /// readers-xor-writer contract as the static tree.  Level rebuilds write
  /// to the device without telling any pool, so after an Insert/Delete the
  /// caller must Clear() a pool it keeps across updates.
  template <typename Emit>
  QueryStats Query(const RectT& window, Emit emit,
                   BufferPool* pool = nullptr) const {
    QueryStats qs;
    uint64_t live_results = 0;
    for (const auto& rec : buffer_) {
      if (rec.rect.Intersects(window)) {
        ++live_results;
        emit(rec);
      }
    }
    for (const auto& level : levels_) {
      if (level.empty()) continue;
      qs += level.Query(window, [&](const RecordT& r) {
        if (FindTombstone(r) != tombstones_.end()) return;
        ++live_results;
        emit(r);
      }, pool);
    }
    // Per-level stats count physical hits; report live results instead.
    qs.results = live_results;
    return qs;
  }

  /// Materialising query.
  std::vector<RecordT> QueryToVector(const RectT& window,
                                     BufferPool* pool = nullptr) const {
    std::vector<RecordT> out;
    Query(window, [&](const RecordT& r) { out.push_back(r); }, pool);
    return out;
  }

  /// Per-level record counts (diagnostics and tests).
  std::vector<size_t> LevelSizes() const {
    std::vector<size_t> out;
    for (const auto& level : levels_) out.push_back(level.size());
    return out;
  }

  /// Validates every level's structure.
  Status Validate() const {
    for (const auto& level : levels_) {
      if (level.empty()) continue;
      PRTREE_RETURN_NOT_OK(ValidateTree(level));
    }
    return Status::OK();
  }

 private:
  /// Capacity of level i: buffer_capacity * 2^(i+1).
  size_t LevelCapacity(size_t i) const {
    return buffer_capacity_ << (i + 1);
  }

  void FlushBuffer() {
    // Smallest level i whose capacity absorbs the buffer plus levels 0..i.
    size_t total = buffer_.size();
    size_t target = 0;
    while (true) {
      if (target < levels_.size()) total += levels_[target].size();
      if (total <= LevelCapacity(target)) break;
      ++target;
    }
    std::vector<RecordT> all = std::move(buffer_);
    buffer_.clear();
    for (size_t i = 0; i <= target && i < levels_.size(); ++i) {
      if (levels_[i].empty()) continue;
      auto recs = DumpRecords(levels_[i]);
      AppendLive(recs, &all);
      levels_[i].FreeAll();
    }
    while (levels_.size() <= target) levels_.emplace_back(env_.device);
    AbortIfError(BulkLoadPrTree<D>(env_, all, &levels_[target], opts_.build));
  }

  void RebuildAll() {
    std::vector<RecordT> all = std::move(buffer_);
    buffer_.clear();
    for (auto& level : levels_) {
      if (level.empty()) continue;
      auto recs = DumpRecords(level);
      AppendLive(recs, &all);
      level.FreeAll();
    }
    PRTREE_CHECK(tombstones_.empty());
    PRTREE_CHECK(all.size() == live_);
    levels_.clear();
    if (all.empty()) return;
    size_t target = 0;
    while (LevelCapacity(target) < all.size()) ++target;
    while (levels_.size() <= target) levels_.emplace_back(env_.device);
    AbortIfError(BulkLoadPrTree<D>(env_, all, &levels_[target], opts_.build));
  }

  /// Appends `recs` to `out`, dropping (and consuming) tombstoned records.
  void AppendLive(const std::vector<RecordT>& recs,
                  std::vector<RecordT>* out) {
    for (const auto& r : recs) {
      auto it = FindTombstone(r);
      if (it != tombstones_.end()) {
        tombstones_.erase(it);
        continue;
      }
      out->push_back(r);
    }
  }

  /// Finds the tombstone matching `rec` exactly (id and rectangle).
  typename std::unordered_multimap<DataId, RectT>::const_iterator
  FindTombstone(const RecordT& rec) const {
    auto [lo, hi] = tombstones_.equal_range(rec.id);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == rec.rect) return it;
    }
    return tombstones_.end();
  }

  WorkEnv env_;
  DynamicPrTreeOptions opts_;
  size_t buffer_capacity_;
  std::vector<RecordT> buffer_;
  std::vector<RTree<D>> levels_;
  // Keyed by id with exact-rectangle equality: two records may share an id
  // transiently (a deleted-but-unpurged copy plus a re-inserted one at a
  // new position), so tombstones must identify the full (id, rect) pair.
  std::unordered_multimap<DataId, RectT> tombstones_;
  size_t live_ = 0;
};

}  // namespace prtree

#endif  // PRTREE_CORE_DYNAMIC_PRTREE_H_
