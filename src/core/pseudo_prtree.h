// The pseudo-PR-tree (§2.1) — the building block of the PR-tree.
//
// A pseudo-PR-tree on a set S of rectangles is a 2D-dimensional kd-tree on
// the corner transformation S*, augmented so that every internal node first
// extracts 2D "priority leaves": the B rectangles that are most extreme in
// each of the 2D directions (leftmost left edges, bottommost bottom edges,
// rightmost right edges, topmost top edges for D = 2).  The remaining
// rectangles are split at the median of one corner coordinate, cycling
// through the 2D coordinates round-robin by depth.
//
// Lemma 2 gives the payoff: a window query visits only
// O((N/B)^(1-1/d) + T/B) nodes — the structure this library exists to
// reproduce.
//
// This header implements the in-memory builder.  It is used directly when a
// construction stage fits in memory (the paper's base case, which also makes
// the "slightly unbalanced" multiple-of-B splits that give ~100 % packing),
// by the I/O-efficient grid builder (core/grid_builder.h) for its recursion
// base, and by tests that check the structural invariants.  Only the leaf
// sets matter for PR-tree construction — §2.2 discards the internal kd
// nodes — so the builder's primary product is a stream of leaf chunks; an
// explicit queryable pseudo-PR-tree index is also provided for §2.1
// experiments and tests.

#ifndef PRTREE_CORE_PSEUDO_PRTREE_H_
#define PRTREE_CORE_PSEUDO_PRTREE_H_

#include <algorithm>
#include <vector>

#include "core/corner_order.h"
#include "geom/rect.h"
#include "io/write_stager.h"
#include "rtree/rtree.h"
#include "util/check.h"
#include "util/parallel.h"

namespace prtree {

/// Identifies what role a leaf chunk plays in its pseudo-PR-tree node.
/// Values 0..2D-1 are priority leaves for that corner direction; kPlainLeaf
/// marks kd-subdivision leaves (and the chunks of small nodes).
inline constexpr int kPlainLeaf = -1;

/// \brief A leaf chunk emitted by the builder: `count` records starting at
/// `offset` in the (reordered) input array.
///
/// `subtree_end` is the end offset of the pseudo-PR-tree node's whole
/// range; for a priority leaf in direction c, every record in
/// [offset + count, subtree_end) is no more extreme than the chunk's least
/// extreme member — the invariant tests verify.
struct PseudoLeafChunk {
  size_t offset;
  size_t count;
  int dir;           // kPlainLeaf or a direction in [0, 2D)
  int depth;         // kd depth of the emitting node
  size_t subtree_end;
};

/// \brief In-memory pseudo-PR-tree construction over a record array.
///
/// The records vector is permuted in place; leaves are contiguous ranges of
/// the permuted array, reported through a callback in construction order.
template <int D>
class PseudoPRTreeBuilder {
 public:
  using Rec = Record<D>;
  static constexpr int kDirs = 2 * D;

  /// \param capacity      the paper's B: records per leaf (R-tree fan-out).
  /// \param priority_size records per priority leaf; defaults to B (the
  ///        PR-tree).  Values below B move toward Agarwal et al.'s
  ///        structure [2], whose priority "boxes" hold a single rectangle
  ///        (§2.1) — exposed for the ablation benchmark.
  explicit PseudoPRTreeBuilder(size_t capacity, size_t priority_size = 0)
      : capacity_(capacity),
        priority_size_(priority_size == 0 ? capacity : priority_size) {
    PRTREE_CHECK(capacity_ >= 1);
    PRTREE_CHECK(priority_size_ >= 1 && priority_size_ <= capacity_);
  }

  /// \brief Builds the pseudo-PR-tree over `records` (permuted in place),
  /// invoking `emit(const PseudoLeafChunk&)` for every leaf.
  ///
  /// `start_depth` seeds the round-robin split dimension; the grid builder
  /// passes the kd depth already consumed by its top phase.
  ///
  /// When `pool` is non-null the left/right kd recursion runs as pool tasks
  /// down to a depth cutoff.  The permutation and the emitted chunk
  /// sequence are *identical* to the serial build: subtrees permute
  /// disjoint subranges, every selection runs on the same data either way,
  /// and each subtree's chunks are buffered and spliced back in DFS order
  /// before `emit` sees them.  `emit` itself is always invoked on the
  /// calling thread.
  template <typename Emit>
  void EmitLeaves(std::vector<Rec>* records, Emit emit, int start_depth = 0,
                  ThreadPool* pool = nullptr) const {
    const size_t n = records->size();
    if (pool == nullptr || pool->num_threads() <= 1 ||
        n <= ParallelGrain()) {
      Build(records->data(), 0, n, start_depth, emit);
      return;
    }
    // 2x oversubscription of fork leaves keeps the pool busy despite the
    // slightly unbalanced multiple-of-B splits.
    int cutoff = 1;
    while ((size_t{1} << cutoff) < 2 * pool->num_threads()) ++cutoff;
    std::vector<PseudoLeafChunk> chunks;
    BuildParallel(records->data(), 0, n, start_depth, cutoff, pool, &chunks);
    for (const PseudoLeafChunk& c : chunks) emit(c);
  }

 private:
  /// Smallest subproblem worth forking: below this, task overhead beats
  /// the O(n) selection work; also guarantees BuildParallel only ever
  /// splits full nodes.
  size_t ParallelGrain() const {
    return std::max<size_t>(kDirs * priority_size_ + 2 * capacity_, 1u << 13);
  }

  template <typename Emit>
  void Build(Rec* data, size_t offset, size_t n, int depth,
             Emit& emit) const {
    const size_t b = capacity_;
    if (n == 0) return;
    if (n <= b) {
      // Single leaf (the recursion base of the definition).
      emit(PseudoLeafChunk{offset, n, kPlainLeaf, depth, offset + n});
      return;
    }
    if (n <= kDirs * priority_size_ + 2 * b) {
      EmitSmallNode(data, offset, n, depth, emit);
      return;
    }
    size_t skip = 0, left = 0;
    SplitFullNode(data, offset, n, depth, emit, &skip, &left);
    Build(data + skip, offset + skip, left, depth + 1, emit);
    Build(data + skip + left, offset + skip + left, n - skip - left,
          depth + 1, emit);
  }

  /// Forked variant of Build: chunks are appended to `out` in the exact
  /// serial DFS order (priority leaves, then the left subtree's chunks,
  /// then the right's).
  void BuildParallel(Rec* data, size_t offset, size_t n, int depth,
                     int cutoff, ThreadPool* pool,
                     std::vector<PseudoLeafChunk>* out) const {
    auto collect = [out](const PseudoLeafChunk& c) { out->push_back(c); };
    if (cutoff <= 0 || n <= ParallelGrain()) {
      Build(data, offset, n, depth, collect);
      return;
    }
    size_t skip = 0, left = 0;
    SplitFullNode(data, offset, n, depth, collect, &skip, &left);
    std::vector<PseudoLeafChunk> left_chunks;
    ThreadPool::TaskGroup group;
    pool->Submit(&group, [this, data, offset, skip, left, depth, cutoff,
                          pool, &left_chunks] {
      BuildParallel(data + skip, offset + skip, left, depth + 1, cutoff - 1,
                    pool, &left_chunks);
    });
    std::vector<PseudoLeafChunk> right_chunks;
    BuildParallel(data + skip + left, offset + skip + left, n - skip - left,
                  depth + 1, cutoff - 1, pool, &right_chunks);
    pool->WaitFor(&group);
    out->insert(out->end(), left_chunks.begin(), left_chunks.end());
    out->insert(out->end(), right_chunks.begin(), right_chunks.end());
  }

  /// Small node: too few records for 2D full priority leaves plus two
  /// Θ(B) subtrees.  Following §2.1's remark ("we may make the priority
  /// leaves under its parent slightly smaller so that all leaves contain
  /// Θ(B) rectangles"), divide the set evenly into m = ceil(n/B) <= 2D+2
  /// chunks of >= B/2 records, selected most-extreme-first in the
  /// direction cycle.
  template <typename Emit>
  void EmitSmallNode(Rec* data, size_t offset, size_t n, int depth,
                     Emit& emit) const {
    const size_t b = capacity_;
    size_t m = (n + b - 1) / b;
    size_t base = n / m;
    size_t extra = n % m;
    Rec* ptr = data;
    size_t rem = n;
    size_t end = offset + n;
    for (size_t c = 0; c < m; ++c) {
      size_t sz = base + (c < extra ? 1 : 0);
      int dir = static_cast<int>(c % kDirs);
      if (sz < rem) {
        std::nth_element(ptr, ptr + sz, ptr + rem, ExtremeLess<D>{dir});
      }
      emit(PseudoLeafChunk{offset + static_cast<size_t>(ptr - data), sz, dir,
                           depth, end});
      ptr += sz;
      rem -= sz;
    }
    PRTREE_DCHECK(rem == 0);
  }

  /// Full node: emits the 2D priority leaves of exactly priority_size_
  /// extreme records each (= B for the PR-tree) and computes the median
  /// split of the remainder on the round-robin corner coordinate.  On
  /// return the records of [skip, skip + left) / [skip + left, n) are the
  /// left / right kd children.
  template <typename Emit>
  void SplitFullNode(Rec* data, size_t offset, size_t n, int depth,
                     Emit& emit, size_t* skip_out, size_t* left_out) const {
    const size_t b = capacity_;
    const size_t p = priority_size_;
    Rec* ptr = data;
    size_t rem = n;
    size_t end = offset + n;
    for (int c = 0; c < kDirs; ++c) {
      std::nth_element(ptr, ptr + p, ptr + rem, ExtremeLess<D>{c});
      emit(PseudoLeafChunk{offset + static_cast<size_t>(ptr - data), p, c,
                           depth, end});
      ptr += p;
      rem -= p;
    }
    PRTREE_DCHECK(rem >= 2 * b);
    int dim = depth % kDirs;
    // Multiple-of-B left side (§2.1, "slightly unbalanced divisions, so
    // that we have a multiple of B points on one side of each dividing
    // hyperplane"): keeps every kd leaf full except at most one.
    size_t left = (rem / 2 / b) * b;
    PRTREE_DCHECK(left >= b && rem - left >= b);
    std::nth_element(ptr, ptr + left, ptr + rem, CoordLess<D>{dim});
    *skip_out = static_cast<size_t>(ptr - data);
    *left_out = left;
  }

  size_t capacity_;
  size_t priority_size_;
};

/// \brief Builds a queryable pseudo-PR-tree index on a device.
///
/// Unlike the PR-tree, the pseudo-PR-tree is not height-balanced: internal
/// nodes have degree <= 2D + 2 and leaves appear on many levels.  The nodes
/// are stored in the standard block format with each internal node's level
/// set to 1 + max(children levels), so is_leaf and query traversal work
/// unchanged; balance validation does not apply.
///
/// Returned through the shared RTree container so the standard Query is
/// reused; `tree->height()` is the root's level.
template <int D>
void BuildPseudoPRTreeIndex(std::vector<Record<D>>* records,
                            RTree<D>* tree) {
  PRTREE_CHECK(tree->empty());
  if (records->empty()) return;
  BlockDevice* dev = tree->device();
  const size_t cap = tree->capacity();
  PseudoPRTreeBuilder<D> builder(cap);

  // The emitted chunk stream is in DFS order: a node's priority leaves are
  // emitted before its subtrees, and subtree_end tells when a subtree's
  // range closes.  Reconstruct the node structure from that stream.
  struct LevelEntryLocal {
    Rect<D> mbr;
    PageId page;
    int level;
  };
  struct Frame {
    size_t end;                          // subtree range end
    int depth;
    std::vector<LevelEntryLocal> kids;   // children collected so far
  };
  std::vector<Frame> stack;

  std::vector<std::byte> buf(dev->block_size());
  // Node emission happens on this thread in allocation order; the stager
  // batches the writes and drains before the root is installed (nothing
  // reads the pages mid-build).
  WriteStager stager(dev);
  auto write_leaf = [&](const Record<D>* recs, size_t n) {
    NodeView<D> node(buf.data(), dev->block_size());
    node.Format(0);
    for (size_t i = 0; i < n; ++i) node.Append(recs[i].rect, recs[i].id);
    PageId page = dev->Allocate();
    Rect<D> mbr = node.ComputeMbr();
    stager.Stage(page, buf.data());
    return LevelEntryLocal{mbr, page, 0};
  };
  auto close_frame = [&](Frame& f) {
    // Write the internal node over the collected children.
    PRTREE_CHECK(!f.kids.empty());
    if (f.kids.size() == 1) return f.kids.front();  // degenerate: hoist
    NodeView<D> node(buf.data(), dev->block_size());
    int level = 0;
    for (const auto& k : f.kids) level = std::max(level, k.level);
    ++level;
    node.Format(static_cast<uint16_t>(level));
    Rect<D> mbr = Rect<D>::Empty();
    for (const auto& k : f.kids) {
      node.Append(k.mbr, k.page);
      mbr.ExtendToCover(k.mbr);
    }
    PageId page = dev->Allocate();
    stager.Stage(page, buf.data());
    return LevelEntryLocal{mbr, page, level};
  };

  builder.EmitLeaves(records, [&](const PseudoLeafChunk& chunk) {
    // Open frames for any nodes this chunk begins (the emission order
    // guarantees a node's first chunk arrives before any of its content).
    if (stack.empty() || chunk.subtree_end != stack.back().end ||
        chunk.depth != stack.back().depth) {
      stack.push_back(Frame{chunk.subtree_end, chunk.depth, {}});
    }
    stack.back().kids.push_back(
        write_leaf(records->data() + chunk.offset, chunk.count));
    // Close every frame whose range ends at this chunk's end.
    while (stack.size() > 1 &&
           chunk.offset + chunk.count == stack.back().end) {
      LevelEntryLocal done = close_frame(stack.back());
      stack.pop_back();
      stack.back().kids.push_back(done);
    }
  });
  PRTREE_CHECK(stack.size() == 1);
  LevelEntryLocal root = close_frame(stack.front());
  stager.Drain();
  tree->SetRoot(root.page, root.level, records->size());
}

}  // namespace prtree

#endif  // PRTREE_CORE_PSEUDO_PRTREE_H_
