// The Priority R-tree (§2.2) — the paper's primary contribution.
//
// A PR-tree is a normal height-balanced R-tree built in bottom-up stages:
// stage 0 groups the N input rectangles into leaves using a pseudo-PR-tree
// on S_0 = S and keeps only its leaves; stage i >= 1 does the same on S_i =
// the bounding boxes of the stage-(i-1) nodes, producing level-i nodes.
// The construction ends when a stage's input fits in a single block, which
// becomes the root.  Theorem 1: bulk-loading costs
// O((N/B) log_{M/B} (N/B)) I/Os and window queries cost
// O(sqrt(N/B) + T/B) I/Os (O((N/B)^{1-1/d} + T/B) in d dimensions,
// Theorem 2 — the whole construction is templated on D).
//
// Each stage uses the I/O-efficient grid algorithm (core/grid_builder.h)
// while its input exceeds the memory budget and the in-memory builder
// (core/pseudo_prtree.h) once it fits — exactly the paper's recursion
// structure, so measured build I/Os reproduce Figures 9-10.

#ifndef PRTREE_CORE_PRTREE_H_
#define PRTREE_CORE_PRTREE_H_

#include <vector>

#include "core/grid_builder.h"
#include "core/pseudo_prtree.h"
#include "io/stream.h"
#include "io/work_env.h"
#include "io/write_stager.h"
#include "rtree/builder.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace prtree {

/// Options for PR-tree bulk loading.
struct PrTreeOptions {
  /// Priority-leaf capacity as a fraction of node capacity.  1.0 is the
  /// paper's structure (priority leaves of size B); smaller values are the
  /// ablation toward Agarwal et al.'s size-1 priority boxes [2].
  double priority_fraction = 1.0;

  /// Force the external grid algorithm even for stage inputs that fit in
  /// memory (tests use this to exercise the grid path end to end).
  bool force_grid = false;
};

namespace internal {

/// Builds one PR-tree stage: groups `input` records into nodes at `level`
/// via a pseudo-PR-tree, returning the finished nodes' (MBR, page) entries.
template <int D>
std::vector<LevelEntry<D>> BuildPrStage(WorkEnv env,
                                        std::vector<Record<D>>* input,
                                        int level, size_t node_capacity,
                                        const PrTreeOptions& opts) {
  BlockDevice* dev = env.device;
  std::vector<LevelEntry<D>> finished;
  std::vector<std::byte> buf(dev->block_size());
  // Chunk emission arrives on this thread in allocation order; the stager
  // coalesces the node writes into device batches and is drained before
  // either return below (nothing reads these pages during the stage).
  WriteStager stager(dev);
  auto write_chunk = [&](const Record<D>* recs, size_t n) {
    NodeView<D> node(buf.data(), dev->block_size());
    node.Format(static_cast<uint16_t>(level));
    for (size_t i = 0; i < n; ++i) node.Append(recs[i].rect, recs[i].id);
    PageId page = dev->Allocate();
    stager.Stage(page, buf.data());
    finished.push_back(LevelEntry<D>{node.ComputeMbr(), page});
  };

  size_t prio_size = std::max<size_t>(
      1, static_cast<size_t>(opts.priority_fraction *
                             static_cast<double>(node_capacity)));
  size_t mem_records = env.MemoryRecords<Record<D>>() / 2;  // working space
  if (!opts.force_grid && input->size() <= std::max(mem_records,
                                                    4 * node_capacity)) {
    PseudoPRTreeBuilder<D> builder(node_capacity, prio_size);
    builder.EmitLeaves(
        input,
        [&](const PseudoLeafChunk& chunk) {
          write_chunk(input->data() + chunk.offset, chunk.count);
        },
        /*start_depth=*/0, env.pool);
    stager.Drain();
    return finished;
  }

  // External path: spill the stage input to a stream and run the grid
  // algorithm.
  Stream<Record<D>> stream(dev);
  stream.Append(*input);
  stream.Flush();
  input->clear();
  input->shrink_to_fit();
  GridBuildOptions gopts;
  gopts.capacity = node_capacity;
  gopts.priority_size = prio_size;
  GridEmitLeaves<D>(env, &stream, gopts,
                    [&](const std::vector<Record<D>>& chunk) {
                      write_chunk(chunk.data(), chunk.size());
                    });
  stager.Drain();
  return finished;
}

}  // namespace internal

/// \brief Bulk-loads `tree` as a PR-tree over `input` (consumed), per §2.2.
///
/// All block transfers are accounted on env.device; the memory budget
/// selects between the grid algorithm and the in-memory base case per
/// stage.  env.pool (if set) parallelises the sorts, the pseudo-PR-tree
/// recursion and the grid base cases; the produced tree is byte-identical
/// for any thread count (see rtree/bulk_loader.h for the contract).
template <int D>
Status BulkLoadPrTree(WorkEnv env, Stream<Record<D>>* input, RTree<D>* tree,
                      const PrTreeOptions& opts = PrTreeOptions{}) {
  if (!tree->empty()) {
    return Status::InvalidArgument("output tree is not empty");
  }
  if (opts.priority_fraction <= 0.0 || opts.priority_fraction > 1.0) {
    return Status::InvalidArgument("priority_fraction must be in (0, 1]");
  }
  input->Flush();
  const size_t n = input->size();
  if (n == 0) return Status::OK();
  const size_t cap = tree->capacity();

  // Stage 0 consumes the input stream.  If it fits in memory, materialise;
  // otherwise the grid path streams it.
  std::vector<LevelEntry<D>> level_entries;
  {
    std::vector<Record<D>> recs;
    size_t mem_records = env.MemoryRecords<Record<D>>() / 2;
    if (!opts.force_grid && n <= std::max(mem_records, 4 * cap)) {
      input->ReadAll(&recs);
      input->Clear();
      level_entries = internal::BuildPrStage<D>(env, &recs, 0, cap, opts);
    } else {
      std::vector<std::byte> buf(env.device->block_size());
      std::vector<LevelEntry<D>> finished;
      WriteStager stager(env.device);  // leaf emission, allocation order
      GridBuildOptions gopts;
      gopts.capacity = cap;
      gopts.priority_size = std::max<size_t>(
          1, static_cast<size_t>(opts.priority_fraction *
                                 static_cast<double>(cap)));
      GridEmitLeaves<D>(env, input, gopts,
                        [&](const std::vector<Record<D>>& chunk) {
                          NodeView<D> node(buf.data(),
                                           env.device->block_size());
                          node.Format(0);
                          for (const auto& r : chunk) {
                            node.Append(r.rect, r.id);
                          }
                          PageId page = env.device->Allocate();
                          stager.Stage(page, buf.data());
                          finished.push_back(
                              LevelEntry<D>{node.ComputeMbr(), page});
                        });
      stager.Drain();
      input->Clear();
      level_entries = std::move(finished);
    }
  }

  // Stages i >= 1 on the bounding boxes of the previous level's nodes
  // (§2.2), until everything fits in one block — the root.
  int level = 0;
  while (level_entries.size() > 1) {
    ++level;
    if (level_entries.size() <= cap) {
      std::vector<std::byte> buf(env.device->block_size());
      NodeView<D> node(buf.data(), env.device->block_size());
      node.Format(static_cast<uint16_t>(level));
      for (const auto& e : level_entries) node.Append(e.mbr, e.page);
      PageId page = env.device->Allocate();
      AbortIfError(env.device->Write(page, buf.data()));
      level_entries.assign(1, LevelEntry<D>{node.ComputeMbr(), page});
      break;
    }
    std::vector<Record<D>> recs;
    recs.reserve(level_entries.size());
    for (const auto& e : level_entries) {
      recs.push_back(Record<D>{e.mbr, e.page});
    }
    level_entries = internal::BuildPrStage<D>(env, &recs, level, cap, opts);
  }
  tree->SetRoot(level_entries.front().page, level, n);
  return Status::OK();
}

/// Convenience overload: loads from a materialised vector.  The input is
/// first spilled to a stream on the device so build I/O accounting matches
/// the stream-based entry point.
template <int D>
Status BulkLoadPrTree(WorkEnv env, const std::vector<Record<D>>& input,
                      RTree<D>* tree,
                      const PrTreeOptions& opts = PrTreeOptions{}) {
  Stream<Record<D>> stream(env.device);
  stream.Append(input);
  stream.Flush();
  return BulkLoadPrTree<D>(env, &stream, tree, opts);
}

}  // namespace prtree

#endif  // PRTREE_CORE_PRTREE_H_
