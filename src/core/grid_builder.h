// I/O-efficient pseudo-PR-tree construction (§2.1, "Efficient construction
// algorithm") — the part of the paper that brings bulk loading from
// O((N/B) log N) down to O((N/B) log_{M/B} (N/B)) I/Os.
//
// One recursion step over a sub-problem of n records:
//
//  1. The records are available as 2D sorted lists L_c (one per corner
//     coordinate, ascending, tie-broken by id).
//  2. Pick z = Θ(M^(1/2D)).  Read the (j·n/z)-th record of each list to get
//     z slab boundaries per dimension, defining a z^(2D) grid; one scan of
//     the records counts the population of every grid cell (the counts fit
//     in memory by the choice of z).
//  3. Build z kd-nodes breadth-first without their priority leaves: the
//     median slab of a node's region is found from the in-memory counts,
//     the exact median record by scanning only that slab's O(n/z) records
//     from the sorted list; the split subdivides the slab's cells (cheap
//     rescan of the same records).
//  4. Fill the 4z priority leaves by "filtering" every record down the
//     partial kd-tree, evicting less extreme records from full leaves
//     (one scan; the leaves fit in memory since M = Ω(B^(4/3))).
//  5. Distribute the 2D sorted lists over the partial tree's leaf regions,
//     omitting records captured by priority leaves (one scan per list),
//     and recurse on each region.  Once a sub-problem fits in memory the
//     in-memory builder finishes it (making the multiple-of-B splits that
//     give ~100 % packing).
//
// As the paper notes, the kd divisions differ slightly from the definition
// (priority records are not removed before medians are computed), but
// Lemma 2's query bound only needs each child to get at most half of its
// parent's points, which holds here by construction.

#ifndef PRTREE_CORE_GRID_BUILDER_H_
#define PRTREE_CORE_GRID_BUILDER_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/corner_order.h"
#include "core/pseudo_prtree.h"
#include "io/external_sort.h"
#include "io/stream.h"
#include "io/work_env.h"
#include "util/check.h"
#include "util/parallel.h"

namespace prtree {

/// Options for the grid bulk loader.
struct GridBuildOptions {
  /// Records per leaf (the paper's B).  Required.
  size_t capacity = 0;
  /// Records per priority leaf (0 = capacity, the PR-tree; smaller values
  /// are the ablation toward Agarwal et al.'s size-1 priority boxes [2]).
  size_t priority_size = 0;
  /// Memory budget override in bytes (0 = use WorkEnv's); tests shrink it
  /// to force deep external recursion on small inputs.
  size_t memory_override = 0;
  /// Grid resolution override (0 = derive z from the memory budget).
  size_t z_override = 0;
};

namespace grid_internal {

/// In-memory population counts of a growing 2D-dimensional grid.
/// Dimension d has sizes_[d] slabs; subdividing a slab re-buckets only that
/// slab's records (provided by the caller).
template <int K>
class GridCounts {
 public:
  explicit GridCounts(const std::array<int, K>& sizes) : sizes_(sizes) {
    size_t total = 1;
    for (int d = 0; d < K; ++d) total *= static_cast<size_t>(sizes_[d]);
    counts_.assign(total, 0);
  }

  int size(int d) const { return sizes_[d]; }

  void Increment(const std::array<int, K>& idx) {
    ++counts_[Flatten(idx)];
  }

  /// Total count of the sub-box [lo, hi) restricted to slab `j` of
  /// dimension `d`.
  uint64_t SliceCount(const std::array<int, K>& lo,
                      const std::array<int, K>& hi, int d, int j) const {
    std::array<int, K> cur = lo;
    cur[d] = j;
    uint64_t total = 0;
    // Iterate the (K-1)-dimensional sub-box.
    while (true) {
      total += counts_[Flatten(cur)];
      int c = 0;
      for (; c < K; ++c) {
        if (c == d) continue;
        if (++cur[c] < hi[c]) break;
        cur[c] = lo[c];
      }
      if (c == K) break;
    }
    return total;
  }

  /// Splits slab `j` of dimension `d` in two.  Both new slabs start at
  /// zero; the caller re-adds the slab's records via Increment.
  void SubdivideSlab(int d, int j) {
    std::array<int, K> new_sizes = sizes_;
    new_sizes[d] += 1;
    size_t total = 1;
    for (int c = 0; c < K; ++c) total *= static_cast<size_t>(new_sizes[c]);
    std::vector<uint32_t> fresh(total, 0);
    // Copy every old cell to its new position; the split slab's two halves
    // stay zero.
    std::array<int, K> idx{};
    while (true) {
      if (idx[d] != j) {
        std::array<int, K> nidx = idx;
        if (idx[d] > j) nidx[d] += 1;
        fresh[FlattenWith(nidx, new_sizes)] = counts_[Flatten(idx)];
      }
      int c = 0;
      for (; c < K; ++c) {
        if (++idx[c] < sizes_[c]) break;
        idx[c] = 0;
      }
      if (c == K) break;
    }
    sizes_ = new_sizes;
    counts_ = std::move(fresh);
  }

 private:
  size_t Flatten(const std::array<int, K>& idx) const {
    return FlattenWith(idx, sizes_);
  }
  static size_t FlattenWith(const std::array<int, K>& idx,
                            const std::array<int, K>& sizes) {
    size_t flat = 0;
    for (int d = 0; d < K; ++d) {
      PRTREE_DCHECK(idx[d] >= 0 && idx[d] < sizes[d]);
      flat = flat * static_cast<size_t>(sizes[d]) +
             static_cast<size_t>(idx[d]);
    }
    return flat;
  }

  std::array<int, K> sizes_;
  std::vector<uint32_t> counts_;
};

/// Slab index of record `r` in dimension `c`: the number of thresholds at
/// or before r in CoordLess(c) order.
template <int D>
int SlabIndex(const std::vector<CoordThreshold>& thresholds,
              const Record<D>& r, int c) {
  auto it = std::upper_bound(
      thresholds.begin(), thresholds.end(), r,
      [c](const Record<D>& rec, const CoordThreshold& t) {
        return BeforeThreshold(rec, c, t);
      });
  return static_cast<int>(it - thresholds.begin());
}

}  // namespace grid_internal

/// \brief Runs the grid algorithm over `input`, emitting every
/// pseudo-PR-tree leaf as `emit(const std::vector<Record<D>>&)`.
///
/// The input stream is read (not consumed); all working streams live on
/// env.device, so the device counters measure the paper's build cost.
///
/// Parallelism: env.pool accelerates the 2D preprocessing sorts (through
/// ExternalSort) and runs the independent in-memory base-case sub-problems
/// as pool tasks.  Finished base cases are retired in discovery order on
/// the calling thread — which performs every emit() and stream Clear() —
/// so the leaf sequence and the device's allocation history are identical
/// to a serial build.  Worker tasks only read from the device.
template <int D, typename Emit>
void GridEmitLeaves(WorkEnv env, Stream<Record<D>>* input,
                    const GridBuildOptions& opts, Emit emit) {
  using Rec = Record<D>;
  constexpr int K = 2 * D;
  PRTREE_CHECK(opts.capacity >= 1);
  const size_t b = opts.capacity;
  const size_t prio =
      opts.priority_size == 0 ? opts.capacity : opts.priority_size;
  PRTREE_CHECK(prio >= 1 && prio <= b);
  const size_t memory =
      opts.memory_override != 0 ? opts.memory_override : env.memory_bytes;
  WorkEnv sort_env{env.device, memory, env.pool};

  input->Flush();
  if (input->size() == 0) return;

  // A sub-problem: the same record set sorted by each corner coordinate.
  struct Sub {
    std::vector<Stream<Rec>> lists;  // K streams
    size_t n = 0;
    int depth = 0;
  };

  // Preprocessing: 2D external sorts of the input (which is only read).
  Sub top;
  top.n = input->size();
  top.depth = 0;
  for (int c = 0; c < K; ++c) {
    top.lists.push_back(ExternalSort(sort_env, input, CoordLess<D>{c}));
  }

  std::deque<Sub> pending;
  pending.push_back(std::move(top));

  const size_t mem_records = std::max<size_t>(
      memory / sizeof(Rec) / 2, 4 * b);  // working space for the base case

  ThreadPool* pool =
      (env.pool != nullptr && env.pool->num_threads() > 1) ? env.pool
                                                           : nullptr;
  PseudoPRTreeBuilder<D> builder(b, prio);

  // In-memory base cases: a pool task reads the region's records and
  // computes its leaf chunks; the calling thread retires finished cases in
  // discovery order, performing the emits and freeing the region's streams
  // — so emission order and device allocation order match the serial
  // build.  Backpressure below keeps the inflight record buffers within
  // ~2x the advisory memory budget (each case holds at most mem_records =
  // M/2 of records), on top of a num_threads cap; retire timing never
  // touches the device out of order, so the bound costs no determinism.
  struct BaseCase {
    Sub sub;
    std::vector<Rec> recs;
    std::vector<PseudoLeafChunk> chunks;
    ThreadPool::TaskGroup done;
  };
  std::deque<std::unique_ptr<BaseCase>> inflight;
  size_t inflight_records = 0;
  const size_t max_inflight = pool != nullptr ? pool->num_threads() : 1;
  const size_t max_inflight_records = 2 * mem_records;

  auto run_base = [&builder, pool, b](BaseCase* bc) {
    bc->sub.lists[0].ReadAll(&bc->recs);
    bc->chunks.reserve(bc->recs.size() / b + 2);
    builder.EmitLeaves(
        &bc->recs,
        [bc](const PseudoLeafChunk& c) { bc->chunks.push_back(c); },
        bc->sub.depth, pool);
  };
  std::vector<Rec> chunk_buf;
  auto retire_one = [&]() {
    std::unique_ptr<BaseCase> bc = std::move(inflight.front());
    inflight.pop_front();
    if (pool != nullptr) pool->WaitFor(&bc->done);
    inflight_records -= bc->sub.n;
    // Clear before emitting, exactly like the pre-pipeline serial code:
    // the emitted leaf pages then reuse the region's just-freed stream
    // pages, keeping the device's allocation history (page layout,
    // peak_allocated) identical to historical serial builds.  Safe: the
    // region's task has finished reading (WaitFor above).
    for (auto& l : bc->sub.lists) l.Clear();
    for (const PseudoLeafChunk& c : bc->chunks) {
      chunk_buf.assign(bc->recs.begin() + c.offset,
                       bc->recs.begin() + c.offset + c.count);
      emit(chunk_buf);
    }
  };
  auto retire_all = [&]() {
    while (!inflight.empty()) retire_one();
  };

  while (!pending.empty()) {
    Sub sub = std::move(pending.front());
    pending.pop_front();
    PRTREE_CHECK(sub.n == sub.lists[0].size());

    // ---- recursion base: build in memory ---------------------------
    if (sub.n <= mem_records) {
      auto bc = std::make_unique<BaseCase>();
      bc->sub = std::move(sub);
      BaseCase* raw = bc.get();
      if (pool != nullptr) {
        while (!inflight.empty() &&
               (inflight.size() >= max_inflight ||
                inflight_records + raw->sub.n > max_inflight_records)) {
          retire_one();
        }
        inflight_records += raw->sub.n;
        inflight.push_back(std::move(bc));
        pool->Submit(&raw->done, [&run_base, raw] { run_base(raw); });
      } else {
        inflight_records += raw->sub.n;
        inflight.push_back(std::move(bc));
        run_base(raw);
        retire_one();
      }
      continue;
    }

    // A grid phase emits its own priority leaves below; retire every
    // earlier base case first so the global leaf order stays serial.
    retire_all();

    // ---- grid phase -------------------------------------------------
    const size_t n = sub.n;
    // z: number of kd-nodes this phase and initial slabs per dimension.
    size_t z = opts.z_override;
    if (z == 0) {
      z = static_cast<size_t>(
          std::floor(std::pow(static_cast<double>(memory / sizeof(Rec)),
                              1.0 / K)));
      // The count grid must also fit: at most 2·z^K uint32 cells.
      while (z > 2 && 2.0 * std::pow(static_cast<double>(z), K) *
                              sizeof(uint32_t) >
                          static_cast<double>(memory) / 2.0) {
        --z;
      }
    }
    // The cap keeps the O(z^(2D+1)) in-memory grid arithmetic negligible
    // next to the O(n/B) block transfers it saves.
    z = std::clamp<size_t>(z, 2, 32);

    // Initial slab thresholds at ranks j*n/z, and slab start ranks.
    std::array<std::vector<CoordThreshold>, K> thresholds;
    std::array<std::vector<size_t>, K> starts;  // slab j = [starts[j], starts[j+1])
    for (int c = 0; c < K; ++c) {
      starts[c].push_back(0);
      std::vector<Rec> one;
      for (size_t j = 1; j < z; ++j) {
        size_t rank = j * n / z;
        if (rank == 0 || rank >= n || rank == starts[c].back()) continue;
        sub.lists[c].ReadRange(rank, 1, &one);
        thresholds[c].push_back(
            CoordThreshold{one[0].rect.CornerCoord(c), one[0].id});
        starts[c].push_back(rank);
      }
      starts[c].push_back(n);
    }

    // Count grid population with one scan.
    std::array<int, K> sizes;
    for (int c = 0; c < K; ++c) {
      sizes[c] = static_cast<int>(thresholds[c].size()) + 1;
    }
    grid_internal::GridCounts<K> counts(sizes);
    {
      typename Stream<Rec>::Reader reader(&sub.lists[0]);
      std::array<int, K> idx;
      while (!reader.Done()) {
        Rec r = reader.Next();
        for (int c = 0; c < K; ++c) {
          idx[c] = grid_internal::SlabIndex<D>(thresholds[c], r, c);
        }
        counts.Increment(idx);
      }
    }

    // ---- build z kd-nodes breadth-first -----------------------------
    struct KdNode {
      int dim;
      CoordThreshold t;
      int left_node = -1, right_node = -1;      // child kd-node index
      int left_region = -1, right_region = -1;  // or final region index
    };
    struct Region {
      std::array<int, K> lo, hi;  // slab-index box [lo, hi)
      size_t count;
      int depth;
      int parent;    // kd-node index, -1 for the root region
      bool is_left;  // which side of the parent
    };
    std::vector<KdNode> nodes;
    std::vector<Region> final_regions;
    std::deque<Region> frontier;
    {
      Region root;
      root.lo.fill(0);
      for (int c = 0; c < K; ++c) root.hi[c] = counts.size(c);
      root.count = n;
      root.depth = sub.depth;
      root.parent = -1;
      root.is_left = false;
      frontier.push_back(root);
    }
    auto link_region = [&](const Region& r, int region_id) {
      if (r.parent < 0) return;
      if (r.is_left) {
        nodes[r.parent].left_region = region_id;
      } else {
        nodes[r.parent].right_region = region_id;
      }
    };
    const size_t min_split = std::max<size_t>(2 * (K + 2) * b, 2);
    std::vector<Rec> slab_recs;

    while (!frontier.empty()) {
      if (nodes.size() >= z || frontier.front().count <= min_split) {
        // Out of node budget, or too small to split: everything left in
        // the frontier becomes a recursion region.
        Region r = frontier.front();
        frontier.pop_front();
        link_region(r, static_cast<int>(final_regions.size()));
        final_regions.push_back(r);
        continue;
      }
      Region r = frontier.front();
      frontier.pop_front();
      int d = r.depth % K;

      // Median slab of the region along d, from the in-memory counts.
      size_t target = r.count / 2;
      size_t cum = 0;
      int jstar = -1;
      for (int j = r.lo[d]; j < r.hi[d]; ++j) {
        uint64_t scnt = counts.SliceCount(r.lo, r.hi, d, j);
        if (cum + scnt > target) {
          jstar = j;
          break;
        }
        cum += scnt;
      }
      PRTREE_CHECK(jstar >= 0);
      size_t inner = target - cum;

      int node_idx = static_cast<int>(nodes.size());
      KdNode kd;
      kd.dim = d;
      Region left = r, right = r;
      left.depth = right.depth = r.depth + 1;
      left.parent = right.parent = node_idx;
      left.is_left = true;
      right.is_left = false;
      left.count = target;
      right.count = r.count - target;

      if (inner == 0 && jstar > r.lo[d]) {
        // The existing slab boundary is exactly the median cut.
        kd.t = thresholds[d][jstar - 1];
        left.hi[d] = jstar;
        right.lo[d] = jstar;
      } else {
        // Scan slab j* from the sorted list to find the exact median and
        // subdivide the slab (§2.1: "we can determine the exact xmin-value
        // x to use ... then we subdivide the z^3 grid cells intersected").
        size_t seg_begin = starts[d][jstar];
        size_t seg_end = starts[d][jstar + 1];
        sub.lists[d].ReadRange(seg_begin, seg_end - seg_begin, &slab_recs);
        // Keys of the region's records inside the slab.
        std::vector<Rec> in_region;
        for (const Rec& rec : slab_recs) {
          bool inside = true;
          for (int c = 0; c < K && inside; ++c) {
            if (c == d) continue;
            int idx = grid_internal::SlabIndex<D>(thresholds[c], rec, c);
            inside = idx >= r.lo[c] && idx < r.hi[c];
          }
          if (inside) in_region.push_back(rec);
        }
        PRTREE_CHECK(inner < in_region.size());
        std::nth_element(in_region.begin(), in_region.begin() + inner,
                         in_region.end(), CoordLess<D>{d});
        const Rec& med = in_region[inner];
        kd.t = CoordThreshold{med.rect.CornerCoord(d), med.id};

        // Global split position of the slab, then re-bucket its records.
        size_t slab_left = 0;
        for (const Rec& rec : slab_recs) {
          if (BeforeThreshold(rec, d, kd.t)) ++slab_left;
        }
        counts.SubdivideSlab(d, jstar);
        thresholds[d].insert(thresholds[d].begin() + jstar, kd.t);
        starts[d].insert(starts[d].begin() + jstar + 1,
                         seg_begin + slab_left);
        std::array<int, K> idx;
        for (const Rec& rec : slab_recs) {
          for (int c = 0; c < K; ++c) {
            idx[c] = grid_internal::SlabIndex<D>(thresholds[c], rec, c);
          }
          counts.Increment(idx);
        }
        // Shift every live region's slab interval past the split.
        auto shift = [&](Region* reg) {
          if (reg->lo[d] > jstar) reg->lo[d] += 1;
          if (reg->hi[d] > jstar) reg->hi[d] += 1;
        };
        for (auto& reg : frontier) shift(&reg);
        for (auto& reg : final_regions) shift(&reg);
        left.hi[d] = jstar + 1;
        right.lo[d] = jstar + 1;
        right.hi[d] = r.hi[d] + 1;
      }

      nodes.push_back(kd);
      if (r.parent >= 0) {
        if (r.is_left) {
          nodes[r.parent].left_node = node_idx;
        } else {
          nodes[r.parent].right_node = node_idx;
        }
      }
      frontier.push_back(left);
      frontier.push_back(right);
    }

    if (nodes.empty()) {
      // Degenerate (tiny n with an overridden budget): fall back to the
      // in-memory builder to guarantee progress.  Inline (not a task) so
      // the leaves land exactly here in the emission order.
      auto bc = std::make_unique<BaseCase>();
      bc->sub = std::move(sub);
      BaseCase* raw = bc.get();
      inflight_records += raw->sub.n;
      inflight.push_back(std::move(bc));
      run_base(raw);
      retire_one();
      continue;
    }

    // ---- fill priority leaves by filtering (§2.1) --------------------
    // Per node and direction, a heap whose top is the least extreme
    // captured record.
    struct PrioLeaf {
      std::vector<Rec> heap;
    };
    const size_t prio_fill = prio;
    std::vector<std::array<PrioLeaf, K>> prio_leaves(nodes.size());
    auto heap_cmp = [](int c) {
      return [c](const Rec& x, const Rec& y) {
        return ExtremeLess<D>{c}(x, y);  // most extreme first => top least
      };
    };
    {
      typename Stream<Rec>::Reader reader(&sub.lists[0]);
      while (!reader.Done()) {
        Rec cur = reader.Next();
        int node = 0;
        while (node >= 0) {
          bool placed = false;
          for (int c = 0; c < K; ++c) {
            auto cmp = heap_cmp(c);
            auto& h = prio_leaves[node][c].heap;
            if (h.size() < prio_fill) {
              h.push_back(cur);
              std::push_heap(h.begin(), h.end(), cmp);
              placed = true;
              break;
            }
            if (ExtremeLess<D>{c}(cur, h.front())) {
              std::pop_heap(h.begin(), h.end(), cmp);
              Rec evicted = h.back();
              h.back() = cur;
              std::push_heap(h.begin(), h.end(), cmp);
              cur = evicted;  // keep filtering the evicted record
            }
          }
          if (placed) break;
          const KdNode& kd = nodes[node];
          if (BeforeThreshold(cur, kd.dim, kd.t)) {
            node = kd.left_node;  // -1 ends at a final region
          } else {
            node = kd.right_node;
          }
        }
      }
    }

    // Emit the priority leaves and remember who was captured.
    std::unordered_set<DataId> captured;
    size_t captured_count = 0;
    for (auto& per_node : prio_leaves) {
      for (int c = 0; c < K; ++c) {
        auto& h = per_node[c].heap;
        if (h.empty()) continue;
        for (const Rec& rec : h) captured.insert(rec.id);
        captured_count += h.size();
        emit(h);
        h.clear();
      }
    }

    // ---- distribute the lists over the final regions and recurse -----
    std::vector<Sub> children(final_regions.size());
    for (size_t f = 0; f < final_regions.size(); ++f) {
      children[f].depth = final_regions[f].depth;
      for (int c = 0; c < K; ++c) {
        children[f].lists.emplace_back(env.device);
      }
    }
    for (int c = 0; c < K; ++c) {
      typename Stream<Rec>::Reader reader(&sub.lists[c]);
      while (!reader.Done()) {
        Rec rec = reader.Next();
        if (captured.contains(rec.id)) continue;
        int node = 0;
        int region = -1;
        while (true) {
          const KdNode& kd = nodes[node];
          if (BeforeThreshold(rec, kd.dim, kd.t)) {
            if (kd.left_node >= 0) {
              node = kd.left_node;
            } else {
              region = kd.left_region;
              break;
            }
          } else {
            if (kd.right_node >= 0) {
              node = kd.right_node;
            } else {
              region = kd.right_region;
              break;
            }
          }
        }
        PRTREE_CHECK(region >= 0);
        children[region].lists[c].Push(rec);
        if (c == 0) children[region].n += 1;
      }
      sub.lists[c].Clear();
    }
    size_t distributed = 0;
    for (auto& child : children) {
      distributed += child.n;
      for (auto& l : child.lists) l.Flush();
    }
    PRTREE_CHECK(distributed + captured_count == n);
    for (auto& child : children) {
      if (child.n > 0) pending.push_back(std::move(child));
    }
  }
  retire_all();
}

}  // namespace prtree

#endif  // PRTREE_CORE_GRID_BUILDER_H_
