// Total orderings over the 2D corner coordinates of rectangles.
//
// The pseudo-PR-tree (§2.1) views each rectangle as the 2D-dimensional point
// R* = (xmin, ..., ymax) and needs two families of orderings over a corner
// coordinate c:
//
//  * CoordLess  — plain ascending coordinate order, used for the kd-tree
//    divisions ("the division is performed using the xmin, ymin, xmax or
//    ymax-coordinate in a round-robin fashion");
//  * ExtremeLess — most-extreme-first order, used to pick priority-leaf
//    contents ("the B rectangles with minimal xmin-coordinates", "maximal
//    xmax-coordinates", ...).  For c < D "extreme" means a small minimum
//    coordinate; for c >= D it means a large maximum coordinate.
//
// The paper assumes no two defining coordinates are equal; both orderings
// break ties by record id, which restores that assumption for arbitrary
// inputs without perturbing the data.  TGS uses the same orderings for its
// binary partitions (§1.1 [12]).
//
// The id tie-break makes both orderings strict TOTAL orders (ids are
// unique), which the parallel bulk-load pipeline depends on: a totally
// ordered sequence has exactly one sorted permutation, so ParallelSort and
// the parallel nth_element-based selections produce byte-identical results
// to their serial counterparts on equal coordinates.  Any new comparator
// fed to ExternalSort/ParallelSort must keep a unique secondary key.

#ifndef PRTREE_CORE_CORNER_ORDER_H_
#define PRTREE_CORE_CORNER_ORDER_H_

#include "geom/rect.h"

namespace prtree {

/// Ascending order by corner coordinate `c`, ties by id.  A strict total
/// order for records with distinct ids.
template <int D>
struct CoordLess {
  int c;
  bool operator()(const Record<D>& a, const Record<D>& b) const {
    Real va = a.rect.CornerCoord(c);
    Real vb = b.rect.CornerCoord(c);
    if (va != vb) return va < vb;
    return a.id < b.id;
  }
};

/// Most-extreme-first order in direction `c` (see file comment), ties by id.
template <int D>
struct ExtremeLess {
  int c;
  bool operator()(const Record<D>& a, const Record<D>& b) const {
    Real va = a.rect.CornerCoord(c);
    Real vb = b.rect.CornerCoord(c);
    if (va != vb) return c < D ? va < vb : va > vb;
    return a.id < b.id;
  }
};

/// A cut position in the CoordLess order of dimension `c`: records strictly
/// below (value, id) fall on the low side.  Used by the grid bulk loader's
/// slab boundaries and kd splits.
struct CoordThreshold {
  Real value;
  DataId id;
};

/// True iff record `r` precedes the threshold in CoordLess(c) order.
template <int D>
inline bool BeforeThreshold(const Record<D>& r, int c,
                            const CoordThreshold& t) {
  Real v = r.rect.CornerCoord(c);
  if (v != t.value) return v < t.value;
  return r.id < t.id;
}

}  // namespace prtree

#endif  // PRTREE_CORE_CORNER_ORDER_H_
