// Internal invariant checking.
//
// PRTREE_CHECK fires in all build types: database index corruption must never
// be allowed to propagate silently, and the cost of the comparisons here is
// negligible next to block I/O.  PRTREE_DCHECK compiles away in release
// builds and is used on per-entry hot paths.

#ifndef PRTREE_UTIL_CHECK_H_
#define PRTREE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace prtree {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "PRTREE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace prtree

#define PRTREE_CHECK(expr)                                     \
  do {                                                         \
    if (!(expr)) {                                             \
      ::prtree::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define PRTREE_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define PRTREE_DCHECK(expr) PRTREE_CHECK(expr)
#endif

#endif  // PRTREE_UTIL_CHECK_H_
