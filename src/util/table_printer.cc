#include "util/table_printer.h"

#include <algorithm>
#include <cinttypes>

#include "util/check.h"

namespace prtree {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PRTREE_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PRTREE_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row, char pad) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += pad == ' ' ? " | " : "-+-";
      line += row[c];
      line.append(widths[c] - row[c].size(), pad);
    }
    // Trim trailing padding for tidy diffs.
    while (!line.empty() && (line.back() == ' ' || line.back() == '-')) {
      line.pop_back();
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_, ' ');
  std::vector<std::string> rule(headers_.size());
  out += render_row(rule, '-');
  for (const auto& row : rows_) out += render_row(row, ' ');
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

std::string TablePrinter::Fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TablePrinter::FmtCount(uint64_t v) {
  char raw[32];
  std::snprintf(raw, sizeof(raw), "%" PRIu64, v);
  std::string digits = raw;
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TablePrinter::FmtPercent(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v);
  return buf;
}

}  // namespace prtree
