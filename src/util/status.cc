#include "util/status.h"

namespace prtree {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace prtree
