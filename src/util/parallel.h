// Minimal threading utilities for the concurrent query engine and the
// parallel bulk-load pipeline.
//
// Queries fan out across threads over a shared BufferPool; bulk loaders
// offload their CPU-heavy stages (run sorting, pseudo-PR-tree recursion,
// node serialization) onto a ThreadPool while the coordinating thread keeps
// every device allocation in deterministic program order.  These helpers
// cover both patterns — a fork-join ParallelFor for benchmarks and batch
// serving, a fixed-size ThreadPool whose TaskGroup/WaitFor support nested
// fork-join (waiters help drain the queue, so tasks may fork subtasks), and
// a deterministic ParallelSort.  Nothing here knows about R-trees.

#ifndef PRTREE_UTIL_PARALLEL_H_
#define PRTREE_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace prtree {

/// Number of hardware threads, with a sane floor when the runtime cannot
/// tell (std::thread::hardware_concurrency may return 0).
inline int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 2 : static_cast<int>(n);
}

/// \brief Fork-join over [begin, end) split into `num_threads` contiguous
/// chunks: calls fn(thread_index, chunk_begin, chunk_end) on each thread
/// and joins.  Chunk t gets the t-th slice; thread_index lets callers keep
/// exact per-thread accumulators (e.g. QueryStats) without sharing.
///
/// num_threads == 1 runs inline on the calling thread, so single-threaded
/// measurements have zero threading overhead.
template <typename Fn>
void ParallelForChunks(size_t begin, size_t end, int num_threads, Fn fn) {
  PRTREE_CHECK(num_threads >= 1);
  const size_t n = end > begin ? end - begin : 0;
  if (num_threads == 1 || n <= 1) {
    fn(0, begin, end);
    return;
  }
  const size_t threads = std::min<size_t>(num_threads, n);
  const size_t base = n / threads;
  const size_t extra = n % threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  size_t lo = begin;
  for (size_t t = 0; t < threads; ++t) {
    size_t hi = lo + base + (t < extra ? 1 : 0);
    workers.emplace_back([fn, t, lo, hi] { fn(static_cast<int>(t), lo, hi); });
    lo = hi;
  }
  for (auto& w : workers) w.join();
}

/// \brief Fork-join over [begin, end): calls fn(index) for every index,
/// statically partitioned over `num_threads` threads.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, int num_threads, Fn fn) {
  ParallelForChunks(begin, end, num_threads,
                    [&fn](int /*thread*/, size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) fn(i);
                    });
}

/// \brief Fixed-size pool of worker threads with a FIFO task queue.
///
/// Submit() enqueues a task; Wait() blocks until every submitted task has
/// finished.  For nested fork-join — a task that forks subtasks and needs
/// their results — submit into a TaskGroup and call WaitFor(&group): the
/// waiting thread (worker or external) helps execute queued tasks until the
/// group completes, so recursive fork-join cannot self-deadlock.
class ThreadPool {
 public:
  /// Completion tracker for a batch of related tasks.  Stack-allocate one
  /// per fork point; it must outlive the matching WaitFor().
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class ThreadPool;
    size_t pending_ = 0;  // guarded by the owning pool's mu_
  };

  explicit ThreadPool(int num_threads) {
    PRTREE_CHECK(num_threads >= 1);
    workers_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task) {
    Submit(nullptr, std::move(task));
  }

  /// Enqueues `task` under `group` (may be null); pair with WaitFor().
  /// Safe to call from inside a pool task.
  void Submit(TaskGroup* group, std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      PRTREE_CHECK(!stop_);
      queue_.push_back(Task{std::move(task), group});
      ++outstanding_;
      if (group != nullptr) ++group->pending_;
    }
    wake_.notify_one();
    // One queued task can be consumed by at most one blocked WaitFor
    // helper; RunTask's notify_all covers group-completion wakeups.
    done_.notify_one();
  }

  /// Blocks until every task submitted so far has completed.  Must be
  /// called from outside the pool (a worker calling Wait() would count its
  /// own running task as outstanding forever); use WaitFor() inside tasks.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
  }

  /// Blocks until every task submitted under `group` has completed,
  /// executing queued tasks (of any group) while waiting.  Safe to call
  /// from a worker thread — this is what makes nested fork-join work.
  void WaitFor(TaskGroup* group) {
    std::unique_lock<std::mutex> lock(mu_);
    while (group->pending_ > 0) {
      if (!queue_.empty()) {
        Task task = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        RunTask(task);
        lock.lock();
      } else {
        done_.wait(lock, [this, group] {
          return group->pending_ == 0 || !queue_.empty();
        });
      }
    }
  }

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void RunTask(Task& task) {
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (task.group != nullptr) --task.group->pending_;
      if (--outstanding_ == 0) idle_.notify_all();
    }
    done_.notify_all();
  }

  void WorkerLoop() {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      RunTask(task);
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::condition_variable done_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  size_t outstanding_ = 0;
  bool stop_ = false;
};

/// Below this many elements a parallel sort runs std::sort inline; also the
/// minimum elements per fork so tiny subranges don't pay task overhead.
inline constexpr size_t kParallelSortGrain = 1u << 14;

namespace parallel_internal {

template <typename T, typename Less>
void ParallelSortRec(ThreadPool* pool, T* data, size_t n, Less less,
                     int depth) {
  if (depth <= 0 || n <= kParallelSortGrain) {
    std::sort(data, data + n, less);
    return;
  }
  const size_t half = n / 2;
  ThreadPool::TaskGroup group;
  pool->Submit(&group, [pool, data, half, less, depth] {
    ParallelSortRec(pool, data, half, less, depth - 1);
  });
  ParallelSortRec(pool, data + half, n - half, less, depth - 1);
  pool->WaitFor(&group);
  std::inplace_merge(data, data + half, data + n, less);
}

}  // namespace parallel_internal

/// \brief Sorts [data, data + n) on the pool with a fork-join merge sort;
/// pool == nullptr (or a single-thread pool, or a small n) falls back to
/// std::sort inline.
///
/// Determinism: when `less` is a strict TOTAL order (every comparator in
/// this library tie-breaks on the record id), the sorted sequence is unique,
/// so the result is byte-identical to std::sort regardless of thread count
/// or scheduling — the property the deterministic bulk-load pipeline is
/// built on.  With a mere weak ordering the merge is stable but the
/// chunk-local std::sorts are not, so equal elements could differ from the
/// serial order; don't pass one.
template <typename T, typename Less>
void ParallelSort(ThreadPool* pool, T* data, size_t n, Less less) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      n <= kParallelSortGrain) {
    std::sort(data, data + n, less);
    return;
  }
  // 2x oversubscription of leaves keeps all workers busy through the merge.
  int depth = 1;
  while ((size_t{1} << depth) < 2 * pool->num_threads()) ++depth;
  parallel_internal::ParallelSortRec(pool, data, n, less, depth);
}

}  // namespace prtree

#endif  // PRTREE_UTIL_PARALLEL_H_
