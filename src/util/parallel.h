// Minimal threading utilities for the concurrent query engine.
//
// The library's concurrency story is deliberately simple: trees are built
// and updated single-threaded; queries fan out across threads over a shared
// BufferPool.  These helpers cover that pattern — a fork-join ParallelFor
// for benchmarks and batch serving, and a small fixed-size ThreadPool for
// callers that submit irregular work.  Nothing here knows about R-trees.

#ifndef PRTREE_UTIL_PARALLEL_H_
#define PRTREE_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace prtree {

/// Number of hardware threads, with a sane floor when the runtime cannot
/// tell (std::thread::hardware_concurrency may return 0).
inline int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 2 : static_cast<int>(n);
}

/// \brief Fork-join over [begin, end) split into `num_threads` contiguous
/// chunks: calls fn(thread_index, chunk_begin, chunk_end) on each thread
/// and joins.  Chunk t gets the t-th slice; thread_index lets callers keep
/// exact per-thread accumulators (e.g. QueryStats) without sharing.
///
/// num_threads == 1 runs inline on the calling thread, so single-threaded
/// measurements have zero threading overhead.
template <typename Fn>
void ParallelForChunks(size_t begin, size_t end, int num_threads, Fn fn) {
  PRTREE_CHECK(num_threads >= 1);
  const size_t n = end > begin ? end - begin : 0;
  if (num_threads == 1 || n <= 1) {
    fn(0, begin, end);
    return;
  }
  const size_t threads = std::min<size_t>(num_threads, n);
  const size_t base = n / threads;
  const size_t extra = n % threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  size_t lo = begin;
  for (size_t t = 0; t < threads; ++t) {
    size_t hi = lo + base + (t < extra ? 1 : 0);
    workers.emplace_back([fn, t, lo, hi] { fn(static_cast<int>(t), lo, hi); });
    lo = hi;
  }
  for (auto& w : workers) w.join();
}

/// \brief Fork-join over [begin, end): calls fn(index) for every index,
/// statically partitioned over `num_threads` threads.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, int num_threads, Fn fn) {
  ParallelForChunks(begin, end, num_threads,
                    [&fn](int /*thread*/, size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) fn(i);
                    });
}

/// \brief Fixed-size pool of worker threads with a FIFO task queue.
///
/// Submit() enqueues a task; Wait() blocks until every submitted task has
/// finished.  Tasks must not Submit() recursively from a worker and then
/// Wait() on the same pool (classic self-deadlock); the library's usage —
/// fan out a batch, Wait, read results — never needs that.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    PRTREE_CHECK(num_threads >= 1);
    workers_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      PRTREE_CHECK(!stop_);
      queue_.push_back(std::move(task));
      ++outstanding_;
    }
    wake_.notify_one();
  }

  /// Blocks until every task submitted so far has completed.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--outstanding_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace prtree

#endif  // PRTREE_UTIL_PARALLEL_H_
