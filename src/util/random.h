// Deterministic pseudo-random utilities.  All dataset and query generators
// take explicit seeds so every experiment in the paper reproduction is
// re-runnable bit-for-bit.

#ifndef PRTREE_UTIL_RANDOM_H_
#define PRTREE_UTIL_RANDOM_H_

#include <cstdint>
#include <random>

namespace prtree {

/// \brief A seeded 64-bit random source with convenience samplers.
///
/// Thin wrapper over std::mt19937_64; exists so generators share one
/// interface and so a future engine swap is a one-line change.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `sigma`, centred at `mean`.
  double Gaussian(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Exponential with the given mean.
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace prtree

#endif  // PRTREE_UTIL_RANDOM_H_
