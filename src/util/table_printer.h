// Fixed-width ASCII table output used by the benchmark harness to print the
// rows/series of each paper figure.

#ifndef PRTREE_UTIL_TABLE_PRINTER_H_
#define PRTREE_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace prtree {

/// \brief Collects rows of string cells and prints them with aligned columns.
///
/// Example output:
///
///     variant | build I/Os | seconds
///     --------+------------+--------
///     H       |    12 345  |   0.81
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table to a string.
  std::string ToString() const;

  /// Prints the table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  /// Formats a double with `prec` digits after the point.
  static std::string Fmt(double v, int prec = 2);
  /// Formats an integer with thousands separators ("12,345").
  static std::string FmtCount(uint64_t v);
  /// Formats `v` as a percentage string with one decimal ("97.3%").
  static std::string FmtPercent(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prtree

#endif  // PRTREE_UTIL_TABLE_PRINTER_H_
