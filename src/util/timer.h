// Wall-clock timing for the experiment harness.

#ifndef PRTREE_UTIL_TIMER_H_
#define PRTREE_UTIL_TIMER_H_

#include <chrono>

namespace prtree {

/// \brief Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace prtree

#endif  // PRTREE_UTIL_TIMER_H_
