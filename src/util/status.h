// Arrow/RocksDB-style status codes for recoverable errors at public API
// boundaries.  Internal invariants use PRTREE_CHECK instead; the library does
// not throw exceptions.

#ifndef PRTREE_UTIL_STATUS_H_
#define PRTREE_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace prtree {

/// \brief Error category for a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIoError,
  kNotFound,
  kCapacityExceeded,
  kCorruption,
};

/// \brief A lightweight success-or-error result, returned by fallible public
/// APIs (bulk loaders, device operations, update operations).
///
/// Usage follows the RocksDB convention:
///
///     Status s = builder.Build(...);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Aborts if `s` is not OK.  For call sites where failure is a programming
/// error (e.g. tests and examples).
inline void AbortIfError(const Status& s) {
  if (!s.ok()) {
    internal::CheckFailed(__FILE__, __LINE__, s.ToString().c_str());
  }
}

#define PRTREE_RETURN_NOT_OK(expr)          \
  do {                                      \
    ::prtree::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (0)

/// \brief Value-or-error result, analogous to arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Implicit conversion from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PRTREE_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PRTREE_CHECK(ok());
    return value_;
  }
  T& value() & {
    PRTREE_CHECK(ok());
    return value_;
  }
  T&& value() && {
    PRTREE_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace prtree

#endif  // PRTREE_UTIL_STATUS_H_
