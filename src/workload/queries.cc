#include "workload/queries.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace prtree {
namespace workload {

std::vector<Rect2> MakeSquareQueries(const Rect2& extent,
                                     double area_fraction, size_t count,
                                     uint64_t seed) {
  PRTREE_CHECK(area_fraction > 0 && area_fraction <= 1);
  Rng rng(seed);
  double side_frac = std::sqrt(area_fraction);
  double w = side_frac * extent.Extent(0);
  double h = side_frac * extent.Extent(1);
  std::vector<Rect2> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double x = rng.Uniform(extent.lo[0], extent.hi[0] - w);
    double y = rng.Uniform(extent.lo[1], extent.hi[1] - h);
    out.push_back(MakeRect(x, y, x + w, y + h));
  }
  return out;
}

std::vector<Rect2> MakeSkewedQueries(double area_fraction, int c,
                                     size_t count, uint64_t seed) {
  PRTREE_CHECK(c >= 1);
  // §3.3: "squares with area 0.01 that are skewed in the same way as the
  // dataset (that is, where the corner (x, y) is transformed to (x, y^c))
  // so that the output size remains roughly the same".
  Rng rng(seed);
  double side = std::sqrt(area_fraction);
  std::vector<Rect2> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double x = rng.Uniform(0, 1 - side);
    double y = rng.Uniform(0, 1 - side);
    out.push_back(MakeRect(x, std::pow(y, c), x + side,
                           std::pow(y + side, c)));
  }
  return out;
}

std::vector<Rect2> MakeHorizontalStabQueries(const Rect2& extent,
                                             double height, double band,
                                             size_t count, uint64_t seed) {
  PRTREE_CHECK(height >= 0);
  PRTREE_CHECK(band > 0 && band <= 1);
  Rng rng(seed);
  double cy = extent.Center(1);
  double half_band = band * extent.Extent(1) / 2;
  std::vector<Rect2> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double y = rng.Uniform(cy - half_band, cy + half_band - height);
    out.push_back(MakeRect(extent.lo[0], y, extent.hi[0], y + height));
  }
  return out;
}

}  // namespace workload
}  // namespace prtree
