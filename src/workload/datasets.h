// Dataset generators for the paper's evaluation (§3.2) and lower-bound
// construction (§2.4).
//
// Synthetic families (each defaults to the unit square):
//   SIZE(max_side)  — uniform centres; side lengths uniform in
//                     (0, max_side], rejected unless fully inside the unit
//                     square.
//   ASPECT(a)       — uniform centres; fixed area 1e-6, aspect ratio a,
//                     long side axis chosen uniformly.
//   SKEWED(c)       — uniform points with y replaced by y^c.
//   CLUSTER         — clusters of points in 1e-5 x 1e-5 squares, centres
//                     equally spaced on a horizontal line (the worst-case
//                     dataset behind Table 1).
//   WorstCaseGrid   — §2.4's Halton–Hammersley construction: N/B columns of
//                     B points, column i shifted by bit-reversal(i)/N; a
//                     horizontal line query returns nothing yet forces the
//                     heuristic R-trees to visit every leaf (Theorem 3).
//
// TIGER substitute: the paper uses TIGER/Line road segments (Eastern
// 16.7M, Western 12M bounding boxes of short road segments, "somewhat (but
// not too badly) clustered around urban areas").  The real CD-ROMs are not
// available offline; TigerLike generates random-walk road polylines around
// sampled urban centres plus a rural background, reproducing the two
// properties the evaluation depends on — tiny elongated rectangles with
// mild clustering.  See DESIGN.md §2 for the substitution rationale.

#ifndef PRTREE_WORKLOAD_DATASETS_H_
#define PRTREE_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/rect.h"

namespace prtree {
namespace workload {

/// \brief Pull-based record stream for out-of-core dataset sizes.
///
/// Each Make* function below materializes its whole dataset in RAM; at the
/// 10-100M records of the out-of-core sweep that is gigabytes.  A
/// RecordGenerator produces the records one at a time in O(1) memory, and
/// the Make* functions are implemented by draining the matching generator —
/// so for every (family, n, seed) the generator's record sequence is
/// byte-identical to the materialized vector by construction, and a prefix
/// of the n'=2n stream equals the n stream (the generators are stateful
/// walks seeded once).  Feed it to Stream<Record2>::Append block by block,
/// or straight into ExternalSort's input staging.
class RecordGenerator {
 public:
  virtual ~RecordGenerator() = default;
  /// Fills `*out` with the next record; returns false once the configured
  /// record count is exhausted (then keeps returning false).
  virtual bool Next(Record2* out) = 0;
};

/// Streaming equivalents of the Make* functions below — same parameters,
/// byte-identical output.
std::unique_ptr<RecordGenerator> NewSizeGenerator(size_t n, double max_side,
                                                  uint64_t seed);
std::unique_ptr<RecordGenerator> NewAspectGenerator(size_t n, double aspect,
                                                    uint64_t seed);
std::unique_ptr<RecordGenerator> NewSkewedGenerator(size_t n, int c,
                                                    uint64_t seed);
std::unique_ptr<RecordGenerator> NewClusterGenerator(size_t clusters,
                                                     size_t per_cluster,
                                                     uint64_t seed);

/// SIZE(max_side): uniformly distributed rectangles with sides uniform in
/// (0, max_side], fully inside the unit square (§3.2).
std::vector<Record2> MakeSize(size_t n, double max_side, uint64_t seed);

/// ASPECT(a): uniformly distributed rectangles of area 1e-6 and aspect
/// ratio `a`, long side vertical or horizontal with equal probability,
/// fully inside the unit square (§3.2).
std::vector<Record2> MakeAspect(size_t n, double aspect, uint64_t seed);

/// SKEWED(c): uniform points (x, y) squeezed to (x, y^c) (§3.2).
std::vector<Record2> MakeSkewed(size_t n, int c, uint64_t seed);

/// CLUSTER: `clusters` point clusters of `per_cluster` points each, in
/// 1e-5 x 1e-5 squares with centres equally spaced on the horizontal line
/// y = 0.5 (§3.2; paper uses 10 000 x 1 000).
std::vector<Record2> MakeCluster(size_t clusters, size_t per_cluster,
                                 uint64_t seed);

/// §2.4 worst-case grid: `columns` columns of `rows` points; point (i, j)
/// at x = i + 1/2, y = j/rows + bitreverse_k(i)/(columns*rows) where
/// k = ceil(log2(columns)).  All coordinates are exact in double precision.
std::vector<Record2> MakeWorstCaseGrid(size_t columns, size_t rows);

/// Named TIGER-like presets (see file comment).
enum class TigerRegion {
  kEastern,  // denser, more urban clusters (16 states on the paper's disk 1)
  kWestern,  // sparser (5 states on disk 6)
};

/// TIGER substitute: `n` bounding boxes of short road-like segments.
/// A fixed (region, seed) pair yields a deterministic stream; size-graded
/// datasets (Figure 10/14) are prefixes of the same stream.
std::vector<Record2> MakeTigerLike(size_t n, TigerRegion region,
                                   uint64_t seed);

/// Streaming equivalent of MakeTigerLike (see RecordGenerator).
std::unique_ptr<RecordGenerator> NewTigerLikeGenerator(size_t n,
                                                       TigerRegion region,
                                                       uint64_t seed);

/// Bit reversal of `i` in `bits` bits (exposed for tests of the §2.4 grid).
uint64_t BitReverse(uint64_t i, int bits);

}  // namespace workload
}  // namespace prtree

#endif  // PRTREE_WORKLOAD_DATASETS_H_
