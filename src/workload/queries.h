// Query workload generators for the paper's experiments (§3.3).
//
//  * Square windows covering a given fraction of the data extent's area
//    (Figures 12-15; the paper sweeps 0.25 %-2 % and uses 1 % for the
//    synthetic experiments).
//  * Skew-transformed windows for SKEWED(c): the window's corners undergo
//    the same (x, y) -> (x, y^c) squeeze as the data, keeping the output
//    size roughly constant across c.
//  * Thin horizontal stabbing windows for CLUSTER and the §2.4 grid: long
//    skinny rectangles through all clusters/columns (Table 1 uses area
//    1e-7 windows spanning the full x extent).

#ifndef PRTREE_WORKLOAD_QUERIES_H_
#define PRTREE_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <vector>

#include "geom/rect.h"

namespace prtree {
namespace workload {

/// `count` square windows of area `area_fraction` * area(extent), placed
/// uniformly so each window lies inside the extent (§3.3).
std::vector<Rect2> MakeSquareQueries(const Rect2& extent,
                                     double area_fraction, size_t count,
                                     uint64_t seed);

/// Square windows of the given area fraction whose corners are then
/// squeezed by (x, y) -> (x, y^c), matching the SKEWED(c) data transform.
std::vector<Rect2> MakeSkewedQueries(double area_fraction, int c,
                                     size_t count, uint64_t seed);

/// Thin horizontal windows spanning [extent.xmin, extent.xmax] with height
/// `height`, vertical position uniform in the central `band` fraction of
/// the extent (Table 1's long skinny queries through all clusters).
std::vector<Rect2> MakeHorizontalStabQueries(const Rect2& extent,
                                             double height, double band,
                                             size_t count, uint64_t seed);

}  // namespace workload
}  // namespace prtree

#endif  // PRTREE_WORKLOAD_QUERIES_H_
