#include "workload/datasets.h"

#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/random.h"

namespace prtree {
namespace workload {

namespace {

Record2 MakeRecord(double xmin, double ymin, double xmax, double ymax,
                   DataId id) {
  Record2 rec;
  rec.rect = MakeRect(xmin, ymin, xmax, ymax);
  rec.id = id;
  return rec;
}

// Every Make* function drains the matching generator, so the streaming and
// materializing paths cannot diverge.
std::vector<Record2> Drain(RecordGenerator* gen, size_t reserve) {
  std::vector<Record2> out;
  out.reserve(reserve);
  Record2 rec;
  while (gen->Next(&rec)) out.push_back(rec);
  return out;
}

class SizeGenerator final : public RecordGenerator {
 public:
  SizeGenerator(size_t n, double max_side, uint64_t seed)
      : n_(n), max_side_(max_side), rng_(seed) {
    PRTREE_CHECK(max_side > 0 && max_side <= 1.0);
  }

  bool Next(Record2* out) override {
    if (produced_ == n_) return false;
    for (;;) {
      double w = rng_.Uniform(0, max_side_);
      double h = rng_.Uniform(0, max_side_);
      double cx = rng_.Uniform(0, 1);
      double cy = rng_.Uniform(0, 1);
      double xmin = cx - w / 2, xmax = cx + w / 2;
      double ymin = cy - h / 2, ymax = cy + h / 2;
      // §3.2: "we discarded rectangles that were not completely inside the
      // unit square (but made sure each dataset had [n] rectangles)".
      if (xmin < 0 || ymin < 0 || xmax > 1 || ymax > 1) continue;
      *out = MakeRecord(xmin, ymin, xmax, ymax,
                        static_cast<DataId>(produced_++));
      return true;
    }
  }

 private:
  size_t n_;
  double max_side_;
  Rng rng_;
  size_t produced_ = 0;
};

class AspectGenerator final : public RecordGenerator {
 public:
  AspectGenerator(size_t n, double aspect, uint64_t seed)
      : n_(n), rng_(seed) {
    PRTREE_CHECK(aspect >= 1.0);
    constexpr double kArea = 1e-6;  // §3.2: fixed, reasonably small area
    // Long side l and short side s with l*s = kArea, l/s = aspect.
    long_side_ = std::sqrt(kArea * aspect);
    short_side_ = std::sqrt(kArea / aspect);
  }

  bool Next(Record2* out) override {
    if (produced_ == n_) return false;
    for (;;) {
      double w = long_side_, h = short_side_;
      if (rng_.Chance(0.5)) std::swap(w, h);  // long side vertical or horiz.
      double cx = rng_.Uniform(0, 1);
      double cy = rng_.Uniform(0, 1);
      double xmin = cx - w / 2, xmax = cx + w / 2;
      double ymin = cy - h / 2, ymax = cy + h / 2;
      if (xmin < 0 || ymin < 0 || xmax > 1 || ymax > 1) continue;
      *out = MakeRecord(xmin, ymin, xmax, ymax,
                        static_cast<DataId>(produced_++));
      return true;
    }
  }

 private:
  size_t n_;
  double long_side_ = 0, short_side_ = 0;
  Rng rng_;
  size_t produced_ = 0;
};

class SkewedGenerator final : public RecordGenerator {
 public:
  SkewedGenerator(size_t n, int c, uint64_t seed) : n_(n), c_(c), rng_(seed) {
    PRTREE_CHECK(c >= 1);
  }

  bool Next(Record2* out) override {
    if (produced_ == n_) return false;
    double x = rng_.Uniform(0, 1);
    double y = std::pow(rng_.Uniform(0, 1), c_);
    *out = MakeRecord(x, y, x, y, static_cast<DataId>(produced_++));
    return true;
  }

 private:
  size_t n_;
  int c_;
  Rng rng_;
  size_t produced_ = 0;
};

class ClusterGenerator final : public RecordGenerator {
 public:
  ClusterGenerator(size_t clusters, size_t per_cluster, uint64_t seed)
      : clusters_(clusters), per_cluster_(per_cluster), rng_(seed) {
    PRTREE_CHECK(clusters >= 1);
  }

  bool Next(Record2* out) override {
    if (cluster_ == clusters_) return false;
    constexpr double kClusterSide = 1e-5;  // §3.2
    // Centres equally spaced on a horizontal line across the unit square.
    double cx = (static_cast<double>(cluster_) + 0.5) /
                static_cast<double>(clusters_);
    double cy = 0.5;
    double x = cx + rng_.Uniform(-kClusterSide / 2, kClusterSide / 2);
    double y = cy + rng_.Uniform(-kClusterSide / 2, kClusterSide / 2);
    *out = MakeRecord(x, y, x, y, static_cast<DataId>(produced_++));
    if (++in_cluster_ == per_cluster_) {
      in_cluster_ = 0;
      ++cluster_;
    }
    return true;
  }

 private:
  size_t clusters_;
  size_t per_cluster_;
  Rng rng_;
  size_t cluster_ = 0;
  size_t in_cluster_ = 0;
  size_t produced_ = 0;
};

class TigerLikeGenerator final : public RecordGenerator {
 public:
  TigerLikeGenerator(size_t n, TigerRegion region, uint64_t seed)
      : n_(n),
        eastern_(region == TigerRegion::kEastern),
        rng_(seed + (eastern_ ? 0x9E3779B97F4A7C15ull
                              : 0xC2B2AE3D27D4EB4Full)) {
    // Region presets: the East coast has more, denser urban areas; the
    // West fewer and sparser, spread over a wider extent.
    const size_t num_centers = eastern_ ? 160 : 60;
    centers_.reserve(num_centers);
    for (size_t i = 0; i < num_centers; ++i) {
      centers_.emplace_back(rng_.Uniform(0.05, 0.95),
                            rng_.Uniform(0.05, 0.95));
    }
  }

  bool Next(Record2* out) override {
    if (produced_ == n_) return false;
    const double urban_sigma = eastern_ ? 0.012 : 0.02;
    const double urban_fraction = eastern_ ? 0.82 : 0.72;
    // Urban blocks are short; rural segments are several times longer with
    // a heavier tail (real TIGER chops long country roads into fewer,
    // longer pieces) — the extent mix is what separates extent-aware
    // loaders from centre-only ones on this data.
    const double urban_segment = 2e-4;
    const double rural_segment = 1.5e-3;
    // Roads: random walks of short segments; each record is one segment's
    // bounding box, so most rectangles are thin and tiny (like TIGER's
    // road segments, where "long roads are divided into short segments").
    for (;;) {
      if (remaining_in_road_ == 0) {
        // Start a new road at an urban centre (or in the countryside).
        if (rng_.Chance(urban_fraction)) {
          const auto& c = centers_[rng_.UniformInt(0, centers_.size() - 1)];
          x_ = c.first + rng_.Gaussian(0, urban_sigma);
          y_ = c.second + rng_.Gaussian(0, urban_sigma);
          mean_segment_ = urban_segment;
        } else {
          x_ = rng_.Uniform(0, 1);
          y_ = rng_.Uniform(0, 1);
          mean_segment_ = rural_segment;
        }
        heading_ = rng_.Uniform(0, 2 * M_PI);
        remaining_in_road_ = 3 + rng_.UniformInt(0, 60);
      }
      double len = rng_.Exponential(mean_segment_);
      heading_ += rng_.Gaussian(0, 0.35);  // roads bend gently
      double nx = x_ + len * std::cos(heading_);
      double ny = y_ + len * std::sin(heading_);
      if (nx < 0 || nx > 1 || ny < 0 || ny > 1) {
        remaining_in_road_ = 0;  // road ran off the map
        continue;
      }
      *out = MakeRecord(std::min(x_, nx), std::min(y_, ny),
                        std::max(x_, nx), std::max(y_, ny),
                        static_cast<DataId>(produced_++));
      x_ = nx;
      y_ = ny;
      --remaining_in_road_;
      return true;
    }
  }

 private:
  size_t n_;
  bool eastern_;
  Rng rng_;
  std::vector<std::pair<double, double>> centers_;
  double x_ = 0.5, y_ = 0.5, heading_ = 0.0;
  double mean_segment_ = 2e-4;
  size_t remaining_in_road_ = 0;
  size_t produced_ = 0;
};

}  // namespace

std::unique_ptr<RecordGenerator> NewSizeGenerator(size_t n, double max_side,
                                                  uint64_t seed) {
  return std::make_unique<SizeGenerator>(n, max_side, seed);
}

std::unique_ptr<RecordGenerator> NewAspectGenerator(size_t n, double aspect,
                                                    uint64_t seed) {
  return std::make_unique<AspectGenerator>(n, aspect, seed);
}

std::unique_ptr<RecordGenerator> NewSkewedGenerator(size_t n, int c,
                                                    uint64_t seed) {
  return std::make_unique<SkewedGenerator>(n, c, seed);
}

std::unique_ptr<RecordGenerator> NewClusterGenerator(size_t clusters,
                                                     size_t per_cluster,
                                                     uint64_t seed) {
  return std::make_unique<ClusterGenerator>(clusters, per_cluster, seed);
}

std::unique_ptr<RecordGenerator> NewTigerLikeGenerator(size_t n,
                                                       TigerRegion region,
                                                       uint64_t seed) {
  return std::make_unique<TigerLikeGenerator>(n, region, seed);
}

std::vector<Record2> MakeSize(size_t n, double max_side, uint64_t seed) {
  SizeGenerator gen(n, max_side, seed);
  return Drain(&gen, n);
}

std::vector<Record2> MakeAspect(size_t n, double aspect, uint64_t seed) {
  AspectGenerator gen(n, aspect, seed);
  return Drain(&gen, n);
}

std::vector<Record2> MakeSkewed(size_t n, int c, uint64_t seed) {
  SkewedGenerator gen(n, c, seed);
  return Drain(&gen, n);
}

std::vector<Record2> MakeCluster(size_t clusters, size_t per_cluster,
                                 uint64_t seed) {
  ClusterGenerator gen(clusters, per_cluster, seed);
  return Drain(&gen, clusters * per_cluster);
}

uint64_t BitReverse(uint64_t i, int bits) {
  uint64_t r = 0;
  for (int b = 0; b < bits; ++b) {
    r = (r << 1) | ((i >> b) & 1);
  }
  return r;
}

std::vector<Record2> MakeWorstCaseGrid(size_t columns, size_t rows) {
  PRTREE_CHECK(columns >= 1 && rows >= 1);
  int k = 0;
  while ((size_t{1} << k) < columns) ++k;  // k = ceil(log2 columns)
  const double n_total = static_cast<double>(columns) *
                         static_cast<double>(rows);
  std::vector<Record2> out;
  out.reserve(columns * rows);
  for (size_t i = 0; i < columns; ++i) {
    double shift = static_cast<double>(BitReverse(i, k)) / n_total;
    for (size_t j = 0; j < rows; ++j) {
      double x = static_cast<double>(i) + 0.5;
      double y = static_cast<double>(j) / static_cast<double>(rows) + shift;
      out.push_back(MakeRecord(x, y, x, y,
                               static_cast<DataId>(out.size())));
    }
  }
  return out;
}

std::vector<Record2> MakeTigerLike(size_t n, TigerRegion region,
                                   uint64_t seed) {
  TigerLikeGenerator gen(n, region, seed);
  return Drain(&gen, n);
}

}  // namespace workload
}  // namespace prtree
