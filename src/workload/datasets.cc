#include "workload/datasets.h"

#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace prtree {
namespace workload {

namespace {

Record2 MakeRecord(double xmin, double ymin, double xmax, double ymax,
                   DataId id) {
  Record2 rec;
  rec.rect = MakeRect(xmin, ymin, xmax, ymax);
  rec.id = id;
  return rec;
}

}  // namespace

std::vector<Record2> MakeSize(size_t n, double max_side, uint64_t seed) {
  PRTREE_CHECK(max_side > 0 && max_side <= 1.0);
  Rng rng(seed);
  std::vector<Record2> out;
  out.reserve(n);
  while (out.size() < n) {
    double w = rng.Uniform(0, max_side);
    double h = rng.Uniform(0, max_side);
    double cx = rng.Uniform(0, 1);
    double cy = rng.Uniform(0, 1);
    double xmin = cx - w / 2, xmax = cx + w / 2;
    double ymin = cy - h / 2, ymax = cy + h / 2;
    // §3.2: "we discarded rectangles that were not completely inside the
    // unit square (but made sure each dataset had [n] rectangles)".
    if (xmin < 0 || ymin < 0 || xmax > 1 || ymax > 1) continue;
    out.push_back(MakeRecord(xmin, ymin, xmax, ymax,
                             static_cast<DataId>(out.size())));
  }
  return out;
}

std::vector<Record2> MakeAspect(size_t n, double aspect, uint64_t seed) {
  PRTREE_CHECK(aspect >= 1.0);
  constexpr double kArea = 1e-6;  // §3.2: fixed, reasonably small area
  Rng rng(seed);
  std::vector<Record2> out;
  out.reserve(n);
  // Long side l and short side s with l*s = kArea, l/s = aspect.
  double l = std::sqrt(kArea * aspect);
  double s = std::sqrt(kArea / aspect);
  while (out.size() < n) {
    double w = l, h = s;
    if (rng.Chance(0.5)) std::swap(w, h);  // long side vertical or horizontal
    double cx = rng.Uniform(0, 1);
    double cy = rng.Uniform(0, 1);
    double xmin = cx - w / 2, xmax = cx + w / 2;
    double ymin = cy - h / 2, ymax = cy + h / 2;
    if (xmin < 0 || ymin < 0 || xmax > 1 || ymax > 1) continue;
    out.push_back(MakeRecord(xmin, ymin, xmax, ymax,
                             static_cast<DataId>(out.size())));
  }
  return out;
}

std::vector<Record2> MakeSkewed(size_t n, int c, uint64_t seed) {
  PRTREE_CHECK(c >= 1);
  Rng rng(seed);
  std::vector<Record2> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 1);
    double y = std::pow(rng.Uniform(0, 1), c);
    out.push_back(MakeRecord(x, y, x, y, static_cast<DataId>(i)));
  }
  return out;
}

std::vector<Record2> MakeCluster(size_t clusters, size_t per_cluster,
                                 uint64_t seed) {
  PRTREE_CHECK(clusters >= 1);
  constexpr double kClusterSide = 1e-5;  // §3.2
  Rng rng(seed);
  std::vector<Record2> out;
  out.reserve(clusters * per_cluster);
  for (size_t ci = 0; ci < clusters; ++ci) {
    // Centres equally spaced on a horizontal line across the unit square.
    double cx = (ci + 0.5) / clusters;
    double cy = 0.5;
    for (size_t p = 0; p < per_cluster; ++p) {
      double x = cx + rng.Uniform(-kClusterSide / 2, kClusterSide / 2);
      double y = cy + rng.Uniform(-kClusterSide / 2, kClusterSide / 2);
      out.push_back(
          MakeRecord(x, y, x, y, static_cast<DataId>(out.size())));
    }
  }
  return out;
}

uint64_t BitReverse(uint64_t i, int bits) {
  uint64_t r = 0;
  for (int b = 0; b < bits; ++b) {
    r = (r << 1) | ((i >> b) & 1);
  }
  return r;
}

std::vector<Record2> MakeWorstCaseGrid(size_t columns, size_t rows) {
  PRTREE_CHECK(columns >= 1 && rows >= 1);
  int k = 0;
  while ((size_t{1} << k) < columns) ++k;  // k = ceil(log2 columns)
  const double n_total = static_cast<double>(columns) *
                         static_cast<double>(rows);
  std::vector<Record2> out;
  out.reserve(columns * rows);
  for (size_t i = 0; i < columns; ++i) {
    double shift = static_cast<double>(BitReverse(i, k)) / n_total;
    for (size_t j = 0; j < rows; ++j) {
      double x = static_cast<double>(i) + 0.5;
      double y = static_cast<double>(j) / static_cast<double>(rows) + shift;
      out.push_back(MakeRecord(x, y, x, y,
                               static_cast<DataId>(out.size())));
    }
  }
  return out;
}

std::vector<Record2> MakeTigerLike(size_t n, TigerRegion region,
                                   uint64_t seed) {
  // Region presets: the East coast has more, denser urban areas; the West
  // fewer and sparser, spread over a wider extent.
  const bool eastern = region == TigerRegion::kEastern;
  const size_t num_centers = eastern ? 160 : 60;
  const double urban_sigma = eastern ? 0.012 : 0.02;
  const double urban_fraction = eastern ? 0.82 : 0.72;
  // Urban blocks are short; rural segments are several times longer with a
  // heavier tail (real TIGER chops long country roads into fewer, longer
  // pieces) — the extent mix is what separates extent-aware loaders from
  // centre-only ones on this data.
  const double urban_segment = 2e-4;
  const double rural_segment = 1.5e-3;

  Rng rng(seed + (eastern ? 0x9E3779B97F4A7C15ull : 0xC2B2AE3D27D4EB4Full));
  // Urban centres.
  std::vector<std::pair<double, double>> centers;
  centers.reserve(num_centers);
  for (size_t i = 0; i < num_centers; ++i) {
    centers.emplace_back(rng.Uniform(0.05, 0.95), rng.Uniform(0.05, 0.95));
  }

  std::vector<Record2> out;
  out.reserve(n);
  // Roads: random walks of short segments; each record is one segment's
  // bounding box, so most rectangles are thin and tiny (like TIGER's road
  // segments, where "long roads are divided into short segments").
  double x = 0.5, y = 0.5, heading = 0.0;
  double mean_segment = urban_segment;
  size_t remaining_in_road = 0;
  while (out.size() < n) {
    if (remaining_in_road == 0) {
      // Start a new road at an urban centre (or in the countryside).
      if (rng.Chance(urban_fraction)) {
        const auto& c = centers[rng.UniformInt(0, centers.size() - 1)];
        x = c.first + rng.Gaussian(0, urban_sigma);
        y = c.second + rng.Gaussian(0, urban_sigma);
        mean_segment = urban_segment;
      } else {
        x = rng.Uniform(0, 1);
        y = rng.Uniform(0, 1);
        mean_segment = rural_segment;
      }
      heading = rng.Uniform(0, 2 * M_PI);
      remaining_in_road = 3 + rng.UniformInt(0, 60);
    }
    double len = rng.Exponential(mean_segment);
    heading += rng.Gaussian(0, 0.35);  // roads bend gently
    double nx = x + len * std::cos(heading);
    double ny = y + len * std::sin(heading);
    if (nx < 0 || nx > 1 || ny < 0 || ny > 1) {
      remaining_in_road = 0;  // road ran off the map
      continue;
    }
    out.push_back(MakeRecord(std::min(x, nx), std::min(y, ny),
                             std::max(x, nx), std::max(y, ny),
                             static_cast<DataId>(out.size())));
    x = nx;
    y = ny;
    --remaining_in_road;
  }
  return out;
}

}  // namespace workload
}  // namespace prtree
