#include "io/block_device.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace prtree {

BlockDevice::BlockDevice(size_t block_size) : block_size_(block_size) {
  PRTREE_CHECK(block_size_ >= 64);
}

BlockDevice::~BlockDevice() = default;

Status BlockDevice::ReadBatch(BlockReadRequest* reqs, size_t n,
                              ReadKind kind) const {
  // Reference implementation: one DoRead per request, in order.  Backends
  // with a real asynchronous engine (io_uring) override this; the contract
  // — per-request status, per-success accounting, every request attempted —
  // is fixed here.
  Status first;
  for (size_t i = 0; i < n; ++i) {
    BlockReadRequest& req = reqs[i];
    if (HasReadFault(req.page)) {
      req.status = Status::IoError("injected read fault on page " +
                                   std::to_string(req.page));
    } else {
      req.status = DoRead(req.page, req.buf);
    }
    if (req.status.ok()) {
      CountBatchedRead(kind);
    } else if (first.ok()) {
      first = req.status;
    }
  }
  return first;
}

Status BlockDevice::DoWriteBatch(BlockWriteRequest* reqs, size_t n,
                                 WriteKind kind) {
  // Reference implementation: one DoWrite per request, in order — the
  // mirror of the ReadBatch loop above, with the same contract: per-request
  // status, per-success accounting, every request attempted.  The ordered
  // loop is also the deterministic carrier for injected crash points and
  // torn writes (engines with concurrent in-flight writes fall back here
  // while an injection is armed).
  Status first;
  for (size_t i = 0; i < n; ++i) {
    BlockWriteRequest& req = reqs[i];
    size_t prefix = 0;
    if (HasWriteFault(req.page)) {
      req.status = Status::IoError("injected write fault on page " +
                                   std::to_string(req.page));
    } else if (TakeTornWrite(req.page, &prefix)) {
      req.status = TornDoWrite(req.page, req.buf, prefix);
    } else {
      req.status = DoWrite(req.page, req.buf);
    }
    if (req.status.ok()) {
      CountBatchedWrite(kind);
    } else if (first.ok()) {
      first = req.status;
    }
  }
  return first;
}

Status BlockDevice::TornDoWrite(PageId page, const void* buf, size_t prefix) {
  // Merge the valid prefix of the new bytes over the block's previous
  // contents, then land the merged block through the normal backend write
  // (which still consults the crash switch, power cut dominating).
  std::vector<std::byte> merged(block_size_);
  PRTREE_RETURN_NOT_OK(DoRead(page, merged.data()));
  std::memcpy(merged.data(), buf, std::min(prefix, block_size_));
  return DoWrite(page, merged.data());
}

MemoryBlockDevice::MemoryBlockDevice(size_t block_size)
    : BlockDevice(block_size) {}

MemoryBlockDevice::~MemoryBlockDevice() {
  for (auto& brick : bricks_) {
    delete[] brick.load(std::memory_order_relaxed);
  }
}

int MemoryBlockDevice::BrickOf(PageId page, size_t* offset) {
  if (page < (PageId{1} << kBrick0Bits)) {
    *offset = page;
    return 0;
  }
  int msb = std::bit_width(page) - 1;
  *offset = page - (PageId{1} << msb);
  return msb - kBrick0Bits + 1;
}

MemoryBlockDevice::PageSlot& MemoryBlockDevice::Slot(PageId page) const {
  size_t offset = 0;
  int brick = BrickOf(page, &offset);
  PageSlot* base = bricks_[brick].load(std::memory_order_acquire);
  PRTREE_DCHECK(base != nullptr);
  return base[offset];
}

MemoryBlockDevice::PageSlot* MemoryBlockDevice::LiveSlot(PageId page) const {
  if (page >= num_pages_.load(std::memory_order_acquire)) return nullptr;
  PageSlot& slot = Slot(page);
  if (!slot.live.load(std::memory_order_acquire)) return nullptr;
  return &slot;
}

PageId MemoryBlockDevice::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  PageId page;
  if (!free_list_.empty()) {
    page = free_list_.back();
    free_list_.pop_back();
    PageSlot& slot = Slot(page);
    std::memset(slot.data.get(), 0, block_size());
    slot.live.store(true, std::memory_order_release);
  } else {
    size_t next = num_pages_.load(std::memory_order_relaxed);
    PRTREE_CHECK(next < kInvalidPageId);
    page = static_cast<PageId>(next);
    size_t offset = 0;
    int brick = BrickOf(page, &offset);
    if (offset == 0 &&
        bricks_[brick].load(std::memory_order_relaxed) == nullptr) {
      size_t brick_pages = size_t{1}
                           << (brick == 0 ? kBrick0Bits
                                          : kBrick0Bits + brick - 1);
      bricks_[brick].store(new PageSlot[brick_pages],
                           std::memory_order_release);
    }
    PageSlot& slot = Slot(page);
    slot.data = std::make_unique<std::byte[]>(block_size());  // zeroed
    slot.live.store(true, std::memory_order_release);
    num_pages_.store(next + 1, std::memory_order_release);
  }
  ++allocated_;
  peak_allocated_ = std::max(peak_allocated_, allocated_);
  return page;
}

void MemoryBlockDevice::Free(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  PageSlot* slot = LiveSlot(page);
  PRTREE_CHECK(slot != nullptr);
  slot->live.store(false, std::memory_order_release);
  free_list_.push_back(page);
  PRTREE_CHECK(allocated_ > 0);
  --allocated_;
}

size_t MemoryBlockDevice::num_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_;
}

size_t MemoryBlockDevice::peak_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_allocated_;
}

Status MemoryBlockDevice::DoRead(PageId page, void* buf) const {
  const PageSlot* slot = LiveSlot(page);
  if (slot == nullptr) {
    return Status::IoError("read of unallocated page " + std::to_string(page));
  }
  std::memcpy(buf, slot->data.get(), block_size());
  return Status::OK();
}

Status MemoryBlockDevice::DoWrite(PageId page, const void* buf) {
  PageSlot* slot = LiveSlot(page);
  if (slot == nullptr) {
    return Status::IoError("write of unallocated page " +
                           std::to_string(page));
  }
  size_t tear = 0;
  switch (ConsumeWriteBudget(&tear)) {
    case WriteOutcome::kDrop:
      return Status::OK();  // power cut: acknowledged, never landed
    case WriteOutcome::kTear:
      std::memcpy(slot->data.get(), buf, std::min(tear, block_size()));
      return Status::OK();
    case WriteOutcome::kLand:
      break;
  }
  std::memcpy(slot->data.get(), buf, block_size());
  return Status::OK();
}

size_t MemoryBlockDevice::num_pages() const {
  return num_pages_.load(std::memory_order_acquire);
}

bool MemoryBlockDevice::IsAllocated(PageId page) const {
  return LiveSlot(page) != nullptr;
}

}  // namespace prtree
