#include "io/block_device.h"

#include <cstring>

#include "util/check.h"

namespace prtree {

BlockDevice::BlockDevice(size_t block_size) : block_size_(block_size) {
  PRTREE_CHECK(block_size_ >= 64);
}

PageId BlockDevice::Allocate() {
  PageId page;
  if (!free_list_.empty()) {
    page = free_list_.back();
    free_list_.pop_back();
    std::memset(blocks_[page].get(), 0, block_size_);
    live_[page] = true;
  } else {
    PRTREE_CHECK(blocks_.size() < kInvalidPageId);
    page = static_cast<PageId>(blocks_.size());
    blocks_.push_back(std::make_unique<std::byte[]>(block_size_));
    live_.push_back(true);
  }
  ++allocated_;
  peak_allocated_ = std::max(peak_allocated_, allocated_);
  return page;
}

void BlockDevice::Free(PageId page) {
  PRTREE_CHECK(IsLive(page));
  live_[page] = false;
  free_list_.push_back(page);
  PRTREE_CHECK(allocated_ > 0);
  --allocated_;
}

bool BlockDevice::IsLive(PageId page) const {
  return page < blocks_.size() && live_[page];
}

Status BlockDevice::Read(PageId page, void* buf) const {
  if (!IsLive(page)) {
    return Status::IoError("read of unallocated page " + std::to_string(page));
  }
  if (read_faults_.count(page) != 0) {
    return Status::IoError("injected read fault on page " +
                           std::to_string(page));
  }
  std::memcpy(buf, blocks_[page].get(), block_size_);
  stats_.CountRead();
  return Status::OK();
}

Status BlockDevice::Write(PageId page, const void* buf) {
  if (!IsLive(page)) {
    return Status::IoError("write of unallocated page " +
                           std::to_string(page));
  }
  std::memcpy(blocks_[page].get(), buf, block_size_);
  stats_.CountWrite();
  return Status::OK();
}

}  // namespace prtree
