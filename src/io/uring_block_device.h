// The io_uring-backed block device: FileBlockDevice's on-disk format and
// scalar I/O path, with batched reads served through an io_uring.
//
// Why a subclass and not a new backend: the async engine changes *how*
// blocks move, not what is stored.  UringBlockDevice inherits the whole
// file layout (superblock, threaded free list, user-meta region), the
// durability rules and the allocation determinism contract, and a device
// file written by either class opens under the other.  The only override
// is ReadBatch(): a batch of N block reads becomes one io_uring_enter with
// all N requests in flight at once, instead of N sequential preads.
// Scalar Read()/Write() deliberately stay on pread/pwrite — a single
// block transfer is one syscall either way, and the pread path runs
// lock-free from any number of threads while a ring must be serialised.
//
// Fallback.  io_uring availability is a runtime property (kernel < 5.1,
// seccomp, the io_uring_disabled sysctl).  Open() probes: if a ring cannot
// be created — or a probe read through it fails — the device keeps
// ring_active() == false and every ReadBatch() transparently takes the
// inherited pread loop.  Semantics, accounting and on-disk bytes are
// identical in both modes; only wall-clock differs.  Setting the
// PRTREE_NO_URING environment variable (or UringDeviceOptions::
// force_fallback) forces the fallback, which is how CI exercises it on
// io_uring-capable kernels.
//
// Accounting matches the BlockDevice contract: one read (or
// prefetch_read, per ReadKind) per successful request, whichever engine
// served it.

#ifndef PRTREE_IO_URING_BLOCK_DEVICE_H_
#define PRTREE_IO_URING_BLOCK_DEVICE_H_

#include <memory>
#include <mutex>
#include <string>

#include "io/file_block_device.h"
#include "io/uring_io.h"

namespace prtree {

/// How to open a uring device: the file options plus the ring shape.
struct UringDeviceOptions {
  FileDeviceOptions file;

  /// Submission-queue depth to request (the kernel rounds up to a power of
  /// two).  Batches larger than the granted depth are chunked.
  unsigned ring_entries = 64;

  /// Never create a ring: behave exactly like FileBlockDevice.  For tests
  /// that must exercise the fallback on io_uring-capable kernels.
  bool force_fallback = false;
};

/// \brief FileBlockDevice with an io_uring engine under ReadBatch().  See
/// the file comment for the fallback and accounting story.
class UringBlockDevice final : public FileBlockDevice {
 public:
  /// Opens (or creates) the device file exactly as FileBlockDevice::Open
  /// does, then tries to stand up an io_uring over its fd.  Ring failure is
  /// never an Open failure — the device falls back to pread.
  static Status Open(const std::string& path, const UringDeviceOptions& opts,
                     std::unique_ptr<UringBlockDevice>* out);

  /// Serves the whole batch with one ring submission (chunked at ring
  /// depth); per-request failures — including opcodes an old kernel lacks —
  /// retry through the scalar pread path, so a batch never fails harder
  /// than the same sequence of Read() calls.
  Status ReadBatch(BlockReadRequest* reqs, size_t n,
                   ReadKind kind = ReadKind::kDemand) const override;

  /// True iff batched reads go through an io_uring (false: pread fallback).
  bool ring_active() const { return ring_ != nullptr; }

 private:
  UringBlockDevice(size_t block_size, std::string path, int fd)
      : FileBlockDevice(block_size, std::move(path), fd,
                        /*direct_io=*/false) {}

  mutable std::mutex ring_mu_;     // one batch in the ring at a time
  std::unique_ptr<UringQueue> ring_;  // null => transparent pread fallback
};

/// \brief Opens `path` as a file-backed device of `kind` — "file" (plain
/// pread/pwrite) or "uring" (io_uring-batched ReadBatch) — type-erased to
/// the BlockDevice interface.  The kinds share one on-disk format, so
/// either opens files the other wrote.  Any other kind is
/// InvalidArgument.  This is the one switch the drivers (harness,
/// quickstart, prtree_tool) share; new backend knobs thread through here
/// once.
Status OpenFileBackedDevice(const std::string& kind, const std::string& path,
                            const FileDeviceOptions& opts,
                            std::unique_ptr<BlockDevice>* out);

}  // namespace prtree

#endif  // PRTREE_IO_URING_BLOCK_DEVICE_H_
