// The io_uring-backed block device: FileBlockDevice's on-disk format and
// scalar I/O path, with batched reads AND writes served through an io_uring.
//
// Why a subclass and not a new backend: the async engine changes *how*
// blocks move, not what is stored.  UringBlockDevice inherits the whole
// file layout (superblock, threaded free list, user-meta region), the
// durability rules and the allocation determinism contract, and a device
// file written by either class opens under the other.  The overrides are
// ReadBatch() and the WriteBatch() backend hook: a batch of N block
// transfers becomes one io_uring_enter with all N requests in flight at
// once, instead of N sequential preads/pwrites.  Scalar Read()/Write()
// deliberately stay on pread/pwrite — a single block transfer is one
// syscall either way, and the pread path runs lock-free from any number of
// threads while a ring must be serialised.
//
// Registered resources.  Open() performs the one-time
// IORING_REGISTER_FILES / IORING_REGISTER_BUFFERS handshake: the ring owns
// a page-aligned arena of depth() block-sized slots, batches bounce through
// it, and both read and write submissions use the FIXED opcodes — no
// per-op buffer pinning or fd lookup on the hot path.  The arena doubles
// as the O_DIRECT bounce (its slots satisfy the sector-alignment rules).
// Registration is best-effort: a kernel without io_uring_register, or an
// exhausted RLIMIT_MEMLOCK, leaves the ring on the plain opcodes —
// registered() reports what was negotiated.
//
// Fallback.  io_uring availability is a runtime property (kernel < 5.1,
// seccomp, the io_uring_disabled sysctl).  Open() probes: if a ring cannot
// be created — or a probe read through it (and through the registered
// tables, when they came up) fails — the device keeps ring_active() ==
// false and every batch transparently takes the inherited scalar loop.
// Semantics, accounting and on-disk bytes are identical in both modes;
// only wall-clock differs.  Setting the PRTREE_NO_URING environment
// variable (or UringDeviceOptions::force_fallback) forces the fallback,
// which is how CI exercises it on io_uring-capable kernels.
//
// Accounting matches the BlockDevice contract: one read (or prefetch_read,
// per ReadKind) / one write per successful request, whichever engine
// served it, plus one audit-only write_batches tick per WriteBatch() call
// (charged in the base wrapper, so it is engine-independent too).

#ifndef PRTREE_IO_URING_BLOCK_DEVICE_H_
#define PRTREE_IO_URING_BLOCK_DEVICE_H_

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

#include "io/file_block_device.h"
#include "io/uring_io.h"

namespace prtree {

/// How to open a uring device: the file options plus the ring shape.
struct UringDeviceOptions {
  FileDeviceOptions file;

  /// Submission-queue depth to request (the kernel rounds up to a power of
  /// two).  Batches larger than the granted depth are chunked.  Also the
  /// device's PreferredWriteBatch() — reported whether or not a ring came
  /// up, so write staging (and the write_batches counter) depends only on
  /// configuration, never on kernel capabilities.
  unsigned ring_entries = 64;

  /// Never create a ring: behave exactly like FileBlockDevice (except for
  /// PreferredWriteBatch(), see above).  For tests that must exercise the
  /// fallback on io_uring-capable kernels.
  bool force_fallback = false;

  /// Keep the ring but skip buffer/file registration, so the plain
  /// (non-FIXED) opcodes are exercised on registration-capable kernels.
  /// Test-only.
  bool force_unregistered = false;
};

/// \brief FileBlockDevice with an io_uring engine under ReadBatch() and
/// WriteBatch().  See the file comment for the registration, fallback and
/// accounting story.
class UringBlockDevice final : public FileBlockDevice {
 public:
  /// Opens (or creates) the device file exactly as FileBlockDevice::Open
  /// does, then tries to stand up an io_uring over its fd and register the
  /// fd and a transfer arena with it.  Ring or registration failure is
  /// never an Open failure — the device degrades to the plain opcodes or
  /// all the way to pread/pwrite.
  static Status Open(const std::string& path, const UringDeviceOptions& opts,
                     std::unique_ptr<UringBlockDevice>* out);

  /// Serves the whole batch with one ring submission (chunked at ring
  /// depth); per-request failures — including opcodes an old kernel lacks —
  /// retry through the scalar pread path, so a batch never fails harder
  /// than the same sequence of Read() calls.
  Status ReadBatch(BlockReadRequest* reqs, size_t n,
                   ReadKind kind = ReadKind::kDemand) const override;

  /// The requested ring depth, whether or not a ring is active (see
  /// UringDeviceOptions::ring_entries).
  size_t PreferredWriteBatch() const override { return write_batch_hint_; }

  /// True iff batches go through an io_uring (false: scalar fallback).
  bool ring_active() const { return ring_ != nullptr; }

  /// True iff the ring's fd and arena are registered (FIXED opcodes).
  bool registered() const { return registered_; }

 protected:
  /// Same engine and same never-fails-harder contract as ReadBatch, for
  /// writes: requests bounce through the registered arena and retry through
  /// the scalar pwrite path individually on any per-op failure.  While any
  /// write injection (fault, torn write, crash switch) is armed the batch
  /// takes the ordered scalar loop instead, so injected crash points are
  /// deterministic — the ring keeps a whole batch in flight at once and
  /// has no defined inter-request order to crash between.
  Status DoWriteBatch(BlockWriteRequest* reqs, size_t n,
                      WriteKind kind) override;

 private:
  struct ArenaDeleter {
    void operator()(std::byte* p) const { std::free(p); }
  };
  using Arena = std::unique_ptr<std::byte, ArenaDeleter>;

  UringBlockDevice(size_t block_size, std::string path, int fd)
      : FileBlockDevice(block_size, std::move(path), fd,
                        /*direct_io=*/false) {}

  mutable std::mutex ring_mu_;        // one batch in the ring at a time
  std::unique_ptr<UringQueue> ring_;  // null => transparent scalar fallback
  Arena arena_;           // depth() block slots, registered when possible
  size_t arena_slots_ = 0;
  bool registered_ = false;
  size_t write_batch_hint_ = 1;  // the *requested* ring depth
};

/// \brief Opens `path` as a file-backed device of `kind` — "file" (plain
/// pread/pwrite) or "uring" (io_uring-batched ReadBatch/WriteBatch) —
/// type-erased to the BlockDevice interface.  The kinds share one on-disk
/// format, so either opens files the other wrote.  Any other kind is
/// InvalidArgument.  This is the one switch the drivers (harness,
/// quickstart, prtree_tool) share; new backend knobs thread through here
/// once.
Status OpenFileBackedDevice(const std::string& kind, const std::string& path,
                            const FileDeviceOptions& opts,
                            std::unique_ptr<BlockDevice>* out);

}  // namespace prtree

#endif  // PRTREE_IO_URING_BLOCK_DEVICE_H_
