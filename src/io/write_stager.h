// WriteStager: coalesces single-page write emissions into device batches.
//
// Every serializer in the bulk-load pipeline — Stream<T> run emission, the
// level packers in rtree/builder.h, the pseudo-PR-tree leaf emitters —
// produces pages one at a time, in the coordinating thread's Allocate()
// order.  A stager buffers those emissions and drains them through
// BlockDevice::WriteBatch() in ring-depth batches, so an io_uring backend
// turns a train of one-page pwrites into a few syscalls with every write in
// flight at once.
//
// The batch size comes from BlockDevice::PreferredWriteBatch(): backends
// that gain nothing from batching report 1, and the stager then passes
// every write straight through to Write() — zero buffering, zero extra
// copies, write_batches stays 0.  The uring backend reports its configured
// ring depth whether or not a ring actually came up, so staging behaviour
// (and the write_batches audit counter) is a function of configuration,
// never of kernel capabilities.
//
// Ordering contract.  Stage() never reorders: pages drain in staging order,
// which the serializers keep equal to allocation order.  Each page is
// written exactly once with exactly the bytes staged, so a build through a
// stager produces a byte-identical device file to the same build issuing
// scalar writes (asserted by tests/write_path_test.cc).  The caller owns
// the drain points: a staged page's bytes are not on the device until
// Drain() — so drain before reading a staged page, and before Free()ing
// one (a stale drain after Free would overwrite the free-list stamp).
// Stream<T> and NodeWriter hide those rules behind their own Flush/Finish.
//
// Not thread-safe; parallel serializers use one stager per worker (their
// pages are disjoint and preallocated, so drains commute byte-wise).

#ifndef PRTREE_IO_WRITE_STAGER_H_
#define PRTREE_IO_WRITE_STAGER_H_

#include <cstring>
#include <vector>

#include "io/block_device.h"
#include "util/check.h"

namespace prtree {

/// \brief Buffers page writes and drains them as WriteBatch() submissions.
/// See the file comment for the ordering and drain-point contract.
class WriteStager {
 public:
  /// Stages into `device` with batches of `capacity` pages; capacity 0
  /// (the default) asks the device via PreferredWriteBatch().  `kind`
  /// selects the accounting class every staged write is charged to:
  /// kData (the default, demand writes) or kMeta (metadata-class — the
  /// update journal flushes its frames through a kMeta stager so demand
  /// counters never move with journaling, docs/DURABILITY.md).
  explicit WriteStager(BlockDevice* device, size_t capacity = 0,
                       WriteKind kind = WriteKind::kData)
      : device_(device),
        capacity_(capacity != 0 ? capacity : device->PreferredWriteBatch()),
        kind_(kind) {}

  ~WriteStager() { Drain(); }

  WriteStager(const WriteStager&) = delete;
  WriteStager& operator=(const WriteStager&) = delete;

  WriteStager(WriteStager&& o) noexcept
      : device_(o.device_),
        capacity_(o.capacity_),
        kind_(o.kind_),
        slab_(std::move(o.slab_)),
        pages_(std::move(o.pages_)) {
    o.pages_.clear();
  }

  WriteStager& operator=(WriteStager&& o) noexcept {
    if (this != &o) {
      Drain();
      device_ = o.device_;
      capacity_ = o.capacity_;
      kind_ = o.kind_;
      slab_ = std::move(o.slab_);
      pages_ = std::move(o.pages_);
      o.pages_.clear();
    }
    return *this;
  }

  BlockDevice* device() const { return device_; }
  size_t capacity() const { return capacity_; }
  size_t staged() const { return pages_.size(); }

  /// Writes `buf` (block_size bytes) to `page` — immediately when batching
  /// is pointless (capacity <= 1), otherwise staged until the batch fills
  /// or Drain() is called.  Aborts on I/O failure, like the serializers'
  /// scalar writes did.
  void Stage(PageId page, const void* buf) {
    if (capacity_ <= 1) {
      AbortIfError(kind_ == WriteKind::kData ? device_->Write(page, buf)
                                             : device_->WriteMeta(page, buf));
      return;
    }
    const size_t block = device_->block_size();
    if (slab_.empty()) slab_.resize(capacity_ * block);
    std::memcpy(slab_.data() + pages_.size() * block, buf, block);
    pages_.push_back(page);
    if (pages_.size() == capacity_) Drain();
  }

  /// Submits everything staged as one WriteBatch (pages in staging order).
  /// Idempotent; cheap when nothing is staged.
  void Drain() {
    if (pages_.empty()) return;
    const size_t block = device_->block_size();
    std::vector<BlockWriteRequest> reqs(pages_.size());
    for (size_t i = 0; i < pages_.size(); ++i) {
      reqs[i].page = pages_[i];
      reqs[i].buf = slab_.data() + i * block;
    }
    Status st = device_->WriteBatch(reqs.data(), reqs.size(), kind_);
    pages_.clear();
    AbortIfError(st);
  }

  /// Drain() plus releasing the slab's memory.  For long-lived but sealed
  /// owners (a flushed external-sort run keeps its Stream alive for the
  /// merge) so idle stagers do not hold a ring-depth slab each.
  void DrainAndRelease() {
    Drain();
    slab_.clear();
    slab_.shrink_to_fit();
  }

 private:
  BlockDevice* device_;
  size_t capacity_;
  WriteKind kind_ = WriteKind::kData;  // accounting class for every write
  std::vector<std::byte> slab_;  // capacity_ blocks, allocated lazily
  std::vector<PageId> pages_;    // staged pages, in staging order
};

}  // namespace prtree

#endif  // PRTREE_IO_WRITE_STAGER_H_
