// Epoch-based page reclamation: the MVCC backbone for snapshot reads
// under concurrent writes.
//
// The write paths (the logarithmic-method rebuilds in core/dynamic_prtree.h
// and the copy-on-write updaters in rtree/update.h, rtree/rstar.h) never
// mutate a page a published version references: they build replacement
// pages off to the side, publish with a single atomic root swap, and hand
// the replaced pages here.  A retired page is *logically* free — no current
// or future version references it — but a reader that pinned an older
// version may still be traversing it, so returning it to the device free
// list immediately would let the next Allocate() recycle the id and write
// fresh bytes under that reader.
//
// EpochManager closes that window with the classic epoch scheme:
//
//   * every published version belongs to an epoch; Retire() stamps the
//     replaced pages with a new epoch (the swap that obsoleted them) and
//     parks them on a per-epoch limbo list;
//   * readers Enter() before loading a version and hold the returned
//     EpochGuard while traversing; the guard records the epoch that was
//     current at entry;
//   * a limbo entry drains — each page is invalidated in every attached
//     BufferPool, then device->Free()d — once no active guard is older
//     than the entry's retire epoch.  With no readers at all, Retire()
//     drains immediately, so single-threaded usage reclaims pages exactly
//     as eagerly as direct Free() calls did.
//
// The pool interplay is the safety-critical part: a pooled frame for a
// retired-but-undrained page is still byte-accurate (copy-on-write means
// nobody overwrites it), so snapshot readers may keep hitting it.  Only
// when the page returns to the free list — and a later Allocate() may
// recycle the id with new contents — must cached frames die, which is why
// the invalidation happens at drain time, never earlier.
//
// Thread safety: all members may be called from any number of threads.
// Attached pools and the device must outlive the manager (or be detached).

#ifndef PRTREE_IO_EPOCH_H_
#define PRTREE_IO_EPOCH_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "io/buffer_pool.h"

namespace prtree {

class EpochManager;

/// \brief RAII reader registration: while alive, no page retired after the
/// guard was acquired is returned to the device free list.  Movable,
/// released on destruction or an explicit Release().
class EpochGuard {
 public:
  EpochGuard() = default;
  EpochGuard(EpochGuard&& o) noexcept : mgr_(o.mgr_), epoch_(o.epoch_) {
    o.mgr_ = nullptr;
  }
  EpochGuard& operator=(EpochGuard&& o) noexcept {
    if (this != &o) {
      Release();
      mgr_ = o.mgr_;
      epoch_ = o.epoch_;
      o.mgr_ = nullptr;
    }
    return *this;
  }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
  ~EpochGuard() { Release(); }

  bool valid() const { return mgr_ != nullptr; }
  uint64_t epoch() const { return epoch_; }

  /// Drops the registration early (idempotent).  Releasing the oldest
  /// guard is what lets pending limbo entries drain.
  void Release();

 private:
  friend class EpochManager;
  EpochGuard(EpochManager* mgr, uint64_t epoch) : mgr_(mgr), epoch_(epoch) {}

  EpochManager* mgr_ = nullptr;
  uint64_t epoch_ = 0;
};

/// \brief Reader registry plus per-epoch limbo lists of retired pages.
/// One per versioned structure (DynamicPRTree owns one; standalone trees
/// served through the COW updaters share one explicitly).
class EpochManager {
 public:
  /// \param device  device the retired pages return to (not owned).
  explicit EpochManager(BlockDevice* device);

  /// Drains every remaining limbo page back to the device (still
  /// invalidating attached pools).  Aborts if a guard is still active —
  /// snapshots must not outlive the structure they read.
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// \brief Registers a reader at the current epoch.  Acquire the guard
  /// *before* loading the version root(s) you intend to traverse: pages of
  /// any version observable after entry outlive the guard.
  EpochGuard Enter();

  /// \brief Parks `pages` on the limbo list, stamped with a fresh epoch.
  /// Call *after* publishing the version swap that made them unreachable.
  /// Entries whose epoch no active reader predates are freed immediately,
  /// so this is also the drain pump on the writer side.
  void Retire(std::vector<PageId> pages);

  /// \brief Registers `pool` for invalidation when pages drain: every page
  /// is Invalidate()d in each attached pool immediately before its
  /// device->Free().  Idempotent.  An attached pool must outlive this
  /// manager or be detached first.
  void AttachPool(BufferPool* pool);
  void DetachPool(BufferPool* pool);

  /// Epoch of the newest retirement (0 before any).  Diagnostics.
  uint64_t current_epoch() const;
  /// Pages awaiting drain across all limbo entries.
  size_t limbo_pages() const;
  /// Active (entered, not yet released) reader guards.
  size_t active_readers() const;

 private:
  friend class EpochGuard;

  void Exit(uint64_t epoch);
  /// Frees every limbo entry no active reader predates.  mu_ held.
  void DrainLocked();

  BlockDevice* const device_;

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;                  // newest retire stamp
  std::map<uint64_t, size_t> active_;   // epoch -> reader count
  struct LimboEntry {
    uint64_t retire_epoch;
    std::vector<PageId> pages;
  };
  std::deque<LimboEntry> limbo_;        // retire_epoch ascending
  size_t limbo_pages_ = 0;
  std::vector<BufferPool*> pools_;
};

}  // namespace prtree

#endif  // PRTREE_IO_EPOCH_H_
