#include "io/journal.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace prtree {

namespace {

using journal_internal::CommitPayload;
using journal_internal::FrameHeader;
using journal_internal::kAnchorMagic;
using journal_internal::kJournalVersion;
using journal_internal::kPageMagic;
using journal_internal::kRegionMagic;
using journal_internal::PageHeader;
using journal_internal::RecordTail;
using journal_internal::RegionHeader;

constexpr size_t kFrameAlign = 8;

size_t AlignFrame(size_t n) {
  return (n + kFrameAlign - 1) / kFrameAlign * kFrameAlign;
}

size_t RecordPayloadLen(uint32_t dim) {
  return 2 * static_cast<size_t>(dim) * sizeof(double) + sizeof(RecordTail);
}

/// Largest page-id count an intent frame can carry on this block size.
size_t MaxIntentIds(size_t block_size) {
  const size_t usable =
      block_size - sizeof(PageHeader) - sizeof(FrameHeader);
  return usable / sizeof(PageId);
}

/// Frame-page capacity for frames (everything after the page header).
size_t PageFrameCapacity(size_t block_size) {
  return block_size - sizeof(PageHeader);
}

const uint32_t* Crc32Table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t JournalCrc32(const void* data, size_t len) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool DecodeJournalRecord(const JournalOpRecord& op, uint32_t dim, double* lo,
                         double* hi, uint32_t* id) {
  if (op.aux != dim) return false;
  const size_t need = RecordPayloadLen(dim);
  if (op.payload.size() < need) return false;
  const std::byte* p = op.payload.data();
  std::memcpy(lo, p, dim * sizeof(double));
  std::memcpy(hi, p + dim * sizeof(double), dim * sizeof(double));
  RecordTail tail;
  std::memcpy(&tail, p + 2 * dim * sizeof(double), sizeof(tail));
  *id = tail.id;
  return true;
}

Status ReadJournalAnchor(const FileBlockDevice& device, JournalAnchor* anchor,
                         bool* present) {
  *present = false;
  std::byte meta[FileBlockDevice::kUserMetaCapacity];
  const size_t len = device.GetUserMeta(meta, sizeof(meta));
  if (len < kJournalUserMetaLen) return Status::OK();
  std::memcpy(anchor, meta + kJournalAnchorOffset, sizeof(*anchor));
  if (anchor->magic != kAnchorMagic) return Status::OK();
  if (anchor->version != kJournalVersion) {
    return Status::Corruption("unsupported journal anchor version " +
                              std::to_string(anchor->version));
  }
  if (anchor->crc !=
      JournalCrc32(anchor, offsetof(JournalAnchor, crc))) {
    return Status::Corruption("journal anchor checksum mismatch");
  }
  *present = true;
  return Status::OK();
}

namespace {

/// Shared head-page load + validation for ScanJournal/JournalPending.
Status LoadRegion(const BlockDevice& device, const JournalAnchor& anchor,
                  std::vector<std::byte>* buf, RegionHeader* header,
                  std::vector<PageId>* frame_pages) {
  buf->resize(device.block_size());
  Status st = device.ReadMeta(anchor.head_page, buf->data());
  if (!st.ok()) {
    return Status::Corruption("journal head page " +
                              std::to_string(anchor.head_page) +
                              " unreadable: " + st.message());
  }
  std::memcpy(header, buf->data(), sizeof(*header));
  if (header->magic != kRegionMagic ||
      header->version != kJournalVersion ||
      header->epoch != anchor.epoch ||
      header->start_seq != anchor.start_seq) {
    return Status::Corruption("journal head page does not match anchor");
  }
  const size_t max_pages =
      (device.block_size() - sizeof(RegionHeader)) / sizeof(PageId);
  if (header->page_count == 0 || header->page_count > max_pages) {
    return Status::Corruption("journal region page count out of range");
  }
  RegionHeader unsummed = *header;
  unsummed.crc = 0;
  std::memcpy(buf->data(), &unsummed, sizeof(unsummed));
  const uint32_t crc = JournalCrc32(
      buf->data(), sizeof(RegionHeader) + header->page_count * sizeof(PageId));
  if (crc != header->crc) {
    return Status::Corruption("journal head page checksum mismatch");
  }
  frame_pages->resize(header->page_count);
  std::memcpy(frame_pages->data(), buf->data() + sizeof(RegionHeader),
              header->page_count * sizeof(PageId));
  return Status::OK();
}

bool PageHeaderValid(const std::byte* buf, uint32_t epoch, uint32_t index) {
  PageHeader ph;
  std::memcpy(&ph, buf, sizeof(ph));
  return ph.magic == kPageMagic && ph.epoch == epoch && ph.index == index;
}

}  // namespace

Status ScanJournal(const BlockDevice& device, const JournalAnchor& anchor,
                   JournalScan* out) {
  *out = JournalScan{};
  out->epoch = anchor.epoch;
  out->start_seq = anchor.start_seq;
  out->next_seq = anchor.start_seq;

  std::vector<std::byte> buf;
  RegionHeader header;
  std::vector<PageId> frame_pages;
  PRTREE_RETURN_NOT_OK(
      LoadRegion(device, anchor, &buf, &header, &frame_pages));
  out->region.push_back(anchor.head_page);
  out->region.insert(out->region.end(), frame_pages.begin(),
                     frame_pages.end());

  const size_t block = device.block_size();
  // Record/intent frames parsed since the last commit; a commit frame
  // promotes them, the end of the scan discards them as the torn tail.
  std::vector<JournalOpRecord> pending;
  std::vector<PageId> pending_intents;
  size_t pending_frames = 0;

  bool ended = false;
  for (uint32_t idx = 0; idx < header.page_count && !ended; ++idx) {
    if (!device.ReadMeta(frame_pages[idx], buf.data()).ok()) break;
    if (!PageHeaderValid(buf.data(), header.epoch, idx)) break;
    size_t off = sizeof(PageHeader);
    while (off + sizeof(FrameHeader) <= block) {
      FrameHeader fh;
      std::memcpy(&fh, buf.data() + off, sizeof(fh));
      if (fh.len == 0) break;  // page exhausted; try the next one
      if (fh.len < sizeof(FrameHeader) || fh.len % kFrameAlign != 0 ||
          off + fh.len > block) {
        ended = true;  // torn or garbage length
        break;
      }
      if (fh.crc != JournalCrc32(buf.data() + off + sizeof(uint32_t),
                                 fh.len - sizeof(uint32_t))) {
        ended = true;  // torn frame
        break;
      }
      if (fh.seq != out->next_seq) {
        ended = true;  // stale bytes from an earlier epoch's tenant
        break;
      }
      const std::byte* payload = buf.data() + off + sizeof(FrameHeader);
      const size_t payload_len = fh.len - sizeof(FrameHeader);
      switch (static_cast<JournalFrameType>(fh.type)) {
        case JournalFrameType::kInsert:
        case JournalFrameType::kDelete: {
          if (payload_len < RecordPayloadLen(fh.aux)) {
            ended = true;
            break;
          }
          JournalOpRecord op;
          op.type = static_cast<JournalFrameType>(fh.type);
          op.aux = fh.aux;
          op.seq = fh.seq;
          op.payload.assign(payload, payload + payload_len);
          pending.push_back(std::move(op));
          ++pending_frames;
          break;
        }
        case JournalFrameType::kIntent: {
          if (payload_len < fh.aux * sizeof(PageId)) {
            ended = true;
            break;
          }
          const size_t base = pending_intents.size();
          pending_intents.resize(base + fh.aux);
          std::memcpy(pending_intents.data() + base, payload,
                      fh.aux * sizeof(PageId));
          ++pending_frames;
          break;
        }
        case JournalFrameType::kCommit: {
          if (payload_len < sizeof(CommitPayload)) {
            ended = true;
            break;
          }
          CommitPayload cp;
          std::memcpy(&cp, payload, sizeof(cp));
          out->has_commit = true;
          out->commit_root = cp.root;
          out->commit_height = cp.height;
          out->commit_size = cp.size;
          out->commit_seq = fh.seq;
          out->committed_ops += 1;
          for (auto& op : pending) out->committed.push_back(std::move(op));
          pending.clear();
          out->intents.insert(out->intents.end(), pending_intents.begin(),
                              pending_intents.end());
          pending_intents.clear();
          pending_frames = 0;
          break;
        }
        default:
          ended = true;
          break;
      }
      if (ended) break;
      out->next_seq = fh.seq + 1;
      off += fh.len;
    }
  }
  out->truncated_frames = pending_frames;
  return Status::OK();
}

Status JournalPending(const BlockDevice& device, const JournalAnchor& anchor,
                      bool* pending) {
  *pending = false;
  std::vector<std::byte> buf;
  RegionHeader header;
  std::vector<PageId> frame_pages;
  PRTREE_RETURN_NOT_OK(
      LoadRegion(device, anchor, &buf, &header, &frame_pages));
  // The writer flushes frame pages strictly in region order, so page 0
  // carrying a valid header is exactly "frames were written this epoch".
  Status st = device.ReadMeta(frame_pages[0], buf.data());
  if (!st.ok()) return Status::OK();
  *pending = PageHeaderValid(buf.data(), header.epoch, 0);
  return Status::OK();
}

JournalWriter::JournalWriter(FileBlockDevice* device,
                             const JournalOptions& opts)
    : device_(device),
      opts_(opts),
      stager_(device, /*capacity=*/0, WriteKind::kMeta) {
  PRTREE_CHECK(device_ != nullptr);
  PRTREE_CHECK(opts_.region_pages >= 2);
  const size_t max_pages =
      (device_->block_size() - sizeof(RegionHeader)) / sizeof(PageId);
  PRTREE_CHECK(opts_.region_pages <= max_pages);
}

PageId JournalWriter::tail_page() const {
  PRTREE_CHECK(attached() && tail_idx_ < region_.size());
  return region_[tail_idx_];
}

void JournalWriter::StageRecord(JournalFrameType type, uint32_t dim,
                                const double* lo, const double* hi,
                                uint32_t id) {
  PRTREE_CHECK(type == JournalFrameType::kInsert ||
               type == JournalFrameType::kDelete);
  PendingFrame f;
  f.type = type;
  f.aux = dim;
  f.payload.resize(RecordPayloadLen(dim));
  std::byte* p = f.payload.data();
  std::memcpy(p, lo, dim * sizeof(double));
  std::memcpy(p + dim * sizeof(double), hi, dim * sizeof(double));
  RecordTail tail{id, 0};
  std::memcpy(p + 2 * dim * sizeof(double), &tail, sizeof(tail));
  staged_.push_back(std::move(f));
}

Status JournalWriter::AppendFrame(JournalFrameType type, uint32_t aux,
                                  const void* payload, size_t payload_len) {
  const size_t block = device_->block_size();
  const size_t len = AlignFrame(sizeof(FrameHeader) + payload_len);
  PRTREE_CHECK(len <= PageFrameCapacity(block));  // frames never span pages
  if (tail_used_ + len > block) {
    // Spill: flush the full tail page and move to the next frame page.
    // Its frames are not committed until a commit frame lands after them,
    // so a crash between these writes torn-truncates cleanly.
    if (tail_dirty_) stager_.Stage(region_[tail_idx_], tail_buf_.data());
    tail_dirty_ = false;
    ++tail_idx_;
    if (tail_idx_ >= region_.size()) {
      return Status::IoError(
          "journal region exhausted mid-commit — checkpoint was overdue");
    }
    ResetTailBuf();
  }
  FrameHeader fh;
  fh.crc = 0;
  fh.len = static_cast<uint32_t>(len);
  fh.seq = next_seq_++;
  fh.type = static_cast<uint32_t>(type);
  fh.aux = aux;
  std::byte* at = tail_buf_.data() + tail_used_;
  std::memcpy(at, &fh, sizeof(fh));
  std::memcpy(at + sizeof(fh), payload, payload_len);
  std::memset(at + sizeof(fh) + payload_len, 0,
              len - sizeof(fh) - payload_len);
  fh.crc = JournalCrc32(at + sizeof(uint32_t), len - sizeof(uint32_t));
  std::memcpy(at, &fh.crc, sizeof(fh.crc));
  tail_used_ += len;
  tail_dirty_ = true;
  return Status::OK();
}

Status JournalWriter::CommitOp(PageId root, int32_t height, uint64_t size,
                               std::vector<PageId>* retired) {
  PRTREE_CHECK(attached() && tail_idx_ < region_.size());
  for (const PendingFrame& f : staged_) {
    PRTREE_RETURN_NOT_OK(
        AppendFrame(f.type, f.aux, f.payload.data(), f.payload.size()));
  }
  staged_.clear();
  if (retired != nullptr && !retired->empty()) {
    const size_t cap = std::min<size_t>(
        opts_.max_intents, MaxIntentIds(device_->block_size()));
    const size_t n = std::min(retired->size(), cap);
    PRTREE_RETURN_NOT_OK(AppendFrame(JournalFrameType::kIntent,
                                     static_cast<uint32_t>(n),
                                     retired->data(), n * sizeof(PageId)));
  }
  CommitPayload cp{root, height, size};
  PRTREE_RETURN_NOT_OK(
      AppendFrame(JournalFrameType::kCommit, 0, &cp, sizeof(cp)));

  // Flush: earlier spilled pages are already staged in order; the tail
  // page — carrying the commit frame — drains last, so its block write is
  // the commit point.
  stager_.Stage(region_[tail_idx_], tail_buf_.data());
  tail_dirty_ = false;
  stager_.Drain();
  if (opts_.sync_on_commit) PRTREE_RETURN_NOT_OK(device_->Sync());

  committed_ops_ += 1;
  if (retired != nullptr && !retired->empty()) {
    deferred_.insert(deferred_.end(), retired->begin(), retired->end());
    retired->clear();
  }
  return Status::OK();
}

bool JournalWriter::NeedsCheckpoint() const {
  if (region_.empty() || tail_idx_ >= region_.size()) return true;
  // Worst case one op spills once, so keep two untouched pages in hand.
  return region_.size() - 1 - tail_idx_ < 2;
}

Status JournalWriter::Checkpoint(const MetaBuilder& build_meta) {
  PRTREE_CHECK(staged_.empty());  // never rotate with an op in flight
  const size_t block = device_->block_size();
  const uint32_t new_epoch = epoch_ + 1;

  // 1. The next epoch's region: head + frame pages, all allocated (and the
  //    head written) before the superblock Sync below, so a crash-reopened
  //    device — whose superblock is exactly that Sync — knows every page.
  std::vector<PageId> fresh(1 + static_cast<size_t>(opts_.region_pages));
  for (PageId& p : fresh) p = device_->Allocate();

  std::vector<std::byte> head(block, std::byte{0});
  RegionHeader rh;
  rh.magic = kRegionMagic;
  rh.version = kJournalVersion;
  rh.epoch = new_epoch;
  rh.page_count = opts_.region_pages;
  rh.start_seq = next_seq_;
  rh.reserved = 0;
  rh.crc = 0;
  std::memcpy(head.data(), &rh, sizeof(rh));
  std::memcpy(head.data() + sizeof(rh), fresh.data() + 1,
              opts_.region_pages * sizeof(PageId));
  rh.crc = JournalCrc32(head.data(),
                        sizeof(rh) + opts_.region_pages * sizeof(PageId));
  std::memcpy(head.data(), &rh, sizeof(rh));
  PRTREE_RETURN_NOT_OK(device_->WriteMeta(fresh[0], head.data()));

  // 2. The durable swap: tree meta + new anchor in one user-meta write,
  //    then Sync.  The counters recorded are what the device will report
  //    once step 3's frees complete — the state a clean reopen sees.
  const uint64_t allocated_after =
      device_->num_allocated() - region_.size() - deferred_.size();
  std::byte meta[kJournalUserMetaLen];
  std::memset(meta, 0, sizeof(meta));
  const size_t meta_len =
      build_meta(meta, kJournalAnchorOffset, new_epoch, allocated_after,
                 device_->peak_allocated());
  PRTREE_CHECK(meta_len <= kJournalAnchorOffset);
  JournalAnchor anchor;
  anchor.magic = kAnchorMagic;
  anchor.version = kJournalVersion;
  anchor.epoch = new_epoch;
  anchor.head_page = fresh[0];
  anchor.start_seq = next_seq_;
  anchor.reserved = 0;
  anchor.crc = JournalCrc32(&anchor, offsetof(JournalAnchor, crc));
  std::memcpy(meta + kJournalAnchorOffset, &anchor, sizeof(anchor));
  PRTREE_RETURN_NOT_OK(device_->SetUserMeta(meta, sizeof(meta)));
  PRTREE_RETURN_NOT_OK(device_->Sync());

  // 3. Reclaim: the old region and every page committed ops retired.  A
  //    crash before these frees finish leaks them until the next
  //    recovery's reachability sweep — the documented bounded-leak window.
  for (PageId p : region_) device_->Free(p);
  for (PageId p : deferred_) device_->Free(p);
  deferred_.clear();

  epoch_ = new_epoch;
  region_ = std::move(fresh);
  tail_idx_ = 1;
  ResetTailBuf();
  return Status::OK();
}

void JournalWriter::AdoptRecovered(const JournalScan& scan) {
  PRTREE_CHECK(staged_.empty());
  epoch_ = scan.epoch;
  next_seq_ = scan.next_seq;
  committed_ops_ = scan.committed_ops;
  region_ = scan.region;
  deferred_.clear();
  // Not appendable until the adopting caller checkpoints away from the
  // scanned region (its tail may hold truncated frames).
  tail_idx_ = region_.size();
  tail_used_ = 0;
  tail_dirty_ = false;
}

void JournalWriter::ResetTailBuf() {
  const size_t block = device_->block_size();
  tail_buf_.assign(block, std::byte{0});
  PageHeader ph;
  ph.magic = kPageMagic;
  ph.epoch = epoch_;
  ph.index = static_cast<uint32_t>(tail_idx_ - 1);
  ph.reserved = 0;
  std::memcpy(tail_buf_.data(), &ph, sizeof(ph));
  tail_used_ = sizeof(PageHeader);
  tail_dirty_ = false;
}

}  // namespace prtree
