#include "io/uring_io.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>
#endif

#if defined(__linux__) && defined(__NR_io_uring_setup) && \
    defined(__NR_io_uring_enter)
#define PRTREE_HAVE_URING 1
#else
#define PRTREE_HAVE_URING 0
#endif

namespace prtree {

#if PRTREE_HAVE_URING

namespace {

// Raw syscall wrappers: the container ships kernel headers but no liburing,
// and the two syscalls below are the whole ABI this class needs.
int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

#if defined(__NR_io_uring_register)
int SysUringRegister(int ring_fd, unsigned opcode, const void* arg,
                     unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}
#endif

std::string EnterError(int err) {
  return std::string("io_uring_enter failed: ") + std::strerror(err);
}

}  // namespace

bool UringQueue::KernelSupport() {
  // The environment override is read on every call (not folded into the
  // cached probe) so a test can flip PRTREE_NO_URING mid-process.
  const char* no = std::getenv("PRTREE_NO_URING");
  if (no != nullptr && no[0] != '\0') return false;
  static const bool probed = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    int fd = SysUringSetup(1, &p);
    if (fd < 0) return false;  // ENOSYS / seccomp / io_uring_disabled
    ::close(fd);
    return true;
  }();
  return probed;
}

Status UringQueue::Create(int fd, unsigned entries,
                          std::unique_ptr<UringQueue>* out) {
  out->reset();
  if (!KernelSupport()) {
    return Status::IoError("io_uring is unavailable on this kernel/process");
  }
  if (entries == 0) entries = 1;
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  int ring_fd = SysUringSetup(entries, &p);
  if (ring_fd < 0) {
    return Status::IoError(std::string("io_uring_setup failed: ") +
                           std::strerror(errno));
  }

  std::unique_ptr<UringQueue> q(new UringQueue);
  q->ring_fd_ = ring_fd;
  q->file_fd_ = fd;
  q->sq_entries_ = p.sq_entries;
  q->cq_entries_ = p.cq_entries;

  size_t sq_bytes = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
  size_t cq_bytes = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);

  void* sq = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
  if (sq == MAP_FAILED) {
    return Status::IoError("cannot map io_uring SQ ring");
  }
  q->sq_ring_ = sq;
  q->sq_ring_bytes_ = sq_bytes;

  void* cq = sq;
  if (!single_mmap) {
    cq = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
    if (cq == MAP_FAILED) {
      return Status::IoError("cannot map io_uring CQ ring");
    }
    q->cq_ring_bytes_ = cq_bytes;  // own mapping, unmapped separately
  }
  q->cq_ring_ = cq;

  size_t sqes_bytes = p.sq_entries * sizeof(io_uring_sqe);
  void* sqes = ::mmap(nullptr, sqes_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    return Status::IoError("cannot map io_uring SQE array");
  }
  q->sqes_ = sqes;
  q->sqes_bytes_ = sqes_bytes;

  auto at = [](void* base, uint32_t off) {
    return reinterpret_cast<uint32_t*>(static_cast<char*>(base) + off);
  };
  q->sq_head_ = at(sq, p.sq_off.head);
  q->sq_tail_ = at(sq, p.sq_off.tail);
  q->sq_mask_ = at(sq, p.sq_off.ring_mask);
  q->sq_array_ = at(sq, p.sq_off.array);
  q->cq_head_ = at(cq, p.cq_off.head);
  q->cq_tail_ = at(cq, p.cq_off.tail);
  q->cq_mask_ = at(cq, p.cq_off.ring_mask);
  q->cqes_ = static_cast<char*>(cq) + p.cq_off.cqes;

  *out = std::move(q);
  return Status::OK();
}

UringQueue::~UringQueue() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_bytes_ != 0 && cq_ring_ != nullptr) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

Status UringQueue::SubmitAndWaitReads(UringIoOp* ops, size_t n) {
  return SubmitAndWait(ops, n, /*write=*/false);
}

Status UringQueue::SubmitAndWaitWrites(UringIoOp* ops, size_t n) {
  return SubmitAndWait(ops, n, /*write=*/true);
}

Status UringQueue::SubmitAndWait(UringIoOp* ops, size_t n, bool write) {
  for (size_t i = 0; i < n; ++i) ops[i].result = INT32_MIN;
  // The ring is empty between chunks (each chunk waits for all of its
  // completions), so chunking is just a loop.
  for (size_t done = 0; done < n;) {
    size_t m = std::min<size_t>(n - done, sq_entries_);
    PRTREE_RETURN_NOT_OK(RunChunk(ops + done, m, write));
    done += m;
  }
  return Status::OK();
}

Status UringQueue::RegisterFile() {
#if defined(__NR_io_uring_register)
  if (file_registered_) return Status::OK();
  int32_t fd = file_fd_;
  if (SysUringRegister(ring_fd_, IORING_REGISTER_FILES, &fd, 1) < 0) {
    return Status::IoError(std::string("io_uring_register(FILES) failed: ") +
                           std::strerror(errno));
  }
  file_registered_ = true;
  return Status::OK();
#else
  return Status::IoError("io_uring_register is unavailable in these headers");
#endif
}

Status UringQueue::RegisterBuffer(void* base, size_t len) {
#if defined(__NR_io_uring_register)
  if (reg_base_ != nullptr) return Status::OK();
  iovec vec;
  vec.iov_base = base;
  vec.iov_len = len;
  // Pins `len` bytes against RLIMIT_MEMLOCK; ENOMEM/EFAULT here just means
  // the caller keeps the unregistered opcodes.
  if (SysUringRegister(ring_fd_, IORING_REGISTER_BUFFERS, &vec, 1) < 0) {
    return Status::IoError(std::string("io_uring_register(BUFFERS) failed: ") +
                           std::strerror(errno));
  }
  reg_base_ = base;
  reg_len_ = len;
  return Status::OK();
#else
  (void)base;
  (void)len;
  return Status::IoError("io_uring_register is unavailable in these headers");
#endif
}

Status UringQueue::RunChunk(UringIoOp* ops, size_t m, bool write) {
  auto* sqes = static_cast<io_uring_sqe*>(sqes_);
  const uint32_t sq_mask = *sq_mask_;
  const uint32_t cq_mask = *cq_mask_;
  uint32_t tail =
      std::atomic_ref<uint32_t>(*sq_tail_).load(std::memory_order_relaxed);
  for (size_t i = 0; i < m; ++i) {
    uint32_t idx = (tail + static_cast<uint32_t>(i)) & sq_mask;
    io_uring_sqe& sqe = sqes[idx];
    std::memset(&sqe, 0, sizeof(sqe));
    // Opcode ladder: an op whose buffer lies inside the registered region
    // takes the FIXED opcode (5.1+, no per-op pin); anything else takes
    // IORING_OP_READ/WRITE (5.6+, no iovec).  On kernels lacking the chosen
    // opcode the CQE comes back -EINVAL, which the caller handles as a
    // per-op failure (and falls back to pread/pwrite).
    char* buf = static_cast<char*>(ops[i].buf);
    const bool fixed =
        reg_base_ != nullptr && buf >= static_cast<char*>(reg_base_) &&
        buf + ops[i].len <= static_cast<char*>(reg_base_) + reg_len_;
    if (write) {
      sqe.opcode = fixed ? IORING_OP_WRITE_FIXED : IORING_OP_WRITE;
    } else {
      sqe.opcode = fixed ? IORING_OP_READ_FIXED : IORING_OP_READ;
    }
    if (fixed) sqe.buf_index = 0;  // the one registered iovec
    if (file_registered_) {
      sqe.fd = 0;  // index into the fixed-file table
      sqe.flags |= IOSQE_FIXED_FILE;
    } else {
      sqe.fd = file_fd_;
    }
    sqe.addr = reinterpret_cast<uint64_t>(ops[i].buf);
    sqe.len = ops[i].len;
    sqe.off = ops[i].offset;
    sqe.user_data = i;
    sq_array_[idx] = idx;
  }
  // Publish the new tail; the kernel reads it with an acquire on entry.
  std::atomic_ref<uint32_t>(*sq_tail_)
      .store(tail + static_cast<uint32_t>(m), std::memory_order_release);

  size_t submitted = 0;
  size_t completed = 0;
  auto reap = [&] {
    auto* cqes = static_cast<io_uring_cqe*>(cqes_);
    uint32_t head =
        std::atomic_ref<uint32_t>(*cq_head_).load(std::memory_order_relaxed);
    uint32_t ctail =
        std::atomic_ref<uint32_t>(*cq_tail_).load(std::memory_order_acquire);
    while (head != ctail) {
      const io_uring_cqe& cqe = cqes[head & cq_mask];
      if (cqe.user_data < m) {
        ops[cqe.user_data].result = cqe.res;
        ++completed;
      }
      ++head;
    }
    std::atomic_ref<uint32_t>(*cq_head_)
        .store(head, std::memory_order_release);
  };

  while (submitted < m || completed < m) {
    unsigned to_submit = static_cast<unsigned>(m - submitted);
    unsigned want = static_cast<unsigned>(m - completed);
    int ret = SysUringEnter(ring_fd_, to_submit,
                            want, IORING_ENTER_GETEVENTS);
    if (ret < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EBUSY) {
        reap();
        continue;
      }
      return Status::IoError(EnterError(errno));
    }
    submitted += static_cast<size_t>(ret);
    reap();
  }
  return Status::OK();
}

#else  // !PRTREE_HAVE_URING

// Non-Linux (or headers without the io_uring syscall numbers): io_uring is
// statically unavailable and every caller takes the pread fallback.
bool UringQueue::KernelSupport() { return false; }

Status UringQueue::Create(int /*fd*/, unsigned /*entries*/,
                          std::unique_ptr<UringQueue>* out) {
  out->reset();
  return Status::IoError("io_uring is not supported on this platform");
}

UringQueue::~UringQueue() = default;

Status UringQueue::SubmitAndWaitReads(UringIoOp* /*ops*/, size_t /*n*/) {
  return Status::IoError("io_uring is not supported on this platform");
}

Status UringQueue::SubmitAndWaitWrites(UringIoOp* /*ops*/, size_t /*n*/) {
  return Status::IoError("io_uring is not supported on this platform");
}

Status UringQueue::SubmitAndWait(UringIoOp* /*ops*/, size_t /*n*/,
                                 bool /*write*/) {
  return Status::IoError("io_uring is not supported on this platform");
}

Status UringQueue::RegisterFile() {
  return Status::IoError("io_uring is not supported on this platform");
}

Status UringQueue::RegisterBuffer(void* /*base*/, size_t /*len*/) {
  return Status::IoError("io_uring is not supported on this platform");
}

Status UringQueue::RunChunk(UringIoOp* /*ops*/, size_t /*m*/, bool /*write*/) {
  return Status::IoError("io_uring is not supported on this platform");
}

#endif  // PRTREE_HAVE_URING

}  // namespace prtree
