// Execution environment for external-memory algorithms: the device plus the
// main-memory budget M.  Mirrors the paper's experimental setup of a fixed
// disk block size with 64 MB of memory available to TPIE (§3.1).  The
// device is the abstract BlockDevice interface — loaders run unchanged
// (and produce identical bytes and I/O counts) over the in-memory backend
// or a FileBlockDevice whose pages live on real disk.

#ifndef PRTREE_IO_WORK_ENV_H_
#define PRTREE_IO_WORK_ENV_H_

#include <cstddef>

#include "io/block_device.h"

namespace prtree {

class ThreadPool;  // util/parallel.h

/// Memory budget the paper grants the external-memory library (§3.1).
inline constexpr size_t kDefaultMemoryBudget = 64ull << 20;  // 64 MB

/// \brief Device handle plus advisory memory budget, passed to every bulk
/// loader and external algorithm.
///
/// The budget is advisory in the sense that algorithms size their run
/// buffers, merge fan-in, grid resolution z and base-case thresholds from
/// it; it is not enforced by a custom allocator.  Tests pass tiny budgets to
/// force multi-pass external behaviour on small inputs.
struct WorkEnv {
  BlockDevice* device = nullptr;
  size_t memory_bytes = kDefaultMemoryBudget;

  /// Optional worker pool for the CPU-heavy build stages (run sorting,
  /// pseudo-PR-tree recursion, node serialization).  Null means serial.
  /// Never changes *what* is built: all sizing thresholds derive from
  /// memory_bytes alone, and every loader keeps its device allocations in
  /// deterministic order, so a pooled build is byte-identical to a serial
  /// one (see rtree/bulk_loader.h).
  ThreadPool* pool = nullptr;

  /// Number of records of type T that fit in memory (the paper's M).
  template <typename T>
  size_t MemoryRecords() const {
    return memory_bytes / sizeof(T);
  }

  /// Number of blocks that fit in memory (the paper's M/B).
  size_t MemoryBlocks() const {
    return memory_bytes / device->block_size();
  }
};

}  // namespace prtree

#endif  // PRTREE_IO_WORK_ENV_H_
