// Blocked sequential record streams — the library's equivalent of TPIE
// streams (§3.1 [3]).
//
// A Stream<T> is a growable sequence of trivially-copyable records stored in
// whole device blocks.  All bulk-loading algorithms consume and produce
// streams, so their I/O cost is measured by the device counters rather than
// modelled.
//
// Writes go through a WriteStager: full blocks are staged in allocation
// order and drained as WriteBatch() submissions (one io_uring syscall for a
// ring-depth train on the uring backend; a transparent passthrough
// everywhere else).  Flush() — which every read path calls first — drains
// the stager, so the write-then-read discipline callers already follow is
// exactly the drain discipline staging needs, and the device file a stream
// produces is byte-identical to the scalar-write days.

#ifndef PRTREE_IO_STREAM_H_
#define PRTREE_IO_STREAM_H_

#include <cstring>
#include <type_traits>
#include <vector>

#include "io/block_device.h"
#include "io/write_stager.h"
#include "util/check.h"

namespace prtree {

/// \brief A sequence of POD records packed into device blocks.
///
/// The stream owns its blocks and frees them on destruction, so device
/// occupancy accounting (peak_allocated) reflects live data.  Writing is
/// append-only through a one-block buffer; reading is sequential or by
/// explicit record range.
template <typename T>
class Stream {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "stream records must be trivially copyable");

  explicit Stream(BlockDevice* device)
      : device_(device),
        per_block_(device->block_size() / sizeof(T)),
        write_buf_(device->block_size()),
        stager_(device) {
    PRTREE_CHECK(per_block_ >= 1);
  }

  ~Stream() { FreeBlocks(); }

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  Stream(Stream&& o) noexcept
      : device_(o.device_),
        per_block_(o.per_block_),
        pages_(std::move(o.pages_)),
        size_(o.size_),
        buffered_(o.buffered_),
        write_buf_(std::move(o.write_buf_)),
        stager_(std::move(o.stager_)),
        sealed_(o.sealed_) {
    o.pages_.clear();
    o.size_ = 0;
    o.buffered_ = 0;
    o.sealed_ = false;
  }

  Stream& operator=(Stream&& o) noexcept {
    if (this != &o) {
      FreeBlocks();
      device_ = o.device_;
      per_block_ = o.per_block_;
      pages_ = std::move(o.pages_);
      size_ = o.size_;
      buffered_ = o.buffered_;
      write_buf_ = std::move(o.write_buf_);
      stager_ = std::move(o.stager_);
      sealed_ = o.sealed_;
      o.pages_.clear();
      o.size_ = 0;
      o.buffered_ = 0;
      o.sealed_ = false;
    }
    return *this;
  }

  BlockDevice* device() const { return device_; }

  /// Total number of records in the stream (flushed + buffered).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Records per device block.
  size_t records_per_block() const { return per_block_; }

  /// Number of device blocks the stream occupies once flushed.
  size_t num_blocks() const { return (size_ + per_block_ - 1) / per_block_; }

  /// Appends one record, costing a device write every records_per_block()
  /// appends.  Appending after a partial-tail Flush() is a usage error (the
  /// stream's block-contiguous record indexing would break), so streams
  /// follow a write-then-read discipline.
  void Push(const T& value) {
    PRTREE_CHECK(!sealed_);
    std::memcpy(write_buf_.data() + buffered_ * sizeof(T), &value, sizeof(T));
    ++buffered_;
    ++size_;
    if (buffered_ == per_block_) FlushBuffer();
  }

  /// Appends a batch of records.
  void Append(const T* values, size_t n) {
    for (size_t i = 0; i < n; ++i) Push(values[i]);
  }
  void Append(const std::vector<T>& values) {
    Append(values.data(), values.size());
  }

  /// Flushes any partially filled tail block and drains every staged block
  /// to the device.  Idempotent; called automatically by readers — which is
  /// what makes staging invisible: no record is readable before Flush(),
  /// and after Flush() every one of the stream's blocks is on the device.
  /// Flushing a partial tail seals the stream against further appends.
  void Flush() {
    if (buffered_ > 0) {
      if (buffered_ < per_block_) sealed_ = true;
      FlushBuffer();
    }
    stager_.DrainAndRelease();
  }

  /// Reads records [first, first + count) into `out` (resized).  Costs one
  /// device read per distinct block touched.
  void ReadRange(size_t first, size_t count, std::vector<T>* out) {
    Flush();
    PRTREE_CHECK(first + count <= size_);
    out->resize(count);
    if (count == 0) return;
    std::vector<std::byte> buf(device_->block_size());
    size_t out_idx = 0;
    size_t block = first / per_block_;
    size_t offset = first % per_block_;
    while (out_idx < count) {
      AbortIfError(device_->Read(pages_[block], buf.data()));
      size_t take = std::min(per_block_ - offset, count - out_idx);
      std::memcpy(&(*out)[out_idx], buf.data() + offset * sizeof(T),
                  take * sizeof(T));
      out_idx += take;
      ++block;
      offset = 0;
    }
  }

  /// Reads the whole stream into `out`.
  void ReadAll(std::vector<T>* out) { ReadRange(0, size_, out); }

  /// Drops all records and frees the underlying blocks.
  void Clear() {
    FreeBlocks();
    pages_.clear();
    size_ = 0;
    buffered_ = 0;
    sealed_ = false;
  }

  /// \brief Sequential reader over a record range of a stream.
  ///
  /// Holds one block in memory at a time; advancing across a block boundary
  /// costs one device read.
  class Reader {
   public:
    /// Reader over [first, first + count).
    Reader(Stream* stream, size_t first, size_t count)
        : stream_(stream),
          pos_(first),
          end_(first + count),
          buf_(stream->device_->block_size()) {
      stream_->Flush();
      PRTREE_CHECK(end_ <= stream_->size_);
    }

    /// Reader over the whole stream.
    explicit Reader(Stream* stream) : Reader(stream, 0, stream->size()) {}

    bool Done() const { return pos_ >= end_; }

    /// Current record; requires !Done().
    const T& Peek() {
      PRTREE_DCHECK(!Done());
      LoadBlockIfNeeded();
      std::memcpy(&current_, buf_.data() + (pos_ % stream_->per_block_) *
                                               sizeof(T),
                  sizeof(T));
      return current_;
    }

    /// Returns the current record and advances.
    T Next() {
      T v = Peek();
      ++pos_;
      return v;
    }

    size_t position() const { return pos_; }

   private:
    void LoadBlockIfNeeded() {
      size_t block = pos_ / stream_->per_block_;
      if (static_cast<ptrdiff_t>(block) != loaded_block_) {
        AbortIfError(
            stream_->device_->Read(stream_->pages_[block], buf_.data()));
        loaded_block_ = static_cast<ptrdiff_t>(block);
      }
    }

    Stream* stream_;
    size_t pos_;
    size_t end_;
    std::vector<std::byte> buf_;
    ptrdiff_t loaded_block_ = -1;
    T current_;
  };

 private:
  void FlushBuffer() {
    PageId page = device_->Allocate();
    stager_.Stage(page, write_buf_.data());
    pages_.push_back(page);
    buffered_ = 0;
    std::memset(write_buf_.data(), 0, write_buf_.size());
  }

  void FreeBlocks() {
    // Drain first: a staged write landing after Free() would overwrite the
    // free-list stamp — and the write counters must not depend on whether a
    // block happened to still be staged when the stream died.
    stager_.Drain();
    for (PageId p : pages_) device_->Free(p);
  }

  BlockDevice* device_;
  size_t per_block_;
  std::vector<PageId> pages_;
  size_t size_ = 0;
  size_t buffered_ = 0;
  std::vector<std::byte> write_buf_;
  WriteStager stager_;
  bool sealed_ = false;
};

}  // namespace prtree

#endif  // PRTREE_IO_STREAM_H_
