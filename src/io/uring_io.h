// A minimal io_uring submission/completion queue for batched block reads.
//
// io_uring (Linux 5.1+) lets a process hand the kernel a *batch* of I/O
// requests through a pair of shared-memory rings and collect completions
// without one syscall per request.  That is exactly the shape of the
// PR-tree's readahead problem: a traversal knows the next frontier of leaf
// pages before it needs them, and a real disk can serve many 4 KB reads
// concurrently — but only if they are in flight at the same time.  One
// UringQueue turns N block reads into a single io_uring_enter call with all
// N requests queued at once.
//
// The class is deliberately small: reads only (the write path keeps
// pwrite), raw syscalls only (the container has kernel headers but no
// liburing — and the ABI below is stable), fixed queue depth, synchronous
// submit-and-wait-all semantics.  Callers serialise access (UringBlockDevice
// holds a mutex around its queue); the queue itself is not thread-safe.
//
// Availability is a runtime property, not a compile-time one: kernels older
// than 5.1, seccomp profiles (Docker's default once blocked io_uring) and
// sysctl io_uring_disabled all make io_uring_setup fail at run time.
// KernelSupport() probes once per process; Create() reports the precise
// failure.  Callers must treat "no io_uring" as a normal state and fall
// back to pread — UringBlockDevice does exactly that.

#ifndef PRTREE_IO_URING_IO_H_
#define PRTREE_IO_URING_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace prtree {

/// \brief One read of a batch: `len` bytes at file offset `offset` into
/// `buf`.  After SubmitAndWaitReads, `result` holds the byte count on
/// success or -errno on failure (the io_uring CQE convention).
struct UringReadOp {
  uint64_t offset = 0;
  void* buf = nullptr;
  uint32_t len = 0;
  int32_t result = 0;
};

/// \brief A fixed-depth io_uring bound to one file descriptor, submitting
/// batches of reads and waiting for all their completions.
class UringQueue {
 public:
  /// True iff this kernel/process can create an io_uring at all.  Probes
  /// once (io_uring_setup + close) and caches the answer.  Honours the
  /// PRTREE_NO_URING environment variable (any non-empty value forces
  /// false) so CI can exercise the fallback path on io_uring-capable
  /// kernels.
  static bool KernelSupport();

  /// Creates a queue of (at least) `entries` submission slots reading from
  /// `fd`.  Fails with IoError when the kernel refuses (no io_uring,
  /// seccomp, rlimit) — never aborts, so callers can fall back.
  static Status Create(int fd, unsigned entries,
                       std::unique_ptr<UringQueue>* out);

  ~UringQueue();
  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Submission slots actually granted by the kernel (>= the requested
  /// `entries`, rounded up to a power of two).
  unsigned depth() const { return sq_entries_; }

  /// \brief Submits all `n` ops as reads and blocks until every one
  /// completes, chunking internally when `n` exceeds depth().  Per-op
  /// outcomes land in each op's `result`; the return value is non-OK only
  /// for ring-level failures (io_uring_enter itself erroring), in which
  /// case unprocessed ops keep result == INT32_MIN.
  ///
  /// Not thread-safe: the caller serialises (one batch in the ring at a
  /// time).
  Status SubmitAndWaitReads(UringReadOp* ops, size_t n);

 private:
  UringQueue() = default;

  /// Queues ops[0..m) into the (empty) ring and waits for all m
  /// completions.  m <= depth().
  Status RunChunk(UringReadOp* ops, size_t m);

  int ring_fd_ = -1;
  int file_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;

  // Mapped ring memory.  sq_ring_ and cq_ring_ may be one mapping
  // (IORING_FEAT_SINGLE_MMAP); sqes_ is always its own.
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;

  // Pointers into the mapped rings (kernel-shared; accessed with
  // acquire/release atomics).
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_mask_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t* cq_mask_ = nullptr;
  void* cqes_ = nullptr;
};

}  // namespace prtree

#endif  // PRTREE_IO_URING_IO_H_
