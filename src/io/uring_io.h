// A minimal io_uring submission/completion queue for batched block I/O.
//
// io_uring (Linux 5.1+) lets a process hand the kernel a *batch* of I/O
// requests through a pair of shared-memory rings and collect completions
// without one syscall per request.  That is exactly the shape of two
// problems in this library: the PR-tree's readahead (a traversal knows the
// next frontier of leaf pages before it needs them) and bulk-load
// serialization (the external sort and the level packers emit long trains
// of freshly allocated pages).  A real disk can serve many 4 KB transfers
// concurrently — but only if they are in flight at the same time.  One
// UringQueue turns N block reads or writes into a single io_uring_enter
// call with all N requests queued at once.
//
// The class is deliberately small: raw syscalls only (the container has
// kernel headers but no liburing — and the ABI below is stable), fixed
// queue depth, synchronous submit-and-wait-all semantics.  Callers
// serialise access (UringBlockDevice holds a mutex around its queue); the
// queue itself is not thread-safe.
//
// Registered resources.  RegisterFile() and RegisterBuffer() perform the
// one-time IORING_REGISTER_FILES / IORING_REGISTER_BUFFERS handshake so the
// hot path skips the per-op fd lookup and buffer pinning: once registered,
// every sqe uses IOSQE_FIXED_FILE, and ops whose buffer lies inside the
// registered region are submitted as IORING_OP_READ_FIXED /
// IORING_OP_WRITE_FIXED.  Registration is best-effort — a kernel without
// the register syscall, or an exhausted memlock rlimit, just leaves the
// queue on the plain opcodes.
//
// Availability is a runtime property, not a compile-time one: kernels older
// than 5.1, seccomp profiles (Docker's default once blocked io_uring) and
// sysctl io_uring_disabled all make io_uring_setup fail at run time.
// KernelSupport() probes once per process; Create() reports the precise
// failure.  Callers must treat "no io_uring" as a normal state and fall
// back to pread/pwrite — UringBlockDevice does exactly that.

#ifndef PRTREE_IO_URING_IO_H_
#define PRTREE_IO_URING_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace prtree {

/// \brief One transfer of a batch: `len` bytes at file offset `offset`
/// from/into `buf`.  After SubmitAndWaitReads/Writes, `result` holds the
/// byte count on success or -errno on failure (the io_uring CQE
/// convention).
struct UringIoOp {
  uint64_t offset = 0;
  void* buf = nullptr;
  uint32_t len = 0;
  int32_t result = 0;
};

/// Historical name from when the queue was read-only; same struct.
using UringReadOp = UringIoOp;

/// \brief A fixed-depth io_uring bound to one file descriptor, submitting
/// batches of reads or writes and waiting for all their completions.
class UringQueue {
 public:
  /// True iff this kernel/process can create an io_uring at all.  Probes
  /// once (io_uring_setup + close) and caches the answer.  Honours the
  /// PRTREE_NO_URING environment variable (any non-empty value forces
  /// false) so CI can exercise the fallback path on io_uring-capable
  /// kernels.
  static bool KernelSupport();

  /// Creates a queue of (at least) `entries` submission slots transferring
  /// from/to `fd`.  Fails with IoError when the kernel refuses (no
  /// io_uring, seccomp, rlimit) — never aborts, so callers can fall back.
  static Status Create(int fd, unsigned entries,
                       std::unique_ptr<UringQueue>* out);

  ~UringQueue();
  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Submission slots actually granted by the kernel (>= the requested
  /// `entries`, rounded up to a power of two).
  unsigned depth() const { return sq_entries_; }

  /// \brief Submits all `n` ops as reads and blocks until every one
  /// completes, chunking internally when `n` exceeds depth().  Per-op
  /// outcomes land in each op's `result`; the return value is non-OK only
  /// for ring-level failures (io_uring_enter itself erroring), in which
  /// case unprocessed ops keep result == INT32_MIN.
  ///
  /// Not thread-safe: the caller serialises (one batch in the ring at a
  /// time).
  Status SubmitAndWaitReads(UringIoOp* ops, size_t n);

  /// Same contract for writes (IORING_OP_WRITE / IORING_OP_WRITE_FIXED).
  Status SubmitAndWaitWrites(UringIoOp* ops, size_t n);

  /// One-time IORING_REGISTER_FILES of the bound fd.  On success every
  /// subsequent sqe references the fd by fixed-table index (skipping the
  /// per-op fdget).  Fails (without side effects) on kernels lacking the
  /// register syscall.
  Status RegisterFile();

  /// One-time IORING_REGISTER_BUFFERS of [base, base + len): the kernel
  /// pins the region once, and every subsequent op whose buffer lies wholly
  /// inside it is submitted as a FIXED opcode (no per-op pin).  Ops outside
  /// the region keep the plain opcodes — the two kinds mix freely in one
  /// batch.  `len` counts against RLIMIT_MEMLOCK; keep it ring-sized.
  Status RegisterBuffer(void* base, size_t len);

  bool file_registered() const { return file_registered_; }
  bool buffer_registered() const { return reg_base_ != nullptr; }

 private:
  UringQueue() = default;

  Status SubmitAndWait(UringIoOp* ops, size_t n, bool write);

  /// Queues ops[0..m) into the (empty) ring and waits for all m
  /// completions.  m <= depth().
  Status RunChunk(UringIoOp* ops, size_t m, bool write);

  int ring_fd_ = -1;
  int file_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;

  // Registered resources (see RegisterFile/RegisterBuffer).
  bool file_registered_ = false;
  void* reg_base_ = nullptr;
  size_t reg_len_ = 0;

  // Mapped ring memory.  sq_ring_ and cq_ring_ may be one mapping
  // (IORING_FEAT_SINGLE_MMAP); sqes_ is always its own.
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;

  // Pointers into the mapped rings (kernel-shared; accessed with
  // acquire/release atomics).
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_mask_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t* cq_mask_ = nullptr;
  void* cqes_ = nullptr;
};

}  // namespace prtree

#endif  // PRTREE_IO_URING_IO_H_
