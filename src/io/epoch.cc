#include "io/epoch.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace prtree {

void EpochGuard::Release() {
  if (mgr_ != nullptr) {
    mgr_->Exit(epoch_);
    mgr_ = nullptr;
  }
}

EpochManager::EpochManager(BlockDevice* device) : device_(device) {
  PRTREE_CHECK(device_ != nullptr);
}

EpochManager::~EpochManager() {
  std::lock_guard<std::mutex> lock(mu_);
  PRTREE_CHECK(active_.empty());  // a snapshot outlived its structure
  active_.clear();
  DrainLocked();
  PRTREE_CHECK(limbo_.empty());
}

EpochGuard EpochManager::Enter() {
  std::lock_guard<std::mutex> lock(mu_);
  // Readers pin the *current* epoch: any retirement that follows gets a
  // strictly larger stamp, so its pages wait for this guard.
  ++active_[epoch_];
  return EpochGuard(this, epoch_);
}

void EpochManager::Exit(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(epoch);
  PRTREE_CHECK(it != active_.end() && it->second > 0);
  if (--it->second == 0) {
    active_.erase(it);
    // The departing reader may have been the last one pinning old epochs.
    DrainLocked();
  }
}

void EpochManager::Retire(std::vector<PageId> pages) {
  if (pages.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
  limbo_pages_ += pages.size();
  limbo_.push_back(LimboEntry{epoch_, std::move(pages)});
  DrainLocked();
}

void EpochManager::DrainLocked() {
  // A reader entered at epoch e may still traverse pages stamped with any
  // retire epoch > e; an entry is freeable once the oldest active reader
  // is at least as new as its stamp.
  const uint64_t min_active = active_.empty()
                                  ? std::numeric_limits<uint64_t>::max()
                                  : active_.begin()->first;
  while (!limbo_.empty() && limbo_.front().retire_epoch <= min_active) {
    LimboEntry entry = std::move(limbo_.front());
    limbo_.pop_front();
    limbo_pages_ -= entry.pages.size();
    for (PageId page : entry.pages) {
      // Drop cached frames *before* the id can be recycled: a frame kept
      // past Free() could serve pre-retirement bytes for a reallocated id.
      for (BufferPool* pool : pools_) pool->Invalidate(page);
      device_->Free(page);
    }
  }
}

void EpochManager::AttachPool(BufferPool* pool) {
  PRTREE_CHECK(pool != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(pools_.begin(), pools_.end(), pool) == pools_.end()) {
    pools_.push_back(pool);
  }
}

void EpochManager::DetachPool(BufferPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  pools_.erase(std::remove(pools_.begin(), pools_.end(), pool), pools_.end());
}

uint64_t EpochManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t EpochManager::limbo_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limbo_pages_;
}

size_t EpochManager::active_readers() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [epoch, count] : active_) total += count;
  return total;
}

}  // namespace prtree
