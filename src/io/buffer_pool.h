// Sharded, pin-based LRU page cache over any BlockDevice backend.
//
// The paper's query experiments cache all internal R-tree nodes (they occupy
// at most a few MB), so a query's reported I/O count equals the number of
// leaf blocks read (§3.3).  The buffer pool realises that protocol — hits
// are free, misses cost one device read (a memcpy on MemoryBlockDevice, a
// real pread on FileBlockDevice, where a pinned frame genuinely shields a
// disk page) — and serves any number of querying threads at once:
//
//  * the frame table is split into shards, each with its own mutex, so
//    unrelated pages never contend on one lock;
//  * Pin() hands out an RAII PageGuard over the pooled frame itself
//    (zero-copy: the traversal layer wraps a ConstNodeView directly over
//    pool memory instead of memcpy-ing every block into a private buffer);
//  * a frame's refcount keeps it resident: eviction and Invalidate() never
//    free memory a guard still points at.
//
// The pool is a pure read cache: callers that modify pages write to the
// device directly and must Invalidate() the page (bulk loaders build trees
// before any pool exists; the dynamic-update paths invalidate after every
// write-back).

#ifndef PRTREE_IO_BUFFER_POOL_H_
#define PRTREE_IO_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "io/block_device.h"

namespace prtree {

class BufferPool;

namespace internal {

/// One cached page.  `pins` and `detached` are guarded by the owning
/// shard's mutex; `data` is immutable while cached (writers invalidate
/// instead of mutating), so guards read it without holding any lock.
struct PoolFrame {
  PageId page = kInvalidPageId;
  std::unique_ptr<std::byte[]> data;
  int pins = 0;
  bool detached = false;    // invalidated while pinned; freed on last unpin
  bool prefetched = false;  // staged by Prefetch(), not yet pinned
};

/// A slice of the pool: its own lock, LRU list and page table.  std::list
/// nodes have stable addresses, so a pinned PoolFrame never moves even as
/// the list is spliced or other frames are evicted.
struct PoolShard {
  std::mutex mu;
  std::list<PoolFrame> lru;       // cached frames, most-recently-used first
  std::list<PoolFrame> detached;  // invalidated but still pinned
  std::unordered_map<PageId, std::list<PoolFrame>::iterator> map;
  size_t capacity = 0;
  size_t pinned_frames = 0;  // cached (non-detached) frames with pins > 0
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t prefetch_staged = 0;  // frames inserted by Prefetch()
  uint64_t prefetch_useful = 0;  // staged frames later pinned
  // Bumped by every Invalidate()/Clear() of this shard.  Prefetch() plans
  // under the shard lock, reads the device without it, then re-checks the
  // epoch before inserting: a frame staged across an invalidation is
  // dropped rather than resurrecting pre-update bytes.
  uint64_t epoch = 0;
};

}  // namespace internal

/// \brief RAII pin on one page's bytes.
///
/// While a guard is alive its data() pointer stays valid: a pooled frame is
/// unpinnable (evictable / freeable) only when its refcount hits zero.  The
/// bytes are read-only — updates go through the device and Invalidate().
///
/// Guards also carry page copies that never entered the pool (capacity-0
/// pools, pool-less reads, and misses refused caching because every frame
/// was pinned); callers cannot tell the difference and need not care.
///
/// Lifetime rules: a guard must not outlive its BufferPool or the
/// BlockDevice backing the page.  Holding a guard across a call that frees
/// the page on the *device* is fine — the guard's bytes are a pinned copy.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& o) noexcept { MoveFrom(&o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      MoveFrom(&o);
    }
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  /// The page's bytes (block_size of them).  Valid while the guard lives.
  const std::byte* data() const { return data_; }
  PageId page() const { return page_; }
  bool valid() const { return data_ != nullptr; }
  explicit operator bool() const { return valid(); }

  /// Drops the pin early (idempotent).  data() becomes invalid.
  void Release();

 private:
  friend class BufferPool;
  friend Status ReadPage(const BlockDevice& device, PageId page,
                         PageGuard* out);

  PageGuard(BufferPool* pool, internal::PoolShard* shard,
            internal::PoolFrame* frame)
      : pool_(pool),
        shard_(shard),
        frame_(frame),
        data_(frame->data.get()),
        page_(frame->page) {}
  PageGuard(std::unique_ptr<std::byte[]> owned, PageId page, size_t size)
      : owned_(std::move(owned)),
        owned_size_(size),
        data_(owned_.get()),
        page_(page) {}

  void MoveFrom(PageGuard* o) {
    pool_ = o->pool_;
    shard_ = o->shard_;
    frame_ = o->frame_;
    owned_ = std::move(o->owned_);
    owned_size_ = o->owned_size_;
    data_ = o->data_;
    page_ = o->page_;
    o->pool_ = nullptr;
    o->shard_ = nullptr;
    o->frame_ = nullptr;
    o->owned_size_ = 0;
    o->data_ = nullptr;
    o->page_ = kInvalidPageId;
  }

  BufferPool* pool_ = nullptr;             // null for unpooled copies
  internal::PoolShard* shard_ = nullptr;
  internal::PoolFrame* frame_ = nullptr;
  std::unique_ptr<std::byte[]> owned_;     // set for unpooled copies
  size_t owned_size_ = 0;                  // bytes in owned_
  const std::byte* data_ = nullptr;
  PageId page_ = kInvalidPageId;
};

/// \brief Read-through page cache, sharded for concurrent access.
///
/// Thread safety: Pin, Invalidate, Clear and the counter accessors may be
/// called from any number of threads.  The backing device must allow
/// concurrent Read() (BlockDevice does); device mutations still require
/// the caller to quiesce queries, as before.
class BufferPool {
 public:
  /// Default shard count; enough that a handful of query threads rarely
  /// collide on one mutex, small enough that per-shard LRU stays effective.
  static constexpr size_t kDefaultShards = 16;

  /// \param device     backing device (not owned).
  /// \param capacity   maximum number of cached pages across all shards.
  ///                   0 disables caching: every Pin reads from the device
  ///                   into a guard-owned copy (the guard still pins
  ///                   correctly and keeps its bytes valid — the uncached
  ///                   path is a protocol change only, never a lifetime
  ///                   change).
  /// \param num_shards shards to split the capacity over; 0 picks the
  ///                   default.  Clamped to [1, capacity] so every shard
  ///                   can hold at least one frame.  Tests pass 1 for a
  ///                   single deterministic LRU.
  BufferPool(BlockDevice* device, size_t capacity, size_t num_shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief Pins `page` and returns a zero-copy guard over its bytes in
  /// `out`.  A hit costs no device I/O; a miss reads the block once and
  /// may evict the least-recently-used *unpinned* frame of the page's
  /// shard.  If every frame of the shard is pinned, the pool refuses to
  /// evict and serves the caller an unpooled copy instead.
  Status Pin(PageId page, PageGuard* out);

  /// \brief Advisory readahead: stages `pages` into the cache as unpinned
  /// frames so the pins that follow are hits, batching the device reads
  /// (one io_uring submission on UringBlockDevice) instead of paying one
  /// synchronous miss per page at use time.  Returns the number of frames
  /// actually staged.
  ///
  /// Never violates the pin/evict invariants: staging evicts only
  /// *unpinned* LRU frames, skips pages already cached, stages at most
  /// what a shard can actually hold (its capacity minus its pinned
  /// frames — no transfer is issued for a page that provably cannot be
  /// staged; the overflow is forwarded to BlockDevice::PrefetchHint so
  /// the kernel may still read ahead), and a capacity-0 pool stages
  /// nothing.  Racing Pin()s are safe (worst case a page is read twice);
  /// racing Invalidate()/Clear() wins — the stale staged frame is
  /// dropped (see PoolShard::epoch).  Read failures just leave pages
  /// unstaged: a later Pin reports them, so prefetch never turns into an
  /// error path.
  ///
  /// Accounting: the device reads are charged to stats().prefetch_reads,
  /// not stats().reads; staged/useful counts are exposed below
  /// (docs/IO_MODEL.md).
  size_t Prefetch(std::span<const PageId> pages);

  /// Readahead switch for the traversal layer: when enabled, Query/kNN
  /// call Prefetch() on each frontier of enqueued children (one level
  /// ahead).  Off by default — the §3.3 measurement protocol counts demand
  /// misses, and tests rely on the exact miss sequence.
  void set_readahead(bool on) {
    readahead_.store(on, std::memory_order_relaxed);
  }
  bool readahead_enabled() const {
    return readahead_.load(std::memory_order_relaxed);
  }

  /// Drops `page` from the cache (after an in-place update).  If the page
  /// is currently pinned its frame is detached — existing guards keep
  /// reading the pre-update bytes safely; the frame is freed when the last
  /// guard releases — and later Pins re-read the device.
  void Invalidate(PageId page);

  /// Drops every unpinned frame and detaches every pinned one.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return num_shards_; }

  /// Cached (non-detached) frames across all shards.
  size_t size() const;
  /// Frames currently pinned by at least one guard (cached or detached).
  size_t pinned() const;

  uint64_t hits() const;
  uint64_t misses() const;
  /// Frames staged by Prefetch() / staged frames that a Pin() later used.
  /// useful/staged is the readahead accuracy (bench/outofcore_sweep
  /// reports it).
  uint64_t prefetch_staged() const;
  uint64_t prefetch_useful() const;
  void ResetCounters();

 private:
  friend class PageGuard;

  internal::PoolShard& ShardFor(PageId page) {
    return shards_[page % num_shards_];
  }
  void Unpin(internal::PoolShard* shard, internal::PoolFrame* frame);

  BlockDevice* device_;
  size_t capacity_;
  size_t num_shards_;
  std::atomic<bool> readahead_{false};
  std::unique_ptr<internal::PoolShard[]> shards_;
};

/// \brief Pool-less read: fills `out` with a guard owning a private copy of
/// the page.  The traversal layer uses this when no BufferPool is given, so
/// all node access flows through the one PageGuard API.
///
/// When `out` already owns a right-sized buffer (the previous iteration of
/// a traversal loop re-pinning into one hoisted guard), that buffer is
/// reused — pool-less traversals allocate once, not once per node.
Status ReadPage(const BlockDevice& device, PageId page, PageGuard* out);

}  // namespace prtree

#endif  // PRTREE_IO_BUFFER_POOL_H_
