// LRU page cache.
//
// The paper's query experiments cache all internal R-tree nodes (they occupy
// at most a few MB), so a query's reported I/O count equals the number of
// leaf blocks read (§3.3).  The buffer pool realises that protocol: the
// query engine fetches every node through the pool, hits are free, misses
// cost one device read.

#ifndef PRTREE_IO_BUFFER_POOL_H_
#define PRTREE_IO_BUFFER_POOL_H_

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>

#include "io/block_device.h"

namespace prtree {

/// \brief Read-through LRU cache of device blocks.
///
/// The pool is a pure read cache: callers that modify pages write to the
/// device directly and must Invalidate() the page (bulk loaders build trees
/// before any pool exists, so in practice only the dynamic-update path uses
/// Invalidate).
class BufferPool {
 public:
  /// \param device   backing device (not owned).
  /// \param capacity maximum number of cached pages; 0 disables caching
  ///                 entirely (every fetch is a device read).
  BufferPool(BlockDevice* device, size_t capacity);

  /// \brief Reads `page` into `out` (block_size bytes), from cache if
  /// possible.  A miss reads from the device and may evict the
  /// least-recently-used frame.
  Status Fetch(PageId page, void* out);

  /// Drops `page` from the cache (after an in-place update).
  void Invalidate(PageId page);

  /// Drops everything.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const { return frames_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetCounters() { hits_ = misses_ = 0; }

 private:
  struct Frame {
    PageId page;
    std::unique_ptr<std::byte[]> data;
  };

  BlockDevice* device_;
  size_t capacity_;
  // Most-recently-used at front.
  std::list<Frame> lru_;
  std::unordered_map<PageId, std::list<Frame>::iterator> frames_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace prtree

#endif  // PRTREE_IO_BUFFER_POOL_H_
