// External multiway merge sort under a memory budget — the
// O((N/B) log_{M/B} (N/B)) sorting primitive every bulk loader in the paper
// builds on (§1.1).
//
// Run formation loads M bytes of records at a time, sorts them in memory and
// writes sorted runs; merging combines up to M/block_size - 1 runs per pass
// through a tournament (priority queue) until one run remains.
//
// Parallelism: when env.pool is set, each run is sorted with ParallelSort —
// the run boundaries, the merge plan and every device allocation stay on
// the calling thread in the same order as a serial sort, so the output
// stream (and the device's allocation history) is identical for any thread
// count.  The tournament additionally tie-breaks equal records on the run
// index, making the merge stable even for non-total comparators.
//
// Write batching is inherited from Stream<T>: run emission and the merge
// output stage full blocks through a WriteStager and drain them as
// WriteBatch() submissions at each Flush() — on the uring backend a sorted
// run lands in ring-depth batches instead of one pwrite per block, with
// identical bytes, counters and allocation order (io/write_stager.h).

#ifndef PRTREE_IO_EXTERNAL_SORT_H_
#define PRTREE_IO_EXTERNAL_SORT_H_

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "io/stream.h"
#include "io/work_env.h"
#include "util/check.h"
#include "util/parallel.h"

namespace prtree {

/// \brief Sorts `input` into a new stream using at most env.memory_bytes of
/// working memory, counting all block transfers on env.device.
///
/// \tparam T    trivially copyable record type.
/// \tparam Less strict weak ordering over T.  Use a total order (secondary
///         key, e.g. the record id) if the result must not depend on
///         env.pool — see ParallelSort.
template <typename T, typename Less>
Stream<T> ExternalSort(WorkEnv env, Stream<T>* input, Less less) {
  input->Flush();
  const size_t run_records = std::max<size_t>(
      2 * input->records_per_block(), env.memory_bytes / sizeof(T));
  // One input buffer block per run plus one output block must fit in memory.
  const size_t fan_in = std::max<size_t>(
      2, env.memory_bytes / env.device->block_size() - 1);

  // Pass 0: run formation.  The pool accelerates the in-memory sort of
  // each run; reads and run writes stay on this thread, in input order.
  std::vector<Stream<T>> runs;
  {
    typename Stream<T>::Reader reader(input);
    std::vector<T> buf;
    buf.reserve(std::min(run_records, input->size()));
    while (!reader.Done()) {
      buf.clear();
      while (!reader.Done() && buf.size() < run_records) {
        buf.push_back(reader.Next());
      }
      ParallelSort(env.pool, buf.data(), buf.size(), less);
      Stream<T> run(env.device);
      run.Append(buf);
      run.Flush();
      runs.push_back(std::move(run));
    }
  }
  if (runs.empty()) return Stream<T>(env.device);

  // Merge passes.
  while (runs.size() > 1) {
    std::vector<Stream<T>> next;
    for (size_t group = 0; group < runs.size(); group += fan_in) {
      size_t end = std::min(runs.size(), group + fan_in);
      if (end - group == 1) {
        next.push_back(std::move(runs[group]));
        continue;
      }
      // Tournament over the group's readers.
      std::vector<std::unique_ptr<typename Stream<T>::Reader>> readers;
      for (size_t r = group; r < end; ++r) {
        readers.push_back(
            std::make_unique<typename Stream<T>::Reader>(&runs[r]));
      }
      auto heap_greater = [&](size_t a, size_t b) {
        // std::priority_queue is a max-heap; invert to pop the least
        // record.  Equal records pop lowest-run-first (a stable merge), so
        // the pass is deterministic even for non-total comparators.
        const T& ra = readers[a]->Peek();
        const T& rb = readers[b]->Peek();
        if (less(rb, ra)) return true;
        if (less(ra, rb)) return false;
        return a > b;
      };
      std::priority_queue<size_t, std::vector<size_t>,
                          decltype(heap_greater)>
          heap(heap_greater);
      for (size_t i = 0; i < readers.size(); ++i) {
        if (!readers[i]->Done()) heap.push(i);
      }
      Stream<T> merged(env.device);
      while (!heap.empty()) {
        size_t i = heap.top();
        heap.pop();
        merged.Push(readers[i]->Next());
        if (!readers[i]->Done()) heap.push(i);
      }
      merged.Flush();
      next.push_back(std::move(merged));
    }
    // Free the consumed runs before the next pass.
    for (auto& r : runs) r.Clear();
    runs = std::move(next);
  }
  return std::move(runs.front());
}

/// Sorts a vector-backed dataset through the external sorter; convenience
/// entry point for loaders whose input is already materialised.
template <typename T, typename Less>
Stream<T> ExternalSortVector(WorkEnv env, const std::vector<T>& data,
                             Less less) {
  Stream<T> in(env.device);
  in.Append(data);
  in.Flush();
  Stream<T> sorted = ExternalSort(env, &in, less);
  return sorted;
}

}  // namespace prtree

#endif  // PRTREE_IO_EXTERNAL_SORT_H_
