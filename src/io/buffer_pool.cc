#include "io/buffer_pool.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace prtree {

using internal::PoolFrame;
using internal::PoolShard;

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(shard_, frame_);
    pool_ = nullptr;
    shard_ = nullptr;
    frame_ = nullptr;
  }
  owned_.reset();
  owned_size_ = 0;
  data_ = nullptr;
  page_ = kInvalidPageId;
}

BufferPool::BufferPool(BlockDevice* device, size_t capacity,
                       size_t num_shards)
    : device_(device), capacity_(capacity) {
  PRTREE_CHECK(device_ != nullptr);
  if (num_shards == 0) num_shards = kDefaultShards;
  num_shards_ = std::clamp<size_t>(num_shards, 1, std::max<size_t>(capacity, 1));
  shards_ = std::make_unique<PoolShard[]>(num_shards_);
  // Split the capacity as evenly as possible; the first capacity %
  // num_shards shards take the remainder.
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].capacity =
        capacity_ / num_shards_ + (i < capacity_ % num_shards_ ? 1 : 0);
  }
}

BufferPool::~BufferPool() {
  // Guards must not outlive the pool.
  PRTREE_CHECK(pinned() == 0);
}

Status BufferPool::Pin(PageId page, PageGuard* out) {
  PoolShard& shard = ShardFor(page);
  // The new pin is built into a local and only assigned to *out after the
  // shard lock is dropped: assigning earlier would run the caller's old
  // guard's Release() -> Unpin() under the lock, self-deadlocking whenever
  // a reused guard pins two pages of the same shard back to back.
  PageGuard result;
  {
    std::lock_guard<std::mutex> lock(shard.mu);

    auto it = shard.map.find(page);
    if (it != shard.map.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      PoolFrame& frame = *it->second;
      if (frame.prefetched) {
        frame.prefetched = false;
        ++shard.prefetch_useful;
      }
      if (frame.pins++ == 0) ++shard.pinned_frames;
      result = PageGuard(this, &shard, &frame);
    } else {
      ++shard.misses;
      // The device read happens under the shard lock, which guarantees a
      // page is read at most once however many threads miss on it
      // simultaneously.  On the memory backend a read is one memcpy; on
      // the file backend it is a pread, so concurrent misses on *other*
      // shards still proceed — only same-shard misses queue behind it.
      auto data = std::make_unique<std::byte[]>(device_->block_size());
      PRTREE_RETURN_NOT_OK(device_->Read(page, data.get()));

      bool cache = true;
      if (shard.capacity == 0 || shard.lru.size() >= shard.capacity) {
        // Evict the least-recently-used unpinned frame.  Pinned frames are
        // never evicted; if everything is pinned (or the shard has no
        // capacity), refuse to cache and hand the caller its own copy.
        bool evicted = false;
        for (auto rit = shard.lru.rbegin(); rit != shard.lru.rend(); ++rit) {
          if (rit->pins == 0) {
            shard.map.erase(rit->page);
            shard.lru.erase(std::next(rit).base());
            evicted = true;
            break;
          }
        }
        cache = evicted;
      }
      if (cache) {
        shard.lru.emplace_front();
        PoolFrame& frame = shard.lru.front();
        frame.page = page;
        frame.data = std::move(data);
        frame.pins = 1;
        ++shard.pinned_frames;
        shard.map[page] = shard.lru.begin();
        result = PageGuard(this, &shard, &frame);
      } else {
        result = PageGuard(std::move(data), page, device_->block_size());
      }
    }
  }
  *out = std::move(result);
  return Status::OK();
}

void BufferPool::Unpin(PoolShard* shard, PoolFrame* frame) {
  std::lock_guard<std::mutex> lock(shard->mu);
  PRTREE_CHECK(frame->pins > 0);
  // Detached frames left pinned_frames when they left the LRU.
  if (--frame->pins == 0 && !frame->detached) --shard->pinned_frames;
  if (frame->pins > 0 || !frame->detached) return;
  // Last pin on an invalidated frame: free it now.
  for (auto it = shard->detached.begin(); it != shard->detached.end(); ++it) {
    if (&*it == frame) {
      shard->detached.erase(it);
      return;
    }
  }
  PRTREE_CHECK(false);  // a detached frame must be on the detached list
}

size_t BufferPool::Prefetch(std::span<const PageId> pages) {
  if (pages.empty() || capacity_ == 0) return 0;
  const size_t block = device_->block_size();

  // Group the candidates by shard, deduplicating, so each shard lock is
  // taken once per phase however many pages the frontier holds.
  std::vector<std::vector<PageId>> by_shard(num_shards_);
  {
    std::unordered_set<PageId> seen;
    seen.reserve(pages.size());
    for (PageId p : pages) {
      if (seen.insert(p).second) by_shard[p % num_shards_].push_back(p);
    }
  }

  // Plan under each shard's lock: pages not already cached, at most what
  // the shard can actually hold right now (capacity minus pinned frames —
  // a transfer for a page with provably nowhere to go is pure waste),
  // remembering the epoch for the insert-time re-check.  The overflow is
  // not read but still hinted to the device, so the kernel page cache can
  // read ahead on its own.
  struct ShardPlan {
    size_t shard = 0;
    uint64_t epoch = 0;
    std::vector<size_t> req_index;  // indexes into reqs/bufs
  };
  std::vector<BlockReadRequest> reqs;
  std::vector<std::unique_ptr<std::byte[]>> bufs;
  std::vector<ShardPlan> plans;
  std::vector<PageId> hint_only;
  for (size_t s = 0; s < num_shards_; ++s) {
    if (by_shard[s].empty()) continue;
    PoolShard& shard = shards_[s];
    ShardPlan sp;
    sp.shard = s;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      sp.epoch = shard.epoch;
      size_t stageable = shard.capacity - shard.pinned_frames;
      for (PageId p : by_shard[s]) {
        if (shard.map.count(p) != 0) continue;  // already cached
        if (sp.req_index.size() >= stageable) {
          hint_only.push_back(p);
          continue;
        }
        sp.req_index.push_back(reqs.size());
        bufs.push_back(std::make_unique<std::byte[]>(block));
        BlockReadRequest req;
        req.page = p;
        req.buf = bufs.back().get();
        reqs.push_back(std::move(req));
      }
    }
    if (!sp.req_index.empty()) plans.push_back(std::move(sp));
  }
  if (!hint_only.empty()) {
    device_->PrefetchHint(hint_only.data(), hint_only.size());
  }
  if (reqs.empty()) return 0;

  // One batched, prefetch-charged device read for everything missing.  The
  // shard locks are NOT held here: this is the long pole (a real pread or
  // io_uring submission on the file backends), and Pin()s must keep
  // flowing meanwhile.  Failed requests simply stay unstaged — a later
  // demand Pin reports the error.
  device_->ReadBatch(reqs.data(), reqs.size(), ReadKind::kPrefetch);

  size_t staged_total = 0;
  for (const ShardPlan& sp : plans) {
    PoolShard& shard = shards_[sp.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.epoch != sp.epoch) {
      // An Invalidate()/Clear() ran since planning; the bytes just read
      // may predate the update that prompted it.  Drop this shard's stage
      // rather than resurrect stale data.
      continue;
    }
    for (size_t ri : sp.req_index) {
      BlockReadRequest& req = reqs[ri];
      if (!req.status.ok()) continue;
      if (shard.map.count(req.page) != 0) continue;  // a Pin raced us in
      if (shard.lru.size() >= shard.capacity) {
        // Same rule as a miss: evict the LRU *unpinned* frame or give up.
        bool evicted = false;
        for (auto rit = shard.lru.rbegin(); rit != shard.lru.rend(); ++rit) {
          if (rit->pins == 0) {
            shard.map.erase(rit->page);
            shard.lru.erase(std::next(rit).base());
            evicted = true;
            break;
          }
        }
        if (!evicted) continue;
      }
      shard.lru.emplace_front();
      PoolFrame& frame = shard.lru.front();
      frame.page = req.page;
      frame.data = std::move(bufs[ri]);
      frame.pins = 0;
      frame.prefetched = true;
      shard.map[req.page] = shard.lru.begin();
      ++shard.prefetch_staged;
      ++staged_total;
    }
  }
  return staged_total;
}

void BufferPool::Invalidate(PageId page) {
  PoolShard& shard = ShardFor(page);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Unconditional (even when the page is not cached): an in-flight
  // Prefetch may have read this page before the caller's device write, and
  // only the epoch stops it from staging those stale bytes.
  ++shard.epoch;
  auto it = shard.map.find(page);
  if (it == shard.map.end()) return;
  auto frame_it = it->second;
  shard.map.erase(it);
  if (frame_it->pins == 0) {
    shard.lru.erase(frame_it);
  } else {
    // Keep the bytes alive for the guards still reading them; the frame
    // dies on the last Unpin.
    frame_it->detached = true;
    --shard.pinned_frames;  // leaving the LRU while pinned
    shard.detached.splice(shard.detached.begin(), shard.lru, frame_it);
  }
}

void BufferPool::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    PoolShard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.epoch;  // invalidate in-flight prefetches, as in Invalidate()
    shard.map.clear();
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->pins == 0) {
        it = shard.lru.erase(it);
      } else {
        it->detached = true;
        --shard.pinned_frames;  // leaving the LRU while pinned
        auto next = std::next(it);
        shard.detached.splice(shard.detached.begin(), shard.lru, it);
        it = next;
      }
    }
  }
}

size_t BufferPool::size() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].lru.size();
  }
  return total;
}

size_t BufferPool::pinned() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    PoolShard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const PoolFrame& f : shard.lru) total += f.pins > 0 ? 1 : 0;
    total += shard.detached.size();
  }
  return total;
}

uint64_t BufferPool::hits() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].hits;
  }
  return total;
}

uint64_t BufferPool::misses() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].misses;
  }
  return total;
}

uint64_t BufferPool::prefetch_staged() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].prefetch_staged;
  }
  return total;
}

uint64_t BufferPool::prefetch_useful() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].prefetch_useful;
  }
  return total;
}

void BufferPool::ResetCounters() {
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].hits = 0;
    shards_[i].misses = 0;
    shards_[i].prefetch_staged = 0;
    shards_[i].prefetch_useful = 0;
  }
}

Status ReadPage(const BlockDevice& device, PageId page, PageGuard* out) {
  const size_t size = device.block_size();
  std::unique_ptr<std::byte[]> data;
  if (out->pool_ == nullptr && out->owned_ != nullptr &&
      out->owned_size_ == size) {
    data = std::move(out->owned_);
  } else {
    data = std::make_unique<std::byte[]>(size);
  }
  // Reset before the read so a failure leaves `out` empty rather than
  // pointing at a buffer that was just stolen from it.
  out->Release();
  PRTREE_RETURN_NOT_OK(device.Read(page, data.get()));
  *out = PageGuard(std::move(data), page, size);
  return Status::OK();
}

}  // namespace prtree
