#include "io/buffer_pool.h"

#include <cstring>

#include "util/check.h"

namespace prtree {

BufferPool::BufferPool(BlockDevice* device, size_t capacity)
    : device_(device), capacity_(capacity) {
  PRTREE_CHECK(device_ != nullptr);
}

Status BufferPool::Fetch(PageId page, void* out) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    std::memcpy(out, it->second->data.get(), device_->block_size());
    return Status::OK();
  }
  ++misses_;
  PRTREE_RETURN_NOT_OK(device_->Read(page, out));
  if (capacity_ == 0) return Status::OK();
  if (lru_.size() >= capacity_) {
    frames_.erase(lru_.back().page);
    lru_.pop_back();
  }
  Frame frame;
  frame.page = page;
  frame.data = std::make_unique<std::byte[]>(device_->block_size());
  std::memcpy(frame.data.get(), out, device_->block_size());
  lru_.push_front(std::move(frame));
  frames_[page] = lru_.begin();
  return Status::OK();
}

void BufferPool::Invalidate(PageId page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return;
  lru_.erase(it->second);
  frames_.erase(it);
}

void BufferPool::Clear() {
  lru_.clear();
  frames_.clear();
}

}  // namespace prtree
