#include "io/buffer_pool.h"

#include <algorithm>

#include "util/check.h"

namespace prtree {

using internal::PoolFrame;
using internal::PoolShard;

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(shard_, frame_);
    pool_ = nullptr;
    shard_ = nullptr;
    frame_ = nullptr;
  }
  owned_.reset();
  owned_size_ = 0;
  data_ = nullptr;
  page_ = kInvalidPageId;
}

BufferPool::BufferPool(BlockDevice* device, size_t capacity,
                       size_t num_shards)
    : device_(device), capacity_(capacity) {
  PRTREE_CHECK(device_ != nullptr);
  if (num_shards == 0) num_shards = kDefaultShards;
  num_shards_ = std::clamp<size_t>(num_shards, 1, std::max<size_t>(capacity, 1));
  shards_ = std::make_unique<PoolShard[]>(num_shards_);
  // Split the capacity as evenly as possible; the first capacity %
  // num_shards shards take the remainder.
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].capacity =
        capacity_ / num_shards_ + (i < capacity_ % num_shards_ ? 1 : 0);
  }
}

BufferPool::~BufferPool() {
  // Guards must not outlive the pool.
  PRTREE_CHECK(pinned() == 0);
}

Status BufferPool::Pin(PageId page, PageGuard* out) {
  PoolShard& shard = ShardFor(page);
  // The new pin is built into a local and only assigned to *out after the
  // shard lock is dropped: assigning earlier would run the caller's old
  // guard's Release() -> Unpin() under the lock, self-deadlocking whenever
  // a reused guard pins two pages of the same shard back to back.
  PageGuard result;
  {
    std::lock_guard<std::mutex> lock(shard.mu);

    auto it = shard.map.find(page);
    if (it != shard.map.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      PoolFrame& frame = *it->second;
      ++frame.pins;
      result = PageGuard(this, &shard, &frame);
    } else {
      ++shard.misses;
      // The device read happens under the shard lock, which guarantees a
      // page is read at most once however many threads miss on it
      // simultaneously.  On the memory backend a read is one memcpy; on
      // the file backend it is a pread, so concurrent misses on *other*
      // shards still proceed — only same-shard misses queue behind it.
      auto data = std::make_unique<std::byte[]>(device_->block_size());
      PRTREE_RETURN_NOT_OK(device_->Read(page, data.get()));

      bool cache = true;
      if (shard.capacity == 0 || shard.lru.size() >= shard.capacity) {
        // Evict the least-recently-used unpinned frame.  Pinned frames are
        // never evicted; if everything is pinned (or the shard has no
        // capacity), refuse to cache and hand the caller its own copy.
        bool evicted = false;
        for (auto rit = shard.lru.rbegin(); rit != shard.lru.rend(); ++rit) {
          if (rit->pins == 0) {
            shard.map.erase(rit->page);
            shard.lru.erase(std::next(rit).base());
            evicted = true;
            break;
          }
        }
        cache = evicted;
      }
      if (cache) {
        shard.lru.emplace_front();
        PoolFrame& frame = shard.lru.front();
        frame.page = page;
        frame.data = std::move(data);
        frame.pins = 1;
        shard.map[page] = shard.lru.begin();
        result = PageGuard(this, &shard, &frame);
      } else {
        result = PageGuard(std::move(data), page, device_->block_size());
      }
    }
  }
  *out = std::move(result);
  return Status::OK();
}

void BufferPool::Unpin(PoolShard* shard, PoolFrame* frame) {
  std::lock_guard<std::mutex> lock(shard->mu);
  PRTREE_CHECK(frame->pins > 0);
  if (--frame->pins > 0 || !frame->detached) return;
  // Last pin on an invalidated frame: free it now.
  for (auto it = shard->detached.begin(); it != shard->detached.end(); ++it) {
    if (&*it == frame) {
      shard->detached.erase(it);
      return;
    }
  }
  PRTREE_CHECK(false);  // a detached frame must be on the detached list
}

void BufferPool::Invalidate(PageId page) {
  PoolShard& shard = ShardFor(page);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(page);
  if (it == shard.map.end()) return;
  auto frame_it = it->second;
  shard.map.erase(it);
  if (frame_it->pins == 0) {
    shard.lru.erase(frame_it);
  } else {
    // Keep the bytes alive for the guards still reading them; the frame
    // dies on the last Unpin.
    frame_it->detached = true;
    shard.detached.splice(shard.detached.begin(), shard.lru, frame_it);
  }
}

void BufferPool::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    PoolShard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->pins == 0) {
        it = shard.lru.erase(it);
      } else {
        it->detached = true;
        auto next = std::next(it);
        shard.detached.splice(shard.detached.begin(), shard.lru, it);
        it = next;
      }
    }
  }
}

size_t BufferPool::size() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].lru.size();
  }
  return total;
}

size_t BufferPool::pinned() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    PoolShard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const PoolFrame& f : shard.lru) total += f.pins > 0 ? 1 : 0;
    total += shard.detached.size();
  }
  return total;
}

uint64_t BufferPool::hits() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].hits;
  }
  return total;
}

uint64_t BufferPool::misses() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].misses;
  }
  return total;
}

void BufferPool::ResetCounters() {
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].hits = 0;
    shards_[i].misses = 0;
  }
}

Status ReadPage(const BlockDevice& device, PageId page, PageGuard* out) {
  const size_t size = device.block_size();
  std::unique_ptr<std::byte[]> data;
  if (out->pool_ == nullptr && out->owned_ != nullptr &&
      out->owned_size_ == size) {
    data = std::move(out->owned_);
  } else {
    data = std::make_unique<std::byte[]>(size);
  }
  // Reset before the read so a failure leaves `out` empty rather than
  // pointing at a buffer that was just stolen from it.
  out->Release();
  PRTREE_RETURN_NOT_OK(device.Read(page, data.get()));
  *out = PageGuard(std::move(data), page, size);
  return Status::OK();
}

}  // namespace prtree
