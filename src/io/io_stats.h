// Block I/O accounting.
//
// Every experiment in the paper reports block reads/writes (§3.1, §3.3);
// these counters are the measured quantity behind Figures 9-14 and Table 1.

#ifndef PRTREE_IO_IO_STATS_H_
#define PRTREE_IO_IO_STATS_H_

#include <cstdint>
#include <string>

namespace prtree {

/// \brief Running totals of block-level I/O against a BlockDevice.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;

  uint64_t Total() const { return reads + writes; }

  IoStats operator-(const IoStats& o) const {
    return IoStats{reads - o.reads, writes - o.writes};
  }
  IoStats& operator+=(const IoStats& o) {
    reads += o.reads;
    writes += o.writes;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace prtree

#endif  // PRTREE_IO_IO_STATS_H_
