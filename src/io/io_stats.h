// Block I/O accounting.
//
// Every experiment in the paper reports block reads/writes (§3.1, §3.3);
// these counters are the measured quantity behind Figures 9-14 and Table 1.
// Queries may run from many threads at once (the concurrent query engine),
// so the live counters are atomics; IoStats itself stays a plain value type
// used for snapshots and arithmetic.

#ifndef PRTREE_IO_IO_STATS_H_
#define PRTREE_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace prtree {

/// \brief A snapshot of block-level I/O totals against a BlockDevice.
///
/// `reads` and `writes` count demand transfers — the paper's I/O metric.
/// `prefetch_reads` counts speculative transfers issued by the readahead
/// path (BufferPool::Prefetch / ReadBatch with ReadKind::kPrefetch): they
/// move real blocks but are charged separately so the demand counters keep
/// their exact §3.3 meaning whether readahead is on or off
/// (docs/IO_MODEL.md).
///
/// `write_batches` is a pure audit counter: the number of WriteBatch()
/// submissions.  Every block a batch carries is already charged to `writes`
/// (batched writes ARE demand writes — same bytes, same count, fewer
/// syscalls), so the batch count is excluded from both Total() and
/// TotalTransfers(); it exists so benches can verify that the write stager
/// actually coalesced (docs/IO_MODEL.md#write-accounting).
///
/// `meta_reads`/`meta_writes` count metadata-class transfers issued through
/// ReadMeta()/WriteMeta() — the update journal's frames and recovery scans.
/// Like the backends' own superblock/free-list traffic they are never part
/// of the §3.3 demand metric (Total() excludes them), but unlike that
/// traffic they are client-visible, so they get their own counters and the
/// demand numbers stay byte-identical with journaling on or off
/// (docs/DURABILITY.md).
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t prefetch_reads = 0;
  uint64_t write_batches = 0;
  uint64_t meta_reads = 0;
  uint64_t meta_writes = 0;

  /// Demand transfers only (the paper's metric).
  uint64_t Total() const { return reads + writes; }
  /// Every block the device moved, speculative reads and metadata-class
  /// transfers included.  Batch submissions are not transfers, so
  /// write_batches stays out of this too.
  uint64_t TotalTransfers() const {
    return reads + writes + prefetch_reads + meta_reads + meta_writes;
  }

  IoStats operator-(const IoStats& o) const {
    return IoStats{reads - o.reads,
                   writes - o.writes,
                   prefetch_reads - o.prefetch_reads,
                   write_batches - o.write_batches,
                   meta_reads - o.meta_reads,
                   meta_writes - o.meta_writes};
  }
  IoStats& operator+=(const IoStats& o) {
    reads += o.reads;
    writes += o.writes;
    prefetch_reads += o.prefetch_reads;
    write_batches += o.write_batches;
    meta_reads += o.meta_reads;
    meta_writes += o.meta_writes;
    return *this;
  }

  std::string ToString() const;
};

/// \brief The live counters behind IoStats: lock-free, safe to bump from
/// any number of threads.
///
/// Relaxed ordering is deliberate: the counters are statistics, not
/// synchronisation — each increment must be lost-update-free, but no other
/// memory operation is ordered against them.  Snapshot() loads each counter
/// atomically, so a snapshot taken mid-run never sees a torn or rolled-back
/// value (reads and writes are each individually exact as of their load).
class AtomicIoStats {
 public:
  void CountRead() { reads_.fetch_add(1, std::memory_order_relaxed); }
  void CountWrite() { writes_.fetch_add(1, std::memory_order_relaxed); }
  void CountPrefetchRead() {
    prefetch_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountWriteBatch() {
    write_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountMetaRead() { meta_reads_.fetch_add(1, std::memory_order_relaxed); }
  void CountMetaWrite() {
    meta_writes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Coherent point-in-time copy of the counters.
  IoStats Snapshot() const {
    return IoStats{reads_.load(std::memory_order_relaxed),
                   writes_.load(std::memory_order_relaxed),
                   prefetch_reads_.load(std::memory_order_relaxed),
                   write_batches_.load(std::memory_order_relaxed),
                   meta_reads_.load(std::memory_order_relaxed),
                   meta_writes_.load(std::memory_order_relaxed)};
  }

  /// Zeroes the counters.  Unlike the old `stats_ = IoStats{}` reset this
  /// cannot tear against a concurrent increment: each store is atomic.
  void Reset() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    prefetch_reads_.store(0, std::memory_order_relaxed);
    write_batches_.store(0, std::memory_order_relaxed);
    meta_reads_.store(0, std::memory_order_relaxed);
    meta_writes_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> prefetch_reads_{0};
  std::atomic<uint64_t> write_batches_{0};
  std::atomic<uint64_t> meta_reads_{0};
  std::atomic<uint64_t> meta_writes_{0};
};

}  // namespace prtree

#endif  // PRTREE_IO_IO_STATS_H_
