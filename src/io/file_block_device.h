// The file-backed block device: pages mapped onto a single on-disk file.
//
// Layout.  File offset 0 holds the superblock (one block); device page p
// lives at offset (p + 1) * block_size.  The superblock records the block
// size, the allocation counters, the head of the free list and a small
// application-metadata region (rtree/persist.h stores the tree root there,
// so an index file is self-describing and reopenable).  The free list is
// threaded through the freed pages themselves — each freed page's first
// eight bytes hold a stamp {kFreePageMagic, next} — so it persists whole
// regardless of length while the superblock stays a single page.
//
// Durability.  Data pages hit the file on every Write() (pwrite); metadata
// (superblock) is written out by Sync(), which then fsync()s the file, and
// best-effort on clean close when it changed.  There is no write-ahead
// log, so crash recovery is bounded, not perfect: Open() restores the
// allocation metadata recorded by the most recent superblock write.
// Allocate/Free traffic after that write can leave the recorded free-list
// chain partially unwalkable (stamps destroyed by reuse, the chain
// shortened or extended) — Open() detects every such state and
// conservatively treats whatever it cannot walk as allocated (a bounded
// space leak, never reuse of a page that might hold data).  A page
// *freed* after the last Sync has had its as-of-Sync
// contents destroyed by the stamp; callers that need a consistent
// reopenable image must Sync() after mutating (PersistTree does).  A
// damaged superblock (bad magic/version/bounds, broken chain topology)
// fails Open() with Corruption, and a failed Open() never writes to the
// file.
//
// I/O accounting.  Only client Read()/Write() calls count toward stats();
// internal metadata traffic (superblock write-out, free-list stamps,
// zeroing of reused pages) is never charged.  A build or query therefore
// reports exactly the same I/O numbers on this backend as on
// MemoryBlockDevice — wall-clock time is where the backends differ, which
// is why file-backed bench runs report both (docs/IO_MODEL.md).
//
// O_DIRECT.  FileDeviceOptions::direct_io requests kernel-page-cache bypass
// where the platform supports it (block size must be a multiple of 512;
// transfers go through a sector-aligned bounce buffer).  When the open with
// O_DIRECT fails, the device silently falls back to buffered I/O —
// direct_io() reports what was actually negotiated.
//
// Thread safety matches the BlockDevice contract: Read()/Write() run
// concurrently (liveness check under a shared lock, then a plain
// pread/pwrite); Allocate()/Free()/Sync() take the lock exclusively.

#ifndef PRTREE_IO_FILE_BLOCK_DEVICE_H_
#define PRTREE_IO_FILE_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "io/block_device.h"
#include "util/status.h"

namespace prtree {

/// How to open the backing file.
struct FileDeviceOptions {
  /// 0 (default): a freshly created file uses kDefaultBlockSize and an
  /// existing file's superblock size is accepted as-is.  Non-zero: a fresh
  /// file uses this size, and opening an existing file whose superblock
  /// disagrees fails with InvalidArgument.
  size_t block_size = 0;

  /// True: wipe any existing content and start an empty device.
  /// False: open the existing file (it must have a valid superblock);
  /// create an empty device only if the file does not exist.
  bool truncate = false;

  /// True: fail with NotFound instead of creating a missing file.  Set
  /// this on read paths (reopening an index) so a mistyped path does not
  /// leave a stray empty device behind.
  bool must_exist = false;

  /// Request O_DIRECT (page-cache bypass).  Best effort: silently degrades
  /// to buffered I/O when unsupported; check direct_io() for the outcome.
  bool direct_io = false;
};

/// \brief Block device backed by one on-disk file.  See the file comment
/// for layout, durability and accounting semantics.
///
/// Not final: UringBlockDevice (io/uring_block_device.h) shares the whole
/// on-disk format and scalar I/O path and only replaces the ReadBatch()
/// engine.  A file written by one opens under the other.
class FileBlockDevice : public BlockDevice {
 public:
  /// Bytes available to SetUserMeta (fits the superblock with room to
  /// spare at the minimum block size).
  static constexpr size_t kUserMetaCapacity = 128;

  /// Smallest supported block size: the superblock header plus the full
  /// user-metadata region must fit in one block.
  static constexpr size_t kMinBlockSize = 256;

  /// Opens (or creates, per `opts`) the device at `path`.
  static Status Open(const std::string& path, const FileDeviceOptions& opts,
                     std::unique_ptr<FileBlockDevice>* out);

  /// Closes the file, writing the superblock out first when metadata
  /// changed since the last write (best effort, no fsync — call Sync()
  /// when durability matters).  A device whose Open() failed, or that was
  /// only read, never rewrites the file on close.
  ~FileBlockDevice() override;

  /// BlockDevice interface.  Note Allocate()/Free() have no error channel,
  /// so an unrecoverable backend failure there (e.g. the filesystem runs
  /// out of space mid-ftruncate) aborts, exactly as memory exhaustion
  /// does on MemoryBlockDevice; fallible paths (Open/Read/Write/Sync)
  /// report Status instead.
  PageId Allocate() override;
  void Free(PageId page) override;
  size_t num_allocated() const override;
  size_t peak_allocated() const override;
  size_t num_pages() const override;
  bool IsAllocated(PageId page) const override;

  /// Forwards the readahead hint to the kernel page cache
  /// (posix_fadvise WILLNEED).  A no-op under O_DIRECT, where there is no
  /// page cache to warm.
  void PrefetchHint(const PageId* pages, size_t n) const override;

  /// Writes the superblock and fsync()s the file.  After an OK Sync the
  /// device state (pages, free list, counters, user metadata) survives a
  /// crash and is recovered by Open.
  Status Sync() override;

  const std::string& path() const { return path_; }

  /// Whether O_DIRECT is actually in effect (request may have degraded).
  bool direct_io() const { return direct_io_; }

  /// Stores up to kUserMetaCapacity opaque bytes in the superblock
  /// (persisted by the next Sync or clean close).
  Status SetUserMeta(const void* data, size_t len);

  /// Copies the stored metadata into `buf` (capacity `cap`) and returns
  /// its full length; 0 when none was ever set.
  size_t GetUserMeta(void* buf, size_t cap) const;

  /// Crash-recovery aid (rtree/journaled_tree.h).  Pages created after the
  /// last superblock write extended the file but are unknown to a reopened
  /// device — and a journaled update's committed shadow pages can be among
  /// them.  This adopts every page the file's extent covers into the page
  /// space as allocated, so recovery can read them; the recovery
  /// reachability sweep then frees the ones nothing references.  Returns
  /// how many pages were adopted.
  size_t AdoptOrphanPages();

 protected:
  FileBlockDevice(size_t block_size, std::string path, int fd,
                  bool direct_io);

  /// The shared Open() flow, reused by subclasses (UringBlockDevice):
  /// OpenBackingFile() opens/creates the file, validates the superblock
  /// header and settles the block size; FinishOpen() then initialises the
  /// constructed device (fresh superblock or load), negotiates O_DIRECT
  /// and marks the open successful.
  struct OpenedFile {
    int fd = -1;
    size_t block_size = 0;
    bool fresh = false;
  };
  static Status OpenBackingFile(const std::string& path,
                                const FileDeviceOptions& opts,
                                OpenedFile* out);
  Status FinishOpen(const FileDeviceOptions& opts, bool fresh);

  /// Scalar file I/O, shared with subclasses.
  int fd() const { return fd_; }

  /// Per-request liveness screen for a batched read or write, one lock
  /// acquisition for the whole batch: requests whose page is unallocated
  /// get an IoError status; the survivors' statuses are left untouched.
  /// Returns the number of surviving requests.
  size_t ScreenBatchLiveness(BlockReadRequest* reqs, size_t n) const;
  size_t ScreenBatchLiveness(BlockWriteRequest* reqs, size_t n) const;

  /// BlockDevice backend hooks (liveness check + pread/pwrite).
  Status DoRead(PageId page, void* buf) const override;
  Status DoWrite(PageId page, const void* buf) override;

  /// Raw full-block file I/O at byte offset `off`, bouncing through an
  /// aligned buffer under O_DIRECT.  Never touches the I/O counters.
  Status PReadBlock(uint64_t off, void* buf) const;
  Status PWriteBlock(uint64_t off, const void* buf);

  uint64_t PageOffset(PageId page) const {
    return (static_cast<uint64_t>(page) + 1) * block_size();
  }

 private:
  /// Initialises an empty device (fresh superblock) or loads an existing
  /// one from the superblock + free chain.
  Status InitFresh();
  Status LoadExisting();

  /// Enables O_DIRECT iff a probe transfer through it succeeds (alignment
  /// rules are enforced at I/O time, not at open time).  Called by Open()
  /// after initialisation, before the device is published.
  void NegotiateDirectIo();

  /// Serialises the current metadata into the superblock page.  Caller
  /// holds mu_ exclusively (or is single-threaded, as in Open/dtor).
  Status WriteSuperblockLocked();

  const std::string path_;
  const int fd_;
  bool direct_io_;  // settled by NegotiateDirectIo() before publication

  mutable std::shared_mutex mu_;      // guards all fields below
  std::vector<uint8_t> live_;         // liveness per page ever created
  std::vector<PageId> free_list_;     // LIFO; back() == on-disk chain head
  size_t num_pages_ = 0;              // pages ever created (monotonic)
  size_t file_pages_ = 0;             // pages the file's extent covers
  size_t allocated_ = 0;
  size_t peak_allocated_ = 0;
  std::vector<std::byte> user_meta_;  // <= kUserMetaCapacity bytes
  std::vector<std::byte> scratch_;    // zero/stamp block for Allocate/Free
  bool init_ok_ = false;              // Open() completed successfully
  bool meta_dirty_ = false;           // metadata changed since last write-out
};

}  // namespace prtree

#endif  // PRTREE_IO_FILE_BLOCK_DEVICE_H_
