// The crash-consistent update journal: a write-ahead log of logical update
// records layered over the batched write path.
//
// Why the updaters need one.  The dynamic updaters mutate node pages in
// place (or shadow them under copy-on-write) and only the occasional
// PersistTree/Sync makes the device file reopenable; a crash between Syncs
// loses the tree root and can leave half an update's pages on disk.  The
// journal closes that window: every Insert/Delete logs a logical record
// frame (plus an advisory intent frame naming the pages it shadowed out)
// followed by a commit frame carrying the new root, and the block write
// that lands the commit frame is the atomic commit point.  Recovery reads
// the journal at open, restores the root of the newest durable commit and
// discards (logically truncates) any torn tail of frames whose commit
// never landed.
//
// The COW contract.  The journal does NOT replay page images — it relies
// on the updater running in copy-on-write mode (rtree/update_io.h with a
// journal attached), so no page any committed root can reach is ever
// overwritten; pages a committed version stopped referencing are retired
// into the journal's deferred-free list and only returned to the device
// free list at the next checkpoint.  A committed root therefore stays
// byte-intact on the device until a newer commit supersedes it, and
// recovery is just "point the tree at the last committed root" plus a
// reachability sweep that reclaims every allocated page the recovered tree
// (and the journal region itself) does not reach.
//
// On-device layout.  The journal lives in a preallocated REGION: one head
// page listing the region's frame pages, all allocated — and the head page
// written — BEFORE the checkpoint's superblock Sync, so a crash-reopened
// device (whose superblock predates everything after that Sync) can always
// read every journal page.  A 32-byte anchor in the superblock user-meta
// region (offset kJournalAnchorOffset, after the tree meta record) names
// the head page, the journal epoch and the starting sequence number.
// Frame pages are append-only: a page is rewritten as frames accrete, but
// committed bytes never change, so a torn rewrite can only damage the
// newest (uncommitted) frames — which CRC32 checks and the contiguous
// sequence numbers detect, ending the scan exactly at the torn tail.
//
// Accounting.  Journal I/O is backend-internal metadata, never part of the
// paper's §3.3 demand metric: every journal write goes through the
// WriteKind::kMeta channel (WriteMeta / a kMeta WriteStager draining into
// WriteBatch) and every recovery read through ReadMeta, charged to
// stats().meta_writes / meta_reads.  Demand counters — and therefore every
// reported experiment number — are byte-identical with journaling on or
// off (docs/DURABILITY.md, asserted by tests/crash_recovery_test.cc).

#ifndef PRTREE_IO_JOURNAL_H_
#define PRTREE_IO_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "io/file_block_device.h"
#include "io/write_stager.h"
#include "util/status.h"

namespace prtree {

/// CRC-32 (IEEE 802.3 polynomial) over `len` bytes — the checksum guarding
/// every journal frame, the region header and the anchor.
uint32_t JournalCrc32(const void* data, size_t len);

/// \brief What a journal frame logs.  kInsert/kDelete carry one logical
/// record (dimension in the frame's aux field), kIntent the advisory list
/// of pages the op shadowed out, kCommit the op's resulting tree root.
enum class JournalFrameType : uint32_t {
  kInsert = 1,
  kDelete = 2,
  kIntent = 3,
  kCommit = 4,
};

/// \brief Journal shape knobs.
struct JournalOptions {
  /// Frame pages per region (the head page is extra).  A region holds
  /// roughly region_pages * block_size / ~120 committed ops between
  /// checkpoints; JournalWriter::NeedsCheckpoint() reports when it runs
  /// low.  Must fit the head page: region_pages <= (block_size - 32) / 4.
  uint32_t region_pages = 64;

  /// At most this many shadowed-out page ids are logged per op's intent
  /// frame (also clamped to what fits one frame page).  Intents are
  /// advisory — recovery's reachability sweep reclaims leaked pages whether
  /// or not they were logged — so overflow drops ids, never fails the op.
  uint32_t max_intents = 64;

  /// Call device->Sync() after every commit write.  Off by default: the
  /// crash model this journal is tested under (process kill / dropped
  /// writes) preserves acknowledged block writes, and a per-op fsync would
  /// dominate update cost.  Turn on when the threat model is power loss
  /// with a volatile disk cache.
  bool sync_on_commit = false;
};

namespace journal_internal {

inline constexpr uint32_t kAnchorMagic = 0x50524A41u;  // "PRJA"
inline constexpr uint32_t kRegionMagic = 0x50524A52u;  // "PRJR"
inline constexpr uint32_t kPageMagic = 0x50524A4Cu;    // "PRJL"
inline constexpr uint32_t kJournalVersion = 1;

/// Region head page prefix, followed by page_count PageIds (the frame
/// pages, in order).  crc covers the header (crc field zeroed) plus the
/// page-id list.
struct RegionHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t epoch;
  uint32_t page_count;
  uint64_t start_seq;
  uint32_t reserved;
  uint32_t crc;
};
static_assert(sizeof(RegionHeader) == 32);

/// Frame-page prefix: identifies the page as frame `index` of the region
/// written in `epoch`.  A freshly allocated (zeroed) page fails the magic
/// check, which is how the scan knows the journal ends before it.
struct PageHeader {
  uint32_t magic;
  uint32_t epoch;
  uint32_t index;
  uint32_t reserved;
};
static_assert(sizeof(PageHeader) == 16);

/// One frame: this header then `len - sizeof(FrameHeader)` payload bytes
/// (8-byte padded).  len == 0 marks the end of a page's frames; frames
/// never span pages.  crc covers bytes [4, len) of the frame — everything
/// but the crc field itself, padding included.
struct FrameHeader {
  uint32_t crc;
  uint32_t len;
  uint64_t seq;
  uint32_t type;  // JournalFrameType
  uint32_t aux;   // record dimension / intent page count / 0
};
static_assert(sizeof(FrameHeader) == 24);

/// kCommit payload: the tree state the op produced.
struct CommitPayload {
  uint32_t root;
  int32_t height;
  uint64_t size;
};
static_assert(sizeof(CommitPayload) == 16);

/// kInsert/kDelete payload prefix: dim lo doubles, dim hi doubles, then
/// this tail.  dim travels in the frame's aux field.
struct RecordTail {
  uint32_t id;
  uint32_t pad;
};

}  // namespace journal_internal

/// Where the anchor sits in the superblock user-meta region: the tree meta
/// record owns bytes [0, 64), the anchor [64, 96).  Both land inside the
/// superblock's first sector, whose write this format assumes atomic.
inline constexpr size_t kJournalAnchorOffset = 64;
inline constexpr size_t kJournalUserMetaLen =
    kJournalAnchorOffset + 32;  // tree meta + anchor
static_assert(kJournalUserMetaLen <= FileBlockDevice::kUserMetaCapacity);

/// \brief The 32-byte superblock record pointing at the live journal
/// region.  crc covers the first 28 bytes (every field before it).
struct JournalAnchor {
  uint32_t magic;
  uint32_t version;
  uint32_t epoch;
  uint32_t head_page;
  uint64_t start_seq;
  uint32_t reserved;
  uint32_t crc;
};
static_assert(sizeof(JournalAnchor) == 32);

/// \brief One committed logical record recovered from a scan.  `payload`
/// is the raw (padded) frame payload; DecodeJournalRecord() extracts the
/// rectangle and id.
struct JournalOpRecord {
  JournalFrameType type;  // kInsert or kDelete
  uint32_t aux;           // record dimension
  uint64_t seq;
  std::vector<std::byte> payload;
};

/// Extracts a `dim`-dimensional record from a kInsert/kDelete frame.
/// False when the payload is malformed (wrong dimension or short).
bool DecodeJournalRecord(const JournalOpRecord& op, uint32_t dim, double* lo,
                         double* hi, uint32_t* id);

/// \brief Everything a journal scan learns: the durable commit to recover
/// to, the committed record stream, and how much torn tail was discarded.
struct JournalScan {
  uint32_t epoch = 0;
  uint64_t start_seq = 0;
  uint64_t next_seq = 0;       // one past the last valid frame
  std::vector<PageId> region;  // head page first, then the frame pages

  std::vector<JournalOpRecord> committed;  // committed records, in order
  std::vector<PageId> intents;             // pages named by committed intents
  size_t committed_ops = 0;                // commit frames seen
  size_t truncated_frames = 0;  // valid frames after the last commit

  bool has_commit = false;  // any commit frame at all this epoch?
  uint32_t commit_root = 0xFFFFFFFFu;  // kInvalidPageId
  int32_t commit_height = 0;
  uint64_t commit_size = 0;
  uint64_t commit_seq = 0;
};

/// Reads the journal anchor out of `device`'s user-meta region.
/// *present == false (with OK status) when the device has no anchor — no
/// journal was ever attached, or a plain PersistTree overwrote it.  A
/// present anchor with a bad version or checksum is Corruption.
Status ReadJournalAnchor(const FileBlockDevice& device, JournalAnchor* anchor,
                         bool* present);

/// Scans the region `anchor` points at.  The scan stops at the first
/// invalid frame (bad magic, epoch, checksum, length or non-contiguous
/// sequence number) — everything after a torn write fails one of those
/// checks — and reports the newest durable commit plus the committed
/// record stream in *out.  Never writes.
Status ScanJournal(const BlockDevice& device, const JournalAnchor& anchor,
                   JournalScan* out);

/// Cheap emptiness probe: *pending == true iff any frame page of the
/// region has been written since its checkpoint (i.e. ops happened that a
/// plain AttachTree would not know how to recover).
Status JournalPending(const BlockDevice& device, const JournalAnchor& anchor,
                      bool* pending);

/// \brief Writer half: stages an op's frames, appends them with a commit
/// frame at CommitOp() (the durable point), rotates regions at
/// Checkpoint().  Not thread-safe — callers serialise ops, exactly as the
/// single-writer updaters already do.
class JournalWriter {
 public:
  /// Composes the tree-meta bytes stored before the anchor at checkpoint
  /// time (at most kJournalAnchorOffset of them; returns the length).
  /// `epoch` is the new journal epoch and `allocated`/`peak_allocated`
  /// the device counters as they will read once the checkpoint's deferred
  /// frees complete — record these, not live counters, or AttachTree's
  /// staleness check will reject a cleanly closed file.
  using MetaBuilder = std::function<size_t(
      void* buf, size_t cap, uint32_t epoch, uint64_t allocated,
      uint64_t peak_allocated)>;

  explicit JournalWriter(FileBlockDevice* device,
                         const JournalOptions& opts = JournalOptions{});

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// True once a region exists (after Checkpoint or AdoptRecovered).
  bool attached() const { return !region_.empty(); }

  uint32_t epoch() const { return epoch_; }
  uint64_t next_seq() const { return next_seq_; }
  uint64_t committed_ops() const { return committed_ops_; }
  size_t journal_pages() const { return region_.size(); }
  size_t deferred_frees() const { return deferred_.size(); }
  const JournalOptions& options() const { return opts_; }

  /// The frame page the next commit appends to, and the committed bytes
  /// already on it — tests tear exactly at this boundary.
  PageId tail_page() const;
  size_t tail_bytes() const { return tail_used_; }

  /// Stages one logical record frame for the op in flight.  Buffered in
  /// memory only; nothing reaches the device before CommitOp().
  void StageRecord(JournalFrameType type, uint32_t dim, const double* lo,
                   const double* hi, uint32_t id);

  /// Drops the staged frames — the op mutated nothing (delete miss) or
  /// failed before its first page write.
  void AbortOp() { staged_.clear(); }

  /// Appends the staged frames, an intent frame naming `retired` (when
  /// non-empty), and a commit frame carrying the op's resulting tree
  /// state, then flushes every touched frame page through the kMeta write
  /// stager.  The flush of the page holding the commit frame is the commit
  /// point.  `retired`'s pages move into the deferred-free list (returned
  /// to the device at the next Checkpoint); the vector is left empty.
  Status CommitOp(PageId root, int32_t height, uint64_t size,
                  std::vector<PageId>* retired);

  /// True when the region is too full to guarantee the next op commits
  /// without running out of frame pages — checkpoint before the next op.
  bool NeedsCheckpoint() const;

  /// Region rotation: allocates and writes a fresh region, durably swaps
  /// the superblock to it (tree meta from `build_meta` + new anchor, one
  /// SetUserMeta + Sync), then frees the old region and every deferred
  /// page.  A crash between the Sync and the frees is the journal's one
  /// bounded-leak window; the next recovery's sweep reclaims it
  /// (docs/DURABILITY.md).  Also the bootstrap: the first Checkpoint on a
  /// fresh writer creates epoch `epoch()+1`'s region from nothing.
  Status Checkpoint(const MetaBuilder& build_meta);

  /// Adopts the state a recovery scan found, so the next Checkpoint
  /// rotates away from (and frees) the scanned region.  The writer is not
  /// appendable until that Checkpoint — NeedsCheckpoint() reports true.
  void AdoptRecovered(const JournalScan& scan);

 private:
  /// Appends one frame to the tail buffer, spilling to the next frame
  /// page when it does not fit; touched pages are staged through stager_.
  Status AppendFrame(JournalFrameType type, uint32_t aux,
                     const void* payload, size_t payload_len);

  void ResetTailBuf();

  FileBlockDevice* device_;
  JournalOptions opts_;
  WriteStager stager_;  // kMeta: journal traffic never moves demand counters

  uint32_t epoch_ = 0;
  uint64_t next_seq_ = 1;  // monotone across epochs, never reset
  uint64_t committed_ops_ = 0;

  std::vector<PageId> region_;  // [0] head, [1..] frame pages; empty =
                                // detached (pre-bootstrap)
  size_t tail_idx_ = 0;         // index into region_ of the tail frame page
  std::vector<std::byte> tail_buf_;  // tail page image (header + frames)
  size_t tail_used_ = 0;             // bytes of tail_buf_ in use
  bool tail_dirty_ = false;          // tail has frames not yet staged

  struct PendingFrame {
    JournalFrameType type;
    uint32_t aux;
    std::vector<std::byte> payload;
  };
  std::vector<PendingFrame> staged_;  // the op in flight's record frames

  std::vector<PageId> deferred_;  // committed-away pages, freed at checkpoint
};

}  // namespace prtree

#endif  // PRTREE_IO_JOURNAL_H_
