#include "io/uring_block_device.h"

#include <cstdlib>
#include <cstring>
#include <vector>

namespace prtree {

namespace {

// Aligned scratch for O_DIRECT batches: io_uring enforces the same
// sector-alignment rules as pread under O_DIRECT, so direct-mode batches
// bounce through one aligned region sized for the whole chunk.
struct FreeDeleter {
  void operator()(void* p) const { std::free(p); }
};

using AlignedBuffer = std::unique_ptr<std::byte, FreeDeleter>;

AlignedBuffer AllocAligned(size_t bytes) {
  // aligned_alloc requires the size to be a multiple of the alignment.
  size_t rounded = (bytes + 511) / 512 * 512;
  return AlignedBuffer(
      static_cast<std::byte*>(std::aligned_alloc(512, rounded)));
}

}  // namespace

Status UringBlockDevice::Open(const std::string& path,
                              const UringDeviceOptions& opts,
                              std::unique_ptr<UringBlockDevice>* out) {
  out->reset();
  OpenedFile file;
  PRTREE_RETURN_NOT_OK(OpenBackingFile(path, opts.file, &file));
  std::unique_ptr<UringBlockDevice> dev(
      new UringBlockDevice(file.block_size, path, file.fd));
  PRTREE_RETURN_NOT_OK(dev->FinishOpen(opts.file, file.fresh));

  if (!opts.force_fallback && UringQueue::KernelSupport()) {
    std::unique_ptr<UringQueue> ring;
    if (UringQueue::Create(dev->fd(), opts.ring_entries, &ring).ok()) {
      // Settle with a probe transfer — the superblock, read through the
      // ring — before trusting it: setup success alone does not prove the
      // read opcode works here (old kernels, O_DIRECT alignment).  Same
      // idiom as NegotiateDirectIo().
      AlignedBuffer probe = AllocAligned(dev->block_size());
      if (probe != nullptr) {
        UringReadOp op;
        op.offset = 0;
        op.buf = probe.get();
        op.len = static_cast<uint32_t>(dev->block_size());
        if (ring->SubmitAndWaitReads(&op, 1).ok() &&
            op.result == static_cast<int32_t>(dev->block_size())) {
          dev->ring_ = std::move(ring);
        }
      }
    }
  }
  *out = std::move(dev);
  return Status::OK();
}

Status UringBlockDevice::ReadBatch(BlockReadRequest* reqs, size_t n,
                                   ReadKind kind) const {
  // A 0/1-request batch gains nothing from the ring; and without a ring the
  // inherited loop IS the transparent pread fallback.
  if (ring_ == nullptr || n < 2) {
    return BlockDevice::ReadBatch(reqs, n, kind);
  }

  const size_t block = block_size();
  for (size_t i = 0; i < n; ++i) reqs[i].status = Status::OK();
  ScreenBatchLiveness(reqs, n);
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].status.ok() && HasReadFault(reqs[i].page)) {
      reqs[i].status = Status::IoError("injected read fault on page " +
                                       std::to_string(reqs[i].page));
    }
  }

  std::vector<size_t> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].status.ok()) pending.push_back(i);
  }

  if (!pending.empty()) {
    AlignedBuffer bounce;
    if (direct_io()) {
      bounce = AllocAligned(pending.size() * block);
    }
    std::vector<UringReadOp> ops(pending.size());
    for (size_t k = 0; k < pending.size(); ++k) {
      ops[k].offset = PageOffset(reqs[pending[k]].page);
      ops[k].buf = (direct_io() && bounce != nullptr)
                       ? bounce.get() + k * block
                       : reqs[pending[k]].buf;
      ops[k].len = static_cast<uint32_t>(block);
    }

    Status ring_status;
    {
      std::lock_guard<std::mutex> lock(ring_mu_);
      ring_status = ring_->SubmitAndWaitReads(ops.data(), ops.size());
    }

    for (size_t k = 0; k < pending.size(); ++k) {
      BlockReadRequest& req = reqs[pending[k]];
      if (ring_status.ok() &&
          ops[k].result == static_cast<int32_t>(block)) {
        if (ops[k].buf != req.buf) {
          std::memcpy(req.buf, ops[k].buf, block);
        }
        req.status = Status::OK();
      } else {
        // Per-request retry through the scalar path: a short read, an
        // opcode the kernel lacks (-EINVAL) or a ring-level failure must
        // never fail harder than the same Read() call would.
        req.status = DoRead(req.page, req.buf);
      }
      if (req.status.ok()) CountBatchedRead(kind);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!reqs[i].status.ok()) return reqs[i].status;
  }
  return Status::OK();
}

Status OpenFileBackedDevice(const std::string& kind, const std::string& path,
                            const FileDeviceOptions& opts,
                            std::unique_ptr<BlockDevice>* out) {
  out->reset();
  if (kind == "uring") {
    UringDeviceOptions uopts;
    uopts.file = opts;
    std::unique_ptr<UringBlockDevice> dev;
    PRTREE_RETURN_NOT_OK(UringBlockDevice::Open(path, uopts, &dev));
    *out = std::move(dev);
    return Status::OK();
  }
  if (kind == "file") {
    std::unique_ptr<FileBlockDevice> dev;
    PRTREE_RETURN_NOT_OK(FileBlockDevice::Open(path, opts, &dev));
    *out = std::move(dev);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown file-backed device kind '" + kind +
                                 "' (file|uring)");
}

}  // namespace prtree
