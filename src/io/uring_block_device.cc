#include "io/uring_block_device.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace prtree {

namespace {

// Aligned scratch: the transfer arena (and the O_DIRECT bounce) is
// page-aligned so its block-sized slots satisfy both the FIXED-buffer
// registration and the sector-alignment rules pread/pwrite enforce under
// O_DIRECT.
struct FreeDeleter {
  void operator()(void* p) const { std::free(p); }
};

using AlignedBuffer = std::unique_ptr<std::byte, FreeDeleter>;

AlignedBuffer AllocAligned(size_t bytes) {
  // aligned_alloc requires the size to be a multiple of the alignment.
  size_t rounded = (bytes + 4095) / 4096 * 4096;
  return AlignedBuffer(
      static_cast<std::byte*>(std::aligned_alloc(4096, rounded)));
}

}  // namespace

Status UringBlockDevice::Open(const std::string& path,
                              const UringDeviceOptions& opts,
                              std::unique_ptr<UringBlockDevice>* out) {
  out->reset();
  OpenedFile file;
  PRTREE_RETURN_NOT_OK(OpenBackingFile(path, opts.file, &file));
  std::unique_ptr<UringBlockDevice> dev(
      new UringBlockDevice(file.block_size, path, file.fd));
  PRTREE_RETURN_NOT_OK(dev->FinishOpen(opts.file, file.fresh));
  dev->write_batch_hint_ = std::max(1u, opts.ring_entries);

  if (!opts.force_fallback && UringQueue::KernelSupport()) {
    std::unique_ptr<UringQueue> ring;
    if (UringQueue::Create(dev->fd(), opts.ring_entries, &ring).ok()) {
      const size_t block = dev->block_size();
      const size_t slots = ring->depth();
      AlignedBuffer arena = AllocAligned(slots * block);
      bool registered = false;
      if (arena != nullptr && !opts.force_unregistered) {
        // One-time registration: the fd into the fixed-file table, the
        // arena into the fixed-buffer table.  Best effort — either syscall
        // failing (old kernel, RLIMIT_MEMLOCK) keeps the plain opcodes.
        registered = ring->RegisterFile().ok() &&
                     ring->RegisterBuffer(arena.get(), slots * block).ok();
      }
      // Settle with a probe transfer — the superblock, read through the
      // ring and through whatever registration was negotiated — before
      // trusting it: setup success alone does not prove the chosen opcode
      // works here (old kernels, O_DIRECT alignment).  Same idiom as
      // NegotiateDirectIo().  The probe lands in arena slot 0, so a
      // registered ring is probed through the FIXED path it will serve
      // batches with.
      if (arena != nullptr) {
        UringIoOp op;
        op.offset = 0;
        op.buf = arena.get();
        op.len = static_cast<uint32_t>(block);
        if (ring->SubmitAndWaitReads(&op, 1).ok() &&
            op.result == static_cast<int32_t>(block)) {
          dev->ring_ = std::move(ring);
          dev->arena_ = Arena(arena.release());
          dev->arena_slots_ = slots;
          dev->registered_ = registered;
        }
      }
    }
  }
  *out = std::move(dev);
  return Status::OK();
}

Status UringBlockDevice::ReadBatch(BlockReadRequest* reqs, size_t n,
                                   ReadKind kind) const {
  // A 0/1-request batch gains nothing from the ring; and without a ring the
  // inherited loop IS the transparent pread fallback.
  if (ring_ == nullptr || n < 2) {
    return BlockDevice::ReadBatch(reqs, n, kind);
  }

  const size_t block = block_size();
  for (size_t i = 0; i < n; ++i) reqs[i].status = Status::OK();
  ScreenBatchLiveness(reqs, n);
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].status.ok() && HasReadFault(reqs[i].page)) {
      reqs[i].status = Status::IoError("injected read fault on page " +
                                       std::to_string(reqs[i].page));
    }
  }

  std::vector<size_t> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].status.ok()) pending.push_back(i);
  }

  if (!pending.empty()) {
    // Registered mode (and O_DIRECT) bounces through the arena, chunked at
    // its slot count, so every submission takes the FIXED opcodes; the
    // unregistered buffered path reads straight into caller memory.
    const bool via_arena = registered_ || direct_io();
    const size_t chunk =
        via_arena ? std::min(pending.size(), arena_slots_) : pending.size();
    std::vector<UringIoOp> ops(chunk);
    for (size_t base = 0; base < pending.size(); base += chunk) {
      const size_t m = std::min(chunk, pending.size() - base);
      // The arena is shared between concurrent batches, so arena chunks
      // hold the ring mutex across the whole fill/submit/copy-out; the
      // direct-into-caller path only needs it around the submission.
      std::unique_lock<std::mutex> arena_lock;
      if (via_arena) arena_lock = std::unique_lock<std::mutex>(ring_mu_);
      for (size_t k = 0; k < m; ++k) {
        BlockReadRequest& req = reqs[pending[base + k]];
        ops[k].offset = PageOffset(req.page);
        ops[k].buf = via_arena ? arena_.get() + k * block : req.buf;
        ops[k].len = static_cast<uint32_t>(block);
      }

      Status ring_status;
      if (via_arena) {
        ring_status = ring_->SubmitAndWaitReads(ops.data(), m);
      } else {
        std::lock_guard<std::mutex> lock(ring_mu_);
        ring_status = ring_->SubmitAndWaitReads(ops.data(), m);
      }

      for (size_t k = 0; k < m; ++k) {
        BlockReadRequest& req = reqs[pending[base + k]];
        if (ring_status.ok() &&
            ops[k].result == static_cast<int32_t>(block)) {
          if (ops[k].buf != req.buf) {
            std::memcpy(req.buf, ops[k].buf, block);
          }
          req.status = Status::OK();
        } else {
          // Per-request retry through the scalar path: a short read, an
          // opcode the kernel lacks (-EINVAL) or a ring-level failure must
          // never fail harder than the same Read() call would.
          req.status = DoRead(req.page, req.buf);
        }
        if (req.status.ok()) CountBatchedRead(kind);
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!reqs[i].status.ok()) return reqs[i].status;
  }
  return Status::OK();
}

Status UringBlockDevice::DoWriteBatch(BlockWriteRequest* reqs, size_t n,
                                      WriteKind kind) {
  // Mirror of ReadBatch: same screens, same chunking, same per-request
  // scalar retry — a batch never fails harder than the same Write() calls.
  // Armed write injections (torn writes, the crash switch) need the
  // ordered scalar loop to be deterministic.
  if (ring_ == nullptr || arena_ == nullptr || n < 2 ||
      WriteInjectionArmed()) {
    return BlockDevice::DoWriteBatch(reqs, n, kind);
  }

  const size_t block = block_size();
  for (size_t i = 0; i < n; ++i) reqs[i].status = Status::OK();
  ScreenBatchLiveness(reqs, n);
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].status.ok() && HasWriteFault(reqs[i].page)) {
      reqs[i].status = Status::IoError("injected write fault on page " +
                                       std::to_string(reqs[i].page));
    }
  }

  std::vector<size_t> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].status.ok()) pending.push_back(i);
  }

  if (!pending.empty()) {
    // Writes always bounce through the arena: the slots are what is
    // registered (FIXED opcodes), and caller buffers need not satisfy
    // O_DIRECT alignment.
    const size_t chunk = std::min(pending.size(), arena_slots_);
    std::vector<UringIoOp> ops(chunk);
    for (size_t base = 0; base < pending.size(); base += chunk) {
      const size_t m = std::min(chunk, pending.size() - base);
      // Arena chunks hold the ring mutex across fill + submit (the arena is
      // shared with concurrent batches).
      std::lock_guard<std::mutex> lock(ring_mu_);
      for (size_t k = 0; k < m; ++k) {
        BlockWriteRequest& req = reqs[pending[base + k]];
        std::byte* slot = arena_.get() + k * block;
        std::memcpy(slot, req.buf, block);
        ops[k].offset = PageOffset(req.page);
        ops[k].buf = slot;
        ops[k].len = static_cast<uint32_t>(block);
      }

      Status ring_status = ring_->SubmitAndWaitWrites(ops.data(), m);

      for (size_t k = 0; k < m; ++k) {
        BlockWriteRequest& req = reqs[pending[base + k]];
        if (ring_status.ok() &&
            ops[k].result == static_cast<int32_t>(block)) {
          req.status = Status::OK();
          // The ring path bypasses PWriteBlock, where attempts are
          // normally ticked; the scalar retry below ticks its own.
          CountWriteAttempt();
        } else {
          req.status = DoWrite(req.page, req.buf);
        }
        if (req.status.ok()) CountBatchedWrite(kind);
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!reqs[i].status.ok()) return reqs[i].status;
  }
  return Status::OK();
}

Status OpenFileBackedDevice(const std::string& kind, const std::string& path,
                            const FileDeviceOptions& opts,
                            std::unique_ptr<BlockDevice>* out) {
  out->reset();
  if (kind == "uring") {
    UringDeviceOptions uopts;
    uopts.file = opts;
    std::unique_ptr<UringBlockDevice> dev;
    PRTREE_RETURN_NOT_OK(UringBlockDevice::Open(path, uopts, &dev));
    *out = std::move(dev);
    return Status::OK();
  }
  if (kind == "file") {
    std::unique_ptr<FileBlockDevice> dev;
    PRTREE_RETURN_NOT_OK(FileBlockDevice::Open(path, opts, &dev));
    *out = std::move(dev);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown file-backed device kind '" + kind +
                                 "' (file|uring)");
}

}  // namespace prtree
