#include "io/io_stats.h"

namespace prtree {

std::string IoStats::ToString() const {
  return "reads=" + std::to_string(reads) +
         " writes=" + std::to_string(writes) +
         " total=" + std::to_string(Total());
}

}  // namespace prtree
