#include "io/io_stats.h"

namespace prtree {

std::string IoStats::ToString() const {
  std::string s = "reads=" + std::to_string(reads) +
                  " writes=" + std::to_string(writes) +
                  " total=" + std::to_string(Total());
  if (prefetch_reads != 0) {
    s += " prefetch_reads=" + std::to_string(prefetch_reads);
  }
  return s;
}

}  // namespace prtree
