#include "io/io_stats.h"

namespace prtree {

std::string IoStats::ToString() const {
  std::string s = "reads=" + std::to_string(reads) +
                  " writes=" + std::to_string(writes) +
                  " total=" + std::to_string(Total());
  if (prefetch_reads != 0) {
    s += " prefetch_reads=" + std::to_string(prefetch_reads);
  }
  if (write_batches != 0) {
    s += " write_batches=" + std::to_string(write_batches);
  }
  if (meta_reads != 0) {
    s += " meta_reads=" + std::to_string(meta_reads);
  }
  if (meta_writes != 0) {
    s += " meta_writes=" + std::to_string(meta_writes);
  }
  return s;
}

}  // namespace prtree
