#include "io/file_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace prtree {

namespace {

inline constexpr uint32_t kSuperblockMagic = 0x50524244u;  // "PRBD"
inline constexpr uint32_t kSuperblockVersion = 1;
inline constexpr uint32_t kFreePageMagic = 0x46524545u;  // "FREE"

// On-disk superblock header, followed by user_meta_len opaque bytes.
// Fixed-width fields, written and read on the same host (the device file is
// not a portable interchange format; snapshots in rtree/persist.h are).
struct SuperblockHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t block_size;
  uint64_t num_pages;
  uint64_t allocated;
  uint64_t peak_allocated;
  uint32_t free_head;
  uint32_t free_count;
  uint32_t user_meta_len;
  uint32_t reserved;
};
static_assert(sizeof(SuperblockHeader) == 56);
static_assert(sizeof(SuperblockHeader) + FileBlockDevice::kUserMetaCapacity <=
              FileBlockDevice::kMinBlockSize);

// First bytes of a freed page while it sits on the free list.
struct FreePageStamp {
  uint32_t magic;
  uint32_t next;  // PageId of the next free page, kInvalidPageId at the end
};

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

struct FreeDeleter {
  void operator()(void* p) const { std::free(p); }
};

// Sector-aligned buffer for O_DIRECT transfers.  `size` must be a multiple
// of 512 (guaranteed: direct mode requires block_size % 512 == 0).
std::unique_ptr<std::byte, FreeDeleter> AllocAligned(size_t size) {
  void* p = std::aligned_alloc(512, size);
  PRTREE_CHECK(p != nullptr);
  return std::unique_ptr<std::byte, FreeDeleter>(static_cast<std::byte*>(p));
}

// Reusable per-thread bounce buffer: direct-mode Read/Write run on the hot
// path, so they must not pay an aligned_alloc/free round-trip per block.
std::byte* ThreadAlignedScratch(size_t size) {
  thread_local std::unique_ptr<std::byte, FreeDeleter> buf;
  thread_local size_t cap = 0;
  if (cap < size) {
    buf = AllocAligned(size);
    cap = size;
  }
  return buf.get();
}

}  // namespace

Status FileBlockDevice::Open(const std::string& path,
                             const FileDeviceOptions& opts,
                             std::unique_ptr<FileBlockDevice>* out) {
  out->reset();
  OpenedFile file;
  PRTREE_RETURN_NOT_OK(OpenBackingFile(path, opts, &file));
  std::unique_ptr<FileBlockDevice> dev(new FileBlockDevice(
      file.block_size, path, file.fd, /*direct_io=*/false));
  PRTREE_RETURN_NOT_OK(dev->FinishOpen(opts, file.fresh));
  *out = std::move(dev);
  return Status::OK();
}

Status FileBlockDevice::OpenBackingFile(const std::string& path,
                                        const FileDeviceOptions& opts,
                                        OpenedFile* out) {
  if (opts.truncate && opts.must_exist) {
    // Contradictory: truncating would destroy the file the caller insists
    // on reading, before any validation could fail.
    return Status::InvalidArgument(
        "truncate and must_exist are mutually exclusive");
  }
  int flags = O_RDWR | O_CLOEXEC;
  if (!opts.must_exist) flags |= O_CREAT;
  if (opts.truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (opts.must_exist && errno == ENOENT) {
      return Status::NotFound("no device file at " + path);
    }
    return Status::IoError(ErrnoMessage("cannot open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = Status::IoError(ErrnoMessage("cannot stat", path));
    ::close(fd);
    return err;
  }
  const bool fresh = (st.st_size == 0);
  if (fresh && opts.must_exist) {
    // A read path must not initialise the caller's (empty) file.
    ::close(fd);
    return Status::Corruption(path + " is empty, not a device file");
  }

  // Learn the block size (file's superblock wins for an existing device)
  // before negotiating O_DIRECT, whose alignment rules depend on it.
  size_t block_size =
      opts.block_size != 0 ? opts.block_size : kDefaultBlockSize;
  SuperblockHeader hdr{};
  if (!fresh) {
    ssize_t n = ::pread(fd, &hdr, sizeof(hdr), 0);
    if (n != static_cast<ssize_t>(sizeof(hdr))) {
      ::close(fd);
      return Status::Corruption("short read of device superblock in " + path);
    }
    if (hdr.magic != kSuperblockMagic) {
      ::close(fd);
      return Status::Corruption(path + " is not a prtree device file");
    }
    if (hdr.version != kSuperblockVersion) {
      ::close(fd);
      return Status::Corruption("unsupported device version in " + path);
    }
    if (hdr.block_size < kMinBlockSize || hdr.block_size > (1u << 30)) {
      ::close(fd);
      return Status::Corruption("implausible block size in " + path);
    }
    if (opts.block_size != 0 && opts.block_size != hdr.block_size) {
      ::close(fd);
      return Status::InvalidArgument(
          "device " + path + " has block size " +
          std::to_string(hdr.block_size) + ", expected " +
          std::to_string(opts.block_size));
    }
    block_size = hdr.block_size;
  }
  if (block_size < kMinBlockSize) {
    ::close(fd);
    return Status::InvalidArgument("file device block size must be >= " +
                                   std::to_string(kMinBlockSize));
  }

  out->fd = fd;
  out->block_size = block_size;
  out->fresh = fresh;
  return Status::OK();
}

Status FileBlockDevice::FinishOpen(const FileDeviceOptions& opts,
                                   bool fresh) {
  // On failure the caller destroys the device, whose dtor closes the fd
  // without writing anything back.
  PRTREE_RETURN_NOT_OK(fresh ? InitFresh() : LoadExisting());
  if (opts.direct_io && block_size() % 512 == 0) NegotiateDirectIo();
  init_ok_ = true;
  return Status::OK();
}

void FileBlockDevice::NegotiateDirectIo() {
#ifdef O_DIRECT
  int fl = ::fcntl(fd_, F_GETFL);
  if (fl < 0 || ::fcntl(fd_, F_SETFL, fl | O_DIRECT) != 0) return;
  // Probe with a real transfer: Linux validates O_DIRECT alignment at I/O
  // time, not at fcntl time, so a successful F_SETFL alone proves nothing.
  // Re-read the superblock through the direct path; on failure fall back
  // to buffered I/O as the header promises.
  direct_io_ = true;
  std::vector<std::byte> probe(block_size());
  if (!PReadBlock(0, probe.data()).ok()) {
    direct_io_ = false;
    ::fcntl(fd_, F_SETFL, fl);
  }
#endif
}

FileBlockDevice::FileBlockDevice(size_t block_size, std::string path, int fd,
                                 bool direct_io)
    : BlockDevice(block_size),
      path_(std::move(path)),
      fd_(fd),
      direct_io_(direct_io) {}

FileBlockDevice::~FileBlockDevice() {
  {
    std::unique_lock lock(mu_);
    // Best effort, and only when there is something to save: a device
    // whose Open() failed must not clobber the (possibly diagnosable)
    // on-disk state, and a purely read session must not dirty the file.
    if (init_ok_ && meta_dirty_) WriteSuperblockLocked();
  }
  ::close(fd_);
}

Status FileBlockDevice::InitFresh() {
  std::unique_lock lock(mu_);
  scratch_.resize(block_size());
  if (::ftruncate(fd_, static_cast<off_t>(block_size())) != 0) {
    return Status::IoError(ErrnoMessage("cannot size", path_));
  }
  file_pages_ = 0;
  return WriteSuperblockLocked();
}

Status FileBlockDevice::LoadExisting() {
  std::unique_lock lock(mu_);
  scratch_.resize(block_size());
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IoError(ErrnoMessage("cannot stat", path_));
  }
  file_pages_ = st.st_size >= static_cast<off_t>(block_size())
                    ? static_cast<size_t>(st.st_size) / block_size() - 1
                    : 0;
  // Re-read the superblock through PReadBlock: Open() only peeked at the
  // header with a plain pread, which is no longer legal once O_DIRECT is in
  // effect (unaligned size), and the user metadata still needs loading.
  std::vector<std::byte> super(block_size());
  PRTREE_RETURN_NOT_OK(PReadBlock(0, super.data()));
  SuperblockHeader hdr{};
  std::memcpy(&hdr, super.data(), sizeof(hdr));
  num_pages_ = hdr.num_pages;
  allocated_ = hdr.allocated;
  peak_allocated_ = hdr.peak_allocated;
  if (hdr.user_meta_len > kUserMetaCapacity) {
    return Status::Corruption("oversized user metadata in " + path_);
  }
  user_meta_.assign(super.data() + sizeof(hdr),
                    super.data() + sizeof(hdr) + hdr.user_meta_len);
  if (hdr.free_count > hdr.num_pages ||
      hdr.allocated != hdr.num_pages - hdr.free_count) {
    return Status::Corruption("inconsistent allocation counters in " + path_);
  }
  // The file's extent must cover every page the superblock claims (growth
  // always precedes the superblock write); this also bounds the liveness
  // table against a garbage num_pages field.
  if (hdr.num_pages >= kInvalidPageId || hdr.num_pages > file_pages_) {
    return Status::Corruption("device file shorter than its superblock "
                              "claims in " + path_);
  }
  live_.assign(num_pages_, 1);

  // Rebuild the LIFO free list by walking the chain threaded through the
  // free pages.  The head is the most recently freed page (the LIFO top).
  //
  // Chain states that post-Sync mutations (then a crash) legitimately
  // produce are NOT corruption and degrade gracefully:
  //  * a stamp without the magic — the chained page was reused and zeroed
  //    post-Sync;
  //  * the chain ending early (next == kInvalidPageId before count runs
  //    out) — pages past a reused one were re-freed with a shorter chain;
  //  * a tail beyond the recorded count — extra pages were freed
  //    post-Sync.
  // Recovery keeps the walkable prefix of the recorded free list and
  // conservatively treats everything else as allocated: a bounded space
  // leak, never reuse of a page that might hold data.  Out-of-range
  // pointers and cycles, by contrast, can only come from a damaged
  // superblock or file and stay hard errors.
  std::vector<PageId> chain;
  chain.reserve(hdr.free_count);
  std::vector<std::byte> block(block_size());
  bool chain_broken = false;
  PageId cur = hdr.free_head;
  for (uint32_t i = 0; i < hdr.free_count; ++i) {
    if (cur == kInvalidPageId) {
      chain_broken = true;  // ended early: post-Sync re-free with less
      break;
    }
    if (cur >= num_pages_) {
      return Status::Corruption("free-list chain out of range in " + path_);
    }
    if (live_[cur] == 0) {
      return Status::Corruption("free-list chain cycle in " + path_);
    }
    PRTREE_RETURN_NOT_OK(PReadBlock(PageOffset(cur), block.data()));
    FreePageStamp stamp;
    std::memcpy(&stamp, block.data(), sizeof(stamp));
    if (stamp.magic != kFreePageMagic) {
      chain_broken = true;  // stamp destroyed: page reused post-Sync
      break;
    }
    live_[cur] = 0;
    chain.push_back(cur);
    cur = stamp.next;
  }
  // A tail beyond the recorded count (cur != kInvalidPageId here) is the
  // post-Sync "freed more pages" state: ignore it, those pages stay live.
  free_list_.assign(chain.rbegin(), chain.rend());
  if (chain_broken) {
    // Leaked pages count as allocated; write the repaired state out on
    // the next Sync/close so later opens see a clean chain.
    allocated_ = num_pages_ - free_list_.size();
    peak_allocated_ = std::max(peak_allocated_, allocated_);
    meta_dirty_ = true;
  }
  return Status::OK();
}

PageId FileBlockDevice::Allocate() {
  std::unique_lock lock(mu_);
  PageId page;
  if (!free_list_.empty()) {
    page = free_list_.back();
    free_list_.pop_back();
    // Zero the block on disk: clears the free-list stamp and restores the
    // "fresh blocks read as zeros" contract.  Internal write, uncounted.
    std::fill(scratch_.begin(), scratch_.end(), std::byte{0});
    Status st = PWriteBlock(PageOffset(page), scratch_.data());
    PRTREE_CHECK(st.ok());
    live_[page] = 1;
  } else {
    PRTREE_CHECK(num_pages_ < kInvalidPageId);
    page = static_cast<PageId>(num_pages_);
    ++num_pages_;
    live_.push_back(1);
    // Extend the file so a never-written fresh page reads back as zeros.
    // Grown geometrically (sparse), so a build costs O(log N) ftruncate
    // calls instead of one per page.
    if (num_pages_ > file_pages_) {
      file_pages_ = std::max<size_t>(num_pages_, 2 * file_pages_);
      int rc = ::ftruncate(
          fd_, static_cast<off_t>((file_pages_ + 1) * block_size()));
      PRTREE_CHECK(rc == 0);
    }
  }
  ++allocated_;
  peak_allocated_ = std::max(peak_allocated_, allocated_);
  meta_dirty_ = true;
  return page;
}

void FileBlockDevice::Free(PageId page) {
  std::unique_lock lock(mu_);
  PRTREE_CHECK(page < num_pages_ && live_[page] != 0);
  // Stamp the page as the new chain head: its next pointer is the previous
  // LIFO top.  Internal write, uncounted.
  std::fill(scratch_.begin(), scratch_.end(), std::byte{0});
  FreePageStamp stamp{kFreePageMagic,
                      free_list_.empty() ? kInvalidPageId : free_list_.back()};
  std::memcpy(scratch_.data(), &stamp, sizeof(stamp));
  Status st = PWriteBlock(PageOffset(page), scratch_.data());
  PRTREE_CHECK(st.ok());
  live_[page] = 0;
  free_list_.push_back(page);
  PRTREE_CHECK(allocated_ > 0);
  --allocated_;
  meta_dirty_ = true;
}

Status FileBlockDevice::DoRead(PageId page, void* buf) const {
  {
    std::shared_lock lock(mu_);
    if (page >= num_pages_ || live_[page] == 0) {
      return Status::IoError("read of unallocated page " +
                             std::to_string(page));
    }
  }
  return PReadBlock(PageOffset(page), buf);
}

Status FileBlockDevice::DoWrite(PageId page, const void* buf) {
  {
    std::shared_lock lock(mu_);
    if (page >= num_pages_ || live_[page] == 0) {
      return Status::IoError("write of unallocated page " +
                             std::to_string(page));
    }
  }
  return PWriteBlock(PageOffset(page), buf);
}

size_t FileBlockDevice::ScreenBatchLiveness(BlockReadRequest* reqs,
                                            size_t n) const {
  std::shared_lock lock(mu_);
  size_t live = 0;
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].page >= num_pages_ || live_[reqs[i].page] == 0) {
      reqs[i].status = Status::IoError("read of unallocated page " +
                                       std::to_string(reqs[i].page));
    } else {
      ++live;
    }
  }
  return live;
}

size_t FileBlockDevice::ScreenBatchLiveness(BlockWriteRequest* reqs,
                                            size_t n) const {
  std::shared_lock lock(mu_);
  size_t live = 0;
  for (size_t i = 0; i < n; ++i) {
    if (reqs[i].page >= num_pages_ || live_[reqs[i].page] == 0) {
      reqs[i].status = Status::IoError("write of unallocated page " +
                                       std::to_string(reqs[i].page));
    } else {
      ++live;
    }
  }
  return live;
}

void FileBlockDevice::PrefetchHint(const PageId* pages, size_t n) const {
#ifdef POSIX_FADV_WILLNEED
  if (direct_io_) return;  // no page cache to warm
  std::shared_lock lock(mu_);
  for (size_t i = 0; i < n; ++i) {
    if (pages[i] >= num_pages_ || live_[pages[i]] == 0) continue;
    // Purely advisory; a failure (e.g. an fs without fadvise) is ignored.
    ::posix_fadvise(fd_, static_cast<off_t>(PageOffset(pages[i])),
                    static_cast<off_t>(block_size()), POSIX_FADV_WILLNEED);
  }
#else
  (void)pages;
  (void)n;
#endif
}

size_t FileBlockDevice::num_allocated() const {
  std::shared_lock lock(mu_);
  return allocated_;
}

size_t FileBlockDevice::peak_allocated() const {
  std::shared_lock lock(mu_);
  return peak_allocated_;
}

Status FileBlockDevice::Sync() {
  std::unique_lock lock(mu_);
  PRTREE_RETURN_NOT_OK(WriteSuperblockLocked());
  if (::fsync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("fsync failed on", path_));
  }
  return Status::OK();
}

Status FileBlockDevice::SetUserMeta(const void* data, size_t len) {
  if (len > kUserMetaCapacity) {
    return Status::InvalidArgument("user metadata exceeds " +
                                   std::to_string(kUserMetaCapacity) +
                                   " bytes");
  }
  std::unique_lock lock(mu_);
  user_meta_.assign(static_cast<const std::byte*>(data),
                    static_cast<const std::byte*>(data) + len);
  meta_dirty_ = true;
  return Status::OK();
}

size_t FileBlockDevice::GetUserMeta(void* buf, size_t cap) const {
  std::shared_lock lock(mu_);
  size_t n = std::min(cap, user_meta_.size());
  if (n > 0) std::memcpy(buf, user_meta_.data(), n);
  return user_meta_.size();
}

Status FileBlockDevice::PReadBlock(uint64_t off, void* buf) const {
  void* target = direct_io_ ? ThreadAlignedScratch(block_size()) : buf;
  size_t done = 0;
  while (done < block_size()) {
    ssize_t r = ::pread(fd_, static_cast<char*>(target) + done,
                        block_size() - done, static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("pread failed on", path_));
    }
    if (r == 0) {
      return Status::IoError("short read at offset " + std::to_string(off) +
                             " of " + path_);
    }
    done += static_cast<size_t>(r);
  }
  if (direct_io_) std::memcpy(buf, target, block_size());
  return Status::OK();
}

size_t FileBlockDevice::num_pages() const {
  std::shared_lock lock(mu_);
  return num_pages_;
}

bool FileBlockDevice::IsAllocated(PageId page) const {
  std::shared_lock lock(mu_);
  return page < num_pages_ && live_[page] != 0;
}

size_t FileBlockDevice::AdoptOrphanPages() {
  std::unique_lock lock(mu_);
  if (file_pages_ <= num_pages_) return 0;
  // Everything between the superblock's page count and the file extent was
  // created post-Sync (Allocate grows the file before the page is handed
  // out, and extent growth over-provisions, so some of these ids were
  // never handed out at all).  All of it is adopted as allocated: pages a
  // committed op wrote become readable, and the rest — garbage or never
  // used — is exactly what the recovery sweep exists to free.
  const size_t adopted = file_pages_ - num_pages_;
  live_.resize(file_pages_, 1);
  num_pages_ = file_pages_;
  allocated_ += adopted;
  peak_allocated_ = std::max(peak_allocated_, allocated_);
  meta_dirty_ = true;
  return adopted;
}

Status FileBlockDevice::PWriteBlock(uint64_t off, const void* buf) {
  // Every byte this backend puts on disk funnels through here — client
  // writes, superblock write-out, free-list stamps, zeroing of reused
  // pages — so this is where the injected power cut consumes its budget:
  // a dropped write is acknowledged but never issued, a torn one lands
  // only its prefix over the previous on-disk bytes.
  size_t tear = 0;
  std::vector<std::byte> merged;
  switch (ConsumeWriteBudget(&tear)) {
    case WriteOutcome::kDrop:
      return Status::OK();
    case WriteOutcome::kTear:
      merged.resize(block_size());
      PRTREE_RETURN_NOT_OK(PReadBlock(off, merged.data()));
      std::memcpy(merged.data(), buf, std::min(tear, block_size()));
      buf = merged.data();
      break;
    case WriteOutcome::kLand:
      break;
  }
  const void* source = buf;
  if (direct_io_) {
    std::byte* bounce = ThreadAlignedScratch(block_size());
    std::memcpy(bounce, buf, block_size());
    source = bounce;
  }
  size_t done = 0;
  while (done < block_size()) {
    ssize_t w = ::pwrite(fd_, static_cast<const char*>(source) + done,
                         block_size() - done, static_cast<off_t>(off + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("pwrite failed on", path_));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status FileBlockDevice::WriteSuperblockLocked() {
  std::vector<std::byte> block(block_size());
  SuperblockHeader hdr{};
  hdr.magic = kSuperblockMagic;
  hdr.version = kSuperblockVersion;
  hdr.block_size = block_size();
  hdr.num_pages = num_pages_;
  hdr.allocated = allocated_;
  hdr.peak_allocated = peak_allocated_;
  hdr.free_head = free_list_.empty() ? kInvalidPageId : free_list_.back();
  hdr.free_count = static_cast<uint32_t>(free_list_.size());
  hdr.user_meta_len = static_cast<uint32_t>(user_meta_.size());
  std::memcpy(block.data(), &hdr, sizeof(hdr));
  if (!user_meta_.empty()) {
    std::memcpy(block.data() + sizeof(hdr), user_meta_.data(),
                user_meta_.size());
  }
  Status st = PWriteBlock(0, block.data());
  if (st.ok()) meta_dirty_ = false;
  return st;
}

}  // namespace prtree
