// Simulated block-addressable disk.
//
// The paper measures algorithms in the standard external-memory model: data
// moves between disk and memory in blocks of B records, and the cost of an
// algorithm is the number of block transfers (I/Os).  This device gives that
// model a concrete, deterministic realisation: fixed-size blocks held in
// memory, with exact read/write counters.  Using a simulated device rather
// than the host filesystem removes OS page-cache noise, which the paper
// itself identifies as the reason to report I/Os instead of seconds (§3.3).
//
// Thread safety: all operations may be called concurrently.  Blocks live in
// a two-level table of geometrically sized "bricks" published through
// atomic pointers, so Read()/Write() never take a lock and never observe a
// moving table; Allocate()/Free() serialise on a mutex.  Races on a single
// page (read vs. free of the same page, two writers to one page) remain
// usage errors, exactly as with a real disk.
//
// Determinism contract for the parallel bulk-load pipeline: the page id
// returned by Allocate() depends only on the *sequence* of prior
// Allocate()/Free() calls.  Loaders keep that sequence on one coordinating
// thread (workers only Read, and Write to pages handed to them), which
// makes an 8-thread build byte-identical to a serial one.

#ifndef PRTREE_IO_BLOCK_DEVICE_H_
#define PRTREE_IO_BLOCK_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "io/io_stats.h"
#include "util/status.h"

namespace prtree {

/// Identifier of a block on the device.  kInvalidPageId is the "null"
/// pointer in on-disk structures.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Block size used throughout the paper's experiments (§3.1).
inline constexpr size_t kDefaultBlockSize = 4096;

/// \brief An in-memory array of fixed-size blocks with I/O accounting,
/// allocation/free-list management and test-only fault injection.
class BlockDevice {
 public:
  explicit BlockDevice(size_t block_size = kDefaultBlockSize);
  ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  size_t block_size() const { return block_size_; }

  /// Allocates a zeroed block and returns its id.  Reuses freed blocks
  /// (LIFO), so the result is a pure function of the preceding
  /// Allocate/Free call sequence.  Thread-safe.
  PageId Allocate();

  /// Returns `page` to the free list.  The block's contents are discarded.
  /// Thread-safe (but freeing a page another thread is reading is a usage
  /// error, as on a real disk).
  void Free(PageId page);

  /// Copies the block into `buf` (block_size() bytes).  Counts one read.
  /// Lock-free; safe to call from multiple threads concurrently.
  Status Read(PageId page, void* buf) const;

  /// Copies `buf` (block_size() bytes) into the block.  Counts one write.
  /// Lock-free; concurrent writes to *distinct* pages are safe (the
  /// parallel node serializers rely on this).
  Status Write(PageId page, const void* buf);

  /// Number of blocks currently allocated (live).
  size_t num_allocated() const;

  /// High-water mark of live blocks — the paper's "disk blocks occupied".
  size_t peak_allocated() const;

  /// Point-in-time snapshot of the I/O counters (atomic per counter).
  IoStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// Makes every subsequent Read of `page` fail with an IoError, simulating
  /// a bad sector.  Test-only; not safe concurrently with Read().
  void InjectReadFault(PageId page) {
    read_faults_.insert(page);
    fault_count_.store(read_faults_.size(), std::memory_order_release);
  }
  void ClearFaults() {
    read_faults_.clear();
    fault_count_.store(0, std::memory_order_release);
  }

 private:
  // Two-level stable storage.  Brick 0 holds pages [0, 2^kBrick0Bits);
  // brick k >= 1 holds [2^(kBrick0Bits+k-1), 2^(kBrick0Bits+k)).  Brick
  // pointers are published with release stores and never move, so readers
  // index them without locks while the device grows.
  static constexpr int kBrick0Bits = 10;
  static constexpr int kMaxBricks = 24;  // covers > 2^32 pages

  struct PageSlot {
    std::unique_ptr<std::byte[]> data;  // set once (under mu_), then stable
    std::atomic<bool> live{false};
  };

  static int BrickOf(PageId page, size_t* offset);

  /// Slot lookup for a page id known to be < num_pages_.
  PageSlot& Slot(PageId page) const;

  /// True and yields the slot iff `page` was ever created and is live.
  PageSlot* LiveSlot(PageId page) const;

  const size_t block_size_;
  mutable std::mutex mu_;  // guards allocation state and brick growth
  std::atomic<PageSlot*> bricks_[kMaxBricks] = {};
  std::atomic<size_t> num_pages_{0};  // pages ever created (monotonic)
  std::vector<PageId> free_list_;     // guarded by mu_
  size_t allocated_ = 0;              // guarded by mu_
  size_t peak_allocated_ = 0;         // guarded by mu_
  mutable AtomicIoStats stats_;
  std::unordered_set<PageId> read_faults_;  // test-only, see InjectReadFault
  std::atomic<size_t> fault_count_{0};
};

}  // namespace prtree

#endif  // PRTREE_IO_BLOCK_DEVICE_H_
