// Simulated block-addressable disk.
//
// The paper measures algorithms in the standard external-memory model: data
// moves between disk and memory in blocks of B records, and the cost of an
// algorithm is the number of block transfers (I/Os).  This device gives that
// model a concrete, deterministic realisation: fixed-size blocks held in
// memory, with exact read/write counters.  Using a simulated device rather
// than the host filesystem removes OS page-cache noise, which the paper
// itself identifies as the reason to report I/Os instead of seconds (§3.3).
//
// Thread safety: any number of threads may call Read() (and the const
// accessors) concurrently — block contents are immutable while readers run
// and the I/O counters are atomics.  The mutating operations (Allocate,
// Write, Free, fault injection, ResetStats) require exclusive access; the
// query protocol satisfies this naturally because trees are built and
// updated single-threaded and only queried concurrently.

#ifndef PRTREE_IO_BLOCK_DEVICE_H_
#define PRTREE_IO_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "io/io_stats.h"
#include "util/status.h"

namespace prtree {

/// Identifier of a block on the device.  kInvalidPageId is the "null"
/// pointer in on-disk structures.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Block size used throughout the paper's experiments (§3.1).
inline constexpr size_t kDefaultBlockSize = 4096;

/// \brief An in-memory array of fixed-size blocks with I/O accounting,
/// allocation/free-list management and test-only fault injection.
class BlockDevice {
 public:
  explicit BlockDevice(size_t block_size = kDefaultBlockSize);

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  size_t block_size() const { return block_size_; }

  /// Allocates a zeroed block and returns its id.  Reuses freed blocks.
  PageId Allocate();

  /// Returns `page` to the free list.  The block's contents are discarded.
  void Free(PageId page);

  /// Copies the block into `buf` (block_size() bytes).  Counts one read.
  /// Safe to call from multiple threads concurrently.
  Status Read(PageId page, void* buf) const;

  /// Copies `buf` (block_size() bytes) into the block.  Counts one write.
  Status Write(PageId page, const void* buf);

  /// Number of blocks currently allocated (live).
  size_t num_allocated() const { return allocated_; }

  /// High-water mark of live blocks — the paper's "disk blocks occupied".
  size_t peak_allocated() const { return peak_allocated_; }

  /// Point-in-time snapshot of the I/O counters (atomic per counter).
  IoStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// Makes every subsequent Read of `page` fail with an IoError, simulating
  /// a bad sector.  Test-only.
  void InjectReadFault(PageId page) { read_faults_.insert(page); }
  void ClearFaults() { read_faults_.clear(); }

 private:
  bool IsLive(PageId page) const;

  size_t block_size_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  size_t allocated_ = 0;
  size_t peak_allocated_ = 0;
  mutable AtomicIoStats stats_;
  std::unordered_set<PageId> read_faults_;
};

}  // namespace prtree

#endif  // PRTREE_IO_BLOCK_DEVICE_H_
