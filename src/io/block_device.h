// The block-device interface and its in-memory backend.
//
// The paper measures algorithms in the standard external-memory model: data
// moves between disk and memory in blocks of B records, and the cost of an
// algorithm is the number of block transfers (I/Os).  BlockDevice is the
// abstract realisation of that model — fixed-size blocks addressed by
// PageId, with exact read/write counters — and every layer above (buffer
// pool, node views, loaders, queries) talks to it, never to a concrete
// backend.  Two backends implement it:
//
//  * MemoryBlockDevice (this header): blocks held in RAM.  Deterministic
//    and free of OS page-cache noise, which the paper itself identifies as
//    the reason to report I/Os instead of seconds (§3.3).  The default for
//    tests and the paper-figure benches.
//  * FileBlockDevice (io/file_block_device.h): blocks mapped onto a single
//    on-disk file via pread/pwrite, with a persistent superblock and an
//    explicit Sync() durability barrier.  Indexes survive the process and
//    may exceed RAM.
//  * UringBlockDevice (io/uring_block_device.h): the file backend with an
//    io_uring engine under ReadBatch() and WriteBatch(), so a batch of
//    block transfers is one syscall with every request in flight at once.
//    Falls back to the pread/pwrite path transparently when the kernel
//    lacks io_uring.
//
// Thread safety contract (all backends): Read()/Write()/ReadBatch()/
// WriteBatch() may be called concurrently from any number of threads;
// Allocate()/Free() serialise internally.  Races on a single page (read
// vs. free of the same page, two writers to one page) remain usage errors,
// exactly as with a real disk.
//
// Determinism contract for the parallel bulk-load pipeline (all backends):
// the page id returned by Allocate() depends only on the *sequence* of
// prior Allocate()/Free() calls — a LIFO free list over a monotonically
// grown page space.  Loaders keep that sequence on one coordinating thread
// (workers only Read, and Write to pages handed to them), which makes an
// 8-thread build byte-identical to a serial one on either backend.

#ifndef PRTREE_IO_BLOCK_DEVICE_H_
#define PRTREE_IO_BLOCK_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "io/io_stats.h"
#include "util/status.h"

namespace prtree {

/// Identifier of a block on the device.  kInvalidPageId is the "null"
/// pointer in on-disk structures.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Block size used throughout the paper's experiments (§3.1).
inline constexpr size_t kDefaultBlockSize = 4096;

/// \brief How a read is charged to the I/O counters.
///
/// kDemand is an algorithmic block transfer (the paper's metric, counted in
/// stats().reads).  kPrefetch is a speculative readahead transfer issued
/// before any traversal asked for the page; it is charged to
/// stats().prefetch_reads so readahead changes *when* blocks move, never
/// what the demand counters report (docs/IO_MODEL.md).
enum class ReadKind { kDemand, kPrefetch };

/// \brief How a write is charged to the I/O counters.
///
/// kData is an algorithmic block transfer (stats().writes, part of the
/// paper's metric).  kMeta is metadata-class traffic — the update journal's
/// frames (io/journal.h) — charged to stats().meta_writes so the demand
/// counters stay byte-identical whether or not journaling is on
/// (docs/DURABILITY.md).
enum class WriteKind { kData, kMeta };

/// \brief One request of a batched read.  `buf` must hold block_size()
/// bytes; `status` receives the per-request outcome (a failed request never
/// aborts the rest of the batch).
struct BlockReadRequest {
  PageId page = kInvalidPageId;
  void* buf = nullptr;
  Status status;
};

/// \brief One request of a batched write.  `buf` must hold block_size()
/// bytes and stay valid until WriteBatch returns; `status` receives the
/// per-request outcome (a failed request never aborts the rest of the
/// batch).
struct BlockWriteRequest {
  PageId page = kInvalidPageId;
  const void* buf = nullptr;
  Status status;
};

/// \brief Abstract array of fixed-size blocks with I/O accounting,
/// allocation/free-list management and test-only fault injection.
///
/// See the file comment for the thread-safety and determinism contracts
/// every backend must honour.
class BlockDevice {
 public:
  explicit BlockDevice(size_t block_size);
  virtual ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  size_t block_size() const { return block_size_; }

  /// Allocates a zeroed block and returns its id.  Reuses freed blocks
  /// (LIFO), so the result is a pure function of the preceding
  /// Allocate/Free call sequence.  Thread-safe.
  virtual PageId Allocate() = 0;

  /// Returns `page` to the free list.  The block's contents are discarded.
  /// Thread-safe (but freeing a page another thread is reading is a usage
  /// error, as on a real disk).
  virtual void Free(PageId page) = 0;

  /// Copies the block into `buf` (block_size() bytes).  Counts one read.
  /// Safe to call from multiple threads concurrently.  Non-virtual:
  /// backends implement DoRead(); fault injection and accounting live
  /// here, identically for every backend.
  Status Read(PageId page, void* buf) const {
    if (HasReadFault(page)) {
      return Status::IoError("injected read fault on page " +
                             std::to_string(page));
    }
    Status st = DoRead(page, buf);
    if (st.ok()) CountRead();
    return st;
  }

  /// Copies `buf` (block_size() bytes) into the block.  Counts one write.
  /// Concurrent writes to *distinct* pages are safe (the parallel node
  /// serializers rely on this).  Non-virtual like Read(): fault injection
  /// and accounting live here, identically for every backend.
  Status Write(PageId page, const void* buf) {
    return WriteImpl(page, buf, WriteKind::kData);
  }

  /// Same bytes and fault behaviour as Write(), charged to
  /// stats().meta_writes instead of the demand counter.  The update
  /// journal's channel (see WriteKind).
  Status WriteMeta(PageId page, const void* buf) {
    return WriteImpl(page, buf, WriteKind::kMeta);
  }

  /// Same bytes and fault behaviour as Read(), charged to
  /// stats().meta_reads instead of the demand counter (journal recovery
  /// scans and reachability sweeps read through this).
  Status ReadMeta(PageId page, void* buf) const {
    if (HasReadFault(page)) {
      return Status::IoError("injected read fault on page " +
                             std::to_string(page));
    }
    Status st = DoRead(page, buf);
    if (st.ok()) CountMetaRead();
    return st;
  }

  /// \brief Writes `n` blocks in one call.  Semantically identical to `n`
  /// Write() calls — same bytes on the device, same per-block accounting
  /// (one write per *successful* request) — but a backend may service the
  /// whole batch with every write in flight at once (UringBlockDevice
  /// submits the batch as one io_uring syscall).  Each request's outcome
  /// lands in its `status`; the return value is OK iff every request
  /// succeeded (first failure otherwise).  One audit-only `write_batches`
  /// tick per kData call, on every backend, so counters never depend on
  /// which engine served the batch; kMeta batches charge meta_writes only.
  /// Thread-safe like Write() (distinct pages).
  Status WriteBatch(BlockWriteRequest* reqs, size_t n,
                    WriteKind kind = WriteKind::kData) {
    if (n == 0) return Status::OK();
    if (kind == WriteKind::kData) CountWriteBatch();
    return DoWriteBatch(reqs, n, kind);
  }

  /// \brief The batch size a write stager should coalesce to before
  /// draining into WriteBatch().  1 (the default) means batching buys
  /// nothing here — stagers pass writes straight through.  The uring
  /// backend reports its *requested* ring depth whether or not a ring came
  /// up, so staging behaviour (and the write_batches counter) is a function
  /// of configuration, never of kernel capabilities (docs/IO_MODEL.md).
  virtual size_t PreferredWriteBatch() const { return 1; }

  /// \brief Reads `n` blocks in one call.  Semantically identical to `n`
  /// Read() calls — same bytes, same per-block accounting (one
  /// read/prefetch_read per *successful* request) — but a backend may
  /// service the whole batch with every read in flight at once
  /// (UringBlockDevice submits the batch as one io_uring syscall).  Each
  /// request's outcome lands in its `status`; the return value is OK iff
  /// every request succeeded (first failure otherwise).  Thread-safe like
  /// Read().
  virtual Status ReadBatch(BlockReadRequest* reqs, size_t n,
                           ReadKind kind = ReadKind::kDemand) const;

  /// \brief Advisory: the caller expects to read these pages soon.  Never
  /// transfers into caller memory, never touches the counters, may do
  /// nothing (the default).  The file backend forwards the hint to the
  /// kernel (posix_fadvise WILLNEED) so the page cache can read ahead.
  virtual void PrefetchHint(const PageId* pages, size_t n) const {
    (void)pages;
    (void)n;
  }

  /// Number of blocks currently allocated (live).
  virtual size_t num_allocated() const = 0;

  /// High-water mark of live blocks — the paper's "disk blocks occupied".
  virtual size_t peak_allocated() const = 0;

  /// Number of page ids ever created (allocated or later freed): valid ids
  /// are [0, num_pages()).  With IsAllocated() this lets recovery and tests
  /// enumerate the live-page set (the journal's leak sweep).
  virtual size_t num_pages() const = 0;

  /// True iff `page` is currently allocated (live).
  virtual bool IsAllocated(PageId page) const = 0;

  /// Durability barrier: flushes device metadata and data to stable
  /// storage.  A no-op on the in-memory backend; an fsync (plus superblock
  /// write-out) on the file backend.
  virtual Status Sync() { return Status::OK(); }

  /// Point-in-time snapshot of the I/O counters (atomic per counter).
  /// Counts client Read()/Write() calls only — backend-internal metadata
  /// traffic (superblock, free-list maintenance) is never charged, so both
  /// backends report identical I/Os for identical call sequences.
  IoStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// Makes every subsequent Read of `page` fail with an IoError, simulating
  /// a bad sector.  Test-only; not safe concurrently with Read().
  void InjectReadFault(PageId page) {
    read_faults_.insert(page);
    fault_count_.store(read_faults_.size(), std::memory_order_release);
  }
  /// Same for Write()/WriteBatch(): every subsequent write of `page` fails
  /// with an IoError, whichever engine would have carried it.  Test-only;
  /// not safe concurrently with Write().
  void InjectWriteFault(PageId page) {
    write_faults_.insert(page);
    write_fault_count_.store(write_faults_.size(), std::memory_order_release);
  }

  /// One-shot torn write: the next Write()/WriteMeta()/WriteBatch() of
  /// `page` lands only its first `valid_prefix_bytes` bytes — the rest of
  /// the block keeps its previous contents — and reports success, modelling
  /// a sector-granular partial write at power cut.  Later writes of the
  /// page behave normally.  Test-only; arm before the writes start.
  void InjectTornWrite(PageId page, size_t valid_prefix_bytes) {
    std::lock_guard<std::mutex> lock(torn_mu_);
    torn_writes_[page] = valid_prefix_bytes;
    torn_count_.store(torn_writes_.size(), std::memory_order_release);
  }

  /// Power-cut simulator: the next `n` block writes land normally — client
  /// writes AND backend-internal metadata writes (superblock, free-list
  /// stamps, page zeroing) alike — and every write after them is silently
  /// dropped while still reporting success, exactly as a dead machine
  /// acknowledges nothing further.  When `tear_prefix_bytes` is given the
  /// n-th (final surviving) write lands torn: only that prefix reaches the
  /// device.  Writes are consumed in device order (batch engines fall back
  /// to the ordered scalar loop while the switch is armed, so the crash
  /// point is deterministic).  Test-only; arm before the writes start.
  static constexpr size_t kNoTear = ~size_t{0};
  void InjectCrashAfterWrites(uint64_t n, size_t tear_prefix_bytes = kNoTear) {
    crash_budget_.store(static_cast<int64_t>(n), std::memory_order_relaxed);
    crash_tear_prefix_ = tear_prefix_bytes;
    dropped_writes_.store(0, std::memory_order_relaxed);
    crash_armed_.store(true, std::memory_order_release);
  }

  /// True iff an armed crash switch has exhausted its budget (every
  /// subsequent write is being dropped).
  bool crash_triggered() const {
    return crash_armed_.load(std::memory_order_acquire) &&
           crash_budget_.load(std::memory_order_relaxed) <= 0;
  }

  /// Writes silently dropped by the armed crash switch so far.
  uint64_t dropped_writes() const {
    return dropped_writes_.load(std::memory_order_relaxed);
  }

  /// Total block-write attempts (landed, torn or dropped; client and
  /// backend-internal alike), counted whether or not a crash switch is
  /// armed.  Deterministic for a deterministic call sequence — the crash
  /// matrix in tests/crash_recovery_test.cc measures a dry run's attempt
  /// count and then crashes at every index below it.
  uint64_t write_attempts() const {
    return write_attempts_.load(std::memory_order_relaxed);
  }

  void ClearFaults() {
    read_faults_.clear();
    fault_count_.store(0, std::memory_order_release);
    write_faults_.clear();
    write_fault_count_.store(0, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(torn_mu_);
      torn_writes_.clear();
      torn_count_.store(0, std::memory_order_release);
    }
    crash_armed_.store(false, std::memory_order_release);
    dropped_writes_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Backend read/write of one block, *without* fault injection or
  /// accounting — the public Read()/Write()/ReadBatch() wrappers add both.
  virtual Status DoRead(PageId page, void* buf) const = 0;
  virtual Status DoWrite(PageId page, const void* buf) = 0;

  /// Backend half of WriteBatch(): per-request status, one counted write
  /// per success (demand or meta per `kind`), every request attempted,
  /// write faults honoured.  The default (block_device.cc) is the scalar
  /// reference loop; UringBlockDevice overrides it with the ring engine.
  virtual Status DoWriteBatch(BlockWriteRequest* reqs, size_t n,
                              WriteKind kind);

  /// True iff a fault was injected for `page`.  The public wrappers call
  /// this before every read (cheap: one relaxed load when no fault is
  /// armed); backends with their own batched paths must do the same.
  bool HasReadFault(PageId page) const {
    return fault_count_.load(std::memory_order_acquire) != 0 &&
           read_faults_.count(page) != 0;
  }
  bool HasWriteFault(PageId page) const {
    return write_fault_count_.load(std::memory_order_acquire) != 0 &&
           write_faults_.count(page) != 0;
  }

  /// True iff any write-path injection (fault, torn write, crash switch)
  /// is armed.  Batch engines whose in-flight ordering is not deterministic
  /// (io_uring) check this and fall back to the ordered scalar loop, so an
  /// injected crash point always lands between the same two writes.
  bool WriteInjectionArmed() const {
    return write_fault_count_.load(std::memory_order_acquire) != 0 ||
           torn_count_.load(std::memory_order_acquire) != 0 ||
           crash_armed_.load(std::memory_order_acquire);
  }

  /// What the armed power-cut switch decides for one write, consumed at
  /// the lowest layer where bytes land (MemoryBlockDevice::DoWrite,
  /// FileBlockDevice::PWriteBlock).  Also ticks write_attempts().
  enum class WriteOutcome { kLand, kTear, kDrop };
  WriteOutcome ConsumeWriteBudget(size_t* tear_prefix) {
    write_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (!crash_armed_.load(std::memory_order_acquire)) {
      return WriteOutcome::kLand;
    }
    int64_t prev = crash_budget_.fetch_sub(1, std::memory_order_acq_rel);
    if (prev > 1) return WriteOutcome::kLand;
    if (prev == 1) {
      if (crash_tear_prefix_ != kNoTear) {
        *tear_prefix = crash_tear_prefix_;
        return WriteOutcome::kTear;
      }
      return WriteOutcome::kLand;
    }
    dropped_writes_.fetch_add(1, std::memory_order_relaxed);
    return WriteOutcome::kDrop;
  }

  /// Attempt tick for engines that bypass ConsumeWriteBudget (the io_uring
  /// ring path, which only runs with no injection armed).
  void CountWriteAttempt() {
    write_attempts_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumes a one-shot torn-write arming for `page`, if any.
  bool TakeTornWrite(PageId page, size_t* prefix) {
    if (torn_count_.load(std::memory_order_acquire) == 0) return false;
    std::lock_guard<std::mutex> lock(torn_mu_);
    auto it = torn_writes_.find(page);
    if (it == torn_writes_.end()) return false;
    *prefix = it->second;
    torn_writes_.erase(it);
    torn_count_.store(torn_writes_.size(), std::memory_order_release);
    return true;
  }

  void CountRead() const { stats_.CountRead(); }
  void CountWrite() { stats_.CountWrite(); }
  void CountPrefetchRead() const { stats_.CountPrefetchRead(); }
  void CountMetaRead() const { stats_.CountMetaRead(); }
  void CountMetaWrite() { stats_.CountMetaWrite(); }
  void CountBatchedRead(ReadKind kind) const {
    kind == ReadKind::kDemand ? CountRead() : CountPrefetchRead();
  }
  void CountBatchedWrite(WriteKind kind) {
    kind == WriteKind::kData ? CountWrite() : CountMetaWrite();
  }
  void CountWriteBatch() { stats_.CountWriteBatch(); }

 private:
  /// Shared body of Write()/WriteMeta(): fault check, one-shot torn merge,
  /// backend write, per-kind accounting.
  Status WriteImpl(PageId page, const void* buf, WriteKind kind) {
    if (HasWriteFault(page)) {
      return Status::IoError("injected write fault on page " +
                             std::to_string(page));
    }
    Status st;
    size_t prefix = 0;
    if (TakeTornWrite(page, &prefix)) {
      st = TornDoWrite(page, buf, prefix);
    } else {
      st = DoWrite(page, buf);
    }
    if (st.ok()) CountBatchedWrite(kind);
    return st;
  }

  /// Read-merge-write realisation of a one-shot torn write (block_device.cc).
  Status TornDoWrite(PageId page, const void* buf, size_t prefix);

  const size_t block_size_;
  mutable AtomicIoStats stats_;
  std::unordered_set<PageId> read_faults_;  // test-only, see InjectReadFault
  std::atomic<size_t> fault_count_{0};
  std::unordered_set<PageId> write_faults_;  // test-only, InjectWriteFault
  std::atomic<size_t> write_fault_count_{0};
  std::mutex torn_mu_;  // guards torn_writes_ (armed-path only)
  std::unordered_map<PageId, size_t> torn_writes_;  // page -> valid prefix
  std::atomic<size_t> torn_count_{0};
  std::atomic<bool> crash_armed_{false};
  std::atomic<int64_t> crash_budget_{0};  // writes left before the power cut
  size_t crash_tear_prefix_ = kNoTear;    // set before arming, then stable
  std::atomic<uint64_t> dropped_writes_{0};
  std::atomic<uint64_t> write_attempts_{0};
};

/// \brief The in-memory backend: blocks live in a two-level table of
/// geometrically sized "bricks" published through atomic pointers, so
/// Read()/Write() never take a lock and never observe a moving table;
/// Allocate()/Free() serialise on a mutex.
class MemoryBlockDevice final : public BlockDevice {
 public:
  explicit MemoryBlockDevice(size_t block_size = kDefaultBlockSize);
  ~MemoryBlockDevice() override;

  PageId Allocate() override;
  void Free(PageId page) override;
  size_t num_allocated() const override;
  size_t peak_allocated() const override;
  size_t num_pages() const override;
  bool IsAllocated(PageId page) const override;

 protected:
  Status DoRead(PageId page, void* buf) const override;
  Status DoWrite(PageId page, const void* buf) override;

 private:
  // Two-level stable storage.  Brick 0 holds pages [0, 2^kBrick0Bits);
  // brick k >= 1 holds [2^(kBrick0Bits+k-1), 2^(kBrick0Bits+k)).  Brick
  // pointers are published with release stores and never move, so readers
  // index them without locks while the device grows.
  static constexpr int kBrick0Bits = 10;
  static constexpr int kMaxBricks = 24;  // covers > 2^32 pages

  struct PageSlot {
    std::unique_ptr<std::byte[]> data;  // set once (under mu_), then stable
    std::atomic<bool> live{false};
  };

  static int BrickOf(PageId page, size_t* offset);

  /// Slot lookup for a page id known to be < num_pages_.
  PageSlot& Slot(PageId page) const;

  /// True and yields the slot iff `page` was ever created and is live.
  PageSlot* LiveSlot(PageId page) const;

  mutable std::mutex mu_;  // guards allocation state and brick growth
  std::atomic<PageSlot*> bricks_[kMaxBricks] = {};
  std::atomic<size_t> num_pages_{0};  // pages ever created (monotonic)
  std::vector<PageId> free_list_;     // guarded by mu_
  size_t allocated_ = 0;              // guarded by mu_
  size_t peak_allocated_ = 0;         // guarded by mu_
};

}  // namespace prtree

#endif  // PRTREE_IO_BLOCK_DEVICE_H_
