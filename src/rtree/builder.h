// Shared node-writing helpers for bulk loaders.
//
// All one-dimensional-ordering loaders (packed Hilbert, 4-D Hilbert, STR)
// and the final stages of PR/TGS construction share the same mechanics:
// write runs of records as full leaves, then repeatedly pack each level's
// (MBR, page) entries into parent nodes until a single root remains
// ("bottom-up level-by-level", §1.1 [10, 15, 18]).
//
// Thread-safe page-allocation path: PackLevel/PackUpward accept a
// ThreadPool.  Page ids are still allocated on the calling thread in entry
// order (so the packed tree is byte-identical to a serial pack), but the
// nodes themselves — MBR computation and the block writes — are serialized
// concurrently by pool tasks, each writing its own preallocated pages with
// no shared lock (BlockDevice::Write is lock-free for distinct pages).
//
// Node emission goes through a WriteStager (one per writer/task), so on a
// batching backend a train of node writes is a few WriteBatch submissions
// instead of one pwrite each.  Pages drain in allocation order (serial
// path) or per-task over disjoint preallocated pages (parallel path), and
// each page is written exactly once — so the staged build stays
// byte-identical to the scalar one in every mode.

#ifndef PRTREE_RTREE_BUILDER_H_
#define PRTREE_RTREE_BUILDER_H_

#include <vector>

#include "io/write_stager.h"
#include "rtree/rtree.h"
#include "util/parallel.h"

namespace prtree {

/// An entry of a tree level under construction: a finished node and its MBR.
template <int D>
struct LevelEntry {
  Rect<D> mbr;
  PageId page;
};

/// \brief Incrementally packs records (or child entries) into node blocks of
/// a fixed level, emitting a LevelEntry per finished node.
///
/// Feeding entries in the loader's chosen order and cutting every
/// `target_fill` entries yields the near-100 % space utilisation the paper
/// reports (§3.3).
template <int D>
class NodeWriter {
 public:
  /// \param device      destination device.
  /// \param level       tree level of the nodes written (0 = leaf).
  /// \param target_fill entries per node; defaults to full capacity.
  NodeWriter(BlockDevice* device, int level, size_t target_fill = 0)
      : device_(device),
        level_(level),
        buf_(device->block_size()),
        node_(buf_.data(), device->block_size()),
        stager_(device) {
    target_fill_ = target_fill == 0 ? node_.capacity() : target_fill;
    PRTREE_CHECK(target_fill_ >= 1 && target_fill_ <= node_.capacity());
    node_.Format(static_cast<uint16_t>(level_));
  }

  /// Adds one entry, flushing a node when target_fill is reached.
  void Add(const Rect<D>& rect, uint32_t id) {
    node_.Append(rect, id);
    if (node_.count() >= target_fill_) FlushNode();
  }

  /// Flushes any partial node, drains every staged node block to the
  /// device, and returns the finished level.
  std::vector<LevelEntry<D>> Finish() {
    if (node_.count() > 0) FlushNode();
    stager_.Drain();
    return std::move(finished_);
  }

 private:
  void FlushNode() {
    PageId page = device_->Allocate();
    Rect<D> mbr = node_.ComputeMbr();
    stager_.Stage(page, buf_.data());
    finished_.push_back(LevelEntry<D>{mbr, page});
    node_.Format(static_cast<uint16_t>(level_));
  }

  BlockDevice* device_;
  int level_;
  size_t target_fill_;
  std::vector<std::byte> buf_;
  NodeView<D> node_;
  WriteStager stager_;
  std::vector<LevelEntry<D>> finished_;
};

/// \brief Packs consecutive runs of `children` into parent nodes at `level`.
///
/// With a pool, the nodes' page ids are preallocated in order on the
/// calling thread and the node blocks are formatted and written by pool
/// tasks — byte-identical output, concurrent serialization.
template <int D>
std::vector<LevelEntry<D>> PackLevel(BlockDevice* device,
                                     const std::vector<LevelEntry<D>>& children,
                                     int level, ThreadPool* pool = nullptr) {
  const size_t n = children.size();
  const size_t cap = NodeCapacity<D>(device->block_size());
  const size_t num_nodes = (n + cap - 1) / cap;
  if (pool == nullptr || pool->num_threads() <= 1 || num_nodes < 4) {
    NodeWriter<D> writer(device, level);
    for (const auto& child : children) writer.Add(child.mbr, child.page);
    return writer.Finish();
  }

  std::vector<LevelEntry<D>> finished(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    finished[i].page = device->Allocate();
  }
  ThreadPool::TaskGroup group;
  const size_t tasks = std::min(num_nodes, 2 * pool->num_threads());
  for (size_t t = 0; t < tasks; ++t) {
    size_t node_lo = num_nodes * t / tasks;
    size_t node_hi = num_nodes * (t + 1) / tasks;
    pool->Submit(&group, [device, &children, &finished, level, cap, n,
                          node_lo, node_hi] {
      std::vector<std::byte> buf(device->block_size());
      // One stager per task: the task's pages are disjoint and
      // preallocated, so per-task batches commute byte-wise; the stager
      // drains on destruction, inside WaitFor's barrier.
      WriteStager stager(device);
      for (size_t i = node_lo; i < node_hi; ++i) {
        NodeView<D> node(buf.data(), device->block_size());
        node.Format(static_cast<uint16_t>(level));
        size_t lo = i * cap;
        size_t hi = std::min(n, lo + cap);
        for (size_t j = lo; j < hi; ++j) {
          node.Append(children[j].mbr, children[j].page);
        }
        finished[i].mbr = node.ComputeMbr();
        stager.Stage(finished[i].page, buf.data());
      }
    });
  }
  pool->WaitFor(&group);
  return finished;
}

/// \brief Builds the upper levels of `tree` by repeatedly packing
/// `level0` (finished leaves, in the loader's order) until one node
/// remains, then installs the root.
///
/// \param tree       destination tree (must be empty).
/// \param level0     the finished leaf level.
/// \param data_count number of data records stored in the leaves.
/// \param pool       optional pool for concurrent node serialization.
template <int D>
void PackUpward(RTree<D>* tree, std::vector<LevelEntry<D>> level0,
                size_t data_count, ThreadPool* pool = nullptr) {
  PRTREE_CHECK(tree->empty());
  PRTREE_CHECK(!level0.empty());
  std::vector<LevelEntry<D>> level = std::move(level0);
  int height = 0;
  while (level.size() > 1) {
    ++height;
    level = PackLevel(tree->device(), level, height, pool);
  }
  tree->SetRoot(level.front().page, height, data_count);
}

}  // namespace prtree

#endif  // PRTREE_RTREE_BUILDER_H_
