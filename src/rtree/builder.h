// Shared node-writing helpers for bulk loaders.
//
// All one-dimensional-ordering loaders (packed Hilbert, 4-D Hilbert, STR)
// and the final stages of PR/TGS construction share the same mechanics:
// write runs of records as full leaves, then repeatedly pack each level's
// (MBR, page) entries into parent nodes until a single root remains
// ("bottom-up level-by-level", §1.1 [10, 15, 18]).

#ifndef PRTREE_RTREE_BUILDER_H_
#define PRTREE_RTREE_BUILDER_H_

#include <vector>

#include "rtree/rtree.h"

namespace prtree {

/// An entry of a tree level under construction: a finished node and its MBR.
template <int D>
struct LevelEntry {
  Rect<D> mbr;
  PageId page;
};

/// \brief Incrementally packs records (or child entries) into node blocks of
/// a fixed level, emitting a LevelEntry per finished node.
///
/// Feeding entries in the loader's chosen order and cutting every
/// `target_fill` entries yields the near-100 % space utilisation the paper
/// reports (§3.3).
template <int D>
class NodeWriter {
 public:
  /// \param device      destination device.
  /// \param level       tree level of the nodes written (0 = leaf).
  /// \param target_fill entries per node; defaults to full capacity.
  NodeWriter(BlockDevice* device, int level, size_t target_fill = 0)
      : device_(device),
        level_(level),
        buf_(device->block_size()),
        node_(buf_.data(), device->block_size()) {
    target_fill_ = target_fill == 0 ? node_.capacity() : target_fill;
    PRTREE_CHECK(target_fill_ >= 1 && target_fill_ <= node_.capacity());
    node_.Format(static_cast<uint16_t>(level_));
  }

  /// Adds one entry, flushing a node when target_fill is reached.
  void Add(const Rect<D>& rect, uint32_t id) {
    node_.Append(rect, id);
    if (node_.count() >= target_fill_) FlushNode();
  }

  /// Flushes any partial node and returns the finished level.
  std::vector<LevelEntry<D>> Finish() {
    if (node_.count() > 0) FlushNode();
    return std::move(finished_);
  }

 private:
  void FlushNode() {
    PageId page = device_->Allocate();
    Rect<D> mbr = node_.ComputeMbr();
    AbortIfError(device_->Write(page, buf_.data()));
    finished_.push_back(LevelEntry<D>{mbr, page});
    node_.Format(static_cast<uint16_t>(level_));
  }

  BlockDevice* device_;
  int level_;
  size_t target_fill_;
  std::vector<std::byte> buf_;
  NodeView<D> node_;
  std::vector<LevelEntry<D>> finished_;
};

/// \brief Packs consecutive runs of `children` into parent nodes at `level`.
template <int D>
std::vector<LevelEntry<D>> PackLevel(BlockDevice* device,
                                     const std::vector<LevelEntry<D>>& children,
                                     int level) {
  NodeWriter<D> writer(device, level);
  for (const auto& child : children) writer.Add(child.mbr, child.page);
  return writer.Finish();
}

/// \brief Builds the upper levels of `tree` by repeatedly packing
/// `level0` (finished leaves, in the loader's order) until one node
/// remains, then installs the root.
///
/// \param tree       destination tree (must be empty).
/// \param level0     the finished leaf level.
/// \param data_count number of data records stored in the leaves.
template <int D>
void PackUpward(RTree<D>* tree, std::vector<LevelEntry<D>> level0,
                size_t data_count) {
  PRTREE_CHECK(tree->empty());
  PRTREE_CHECK(!level0.empty());
  std::vector<LevelEntry<D>> level = std::move(level0);
  int height = 0;
  while (level.size() > 1) {
    ++height;
    level = PackLevel(tree->device(), level, height);
  }
  tree->SetRoot(level.front().page, height, data_count);
}

}  // namespace prtree

#endif  // PRTREE_RTREE_BUILDER_H_
