// JournaledTree: a crash-consistent dynamic R-tree on a file-backed device.
//
// Ties the pieces together — a FileBlockDevice (or its io_uring subclass),
// an RTree, a Guttman or R* updater running in journaled copy-on-write
// mode (rtree/update_io.h), and the update journal (io/journal.h) — into
// the durability story the pieces individually only enable:
//
//   Create()  fresh device + empty tree + bootstrap checkpoint.
//   Insert()/Delete()  one journaled op each: record frame staged, tree
//             pages shadowed, commit frame flushed last.  The block write
//             of the commit frame is the durable point; kill the process
//             anywhere and the tree recovers to exactly the ops whose
//             commit landed — a prefix of the applied sequence.
//   Open()    recovery: validate the anchor, scan the journal, point the
//             tree at the newest durable commit, discard (truncate) any
//             torn tail, sweep pages nothing reaches back to the free
//             list, and rotate to a fresh journal epoch.
//
// Concurrency: Insert/Delete/Checkpoint serialise on an internal mutex —
// the updaters are single-writer by design, so an 8-thread update storm
// is safe but not parallel (tools/crash_torture drives exactly that).
// Queries need no lock: read through tree().Query* as usual.
//
// Recovery state machine (docs/DURABILITY.md spells out each arrow):
//
//   read meta ──no anchor──▶ plain AttachTree ──▶ bootstrap checkpoint
//      │ anchor
//      ▼
//   adopt orphan pages ─▶ scan journal ─▶ root := last commit (else meta)
//      ─▶ validate tree ─▶ reachability sweep ─▶ adopt + checkpoint
//
// All recovery reads go through ReadMeta and the sweep/journal writes
// through the kMeta channel, so recovery never moves the demand I/O
// counters the experiments report.

#ifndef PRTREE_RTREE_JOURNALED_TREE_H_
#define PRTREE_RTREE_JOURNALED_TREE_H_

#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "io/file_block_device.h"
#include "io/journal.h"
#include "io/uring_block_device.h"
#include "rtree/persist.h"
#include "rtree/rstar.h"
#include "rtree/rtree.h"
#include "rtree/update.h"
#include "rtree/validate.h"

namespace prtree {

template <int D = 2>
class JournaledTree {
 public:
  using RectT = Rect<D>;
  using RecordT = Record<D>;

  struct Options {
    /// "file" (pread/pwrite) or "uring" (io_uring-batched) — the two
    /// file-backed backends share one on-disk format, so a tree written
    /// under either recovers under the other.
    std::string backend = "file";
    FileDeviceOptions device;
    JournalOptions journal;

    /// Updater heuristic: Guttman (default) or R*.
    bool use_rstar = false;
    SplitPolicy policy = SplitPolicy::kQuadratic;
    double min_fill = 0.4;

    /// Run ValidateTree on the recovered tree inside Open().
    bool validate_on_open = true;

    /// Checkpoint in the destructor so a clean close leaves an empty
    /// journal (and a plain AttachTree-compatible file).  Tests that
    /// simulate in-process crashes turn this off.
    bool checkpoint_on_close = true;
  };

  /// One committed logical op recovered from the journal.
  struct RecoveredOp {
    JournalFrameType type;  // kInsert or kDelete
    RecordT record;
    uint64_t seq;
  };

  /// What Open() found and did.
  struct RecoveryReport {
    bool recovered = false;        // the journal held frames to apply
    uint64_t committed_ops = 0;    // commits honoured this epoch
    size_t truncated_frames = 0;   // torn-tail frames discarded
    size_t swept_pages = 0;        // unreachable pages returned to free list
    size_t adopted_pages = 0;      // post-checkpoint pages made visible
    std::vector<RecoveredOp> ops;  // the committed record stream, in order
  };

  /// Creates (truncating) a fresh journaled index at `path`.
  static Status Create(const std::string& path, const Options& opts,
                       std::unique_ptr<JournaledTree>* out) {
    out->reset();
    Options o = opts;
    o.device.truncate = true;
    o.device.must_exist = false;
    std::unique_ptr<JournaledTree> t(new JournaledTree(o));
    PRTREE_RETURN_NOT_OK(OpenDevice(o, path, &t->device_));
    t->Init();
    PRTREE_RETURN_NOT_OK(t->journal_->Checkpoint(t->MetaBuilderFn()));
    *out = std::move(t);
    return Status::OK();
  }

  /// Opens an existing index, running crash recovery when the journal
  /// holds anything.  Also the upgrade path: a plain (PersistTree'd,
  /// journal-less) index attaches and gains a journal.
  static Status Open(const std::string& path, const Options& opts,
                     std::unique_ptr<JournaledTree>* out,
                     RecoveryReport* report = nullptr) {
    out->reset();
    RecoveryReport local;
    RecoveryReport* rep = report != nullptr ? report : &local;
    *rep = RecoveryReport{};

    Options o = opts;
    o.device.truncate = false;
    o.device.must_exist = true;
    std::unique_ptr<JournaledTree> t(new JournaledTree(o));
    PRTREE_RETURN_NOT_OK(OpenDevice(o, path, &t->device_));
    t->Init();
    FileBlockDevice* dev = t->device_.get();

    using persist_internal::TreeMetaRecord;
    TreeMetaRecord meta{};
    if (dev->GetUserMeta(&meta, sizeof(meta)) < sizeof(meta)) {
      return Status::NotFound("device holds no persisted tree metadata");
    }
    if (meta.magic != persist_internal::kTreeMetaMagic) {
      return Status::Corruption("bad tree metadata magic");
    }
    if (meta.version != persist_internal::kTreeMetaVersion) {
      return Status::Corruption("unsupported tree metadata version");
    }
    if (meta.dimension != static_cast<uint32_t>(D)) {
      return Status::InvalidArgument("persisted tree dimension mismatch");
    }

    JournalAnchor anchor{};
    bool anchor_present = false;
    PRTREE_RETURN_NOT_OK(ReadJournalAnchor(*dev, &anchor, &anchor_present));
    if (!anchor_present) {
      // Journal-less index: the plain attach path (with its staleness
      // checks) applies, then the bootstrap checkpoint journals it.
      if (meta.journal_epoch != 0) {
        return Status::Corruption(
            "tree metadata names a journal epoch but the device holds no "
            "journal anchor");
      }
      PRTREE_RETURN_NOT_OK(AttachTree(dev, &*t->tree_));
      t->tree_->Publish();
      PRTREE_RETURN_NOT_OK(t->journal_->Checkpoint(t->MetaBuilderFn()));
      if (o.validate_on_open) {
        PRTREE_RETURN_NOT_OK(ValidateTree(*t->tree_));
      }
      *out = std::move(t);
      return Status::OK();
    }
    if (meta.journal_epoch != anchor.epoch) {
      return Status::Corruption(
          "tree metadata and journal anchor disagree on the epoch");
    }

    // Pages allocated after the checkpoint (committed ops' shadow pages
    // among them) are invisible to the reopened superblock — adopt them
    // before touching the root.
    rep->adopted_pages = dev->AdoptOrphanPages();

    JournalScan scan;
    PRTREE_RETURN_NOT_OK(ScanJournal(*dev, anchor, &scan));

    PageId root = scan.has_commit ? scan.commit_root : meta.root;
    const int height =
        scan.has_commit ? static_cast<int>(scan.commit_height) : meta.height;
    const uint64_t size =
        scan.has_commit ? scan.commit_size : meta.record_count;
    if (root != kInvalidPageId) {
      std::vector<std::byte> buf(dev->block_size());
      Status st = dev->ReadMeta(root, buf.data());
      if (!st.ok()) {
        return Status::Corruption("recovered root page is not readable: " +
                                  st.message());
      }
      if (!ConstNodeView<D>(buf.data(), dev->block_size()).IsFormatted()) {
        return Status::Corruption("recovered root page is not a node");
      }
      t->tree_->SetRoot(root, height, size);
    }
    t->tree_->Publish();
    if (o.validate_on_open) {
      PRTREE_RETURN_NOT_OK(ValidateTree(*t->tree_));
    }

    // Everything the recovered tree and the scanned journal region do not
    // reach goes back to the free list: uncommitted shadow pages, pages
    // retired by committed ops, checkpoint-crash leftovers.  This is what
    // keeps num_allocated leak-free across any crash point.
    rep->swept_pages = t->SweepUnreachable(scan.region);

    // Rotate to a fresh epoch so the scanned region (torn tail included)
    // is logically truncated and physically freed.
    t->journal_->AdoptRecovered(scan);
    PRTREE_RETURN_NOT_OK(t->journal_->Checkpoint(t->MetaBuilderFn()));

    rep->recovered = scan.committed_ops > 0 || scan.truncated_frames > 0;
    rep->committed_ops = scan.committed_ops;
    rep->truncated_frames = scan.truncated_frames;
    rep->ops.reserve(scan.committed.size());
    for (const JournalOpRecord& op : scan.committed) {
      RecoveredOp r;
      r.type = op.type;
      r.seq = op.seq;
      if (DecodeJournalRecord(op, D, r.record.rect.lo.data(),
                              r.record.rect.hi.data(), &r.record.id)) {
        rep->ops.push_back(std::move(r));
      }
    }
    *out = std::move(t);
    return Status::OK();
  }

  ~JournaledTree() {
    if (opts_.checkpoint_on_close && journal_ != nullptr &&
        dirty_ops_ != 0) {
      // Best effort — a failure here is the crash case Open() recovers.
      (void)journal_->Checkpoint(MetaBuilderFn());
    }
  }

  JournaledTree(const JournaledTree&) = delete;
  JournaledTree& operator=(const JournaledTree&) = delete;

  /// Journaled insert: serialised, auto-checkpointing when the region
  /// runs low.  Durable once the call returns.
  Status Insert(const RecordT& rec) {
    std::lock_guard<std::mutex> lock(mu_);
    PRTREE_RETURN_NOT_OK(MaybeCheckpointLocked());
    if (rstar_ != nullptr) {
      rstar_->Insert(rec);
    } else {
      guttman_->Insert(rec);
    }
    ++dirty_ops_;
    return Status::OK();
  }

  /// Journaled delete; *deleted reports whether the record existed.
  Status Delete(const RecordT& rec, bool* deleted = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    PRTREE_RETURN_NOT_OK(MaybeCheckpointLocked());
    const bool d =
        rstar_ != nullptr ? rstar_->Delete(rec) : guttman_->Delete(rec);
    if (deleted != nullptr) *deleted = d;
    if (d) ++dirty_ops_;
    return Status::OK();
  }

  /// Forces a journal checkpoint (durable meta, empty journal, reclaimed
  /// retired pages).
  Status Checkpoint() {
    std::lock_guard<std::mutex> lock(mu_);
    return CheckpointLocked();
  }

  RTree<D>& tree() { return *tree_; }
  const RTree<D>& tree() const { return *tree_; }
  FileBlockDevice* device() { return device_.get(); }
  JournalWriter& journal() { return *journal_; }
  const Options& options() const { return opts_; }

 private:
  explicit JournaledTree(const Options& opts) : opts_(opts) {}

  static Status OpenDevice(const Options& o, const std::string& path,
                           std::unique_ptr<FileBlockDevice>* dev) {
    if (o.backend == "uring") {
      UringDeviceOptions uopts;
      uopts.file = o.device;
      std::unique_ptr<UringBlockDevice> u;
      PRTREE_RETURN_NOT_OK(UringBlockDevice::Open(path, uopts, &u));
      *dev = std::move(u);
      return Status::OK();
    }
    if (o.backend == "file") {
      return FileBlockDevice::Open(path, o.device, dev);
    }
    return Status::InvalidArgument("unknown journaled-tree backend '" +
                                   o.backend + "' (file|uring)");
  }

  void Init() {
    tree_.emplace(device_.get());
    journal_ = std::make_unique<JournalWriter>(device_.get(), opts_.journal);
    if (opts_.use_rstar) {
      rstar_ = std::make_unique<RStarUpdater<D>>(
          &*tree_, opts_.min_fill, /*reinsert_frac=*/0.3,
          /*pool=*/nullptr, /*epochs=*/nullptr, journal_.get());
    } else {
      guttman_ = std::make_unique<RTreeUpdater<D>>(
          &*tree_, opts_.policy, opts_.min_fill, /*pool=*/nullptr,
          /*epochs=*/nullptr, journal_.get());
    }
  }

  JournalWriter::MetaBuilder MetaBuilderFn() {
    return [this](void* buf, size_t cap, uint32_t epoch, uint64_t allocated,
                  uint64_t peak_allocated) -> size_t {
      using persist_internal::TreeMetaRecord;
      TreeMetaRecord meta{persist_internal::kTreeMetaMagic,
                          persist_internal::kTreeMetaVersion,
                          static_cast<uint32_t>(D),
                          tree_->empty() ? 0 : tree_->height(),
                          tree_->empty() ? kInvalidPageId : tree_->root(),
                          epoch,
                          tree_->size(),
                          allocated,
                          peak_allocated};
      PRTREE_CHECK(sizeof(meta) <= cap);
      std::memcpy(buf, &meta, sizeof(meta));
      return sizeof(meta);
    };
  }

  Status CheckpointLocked() {
    PRTREE_RETURN_NOT_OK(journal_->Checkpoint(MetaBuilderFn()));
    dirty_ops_ = 0;
    return Status::OK();
  }

  Status MaybeCheckpointLocked() {
    if (!journal_->NeedsCheckpoint()) return Status::OK();
    return CheckpointLocked();
  }

  /// Marks every page the tree and `keep` reach, frees the rest.
  size_t SweepUnreachable(const std::vector<PageId>& keep) {
    FileBlockDevice* dev = device_.get();
    std::vector<uint8_t> mark(dev->num_pages(), 0);
    for (PageId p : keep) {
      if (p < mark.size()) mark[p] = 1;
    }
    if (!tree_->empty()) {
      std::vector<PageId> stack{tree_->root()};
      std::vector<std::byte> buf(dev->block_size());
      while (!stack.empty()) {
        PageId p = stack.back();
        stack.pop_back();
        if (p >= mark.size() || mark[p] != 0) continue;
        mark[p] = 1;
        if (!dev->ReadMeta(p, buf.data()).ok()) continue;
        ConstNodeView<D> node(buf.data(), dev->block_size());
        if (!node.IsFormatted() || node.is_leaf()) continue;
        for (int i = 0; i < node.count(); ++i) {
          stack.push_back(node.GetId(i));
        }
      }
    }
    size_t swept = 0;
    const size_t n = dev->num_pages();
    for (PageId p = 0; p < n; ++p) {
      if (mark[p] == 0 && dev->IsAllocated(p)) {
        dev->Free(p);
        ++swept;
      }
    }
    return swept;
  }

  Options opts_;
  std::unique_ptr<FileBlockDevice> device_;
  std::optional<RTree<D>> tree_;
  std::unique_ptr<JournalWriter> journal_;
  std::unique_ptr<RTreeUpdater<D>> guttman_;  // null when use_rstar
  std::unique_ptr<RStarUpdater<D>> rstar_;    // null unless use_rstar
  std::mutex mu_;           // serialises updates and checkpoints
  uint64_t dirty_ops_ = 0;  // committed ops since the last checkpoint
};

}  // namespace prtree

#endif  // PRTREE_RTREE_JOURNALED_TREE_H_
