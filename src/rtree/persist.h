// Tree snapshots: save a bulk-loaded (or updated) R-tree to a host file
// and load it back onto any device.
//
// An adopted index library must outlive the process; the paper's trees
// live on disk by construction (§3.1).  The snapshot format is
// position-independent: pages are written in BFS order and child PageIds
// are remapped to BFS indices on save and back to freshly allocated pages
// on load, so a snapshot can be restored onto a device with any allocation
// state (only the block size must match).
//
// Layout:  header { magic, version, block_size, D, height, page_count,
//                   record_count } followed by page_count raw blocks.

#ifndef PRTREE_RTREE_PERSIST_H_
#define PRTREE_RTREE_PERSIST_H_

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtree/rtree.h"
#include "util/status.h"

namespace prtree {

namespace persist_internal {

inline constexpr uint32_t kSnapshotMagic = 0x50525453u;  // "PRTS"
inline constexpr uint32_t kSnapshotVersion = 1;

struct SnapshotHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t block_size;
  uint32_t dimension;
  int32_t height;
  uint32_t page_count;
  uint64_t record_count;
};

}  // namespace persist_internal

/// \brief Writes `tree` to `path`.  The tree is unchanged.
template <int D>
Status SaveTree(const RTree<D>& tree, const std::string& path) {
  using persist_internal::SnapshotHeader;
  if (tree.empty()) {
    return Status::InvalidArgument("cannot snapshot an empty tree");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }

  // BFS order assigns every page its index in the snapshot.
  std::vector<PageId> bfs{tree.root()};
  std::unordered_map<PageId, uint32_t> index{{tree.root(), 0}};
  std::vector<std::byte> buf(tree.block_size());
  for (size_t i = 0; i < bfs.size(); ++i) {
    Status st = tree.device()->Read(bfs[i], buf.data());
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
    NodeView<D> node(buf.data(), tree.block_size());
    if (node.is_leaf()) continue;
    for (int e = 0; e < node.count(); ++e) {
      PageId child = node.GetId(e);
      index.emplace(child, static_cast<uint32_t>(bfs.size()));
      bfs.push_back(child);
    }
  }

  SnapshotHeader header{persist_internal::kSnapshotMagic,
                        persist_internal::kSnapshotVersion,
                        static_cast<uint32_t>(tree.block_size()),
                        static_cast<uint32_t>(D),
                        tree.height(),
                        static_cast<uint32_t>(bfs.size()),
                        tree.size()};
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("short write of snapshot header");
  }
  for (PageId page : bfs) {
    AbortIfError(tree.device()->Read(page, buf.data()));
    NodeView<D> node(buf.data(), tree.block_size());
    if (!node.is_leaf()) {
      for (int e = 0; e < node.count(); ++e) {
        node.SetEntry(e, node.GetRect(e), index.at(node.GetId(e)));
      }
    }
    if (std::fwrite(buf.data(), tree.block_size(), 1, f) != 1) {
      std::fclose(f);
      return Status::IoError("short write of snapshot page");
    }
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed");
  return Status::OK();
}

/// \brief Loads a snapshot from `path` into `tree` (must be empty; its
/// device's block size must match the snapshot's).
template <int D>
Status LoadTree(const std::string& path, RTree<D>* tree) {
  using persist_internal::SnapshotHeader;
  if (!tree->empty()) {
    return Status::InvalidArgument("output tree is not empty");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);

  SnapshotHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::Corruption("short read of snapshot header");
  }
  if (header.magic != persist_internal::kSnapshotMagic) {
    std::fclose(f);
    return Status::Corruption("bad snapshot magic");
  }
  if (header.version != persist_internal::kSnapshotVersion) {
    std::fclose(f);
    return Status::Corruption("unsupported snapshot version");
  }
  if (header.dimension != static_cast<uint32_t>(D)) {
    std::fclose(f);
    return Status::InvalidArgument("snapshot dimension mismatch");
  }
  if (header.block_size != tree->block_size()) {
    std::fclose(f);
    return Status::InvalidArgument("snapshot block size mismatch");
  }
  if (header.page_count == 0) {
    std::fclose(f);
    return Status::Corruption("snapshot with zero pages");
  }

  // Allocate destination pages up front so BFS indices can be remapped.
  std::vector<PageId> pages(header.page_count);
  for (auto& p : pages) p = tree->device()->Allocate();

  std::vector<std::byte> buf(tree->block_size());
  for (uint32_t i = 0; i < header.page_count; ++i) {
    if (std::fread(buf.data(), tree->block_size(), 1, f) != 1) {
      std::fclose(f);
      for (auto p : pages) tree->device()->Free(p);
      return Status::Corruption("snapshot truncated at page " +
                                std::to_string(i));
    }
    NodeView<D> node(buf.data(), tree->block_size());
    if (!node.IsFormatted()) {
      std::fclose(f);
      for (auto p : pages) tree->device()->Free(p);
      return Status::Corruption("snapshot page " + std::to_string(i) +
                                " is not a node");
    }
    if (!node.is_leaf()) {
      for (int e = 0; e < node.count(); ++e) {
        uint32_t idx = node.GetId(e);
        if (idx >= header.page_count) {
          std::fclose(f);
          for (auto p : pages) tree->device()->Free(p);
          return Status::Corruption("snapshot child index out of range");
        }
        node.SetEntry(e, node.GetRect(e), pages[idx]);
      }
    }
    AbortIfError(tree->device()->Write(pages[i], buf.data()));
  }
  std::fclose(f);
  tree->SetRoot(pages[0], header.height, header.record_count);
  return Status::OK();
}

}  // namespace prtree

#endif  // PRTREE_RTREE_PERSIST_H_
