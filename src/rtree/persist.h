// Tree persistence.  An adopted index library must outlive the process;
// the paper's trees live on disk by construction (§3.1).  Two mechanisms:
//
// 1. Snapshots (SaveTree/LoadTree): copy a tree out to a standalone host
//    file and restore it onto ANY device — either backend, any allocation
//    state.  The format is position-independent: pages are written in BFS
//    order and child PageIds are remapped to BFS indices on save and back
//    to freshly allocated pages on load (only the block size must match).
//    Layout: header { magic, version, block_size, D, height, page_count,
//    record_count } followed by page_count raw blocks.
//
// 2. In-place reopen (PersistTree/AttachTree): when the tree already lives
//    on a FileBlockDevice, the device file IS the index.  PersistTree
//    stores the tree's root metadata in the device's superblock and
//    Sync()s; AttachTree reads it back after reopening the file, with no
//    page copying or remapping — the crash-reopen path.  This is how the
//    CLI and the examples open file-backed indexes.

#ifndef PRTREE_RTREE_PERSIST_H_
#define PRTREE_RTREE_PERSIST_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/file_block_device.h"
#include "io/journal.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace prtree {

namespace persist_internal {

inline constexpr uint32_t kSnapshotMagic = 0x50525453u;  // "PRTS"
inline constexpr uint32_t kSnapshotVersion = 1;

struct SnapshotHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t block_size;
  uint32_t dimension;
  int32_t height;
  uint32_t page_count;
  uint64_t record_count;
};

inline constexpr uint32_t kTreeMetaMagic = 0x5052544Du;  // "PRTM"
inline constexpr uint32_t kTreeMetaVersion = 1;

/// Root metadata stored in a FileBlockDevice's superblock user-meta region
/// by PersistTree (48 bytes, well under kUserMetaCapacity).  The
/// allocation counters snapshot the device at persist time: any
/// Allocate/Free after PersistTree (updates allocate and free pages) makes
/// the record stale, and AttachTree detects the mismatch rather than
/// attaching to a root that may have moved.
struct TreeMetaRecord {
  uint32_t magic;
  uint32_t version;
  uint32_t dimension;
  int32_t height;
  uint32_t root;
  uint32_t journal_epoch;   // 0: no journal; else must match the anchor
  uint64_t record_count;
  uint64_t allocated;       // device num_allocated() at persist time
  uint64_t peak_allocated;  // device peak_allocated() at persist time
};
static_assert(sizeof(TreeMetaRecord) <= FileBlockDevice::kUserMetaCapacity);

}  // namespace persist_internal

/// \brief Writes `tree` to `path`.  The tree is unchanged.
template <int D>
Status SaveTree(const RTree<D>& tree, const std::string& path) {
  using persist_internal::SnapshotHeader;
  if (tree.empty()) {
    return Status::InvalidArgument("cannot snapshot an empty tree");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }

  // BFS order assigns every page its index in the snapshot.
  std::vector<PageId> bfs{tree.root()};
  std::unordered_map<PageId, uint32_t> index{{tree.root(), 0}};
  std::vector<std::byte> buf(tree.block_size());
  for (size_t i = 0; i < bfs.size(); ++i) {
    Status st = tree.device()->Read(bfs[i], buf.data());
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
    NodeView<D> node(buf.data(), tree.block_size());
    if (node.is_leaf()) continue;
    for (int e = 0; e < node.count(); ++e) {
      PageId child = node.GetId(e);
      index.emplace(child, static_cast<uint32_t>(bfs.size()));
      bfs.push_back(child);
    }
  }

  SnapshotHeader header{persist_internal::kSnapshotMagic,
                        persist_internal::kSnapshotVersion,
                        static_cast<uint32_t>(tree.block_size()),
                        static_cast<uint32_t>(D),
                        tree.height(),
                        static_cast<uint32_t>(bfs.size()),
                        tree.size()};
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("short write of snapshot header");
  }
  for (PageId page : bfs) {
    AbortIfError(tree.device()->Read(page, buf.data()));
    NodeView<D> node(buf.data(), tree.block_size());
    if (!node.is_leaf()) {
      for (int e = 0; e < node.count(); ++e) {
        node.SetEntry(e, node.GetRect(e), index.at(node.GetId(e)));
      }
    }
    if (std::fwrite(buf.data(), tree.block_size(), 1, f) != 1) {
      std::fclose(f);
      return Status::IoError("short write of snapshot page");
    }
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed");
  return Status::OK();
}

/// \brief Loads a snapshot from `path` into `tree` (must be empty; its
/// device's block size must match the snapshot's).
template <int D>
Status LoadTree(const std::string& path, RTree<D>* tree) {
  using persist_internal::SnapshotHeader;
  if (!tree->empty()) {
    return Status::InvalidArgument("output tree is not empty");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);

  SnapshotHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::Corruption("short read of snapshot header");
  }
  if (header.magic != persist_internal::kSnapshotMagic) {
    std::fclose(f);
    return Status::Corruption("bad snapshot magic");
  }
  if (header.version != persist_internal::kSnapshotVersion) {
    std::fclose(f);
    return Status::Corruption("unsupported snapshot version");
  }
  if (header.dimension != static_cast<uint32_t>(D)) {
    std::fclose(f);
    return Status::InvalidArgument("snapshot dimension mismatch");
  }
  if (header.block_size != tree->block_size()) {
    std::fclose(f);
    return Status::InvalidArgument("snapshot block size mismatch");
  }
  if (header.page_count == 0) {
    std::fclose(f);
    return Status::Corruption("snapshot with zero pages");
  }

  // Allocate destination pages up front so BFS indices can be remapped.
  std::vector<PageId> pages(header.page_count);
  for (auto& p : pages) p = tree->device()->Allocate();

  std::vector<std::byte> buf(tree->block_size());
  for (uint32_t i = 0; i < header.page_count; ++i) {
    if (std::fread(buf.data(), tree->block_size(), 1, f) != 1) {
      std::fclose(f);
      for (auto p : pages) tree->device()->Free(p);
      return Status::Corruption("snapshot truncated at page " +
                                std::to_string(i));
    }
    NodeView<D> node(buf.data(), tree->block_size());
    if (!node.IsFormatted()) {
      std::fclose(f);
      for (auto p : pages) tree->device()->Free(p);
      return Status::Corruption("snapshot page " + std::to_string(i) +
                                " is not a node");
    }
    if (!node.is_leaf()) {
      for (int e = 0; e < node.count(); ++e) {
        uint32_t idx = node.GetId(e);
        if (idx >= header.page_count) {
          std::fclose(f);
          for (auto p : pages) tree->device()->Free(p);
          return Status::Corruption("snapshot child index out of range");
        }
        node.SetEntry(e, node.GetRect(e), pages[idx]);
      }
    }
    AbortIfError(tree->device()->Write(pages[i], buf.data()));
  }
  std::fclose(f);
  tree->SetRoot(pages[0], header.height, header.record_count);
  return Status::OK();
}

/// \brief Records `tree`'s root metadata in its FileBlockDevice's
/// superblock and Sync()s, making the device file a self-describing,
/// reopenable index.  The tree must live on `device`.
template <int D>
Status PersistTree(const RTree<D>& tree, FileBlockDevice* device) {
  using persist_internal::TreeMetaRecord;
  if (tree.device() != device) {
    return Status::InvalidArgument("tree does not live on this device");
  }
  if (tree.empty()) {
    return Status::InvalidArgument("cannot persist an empty tree");
  }
  // journal_epoch 0 and a 48-byte user-meta write: persisting through this
  // plain path deliberately detaches any journal anchor the device held —
  // the caller is declaring this meta record the whole truth.  Journaled
  // trees persist through JournalWriter::Checkpoint instead.
  TreeMetaRecord meta{persist_internal::kTreeMetaMagic,
                      persist_internal::kTreeMetaVersion,
                      static_cast<uint32_t>(D),
                      tree.height(),
                      tree.root(),
                      0,
                      tree.size(),
                      device->num_allocated(),
                      device->peak_allocated()};
  PRTREE_RETURN_NOT_OK(device->SetUserMeta(&meta, sizeof(meta)));
  return device->Sync();
}

/// \brief Reattaches `tree` (must be empty and constructed over `device`)
/// to the root recorded by a prior PersistTree on the same file.  No pages
/// move: the device file already holds the tree.
template <int D>
Status AttachTree(FileBlockDevice* device, RTree<D>* tree) {
  using persist_internal::TreeMetaRecord;
  if (tree->device() != device) {
    return Status::InvalidArgument("tree is not constructed over this device");
  }
  if (!tree->empty()) {
    return Status::InvalidArgument("output tree is not empty");
  }
  TreeMetaRecord meta{};
  size_t len = device->GetUserMeta(&meta, sizeof(meta));
  if (len < sizeof(meta)) {
    return Status::NotFound("device holds no persisted tree metadata");
  }
  if (meta.magic != persist_internal::kTreeMetaMagic) {
    return Status::Corruption("bad tree metadata magic");
  }
  if (meta.version != persist_internal::kTreeMetaVersion) {
    return Status::Corruption("unsupported tree metadata version");
  }
  if (meta.dimension != static_cast<uint32_t>(D)) {
    return Status::InvalidArgument("persisted tree dimension mismatch");
  }
  // Journal validation: a journaled device may only attach through this
  // plain path when its journal is quiescent — the anchor matches the
  // meta record's epoch and no frames landed since the last checkpoint.
  // Anything else means there may be committed ops newer than the meta
  // record, which only JournaledTree::Open knows how to recover.
  JournalAnchor anchor{};
  bool anchor_present = false;
  PRTREE_RETURN_NOT_OK(ReadJournalAnchor(*device, &anchor, &anchor_present));
  if (anchor_present) {
    if (meta.journal_epoch != anchor.epoch) {
      return Status::Corruption(
          "journal epoch mismatch (meta epoch " +
          std::to_string(meta.journal_epoch) + ", anchor epoch " +
          std::to_string(anchor.epoch) +
          ") — recover via JournaledTree::Open");
    }
    bool pending = false;
    PRTREE_RETURN_NOT_OK(JournalPending(*device, anchor, &pending));
    if (pending) {
      return Status::Corruption(
          "device has unapplied journal frames — recover via "
          "JournaledTree::Open");
    }
  } else if (meta.journal_epoch != 0) {
    return Status::Corruption(
        "tree metadata names journal epoch " +
        std::to_string(meta.journal_epoch) +
        " but the device holds no journal anchor");
  }
  // Staleness check: updates after the last PersistTree allocate/free
  // pages (a root split even moves the root), so the device's allocation
  // state must still match the snapshot taken at persist time.
  if (meta.allocated != device->num_allocated() ||
      meta.peak_allocated != device->peak_allocated()) {
    return Status::Corruption(
        "tree metadata is stale (the device was mutated after the last "
        "PersistTree) — re-run PersistTree before closing");
  }
  // And the recorded root must be a live, formatted node.
  std::vector<std::byte> buf(tree->block_size());
  Status st = device->Read(meta.root, buf.data());
  if (!st.ok()) {
    return Status::Corruption("persisted root page is not readable: " +
                              st.message());
  }
  if (!NodeView<D>(buf.data(), tree->block_size()).IsFormatted()) {
    return Status::Corruption("persisted root page is not a node");
  }
  tree->SetRoot(meta.root, meta.height, meta.record_count);
  return Status::OK();
}

}  // namespace prtree

#endif  // PRTREE_RTREE_PERSIST_H_
