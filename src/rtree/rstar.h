// R*-tree insertion (Beckmann, Kriegel, Schneider, Seeger 1990) — the
// paper's reference [6] and the de-facto standard dynamic R-tree heuristic
// ("the PR-tree can be updated using any known update heuristic for
// R-trees", §4).  Provided alongside Guttman's algorithms so the update
// ablations can compare both heuristics against the logarithmic method.
//
// The three R* ingredients implemented here:
//  * ChooseSubtree — minimise *overlap* enlargement at the leaf level
//    (area enlargement higher up), Guttman minimises area only;
//  * forced reinsertion — on the first overflow per level per insertion,
//    the 30% of entries farthest from the node's centre are removed and
//    re-inserted, letting the tree reorganise without a split;
//  * topological split — split axis chosen by minimal margin sum over all
//    distributions, then the distribution with minimal overlap.

#ifndef PRTREE_RTREE_RSTAR_H_
#define PRTREE_RTREE_RSTAR_H_

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "rtree/rtree.h"
#include "rtree/update.h"
#include "rtree/update_io.h"

namespace prtree {

/// \brief R*-tree dynamic insertion over the shared block container.
///
/// Deletion is identical to Guttman's (the R* paper reuses it), so Delete
/// delegates to RTreeUpdater.
template <int D>
class RStarUpdater {
 public:
  using RectT = Rect<D>;
  using RecordT = Record<D>;

  /// \param min_fill         node fill floor as a fraction of capacity
  ///                         (R* recommends 0.4).
  /// \param reinsert_frac    fraction of entries force-reinserted on the
  ///                         first overflow per level (R* recommends 0.3).
  /// \param epochs           optional: switches both the R* insert path
  ///                         and the delegated Guttman delete path to
  ///                         copy-on-write for snapshot readers.
  /// \param journal          optional: logs both paths through the update
  ///                         journal (io/journal.h).  Mutually exclusive
  ///                         with `epochs`.
  explicit RStarUpdater(RTree<D>* tree, double min_fill = 0.4,
                        double reinsert_frac = 0.3,
                        BufferPool* pool = nullptr,
                        EpochManager* epochs = nullptr,
                        JournalWriter* journal = nullptr)
      : tree_(tree),
        guttman_(tree, SplitPolicy::kQuadratic, min_fill, pool, epochs,
                 journal),
        io_(tree, pool, epochs, journal) {
    PRTREE_CHECK(min_fill > 0.0 && min_fill <= 0.5);
    PRTREE_CHECK(reinsert_frac > 0.0 && reinsert_frac < 0.5);
    min_entries_ = std::max<size_t>(
        1, static_cast<size_t>(min_fill *
                               static_cast<double>(tree->capacity())));
    reinsert_count_ = std::max<size_t>(
        1, static_cast<size_t>(reinsert_frac *
                               static_cast<double>(tree->capacity())));
  }

  /// Inserts one record with the full R* overflow treatment.
  void Insert(const RecordT& rec) {
    io_.BeginInsert(rec);
    // Work queue of (rect, id, target level): forced reinsertion pushes
    // evicted entries here; each is allowed to trigger one reinsertion
    // per level, then splits take over (the R* rule).
    pending_.clear();
    pending_.push_back(Pending{rec.rect, rec.id, 0});
    reinserted_levels_.assign(
        static_cast<size_t>(std::max(tree_->height() + 2, 2)), false);
    while (!pending_.empty()) {
      Pending p = pending_.back();
      pending_.pop_back();
      InsertEntry(p.rect, p.id, p.level);
    }
    tree_->set_size(tree_->size() + 1);
    io_.EndOp();
  }

  /// Deletes the exactly matching record (Guttman/R* deletion).
  bool Delete(const RecordT& rec) { return guttman_.Delete(rec); }

 private:
  struct Pending {
    RectT rect;
    uint32_t id;
    int level;
  };

  struct InsertResult {
    PageId page;  // id now holding the node (shadow under copy-on-write)
    RectT mbr;
    std::optional<std::pair<RectT, PageId>> split;
  };

  void InsertEntry(const RectT& rect, uint32_t id, int target_level) {
    if (tree_->empty()) {
      PRTREE_CHECK(target_level == 0);
      std::vector<std::byte> buf(tree_->block_size());
      NodeView<D> node(buf.data(), tree_->block_size());
      node.Format(0);
      node.Append(rect, id);
      PageId page = io_.WriteNew(buf.data());
      tree_->SetRoot(page, 0, tree_->size());
      return;
    }
    PRTREE_CHECK(target_level <= tree_->height());
    InsertResult res =
        InsertRec(tree_->root(), tree_->height(), rect, id, target_level);
    if (res.split.has_value()) {
      GrowRoot(res.page, res.mbr, *res.split);
    } else if (res.page != tree_->root()) {
      tree_->SetRoot(res.page, tree_->height(), tree_->size());
    }
  }

  InsertResult InsertRec(PageId page, int level, const RectT& rect,
                         uint32_t id, int target_level) {
    std::vector<std::byte> buf(tree_->block_size());
    io_.Read(page, buf.data());
    NodeView<D> node(buf.data(), tree_->block_size());
    PRTREE_CHECK(node.level() == level);

    if (level == target_level) {
      if (!node.full()) {
        node.Append(rect, id);
        PageId out = io_.Write(page, buf.data());
        return InsertResult{out, node.ComputeMbr(), std::nullopt};
      }
      return OverflowTreatment(page, &node, buf.data(), rect, id, level);
    }

    int child_idx = ChooseSubtree(node, rect, level == target_level + 1);
    InsertResult child = InsertRec(node.GetId(child_idx), level - 1, rect,
                                   id, target_level);
    node.SetEntry(child_idx, child.mbr, child.page);
    if (!child.split.has_value()) {
      PageId out = io_.Write(page, buf.data());
      return InsertResult{out, node.ComputeMbr(), std::nullopt};
    }
    const auto& [split_mbr, split_page] = *child.split;
    if (!node.full()) {
      node.Append(split_mbr, split_page);
      PageId out = io_.Write(page, buf.data());
      return InsertResult{out, node.ComputeMbr(), std::nullopt};
    }
    return OverflowTreatment(page, &node, buf.data(), split_mbr, split_page,
                             level);
  }

  /// R* ChooseSubtree: at the level directly above the target, minimise
  /// overlap enlargement; higher up, minimise area enlargement (both with
  /// the R* tie-breaks).
  int ChooseSubtree(const NodeView<D>& node, const RectT& rect,
                    bool leaf_level) const {
    int n = node.count();
    int best = 0;
    if (leaf_level) {
      Real best_overlap = 0, best_enlarge = 0, best_area = 0;
      for (int i = 0; i < n; ++i) {
        RectT r = node.GetRect(i);
        RectT grown = RectT::Cover(r, rect);
        // Overlap enlargement of entry i against its siblings.
        Real overlap_delta = 0;
        for (int j = 0; j < n; ++j) {
          if (j == i) continue;
          RectT other = node.GetRect(j);
          overlap_delta +=
              grown.IntersectionArea(other) - r.IntersectionArea(other);
        }
        Real enlarge = grown.Area() - r.Area();
        Real area = r.Area();
        if (i == 0 || overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best = i;
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
      return best;
    }
    Real best_enlarge = 0, best_area = 0;
    for (int i = 0; i < n; ++i) {
      RectT r = node.GetRect(i);
      Real enlarge = r.Enlargement(rect);
      Real area = r.Area();
      if (i == 0 || enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best = i;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    return best;
  }

  /// R* OverflowTreatment: forced reinsertion on the first overflow at
  /// each level (except the root), split otherwise.
  InsertResult OverflowTreatment(PageId page, NodeView<D>* node,
                                 std::byte* buf, const RectT& rect,
                                 uint32_t id, int level) {
    if (level < tree_->height() &&
        level < static_cast<int>(reinserted_levels_.size()) &&
        !reinserted_levels_[level]) {
      reinserted_levels_[level] = true;
      return ForcedReinsert(page, node, buf, rect, id, level);
    }
    return SplitNode(page, node, buf, rect, id);
  }

  /// Removes the reinsert_count_ entries whose centres are farthest from
  /// the overflowing node's centre, queues them for re-insertion, and
  /// appends the new entry (which now fits).
  InsertResult ForcedReinsert(PageId page, NodeView<D>* node, std::byte* buf,
                              const RectT& rect, uint32_t id, int level) {
    struct Entry {
      RectT rect;
      uint32_t id;
      Real dist;
    };
    std::vector<Entry> entries;
    entries.reserve(node->count() + 1);
    RectT mbr = RectT::Cover(node->ComputeMbr(), rect);
    auto center_dist = [&](const RectT& r) {
      Real d2 = 0;
      for (int d = 0; d < D; ++d) {
        Real diff = r.Center(d) - mbr.Center(d);
        d2 += diff * diff;
      }
      return d2;
    };
    for (int i = 0; i < node->count(); ++i) {
      RectT r = node->GetRect(i);
      entries.push_back(Entry{r, node->GetId(i), center_dist(r)});
    }
    entries.push_back(Entry{rect, id, center_dist(rect)});
    // Farthest first.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.dist > b.dist; });

    size_t evict = std::min(reinsert_count_, entries.size() - min_entries_);
    for (size_t i = 0; i < evict; ++i) {
      pending_.push_back(Pending{entries[i].rect, entries[i].id, level});
    }
    uint16_t lvl = node->level();
    node->Format(lvl);
    for (size_t i = evict; i < entries.size(); ++i) {
      node->Append(entries[i].rect, entries[i].id);
    }
    PageId out = io_.Write(page, buf);
    return InsertResult{out, node->ComputeMbr(), std::nullopt};
  }

  /// R* topological split: axis by minimal margin sum, distribution by
  /// minimal overlap (ties: minimal total area).
  InsertResult SplitNode(PageId page, NodeView<D>* node, std::byte* buf,
                         const RectT& rect, uint32_t id) {
    struct Entry {
      RectT rect;
      uint32_t id;
    };
    std::vector<Entry> entries;
    const int total = node->count() + 1;
    entries.reserve(total);
    for (int i = 0; i < node->count(); ++i) {
      entries.push_back(Entry{node->GetRect(i), node->GetId(i)});
    }
    entries.push_back(Entry{rect, id});
    const int m = static_cast<int>(min_entries_);
    PRTREE_CHECK(total >= 2 * m);

    // For one sorted order, evaluate all legal prefix/suffix distributions.
    auto margins_of_order = [&](const std::vector<int>& order, Real* margin,
                                int* best_k, Real* best_overlap,
                                Real* best_area) {
      const int n = total;
      std::vector<RectT> prefix(n), suffix(n);
      RectT acc = RectT::Empty();
      for (int i = 0; i < n; ++i) {
        acc.ExtendToCover(entries[order[i]].rect);
        prefix[i] = acc;
      }
      acc = RectT::Empty();
      for (int i = n - 1; i >= 0; --i) {
        acc.ExtendToCover(entries[order[i]].rect);
        suffix[i] = acc;
      }
      *margin = 0;
      *best_overlap = std::numeric_limits<Real>::infinity();
      *best_area = std::numeric_limits<Real>::infinity();
      *best_k = m;
      for (int k = m; k <= n - m; ++k) {
        const RectT& a = prefix[k - 1];
        const RectT& b = suffix[k];
        *margin += a.Margin() + b.Margin();
        Real overlap = a.IntersectionArea(b);
        Real area = a.Area() + b.Area();
        if (overlap < *best_overlap ||
            (overlap == *best_overlap && area < *best_area)) {
          *best_overlap = overlap;
          *best_area = area;
          *best_k = k;
        }
      }
    };

    auto make_order = [&](int axis, bool by_hi) {
      std::vector<int> order(total);
      for (int i = 0; i < total; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        Real va = by_hi ? entries[a].rect.hi[axis] : entries[a].rect.lo[axis];
        Real vb = by_hi ? entries[b].rect.hi[axis] : entries[b].rect.lo[axis];
        if (va != vb) return va < vb;
        return entries[a].id < entries[b].id;
      });
      return order;
    };

    // ChooseSplitAxis: minimal margin summed over both orders of the axis.
    int best_axis = 0;
    Real best_axis_margin = std::numeric_limits<Real>::infinity();
    for (int axis = 0; axis < D; ++axis) {
      Real axis_margin = 0;
      for (int by_hi = 0; by_hi < 2; ++by_hi) {
        Real margin, overlap, area;
        int k;
        margins_of_order(make_order(axis, by_hi != 0), &margin, &k, &overlap,
                         &area);
        axis_margin += margin;
      }
      if (axis_margin < best_axis_margin) {
        best_axis_margin = axis_margin;
        best_axis = axis;
      }
    }
    // ChooseSplitIndex: minimal overlap (ties: area) over both orders of
    // the winning axis.
    std::vector<int> best_order;
    int best_k = m;
    Real best_overlap = std::numeric_limits<Real>::infinity();
    Real best_area = std::numeric_limits<Real>::infinity();
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::vector<int> order = make_order(best_axis, by_hi != 0);
      Real margin, overlap, area;
      int k;
      margins_of_order(order, &margin, &k, &overlap, &area);
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_order = std::move(order);
        best_k = k;
      }
    }

    uint16_t level = node->level();
    node->Format(level);
    for (int i = 0; i < best_k; ++i) {
      node->Append(entries[best_order[i]].rect, entries[best_order[i]].id);
    }
    PageId page_a = io_.Write(page, buf);
    RectT mbr_a = node->ComputeMbr();

    std::vector<std::byte> buf_b(tree_->block_size());
    NodeView<D> node_b(buf_b.data(), tree_->block_size());
    node_b.Format(level);
    for (int i = best_k; i < total; ++i) {
      node_b.Append(entries[best_order[i]].rect, entries[best_order[i]].id);
    }
    PageId page_b = io_.WriteNew(buf_b.data());
    return InsertResult{page_a, mbr_a,
                        std::make_pair(node_b.ComputeMbr(), page_b)};
  }

  void GrowRoot(PageId old_page, const RectT& old_mbr,
                const std::pair<RectT, PageId>& sibling) {
    std::vector<std::byte> buf(tree_->block_size());
    NodeView<D> node(buf.data(), tree_->block_size());
    int new_height = tree_->height() + 1;
    node.Format(static_cast<uint16_t>(new_height));
    node.Append(old_mbr, old_page);
    node.Append(sibling.first, sibling.second);
    PageId page = io_.WriteNew(buf.data());
    tree_->SetRoot(page, new_height, tree_->size());
    if (static_cast<size_t>(new_height) >= reinserted_levels_.size()) {
      reinserted_levels_.resize(new_height + 1, false);
    }
  }

  RTree<D>* tree_;
  RTreeUpdater<D> guttman_;  // deletion path
  UpdaterIO<D> io_;
  size_t min_entries_;
  size_t reinsert_count_;
  std::vector<Pending> pending_;
  std::vector<bool> reinserted_levels_;
};

}  // namespace prtree

#endif  // PRTREE_RTREE_RSTAR_H_
