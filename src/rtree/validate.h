// Structural validation of R-trees.
//
// Checks every invariant the paper's definitions imply (§1.1): all leaves on
// the bottom level, internal entries' MBRs exactly covering their subtrees,
// fan-out within capacity, and the stored record multiset matching the
// input.  Tests run these after every loader and after random update
// sequences; corruption aborts experiments before it can skew results.

#ifndef PRTREE_RTREE_VALIDATE_H_
#define PRTREE_RTREE_VALIDATE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "rtree/node_scan.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace prtree {

/// Options for ValidateTree.
struct ValidateOptions {
  /// Minimum entries per non-root node (0 disables the check; bulk-loaded
  /// trees are checked for packing separately, update tests pass the
  /// updater's floor).
  size_t min_entries = 0;
  /// If true, every leaf must sit at level 0 and depth must be uniform
  /// (guaranteed by construction via the level field; kept as a check
  /// against corruption).
  bool check_balance = true;
};

/// \brief Verifies structural invariants of `tree`; returns Corruption with
/// a description of the first violation found.
template <int D>
Status ValidateTree(const RTree<D>& tree,
                    const ValidateOptions& opts = ValidateOptions{}) {
  if (tree.empty()) {
    return tree.size() == 0
               ? Status::OK()
               : Status::Corruption("empty tree with nonzero size");
  }
  uint64_t entries_seen = 0;

  struct Item {
    PageId page;
    int expected_level;
    bool is_root;
    Rect<D> expected_mbr;
    bool check_mbr;
  };
  std::vector<Item> stack{{tree.root(), tree.height(), true, Rect<D>::Empty(),
                           false}};
  PageGuard guard;
  NodeScanner<D> scan;
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    Status st = ReadPage(*tree.device(), item.page, &guard);
    if (!st.ok()) return Status::Corruption("unreadable page: " +
                                            st.ToString());
    ConstNodeView<D> node(guard.data(), tree.block_size());
    if (!node.IsFormatted()) {
      return Status::Corruption("page " + std::to_string(item.page) +
                                " is not a formatted node");
    }
    if (opts.check_balance && node.level() != item.expected_level) {
      return Status::Corruption(
          "page " + std::to_string(item.page) + " at level " +
          std::to_string(node.level()) + ", expected " +
          std::to_string(item.expected_level));
    }
    if (node.count() == 0 && !item.is_root) {
      return Status::Corruption("empty non-root node " +
                                std::to_string(item.page));
    }
    if (!item.is_root && opts.min_entries > 0 &&
        node.count() < opts.min_entries) {
      return Status::Corruption("underfull node " + std::to_string(item.page) +
                                ": " + std::to_string(node.count()) + " < " +
                                std::to_string(opts.min_entries));
    }
    if (item.check_mbr) {
      if (node.ComputeMbr() != item.expected_mbr) {
        return Status::Corruption("stale parent MBR for page " +
                                  std::to_string(item.page));
      }
      // Batched cross-check: every entry must lie inside the parent's
      // claimed MBR.  Implied by the exact-union check above, so this is
      // really validating the kernel seam — the same BatchContainedIn the
      // query layers dispatch must agree with the scalar geometry on live
      // on-disk nodes of either layout.
      const uint64_t* inside = scan.ContainedInMask(node, item.expected_mbr);
      for (int i = 0; i < node.count(); ++i) {
        if ((inside[i >> 6] & (uint64_t{1} << (i & 63))) == 0) {
          return Status::Corruption(
              "entry " + std::to_string(i) + " of page " +
              std::to_string(item.page) + " escapes the parent MBR");
        }
      }
    }
    for (int i = 0; i < node.count(); ++i) {
      Rect<D> r = node.GetRect(i);
      for (int d = 0; d < D; ++d) {
        if (!(r.lo[d] <= r.hi[d])) {
          return Status::Corruption("inverted rectangle in page " +
                                    std::to_string(item.page));
        }
      }
      if (node.is_leaf()) {
        ++entries_seen;
      } else {
        stack.push_back(Item{node.GetId(i), item.expected_level - 1, false, r,
                             true});
      }
    }
  }
  if (entries_seen != tree.size()) {
    return Status::Corruption("tree.size()=" + std::to_string(tree.size()) +
                              " but leaves hold " +
                              std::to_string(entries_seen) + " records");
  }
  return Status::OK();
}

/// \brief Collects every stored record (for multiset comparison against the
/// loader's input in tests).
template <int D>
std::vector<Record<D>> DumpRecords(const RTree<D>& tree) {
  std::vector<Record<D>> out;
  if (tree.empty()) return out;
  std::vector<PageId> stack{tree.root()};
  PageGuard guard;
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    tree.PinNode(page, nullptr, &guard);
    ConstNodeView<D> node(guard.data(), tree.block_size());
    for (int i = 0; i < node.count(); ++i) {
      if (node.is_leaf()) {
        out.push_back(Record<D>{node.GetRect(i), node.GetId(i)});
      } else {
        stack.push_back(node.GetId(i));
      }
    }
  }
  return out;
}

/// Sorts records into a canonical order for multiset equality checks.
template <int D>
void CanonicalSort(std::vector<Record<D>>* records) {
  std::sort(records->begin(), records->end(),
            [](const Record<D>& a, const Record<D>& b) {
              if (a.id != b.id) return a.id < b.id;
              for (int d = 0; d < D; ++d) {
                if (a.rect.lo[d] != b.rect.lo[d]) {
                  return a.rect.lo[d] < b.rect.lo[d];
                }
                if (a.rect.hi[d] != b.rect.hi[d]) {
                  return a.rect.hi[d] < b.rect.hi[d];
                }
              }
              return false;
            });
}

}  // namespace prtree

#endif  // PRTREE_RTREE_VALIDATE_H_
