// Shared node-I/O helper for the dynamic updaters (rtree/update.h,
// rtree/rstar.h).  Both previously carried identical copies of the
// pool-read-then-copy and write-then-invalidate plumbing; it lives here
// once now, which is also the single place where copy-on-write shadowing
// happens when an EpochManager makes the tree multi-versioned — and the
// single seam through which BOTH updaters log to the update journal.
//
// Three modes:
//
//  * Plain (no EpochManager, no journal): byte-for-byte the historical
//    behaviour.  Write() updates the page in place and invalidates the
//    pool frame; Release() invalidates and frees immediately.  The
//    device-op sequence (Read/Write/Allocate/Free order) is exactly what
//    the pre-MVCC updaters issued, so page-id layouts and I/O counters
//    stay identical.
//
//  * MVCC (EpochManager attached): a snapshot reader may hold the current
//    published root at any moment, so no page that version can reach is
//    ever overwritten.  Write() shadows: the new bytes go to a freshly
//    allocated page and the old id is queued for retirement.  Pages
//    allocated within the current op (tracked in `fresh_`) are invisible
//    to every published version until EndOp(), so they may be rewritten
//    in place — that keeps an op's page count proportional to the path it
//    touches rather than the number of writes it issues.  EndOp()
//    publishes the tree's new root (RTree::Publish, a release-store) and
//    only then hands the replaced pages to EpochManager::Retire, so a
//    reader can never load a root whose subtree is already being freed.
//
//  * Journaled (JournalWriter attached, io/journal.h): the same
//    copy-on-write discipline, but the version being protected is the
//    newest COMMITTED one on disk rather than a concurrent reader's.  The
//    updater opens each op with BeginInsert()/BeginDelete(), which stages
//    the logical record; EndOp() publishes and then either commits the op
//    through the journal — the commit frame's block write is the durable
//    point, and the replaced pages defer into the journal's free list —
//    or aborts the staged record when the op never wrote (delete miss).
//    Crash anywhere inside an op and recovery restores the previous
//    committed root, whose pages are all still byte-intact.
//
// Pool discipline: in-place writes (plain mode, or fresh pages the
// updater itself re-read through the pool) invalidate their frame right
// away; shadowed-out pages keep their frames — the bytes stay accurate
// for snapshot readers — and are invalidated at epoch-drain time by the
// manager itself (the pool is attached on construction).  In journal mode
// shadowed-out pages invalidate immediately: no concurrent reader holds
// them, they merely await their deferred free.

#ifndef PRTREE_RTREE_UPDATE_IO_H_
#define PRTREE_RTREE_UPDATE_IO_H_

#include <cstring>
#include <unordered_set>
#include <utility>
#include <vector>

#include "io/epoch.h"
#include "io/journal.h"
#include "rtree/rtree.h"

namespace prtree {

template <int D>
class UpdaterIO {
 public:
  /// \param tree     tree whose nodes are read/written (not owned).
  /// \param pool     optional read cache over the tree's pages.
  /// \param epochs   optional: presence switches on copy-on-write for
  ///                 snapshot readers.  Must manage the same device as
  ///                 `tree`.
  /// \param journal  optional: presence switches on copy-on-write for
  ///                 crash consistency and logs every op through the
  ///                 journal.  Mutually exclusive with `epochs` for now —
  ///                 combining them needs retire-lists ordered across two
  ///                 reclaimers (see docs/DURABILITY.md).
  UpdaterIO(RTree<D>* tree, BufferPool* pool, EpochManager* epochs,
            JournalWriter* journal = nullptr)
      : tree_(tree), pool_(pool), epochs_(epochs), journal_(journal) {
    PRTREE_CHECK(epochs_ == nullptr || journal_ == nullptr);
    if (epochs_ != nullptr && pool_ != nullptr) epochs_->AttachPool(pool_);
  }

  bool mvcc() const { return epochs_ != nullptr; }
  bool journaled() const { return journal_ != nullptr; }

  /// Copy-on-write is on whenever some other agent — a snapshot reader or
  /// the last durable commit — may still need the current pages' bytes.
  bool cow() const { return epochs_ != nullptr || journal_ != nullptr; }

  /// Marks the start of one logical update op (one Insert/Delete).
  void BeginOp() {
    PRTREE_CHECK(retired_.empty());  // missing EndOp on the previous op
    fresh_.clear();
    wrote_ = false;
  }

  /// BeginOp() plus staging the op's logical record in the journal.  The
  /// record reaches the device only inside EndOp()'s commit.
  void BeginInsert(const Record<D>& rec) {
    BeginOp();
    if (journal_ != nullptr) {
      journal_->StageRecord(JournalFrameType::kInsert, D,
                            rec.rect.lo.data(), rec.rect.hi.data(), rec.id);
    }
  }
  void BeginDelete(const Record<D>& rec) {
    BeginOp();
    if (journal_ != nullptr) {
      journal_->StageRecord(JournalFrameType::kDelete, D,
                            rec.rect.lo.data(), rec.rect.hi.data(), rec.id);
    }
  }

  /// Reads `page` into the private working buffer `buf`, through the pool
  /// when one caches this tree (a pinned guard is copied out — update
  /// paths mutate and write back, so they need an owned buffer either
  /// way).  Without a pool, reads straight from the device into `buf`.
  void Read(PageId page, std::byte* buf) {
    if (pool_ == nullptr) {
      AbortIfError(tree_->device()->Read(page, buf));
      return;
    }
    PageGuard guard;
    tree_->PinNode(page, pool_, &guard);
    std::memcpy(buf, guard.data(), tree_->block_size());
  }

  /// Stores `buf` as the new contents of logical node `page` and returns
  /// the id now holding them: `page` itself when writing in place, or a
  /// fresh shadow page under copy-on-write (the caller must re-point the
  /// parent entry — or the root — at the returned id).
  PageId Write(PageId page, const std::byte* buf) {
    wrote_ = true;
    if (!cow() || fresh_.count(page) != 0) {
      AbortIfError(tree_->device()->Write(page, buf));
      if (pool_ != nullptr) pool_->Invalidate(page);
      return page;
    }
    PageId shadow = WriteNew(buf);
    RetireCow(page);
    return shadow;
  }

  /// Allocates a fresh page, writes `buf` there, returns its id.
  PageId WriteNew(const std::byte* buf) {
    wrote_ = true;
    PageId page = tree_->device()->Allocate();
    AbortIfError(tree_->device()->Write(page, buf));
    if (cow()) {
      fresh_.insert(page);
      // Snapshot readers never hold fresh pages, but a pool frame from a
      // previous tenant of this id may be stale.
      if (epochs_ == nullptr && pool_ != nullptr) pool_->Invalidate(page);
    } else if (pool_ != nullptr) {
      pool_->Invalidate(page);
    }
    return page;
  }

  /// The node at `page` left the tree (condensed away, shrunk root).
  /// Plain mode frees it immediately; under copy-on-write a page the
  /// protected version may reference is queued for retirement instead,
  /// while a page allocated within this op — never published or committed
  /// — is freed eagerly.
  void Release(PageId page) {
    wrote_ = true;
    if (cow() && fresh_.erase(page) == 0) {
      RetireCow(page);
      return;
    }
    if (pool_ != nullptr) pool_->Invalidate(page);
    tree_->device()->Free(page);
  }

  /// Publishes the op — new readers now see the updated tree — then
  /// reclaims or logs the pages it replaced.  Publish-before-retire is the
  /// MVCC linchpin: pages retire only after no new reader can reach them.
  /// In journal mode the commit frame lands after Publish too, so the
  /// in-memory tree is never behind what a crash would recover.
  void EndOp() {
    tree_->Publish();
    if (journal_ != nullptr) {
      if (wrote_) {
        AbortIfError(journal_->CommitOp(tree_->root(), tree_->height(),
                                        tree_->size(), &retired_));
      } else {
        journal_->AbortOp();  // delete miss: nothing durable to do
      }
      retired_.clear();
    } else if (epochs_ != nullptr && !retired_.empty()) {
      epochs_->Retire(std::move(retired_));
      retired_.clear();
    }
    fresh_.clear();
  }

 private:
  /// A replaced page under copy-on-write: queue for retirement.  Journal
  /// mode invalidates the pool frame right away (no snapshot reader needs
  /// it; the page just waits for its post-commit deferred free).
  void RetireCow(PageId page) {
    retired_.push_back(page);
    if (epochs_ == nullptr && pool_ != nullptr) pool_->Invalidate(page);
  }

  RTree<D>* tree_;
  BufferPool* pool_;
  EpochManager* epochs_;
  JournalWriter* journal_;
  std::unordered_set<PageId> fresh_;  // allocated by the op in flight
  std::vector<PageId> retired_;       // replaced pages awaiting EndOp
  bool wrote_ = false;                // op touched the device
};

}  // namespace prtree

#endif  // PRTREE_RTREE_UPDATE_IO_H_
