// Shared node-I/O helper for the dynamic updaters (rtree/update.h,
// rtree/rstar.h).  Both previously carried identical copies of the
// pool-read-then-copy and write-then-invalidate plumbing; it lives here
// once now, which is also the single place where copy-on-write shadowing
// happens when an EpochManager makes the tree multi-versioned.
//
// Two modes:
//
//  * Plain (no EpochManager): byte-for-byte the historical behaviour.
//    Write() updates the page in place and invalidates the pool frame;
//    Release() invalidates and frees immediately.  The device-op sequence
//    (Read/Write/Allocate/Free order) is exactly what the pre-MVCC
//    updaters issued, so page-id layouts and I/O counters stay identical.
//
//  * MVCC (EpochManager attached): a snapshot reader may hold the current
//    published root at any moment, so no page that version can reach is
//    ever overwritten.  Write() shadows: the new bytes go to a freshly
//    allocated page and the old id is queued for retirement.  Pages
//    allocated within the current op (tracked in `fresh_`) are invisible
//    to every published version until EndOp(), so they may be rewritten
//    in place — that keeps an op's page count proportional to the path it
//    touches rather than the number of writes it issues.  EndOp()
//    publishes the tree's new root (RTree::Publish, a release-store) and
//    only then hands the replaced pages to EpochManager::Retire, so a
//    reader can never load a root whose subtree is already being freed.
//
// Pool discipline: in-place writes (plain mode, or fresh pages the
// updater itself re-read through the pool) invalidate their frame right
// away; shadowed-out pages keep their frames — the bytes stay accurate
// for snapshot readers — and are invalidated at epoch-drain time by the
// manager itself (the pool is attached on construction).

#ifndef PRTREE_RTREE_UPDATE_IO_H_
#define PRTREE_RTREE_UPDATE_IO_H_

#include <cstring>
#include <unordered_set>
#include <utility>
#include <vector>

#include "io/epoch.h"
#include "rtree/rtree.h"

namespace prtree {

template <int D>
class UpdaterIO {
 public:
  /// \param tree    tree whose nodes are read/written (not owned).
  /// \param pool    optional read cache over the tree's pages.
  /// \param epochs  optional: presence switches on copy-on-write.  Must
  ///                manage the same device as `tree`.
  UpdaterIO(RTree<D>* tree, BufferPool* pool, EpochManager* epochs)
      : tree_(tree), pool_(pool), epochs_(epochs) {
    if (epochs_ != nullptr && pool_ != nullptr) epochs_->AttachPool(pool_);
  }

  bool mvcc() const { return epochs_ != nullptr; }

  /// Marks the start of one logical update op (one Insert/Delete).
  void BeginOp() {
    PRTREE_CHECK(retired_.empty());  // missing EndOp on the previous op
    fresh_.clear();
  }

  /// Reads `page` into the private working buffer `buf`, through the pool
  /// when one caches this tree (a pinned guard is copied out — update
  /// paths mutate and write back, so they need an owned buffer either
  /// way).  Without a pool, reads straight from the device into `buf`.
  void Read(PageId page, std::byte* buf) {
    if (pool_ == nullptr) {
      AbortIfError(tree_->device()->Read(page, buf));
      return;
    }
    PageGuard guard;
    tree_->PinNode(page, pool_, &guard);
    std::memcpy(buf, guard.data(), tree_->block_size());
  }

  /// Stores `buf` as the new contents of logical node `page` and returns
  /// the id now holding them: `page` itself when writing in place, or a
  /// fresh shadow page under MVCC (the caller must re-point the parent
  /// entry — or the root — at the returned id).
  PageId Write(PageId page, const std::byte* buf) {
    if (epochs_ == nullptr || fresh_.count(page) != 0) {
      AbortIfError(tree_->device()->Write(page, buf));
      if (pool_ != nullptr) pool_->Invalidate(page);
      return page;
    }
    PageId shadow = WriteNew(buf);
    retired_.push_back(page);
    return shadow;
  }

  /// Allocates a fresh page, writes `buf` there, returns its id.
  PageId WriteNew(const std::byte* buf) {
    PageId page = tree_->device()->Allocate();
    AbortIfError(tree_->device()->Write(page, buf));
    if (epochs_ != nullptr) {
      fresh_.insert(page);
    } else if (pool_ != nullptr) {
      pool_->Invalidate(page);
    }
    return page;
  }

  /// The node at `page` left the tree (condensed away, shrunk root).
  /// Plain mode frees it immediately; under MVCC a page some published
  /// version may reference is queued for retirement instead, while a page
  /// allocated within this op — never published — is freed eagerly.
  void Release(PageId page) {
    if (epochs_ != nullptr && fresh_.erase(page) == 0) {
      retired_.push_back(page);
      return;
    }
    if (pool_ != nullptr) pool_->Invalidate(page);
    tree_->device()->Free(page);
  }

  /// Publishes the op — new readers now see the updated tree — then hands
  /// the pages it replaced to the epoch manager.  The order is the MVCC
  /// linchpin: pages retire only after no new reader can reach them.
  void EndOp() {
    tree_->Publish();
    if (epochs_ != nullptr && !retired_.empty()) {
      epochs_->Retire(std::move(retired_));
      retired_.clear();
    }
    fresh_.clear();
  }

 private:
  RTree<D>* tree_;
  BufferPool* pool_;
  EpochManager* epochs_;
  std::unordered_set<PageId> fresh_;  // allocated by the op in flight
  std::vector<PageId> retired_;       // replaced pages awaiting EndOp
};

}  // namespace prtree

#endif  // PRTREE_RTREE_UPDATE_IO_H_
