// Guttman's dynamic R-tree update algorithms (§1.1 [13]).
//
// The paper bulk-loads its trees but notes that "after bulk-loading, a
// PR-tree can be updated in O(log_B N) I/Os using the standard R-tree
// updating algorithms, but without maintaining its query efficiency" (§1.2).
// This module provides those standard algorithms — ChooseLeaf descent,
// quadratic/linear node splitting, and deletion with CondenseTree and
// reinsertion — over the shared block-based container, so the claim can be
// measured (see bench/ablation_updates and the dynamic example).

#ifndef PRTREE_RTREE_UPDATE_H_
#define PRTREE_RTREE_UPDATE_H_

#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "rtree/node_scan.h"
#include "rtree/rtree.h"
#include "rtree/update_io.h"

namespace prtree {

/// Node-splitting policy for overflowing nodes.
enum class SplitPolicy {
  kQuadratic,  // Guttman's quadratic-cost split (default in practice)
  kLinear,     // Guttman's linear-cost split
};

/// \brief Dynamic insert/delete on an RTree, per Guttman.
///
/// Writes go through UpdaterIO: in place (invalidating any BufferPool
/// frame) by default, copy-on-write when an EpochManager makes the tree
/// multi-versioned — then every op builds its replacement pages off to
/// the side, publishes the new root atomically, and retires the pages it
/// shadowed, so snapshot readers are never disturbed.
template <int D>
class RTreeUpdater {
 public:
  using RectT = Rect<D>;
  using RecordT = Record<D>;

  /// \param tree     the tree to update (may be empty).
  /// \param policy   node split algorithm.
  /// \param min_fill minimum node occupancy after deletion and the floor
  ///                 for split groups, as a fraction of capacity.  Guttman
  ///                 requires m <= capacity/2; 0.4 is the customary value.
  /// \param epochs   optional: switches the write path to copy-on-write
  ///                 for epoch-protected snapshot readers.
  /// \param journal  optional: logs every op through the update journal
  ///                 (copy-on-write, commit-at-EndOp — io/journal.h).
  ///                 Mutually exclusive with `epochs`.
  explicit RTreeUpdater(RTree<D>* tree,
                        SplitPolicy policy = SplitPolicy::kQuadratic,
                        double min_fill = 0.4, BufferPool* pool = nullptr,
                        EpochManager* epochs = nullptr,
                        JournalWriter* journal = nullptr)
      : tree_(tree), policy_(policy), io_(tree, pool, epochs, journal) {
    PRTREE_CHECK(min_fill > 0.0 && min_fill <= 0.5);
    min_entries_ = std::max<size_t>(
        1, static_cast<size_t>(min_fill *
                               static_cast<double>(tree->capacity())));
  }

  /// \brief Inserts one record in O(log_B N) I/Os.
  void Insert(const RecordT& rec) {
    io_.BeginInsert(rec);
    InsertEntry(rec.rect, rec.id, /*target_level=*/0);
    tree_->set_size(tree_->size() + 1);
    io_.EndOp();
  }

  /// \brief Deletes the record matching `rec` exactly (rectangle and id).
  /// Returns false if no such record is stored.
  bool Delete(const RecordT& rec) {
    if (tree_->empty()) return false;
    io_.BeginDelete(rec);
    std::vector<Orphan> orphans;
    DeleteResult res = DeleteRec(tree_->root(), tree_->height(), rec,
                                 &orphans);
    if (!res.found) {
      io_.EndOp();  // nothing written, nothing retired
      return false;
    }
    if (res.page != tree_->root()) {
      tree_->SetRoot(res.page, tree_->height(), tree_->size());
    }
    tree_->set_size(tree_->size() - 1);
    // Shrink the root while it is an internal node with a single child.
    ShrinkRoot();
    // Reinsert entries of condensed nodes at their original level so leaves
    // stay on the bottom level (Guttman's CondenseTree step).
    for (const Orphan& o : orphans) {
      InsertEntry(o.rect, o.id, o.level);
    }
    io_.EndOp();
    return true;
  }

  /// Entry floor used by condense/split decisions.
  size_t min_entries() const { return min_entries_; }

 private:
  struct Orphan {
    RectT rect;
    uint32_t id;
    int level;  // level the entry must live at (0 = data record)
  };

  struct InsertResult {
    PageId page;                                      // id now holding node
    RectT mbr;                                        // updated subtree MBR
    std::optional<std::pair<RectT, PageId>> split;    // new sibling, if any
  };

  struct DeleteResult {
    PageId page = kInvalidPageId;  // id now holding the (written) node
    bool found = false;
    bool underflow = false;  // node dropped below min_entries
    RectT mbr = RectT::Empty();
  };

  // ---- insertion ------------------------------------------------------

  /// Inserts (rect, id) as an entry at `target_level` (0 inserts a data
  /// record into a leaf; higher levels reinsert orphaned subtrees).
  void InsertEntry(const RectT& rect, uint32_t id, int target_level) {
    if (tree_->empty()) {
      if (target_level > 0) {
        // Reinstalling an orphaned subtree into a fully collapsed tree: the
        // entry references a node at target_level - 1, which simply becomes
        // the new root.
        tree_->SetRoot(static_cast<PageId>(id), target_level - 1,
                       tree_->size());
        return;
      }
      std::vector<std::byte> buf(tree_->block_size());
      NodeView<D> node(buf.data(), tree_->block_size());
      node.Format(0);
      node.Append(rect, id);
      PageId page = io_.WriteNew(buf.data());
      tree_->SetRoot(page, 0, tree_->size());
      return;
    }
    PRTREE_CHECK(target_level <= tree_->height());
    InsertResult res =
        InsertRec(tree_->root(), tree_->height(), rect, id, target_level);
    if (res.split.has_value()) {
      GrowRoot(res.page, res.mbr, *res.split);
    } else if (res.page != tree_->root()) {
      // Copy-on-write shadowed the root itself; re-point (writer-private
      // until EndOp publishes).
      tree_->SetRoot(res.page, tree_->height(), tree_->size());
    }
  }

  InsertResult InsertRec(PageId page, int level, const RectT& rect,
                         uint32_t id, int target_level) {
    std::vector<std::byte> buf(tree_->block_size());
    io_.Read(page, buf.data());
    NodeView<D> node(buf.data(), tree_->block_size());
    PRTREE_CHECK(node.level() == level);

    if (level == target_level) {
      if (!node.full()) {
        node.Append(rect, id);
        PageId out = io_.Write(page, buf.data());
        return InsertResult{out, node.ComputeMbr(), std::nullopt};
      }
      return SplitNode(page, &node, buf.data(), rect, id);
    }

    int child_idx = ChooseSubtree(node, rect);
    InsertResult child_res = InsertRec(node.GetId(child_idx), level - 1, rect,
                                       id, target_level);
    node.SetEntry(child_idx, child_res.mbr, child_res.page);
    if (!child_res.split.has_value()) {
      PageId out = io_.Write(page, buf.data());
      return InsertResult{out, node.ComputeMbr(), std::nullopt};
    }
    const auto& [split_mbr, split_page] = *child_res.split;
    if (!node.full()) {
      node.Append(split_mbr, split_page);
      PageId out = io_.Write(page, buf.data());
      return InsertResult{out, node.ComputeMbr(), std::nullopt};
    }
    return SplitNode(page, &node, buf.data(), split_mbr, split_page);
  }

  /// Guttman's ChooseLeaf criterion: least enlargement, ties by least area.
  int ChooseSubtree(const NodeView<D>& node, const RectT& rect) const {
    int best = 0;
    Real best_enlargement = 0;
    Real best_area = 0;
    for (int i = 0; i < node.count(); ++i) {
      RectT r = node.GetRect(i);
      Real enlargement = r.Enlargement(rect);
      Real area = r.Area();
      if (i == 0 || enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    return best;
  }

  /// Splits an overflowing node: distributes its entries plus (rect, id)
  /// into the old page and a fresh sibling.
  InsertResult SplitNode(PageId page, NodeView<D>* node, std::byte* buf,
                         const RectT& rect, uint32_t id) {
    struct Entry {
      RectT rect;
      uint32_t id;
    };
    std::vector<Entry> entries;
    entries.reserve(node->count() + 1);
    for (int i = 0; i < node->count(); ++i) {
      entries.push_back(Entry{node->GetRect(i), node->GetId(i)});
    }
    entries.push_back(Entry{rect, id});

    std::vector<int> group_a, group_b;
    if (policy_ == SplitPolicy::kQuadratic) {
      QuadraticPartition(entries, &group_a, &group_b);
    } else {
      LinearPartition(entries, &group_a, &group_b);
    }

    uint16_t level = node->level();
    node->Format(level);
    for (int i : group_a) node->Append(entries[i].rect, entries[i].id);
    PageId page_a = io_.Write(page, buf);
    RectT mbr_a = node->ComputeMbr();

    std::vector<std::byte> buf_b(tree_->block_size());
    NodeView<D> node_b(buf_b.data(), tree_->block_size());
    node_b.Format(level);
    for (int i : group_b) node_b.Append(entries[i].rect, entries[i].id);
    RectT mbr_b = node_b.ComputeMbr();
    PageId page_b = io_.WriteNew(buf_b.data());

    return InsertResult{page_a, mbr_a, std::make_pair(mbr_b, page_b)};
  }

  template <typename Entry>
  void QuadraticPartition(const std::vector<Entry>& entries,
                          std::vector<int>* group_a,
                          std::vector<int>* group_b) const {
    const int n = static_cast<int>(entries.size());
    // PickSeeds: the pair wasting the most area if grouped together.
    int seed_a = 0, seed_b = 1;
    Real worst = -std::numeric_limits<Real>::infinity();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        Real waste = RectT::Cover(entries[i].rect, entries[j].rect).Area() -
                     entries[i].rect.Area() - entries[j].rect.Area();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    group_a->assign(1, seed_a);
    group_b->assign(1, seed_b);
    RectT mbr_a = entries[seed_a].rect;
    RectT mbr_b = entries[seed_b].rect;
    std::vector<bool> assigned(n, false);
    assigned[seed_a] = assigned[seed_b] = true;
    int remaining = n - 2;

    while (remaining > 0) {
      // If one group must take everything left to reach the minimum, do so.
      if (group_a->size() + remaining == min_entries_) {
        for (int i = 0; i < n; ++i) {
          if (!assigned[i]) {
            group_a->push_back(i);
            mbr_a.ExtendToCover(entries[i].rect);
            assigned[i] = true;
          }
        }
        break;
      }
      if (group_b->size() + remaining == min_entries_) {
        for (int i = 0; i < n; ++i) {
          if (!assigned[i]) {
            group_b->push_back(i);
            mbr_b.ExtendToCover(entries[i].rect);
            assigned[i] = true;
          }
        }
        break;
      }
      // PickNext: the entry with the strongest preference.
      int pick = -1;
      Real best_diff = -1;
      Real d_a_pick = 0, d_b_pick = 0;
      for (int i = 0; i < n; ++i) {
        if (assigned[i]) continue;
        Real d_a = mbr_a.Enlargement(entries[i].rect);
        Real d_b = mbr_b.Enlargement(entries[i].rect);
        Real diff = std::abs(d_a - d_b);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
          d_a_pick = d_a;
          d_b_pick = d_b;
        }
      }
      PRTREE_CHECK(pick >= 0);
      bool to_a;
      if (d_a_pick != d_b_pick) {
        to_a = d_a_pick < d_b_pick;
      } else if (mbr_a.Area() != mbr_b.Area()) {
        to_a = mbr_a.Area() < mbr_b.Area();
      } else {
        to_a = group_a->size() <= group_b->size();
      }
      if (to_a) {
        group_a->push_back(pick);
        mbr_a.ExtendToCover(entries[pick].rect);
      } else {
        group_b->push_back(pick);
        mbr_b.ExtendToCover(entries[pick].rect);
      }
      assigned[pick] = true;
      --remaining;
    }
  }

  template <typename Entry>
  void LinearPartition(const std::vector<Entry>& entries,
                       std::vector<int>* group_a,
                       std::vector<int>* group_b) const {
    const int n = static_cast<int>(entries.size());
    // LinearPickSeeds: per dimension, the pair with greatest normalised
    // separation (highest low side vs lowest high side).
    int seed_a = 0, seed_b = 1;
    Real best_sep = -std::numeric_limits<Real>::infinity();
    for (int d = 0; d < D; ++d) {
      int highest_lo = 0, lowest_hi = 0;
      Real min_lo = entries[0].rect.lo[d], max_hi = entries[0].rect.hi[d];
      for (int i = 1; i < n; ++i) {
        if (entries[i].rect.lo[d] > entries[highest_lo].rect.lo[d]) {
          highest_lo = i;
        }
        if (entries[i].rect.hi[d] < entries[lowest_hi].rect.hi[d]) {
          lowest_hi = i;
        }
        min_lo = std::min(min_lo, entries[i].rect.lo[d]);
        max_hi = std::max(max_hi, entries[i].rect.hi[d]);
      }
      if (highest_lo == lowest_hi) continue;
      Real width = max_hi - min_lo;
      Real sep = entries[highest_lo].rect.lo[d] -
                 entries[lowest_hi].rect.hi[d];
      Real norm = width > 0 ? sep / width : sep;
      if (norm > best_sep) {
        best_sep = norm;
        seed_a = lowest_hi;
        seed_b = highest_lo;
      }
    }
    group_a->assign(1, seed_a);
    group_b->assign(1, seed_b);
    RectT mbr_a = entries[seed_a].rect;
    RectT mbr_b = entries[seed_b].rect;
    int remaining = n - 2;
    for (int i = 0; i < n && remaining > 0; ++i) {
      if (i == seed_a || i == seed_b) continue;
      int left = remaining - 1;
      if (group_a->size() + static_cast<size_t>(left) + 1 == min_entries_) {
        group_a->push_back(i);
        mbr_a.ExtendToCover(entries[i].rect);
      } else if (group_b->size() + static_cast<size_t>(left) + 1 ==
                 min_entries_) {
        group_b->push_back(i);
        mbr_b.ExtendToCover(entries[i].rect);
      } else {
        Real d_a = mbr_a.Enlargement(entries[i].rect);
        Real d_b = mbr_b.Enlargement(entries[i].rect);
        if (d_a < d_b || (d_a == d_b && group_a->size() <= group_b->size())) {
          group_a->push_back(i);
          mbr_a.ExtendToCover(entries[i].rect);
        } else {
          group_b->push_back(i);
          mbr_b.ExtendToCover(entries[i].rect);
        }
      }
      --remaining;
    }
  }

  void GrowRoot(PageId old_page, const RectT& old_mbr,
                const std::pair<RectT, PageId>& sibling) {
    std::vector<std::byte> buf(tree_->block_size());
    NodeView<D> node(buf.data(), tree_->block_size());
    int new_height = tree_->height() + 1;
    node.Format(static_cast<uint16_t>(new_height));
    node.Append(old_mbr, old_page);
    node.Append(sibling.first, sibling.second);
    PageId page = io_.WriteNew(buf.data());
    tree_->SetRoot(page, new_height, tree_->size());
  }

  // ---- deletion -------------------------------------------------------

  DeleteResult DeleteRec(PageId page, int level, const RecordT& rec,
                         std::vector<Orphan>* orphans) {
    std::vector<std::byte> buf(tree_->block_size());
    io_.Read(page, buf.data());
    NodeView<D> node(buf.data(), tree_->block_size());
    DeleteResult res;
    res.page = page;

    if (node.is_leaf()) {
      for (int i = 0; i < node.count(); ++i) {
        if (node.GetId(i) == rec.id && node.GetRect(i) == rec.rect) {
          node.RemoveSwap(i);
          res.page = io_.Write(page, buf.data());
          res.found = true;
          res.underflow = node.count() < min_entries_;
          res.mbr = node.ComputeMbr();
          return res;
        }
      }
      return res;
    }

    // Batched "which subtrees can hold this rectangle" test (one kernel
    // pass instead of count() scalar Contains); candidates are then tried
    // in entry order exactly as before.  The indices are materialised
    // before descending because the recursive call below reuses the
    // scanner's mask scratch.
    std::vector<int> candidates;
    ForEachSetBit(scan_.CoversMask(node, rec.rect),
                  RectMaskWords(node.count()),
                  [&](int i) { candidates.push_back(i); });
    for (int i : candidates) {
      PageId child = node.GetId(i);
      DeleteResult child_res = DeleteRec(child, level - 1, rec, orphans);
      if (!child_res.found) continue;
      if (child_res.underflow && level - 1 < tree_->height()) {
        // Condense: drop the child node, salvage its entries for
        // reinsertion at their level.  child_res.page holds the
        // post-delete node (a fresh shadow under copy-on-write, `child`
        // itself otherwise); the original was already retired by the
        // child's Write.
        CollectOrphans(child_res.page, orphans);
        node.RemoveSwap(i);
      } else {
        node.SetEntry(i, child_res.mbr, child_res.page);
      }
      res.page = io_.Write(page, buf.data());
      res.found = true;
      res.underflow = node.count() < min_entries_;
      res.mbr = node.ComputeMbr();
      return res;
    }
    return res;
  }

  /// Moves all entries of the subtree node `page` into the orphan list and
  /// releases the node block.
  void CollectOrphans(PageId page, std::vector<Orphan>* orphans) {
    std::vector<std::byte> buf(tree_->block_size());
    io_.Read(page, buf.data());
    NodeView<D> node(buf.data(), tree_->block_size());
    for (int i = 0; i < node.count(); ++i) {
      orphans->push_back(Orphan{node.GetRect(i), node.GetId(i),
                                node.level() == 0 ? 0 : node.level()});
    }
    io_.Release(page);
  }

  void ShrinkRoot() {
    std::vector<std::byte> buf(tree_->block_size());
    while (true) {
      if (tree_->empty()) return;
      io_.Read(tree_->root(), buf.data());
      NodeView<D> node(buf.data(), tree_->block_size());
      if (node.count() == 0) {
        // Fully drained (leaf root) or fully condensed (internal root whose
        // only child underflowed); orphan reinsertion rebuilds from empty.
        size_t size = tree_->size();
        io_.Release(tree_->root());
        tree_->SetRoot(kInvalidPageId, 0, size);
        return;
      }
      if (node.is_leaf() || node.count() > 1) return;
      PageId only_child = node.GetId(0);
      io_.Release(tree_->root());
      tree_->SetRoot(only_child, tree_->height() - 1, tree_->size());
    }
  }

  RTree<D>* tree_;
  SplitPolicy policy_;
  UpdaterIO<D> io_;
  NodeScanner<D> scan_;  // batched delete-descent tests (rtree/node_scan.h)
  size_t min_entries_;
};

}  // namespace prtree

#endif  // PRTREE_RTREE_UPDATE_H_
