// k-nearest-neighbour search over the block-based R-tree.
//
// §1.1 notes that "many types of queries can be answered efficiently using
// an R-tree"; besides window queries, distance queries are the other
// workhorse.  This is the classic best-first (Hjaltason–Samet style)
// traversal: a priority queue ordered by MINDIST expands the closest node
// or reports the closest pending record; it visits provably no more nodes
// than any correct algorithm for the same tree.

#ifndef PRTREE_RTREE_KNN_H_
#define PRTREE_RTREE_KNN_H_

#include <cmath>
#include <queue>
#include <span>
#include <vector>

#include "rtree/node_scan.h"
#include "rtree/rtree.h"

namespace prtree {

/// \brief One kNN result: a stored record and its distance to the query
/// point (Euclidean distance to the closest point of the rectangle).
template <int D>
struct Neighbor {
  Record<D> record;
  Real distance;
};

/// MINDIST: Euclidean distance from point `p` to rectangle `r` (zero if
/// the point lies inside).
template <int D>
Real MinDist(const std::array<Real, D>& p, const Rect<D>& r) {
  Real d2 = 0;
  for (int d = 0; d < D; ++d) {
    Real delta = 0;
    if (p[d] < r.lo[d]) {
      delta = r.lo[d] - p[d];
    } else if (p[d] > r.hi[d]) {
      delta = p[d] - r.hi[d];
    }
    d2 += delta * delta;
  }
  return std::sqrt(d2);
}

template <int D, typename Keep>
std::vector<Neighbor<D>> KnnSearchFrom(const RTree<D>& tree, PageId root,
                                       const std::array<Real, D>& point,
                                       size_t k, QueryStats* stats,
                                       BufferPool* pool, Keep keep);

/// \brief Finds the `k` stored records closest to `point`, in increasing
/// distance order (ties broken by id for determinism).  Returns fewer
/// than `k` if the tree is smaller.  `stats` (optional) receives node
/// visit counters; `pool` (optional) caches node reads.  Like window
/// queries, safe to run from many threads over one shared tree and pool.
///
/// With pool readahead enabled (BufferPool::set_readahead) each internal
/// expansion prefetches the children it pushed onto the frontier in one
/// batch.  Best-first order makes some of those speculative — a distant
/// child may never be popped — which is the access-adaptive wager: the
/// pool's prefetch_useful/prefetch_staged ratio reports how it paid off.
/// Visit counters and results are identical with readahead on or off.
template <int D>
std::vector<Neighbor<D>> KnnSearch(const RTree<D>& tree,
                                   const std::array<Real, D>& point,
                                   size_t k, QueryStats* stats = nullptr,
                                   BufferPool* pool = nullptr) {
  return KnnSearchFrom<D>(tree, tree.root(), point, k, stats, pool,
                          [](const Record<D>&) { return true; });
}

/// \brief KnnSearch rooted at an explicit page with a record filter — the
/// snapshot/forest entry point.  MVCC readers pass a published root
/// captured under an EpochGuard (the tree's own root/height/size fields
/// are never read, so a concurrent copy-on-write updater is safe); the
/// logarithmic forest passes each level's root with a tombstone filter.
/// `keep(rec)` decides whether a stored record is reported (and counted
/// toward `k`); filtered records never enter the candidate heap.  With the
/// tree's own root and an always-true filter this is exactly KnnSearch.
template <int D, typename Keep>
std::vector<Neighbor<D>> KnnSearchFrom(const RTree<D>& tree, PageId root,
                                       const std::array<Real, D>& point,
                                       size_t k, QueryStats* stats,
                                       BufferPool* pool, Keep keep) {
  std::vector<Neighbor<D>> result;
  if (stats != nullptr) *stats = QueryStats{};
  if (k == 0 || root == kInvalidPageId) return result;

  struct Item {
    Real dist;
    bool is_record;
    PageId page;       // when !is_record
    Record<D> record;  // when is_record
  };
  auto greater = [](const Item& a, const Item& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    // Expand nodes before reporting records at equal distance (a record
    // may otherwise be reported ahead of a closer one still inside a
    // node); tie records by id for determinism.
    if (a.is_record != b.is_record) return a.is_record && !b.is_record;
    if (a.is_record) return a.record.id > b.record.id;
    return a.page > b.page;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(greater)> heap(
      greater);
  heap.push(Item{0.0, false, root, {}});

  QueryStats local;
  const bool readahead = pool != nullptr && pool->readahead_enabled();
  std::vector<PageId> frontier;  // children pushed by the current expansion
  PageGuard guard;  // hoisted: pool-less searches reuse one buffer
  NodeScanner<D> scan;  // batched MINDIST scratch (rtree/node_scan.h)
  while (!heap.empty() && result.size() < k) {
    Item item = heap.top();
    heap.pop();
    if (item.is_record) {
      result.push_back(Neighbor<D>{item.record, item.dist});
      continue;
    }
    tree.PinNode(item.page, pool, &guard);
    ConstNodeView<D> node(guard.data(), tree.block_size());
    ++local.nodes_visited;
    // One batched squared-MINDIST pass per node; std::sqrt(d2[i]) is
    // bit-identical to the scalar MinDist above, so heap order, visit
    // counters and reported distances are unchanged by layout or SIMD
    // dispatch.
    const Real* d2 = scan.MinDist2(node, point);
    if (node.is_leaf()) {
      ++local.leaves_visited;
      for (int i = 0; i < node.count(); ++i) {
        Record<D> rec{node.GetRect(i), node.GetId(i)};
        if (!keep(rec)) continue;
        heap.push(Item{std::sqrt(d2[i]), true, 0, rec});
      }
    } else {
      ++local.internal_visited;
      if (readahead) frontier.clear();
      for (int i = 0; i < node.count(); ++i) {
        heap.push(Item{std::sqrt(d2[i]), false, node.GetId(i), {}});
        if (readahead) frontier.push_back(node.GetId(i));
      }
      if (readahead && frontier.size() >= 2) {
        pool->Prefetch(std::span<const PageId>(frontier));
      }
    }
  }
  local.results = result.size();
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace prtree

#endif  // PRTREE_RTREE_KNN_H_
