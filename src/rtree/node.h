// On-disk R-tree node layout (two versions, one block each, §3.1).
//
// A node is exactly one device block: a 16-byte header followed by the
// entry area.  An entry is four coordinates (for D = 2) plus a 4-byte
// identifier — a child PageId in internal nodes, an opaque DataId in
// leaves.  Entry *bytes* per slot are 2·D·8 + 4 = 36 for D = 2, so with
// 4 KB blocks both layouts give the paper's maximum fan-out of 113.
//
// Header (both versions):
//   offset 0  u32  magic "PRTN"
//   offset 4  u16  tree level (0 = leaf)
//   offset 6  u16  entry count
//   offset 8  u8   layout: 0 = v1 packed AoS, 2 = v2 SoA
//   offset 9..15   zero
//
// v1 (AoS, legacy): packed 36-byte entries, entry i at
// header + i·36.  Pre-versioning files carry 0 at offset 8 because
// Format always zeroed bytes 8..15 — which is exactly the v1 tag, so
// every persisted v1 tree reads unchanged.
//
// v2 (SoA, current default): the entry area is five contiguous runs,
// each sized to the node's *capacity* (not its count):
//   lo[0][cap] … lo[D-1][cap]  hi[0][cap] … hi[D-1][cap]   (doubles)
//   id[cap]                                                 (u32)
// For D = 2 that is xmin[113] ymin[113] xmax[113] ymax[113] id[113].
// The runs exist so the batched kernels in geom/rect_batch.h can test
// 4 (AVX2) / 2 (NEON) MBRs per lane straight off a pinned pool frame —
// see rtree/node_scan.h for the traversal-side wrapper and the dispatch
// policy (runtime CPU probe, PRTREE_NO_SIMD=1 / -DPRTREE_SIMD=OFF
// force scalar; results are bit-identical either way).
//
// Neither layout naturally aligns fields inside the page, so scalar
// access goes through memcpy-based readers/writers (no UB; the compiler
// lowers them to plain loads/stores) and the batched kernels use
// unaligned loads.
//
// Writers (Format) emit v2 unless SetDefaultNodeLayout says otherwise
// or an explicit layout is passed; readers branch per node on the
// layout byte, so v1 and v2 nodes can coexist in one device file and
// AttachTree/LoadTree need no migration step.  Capacity, fan-out and
// therefore tree shape and the §3.3 demand-I/O counts are identical
// across versions.
//
// Two views exist over a block: NodeView (mutable, for builders and the
// update paths, over a caller-owned buffer) and ConstNodeView (read-only,
// what the query engine wraps directly over pinned BufferPool memory — the
// zero-copy read path).  Both are the same template; the mutators are
// compiled out of the const instantiation.

#ifndef PRTREE_RTREE_NODE_H_
#define PRTREE_RTREE_NODE_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "geom/rect.h"
#include "io/block_device.h"
#include "util/check.h"

namespace prtree {

/// Byte offset of the first entry in a node block.
inline constexpr size_t kNodeHeaderSize = 16;

/// Magic tag marking a formatted R-tree node block.
inline constexpr uint32_t kNodeMagic = 0x5052544Eu;  // "PRTN"

/// Byte offset of the layout-version byte inside the header.
inline constexpr size_t kNodeLayoutOffset = 8;

/// On-disk node layout version.  The enumerator values are the on-disk
/// layout-byte values; kAoS is 0 so that pre-versioning files (which
/// zeroed bytes 8..15) read as v1 without migration.
enum class NodeLayout : uint8_t {
  kAoS = 0,  ///< v1: packed (lo…, hi…, id) tuples of 2·D·8+4 bytes.
  kSoA = 2,  ///< v2: capacity-sized lo/hi coordinate runs, then an id run.
};

namespace internal {
inline std::atomic<NodeLayout>& DefaultNodeLayoutSlot() {
  static std::atomic<NodeLayout> layout{NodeLayout::kSoA};
  return layout;
}
}  // namespace internal

/// Layout Format() uses when none is passed explicitly (process-wide).
inline NodeLayout DefaultNodeLayout() {
  return internal::DefaultNodeLayoutSlot().load(std::memory_order_relaxed);
}

/// \brief Overrides the process-wide default layout for newly formatted
/// nodes; returns the previous default.  Meant for benches and the
/// format-compat tests that need to emit v1 trees through the unchanged
/// loaders — production code leaves this at kSoA.
inline NodeLayout SetDefaultNodeLayout(NodeLayout layout) {
  return internal::DefaultNodeLayoutSlot().exchange(layout,
                                                    std::memory_order_relaxed);
}

/// Size in bytes of one node entry for dimension D (per-slot cost in both
/// layouts: v1 stores it packed, v2 splits it across the runs).
template <int D>
constexpr size_t NodeEntrySize() {
  return 2 * D * sizeof(Real) + sizeof(uint32_t);
}

/// Maximum number of entries (fan-out) for dimension D and a given block
/// size.  113 for D = 2 with 4 KB blocks, matching §3.1.  Identical for
/// v1 and v2 — the layout version never changes tree shape.
template <int D>
constexpr size_t NodeCapacity(size_t block_size) {
  return (block_size - kNodeHeaderSize) / NodeEntrySize<D>();
}

/// \brief View over one node block in caller- or pool-owned memory.
///
/// The view does not own the buffer and performs no I/O.  Mutable views
/// wrap private buffers (callers read the block, wrap it, edit, and write
/// it back); const views may wrap shared pinned pool frames.
///
/// The constructor snapshots the layout byte, so a view must be built
/// over an already-formatted (or about-to-be-Format()ed) block; Format
/// re-snapshots.  All scalar accessors (GetRect/GetId/SetEntry/…) work on
/// both layouts; the *Run accessors are the SoA fast path and require
/// layout() == kSoA.
template <int D, bool Mutable>
class BasicNodeView {
 public:
  using BytePtr = std::conditional_t<Mutable, std::byte*, const std::byte*>;
  using RealPtr = std::conditional_t<Mutable, Real*, const Real*>;

  /// Wraps `block` (block_size bytes).  Does not validate; call IsFormatted
  /// or Format first.
  BasicNodeView(BytePtr block, size_t block_size)
      : block_(block), block_size_(block_size),
        capacity_(NodeCapacity<D>(block_size)) {
    soa_ = static_cast<uint8_t>(block_[kNodeLayoutOffset]) ==
           static_cast<uint8_t>(NodeLayout::kSoA);
  }

  /// Initialises an empty node at the given tree level (0 = leaf) in the
  /// given layout (process default if omitted).
  ///
  /// Zeroes the whole block past the magic/level/count words, not just
  /// the header: node buffers are reused across flushes (NodeWriter) and
  /// across serial/parallel serialization paths, and the bulk-load
  /// determinism contract compares node blocks byte for byte — unused
  /// trailing slots, the v2 capacity-sized run tails past count, and the
  /// slack between the entry area and the end of the block must all hold
  /// deterministic zeros, never a previous node's stale bytes.
  void Format(uint16_t level)
    requires Mutable
  {
    Format(level, DefaultNodeLayout());
  }

  void Format(uint16_t level, NodeLayout layout)
    requires Mutable
  {
    WriteU32(0, kNodeMagic);
    WriteU16(4, level);
    WriteU16(6, 0);  // count
    std::memset(block_ + kNodeLayoutOffset, 0,
                block_size_ - kNodeLayoutOffset);
    block_[kNodeLayoutOffset] = static_cast<std::byte>(layout);
    soa_ = layout == NodeLayout::kSoA;
  }

  /// The block carries the node magic and a known layout byte.  (The
  /// layout check matters for AttachTree root validation: a garbage block
  /// that happens to start with the magic still gets rejected unless its
  /// layout byte is one of the two defined values.)
  bool IsFormatted() const {
    if (ReadU32(0) != kNodeMagic) return false;
    uint8_t tag = static_cast<uint8_t>(block_[kNodeLayoutOffset]);
    return tag == static_cast<uint8_t>(NodeLayout::kAoS) ||
           tag == static_cast<uint8_t>(NodeLayout::kSoA);
  }

  /// This node's on-disk layout version.
  NodeLayout layout() const {
    return soa_ ? NodeLayout::kSoA : NodeLayout::kAoS;
  }

  /// Tree level of this node; leaves are level 0.
  uint16_t level() const { return ReadU16(4); }
  bool is_leaf() const { return level() == 0; }

  uint16_t count() const { return ReadU16(6); }
  void set_count(uint16_t c)
    requires Mutable
  {
    PRTREE_DCHECK(c <= capacity_);
    WriteU16(6, c);
  }

  size_t capacity() const { return capacity_; }
  bool full() const { return count() >= capacity_; }

  /// Bounding rectangle of entry `i`.
  Rect<D> GetRect(int i) const {
    PRTREE_DCHECK(i >= 0 && i < count());
    Rect<D> r;
    if (soa_) {
      for (int d = 0; d < D; ++d) {
        std::memcpy(&r.lo[d], CoordPtr(d, i), sizeof(Real));
        std::memcpy(&r.hi[d], CoordPtr(D + d, i), sizeof(Real));
      }
    } else {
      const std::byte* p = AosEntryPtr(i);
      std::memcpy(r.lo.data(), p, D * sizeof(Real));
      std::memcpy(r.hi.data(), p + D * sizeof(Real), D * sizeof(Real));
    }
    return r;
  }

  /// Child PageId (internal node) or DataId (leaf) of entry `i`.
  uint32_t GetId(int i) const {
    PRTREE_DCHECK(i >= 0 && i < count());
    uint32_t id;
    if (soa_) {
      std::memcpy(&id, IdBase() + static_cast<size_t>(i) * sizeof(uint32_t),
                  sizeof(id));
    } else {
      std::memcpy(&id, AosEntryPtr(i) + 2 * D * sizeof(Real), sizeof(id));
    }
    return id;
  }

  /// Overwrites entry `i`.
  void SetEntry(int i, const Rect<D>& r, uint32_t id)
    requires Mutable
  {
    PRTREE_DCHECK(i >= 0 && i < static_cast<int>(capacity_));
    if (soa_) {
      for (int d = 0; d < D; ++d) {
        std::memcpy(CoordPtr(d, i), &r.lo[d], sizeof(Real));
        std::memcpy(CoordPtr(D + d, i), &r.hi[d], sizeof(Real));
      }
      std::memcpy(IdBase() + static_cast<size_t>(i) * sizeof(uint32_t), &id,
                  sizeof(id));
    } else {
      std::byte* p = AosEntryPtr(i);
      std::memcpy(p, r.lo.data(), D * sizeof(Real));
      std::memcpy(p + D * sizeof(Real), r.hi.data(), D * sizeof(Real));
      std::memcpy(p + 2 * D * sizeof(Real), &id, sizeof(id));
    }
  }

  /// Appends an entry; requires !full().
  void Append(const Rect<D>& r, uint32_t id)
    requires Mutable
  {
    uint16_t c = count();
    PRTREE_CHECK(c < capacity_);
    SetEntry(c, r, id);
    set_count(c + 1);
  }

  /// Removes entry `i` by swapping the last entry into its slot.
  ///
  /// In v2 the vacated last slot is re-zeroed so partial nodes keep the
  /// deterministic zeroed-tail contract after deletes, matching what
  /// Format + count Appends would have produced.  (v1 kept stale bytes
  /// past count historically; that behaviour is unchanged for v1 blocks.)
  void RemoveSwap(int i)
    requires Mutable
  {
    uint16_t c = count();
    PRTREE_DCHECK(i >= 0 && i < c);
    if (i != c - 1) SetEntry(i, GetRect(c - 1), GetId(c - 1));
    if (soa_) SetEntry(c - 1, Rect<D>{}, 0);
    set_count(c - 1);
  }

  /// Minimal bounding rectangle over all entries (Empty() if none).
  Rect<D> ComputeMbr() const {
    Rect<D> mbr = Rect<D>::Empty();
    for (int i = 0; i < count(); ++i) mbr.ExtendToCover(GetRect(i));
    return mbr;
  }

  // ---- SoA fast-path accessors (layout() == kSoA only) -----------------
  //
  // Run pointers are NOT suitably aligned for Real in general (the header
  // is 16 bytes but the block base can be anything) — hand them only to
  // consumers that load unaligned, i.e. the rect_batch kernels.

  /// Start of coordinate run k: runs 0..D-1 are lo[0..D-1], runs D..2D-1
  /// are hi[0..D-1].  For D = 2: 0 = xmin, 1 = ymin, 2 = xmax, 3 = ymax.
  RealPtr CoordRun(int k) const {
    PRTREE_DCHECK(soa_ && k >= 0 && k < 2 * D);
    return reinterpret_cast<RealPtr>(block_ + kNodeHeaderSize +
                                     static_cast<size_t>(k) * capacity_ *
                                         sizeof(Real));
  }

 private:
  BytePtr AosEntryPtr(int i) const {
    return block_ + kNodeHeaderSize +
           static_cast<size_t>(i) * NodeEntrySize<D>();
  }

  // Byte address of coordinate run k, element i (SoA).
  BytePtr CoordPtr(int k, int i) const {
    return block_ + kNodeHeaderSize +
           (static_cast<size_t>(k) * capacity_ + static_cast<size_t>(i)) *
               sizeof(Real);
  }

  // Start of the id run (SoA): after the 2·D coordinate runs.
  BytePtr IdBase() const {
    return block_ + kNodeHeaderSize + 2 * D * capacity_ * sizeof(Real);
  }

  uint32_t ReadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, block_ + off, sizeof(v));
    return v;
  }
  uint16_t ReadU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, block_ + off, sizeof(v));
    return v;
  }
  void WriteU32(size_t off, uint32_t v)
    requires Mutable
  {
    std::memcpy(block_ + off, &v, sizeof(v));
  }
  void WriteU16(size_t off, uint16_t v)
    requires Mutable
  {
    std::memcpy(block_ + off, &v, sizeof(v));
  }

  BytePtr block_;
  size_t block_size_;
  size_t capacity_;
  bool soa_;
};

/// Mutable view over a caller-owned buffer (builders, update paths).
template <int D>
using NodeView = BasicNodeView<D, true>;

/// Read-only view, safe over shared pinned pool memory (query paths).
template <int D>
using ConstNodeView = BasicNodeView<D, false>;

}  // namespace prtree

#endif  // PRTREE_RTREE_NODE_H_
