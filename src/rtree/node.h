// On-disk R-tree node layout.
//
// A node is exactly one device block (§3.1): a 16-byte header followed by
// packed 36-byte entries (for D = 2) — four 8-byte coordinates plus a 4-byte
// identifier, which is a child PageId in internal nodes and an opaque DataId
// in leaves.  With 4 KB blocks this gives the paper's maximum fan-out of
// 113.  Entries are not naturally aligned inside the page, so all field
// access goes through memcpy-based readers/writers (no UB, and the compiler
// lowers these to plain loads/stores on x86).
//
// Two views exist over a block: NodeView (mutable, for builders and the
// update paths, over a caller-owned buffer) and ConstNodeView (read-only,
// what the query engine wraps directly over pinned BufferPool memory — the
// zero-copy read path).  Both are the same template; the mutators are
// compiled out of the const instantiation.

#ifndef PRTREE_RTREE_NODE_H_
#define PRTREE_RTREE_NODE_H_

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "geom/rect.h"
#include "io/block_device.h"
#include "util/check.h"

namespace prtree {

/// Byte offset of the first entry in a node block.
inline constexpr size_t kNodeHeaderSize = 16;

/// Magic tag marking a formatted R-tree node block.
inline constexpr uint32_t kNodeMagic = 0x5052544Eu;  // "PRTN"

/// Size in bytes of one node entry for dimension D.
template <int D>
constexpr size_t NodeEntrySize() {
  return 2 * D * sizeof(Real) + sizeof(uint32_t);
}

/// Maximum number of entries (fan-out) for dimension D and a given block
/// size.  113 for D = 2 with 4 KB blocks, matching §3.1.
template <int D>
constexpr size_t NodeCapacity(size_t block_size) {
  return (block_size - kNodeHeaderSize) / NodeEntrySize<D>();
}

/// \brief View over one node block in caller- or pool-owned memory.
///
/// The view does not own the buffer and performs no I/O.  Mutable views
/// wrap private buffers (callers read the block, wrap it, edit, and write
/// it back); const views may wrap shared pinned pool frames.
template <int D, bool Mutable>
class BasicNodeView {
 public:
  using BytePtr = std::conditional_t<Mutable, std::byte*, const std::byte*>;

  /// Wraps `block` (block_size bytes).  Does not validate; call IsFormatted
  /// or Format first.
  BasicNodeView(BytePtr block, size_t block_size)
      : block_(block), capacity_(NodeCapacity<D>(block_size)) {}

  /// Initialises an empty node at the given tree level (0 = leaf).
  ///
  /// Zeroes the whole entry area, not just the header: node buffers are
  /// reused across flushes (NodeWriter) and across serial/parallel
  /// serialization paths, and the bulk-load determinism contract compares
  /// node blocks byte for byte — unused trailing slots of a partial node
  /// must hold deterministic zeros, never a previous node's stale entries.
  void Format(uint16_t level)
    requires Mutable
  {
    WriteU32(0, kNodeMagic);
    WriteU16(4, level);
    WriteU16(6, 0);  // count
    std::memset(block_ + 8, 0,
                kNodeHeaderSize - 8 + capacity_ * NodeEntrySize<D>());
  }

  bool IsFormatted() const { return ReadU32(0) == kNodeMagic; }

  /// Tree level of this node; leaves are level 0.
  uint16_t level() const { return ReadU16(4); }
  bool is_leaf() const { return level() == 0; }

  uint16_t count() const { return ReadU16(6); }
  void set_count(uint16_t c)
    requires Mutable
  {
    PRTREE_DCHECK(c <= capacity_);
    WriteU16(6, c);
  }

  size_t capacity() const { return capacity_; }
  bool full() const { return count() >= capacity_; }

  /// Bounding rectangle of entry `i`.
  Rect<D> GetRect(int i) const {
    PRTREE_DCHECK(i >= 0 && i < count());
    Rect<D> r;
    const std::byte* p = EntryPtr(i);
    std::memcpy(r.lo.data(), p, D * sizeof(Real));
    std::memcpy(r.hi.data(), p + D * sizeof(Real), D * sizeof(Real));
    return r;
  }

  /// Child PageId (internal node) or DataId (leaf) of entry `i`.
  uint32_t GetId(int i) const {
    PRTREE_DCHECK(i >= 0 && i < count());
    uint32_t id;
    std::memcpy(&id, EntryPtr(i) + 2 * D * sizeof(Real), sizeof(id));
    return id;
  }

  /// Overwrites entry `i`.
  void SetEntry(int i, const Rect<D>& r, uint32_t id)
    requires Mutable
  {
    PRTREE_DCHECK(i >= 0 && i < static_cast<int>(capacity_));
    std::byte* p = EntryPtr(i);
    std::memcpy(p, r.lo.data(), D * sizeof(Real));
    std::memcpy(p + D * sizeof(Real), r.hi.data(), D * sizeof(Real));
    std::memcpy(p + 2 * D * sizeof(Real), &id, sizeof(id));
  }

  /// Appends an entry; requires !full().
  void Append(const Rect<D>& r, uint32_t id)
    requires Mutable
  {
    uint16_t c = count();
    PRTREE_CHECK(c < capacity_);
    SetEntry(c, r, id);
    set_count(c + 1);
  }

  /// Removes entry `i` by swapping the last entry into its slot.
  void RemoveSwap(int i)
    requires Mutable
  {
    uint16_t c = count();
    PRTREE_DCHECK(i >= 0 && i < c);
    if (i != c - 1) SetEntry(i, GetRect(c - 1), GetId(c - 1));
    set_count(c - 1);
  }

  /// Minimal bounding rectangle over all entries (Empty() if none).
  Rect<D> ComputeMbr() const {
    Rect<D> mbr = Rect<D>::Empty();
    for (int i = 0; i < count(); ++i) mbr.ExtendToCover(GetRect(i));
    return mbr;
  }

 private:
  BytePtr EntryPtr(int i) const {
    return block_ + kNodeHeaderSize + static_cast<size_t>(i) *
                                          NodeEntrySize<D>();
  }

  uint32_t ReadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, block_ + off, sizeof(v));
    return v;
  }
  uint16_t ReadU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, block_ + off, sizeof(v));
    return v;
  }
  void WriteU32(size_t off, uint32_t v)
    requires Mutable
  {
    std::memcpy(block_ + off, &v, sizeof(v));
  }
  void WriteU16(size_t off, uint16_t v)
    requires Mutable
  {
    std::memcpy(block_ + off, &v, sizeof(v));
  }

  BytePtr block_;
  size_t capacity_;
};

/// Mutable view over a caller-owned buffer (builders, update paths).
template <int D>
using NodeView = BasicNodeView<D, true>;

/// Read-only view, safe over shared pinned pool memory (query paths).
template <int D>
using ConstNodeView = BasicNodeView<D, false>;

}  // namespace prtree

#endif  // PRTREE_RTREE_NODE_H_
