// Batched per-node entry testing for traversals.
//
// NodeScanner is the seam between a node view (either on-disk layout,
// rtree/node.h) and the SIMD kernel library (geom/rect_batch.h).  A
// traversal owns one scanner and calls it once per visited node; the
// scanner fills reusable scratch (a bitmask of passing entries, or a run
// of squared distances) so the hot loop allocates nothing after the first
// node.
//
// Layout policy:
//  * v2 (SoA) nodes with D == 2 feed their coordinate runs straight into
//    the batched kernels — the fast path the layout exists for.
//  * v1 (AoS) nodes take a per-entry scalar loop for the mask predicates
//    (gathering four runs just to run a comparison kernel would cost more
//    than it saves, and it would make the scalar-v1 bench leg dishonestly
//    slow).  For MinDist2 — real arithmetic, where lanes do win — AoS
//    nodes gather their coordinates into scratch runs and call the same
//    kernel the SoA path uses.
//  * D != 2 always runs the scalar loops (the kernels are 2-D).
//
// Every path produces bit-identical masks and distance bits (see
// rect_batch.h's dispatch contract), so QueryStats and results do not
// depend on layout or SIMD level.  Mask iteration via ForEachSetBit runs
// in increasing entry order — the same order as the historical scalar
// entry loop.

#ifndef PRTREE_RTREE_NODE_SCAN_H_
#define PRTREE_RTREE_NODE_SCAN_H_

#include <array>
#include <cstring>
#include <vector>

#include "geom/rect_batch.h"
#include "rtree/node.h"

namespace prtree {

/// \brief Reusable per-traversal scratch + dispatch over one node's entries.
///
/// Not thread-safe: one scanner per traversal (they are cheap — a few
/// lazily grown vectors).  The returned pointers alias the scanner's
/// scratch and are valid until the next call on the same scanner.
template <int D>
class NodeScanner {
 public:
  /// Bitmask of entries whose rectangle intersects `q`
  /// (Rect::Intersects semantics).  RectMaskWords(node.count()) words;
  /// bits at or above node.count() are zero.
  template <bool M>
  const uint64_t* IntersectMask(const BasicNodeView<D, M>& node,
                                const Rect<D>& q) {
    const size_t n = node.count();
    if constexpr (D == 2) {
      if (node.layout() == NodeLayout::kSoA) {
        GrowMask(n);
        BatchIntersect(q, node.CoordRun(0), node.CoordRun(1),
                       node.CoordRun(2), node.CoordRun(3), n, mask_.data());
        return mask_.data();
      }
    }
    return ScalarMask(n, [&](int i) { return node.GetRect(i).Intersects(q); });
  }

  /// Bitmask of entries whose rectangle lies entirely inside `q`
  /// (q.Contains(entry)).
  template <bool M>
  const uint64_t* ContainedInMask(const BasicNodeView<D, M>& node,
                                  const Rect<D>& q) {
    const size_t n = node.count();
    if constexpr (D == 2) {
      if (node.layout() == NodeLayout::kSoA) {
        GrowMask(n);
        BatchContainedIn(q, node.CoordRun(0), node.CoordRun(1),
                         node.CoordRun(2), node.CoordRun(3), n, mask_.data());
        return mask_.data();
      }
    }
    return ScalarMask(n, [&](int i) { return q.Contains(node.GetRect(i)); });
  }

  /// Bitmask of entries whose rectangle entirely covers `q`
  /// (entry.Contains(q)) — the delete descent's subtree test.
  template <bool M>
  const uint64_t* CoversMask(const BasicNodeView<D, M>& node,
                             const Rect<D>& q) {
    const size_t n = node.count();
    if constexpr (D == 2) {
      if (node.layout() == NodeLayout::kSoA) {
        GrowMask(n);
        BatchCovers(q, node.CoordRun(0), node.CoordRun(1), node.CoordRun(2),
                    node.CoordRun(3), n, mask_.data());
        return mask_.data();
      }
    }
    return ScalarMask(n, [&](int i) { return node.GetRect(i).Contains(q); });
  }

  /// Squared MINDIST from `p` to every entry, in entry order; element i is
  /// valid for i < node.count().  sqrt(d2[i]) is bit-identical to
  /// MinDist (rtree/knn.h) on the same entry.
  template <bool M>
  const Real* MinDist2(const BasicNodeView<D, M>& node,
                       const std::array<Real, D>& p) {
    const size_t n = node.count();
    if (dist_.size() < n) dist_.resize(node.capacity());
    if constexpr (D == 2) {
      if (node.layout() == NodeLayout::kSoA) {
        BatchMinDist2(p[0], p[1], node.CoordRun(0), node.CoordRun(1),
                      node.CoordRun(2), node.CoordRun(3), n, dist_.data());
      } else {
        // AoS: gather into scratch runs, then the same kernel as SoA —
        // same TU, same math, same bits.
        for (int k = 0; k < 4; ++k) {
          if (gather_[k].size() < n) gather_[k].resize(node.capacity());
        }
        for (size_t i = 0; i < n; ++i) {
          Rect<D> r = node.GetRect(static_cast<int>(i));
          gather_[0][i] = r.lo[0];
          gather_[1][i] = r.lo[1];
          gather_[2][i] = r.hi[0];
          gather_[3][i] = r.hi[1];
        }
        BatchMinDist2(p[0], p[1], gather_[0].data(), gather_[1].data(),
                      gather_[2].data(), gather_[3].data(), n, dist_.data());
      }
      return dist_.data();
    } else {
      for (size_t i = 0; i < n; ++i) {
        Rect<D> r = node.GetRect(static_cast<int>(i));
        Real d2 = 0;
        for (int d = 0; d < D; ++d) {
          Real delta = 0;
          if (p[d] < r.lo[d]) {
            delta = r.lo[d] - p[d];
          } else if (p[d] > r.hi[d]) {
            delta = p[d] - r.hi[d];
          }
          d2 += delta * delta;
        }
        dist_[i] = d2;
      }
      return dist_.data();
    }
  }

 private:
  template <typename Pred>
  const uint64_t* ScalarMask(size_t n, Pred pred) {
    GrowMask(n);
    std::memset(mask_.data(), 0, RectMaskWords(n) * sizeof(uint64_t));
    for (size_t i = 0; i < n; ++i) {
      if (pred(static_cast<int>(i))) {
        mask_[i >> 6] |= uint64_t{1} << (i & 63);
      }
    }
    return mask_.data();
  }

  void GrowMask(size_t n) {
    if (mask_.size() < RectMaskWords(n)) mask_.resize(RectMaskWords(n));
  }

  std::vector<uint64_t> mask_;
  std::vector<Real> dist_;
  std::array<std::vector<Real>, 4> gather_;  // AoS kNN coordinate staging
};

}  // namespace prtree

#endif  // PRTREE_RTREE_NODE_SCAN_H_
