// Unified bulk-load entry point — one API over every loader in the paper.
//
// The PR-tree (§2), the packed Hilbert / four-dimensional Hilbert R-trees,
// TGS and STR (§1.1) historically each exposed an ad-hoc BulkLoadXxx
// function.  Benches, examples and the experiment harness now construct any
// of them through BulkLoader: pick a LoaderKind, set BuildOptions (memory
// budget, threads, PR-tree knobs), Build().  This header sits at the top of
// the construction stack — it is the one place that includes the core and
// baseline loaders together.
//
// Parallel builds are deterministic by construction.  BuildOptions.threads
// (or an external pool) accelerates the CPU-heavy stages — in-memory run
// sorting (util/parallel.h ParallelSort), the pseudo-PR-tree kd recursion,
// the grid builder's base-case regions, upper-level node packing — while
// the coordinating thread performs every device Allocate/Free in the same
// order as a serial build and retires concurrently produced leaves in
// input order.  Same input + same options => byte-identical tree for ANY
// thread count, so every paper-figure bench stays reproducible; the
// determinism suite (tests/bulk_loader_test.cc) walks both trees page by
// page to enforce it.

#ifndef PRTREE_RTREE_BULK_LOADER_H_
#define PRTREE_RTREE_BULK_LOADER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "baselines/hilbert_rtree.h"
#include "baselines/str_rtree.h"
#include "baselines/tgs_rtree.h"
#include "core/prtree.h"
#include "io/stream.h"
#include "io/work_env.h"
#include "rtree/rtree.h"
#include "util/parallel.h"
#include "util/status.h"

namespace prtree {

/// Construction options shared by every loader.
struct BuildOptions {
  /// Advisory working-memory budget (the paper's M, §3.1).
  size_t memory_bytes = kDefaultMemoryBudget;

  /// Worker threads for the CPU-heavy build stages.  1 = fully serial.
  /// The built tree is byte-identical for any value (see file comment).
  int threads = 1;

  /// Optional externally owned pool; overrides `threads` when non-null
  /// (callers sharing one pool across many builds avoid re-spawning
  /// workers).
  ThreadPool* pool = nullptr;

  /// PR-tree only: priority-leaf capacity as a fraction of node capacity
  /// (1.0 is the paper's structure; see PrTreeOptions).
  double priority_fraction = 1.0;

  /// PR-tree only: force the external grid algorithm even when a stage
  /// fits in memory (tests exercise the grid path end to end with this).
  bool force_grid = false;
};

/// The bulk-loading algorithms of the paper's evaluation (§3) plus STR.
enum class LoaderKind { kPrTree, kHilbert, kHilbert4D, kTgs, kStr };

/// All kinds, in the paper's presentation order.
inline std::vector<LoaderKind> AllLoaderKinds() {
  return {LoaderKind::kPrTree, LoaderKind::kHilbert, LoaderKind::kHilbert4D,
          LoaderKind::kTgs, LoaderKind::kStr};
}

/// Lower-case identifier used by flags and JSON output.
inline const char* LoaderKindName(LoaderKind kind) {
  switch (kind) {
    case LoaderKind::kPrTree:
      return "pr";
    case LoaderKind::kHilbert:
      return "hilbert";
    case LoaderKind::kHilbert4D:
      return "hilbert4d";
    case LoaderKind::kTgs:
      return "tgs";
    case LoaderKind::kStr:
      return "str";
  }
  return "?";
}

/// Parses "pr", "hilbert"/"h", "hilbert4d"/"h4", "tgs", "str".
inline bool ParseLoaderKind(std::string_view name, LoaderKind* out) {
  if (name == "pr") {
    *out = LoaderKind::kPrTree;
  } else if (name == "hilbert" || name == "h") {
    *out = LoaderKind::kHilbert;
  } else if (name == "hilbert4d" || name == "h4") {
    *out = LoaderKind::kHilbert4D;
  } else if (name == "tgs") {
    *out = LoaderKind::kTgs;
  } else if (name == "str") {
    *out = LoaderKind::kStr;
  } else {
    return false;
  }
  return true;
}

/// \brief Abstract bulk loader: builds an RTree<D> over a record stream.
///
/// Concrete loaders are created by MakeBulkLoader(); they are stateless
/// and reusable (each Build() runs independently, spawning a private pool
/// when opts.threads > 1 and no external pool was given).
template <int D>
class BulkLoader {
 public:
  explicit BulkLoader(const BuildOptions& opts) : opts_(opts) {}
  virtual ~BulkLoader() = default;

  BulkLoader(const BulkLoader&) = delete;
  BulkLoader& operator=(const BulkLoader&) = delete;

  virtual LoaderKind kind() const = 0;
  const char* name() const { return LoaderKindName(kind()); }
  const BuildOptions& options() const { return opts_; }

  /// Bulk-loads `tree` (must be empty) over `input` on `device`.
  Status Build(BlockDevice* device, Stream<Record<D>>* input,
               RTree<D>* tree) const {
    WorkEnv env{device, opts_.memory_bytes, opts_.pool};
    std::unique_ptr<ThreadPool> owned;
    if (env.pool == nullptr && opts_.threads > 1) {
      owned = std::make_unique<ThreadPool>(opts_.threads);
      env.pool = owned.get();
    }
    return DoBuild(env, input, tree);
  }

  /// Convenience overload: spills `input` to a stream on `device` first so
  /// I/O accounting matches the stream entry point.
  Status Build(BlockDevice* device, const std::vector<Record<D>>& input,
               RTree<D>* tree) const {
    Stream<Record<D>> stream(device);
    stream.Append(input);
    stream.Flush();
    return Build(device, &stream, tree);
  }

 protected:
  virtual Status DoBuild(WorkEnv env, Stream<Record<D>>* input,
                         RTree<D>* tree) const = 0;

  const BuildOptions opts_;
};

namespace internal {

template <int D>
class PrTreeLoader final : public BulkLoader<D> {
 public:
  using BulkLoader<D>::BulkLoader;
  LoaderKind kind() const override { return LoaderKind::kPrTree; }

 protected:
  Status DoBuild(WorkEnv env, Stream<Record<D>>* input,
                 RTree<D>* tree) const override {
    PrTreeOptions popts;
    popts.priority_fraction = this->opts_.priority_fraction;
    popts.force_grid = this->opts_.force_grid;
    return BulkLoadPrTree<D>(env, input, tree, popts);
  }
};

template <int D>
class HilbertLoader final : public BulkLoader<D> {
 public:
  using BulkLoader<D>::BulkLoader;
  LoaderKind kind() const override { return LoaderKind::kHilbert; }

 protected:
  Status DoBuild(WorkEnv env, Stream<Record<D>>* input,
                 RTree<D>* tree) const override {
    if constexpr (D == 2) {
      return BulkLoadHilbert(env, input, tree);
    } else {
      (void)env;
      (void)input;
      (void)tree;
      return Status::InvalidArgument(
          "the centre-curve Hilbert loader is 2-D only; use hilbert4d");
    }
  }
};

template <int D>
class Hilbert4DLoader final : public BulkLoader<D> {
 public:
  using BulkLoader<D>::BulkLoader;
  LoaderKind kind() const override { return LoaderKind::kHilbert4D; }

 protected:
  Status DoBuild(WorkEnv env, Stream<Record<D>>* input,
                 RTree<D>* tree) const override {
    return BulkLoadHilbert4D<D>(env, input, tree);
  }
};

template <int D>
class TgsLoaderAdapter final : public BulkLoader<D> {
 public:
  using BulkLoader<D>::BulkLoader;
  LoaderKind kind() const override { return LoaderKind::kTgs; }

 protected:
  Status DoBuild(WorkEnv env, Stream<Record<D>>* input,
                 RTree<D>* tree) const override {
    return BulkLoadTgs<D>(env, input, tree);
  }
};

template <int D>
class StrLoader final : public BulkLoader<D> {
 public:
  using BulkLoader<D>::BulkLoader;
  LoaderKind kind() const override { return LoaderKind::kStr; }

 protected:
  Status DoBuild(WorkEnv env, Stream<Record<D>>* input,
                 RTree<D>* tree) const override {
    return BulkLoadStr<D>(env, input, tree);
  }
};

}  // namespace internal

/// Factory: one construction entry point for every index variant.
template <int D = 2>
std::unique_ptr<BulkLoader<D>> MakeBulkLoader(
    LoaderKind kind, const BuildOptions& opts = BuildOptions{}) {
  switch (kind) {
    case LoaderKind::kPrTree:
      return std::make_unique<internal::PrTreeLoader<D>>(opts);
    case LoaderKind::kHilbert:
      return std::make_unique<internal::HilbertLoader<D>>(opts);
    case LoaderKind::kHilbert4D:
      return std::make_unique<internal::Hilbert4DLoader<D>>(opts);
    case LoaderKind::kTgs:
      return std::make_unique<internal::TgsLoaderAdapter<D>>(opts);
    case LoaderKind::kStr:
      return std::make_unique<internal::StrLoader<D>>(opts);
  }
  return nullptr;
}

}  // namespace prtree

#endif  // PRTREE_RTREE_BULK_LOADER_H_
