// The block-based R-tree container shared by all index variants.
//
// Every bulk loader in this library (PR, packed Hilbert, 4-D Hilbert, TGS,
// STR) produces an instance of this one container: a height-balanced
// multiway tree of node blocks in which each internal entry stores the
// minimal bounding box of its child's subtree (§1.1).  Because the container
// and its query procedure are shared, query-performance comparisons between
// variants measure index quality only.

#ifndef PRTREE_RTREE_RTREE_H_
#define PRTREE_RTREE_RTREE_H_

#include <functional>
#include <vector>

#include "geom/rect.h"
#include "io/buffer_pool.h"
#include "rtree/node.h"
#include "util/check.h"

namespace prtree {

/// \brief Query-time visit counters.
///
/// `leaves_visited` is the paper's reported query cost: with all internal
/// nodes cached (§3.3), I/Os per query == leaf blocks read.
struct QueryStats {
  uint64_t nodes_visited = 0;
  uint64_t internal_visited = 0;
  uint64_t leaves_visited = 0;
  uint64_t results = 0;

  QueryStats& operator+=(const QueryStats& o) {
    nodes_visited += o.nodes_visited;
    internal_visited += o.internal_visited;
    leaves_visited += o.leaves_visited;
    results += o.results;
    return *this;
  }
};

/// \brief Structural summary of a tree (per-level node counts, packing).
struct TreeStats {
  int height = 0;                      // root level; a leaf-only tree is 0
  uint64_t num_nodes = 0;              // all node blocks
  uint64_t num_leaves = 0;
  uint64_t num_entries = 0;            // data entries in leaves
  std::vector<uint64_t> nodes_per_level;
  double utilization = 0.0;            // filled entry slots / total slots
};

/// \brief A height-balanced R-tree of node blocks on a BlockDevice.
///
/// The object holds the tree's superblock state (root page, height, entry
/// count); the nodes live on the device.  Bulk loaders construct trees via
/// the page-level helpers (AllocateNode/WriteNode), dynamic updates via
/// update.h, and all reads go through Query/VisitNode.
template <int D = 2>
class RTree {
 public:
  using RectT = Rect<D>;
  using RecordT = Record<D>;

  explicit RTree(BlockDevice* device) : device_(device) {
    PRTREE_CHECK(device_ != nullptr);
    PRTREE_CHECK(NodeCapacity<D>(device->block_size()) >= 2);
  }

  BlockDevice* device() const { return device_; }
  size_t block_size() const { return device_->block_size(); }

  /// Fan-out: entries per node block (113 for D = 2 with 4 KB blocks).
  size_t capacity() const { return NodeCapacity<D>(block_size()); }

  bool empty() const { return root_ == kInvalidPageId; }
  PageId root() const { return root_; }

  /// Level of the root node; 0 means the root is a leaf.  Undefined for an
  /// empty tree.
  int height() const { return height_; }

  /// Number of data records stored.
  size_t size() const { return size_; }

  /// Installs a bulk-loaded tree.  `size` is the number of data records.
  void SetRoot(PageId root, int height, size_t size) {
    root_ = root;
    height_ = height;
    size_ = size;
  }

  /// Adjusts the record count after updates.
  void set_size(size_t n) { size_ = n; }

  /// \brief Window query (§1.1): reports every stored record whose
  /// rectangle intersects `window` by calling `emit(const RecordT&)`.
  ///
  /// Visits exactly the nodes whose MBR intersects the window — the
  /// standard R-tree procedure the paper analyses.  If `pool` is non-null
  /// all node reads go through it (the paper's internal-node cache);
  /// otherwise nodes are read from the device.
  template <typename Emit>
  QueryStats Query(const RectT& window, Emit emit,
                   BufferPool* pool = nullptr) const {
    QueryStats qs;
    if (empty()) return qs;
    std::vector<std::byte> buf(block_size());
    std::vector<PageId> stack{root_};
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      FetchNode(page, buf.data(), pool);
      NodeView<D> node(buf.data(), block_size());
      ++qs.nodes_visited;
      if (node.is_leaf()) {
        ++qs.leaves_visited;
        for (int i = 0; i < node.count(); ++i) {
          RectT r = node.GetRect(i);
          if (r.Intersects(window)) {
            ++qs.results;
            emit(RecordT{r, node.GetId(i)});
          }
        }
      } else {
        ++qs.internal_visited;
        for (int i = 0; i < node.count(); ++i) {
          if (node.GetRect(i).Intersects(window)) {
            stack.push_back(node.GetId(i));
          }
        }
      }
    }
    return qs;
  }

  /// Window query that materialises matching records.
  std::vector<RecordT> QueryToVector(const RectT& window,
                                     BufferPool* pool = nullptr) const {
    std::vector<RecordT> out;
    Query(window, [&](const RecordT& r) { out.push_back(r); }, pool);
    return out;
  }

  /// MBR of the whole tree (Empty() for an empty tree).  Costs one node
  /// read.
  RectT Mbr() const {
    if (empty()) return RectT::Empty();
    std::vector<std::byte> buf(block_size());
    FetchNode(root_, buf.data(), nullptr);
    return NodeView<D>(buf.data(), block_size()).ComputeMbr();
  }

  /// \brief Walks the whole tree and returns structural statistics
  /// (§3.3's space-utilisation numbers).
  TreeStats ComputeStats() const {
    TreeStats ts;
    if (empty()) return ts;
    ts.height = height_;
    ts.nodes_per_level.assign(height_ + 1, 0);
    uint64_t slots = 0;
    uint64_t filled = 0;
    std::vector<std::byte> buf(block_size());
    std::vector<PageId> stack{root_};
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      FetchNode(page, buf.data(), nullptr);
      NodeView<D> node(buf.data(), block_size());
      ++ts.num_nodes;
      ts.nodes_per_level[node.level()] += 1;
      slots += node.capacity();
      filled += node.count();
      if (node.is_leaf()) {
        ++ts.num_leaves;
        ts.num_entries += node.count();
      } else {
        for (int i = 0; i < node.count(); ++i) {
          stack.push_back(node.GetId(i));
        }
      }
    }
    ts.utilization = slots == 0 ? 0.0 : static_cast<double>(filled) / slots;
    return ts;
  }

  /// Frees every node block of the tree and resets to empty.  Used by the
  /// logarithmic method when a level is merged away.
  void FreeAll() {
    if (empty()) return;
    std::vector<std::byte> buf(block_size());
    std::vector<PageId> stack{root_};
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      AbortIfError(device_->Read(page, buf.data()));
      NodeView<D> node(buf.data(), block_size());
      if (!node.is_leaf()) {
        for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
      }
      device_->Free(page);
    }
    root_ = kInvalidPageId;
    height_ = 0;
    size_ = 0;
  }

  /// Reads node `page` into `buf`, through `pool` when given.
  void FetchNode(PageId page, std::byte* buf, BufferPool* pool) const {
    if (pool != nullptr) {
      AbortIfError(pool->Fetch(page, buf));
    } else {
      AbortIfError(device_->Read(page, buf));
    }
  }

  /// \brief Warms `pool` with every internal node — the paper's query setup
  /// ("in all our experiments we cached all internal nodes", §3.3).  Leaves
  /// are deliberately not cached, so query I/O == leaves read.
  /// Returns the number of internal nodes loaded.
  size_t CacheInternalNodes(BufferPool* pool) const {
    if (empty() || height_ == 0) return 0;
    std::vector<std::byte> buf(block_size());
    size_t loaded = 0;
    std::vector<std::pair<PageId, int>> stack{{root_, height_}};
    while (!stack.empty()) {
      auto [page, level] = stack.back();
      stack.pop_back();
      AbortIfError(pool->Fetch(page, buf.data()));
      NodeView<D> node(buf.data(), block_size());
      ++loaded;
      if (level <= 1) continue;  // children are leaves
      for (int i = 0; i < node.count(); ++i) {
        stack.push_back({node.GetId(i), level - 1});
      }
    }
    return loaded;
  }

 private:
  BlockDevice* device_;
  PageId root_ = kInvalidPageId;
  int height_ = 0;
  size_t size_ = 0;
};

using RTree2 = RTree<2>;

}  // namespace prtree

#endif  // PRTREE_RTREE_RTREE_H_
