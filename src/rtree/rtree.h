// The block-based R-tree container shared by all index variants.
//
// Every bulk loader in this library (PR, packed Hilbert, 4-D Hilbert, TGS,
// STR) produces an instance of this one container: a height-balanced
// multiway tree of node blocks in which each internal entry stores the
// minimal bounding box of its child's subtree (§1.1).  Because the container
// and its query procedure are shared, query-performance comparisons between
// variants measure index quality only.
//
// All node reads flow through PinNode(), which returns a pinned PageGuard:
// with a BufferPool the guard is a zero-copy view over pool memory, without
// one it owns a private copy.  Queries are read-only over const tree state
// plus thread-safe device/pool calls, so any number of threads may query
// one tree concurrently (each gets its own exact QueryStats); mutations
// (bulk loads, updates, FreeAll) still require exclusive access.

#ifndef PRTREE_RTREE_RTREE_H_
#define PRTREE_RTREE_RTREE_H_

#include <atomic>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "geom/rect.h"
#include "io/buffer_pool.h"
#include "rtree/node.h"
#include "rtree/node_scan.h"
#include "util/check.h"

namespace prtree {

/// \brief Query-time visit counters.
///
/// `leaves_visited` is the paper's reported query cost: with all internal
/// nodes cached (§3.3), I/Os per query == leaf blocks read.
struct QueryStats {
  uint64_t nodes_visited = 0;
  uint64_t internal_visited = 0;
  uint64_t leaves_visited = 0;
  uint64_t results = 0;

  QueryStats& operator+=(const QueryStats& o) {
    nodes_visited += o.nodes_visited;
    internal_visited += o.internal_visited;
    leaves_visited += o.leaves_visited;
    results += o.results;
    return *this;
  }
};

/// \brief Structural summary of a tree (per-level node counts, packing).
struct TreeStats {
  int height = 0;                      // root level; a leaf-only tree is 0
  uint64_t num_nodes = 0;              // all node blocks
  uint64_t num_leaves = 0;
  uint64_t num_entries = 0;            // data entries in leaves
  std::vector<uint64_t> nodes_per_level;
  double utilization = 0.0;            // filled entry slots / total slots
};

/// \brief A height-balanced R-tree of node blocks on a BlockDevice.
///
/// The object holds the tree's superblock state (root page, height, entry
/// count); the nodes live on the device.  Bulk loaders construct trees via
/// the page-level helpers (AllocateNode/WriteNode), dynamic updates via
/// update.h, and all reads go through Query/PinNode.
template <int D = 2>
class RTree {
 public:
  using RectT = Rect<D>;
  using RecordT = Record<D>;

  explicit RTree(BlockDevice* device) : device_(device) {
    PRTREE_CHECK(device_ != nullptr);
    PRTREE_CHECK(NodeCapacity<D>(device->block_size()) >= 2);
  }

  // Movable so containers of levels (core/dynamic_prtree.h) can grow; the
  // atomic publication slot forces the members to be spelled out.  Moving
  // is a writer-side operation — never legal while snapshot readers hold
  // the published root.
  RTree(RTree&& o) noexcept
      : device_(o.device_),
        root_(o.root_),
        height_(o.height_),
        size_(o.size_),
        published_root_(
            o.published_root_.load(std::memory_order_relaxed)) {}
  RTree& operator=(RTree&& o) noexcept {
    device_ = o.device_;
    root_ = o.root_;
    height_ = o.height_;
    size_ = o.size_;
    published_root_.store(o.published_root_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    return *this;
  }

  BlockDevice* device() const { return device_; }
  size_t block_size() const { return device_->block_size(); }

  /// Fan-out: entries per node block (113 for D = 2 with 4 KB blocks).
  size_t capacity() const { return NodeCapacity<D>(block_size()); }

  bool empty() const { return root_ == kInvalidPageId; }
  PageId root() const { return root_; }

  /// Level of the root node; 0 means the root is a leaf.  Undefined for an
  /// empty tree.
  int height() const { return height_; }

  /// Number of data records stored.
  size_t size() const { return size_; }

  /// Installs a bulk-loaded tree.  `size` is the number of data records.
  void SetRoot(PageId root, int height, size_t size) {
    root_ = root;
    height_ = height;
    size_ = size;
  }

  /// Adjusts the record count after updates.
  void set_size(size_t n) { size_ = n; }

  /// \brief Atomically publishes the current root for snapshot readers.
  ///
  /// The MVCC contract (rtree/update_io.h): a copy-on-write updater works
  /// against root()/SetRoot() — which stay writer-private — and calls
  /// Publish() exactly once per logical operation, after every shadow page
  /// of the new version is written.  Readers pair an EpochManager::Enter()
  /// with published_root() and traverse via QueryFrom(); the single atomic
  /// store here is the version swap, so a reader observes either the whole
  /// previous version or the whole new one, never a mix.  Bulk-loaded
  /// trees that will be served this way call Publish() once after loading.
  void Publish() {
    published_root_.store(root_, std::memory_order_release);
  }

  /// Root of the newest published version (kInvalidPageId before the first
  /// Publish()).  Safe to read from any thread.
  PageId published_root() const {
    return published_root_.load(std::memory_order_acquire);
  }

  /// \brief Window query (§1.1): reports every stored record whose
  /// rectangle intersects `window` by calling `emit(const RecordT&)`.
  ///
  /// Visits exactly the nodes whose MBR intersects the window — the
  /// standard R-tree procedure the paper analyses.  If `pool` is non-null
  /// all node reads go through it (the paper's internal-node cache);
  /// otherwise nodes are read from the device.  Safe to call from many
  /// threads at once over one shared pool.
  ///
  /// Frontier readahead: when the pool has readahead enabled
  /// (BufferPool::set_readahead), every internal expansion prefetches the
  /// children it just enqueued — one level ahead of the traversal, so by
  /// the time a child is popped (LIFO: the new children come off first)
  /// its block is already staged, and the whole frontier was read as one
  /// batch (one io_uring submission on UringBlockDevice).  Readahead
  /// changes when blocks are read, never what is visited: QueryStats are
  /// byte-identical with it on or off.
  template <typename Emit>
  QueryStats Query(const RectT& window, Emit emit,
                   BufferPool* pool = nullptr) const {
    return QueryFrom(root_, window, emit, pool);
  }

  /// \brief Window query rooted at an explicit page instead of the tree's
  /// current root — the snapshot-read entry point.  MVCC readers capture a
  /// published root (this tree's published_root(), or a level root inside
  /// a DynamicPRTree version) under an EpochGuard and traverse it here
  /// while writers shadow new pages elsewhere; the traversal touches only
  /// `root`'s subtree, never this object's mutable root/height/size
  /// fields, so it is safe concurrently with a copy-on-write updater
  /// publishing new versions.  kInvalidPageId queries the empty tree.
  template <typename Emit>
  QueryStats QueryFrom(PageId root, const RectT& window, Emit emit,
                       BufferPool* pool = nullptr) const {
    QueryStats qs;
    if (root == kInvalidPageId) return qs;
    const bool readahead = pool != nullptr && pool->readahead_enabled();
    std::vector<PageId> stack{root};
    PageGuard guard;  // hoisted: pool-less traversals reuse one buffer
    NodeScanner<D> scan;  // per-traversal scratch for the batched tests
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      PinNode(page, pool, &guard);
      ConstNodeView<D> node(guard.data(), block_size());
      ++qs.nodes_visited;
      // One batched intersection test per node (SIMD over SoA runs when
      // the layout and CPU allow — see rtree/node_scan.h); iterating the
      // mask in increasing entry order keeps emit order and QueryStats
      // byte-identical to the historical per-entry loop.
      const uint64_t* mask = scan.IntersectMask(node, window);
      const size_t words = RectMaskWords(node.count());
      if (node.is_leaf()) {
        ++qs.leaves_visited;
        ForEachSetBit(mask, words, [&](int i) {
          ++qs.results;
          emit(RecordT{node.GetRect(i), node.GetId(i)});
        });
      } else {
        ++qs.internal_visited;
        const size_t frontier = stack.size();
        ForEachSetBit(mask, words,
                      [&](int i) { stack.push_back(node.GetId(i)); });
        if (readahead && stack.size() - frontier >= 2) {
          pool->Prefetch(std::span<const PageId>(stack.data() + frontier,
                                                 stack.size() - frontier));
        }
      }
    }
    return qs;
  }

  /// Window query that materialises matching records.
  std::vector<RecordT> QueryToVector(const RectT& window,
                                     BufferPool* pool = nullptr) const {
    std::vector<RecordT> out;
    Query(window, [&](const RecordT& r) { out.push_back(r); }, pool);
    return out;
  }

  /// MBR of the whole tree (Empty() for an empty tree).  Costs one node
  /// read.
  RectT Mbr() const {
    if (empty()) return RectT::Empty();
    PageGuard guard;
    PinNode(root_, nullptr, &guard);
    return ConstNodeView<D>(guard.data(), block_size()).ComputeMbr();
  }

  /// \brief Walks the whole tree and returns structural statistics
  /// (§3.3's space-utilisation numbers).
  TreeStats ComputeStats() const {
    TreeStats ts;
    if (empty()) return ts;
    ts.height = height_;
    ts.nodes_per_level.assign(height_ + 1, 0);
    uint64_t slots = 0;
    uint64_t filled = 0;
    std::vector<PageId> stack{root_};
    PageGuard guard;
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      PinNode(page, nullptr, &guard);
      ConstNodeView<D> node(guard.data(), block_size());
      ++ts.num_nodes;
      ts.nodes_per_level[node.level()] += 1;
      slots += node.capacity();
      filled += node.count();
      if (node.is_leaf()) {
        ++ts.num_leaves;
        ts.num_entries += node.count();
      } else {
        for (int i = 0; i < node.count(); ++i) {
          stack.push_back(node.GetId(i));
        }
      }
    }
    ts.utilization = slots == 0 ? 0.0 : static_cast<double>(filled) / slots;
    return ts;
  }

  /// Frees every node block of the tree and resets to empty.  Used by the
  /// logarithmic method when a level is merged away.
  void FreeAll() {
    if (empty()) return;
    std::vector<PageId> stack{root_};
    PageGuard guard;
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      PinNode(page, nullptr, &guard);
      ConstNodeView<D> node(guard.data(), block_size());
      if (!node.is_leaf()) {
        for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
      }
      // Freeing the device page under a live guard is fine: the guard's
      // bytes are a private copy.
      device_->Free(page);
    }
    root_ = kInvalidPageId;
    height_ = 0;
    size_ = 0;
  }

  /// \brief Walks the tree, appends every node page to `out` and resets to
  /// empty *without freeing anything* — the MVCC counterpart of FreeAll().
  /// The caller hands the pages to an EpochManager::Retire() after
  /// publishing the version swap that obsoleted them, so snapshot readers
  /// drain before the ids return to the device free list.
  void DetachPages(std::vector<PageId>* out) {
    if (empty()) return;
    std::vector<PageId> stack{root_};
    PageGuard guard;
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      PinNode(page, nullptr, &guard);
      ConstNodeView<D> node(guard.data(), block_size());
      if (!node.is_leaf()) {
        for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
      }
      out->push_back(page);
    }
    root_ = kInvalidPageId;
    height_ = 0;
    size_ = 0;
  }

  /// \brief Pins node `page` into `guard`: through `pool` when given
  /// (zero-copy over the cached frame), else a private copy read from the
  /// device (a hoisted guard re-pinned in a loop reuses its buffer, so
  /// pool-less traversals stay allocation-free).  Any previous pin held by
  /// `guard` is dropped.  Aborts on I/O error — node pages are internal
  /// pointers, so an unreadable page is index corruption, not a
  /// recoverable condition.
  void PinNode(PageId page, BufferPool* pool, PageGuard* guard) const {
    if (pool != nullptr) {
      AbortIfError(pool->Pin(page, guard));
    } else {
      AbortIfError(ReadPage(*device_, page, guard));
    }
  }

  /// \brief Warms `pool` with every internal node — the paper's query setup
  /// ("in all our experiments we cached all internal nodes", §3.3).  Leaves
  /// are deliberately not cached, so query I/O == leaves read.
  /// Returns the number of internal nodes loaded.
  size_t CacheInternalNodes(BufferPool* pool) const {
    if (empty() || height_ == 0) return 0;
    size_t loaded = 0;
    std::vector<std::pair<PageId, int>> stack{{root_, height_}};
    PageGuard guard;
    while (!stack.empty()) {
      auto [page, level] = stack.back();
      stack.pop_back();
      PinNode(page, pool, &guard);
      ConstNodeView<D> node(guard.data(), block_size());
      ++loaded;
      if (level <= 1) continue;  // children are leaves
      for (int i = 0; i < node.count(); ++i) {
        stack.push_back({node.GetId(i), level - 1});
      }
    }
    return loaded;
  }

 private:
  BlockDevice* device_;
  PageId root_ = kInvalidPageId;
  int height_ = 0;
  size_t size_ = 0;
  // MVCC publication slot (see Publish()); distinct from root_ so an
  // updater's intermediate SetRoot() calls never leak a half-built
  // version to snapshot readers.
  std::atomic<PageId> published_root_{kInvalidPageId};
};

using RTree2 = RTree<2>;

}  // namespace prtree

#endif  // PRTREE_RTREE_RTREE_H_
