// Shared experiment harness for the figure/table benchmarks.
//
// Mirrors the paper's protocol (§3.1, §3.3):
//  * every bulk load runs on a fresh device — in-memory by default, or
//    file-backed with --device=file — with a memory budget scaled so
//    data:memory stays near the paper's ~9:1 (574 MB of Eastern data
//    against 64 MB for TPIE), keeping the external-memory behaviour of
//    the algorithms intact at laptop-scale N;
//  * build cost is reported as blocks read+written plus wall-clock seconds;
//  * queries cache all internal nodes, so query cost == leaf blocks read,
//    reported both raw and as a percentage of the optimal T/B.  I/O counts
//    are backend-independent (docs/IO_MODEL.md); only wall time changes
//    between memory and file runs.

#ifndef PRTREE_HARNESS_EXPERIMENT_H_
#define PRTREE_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "geom/rect.h"
#include "io/block_device.h"
#include "io/work_env.h"
#include "rtree/bulk_loader.h"
#include "rtree/rtree.h"

namespace prtree {
namespace harness {

/// The index variants of the paper's evaluation (§3) plus STR.
/// (Alias of the BulkLoader kinds — the harness builds everything through
/// the unified rtree/bulk_loader.h API.)
using Variant = LoaderKind;

/// Short display name used in the paper ("H", "H4", "PR", "TGS", "STR").
const char* VariantName(Variant v);

/// The paper's four contenders, in its presentation order.
std::vector<Variant> PaperVariants();

/// \brief Which storage backend a harness run builds on.
///
/// kind "memory" (default) is MemoryBlockDevice; "file" is FileBlockDevice;
/// "uring" is UringBlockDevice (the file backend with io_uring-batched
/// reads, falling back to pread transparently when the kernel lacks
/// io_uring).  With an empty path the file-backed kinds use an anonymous
/// temp file (unlinked immediately after open, so nothing survives the
/// run); give a path to keep the device file around.
struct DeviceSpec {
  std::string kind = "memory";
  std::string path;
  /// file/uring only: request O_DIRECT (--direct).  Best effort — silently
  /// degrades to buffered I/O where the filesystem refuses.
  bool direct_io = false;
};

/// \brief A bulk-loaded tree with its own device and measurements.
struct BuiltIndex {
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<RTree<2>> tree;
  IoStats build_io;        // blocks read/written during the build
  double build_seconds = 0;
  TreeStats tree_stats;
};

/// Opens a fresh device per `spec` (see DeviceSpec).  Aborts on file
/// errors — harness-only convenience, not library API.
std::unique_ptr<BlockDevice> OpenDeviceOrDie(const DeviceSpec& spec,
                                             size_t block_size);

/// \brief Bulk-loads `variant` over `data` on a fresh device.
///
/// `memory_bytes` == 0 selects the paper-proportional budget
/// (max(data/9, 2 MB)).  `threads` > 1 parallelises the build through the
/// BulkLoader pipeline; the tree (and its I/O counts) are identical for
/// any value, only build_seconds changes.  `device` picks the backend; the
/// tree, query answers and I/O counts are identical across backends too.
BuiltIndex BuildIndex(Variant variant, const std::vector<Record2>& data,
                      size_t memory_bytes = 0, int threads = 1,
                      const DeviceSpec& device = {});

/// Paper-proportional memory budget for a dataset of `n` records.
size_t ScaledMemoryBudget(size_t n);

/// \brief Aggregate query measurements over a batch of windows.
struct QueryMeasurement {
  double avg_leaves = 0;        // leaf blocks read per query (the paper's I/O)
  double avg_internal = 0;      // internal nodes touched per query
  double avg_results = 0;       // T per query
  double pct_of_optimal = 0;    // 100 * sum(leaves) / (sum(T)/B)
  uint64_t total_results = 0;
  double frac_tree_visited = 0;  // share of all leaves read per query
};

/// \brief Runs `queries` against `index`, caching all internal nodes first
/// (§3.3).  Set `cache_internal` false for the cache ablation.
QueryMeasurement MeasureQueries(const BuiltIndex& index,
                                const std::vector<Rect2>& queries,
                                bool cache_internal = true);

/// \brief Command-line options shared by every bench binary.
///
///   --n=<records>       dataset size (default per bench)
///   --queries=<count>   windows per measurement (default 100, as in §3.3)
///   --seed=<uint64>     generator seed
///   --scale=<double>    multiplies --n (quick way to approach paper scale)
///   --threads=<count>   build threads (default 1; results are identical,
///                       only wall-clock changes)
///   --device=<kind>     storage backend: memory (default), file or uring
///   --path=<file>       file/uring backends only: device file path
///                       (default: an anonymous temp file removed at exit)
///   --direct            file/uring backends only: request O_DIRECT
///                       (best effort; page-cache bypass where supported)
///   --json=<path>       additionally write the bench's tables as raw
///                       machine-readable JSON (harness/bench_json.h) —
///                       what tools/eval/run_eval.py consumes
struct BenchOptions {
  size_t n = 0;
  size_t queries = 100;
  bool queries_set = false;  // true when --queries= was given explicitly
  uint64_t seed = 1;
  double scale = 1.0;
  int threads = 1;
  DeviceSpec device;
  std::string json_path;  // empty: no JSON output

  size_t ScaledN() const {
    return static_cast<size_t>(static_cast<double>(n) * scale);
  }
};

/// Parses the shared flags; unknown flags abort with a usage message.
BenchOptions ParseBenchFlags(int argc, char** argv, size_t default_n);

class BenchJson;

/// Records the shared flag set (`n`, `queries`, `seed`, `threads`,
/// `device`) as params of a --json document, so every fig bench's JSON
/// carries the same provenance block.
void AddBenchParams(const BenchOptions& opts, size_t n, BenchJson* json);

}  // namespace harness
}  // namespace prtree

#endif  // PRTREE_HARNESS_EXPERIMENT_H_
