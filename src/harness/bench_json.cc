#include "harness/bench_json.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "util/check.h"

namespace prtree {
namespace harness {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CellToJson(const BenchJson::Cell& cell) {
  switch (cell.kind) {
    case BenchJson::Cell::Kind::kBool:
      return cell.flag ? "true" : "false";
    case BenchJson::Cell::Kind::kString:
      return "\"" + EscapeJson(cell.str) + "\"";
    case BenchJson::Cell::Kind::kNumber: {
      char buf[64];
      // Counters print exactly; measured doubles keep 10 significant
      // digits, enough that re-rendering is byte-stable run to run for
      // any deterministic quantity.
      if (std::isfinite(cell.num) && cell.num == std::floor(cell.num) &&
          std::fabs(cell.num) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(cell.num));
      } else if (std::isfinite(cell.num)) {
        std::snprintf(buf, sizeof(buf), "%.10g", cell.num);
      } else {
        // JSON has no NaN/Inf; null keeps the document parseable.
        std::snprintf(buf, sizeof(buf), "null");
      }
      return buf;
    }
  }
  return "null";
}

}  // namespace

void BenchJson::Table::AddRow(std::vector<Cell> cells) {
  PRTREE_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

BenchJson::BenchJson(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchJson::Param(const std::string& key, Cell value) {
  params_.emplace_back(key, std::move(value));
}

BenchJson::Table* BenchJson::AddTable(std::string name,
                                      std::vector<std::string> columns) {
  auto table = std::make_unique<Table>();
  table->name_ = std::move(name);
  table->columns_ = std::move(columns);
  tables_.push_back(std::move(table));
  return tables_.back().get();
}

std::string BenchJson::ToString() const {
  std::string json = "{\n";
  json += "  \"bench\": \"" + EscapeJson(bench_name_) + "\",\n";
  json += "  \"params\": {";
  for (size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) json += ", ";
    json += "\"" + EscapeJson(params_[i].first) +
            "\": " + CellToJson(params_[i].second);
  }
  json += "},\n";
  json += "  \"tables\": [\n";
  for (size_t t = 0; t < tables_.size(); ++t) {
    const Table& table = *tables_[t];
    json += "    {\"name\": \"" + EscapeJson(table.name_) + "\",\n";
    json += "     \"columns\": [";
    for (size_t c = 0; c < table.columns_.size(); ++c) {
      if (c > 0) json += ", ";
      json += "\"" + EscapeJson(table.columns_[c]) + "\"";
    }
    json += "],\n";
    json += "     \"rows\": [\n";
    for (size_t r = 0; r < table.rows_.size(); ++r) {
      json += "       [";
      for (size_t c = 0; c < table.rows_[r].size(); ++c) {
        if (c > 0) json += ", ";
        json += CellToJson(table.rows_[r][c]);
      }
      json += r + 1 < table.rows_.size() ? "],\n" : "]\n";
    }
    json += "     ]}";
    json += t + 1 < tables_.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

bool BenchJson::WriteFile(const std::string& path) const {
  if (path.empty()) return true;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::string json = ToString();
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace harness
}  // namespace prtree
