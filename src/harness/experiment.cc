#include "harness/experiment.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "harness/bench_json.h"
#include "io/buffer_pool.h"
#include "io/file_block_device.h"
#include "io/uring_block_device.h"
#include "rtree/bulk_loader.h"
#include "util/timer.h"

namespace prtree {
namespace harness {

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kHilbert:
      return "H";
    case Variant::kHilbert4D:
      return "H4";
    case Variant::kPrTree:
      return "PR";
    case Variant::kTgs:
      return "TGS";
    case Variant::kStr:
      return "STR";
  }
  return "?";
}

std::vector<Variant> PaperVariants() {
  return {Variant::kTgs, Variant::kPrTree, Variant::kHilbert,
          Variant::kHilbert4D};
}

size_t ScaledMemoryBudget(size_t n) {
  // The paper: 574 MB Eastern data vs 64 MB for TPIE (~9:1).  Keep the
  // ratio but never drop below 2 MB (the grid/sort algorithms need a few
  // hundred blocks of working space to behave like themselves).
  size_t data_bytes = n * sizeof(Record2);
  return std::max<size_t>(data_bytes / 9, 2u << 20);
}

std::unique_ptr<BlockDevice> OpenDeviceOrDie(const DeviceSpec& spec,
                                             size_t block_size) {
  if (spec.kind == "memory") {
    return std::make_unique<MemoryBlockDevice>(block_size);
  }
  if (spec.kind != "file" && spec.kind != "uring") {
    std::fprintf(stderr, "unknown device kind '%s' (memory|file|uring)\n",
                 spec.kind.c_str());
    std::exit(2);
  }
  std::string path = spec.path;
  const bool anonymous = path.empty();
  if (anonymous) {
    // mkstemp: exclusive creation under an unpredictable name, so the
    // device never lands on a stale path from a previous run.  (The name
    // is then reopened by FileBlockDevice::Open — fine for a bench
    // harness, not a hardened API.)
    path = "/tmp/prtree_harness.XXXXXX";
    int tfd = ::mkstemp(path.data());
    if (tfd < 0) {
      std::fprintf(stderr, "cannot create temp device file: %s\n",
                   std::strerror(errno));
      std::exit(2);
    }
    ::close(tfd);
  }
  FileDeviceOptions fopts;
  fopts.block_size = block_size;
  fopts.truncate = true;
  fopts.direct_io = spec.direct_io;
  std::unique_ptr<BlockDevice> dev;
  AbortIfError(OpenFileBackedDevice(spec.kind, path, fopts, &dev));
  // Anonymous backing: unlink while the fd stays open, so nothing is left
  // behind even on a crashed run.
  if (anonymous) ::unlink(path.c_str());
  return dev;
}

BuiltIndex BuildIndex(Variant variant, const std::vector<Record2>& data,
                      size_t memory_bytes, int threads,
                      const DeviceSpec& device) {
  BuiltIndex out;
  out.device = OpenDeviceOrDie(device, kDefaultBlockSize);
  out.tree = std::make_unique<RTree<2>>(out.device.get());
  if (memory_bytes == 0) memory_bytes = ScaledMemoryBudget(data.size());
  BuildOptions bopts;
  bopts.memory_bytes = memory_bytes;
  bopts.threads = threads;
  std::unique_ptr<BulkLoader<2>> loader = MakeBulkLoader<2>(variant, bopts);

  // Stage the input on the device first (it exists on disk in the paper's
  // setup); the build measurement starts after staging.
  Stream<Record2> input(out.device.get());
  input.Append(data);
  input.Flush();
  out.device->ResetStats();

  Timer timer;
  AbortIfError(loader->Build(out.device.get(), &input, out.tree.get()));
  out.build_seconds = timer.Seconds();
  out.build_io = out.device->stats();
  out.tree_stats = out.tree->ComputeStats();
  return out;
}

QueryMeasurement MeasureQueries(const BuiltIndex& index,
                                const std::vector<Rect2>& queries,
                                bool cache_internal) {
  QueryMeasurement m;
  if (queries.empty()) return m;
  BufferPool pool(index.device.get(),
                  cache_internal ? index.tree_stats.num_nodes + 16 : 0);
  if (cache_internal) index.tree->CacheInternalNodes(&pool);

  uint64_t leaves = 0, internal = 0, results = 0;
  for (const auto& q : queries) {
    QueryStats qs = index.tree->Query(q, [](const Record2&) {},
                                      cache_internal ? &pool : nullptr);
    leaves += qs.leaves_visited;
    internal += qs.internal_visited;
    results += qs.results;
  }
  double nq = static_cast<double>(queries.size());
  m.avg_leaves = static_cast<double>(leaves) / nq;
  m.avg_internal = static_cast<double>(internal) / nq;
  m.avg_results = static_cast<double>(results) / nq;
  m.total_results = results;
  double capacity = static_cast<double>(index.tree->capacity());
  if (results > 0) {
    m.pct_of_optimal = 100.0 * static_cast<double>(leaves) /
                       (static_cast<double>(results) / capacity);
  }
  if (index.tree_stats.num_leaves > 0) {
    m.frac_tree_visited =
        static_cast<double>(leaves) /
        (static_cast<double>(index.tree_stats.num_leaves) * nq);
  }
  return m;
}

BenchOptions ParseBenchFlags(int argc, char** argv, size_t default_n) {
  BenchOptions opts;
  opts.n = default_n;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto parse = [&](const char* prefix, const char** value) {
      size_t len = std::strlen(prefix);
      if (std::strncmp(arg, prefix, len) == 0) {
        *value = arg + len;
        return true;
      }
      return false;
    };
    const char* value = nullptr;
    if (parse("--n=", &value)) {
      opts.n = std::strtoull(value, nullptr, 10);
    } else if (parse("--queries=", &value)) {
      opts.queries = std::strtoull(value, nullptr, 10);
      opts.queries_set = true;
    } else if (parse("--seed=", &value)) {
      opts.seed = std::strtoull(value, nullptr, 10);
    } else if (parse("--scale=", &value)) {
      opts.scale = std::strtod(value, nullptr);
    } else if (parse("--threads=", &value)) {
      opts.threads = static_cast<int>(std::strtol(value, nullptr, 10));
      if (opts.threads < 1) opts.threads = 1;
    } else if (parse("--device=", &value)) {
      opts.device.kind = value;
      if (opts.device.kind != "memory" && opts.device.kind != "file" &&
          opts.device.kind != "uring") {
        std::fprintf(stderr, "--device must be memory, file or uring\n");
        std::exit(2);
      }
    } else if (parse("--path=", &value)) {
      opts.device.path = value;
    } else if (parse("--json=", &value)) {
      opts.json_path = value;
    } else if (std::strcmp(arg, "--direct") == 0) {
      opts.device.direct_io = true;
    } else if (std::strncmp(arg, "--family=", 9) == 0) {
      // Consumed by fig15; ignore here.
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--n=N] [--queries=Q] "
                   "[--seed=S] [--scale=F] [--threads=T] "
                   "[--device=memory|file|uring] [--path=FILE] [--direct] "
                   "[--json=PATH]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return opts;
}

void AddBenchParams(const BenchOptions& opts, size_t n, BenchJson* json) {
  json->Param("n", static_cast<unsigned long long>(n));
  json->Param("queries", static_cast<unsigned long long>(opts.queries));
  json->Param("seed", static_cast<unsigned long long>(opts.seed));
  json->Param("threads", opts.threads);
  json->Param("device", opts.device.kind);
}

}  // namespace harness
}  // namespace prtree
