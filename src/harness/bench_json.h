// Machine-readable mirror of the bench programs' human tables.
//
// Every figure/table/ablation bench prints TablePrinter tables for eyes;
// with --json=PATH (harness/experiment.h, ParseBenchFlags) the same rows
// are captured *raw* — unformatted numbers, no percent signs or thousands
// separators — into one uniform document that the evaluation driver
// (tools/eval/run_eval.py) renders into the committed tables and plots
// under docs/eval/.  Schema (docs/BENCH_FORMAT.md):
//
//   {
//     "bench": "fig12_query_western",
//     "params": {"n": 400000, "queries": 100, "seed": 1, "device": "memory"},
//     "tables": [
//       {"name": "query_cost",
//        "columns": ["query area %", "avg T", "TGS %T/B", ...],
//        "rows": [[0.25, 812, 104.1, ...], ...]}
//     ]
//   }
//
// Cells are numbers wherever the underlying quantity is numeric; columns
// holding wall-clock keep the name "seconds" so downstream consumers can
// identify (and drop) the only machine-dependent values.  Counter cells are
// exact: integral values print as integers, everything else as %.10g.

#ifndef PRTREE_HARNESS_BENCH_JSON_H_
#define PRTREE_HARNESS_BENCH_JSON_H_

#include <memory>
#include <string>
#include <vector>

namespace prtree {
namespace harness {

/// \brief Capture-and-serialize helper for the figure benches' JSON output.
///
/// Construct with the bench name, record Param() scalars and AddTable()/
/// AddRow() mirrors of every printed table, then WriteFile() once at the
/// end.  All methods are no-fail; WriteFile reports I/O errors.
class BenchJson {
 public:
  /// One table cell: a number, a string, or a bool.
  struct Cell {
    enum class Kind { kNumber, kString, kBool };
    Kind kind;
    double num = 0;
    bool flag = false;
    std::string str;

    Cell(double v) : kind(Kind::kNumber), num(v) {}                 // NOLINT
    Cell(int v) : kind(Kind::kNumber), num(v) {}                    // NOLINT
    Cell(unsigned v) : kind(Kind::kNumber), num(v) {}               // NOLINT
    Cell(long v) : kind(Kind::kNumber),                             // NOLINT
                   num(static_cast<double>(v)) {}
    Cell(unsigned long v) : kind(Kind::kNumber),                    // NOLINT
                            num(static_cast<double>(v)) {}
    Cell(long long v) : kind(Kind::kNumber),                        // NOLINT
                        num(static_cast<double>(v)) {}
    Cell(unsigned long long v) : kind(Kind::kNumber),               // NOLINT
                                 num(static_cast<double>(v)) {}
    Cell(bool v) : kind(Kind::kBool), flag(v) {}                    // NOLINT
    Cell(const char* v) : kind(Kind::kString), str(v) {}            // NOLINT
    Cell(std::string v) : kind(Kind::kString), str(std::move(v)) {} // NOLINT
  };

  /// A captured table: fixed columns, then rows of matching width.
  class Table {
   public:
    void AddRow(std::vector<Cell> cells);

   private:
    friend class BenchJson;
    std::string name_;
    std::vector<std::string> columns_;
    std::vector<std::vector<Cell>> rows_;
  };

  explicit BenchJson(std::string bench_name);

  /// Records a top-level scalar under "params" (insertion order kept).
  void Param(const std::string& key, Cell value);

  /// Adds a named table; the pointer stays valid for the document's life.
  Table* AddTable(std::string name, std::vector<std::string> columns);

  std::string ToString() const;

  /// Serializes to `path`.  Empty path is a silent no-op (the benches call
  /// this unconditionally; --json unset means "no JSON").  Returns false
  /// and prints to stderr when the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, Cell>> params_;
  // unique_ptr so AddTable's returned pointer survives vector growth.
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace harness
}  // namespace prtree

#endif  // PRTREE_HARNESS_BENCH_JSON_H_
