// Packed Hilbert R-tree (H) and four-dimensional Hilbert R-tree (H4)
// bulk loaders — the paper's primary comparison baselines (§1.1, §3, [15]).
//
// Both sort the input by a single one-dimensional key and pack leaves in
// that order, then build the upper levels bottom-up level-by-level:
//
//  * H sorts by the Hilbert value of the rectangle centre — query-efficient
//    on nicely distributed data but blind to rectangle extent;
//  * H4 maps each rectangle to the 2D-dimensional corner point
//    (xmin, ymin, xmax, ymax) and sorts by its position on the
//    2D-dimensional Hilbert curve — slightly worse on nice data, more
//    robust on extreme data (§3.3 confirms both claims).
//
// Sorting goes through the external sorter, so build cost is measured in
// block I/Os exactly as in Figures 9-10.

#ifndef PRTREE_BASELINES_HILBERT_RTREE_H_
#define PRTREE_BASELINES_HILBERT_RTREE_H_

#include <vector>

#include "geom/hilbert.h"
#include "io/external_sort.h"
#include "io/stream.h"
#include "io/work_env.h"
#include "rtree/builder.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace prtree {

namespace internal {

/// A record tagged with its 128-bit Hilbert sort key.
template <int D>
struct HilbertKeyed {
  HilbertKey key;
  Record<D> rec;
};

template <int D>
struct HilbertKeyedLess {
  bool operator()(const HilbertKeyed<D>& a, const HilbertKeyed<D>& b) const {
    if (!(a.key == b.key)) return a.key < b.key;
    return a.rec.id < b.rec.id;
  }
};

/// One scan to find the dataset extent (needed to quantise coordinates
/// onto the Hilbert grid).
template <int D>
Rect<D> ComputeExtent(Stream<Record<D>>* input) {
  Rect<D> extent = Rect<D>::Empty();
  typename Stream<Record<D>>::Reader reader(input);
  while (!reader.Done()) extent.ExtendToCover(reader.Next().rect);
  return extent;
}

/// Shared tail of both Hilbert loaders: key, sort, pack.
template <int D, typename KeyFn>
Status BulkLoadHilbertImpl(WorkEnv env, Stream<Record<D>>* input,
                           RTree<D>* tree, KeyFn key_fn) {
  if (!tree->empty()) {
    return Status::InvalidArgument("output tree is not empty");
  }
  input->Flush();
  if (input->size() == 0) return Status::OK();
  Rect<D> extent = ComputeExtent(input);

  // Tag every record with its curve position.
  Stream<HilbertKeyed<D>> keyed(env.device);
  {
    typename Stream<Record<D>>::Reader reader(input);
    while (!reader.Done()) {
      Record<D> rec = reader.Next();
      keyed.Push(HilbertKeyed<D>{key_fn(rec.rect, extent), rec});
    }
    keyed.Flush();
  }
  Stream<HilbertKeyed<D>> sorted =
      ExternalSort(env, &keyed, HilbertKeyedLess<D>{});
  keyed.Clear();

  // Pack leaves in curve order, then the upper levels (§1.1 [15]).
  NodeWriter<D> writer(env.device, /*level=*/0);
  {
    typename Stream<HilbertKeyed<D>>::Reader reader(&sorted);
    while (!reader.Done()) {
      HilbertKeyed<D> k = reader.Next();
      writer.Add(k.rec.rect, k.rec.id);
    }
  }
  size_t n = sorted.size();
  sorted.Clear();
  PackUpward(tree, writer.Finish(), n, env.pool);
  return Status::OK();
}

}  // namespace internal

/// \brief Bulk-loads the packed Hilbert R-tree of Kamel and Faloutsos:
/// records sorted by the 2-D Hilbert value of their centres.
inline Status BulkLoadHilbert(WorkEnv env, Stream<Record<2>>* input,
                              RTree<2>* tree) {
  return internal::BulkLoadHilbertImpl<2>(
      env, input, tree, [](const Rect<2>& r, const Rect<2>& extent) {
        return HilbertCenterKey(r, extent);
      });
}

/// \brief Bulk-loads the four-dimensional (generally, 2D-dimensional)
/// Hilbert R-tree: records sorted by the Hilbert value of their corner
/// transformation.
template <int D>
Status BulkLoadHilbert4D(WorkEnv env, Stream<Record<D>>* input,
                         RTree<D>* tree) {
  return internal::BulkLoadHilbertImpl<D>(
      env, input, tree, [](const Rect<D>& r, const Rect<D>& extent) {
        return HilbertCornerKey<D>(r, extent);
      });
}

/// Vector convenience overloads (spill to a stream first so I/O accounting
/// matches the stream entry points).
inline Status BulkLoadHilbert(WorkEnv env, const std::vector<Record<2>>& input,
                              RTree<2>* tree) {
  Stream<Record<2>> s(env.device);
  s.Append(input);
  s.Flush();
  return BulkLoadHilbert(env, &s, tree);
}

template <int D>
Status BulkLoadHilbert4D(WorkEnv env, const std::vector<Record<D>>& input,
                         RTree<D>* tree) {
  Stream<Record<D>> s(env.device);
  s.Append(input);
  s.Flush();
  return BulkLoadHilbert4D<D>(env, &s, tree);
}

}  // namespace prtree

#endif  // PRTREE_BASELINES_HILBERT_RTREE_H_
