// Top-down Greedy Split (TGS) R-tree bulk loading — the strongest query
// baseline in the paper's evaluation (§1.1 [12], García, López,
// Leutenegger).
//
// To build the root of (a subtree of) an R-tree over a set of rectangles,
// TGS repeatedly bisects the set until it falls into <= B subsets, each of
// which becomes a recursively built child subtree.  Every binary partition
// considers the 2D one-dimensional orderings (by xmin, ymin, xmax, ymax for
// D = 2) and, per ordering, the O(B) cut positions that keep whole
// child-subtree units together; it applies the cut minimising the sum of
// the areas of the two resulting bounding boxes.  Per the paper's footnote,
// subtree sizes are units of B^h (a power of B), so every child except one
// remainder is completely full.
//
// The implementation keeps, for every (sub)set, 2D sorted streams (one per
// ordering).  A binary split scans each stream once to evaluate prefix and
// suffix bounding boxes at unit granularity, then scans again to route
// records by comparing against the winning cut's threshold record — all
// through the device, so the measured I/O reproduces TGS's characteristic
// O((N/B) log2 (N/B)) build cost and its data-dependence (Figures 9-11).

#ifndef PRTREE_BASELINES_TGS_RTREE_H_
#define PRTREE_BASELINES_TGS_RTREE_H_

#include <array>
#include <limits>
#include <vector>

#include "core/corner_order.h"
#include "io/external_sort.h"
#include "io/stream.h"
#include "io/work_env.h"
#include "rtree/builder.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace prtree {

namespace internal {

template <int D>
class TgsLoader {
 public:
  using Rec = Record<D>;
  static constexpr int kOrders = 2 * D;

  TgsLoader(WorkEnv env, size_t capacity) : env_(env), capacity_(capacity) {}

  /// Builds the whole tree; returns the root's level entry.
  LevelEntry<D> Build(Stream<Rec>* input, int* out_height) {
    SortedSet set;
    set.n = input->size();
    for (int c = 0; c < kOrders; ++c) {
      set.lists.push_back(ExternalSort(env_, input, CoordLess<D>{c}));
    }
    // Height: smallest h with capacity^(h+1) >= n.
    int h = 0;
    double subtree = static_cast<double>(capacity_);
    while (subtree < static_cast<double>(set.n)) {
      ++h;
      subtree *= static_cast<double>(capacity_);
    }
    *out_height = h;
    return BuildNode(std::move(set), h);
  }

 private:
  struct SortedSet {
    std::vector<Stream<Rec>> lists;  // kOrders parallel sorted streams
    size_t n = 0;

    void Drop() {
      for (auto& l : lists) l.Clear();
    }
  };

  /// Records a candidate binary cut: ordering `order`, `left_n` records on
  /// the low side, separated by the threshold record `t`.
  struct Cut {
    int order = -1;
    size_t left_n = 0;
    CoordThreshold t{};
    Real cost = std::numeric_limits<Real>::infinity();
  };

  /// Subtree capacity at height h: capacity^(h+1) records.
  size_t UnitSize(int h) const {
    size_t u = capacity_;
    for (int i = 0; i < h; ++i) u *= capacity_;
    return u;
  }

  LevelEntry<D> BuildNode(SortedSet set, int height) {
    BlockDevice* dev = env_.device;
    std::vector<std::byte> buf(dev->block_size());
    NodeView<D> node(buf.data(), dev->block_size());
    node.Format(static_cast<uint16_t>(height));

    if (height == 0) {
      PRTREE_CHECK(set.n <= capacity_);
      std::vector<Rec> recs;
      set.lists[0].ReadAll(&recs);
      set.Drop();
      for (const auto& r : recs) node.Append(r.rect, r.id);
      PageId page = dev->Allocate();
      AbortIfError(dev->Write(page, buf.data()));
      return LevelEntry<D>{node.ComputeMbr(), page};
    }

    // Partition into <= capacity units of B^height records, then build
    // each child at height - 1.
    const size_t unit = UnitSize(height - 1);
    PRTREE_CHECK(set.n > 0 && set.n <= unit * capacity_);
    std::vector<SortedSet> groups;
    Partition(std::move(set), unit, &groups);
    PRTREE_CHECK(groups.size() <= capacity_);
    for (auto& g : groups) {
      LevelEntry<D> child = BuildNode(std::move(g), height - 1);
      node.Append(child.mbr, child.page);
    }
    PageId page = dev->Allocate();
    AbortIfError(dev->Write(page, buf.data()));
    return LevelEntry<D>{node.ComputeMbr(), page};
  }

  /// Greedy recursive bisection down to single units.
  void Partition(SortedSet set, size_t unit, std::vector<SortedSet>* out) {
    if (set.n <= unit) {
      out->push_back(std::move(set));
      return;
    }
    Cut best = FindBestCut(set, unit);
    PRTREE_CHECK(best.order >= 0);
    SortedSet left, right;
    Split(std::move(set), best, &left, &right);
    Partition(std::move(left), unit, out);
    Partition(std::move(right), unit, out);
  }

  /// Scans every ordering once, evaluating area(bb(prefix)) +
  /// area(bb(suffix)) at each multiple of `unit`, and returns the cheapest
  /// cut ("it applies the binary partition that minimizes that sum").
  Cut FindBestCut(SortedSet& set, size_t unit) {
    const size_t n = set.n;
    const size_t num_units = (n + unit - 1) / unit;
    Cut best;
    for (int c = 0; c < kOrders; ++c) {
      // Segment bounding boxes at unit granularity (in memory: <= B + 1 of
      // them), plus the threshold record that starts each segment.
      std::vector<Rect<D>> seg_mbr(num_units, Rect<D>::Empty());
      std::vector<CoordThreshold> seg_first(num_units);
      typename Stream<Rec>::Reader reader(&set.lists[c]);
      size_t i = 0;
      while (!reader.Done()) {
        Rec r = reader.Next();
        size_t seg = i / unit;
        if (i % unit == 0) {
          seg_first[seg] = CoordThreshold{r.rect.CornerCoord(c), r.id};
        }
        seg_mbr[seg].ExtendToCover(r.rect);
        ++i;
      }
      PRTREE_CHECK(i == n);
      // Prefix/suffix sweeps.
      std::vector<Real> suffix_area(num_units + 1, 0);
      Rect<D> acc = Rect<D>::Empty();
      for (size_t s = num_units; s-- > 0;) {
        acc.ExtendToCover(seg_mbr[s]);
        suffix_area[s] = acc.Area();
      }
      acc = Rect<D>::Empty();
      for (size_t s = 0; s + 1 < num_units; ++s) {
        acc.ExtendToCover(seg_mbr[s]);
        Real cost = acc.Area() + suffix_area[s + 1];
        if (cost < best.cost) {
          best.cost = cost;
          best.order = c;
          best.left_n = (s + 1) * unit;
          best.t = seg_first[s + 1];
        }
      }
    }
    return best;
  }

  /// Routes every stream of `set` into left/right halves of the cut; all
  /// orderings stay sorted because routing preserves relative order.
  void Split(SortedSet set, const Cut& cut, SortedSet* left,
             SortedSet* right) {
    left->n = cut.left_n;
    right->n = set.n - cut.left_n;
    for (int c = 0; c < kOrders; ++c) {
      Stream<Rec> lo(env_.device), hi(env_.device);
      typename Stream<Rec>::Reader reader(&set.lists[c]);
      while (!reader.Done()) {
        Rec r = reader.Next();
        if (BeforeThreshold(r, cut.order, cut.t)) {
          lo.Push(r);
        } else {
          hi.Push(r);
        }
      }
      lo.Flush();
      hi.Flush();
      PRTREE_CHECK(lo.size() == left->n && hi.size() == right->n);
      left->lists.push_back(std::move(lo));
      right->lists.push_back(std::move(hi));
      set.lists[c].Clear();
    }
  }

  WorkEnv env_;
  size_t capacity_;
};

}  // namespace internal

/// \brief Bulk-loads `tree` with the Top-down Greedy Split algorithm over
/// `input` (read, not consumed).
template <int D>
Status BulkLoadTgs(WorkEnv env, Stream<Record<D>>* input, RTree<D>* tree) {
  if (!tree->empty()) {
    return Status::InvalidArgument("output tree is not empty");
  }
  input->Flush();
  if (input->size() == 0) return Status::OK();
  internal::TgsLoader<D> loader(env, tree->capacity());
  int height = 0;
  LevelEntry<D> root = loader.Build(input, &height);
  tree->SetRoot(root.page, height, input->size());
  return Status::OK();
}

/// Vector convenience overload.
template <int D>
Status BulkLoadTgs(WorkEnv env, const std::vector<Record<D>>& input,
                   RTree<D>* tree) {
  Stream<Record<D>> s(env.device);
  s.Append(input);
  s.Flush();
  return BulkLoadTgs<D>(env, &s, tree);
}

}  // namespace prtree

#endif  // PRTREE_BASELINES_TGS_RTREE_H_
