// Sort-Tile-Recursive (STR) packing of Leutenegger, López and Edgington —
// an additional one-dimensional-ordering baseline the paper cites among the
// bulk-loading algorithms (§1.1 [18]).
//
// STR sorts by the centre coordinate of one axis, slices the data into
// ceil(L^(1/D)) vertical slabs of whole leaves, and recurses on the next
// axis inside each slab; leaves are packed full in the final order.

#ifndef PRTREE_BASELINES_STR_RTREE_H_
#define PRTREE_BASELINES_STR_RTREE_H_

#include <cmath>
#include <vector>

#include "io/external_sort.h"
#include "io/stream.h"
#include "io/work_env.h"
#include "rtree/builder.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace prtree {

namespace internal {

/// Ascending centre-coordinate order on axis `axis`, ties by id.
template <int D>
struct CenterLess {
  int axis;
  bool operator()(const Record<D>& a, const Record<D>& b) const {
    Real ca = a.rect.Center(axis);
    Real cb = b.rect.Center(axis);
    if (ca != cb) return ca < cb;
    return a.id < b.id;
  }
};

/// Recursive slab step: sorts `input` (consumed) on `axis`, cuts it into
/// slabs holding a multiple of the per-slab leaf budget, and recurses;
/// at the last axis, records are fed to the leaf writer in sorted order.
template <int D>
void StrSlab(WorkEnv env, Stream<Record<D>>* input, int axis,
             size_t leaf_capacity, NodeWriter<D>* writer) {
  Stream<Record<D>> sorted = ExternalSort(env, input, CenterLess<D>{axis});
  input->Clear();
  const size_t n = sorted.size();
  if (axis == D - 1) {
    typename Stream<Record<D>>::Reader reader(&sorted);
    while (!reader.Done()) {
      Record<D> rec = reader.Next();
      writer->Add(rec.rect, rec.id);
    }
    return;
  }
  // leaves in this sub-problem and slab count for the remaining axes.
  size_t leaves = (n + leaf_capacity - 1) / leaf_capacity;
  int remaining_axes = D - axis;
  size_t slabs = static_cast<size_t>(std::ceil(
      std::pow(static_cast<double>(leaves),
               1.0 / static_cast<double>(remaining_axes))));
  slabs = std::max<size_t>(1, slabs);
  size_t per_slab =
      ((leaves + slabs - 1) / slabs) * leaf_capacity;  // whole leaves

  typename Stream<Record<D>>::Reader reader(&sorted);
  while (!reader.Done()) {
    Stream<Record<D>> slab(env.device);
    for (size_t i = 0; i < per_slab && !reader.Done(); ++i) {
      slab.Push(reader.Next());
    }
    slab.Flush();
    StrSlab<D>(env, &slab, axis + 1, leaf_capacity, writer);
  }
}

}  // namespace internal

/// \brief Bulk-loads `tree` with the STR packing over `input` (consumed).
template <int D>
Status BulkLoadStr(WorkEnv env, Stream<Record<D>>* input, RTree<D>* tree) {
  if (!tree->empty()) {
    return Status::InvalidArgument("output tree is not empty");
  }
  input->Flush();
  const size_t n = input->size();
  if (n == 0) return Status::OK();
  NodeWriter<D> writer(env.device, /*level=*/0);
  internal::StrSlab<D>(env, input, 0, tree->capacity(), &writer);
  PackUpward(tree, writer.Finish(), n, env.pool);
  return Status::OK();
}

/// Vector convenience overload.
template <int D>
Status BulkLoadStr(WorkEnv env, const std::vector<Record<D>>& input,
                   RTree<D>* tree) {
  Stream<Record<D>> s(env.device);
  s.Append(input);
  s.Flush();
  return BulkLoadStr<D>(env, &s, tree);
}

}  // namespace prtree

#endif  // PRTREE_BASELINES_STR_RTREE_H_
