// Axis-parallel (hyper-)rectangles, the objects the paper indexes (§2.1).
//
// A `Rect<D>` stores the minimal bounding box of a spatial object as
// `lo[d] <= hi[d]` per dimension.  The paper's corner transformation maps a
// D-dimensional rectangle to a point in 2D dimensions,
// R* = (xmin, ymin, xmax, ymax) for D = 2; `CornerCoord` exposes that view
// without materialising the point.

#ifndef PRTREE_GEOM_RECT_H_
#define PRTREE_GEOM_RECT_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/check.h"

namespace prtree {

/// Coordinate type used throughout the library (8 bytes, as in the paper's
/// 36-byte record layout).
using Real = double;

/// Identifier attached to each input rectangle (the paper's 4-byte "pointer
/// to the original object").
using DataId = uint32_t;

/// \brief An axis-parallel rectangle in D dimensions.
///
/// The paper's evaluation is two-dimensional; the structure definitions in
/// §2.3 are d-dimensional, so the whole library is templated on D.
template <int D>
struct Rect {
  static_assert(D >= 1, "dimension must be positive");

  /// Number of corner coordinates (the dimension of the kd-tree the
  /// pseudo-PR-tree is built on): 2D.
  static constexpr int kCorners = 2 * D;

  std::array<Real, D> lo;
  std::array<Real, D> hi;

  /// An "empty" rectangle that is the identity for ExtendToCover.
  static Rect Empty() {
    Rect r;
    for (int d = 0; d < D; ++d) {
      r.lo[d] = std::numeric_limits<Real>::infinity();
      r.hi[d] = -std::numeric_limits<Real>::infinity();
    }
    return r;
  }

  /// True if this rectangle is the Empty() identity.
  bool IsEmpty() const { return lo[0] > hi[0]; }

  /// A degenerate rectangle covering a single point.
  static Rect AtPoint(const std::array<Real, D>& p) {
    Rect r;
    r.lo = p;
    r.hi = p;
    return r;
  }

  /// The i-th corner coordinate of the 2D-dimensional corner transformation.
  /// Coordinates 0..D-1 are the lower corner (xmin, ymin, ...); coordinates
  /// D..2D-1 are the upper corner (xmax, ymax, ...).
  Real CornerCoord(int i) const {
    PRTREE_DCHECK(i >= 0 && i < kCorners);
    return i < D ? lo[i] : hi[i - D];
  }

  /// True iff this rectangle and `o` share at least one point (closed
  /// rectangles; touching boundaries intersect, as in Guttman's R-tree).
  bool Intersects(const Rect& o) const {
    for (int d = 0; d < D; ++d) {
      if (lo[d] > o.hi[d] || o.lo[d] > hi[d]) return false;
    }
    return true;
  }

  /// True iff `o` lies entirely inside this rectangle (boundaries included).
  bool Contains(const Rect& o) const {
    for (int d = 0; d < D; ++d) {
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    }
    return true;
  }

  /// True iff point `p` lies inside this rectangle (boundaries included).
  bool ContainsPoint(const std::array<Real, D>& p) const {
    for (int d = 0; d < D; ++d) {
      if (p[d] < lo[d] || p[d] > hi[d]) return false;
    }
    return true;
  }

  /// Grows this rectangle to cover `o`.
  void ExtendToCover(const Rect& o) {
    for (int d = 0; d < D; ++d) {
      lo[d] = std::min(lo[d], o.lo[d]);
      hi[d] = std::max(hi[d], o.hi[d]);
    }
  }

  /// The minimal rectangle covering both `a` and `b`.
  static Rect Cover(const Rect& a, const Rect& b) {
    Rect r = a;
    r.ExtendToCover(b);
    return r;
  }

  /// D-dimensional volume ("area" in the paper's 2-D cost functions; zero
  /// for degenerate rectangles).
  Real Area() const {
    if (IsEmpty()) return 0;
    Real a = 1;
    for (int d = 0; d < D; ++d) a *= hi[d] - lo[d];
    return a;
  }

  /// Sum of side lengths (half the perimeter for D = 2); the R*-tree margin.
  Real Margin() const {
    if (IsEmpty()) return 0;
    Real m = 0;
    for (int d = 0; d < D; ++d) m += hi[d] - lo[d];
    return m;
  }

  /// Side length in dimension `d`.
  Real Extent(int d) const { return hi[d] - lo[d]; }

  /// Centre coordinate in dimension `d`.
  Real Center(int d) const { return (lo[d] + hi[d]) / 2; }

  /// Area of the intersection with `o` (zero if disjoint).
  Real IntersectionArea(const Rect& o) const {
    Real a = 1;
    for (int d = 0; d < D; ++d) {
      Real side = std::min(hi[d], o.hi[d]) - std::max(lo[d], o.lo[d]);
      if (side <= 0) return 0;
      a *= side;
    }
    return a;
  }

  /// Increase of Area() if this rectangle were extended to cover `o`
  /// (Guttman's insertion cost).
  Real Enlargement(const Rect& o) const {
    return Cover(*this, o).Area() - Area();
  }

  bool operator==(const Rect& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const Rect& o) const { return !(*this == o); }

  /// "[lo0,hi0]x[lo1,hi1]" debug form.
  std::string ToString() const {
    std::string s;
    for (int d = 0; d < D; ++d) {
      if (d) s += 'x';
      s += '[';
      s += std::to_string(lo[d]);
      s += ',';
      s += std::to_string(hi[d]);
      s += ']';
    }
    return s;
  }
};

/// Convenience constructor for the ubiquitous 2-D case.
inline Rect<2> MakeRect(Real xmin, Real ymin, Real xmax, Real ymax) {
  Rect<2> r;
  r.lo = {xmin, ymin};
  r.hi = {xmax, ymax};
  return r;
}

/// \brief An input record: a rectangle plus the identifier of the object it
/// approximates.  36 bytes for D = 2, matching the paper's layout (§3.1).
template <int D>
struct Record {
  Rect<D> rect;
  DataId id;

  bool operator==(const Record& o) const {
    return id == o.id && rect == o.rect;
  }
};

using Rect2 = Rect<2>;
using Record2 = Record<2>;

}  // namespace prtree

#endif  // PRTREE_GEOM_RECT_H_
