// d-dimensional Hilbert space-filling curve indices.
//
// The packed Hilbert R-tree sorts rectangle centres by their position on the
// 2-D Hilbert curve; the four-dimensional Hilbert R-tree sorts the corner
// transformation (xmin, ymin, xmax, ymax) by its position on the 4-D curve
// (paper §1.1, [15]).  We implement John Skilling's transpose algorithm
// ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), which works
// for any dimension and bit depth, and pack the resulting index into a
// 128-bit key with lexicographic comparison.

#ifndef PRTREE_GEOM_HILBERT_H_
#define PRTREE_GEOM_HILBERT_H_

#include <algorithm>
#include <array>
#include <cstdint>

#include "geom/rect.h"

namespace prtree {

/// \brief A Hilbert curve index of up to 128 bits, ordered along the curve.
struct HilbertKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator<(const HilbertKey& a, const HilbertKey& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  friend bool operator==(const HilbertKey& a, const HilbertKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// Maximum dimension supported by HilbertIndex (6 covers the corner
/// transformation of 3-D rectangles).
inline constexpr int kMaxHilbertDims = 8;

/// \brief Computes the Hilbert index of the point `coords` on the
/// `n`-dimensional Hilbert curve over a 2^bits x ... x 2^bits grid.
///
/// Requires 1 <= n <= kMaxHilbertDims, 1 <= bits <= 32 and n * bits <= 128.
/// Each coordinate must be < 2^bits.  Points that are close on the curve are
/// close in space; the curve visits every grid cell exactly once, so the
/// mapping is a bijection (tested exhaustively for small grids).
HilbertKey HilbertIndex(const uint32_t* coords, int n, int bits);

/// \brief Inverse of HilbertIndex: recovers grid coordinates from a key.
/// Used by tests to verify bijectivity.
void HilbertInverse(const HilbertKey& key, uint32_t* coords, int n, int bits);

/// Convenience wrapper for the 2-D curve with n * bits <= 64.
uint64_t HilbertIndex2(uint32_t x, uint32_t y, int bits);

/// \brief Quantises `v` from the continuous range [lo, hi] onto the integer
/// grid [0, 2^bits).  Values outside the range are clamped; a degenerate
/// range maps everything to 0.
uint32_t GridCoord(Real v, Real lo, Real hi, int bits);

/// Bits per dimension used by the bulk loaders: 2-D keys use 31 bits per
/// axis (62-bit keys); 2D-dimensional corner keys use 128 / (2D) bits.
inline constexpr int kHilbertBits2D = 31;

/// \brief Hilbert key of a rectangle's centre on the 2-D curve — the
/// packed Hilbert R-tree sort key.
///
/// The curve's domain is the bounding *square* of `extent` (one scale for
/// both axes, anchored at extent's lower corner), not a per-axis
/// normalisation.  This matches the classic Kamel–Faloutsos setup and is
/// what the paper's lower-bound construction exploits (§2.4: on the
/// flat N/B x 1 grid "the Hilbert curve visits the columns one by one" —
/// which only holds when the aspect ratio of the data is preserved).
HilbertKey HilbertCenterKey(const Rect<2>& r, const Rect<2>& extent);

/// \brief Hilbert key of a rectangle's corner transformation on the
/// 2D-dimensional curve — the four-dimensional Hilbert R-tree sort key.
/// Uses the same uniform scale over all spatial axes as HilbertCenterKey.
template <int D>
HilbertKey HilbertCornerKey(const Rect<D>& r, const Rect<D>& extent) {
  constexpr int kN = 2 * D;
  static_assert(kN <= kMaxHilbertDims);
  constexpr int kBits = 128 / kN > 32 ? 32 : 128 / kN;
  Real scale = 0;
  for (int d = 0; d < D; ++d) scale = std::max(scale, extent.Extent(d));
  uint32_t coords[kN];
  for (int i = 0; i < kN; ++i) {
    int axis = i % D;  // corner coordinate i lives on spatial axis i mod D
    coords[i] = GridCoord(r.CornerCoord(i), extent.lo[axis],
                          extent.lo[axis] + scale, kBits);
  }
  return HilbertIndex(coords, kN, kBits);
}

}  // namespace prtree

#endif  // PRTREE_GEOM_HILBERT_H_
