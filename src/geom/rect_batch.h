// Batched rectangle kernels over struct-of-arrays coordinate runs.
//
// The v2 node layout (rtree/node.h) stores a node's MBRs as contiguous
// xmin[]/ymin[]/xmax[]/ymax[] runs precisely so that one SIMD lane can test
// 4 (AVX2) or 2 (NEON) rectangles branch-free.  This header is the kernel
// library the traversal layers call: batched window-intersection and
// containment tests producing a bitmask, and batched squared MINDIST for
// kNN.  Three implementations live behind one runtime dispatch:
//
//  * AVX2 on x86-64 when the CPU has it (compiled with a per-function
//    target attribute, so the rest of the library keeps the baseline ISA);
//  * NEON on AArch64 (baseline there, no probing needed);
//  * portable scalar everywhere else.
//
// The dispatch contract is strict bit-identity: for the same inputs every
// implementation produces the same mask bits and the same IEEE-754 result
// bits for MinDist2 (rect_batch.cc is compiled with -ffp-contract=off and
// the SIMD paths use mul+add, never FMA), so QueryStats and query results
// are byte-identical whichever path runs.  `PRTREE_NO_SIMD=1` in the
// environment — or building with -DPRTREE_SIMD=OFF — forces the scalar
// path; tests and benches may pin a level with ForceSimdLevel.
//
// All coordinate pointers are byte-alignment-free: kernels load through
// memcpy / unaligned-load intrinsics, so they are safe over runs inside
// arbitrarily (mis)aligned pool frames.  Kernels never read past element
// n-1 of any run (partial lanes fall back to scalar), so exactly-sized
// buffers are safe too.

#ifndef PRTREE_GEOM_RECT_BATCH_H_
#define PRTREE_GEOM_RECT_BATCH_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "geom/rect.h"

namespace prtree {

/// Which kernel implementation is dispatched at runtime.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Human-readable name ("scalar", "avx2", "neon").
const char* SimdLevelName(SimdLevel level);

/// The level the kernels currently dispatch to.  Resolved once at first
/// use: compile-time opt-out (PRTREE_SIMD=OFF) and the PRTREE_NO_SIMD=1
/// environment variable force kScalar; otherwise the best level the CPU
/// supports.
SimdLevel ActiveSimdLevel();

/// \brief Pins the dispatch level for benches and tests (e.g. the
/// scalar-vs-SIMD legs of bench/query_warm).  Clamped to what this build
/// and CPU actually support; returns the level now active.  Not meant to
/// be raced against in-flight kernels — call it between query batches.
SimdLevel ForceSimdLevel(SimdLevel level);

/// Number of 64-bit mask words covering `n` entries.
inline constexpr size_t RectMaskWords(size_t n) { return (n + 63) / 64; }

// Every kernel takes the query rectangle (or point) plus four coordinate
// runs of `n` doubles each.  Mask kernels fill RectMaskWords(n) words in
// `mask`: bit i is set iff entry i passes the predicate; tail bits beyond
// n are zero.  Runs need no alignment and are never read past index n-1.

/// Entry i intersects `q` (closed rectangles, exactly Rect::Intersects).
void BatchIntersect(const Rect2& q, const Real* xmin, const Real* ymin,
                    const Real* xmax, const Real* ymax, size_t n,
                    uint64_t* mask);

/// Entry i lies entirely inside `q` (exactly q.Contains(entry)).
void BatchContainedIn(const Rect2& q, const Real* xmin, const Real* ymin,
                      const Real* xmax, const Real* ymax, size_t n,
                      uint64_t* mask);

/// Entry i entirely covers `q` (exactly entry.Contains(q)) — the delete
/// descent's "which subtree can hold this rectangle" test.
void BatchCovers(const Rect2& q, const Real* xmin, const Real* ymin,
                 const Real* xmax, const Real* ymax, size_t n,
                 uint64_t* mask);

/// Squared Euclidean MINDIST from point (px, py) to each entry, written to
/// d2[0..n).  sqrt(d2[i]) equals MinDist (rtree/knn.h) bit-for-bit.
void BatchMinDist2(Real px, Real py, const Real* xmin, const Real* ymin,
                   const Real* xmax, const Real* ymax, size_t n, Real* d2);

/// Calls `f(i)` for every set bit i of `mask` (`words` 64-bit words), in
/// increasing order of i — the same visit order as a scalar entry loop, so
/// traversals built on masks report results in the historical order.
template <typename F>
inline void ForEachSetBit(const uint64_t* mask, size_t words, F f) {
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = mask[w];
    while (m != 0) {
      f(static_cast<int>(w * 64 +
                         static_cast<size_t>(std::countr_zero(m))));
      m &= m - 1;
    }
  }
}

}  // namespace prtree

#endif  // PRTREE_GEOM_RECT_BATCH_H_
