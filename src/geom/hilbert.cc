#include "geom/hilbert.h"

#include <cmath>

#include "util/check.h"

namespace prtree {

namespace {

// Skilling's AxesToTranspose: converts grid coordinates X[0..n) (b bits each)
// in place into the "transposed" Hilbert index, whose bits, read
// MSB-interleaved across the n words, form the index along the curve.
void AxesToTranspose(uint32_t* x, int b, int n) {
  uint32_t m = 1u << (b - 1);
  // Inverse undo of the exclusive-or transforms.
  for (uint32_t q = m; q > 1; q >>= 1) {
    uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

// Inverse of AxesToTranspose.
void TransposeToAxes(uint32_t* x, int b, int n) {
  uint32_t nbit = 2u << (b - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != nbit; q <<= 1) {
    uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        uint32_t tt = (x[0] ^ x[i]) & p;
        x[0] ^= tt;
        x[i] ^= tt;
      }
    }
  }
}

}  // namespace

HilbertKey HilbertIndex(const uint32_t* coords, int n, int bits) {
  PRTREE_CHECK(n >= 1 && n <= kMaxHilbertDims);
  PRTREE_CHECK(bits >= 1 && bits <= 32);
  PRTREE_CHECK(n * bits <= 128);
  uint32_t x[kMaxHilbertDims];
  for (int i = 0; i < n; ++i) {
    PRTREE_DCHECK(bits == 32 || coords[i] < (1u << bits));
    x[i] = coords[i];
  }
  AxesToTranspose(x, bits, n);
  // Interleave: bit (bits-1) of x[0] is the most significant index bit, then
  // bit (bits-1) of x[1], ..., down to bit 0 of x[n-1].
  HilbertKey key;
  for (int bit = bits - 1; bit >= 0; --bit) {
    for (int i = 0; i < n; ++i) {
      uint64_t b = (x[i] >> bit) & 1u;
      key.hi = (key.hi << 1) | (key.lo >> 63);
      key.lo = (key.lo << 1) | b;
    }
  }
  return key;
}

void HilbertInverse(const HilbertKey& key, uint32_t* coords, int n,
                    int bits) {
  PRTREE_CHECK(n >= 1 && n <= kMaxHilbertDims);
  PRTREE_CHECK(bits >= 1 && bits <= 32);
  PRTREE_CHECK(n * bits <= 128);
  uint32_t x[kMaxHilbertDims] = {0};
  // De-interleave: walk the n*bits index bits MSB-first.
  int total = n * bits;
  for (int pos = 0; pos < total; ++pos) {
    int from_top = total - 1 - pos;  // bit position within the 128-bit key
    uint64_t b = from_top >= 64 ? (key.hi >> (from_top - 64)) & 1u
                                : (key.lo >> from_top) & 1u;
    int bit = bits - 1 - pos / n;
    int i = pos % n;
    x[i] |= static_cast<uint32_t>(b) << bit;
  }
  TransposeToAxes(x, bits, n);
  for (int i = 0; i < n; ++i) coords[i] = x[i];
}

uint64_t HilbertIndex2(uint32_t x, uint32_t y, int bits) {
  PRTREE_CHECK(2 * bits <= 64);
  uint32_t coords[2] = {x, y};
  return HilbertIndex(coords, 2, bits).lo;
}

uint32_t GridCoord(Real v, Real lo, Real hi, int bits) {
  PRTREE_DCHECK(bits >= 1 && bits <= 32);
  if (!(hi > lo)) return 0;
  const double cells = std::ldexp(1.0, bits);  // 2^bits
  double t = (v - lo) / (hi - lo);
  if (t < 0) t = 0;
  double c = std::floor(t * cells);
  double max_cell = cells - 1;
  if (c > max_cell) c = max_cell;
  return static_cast<uint32_t>(c);
}

HilbertKey HilbertCenterKey(const Rect<2>& r, const Rect<2>& extent) {
  // Uniform scale over the bounding square (see header comment).
  Real scale = std::max(extent.Extent(0), extent.Extent(1));
  uint32_t coords[2] = {
      GridCoord(r.Center(0), extent.lo[0], extent.lo[0] + scale,
                kHilbertBits2D),
      GridCoord(r.Center(1), extent.lo[1], extent.lo[1] + scale,
                kHilbertBits2D)};
  return HilbertIndex(coords, 2, kHilbertBits2D);
}

}  // namespace prtree
