// Batched rectangle kernels: scalar reference, AVX2 and NEON paths behind
// one runtime dispatch.  See rect_batch.h for the contract.
//
// Bit-identity across implementations is load-bearing (QueryStats must be
// byte-identical whichever path runs), so three rules hold everywhere in
// this file:
//
//  1. This translation unit is compiled with -ffp-contract=off (see
//     src/CMakeLists.txt) and the SIMD paths use mul+add, never FMA —
//     dx*dx + dy*dy produces the same bits in every implementation.
//  2. Comparison predicates mirror the scalar Rect methods exactly,
//     including their NaN behaviour: Rect::Intersects is
//     !(a > b) && ..., which is true for unordered operands, so the SIMD
//     comparisons use the unordered "not greater/less than" predicates.
//  3. Partial lanes (n % width) run the same scalar helpers the scalar
//     kernels use, and no load ever touches an element past index n-1, so
//     exactly-sized and arbitrarily aligned buffers are safe.
//
// Loads go through memcpy (scalar) or unaligned-load intrinsics (SIMD):
// the coordinate runs live inside node blocks whose base alignment is
// whatever the buffer pool or caller provides — possibly none.

#include "geom/rect_batch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if !defined(PRTREE_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define PRTREE_HAVE_AVX2_PATH 1
#include <immintrin.h>
#endif

#if !defined(PRTREE_DISABLE_SIMD) && defined(__aarch64__)
#define PRTREE_HAVE_NEON_PATH 1
#include <arm_neon.h>
#endif

namespace prtree {
namespace {

// Alignment-free load: the runs may start at any byte offset.
inline Real LoadReal(const Real* base, size_t i) {
  Real v;
  std::memcpy(&v, reinterpret_cast<const std::byte*>(base) + i * sizeof(Real),
              sizeof(v));
  return v;
}

// ---- scalar predicates (the reference semantics) ----------------------

// Exactly Rect::Intersects: !(lo > q.hi) && !(q.lo > hi) per dimension.
inline bool ScalarIntersects(const Rect2& q, Real xmin, Real ymin, Real xmax,
                             Real ymax) {
  return !(xmin > q.hi[0]) && !(q.lo[0] > xmax) && !(ymin > q.hi[1]) &&
         !(q.lo[1] > ymax);
}

// Exactly q.Contains(entry): !(lo < q.lo) && !(hi > q.hi) per dimension.
inline bool ScalarContainedIn(const Rect2& q, Real xmin, Real ymin, Real xmax,
                              Real ymax) {
  return !(xmin < q.lo[0]) && !(xmax > q.hi[0]) && !(ymin < q.lo[1]) &&
         !(ymax > q.hi[1]);
}

// Exactly entry.Contains(q): !(q.lo < lo) && !(q.hi > hi) per dimension.
inline bool ScalarCovers(const Rect2& q, Real xmin, Real ymin, Real xmax,
                         Real ymax) {
  return !(q.lo[0] < xmin) && !(q.hi[0] > xmax) && !(q.lo[1] < ymin) &&
         !(q.hi[1] > ymax);
}

// Squared MINDIST, accumulated x-then-y like MinDist (rtree/knn.h).
inline Real ScalarMinDist2(Real px, Real py, Real xmin, Real ymin, Real xmax,
                           Real ymax) {
  Real dx = 0;
  if (px < xmin) {
    dx = xmin - px;
  } else if (px > xmax) {
    dx = px - xmax;
  }
  Real dy = 0;
  if (py < ymin) {
    dy = ymin - py;
  } else if (py > ymax) {
    dy = py - ymax;
  }
  return dx * dx + dy * dy;
}

template <typename Pred>
void ScalarMaskKernel(const Rect2& q, const Real* xmin, const Real* ymin,
                      const Real* xmax, const Real* ymax, size_t n,
                      uint64_t* mask, Pred pred) {
  std::memset(mask, 0, RectMaskWords(n) * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) {
    if (pred(q, LoadReal(xmin, i), LoadReal(ymin, i), LoadReal(xmax, i),
             LoadReal(ymax, i))) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

void ScalarIntersectKernel(const Rect2& q, const Real* xmin, const Real* ymin,
                           const Real* xmax, const Real* ymax, size_t n,
                           uint64_t* mask) {
  ScalarMaskKernel(q, xmin, ymin, xmax, ymax, n, mask,
                   [](const Rect2& w, Real a, Real b, Real c, Real d) {
                     return ScalarIntersects(w, a, b, c, d);
                   });
}

void ScalarContainedInKernel(const Rect2& q, const Real* xmin,
                             const Real* ymin, const Real* xmax,
                             const Real* ymax, size_t n, uint64_t* mask) {
  ScalarMaskKernel(q, xmin, ymin, xmax, ymax, n, mask,
                   [](const Rect2& w, Real a, Real b, Real c, Real d) {
                     return ScalarContainedIn(w, a, b, c, d);
                   });
}

void ScalarCoversKernel(const Rect2& q, const Real* xmin, const Real* ymin,
                        const Real* xmax, const Real* ymax, size_t n,
                        uint64_t* mask) {
  ScalarMaskKernel(q, xmin, ymin, xmax, ymax, n, mask,
                   [](const Rect2& w, Real a, Real b, Real c, Real d) {
                     return ScalarCovers(w, a, b, c, d);
                   });
}

void ScalarMinDist2Kernel(Real px, Real py, const Real* xmin, const Real* ymin,
                          const Real* xmax, const Real* ymax, size_t n,
                          Real* d2) {
  for (size_t i = 0; i < n; ++i) {
    d2[i] = ScalarMinDist2(px, py, LoadReal(xmin, i), LoadReal(ymin, i),
                           LoadReal(xmax, i), LoadReal(ymax, i));
  }
}

// ---- AVX2 -------------------------------------------------------------
//
// Four rectangles per lane.  The unordered comparison predicates
// (_CMP_NGT_UQ / _CMP_NLT_UQ) are exactly the scalar !(a > b) / !(a < b),
// NaN included.  movemask gives 4 result bits per lane; 64/4 lanes fill
// one mask word, and lanes never straddle a word boundary.

#ifdef PRTREE_HAVE_AVX2_PATH

__attribute__((target("avx2"))) void Avx2IntersectKernel(
    const Rect2& q, const Real* xmin, const Real* ymin, const Real* xmax,
    const Real* ymax, size_t n, uint64_t* mask) {
  std::memset(mask, 0, RectMaskWords(n) * sizeof(uint64_t));
  const __m256d qxmin = _mm256_set1_pd(q.lo[0]);
  const __m256d qymin = _mm256_set1_pd(q.lo[1]);
  const __m256d qxmax = _mm256_set1_pd(q.hi[0]);
  const __m256d qymax = _mm256_set1_pd(q.hi[1]);
  const size_t full = n & ~size_t{3};
  for (size_t i = 0; i < full; i += 4) {
    __m256d m =
        _mm256_cmp_pd(_mm256_loadu_pd(xmin + i), qxmax, _CMP_NGT_UQ);
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(qxmin, _mm256_loadu_pd(xmax + i), _CMP_NGT_UQ));
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(_mm256_loadu_pd(ymin + i), qymax, _CMP_NGT_UQ));
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(qymin, _mm256_loadu_pd(ymax + i), _CMP_NGT_UQ));
    uint64_t bits = static_cast<unsigned>(_mm256_movemask_pd(m));
    mask[i >> 6] |= bits << (i & 63);
  }
  for (size_t i = full; i < n; ++i) {
    if (ScalarIntersects(q, LoadReal(xmin, i), LoadReal(ymin, i),
                         LoadReal(xmax, i), LoadReal(ymax, i))) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("avx2"))) void Avx2ContainedInKernel(
    const Rect2& q, const Real* xmin, const Real* ymin, const Real* xmax,
    const Real* ymax, size_t n, uint64_t* mask) {
  std::memset(mask, 0, RectMaskWords(n) * sizeof(uint64_t));
  const __m256d qxmin = _mm256_set1_pd(q.lo[0]);
  const __m256d qymin = _mm256_set1_pd(q.lo[1]);
  const __m256d qxmax = _mm256_set1_pd(q.hi[0]);
  const __m256d qymax = _mm256_set1_pd(q.hi[1]);
  const size_t full = n & ~size_t{3};
  for (size_t i = 0; i < full; i += 4) {
    __m256d m =
        _mm256_cmp_pd(_mm256_loadu_pd(xmin + i), qxmin, _CMP_NLT_UQ);
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(_mm256_loadu_pd(xmax + i), qxmax, _CMP_NGT_UQ));
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(_mm256_loadu_pd(ymin + i), qymin, _CMP_NLT_UQ));
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(_mm256_loadu_pd(ymax + i), qymax, _CMP_NGT_UQ));
    uint64_t bits = static_cast<unsigned>(_mm256_movemask_pd(m));
    mask[i >> 6] |= bits << (i & 63);
  }
  for (size_t i = full; i < n; ++i) {
    if (ScalarContainedIn(q, LoadReal(xmin, i), LoadReal(ymin, i),
                          LoadReal(xmax, i), LoadReal(ymax, i))) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("avx2"))) void Avx2CoversKernel(
    const Rect2& q, const Real* xmin, const Real* ymin, const Real* xmax,
    const Real* ymax, size_t n, uint64_t* mask) {
  std::memset(mask, 0, RectMaskWords(n) * sizeof(uint64_t));
  const __m256d qxmin = _mm256_set1_pd(q.lo[0]);
  const __m256d qymin = _mm256_set1_pd(q.lo[1]);
  const __m256d qxmax = _mm256_set1_pd(q.hi[0]);
  const __m256d qymax = _mm256_set1_pd(q.hi[1]);
  const size_t full = n & ~size_t{3};
  for (size_t i = 0; i < full; i += 4) {
    __m256d m =
        _mm256_cmp_pd(qxmin, _mm256_loadu_pd(xmin + i), _CMP_NLT_UQ);
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(qxmax, _mm256_loadu_pd(xmax + i), _CMP_NGT_UQ));
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(qymin, _mm256_loadu_pd(ymin + i), _CMP_NLT_UQ));
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(qymax, _mm256_loadu_pd(ymax + i), _CMP_NGT_UQ));
    uint64_t bits = static_cast<unsigned>(_mm256_movemask_pd(m));
    mask[i >> 6] |= bits << (i & 63);
  }
  for (size_t i = full; i < n; ++i) {
    if (ScalarCovers(q, LoadReal(xmin, i), LoadReal(ymin, i),
                     LoadReal(xmax, i), LoadReal(ymax, i))) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

// Branch-free delta: max(lo - p, p - hi, 0) equals the scalar if/else for
// every non-NaN input (inside the interval both differences are <= 0), and
// maxpd's returns-second-operand-on-NaN rule makes NaN coordinates yield 0
// like the scalar comparisons do.
__attribute__((target("avx2"))) void Avx2MinDist2Kernel(
    Real px, Real py, const Real* xmin, const Real* ymin, const Real* xmax,
    const Real* ymax, size_t n, Real* d2) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  const __m256d zero = _mm256_setzero_pd();
  const size_t full = n & ~size_t{3};
  for (size_t i = 0; i < full; i += 4) {
    __m256d dx = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(xmin + i), vpx),
                      _mm256_sub_pd(vpx, _mm256_loadu_pd(xmax + i))),
        zero);
    __m256d dy = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(ymin + i), vpy),
                      _mm256_sub_pd(vpy, _mm256_loadu_pd(ymax + i))),
        zero);
    _mm256_storeu_pd(d2 + i, _mm256_add_pd(_mm256_mul_pd(dx, dx),
                                           _mm256_mul_pd(dy, dy)));
  }
  for (size_t i = full; i < n; ++i) {
    d2[i] = ScalarMinDist2(px, py, LoadReal(xmin, i), LoadReal(ymin, i),
                           LoadReal(xmax, i), LoadReal(ymax, i));
  }
}

#endif  // PRTREE_HAVE_AVX2_PATH

// ---- NEON -------------------------------------------------------------
//
// Two rectangles per lane.  vcgtq/vcltq are ordered "greater/less than"
// (false on NaN), so the scalar !(a > b) is the bitwise NOT of vcgtq —
// same truth table, NaN included.

#ifdef PRTREE_HAVE_NEON_PATH

inline uint64_t NeonPairBits(uint64x2_t m) {
  return (vgetq_lane_u64(m, 0) & 1) | ((vgetq_lane_u64(m, 1) & 1) << 1);
}

void NeonIntersectKernel(const Rect2& q, const Real* xmin, const Real* ymin,
                         const Real* xmax, const Real* ymax, size_t n,
                         uint64_t* mask) {
  std::memset(mask, 0, RectMaskWords(n) * sizeof(uint64_t));
  const float64x2_t qxmin = vdupq_n_f64(q.lo[0]);
  const float64x2_t qymin = vdupq_n_f64(q.lo[1]);
  const float64x2_t qxmax = vdupq_n_f64(q.hi[0]);
  const float64x2_t qymax = vdupq_n_f64(q.hi[1]);
  const size_t full = n & ~size_t{1};
  for (size_t i = 0; i < full; i += 2) {
    uint64x2_t reject =
        vorrq_u64(vcgtq_f64(vld1q_f64(xmin + i), qxmax),
                  vcgtq_f64(qxmin, vld1q_f64(xmax + i)));
    reject = vorrq_u64(reject, vcgtq_f64(vld1q_f64(ymin + i), qymax));
    reject = vorrq_u64(reject, vcgtq_f64(qymin, vld1q_f64(ymax + i)));
    uint64_t bits = NeonPairBits(veorq_u64(reject, vdupq_n_u64(~0ull)));
    mask[i >> 6] |= bits << (i & 63);
  }
  for (size_t i = full; i < n; ++i) {
    if (ScalarIntersects(q, LoadReal(xmin, i), LoadReal(ymin, i),
                         LoadReal(xmax, i), LoadReal(ymax, i))) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

void NeonContainedInKernel(const Rect2& q, const Real* xmin, const Real* ymin,
                           const Real* xmax, const Real* ymax, size_t n,
                           uint64_t* mask) {
  std::memset(mask, 0, RectMaskWords(n) * sizeof(uint64_t));
  const float64x2_t qxmin = vdupq_n_f64(q.lo[0]);
  const float64x2_t qymin = vdupq_n_f64(q.lo[1]);
  const float64x2_t qxmax = vdupq_n_f64(q.hi[0]);
  const float64x2_t qymax = vdupq_n_f64(q.hi[1]);
  const size_t full = n & ~size_t{1};
  for (size_t i = 0; i < full; i += 2) {
    uint64x2_t reject =
        vorrq_u64(vcltq_f64(vld1q_f64(xmin + i), qxmin),
                  vcgtq_f64(vld1q_f64(xmax + i), qxmax));
    reject = vorrq_u64(reject, vcltq_f64(vld1q_f64(ymin + i), qymin));
    reject = vorrq_u64(reject, vcgtq_f64(vld1q_f64(ymax + i), qymax));
    uint64_t bits = NeonPairBits(veorq_u64(reject, vdupq_n_u64(~0ull)));
    mask[i >> 6] |= bits << (i & 63);
  }
  for (size_t i = full; i < n; ++i) {
    if (ScalarContainedIn(q, LoadReal(xmin, i), LoadReal(ymin, i),
                          LoadReal(xmax, i), LoadReal(ymax, i))) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

void NeonCoversKernel(const Rect2& q, const Real* xmin, const Real* ymin,
                      const Real* xmax, const Real* ymax, size_t n,
                      uint64_t* mask) {
  std::memset(mask, 0, RectMaskWords(n) * sizeof(uint64_t));
  const float64x2_t qxmin = vdupq_n_f64(q.lo[0]);
  const float64x2_t qymin = vdupq_n_f64(q.lo[1]);
  const float64x2_t qxmax = vdupq_n_f64(q.hi[0]);
  const float64x2_t qymax = vdupq_n_f64(q.hi[1]);
  const size_t full = n & ~size_t{1};
  for (size_t i = 0; i < full; i += 2) {
    uint64x2_t reject =
        vorrq_u64(vcltq_f64(qxmin, vld1q_f64(xmin + i)),
                  vcgtq_f64(qxmax, vld1q_f64(xmax + i)));
    reject = vorrq_u64(reject, vcltq_f64(qymin, vld1q_f64(ymin + i)));
    reject = vorrq_u64(reject, vcgtq_f64(qymax, vld1q_f64(ymax + i)));
    uint64_t bits = NeonPairBits(veorq_u64(reject, vdupq_n_u64(~0ull)));
    mask[i >> 6] |= bits << (i & 63);
  }
  for (size_t i = full; i < n; ++i) {
    if (ScalarCovers(q, LoadReal(xmin, i), LoadReal(ymin, i),
                     LoadReal(xmax, i), LoadReal(ymax, i))) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

void NeonMinDist2Kernel(Real px, Real py, const Real* xmin, const Real* ymin,
                        const Real* xmax, const Real* ymax, size_t n,
                        Real* d2) {
  const float64x2_t vpx = vdupq_n_f64(px);
  const float64x2_t vpy = vdupq_n_f64(py);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const size_t full = n & ~size_t{1};
  for (size_t i = 0; i < full; i += 2) {
    // vmaxq on NaN returns NaN, unlike maxpd; route NaN deltas to 0 the
    // way the scalar comparisons do by selecting on an ordered compare.
    float64x2_t lo_d = vsubq_f64(vld1q_f64(xmin + i), vpx);
    float64x2_t hi_d = vsubq_f64(vpx, vld1q_f64(xmax + i));
    float64x2_t dx = vmaxq_f64(vmaxq_f64(lo_d, hi_d), zero);
    dx = vbslq_f64(vcgtq_f64(dx, zero), dx, zero);
    float64x2_t lo_dy = vsubq_f64(vld1q_f64(ymin + i), vpy);
    float64x2_t hi_dy = vsubq_f64(vpy, vld1q_f64(ymax + i));
    float64x2_t dy = vmaxq_f64(vmaxq_f64(lo_dy, hi_dy), zero);
    dy = vbslq_f64(vcgtq_f64(dy, zero), dy, zero);
    vst1q_f64(d2 + i,
              vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
  }
  for (size_t i = full; i < n; ++i) {
    d2[i] = ScalarMinDist2(px, py, LoadReal(xmin, i), LoadReal(ymin, i),
                           LoadReal(xmax, i), LoadReal(ymax, i));
  }
}

#endif  // PRTREE_HAVE_NEON_PATH

// ---- dispatch ---------------------------------------------------------

SimdLevel DetectSimdLevel() {
#if defined(PRTREE_DISABLE_SIMD)
  return SimdLevel::kScalar;
#else
  const char* env = std::getenv("PRTREE_NO_SIMD");
  if (env != nullptr && env[0] == '1') return SimdLevel::kScalar;
#ifdef PRTREE_HAVE_AVX2_PATH
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
#ifdef PRTREE_HAVE_NEON_PATH
  return SimdLevel::kNeon;
#endif
  return SimdLevel::kScalar;
#endif
}

std::atomic<SimdLevel>& ActiveLevelSlot() {
  static std::atomic<SimdLevel> level{DetectSimdLevel()};
  return level;
}

bool LevelAvailable(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#ifdef PRTREE_HAVE_AVX2_PATH
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdLevel::kNeon:
#ifdef PRTREE_HAVE_NEON_PATH
      return true;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

SimdLevel ForceSimdLevel(SimdLevel level) {
  if (!LevelAvailable(level)) level = DetectSimdLevel();
  ActiveLevelSlot().store(level, std::memory_order_relaxed);
  return level;
}

void BatchIntersect(const Rect2& q, const Real* xmin, const Real* ymin,
                    const Real* xmax, const Real* ymax, size_t n,
                    uint64_t* mask) {
  switch (ActiveSimdLevel()) {
#ifdef PRTREE_HAVE_AVX2_PATH
    case SimdLevel::kAvx2:
      Avx2IntersectKernel(q, xmin, ymin, xmax, ymax, n, mask);
      return;
#endif
#ifdef PRTREE_HAVE_NEON_PATH
    case SimdLevel::kNeon:
      NeonIntersectKernel(q, xmin, ymin, xmax, ymax, n, mask);
      return;
#endif
    default:
      ScalarIntersectKernel(q, xmin, ymin, xmax, ymax, n, mask);
  }
}

void BatchContainedIn(const Rect2& q, const Real* xmin, const Real* ymin,
                      const Real* xmax, const Real* ymax, size_t n,
                      uint64_t* mask) {
  switch (ActiveSimdLevel()) {
#ifdef PRTREE_HAVE_AVX2_PATH
    case SimdLevel::kAvx2:
      Avx2ContainedInKernel(q, xmin, ymin, xmax, ymax, n, mask);
      return;
#endif
#ifdef PRTREE_HAVE_NEON_PATH
    case SimdLevel::kNeon:
      NeonContainedInKernel(q, xmin, ymin, xmax, ymax, n, mask);
      return;
#endif
    default:
      ScalarContainedInKernel(q, xmin, ymin, xmax, ymax, n, mask);
  }
}

void BatchCovers(const Rect2& q, const Real* xmin, const Real* ymin,
                 const Real* xmax, const Real* ymax, size_t n,
                 uint64_t* mask) {
  switch (ActiveSimdLevel()) {
#ifdef PRTREE_HAVE_AVX2_PATH
    case SimdLevel::kAvx2:
      Avx2CoversKernel(q, xmin, ymin, xmax, ymax, n, mask);
      return;
#endif
#ifdef PRTREE_HAVE_NEON_PATH
    case SimdLevel::kNeon:
      NeonCoversKernel(q, xmin, ymin, xmax, ymax, n, mask);
      return;
#endif
    default:
      ScalarCoversKernel(q, xmin, ymin, xmax, ymax, n, mask);
  }
}

void BatchMinDist2(Real px, Real py, const Real* xmin, const Real* ymin,
                   const Real* xmax, const Real* ymax, size_t n, Real* d2) {
  switch (ActiveSimdLevel()) {
#ifdef PRTREE_HAVE_AVX2_PATH
    case SimdLevel::kAvx2:
      Avx2MinDist2Kernel(px, py, xmin, ymin, xmax, ymax, n, d2);
      return;
#endif
#ifdef PRTREE_HAVE_NEON_PATH
    case SimdLevel::kNeon:
      NeonMinDist2Kernel(px, py, xmin, ymin, xmax, ymax, n, d2);
      return;
#endif
    default:
      ScalarMinDist2Kernel(px, py, xmin, ymin, xmax, ymax, n, d2);
  }
}

}  // namespace prtree
