// Serving map-viewport queries from many threads at once.
//
// The paper's motivating scenario (§1) is a GIS serving window queries; a
// real map service answers thousands of viewports concurrently.  This
// example builds one PR-tree, warms the internal-node cache (§3.3) in a
// sharded BufferPool, then lets several worker threads answer viewport
// batches through pinned zero-copy page guards — no locks in user code,
// exact per-thread statistics.
//
// The second leg adds writers: a DynamicPRTree takes inserts from
// background threads while a reader holds a SnapshotHandle.  The pinned
// snapshot keeps answering with the exact same results and QueryStats
// throughout — readers never lock against writers and never see a torn
// version.
//
//   $ ./build/examples/concurrent_queries

#include <cstdio>
#include <thread>
#include <vector>

#include "core/dynamic_prtree.h"
#include "core/prtree.h"
#include "io/buffer_pool.h"
#include "util/parallel.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;  // NOLINT

int main() {
  const size_t kSegments = 200000;
  const int kThreads = 4;
  auto roads = workload::MakeTigerLike(kSegments,
                                       workload::TigerRegion::kEastern, 7);
  MemoryBlockDevice device;
  RTree<2> tree(&device);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&device, 8u << 20}, roads, &tree));
  std::printf("indexed %zu road segments (%d levels)\n", tree.size(),
              tree.height() + 1);

  TreeStats ts = tree.ComputeStats();
  BufferPool pool(&device, ts.num_nodes + 16);
  tree.CacheInternalNodes(&pool);

  // 800 city-block viewports, split across the workers.
  auto viewports = workload::MakeSquareQueries(tree.Mbr(), 0.005, 800, 3);
  std::vector<QueryStats> per_thread(kThreads);
  ParallelForChunks(0, viewports.size(), kThreads,
                    [&](int t, size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) {
                        per_thread[t] += tree.Query(
                            viewports[i], [](const Record2&) {}, &pool);
                      }
                    });

  QueryStats total;
  for (int t = 0; t < kThreads; ++t) {
    std::printf("thread %d: %llu queries' worth -> %llu results, %llu leaf "
                "blocks\n",
                t,
                static_cast<unsigned long long>(viewports.size() / kThreads),
                static_cast<unsigned long long>(per_thread[t].results),
                static_cast<unsigned long long>(per_thread[t].leaves_visited));
    total += per_thread[t];
  }
  std::printf("all threads: %llu results, %.1f leaf I/Os per query "
              "(internal nodes served from the shared cache)\n",
              static_cast<unsigned long long>(total.results),
              static_cast<double>(total.leaves_visited) /
                  static_cast<double>(viewports.size()));

  // ---- snapshot reads under writes ------------------------------------
  // The map keeps updating while viewports are being served.  A pinned
  // snapshot freezes one version of the index: the two writer threads
  // below trigger buffer flushes and level rebuilds, yet every re-run of
  // the same viewport on the snapshot returns identical results and
  // identical stats.
  MemoryBlockDevice dyn_device;
  DynamicPRTree<2> dynamic(WorkEnv{&dyn_device, 8u << 20});
  for (size_t i = 0; i < 50000; ++i) dynamic.Insert(roads[i]);

  auto snap = dynamic.Snapshot();
  const Rect2 viewport = viewports.front();
  QueryStats before = snap.Query(viewport, [](const Record2&) {});

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 50000 + static_cast<size_t>(w); i < 80000; i += 2) {
        dynamic.Insert(roads[i]);
      }
    });
  }
  uint64_t frozen_reruns = 0;
  for (int round = 0; round < 50; ++round) {
    QueryStats qs = snap.Query(viewport, [](const Record2&) {});
    frozen_reruns += (qs.results == before.results &&
                      qs.leaves_visited == before.leaves_visited);
  }
  for (auto& w : writers) w.join();
  QueryStats after = snap.Query(viewport, [](const Record2&) {});
  std::printf(
      "snapshot under writes: pinned at %zu records, %llu/50 re-runs frozen "
      "mid-storm, stats %s after 30000 concurrent inserts "
      "(index now %zu records, snapshot still %zu)\n",
      snap.size(), static_cast<unsigned long long>(frozen_reruns),
      after.results == before.results &&
              after.leaves_visited == before.leaves_visited
          ? "byte-identical"
          : "CHANGED (bug!)",
      dynamic.size(), snap.size());
  snap.Release();
  return 0;
}
