// Serving map-viewport queries from many threads at once.
//
// The paper's motivating scenario (§1) is a GIS serving window queries; a
// real map service answers thousands of viewports concurrently.  This
// example builds one PR-tree, warms the internal-node cache (§3.3) in a
// sharded BufferPool, then lets several worker threads answer viewport
// batches through pinned zero-copy page guards — no locks in user code,
// exact per-thread statistics.
//
//   $ ./build/examples/concurrent_queries

#include <cstdio>
#include <vector>

#include "core/prtree.h"
#include "io/buffer_pool.h"
#include "util/parallel.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;  // NOLINT

int main() {
  const size_t kSegments = 200000;
  const int kThreads = 4;
  auto roads = workload::MakeTigerLike(kSegments,
                                       workload::TigerRegion::kEastern, 7);
  MemoryBlockDevice device;
  RTree<2> tree(&device);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&device, 8u << 20}, roads, &tree));
  std::printf("indexed %zu road segments (%d levels)\n", tree.size(),
              tree.height() + 1);

  TreeStats ts = tree.ComputeStats();
  BufferPool pool(&device, ts.num_nodes + 16);
  tree.CacheInternalNodes(&pool);

  // 800 city-block viewports, split across the workers.
  auto viewports = workload::MakeSquareQueries(tree.Mbr(), 0.005, 800, 3);
  std::vector<QueryStats> per_thread(kThreads);
  ParallelForChunks(0, viewports.size(), kThreads,
                    [&](int t, size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) {
                        per_thread[t] += tree.Query(
                            viewports[i], [](const Record2&) {}, &pool);
                      }
                    });

  QueryStats total;
  for (int t = 0; t < kThreads; ++t) {
    std::printf("thread %d: %llu queries' worth -> %llu results, %llu leaf "
                "blocks\n",
                t,
                static_cast<unsigned long long>(viewports.size() / kThreads),
                static_cast<unsigned long long>(per_thread[t].results),
                static_cast<unsigned long long>(per_thread[t].leaves_visited));
    total += per_thread[t];
  }
  std::printf("all threads: %llu results, %.1f leaf I/Os per query "
              "(internal nodes served from the shared cache)\n",
              static_cast<unsigned long long>(total.results),
              static_cast<double>(total.leaves_visited) /
                  static_cast<double>(viewports.size()));
  return 0;
}
