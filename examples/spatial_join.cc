// Spatial join: find all intersecting pairs between two rectangle sets
// using synchronised R-tree traversal — a classic workload (map overlay:
// roads x flood zones) built on the library's page-level API.
//
//   $ ./build/examples/spatial_join

#include <cstdio>
#include <vector>

#include "core/prtree.h"
#include "util/timer.h"
#include "workload/datasets.h"

using namespace prtree;  // NOLINT

namespace {

// Synchronised depth-first join of two block-based R-trees: descend both
// trees simultaneously, pruning pairs of subtrees whose MBRs are disjoint.
template <typename Emit>
void TreeJoin(const RTree<2>& a, const RTree<2>& b, Emit emit,
              uint64_t* nodes_read) {
  struct Task {
    PageId pa, pb;
  };
  if (a.empty() || b.empty()) return;
  std::vector<std::byte> buf_a(a.block_size()), buf_b(b.block_size());
  std::vector<Task> stack{{a.root(), b.root()}};
  while (!stack.empty()) {
    Task t = stack.back();
    stack.pop_back();
    AbortIfError(a.device()->Read(t.pa, buf_a.data()));
    AbortIfError(b.device()->Read(t.pb, buf_b.data()));
    *nodes_read += 2;
    NodeView<2> na(buf_a.data(), a.block_size());
    NodeView<2> nb(buf_b.data(), b.block_size());

    if (na.is_leaf() && nb.is_leaf()) {
      for (int i = 0; i < na.count(); ++i) {
        Rect2 ra = na.GetRect(i);
        for (int j = 0; j < nb.count(); ++j) {
          if (ra.Intersects(nb.GetRect(j))) {
            emit(Record2{ra, na.GetId(i)},
                 Record2{nb.GetRect(j), nb.GetId(j)});
          }
        }
      }
    } else if (nb.is_leaf() || (!na.is_leaf() &&
                                na.level() >= nb.level())) {
      // Expand a.
      Rect2 mb = nb.ComputeMbr();
      for (int i = 0; i < na.count(); ++i) {
        if (na.GetRect(i).Intersects(mb)) {
          stack.push_back({na.GetId(i), t.pb});
        }
      }
    } else {
      // Expand b.
      Rect2 ma = na.ComputeMbr();
      for (int j = 0; j < nb.count(); ++j) {
        if (nb.GetRect(j).Intersects(ma)) {
          stack.push_back({t.pa, nb.GetId(j)});
        }
      }
    }
  }
}

}  // namespace

int main() {
  // Roads (thin, clustered) x hazard zones (moderate rectangles).
  auto roads = workload::MakeTigerLike(150000,
                                       workload::TigerRegion::kWestern, 3);
  auto zones = workload::MakeSize(20000, 0.01, 4);
  std::printf("joining %zu road segments with %zu hazard zones...\n",
              roads.size(), zones.size());

  MemoryBlockDevice dev_a, dev_b;
  RTree<2> tree_a(&dev_a), tree_b(&dev_b);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev_a, 8u << 20}, roads, &tree_a));
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev_b, 8u << 20}, zones, &tree_b));

  Timer timer;
  uint64_t pairs = 0, nodes_read = 0;
  TreeJoin(tree_a, tree_b,
           [&](const Record2&, const Record2&) { ++pairs; }, &nodes_read);
  double join_seconds = timer.Seconds();

  std::printf("tree join: %llu intersecting pairs, %llu node reads, "
              "%.2fs\n",
              static_cast<unsigned long long>(pairs),
              static_cast<unsigned long long>(nodes_read), join_seconds);

  // Sanity-check against an index-nested-loop join on a sample.
  timer.Reset();
  uint64_t nested_pairs = 0;
  for (const auto& zone : zones) {
    nested_pairs += tree_a.Query(zone.rect, [](const Record2&) {}).results;
  }
  std::printf("index-nested-loop (per-zone window queries): %llu pairs, "
              "%.2fs\n",
              static_cast<unsigned long long>(nested_pairs),
              timer.Seconds());
  PRTREE_CHECK(pairs == nested_pairs);
  std::printf("both join strategies agree.\n");
  return 0;
}
