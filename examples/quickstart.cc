// Quickstart: bulk-load a PR-tree and run window queries.
//
//   $ ./build/examples/quickstart
//
// Walks through the minimal public API: a simulated block device, the
// unified BulkLoader construction entry point, and RTree::Query.

#include <unistd.h>

#include <cstdio>

#include "io/block_device.h"
#include "rtree/bulk_loader.h"
#include "rtree/knn.h"
#include "rtree/persist.h"
#include "rtree/rtree.h"
#include "util/random.h"

using namespace prtree;  // NOLINT

int main() {
  // 1. A "disk" of 4 KB blocks.  All index I/O is counted on it.
  BlockDevice device;

  // 2. One million random rectangles.  Each record is a bounding box plus
  //    a 32-bit id pointing back at your object.
  Rng rng(42);
  std::vector<Record2> boxes;
  for (DataId id = 0; id < 1000000; ++id) {
    double x = rng.Uniform(0, 1), y = rng.Uniform(0, 1);
    double w = rng.Uniform(0, 0.001), h = rng.Uniform(0, 0.001);
    boxes.push_back(Record2{MakeRect(x, y, x + w, y + h), id});
  }

  // 3. Bulk-load the PR-tree through the unified BulkLoader API (the same
  //    call builds Hilbert/TGS/STR — pick a LoaderKind).  memory_bytes
  //    caps the loader's working memory — the algorithm is external: it
  //    works for data far larger than RAM.  threads > 1 parallelises the
  //    build and produces the byte-identical tree.
  RTree<2> index(&device);
  BuildOptions opts;
  opts.memory_bytes = 16u << 20;
  opts.threads = HardwareThreads();
  auto loader = MakeBulkLoader<2>(LoaderKind::kPrTree, opts);
  AbortIfError(loader->Build(&device, boxes, &index));
  std::printf("built PR-tree: %zu records, height %d, %llu nodes, "
              "%.1f%% space utilisation\n",
              index.size(), index.height(),
              static_cast<unsigned long long>(
                  index.ComputeStats().num_nodes),
              100 * index.ComputeStats().utilization);

  // 4. Window query: report everything intersecting a rectangle.
  Rect2 window = MakeRect(0.25, 0.25, 0.26, 0.26);
  size_t hits = 0;
  QueryStats stats = index.Query(window, [&](const Record2& rec) {
    ++hits;
    if (hits <= 3) {
      std::printf("  hit id=%u box=%s\n", rec.id, rec.rect.ToString().c_str());
    }
  });
  std::printf("window %s -> %llu results, %llu leaf blocks read\n",
              window.ToString().c_str(),
              static_cast<unsigned long long>(stats.results),
              static_cast<unsigned long long>(stats.leaves_visited));

  // 5. The worst-case guarantee: even a query with zero results reads only
  //    O(sqrt(N/B)) blocks.
  Rect2 empty_window = MakeRect(2.0, 2.0, 3.0, 3.0);
  QueryStats empty_stats = index.Query(empty_window, [](const Record2&) {});
  std::printf("empty window -> %llu results, %llu blocks read "
              "(tree has %llu leaves)\n",
              static_cast<unsigned long long>(empty_stats.results),
              static_cast<unsigned long long>(empty_stats.nodes_visited),
              static_cast<unsigned long long>(
                  index.ComputeStats().num_leaves));

  // 6. k-nearest-neighbour search (best-first, provably minimal visits).
  auto nearest = KnnSearch<2>(index, {0.7, 0.3}, 3);
  std::printf("3 nearest to (0.7, 0.3):\n");
  for (const auto& nb : nearest) {
    std::printf("  id=%u dist=%.6f\n", nb.record.id, nb.distance);
  }

  // 7. Persistence: snapshot the index to a file and reload it anywhere.
  // PID-qualified so concurrent runs (e.g. two ctest invocations on one
  // machine) cannot clobber each other's snapshot.
  std::string path = "/tmp/prtree_quickstart." +
                     std::to_string(static_cast<long>(getpid())) + ".snapshot";
  AbortIfError(SaveTree(index, path));
  BlockDevice device2;
  RTree<2> reloaded(&device2);
  AbortIfError(LoadTree(path, &reloaded));
  std::printf("snapshot round-trip: reloaded %zu records, height %d\n",
              reloaded.size(), reloaded.height());
  std::remove(path.c_str());
  return 0;
}
