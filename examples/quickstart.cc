// Quickstart: bulk-load a PR-tree and run window queries.
//
//   $ ./build/examples/quickstart                    # in-memory device
//   $ ./build/examples/quickstart --device=file      # real disk file
//   $ ./build/examples/quickstart --device=file --path=/tmp/my.prtree
//   $ ./build/examples/quickstart --device=uring     # io_uring-batched reads
//
// Walks through the minimal public API: a block device (in-memory,
// file-backed or io_uring-backed — everything above it is identical,
// including the reported I/O counts), the unified BulkLoader construction
// entry point, and RTree::Query.  With --device=file or --device=uring the
// index lives in a real file, which the example then reopens — the
// persistence path an embedding application uses across process restarts.
// (--device=uring falls back to plain file I/O transparently on kernels
// without io_uring; the output is identical either way.)

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "io/block_device.h"
#include "io/file_block_device.h"
#include "io/uring_block_device.h"
#include "rtree/bulk_loader.h"
#include "rtree/knn.h"
#include "rtree/persist.h"
#include "rtree/rtree.h"
#include "util/random.h"

using namespace prtree;  // NOLINT

int main(int argc, char** argv) {
  std::string device_kind = "memory";
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--device=", 9) == 0) {
      device_kind = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--path=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--device=memory|file|uring] [--path=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (device_kind != "memory" && device_kind != "file" &&
      device_kind != "uring") {
    std::fprintf(stderr, "--device must be memory, file or uring\n");
    return 2;
  }
  const bool file_backed = device_kind != "memory";

  // 1. A "disk" of 4 KB blocks.  All index I/O is counted on it.  The
  //    memory backend is a deterministic simulation; the file backend maps
  //    the same pages onto a real file via pread/pwrite.
  bool remove_file = false;
  std::unique_ptr<BlockDevice> device;
  if (file_backed) {
    if (path.empty()) {
      path = "/tmp/prtree_quickstart." +
             std::to_string(static_cast<long>(getpid())) + ".dev";
      remove_file = true;  // example-managed temp file
    }
    FileDeviceOptions fopts;
    fopts.truncate = true;
    AbortIfError(OpenFileBackedDevice(device_kind, path, fopts, &device));
    if (auto* uring = dynamic_cast<UringBlockDevice*>(device.get())) {
      std::printf("uring device: %s\n", uring->ring_active()
                                            ? "io_uring active"
                                            : "pread fallback");
    }
  } else {
    device = std::make_unique<MemoryBlockDevice>();
  }

  // 2. One million random rectangles.  Each record is a bounding box plus
  //    a 32-bit id pointing back at your object.
  Rng rng(42);
  std::vector<Record2> boxes;
  for (DataId id = 0; id < 1000000; ++id) {
    double x = rng.Uniform(0, 1), y = rng.Uniform(0, 1);
    double w = rng.Uniform(0, 0.001), h = rng.Uniform(0, 0.001);
    boxes.push_back(Record2{MakeRect(x, y, x + w, y + h), id});
  }

  // 3. Bulk-load the PR-tree through the unified BulkLoader API (the same
  //    call builds Hilbert/TGS/STR — pick a LoaderKind).  memory_bytes
  //    caps the loader's working memory — the algorithm is external: it
  //    works for data far larger than RAM, and on the file backend the
  //    blocks genuinely live on disk.  threads > 1 parallelises the build
  //    and produces the byte-identical tree on either backend.
  RTree<2> index(device.get());
  BuildOptions opts;
  opts.memory_bytes = 16u << 20;
  opts.threads = HardwareThreads();
  auto loader = MakeBulkLoader<2>(LoaderKind::kPrTree, opts);
  AbortIfError(loader->Build(device.get(), boxes, &index));
  std::printf("built PR-tree: %zu records, height %d, %llu nodes, "
              "%.1f%% space utilisation\n",
              index.size(), index.height(),
              static_cast<unsigned long long>(
                  index.ComputeStats().num_nodes),
              100 * index.ComputeStats().utilization);

  // 4. Window query: report everything intersecting a rectangle.  The
  //    result set and the leaf-I/O count are identical on both backends.
  Rect2 window = MakeRect(0.25, 0.25, 0.26, 0.26);
  size_t hits = 0;
  QueryStats stats = index.Query(window, [&](const Record2& rec) {
    ++hits;
    if (hits <= 3) {
      std::printf("  hit id=%u box=%s\n", rec.id, rec.rect.ToString().c_str());
    }
  });
  std::printf("window %s -> %llu results, %llu leaf blocks read\n",
              window.ToString().c_str(),
              static_cast<unsigned long long>(stats.results),
              static_cast<unsigned long long>(stats.leaves_visited));

  // 5. The worst-case guarantee: even a query with zero results reads only
  //    O(sqrt(N/B)) blocks.
  Rect2 empty_window = MakeRect(2.0, 2.0, 3.0, 3.0);
  QueryStats empty_stats = index.Query(empty_window, [](const Record2&) {});
  std::printf("empty window -> %llu results, %llu blocks read "
              "(tree has %llu leaves)\n",
              static_cast<unsigned long long>(empty_stats.results),
              static_cast<unsigned long long>(empty_stats.nodes_visited),
              static_cast<unsigned long long>(
                  index.ComputeStats().num_leaves));

  // 6. k-nearest-neighbour search (best-first, provably minimal visits).
  auto nearest = KnnSearch<2>(index, {0.7, 0.3}, 3);
  std::printf("3 nearest to (0.7, 0.3):\n");
  for (const auto& nb : nearest) {
    std::printf("  id=%u dist=%.6f\n", nb.record.id, nb.distance);
  }

  // 7. Persistence.
  if (file_backed) {
    // The device file IS the index: record the root in its superblock,
    // sync, drop every in-memory handle, then reopen from the path alone —
    // exactly what an application does across process restarts.
    AbortIfError(PersistTree(index, static_cast<FileBlockDevice*>(
                                        device.get())));
    device.reset();
    std::unique_ptr<FileBlockDevice> reopened;
    FileDeviceOptions ropts;
    ropts.must_exist = true;
    AbortIfError(FileBlockDevice::Open(path, ropts, &reopened));
    RTree<2> again(reopened.get());
    AbortIfError(AttachTree(reopened.get(), &again));
    size_t rehits = 0;
    again.Query(window, [&](const Record2&) { ++rehits; });
    std::printf("snapshot round-trip: reloaded %zu records, height %d\n",
                again.size(), again.height());
    if (rehits != hits) {
      std::fprintf(stderr, "reopen mismatch: %zu vs %zu hits\n", rehits,
                   hits);
      return 1;
    }
    if (remove_file) std::remove(path.c_str());
  } else {
    // In-memory device: snapshot the index to a host file and reload it
    // anywhere.  PID-qualified so concurrent runs (e.g. two ctest
    // invocations on one machine) cannot clobber each other's snapshot.
    std::string snap = "/tmp/prtree_quickstart." +
                       std::to_string(static_cast<long>(getpid())) +
                       ".snapshot";
    AbortIfError(SaveTree(index, snap));
    MemoryBlockDevice device2;
    RTree<2> reloaded(&device2);
    AbortIfError(LoadTree(snap, &reloaded));
    std::printf("snapshot round-trip: reloaded %zu records, height %d\n",
                reloaded.size(), reloaded.height());
    std::remove(snap.c_str());
  }
  return 0;
}
