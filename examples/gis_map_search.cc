// GIS map search: the paper's motivating scenario (§1) — index road
// segments of a TIGER-style map and serve map-viewport queries, comparing
// the PR-tree against the packed Hilbert R-tree on both friendly and
// hostile data.
//
//   $ ./build/examples/gis_map_search

#include <cstdio>

#include "baselines/hilbert_rtree.h"
#include "core/prtree.h"
#include "io/buffer_pool.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace prtree;  // NOLINT

namespace {

struct Index {
  MemoryBlockDevice device;
  RTree<2> tree{&device};
};

double AvgLeafReads(Index* idx, const std::vector<Rect2>& viewports) {
  TreeStats ts = idx->tree.ComputeStats();
  BufferPool pool(&idx->device, ts.num_nodes + 16);
  idx->tree.CacheInternalNodes(&pool);
  uint64_t leaves = 0;
  for (const auto& v : viewports) {
    leaves += idx->tree.Query(v, [](const Record2&) {}, &pool)
                  .leaves_visited;
  }
  return static_cast<double>(leaves) / static_cast<double>(viewports.size());
}

}  // namespace

int main() {
  // A state-sized road network (bounding boxes of road segments).
  const size_t kSegments = 400000;
  auto roads = workload::MakeTigerLike(kSegments,
                                       workload::TigerRegion::kEastern, 7);
  std::printf("map: %zu road-segment bounding boxes\n", roads.size());

  Index pr, hilbert;
  WorkEnv pr_env{&pr.device, 8u << 20};
  WorkEnv h_env{&hilbert.device, 8u << 20};
  AbortIfError(BulkLoadPrTree<2>(pr_env, roads, &pr.tree));
  AbortIfError(BulkLoadHilbert(h_env, roads, &hilbert.tree));

  // City-block-sized viewports (0.5% of the map area).
  auto viewports = workload::MakeSquareQueries(pr.tree.Mbr(), 0.005, 200, 3);
  std::printf("\nfriendly data — %zu viewport queries (0.5%% of map):\n",
              viewports.size());
  std::printf("  PR-tree:        %.1f leaf blocks/query\n",
              AvgLeafReads(&pr, viewports));
  std::printf("  packed Hilbert: %.1f leaf blocks/query\n",
              AvgLeafReads(&hilbert, viewports));
  std::printf("  (on nicely distributed road data the two are close — "
              "paper Figures 12-13)\n");

  // Hostile data: long power-line corridors — extreme aspect ratios.
  auto corridors = workload::MakeAspect(kSegments, 1e4, 11);
  Index pr2, hilbert2;
  WorkEnv pr2_env{&pr2.device, 8u << 20};
  WorkEnv h2_env{&hilbert2.device, 8u << 20};
  AbortIfError(BulkLoadPrTree<2>(pr2_env, corridors, &pr2.tree));
  AbortIfError(BulkLoadHilbert(h2_env, corridors, &hilbert2.tree));
  auto viewports2 =
      workload::MakeSquareQueries(pr2.tree.Mbr(), 0.005, 200, 5);
  std::printf("\nhostile data (aspect-10^4 corridors) — same queries:\n");
  std::printf("  PR-tree:        %.1f leaf blocks/query\n",
              AvgLeafReads(&pr2, viewports2));
  std::printf("  packed Hilbert: %.1f leaf blocks/query\n",
              AvgLeafReads(&hilbert2, viewports2));
  std::printf("  (the PR-tree's worst-case guarantee pays off — paper "
              "Figure 15)\n");
  return 0;
}
