// Dynamic updates: a fleet-tracking workload over the two update paths the
// paper discusses (§1.2, §4) — Guttman updates applied directly to a
// bulk-loaded PR-tree, and the logarithmic-method DynamicPRTree that keeps
// the worst-case query guarantee.
//
//   $ ./build/examples/dynamic_updates

#include <cstdio>

#include "core/dynamic_prtree.h"
#include "core/prtree.h"
#include "rtree/update.h"
#include "util/random.h"
#include "workload/datasets.h"

using namespace prtree;  // NOLINT

int main() {
  const size_t kVehicles = 50000;
  Rng rng(2026);

  // Initial fleet positions (points).
  std::vector<Record2> fleet;
  for (DataId id = 0; id < kVehicles; ++id) {
    double x = rng.Uniform(0, 1), y = rng.Uniform(0, 1);
    fleet.push_back(Record2{MakeRect(x, y, x, y), id});
  }

  // Path 1: bulk-load once, then Guttman-update in place.
  MemoryBlockDevice dev_guttman;
  RTree<2> guttman(&dev_guttman);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev_guttman, 8u << 20}, fleet,
                                 &guttman));
  RTreeUpdater<2> updater(&guttman);

  // Path 2: logarithmic-method dynamic PR-tree.
  MemoryBlockDevice dev_dynamic;
  DynamicPRTree<2> dynamic(WorkEnv{&dev_dynamic, 8u << 20});
  for (const auto& rec : fleet) dynamic.Insert(rec);

  // Simulate movement: every tick, 1% of vehicles move (delete + insert).
  std::printf("simulating 20 ticks of fleet movement (1%% moves/tick)...\n");
  for (int tick = 0; tick < 20; ++tick) {
    for (int moves = 0; moves < static_cast<int>(kVehicles) / 100; ++moves) {
      DataId id = static_cast<DataId>(rng.UniformInt(0, kVehicles - 1));
      Record2 old_rec = fleet[id];
      double nx = std::clamp(old_rec.rect.lo[0] + rng.Gaussian(0, 0.01),
                             0.0, 1.0);
      double ny = std::clamp(old_rec.rect.lo[1] + rng.Gaussian(0, 0.01),
                             0.0, 1.0);
      Record2 new_rec{MakeRect(nx, ny, nx, ny), id};

      bool removed = updater.Delete(old_rec);
      PRTREE_CHECK(removed);
      updater.Insert(new_rec);
      removed = dynamic.Delete(old_rec);
      PRTREE_CHECK(removed);
      dynamic.Insert(new_rec);
      fleet[id] = new_rec;
    }
  }
  std::printf("after movement: guttman tree %zu records, dynamic %zu "
              "records (%zu levels, %zu tombstones)\n",
              guttman.size(), dynamic.size(), dynamic.num_levels(),
              dynamic.tombstones());

  // Geofence query: which vehicles are inside the depot area?
  Rect2 depot = MakeRect(0.45, 0.45, 0.55, 0.55);
  size_t expected = 0;
  for (const auto& rec : fleet) {
    if (rec.rect.Intersects(depot)) ++expected;
  }
  QueryStats g = guttman.Query(depot, [](const Record2&) {});
  QueryStats d = dynamic.Query(depot, [](const Record2&) {});
  std::printf("geofence %s: expected %zu\n", depot.ToString().c_str(),
              expected);
  std::printf("  guttman-updated PR-tree: %llu results, %llu leaf reads\n",
              static_cast<unsigned long long>(g.results),
              static_cast<unsigned long long>(g.leaves_visited));
  std::printf("  dynamic (log-method):    %llu results, %llu leaf reads\n",
              static_cast<unsigned long long>(d.results),
              static_cast<unsigned long long>(d.leaves_visited));
  PRTREE_CHECK(g.results == expected);
  PRTREE_CHECK(d.results == expected);
  std::printf("both structures agree with the ground truth.\n");
  return 0;
}
