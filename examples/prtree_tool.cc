// prtree_tool: a small command-line workbench over the public API —
// generate datasets, bulk-load any index variant, snapshot it, reload it
// and run queries.  The kind of utility an adopting project uses to poke
// at its data before writing code.
//
//   prtree_tool gen --family=size --n=100000 --out=data.csv
//   prtree_tool build --data=data.csv --variant=pr --index=map.prt
//   prtree_tool query --index=map.prt --window=0.1,0.1,0.3,0.3
//   prtree_tool knn   --index=map.prt --point=0.5,0.5 --k=10
//   prtree_tool stats --index=map.prt
//
// All index commands take --device=memory|file (default memory):
//  * memory — the build runs on an in-memory device and the index file is
//    a position-independent snapshot (SaveTree/LoadTree);
//  * file — the index file IS a FileBlockDevice: build writes the tree
//    straight to disk and records the root in the superblock (PersistTree),
//    query/knn/stats reopen it in place (AttachTree) without copying a
//    single page.  This is the out-of-core path: the index may exceed RAM.
//
// Dataset CSV format: one rectangle per line, "xmin,ymin,xmax,ymax,id".

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/file_block_device.h"
#include "io/uring_block_device.h"
#include "rtree/bulk_loader.h"
#include "rtree/journaled_tree.h"
#include "rtree/knn.h"
#include "rtree/persist.h"
#include "rtree/update.h"
#include "rtree/validate.h"
#include "workload/datasets.h"

using namespace prtree;  // NOLINT

namespace {

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: prtree_tool <command> [flags]\n"
      "  gen    --family=size|aspect|skewed|cluster|tiger --n=N "
      "[--param=P] [--seed=S] --out=FILE\n"
      "  build  --data=FILE --variant=pr|h|h4|tgs|str --index=FILE "
      "[--memory-mb=M] [--threads=T] [--device=memory|file|uring]\n"
      "  query  --index=FILE --window=xmin,ymin,xmax,ymax "
      "[--device=memory|file|uring]\n"
      "  knn    --index=FILE --point=x,y [--k=K] "
      "[--device=memory|file|uring]\n"
      "  stats  --index=FILE [--device=memory|file|uring]\n"
      "  update --index=FILE [--data=FILE] [--op=insert|delete] "
      "[--journal=on|off]\n         [--device=file|uring]\n"
      "--device=memory treats the index file as a snapshot; --device=file "
      "treats it\nas a block device and operates on it in place; "
      "--device=uring is the file\nbackend with io_uring-batched reads "
      "(pread fallback when unavailable).\n"
      "update applies the CSV's records to a file-backed index in place.  "
      "With\n--journal=on (the default) every op commits through the "
      "crash-consistent\nupdate journal and opening the index first runs "
      "recovery — invoke update\nwithout --data to just recover and "
      "checkpoint after a crash (docs/DURABILITY.md).\n");
  std::exit(2);
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) Usage();
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) Usage();
    flags[std::string(arg + 2, eq)] = eq + 1;
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::vector<double> ParseDoubles(const std::string& csv, size_t expect) {
  std::vector<double> out;
  const char* p = csv.c_str();
  char* end = nullptr;
  while (*p != '\0') {
    out.push_back(std::strtod(p, &end));
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.size() != expect) {
    std::fprintf(stderr, "expected %zu comma-separated numbers in '%s'\n",
                 expect, csv.c_str());
    std::exit(2);
  }
  return out;
}

int CmdGen(const std::map<std::string, std::string>& flags) {
  std::string family = FlagOr(flags, "family", "size");
  size_t n = std::strtoull(FlagOr(flags, "n", "100000").c_str(), nullptr, 10);
  double param = std::strtod(FlagOr(flags, "param", "0").c_str(), nullptr);
  uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  std::string out_path = FlagOr(flags, "out", "");
  if (out_path.empty()) Usage();

  std::vector<Record2> data;
  if (family == "size") {
    data = workload::MakeSize(n, param > 0 ? param : 0.01, seed);
  } else if (family == "aspect") {
    data = workload::MakeAspect(n, param > 0 ? param : 100, seed);
  } else if (family == "skewed") {
    data = workload::MakeSkewed(n, param > 0 ? static_cast<int>(param) : 5,
                                seed);
  } else if (family == "cluster") {
    size_t clusters = std::max<size_t>(10, n / 200);
    data = workload::MakeCluster(clusters, n / clusters, seed);
  } else if (family == "tiger") {
    data = workload::MakeTigerLike(n, workload::TigerRegion::kEastern, seed);
  } else {
    Usage();
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  for (const auto& rec : data) {
    std::fprintf(f, "%.17g,%.17g,%.17g,%.17g,%u\n", rec.rect.lo[0],
                 rec.rect.lo[1], rec.rect.hi[0], rec.rect.hi[1], rec.id);
  }
  std::fclose(f);
  std::printf("wrote %zu rectangles to %s\n", data.size(), out_path.c_str());
  return 0;
}

std::vector<Record2> ReadCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<Record2> data;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    double xmin, ymin, xmax, ymax;
    unsigned id;
    if (std::sscanf(line, "%lf,%lf,%lf,%lf,%u", &xmin, &ymin, &xmax, &ymax,
                    &id) == 5) {
      data.push_back(Record2{MakeRect(xmin, ymin, xmax, ymax), id});
    }
  }
  std::fclose(f);
  return data;
}

std::string DeviceKindOrDie(const std::map<std::string, std::string>& flags) {
  std::string kind = FlagOr(flags, "device", "memory");
  if (kind != "memory" && kind != "file" && kind != "uring") Usage();
  return kind;
}


int CmdBuild(const std::map<std::string, std::string>& flags) {
  std::string data_path = FlagOr(flags, "data", "");
  std::string index_path = FlagOr(flags, "index", "");
  std::string variant = FlagOr(flags, "variant", "pr");
  std::string device_kind = DeviceKindOrDie(flags);
  size_t memory_mb =
      std::strtoull(FlagOr(flags, "memory-mb", "64").c_str(), nullptr, 10);
  int threads = static_cast<int>(
      std::strtol(FlagOr(flags, "threads", "1").c_str(), nullptr, 10));
  if (data_path.empty() || index_path.empty()) Usage();

  auto data = ReadCsv(data_path);
  std::printf("loaded %zu rectangles from %s\n", data.size(),
              data_path.c_str());
  std::unique_ptr<BlockDevice> device;
  if (device_kind != "memory") {
    // The index file is the device: the tree is built straight into it.
    FileDeviceOptions fopts;
    fopts.truncate = true;
    Status st = OpenFileBackedDevice(device_kind, index_path, fopts, &device);
    if (!st.ok()) {
      std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
      return 1;
    }
  } else {
    device = std::make_unique<MemoryBlockDevice>();
  }
  RTree<2> tree(device.get());
  LoaderKind kind;
  if (!ParseLoaderKind(variant, &kind)) Usage();
  BuildOptions opts;
  opts.memory_bytes = memory_mb << 20;
  opts.threads = threads < 1 ? 1 : threads;
  Status st = MakeBulkLoader<2>(kind, opts)->Build(device.get(), data, &tree);
  if (!st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = device_kind != "memory"
           ? PersistTree(tree, static_cast<FileBlockDevice*>(device.get()))
           : SaveTree(tree, index_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  TreeStats ts = tree.ComputeStats();
  std::printf(
      "built %s index: %zu records, height %d, %llu nodes, %.1f%% "
      "utilisation, %llu build I/Os -> %s\n",
      variant.c_str(), tree.size(), tree.height(),
      static_cast<unsigned long long>(ts.num_nodes), 100 * ts.utilization,
      static_cast<unsigned long long>(device->stats().Total()),
      index_path.c_str());
  return 0;
}

/// An opened index: the device keeps the pages alive, the tree points at
/// the root.  Memory kind restores a snapshot; file kind reopens in place.
struct IndexHandle {
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<RTree<2>> tree;
};

IndexHandle OpenIndexOrDie(const std::map<std::string, std::string>& flags) {
  std::string path = FlagOr(flags, "index", "");
  if (path.empty()) Usage();
  IndexHandle h;
  Status st;
  std::string device_kind = DeviceKindOrDie(flags);
  if (device_kind != "memory") {
    FileDeviceOptions fopts;
    fopts.must_exist = true;  // a typo must not create a stray device file
    st = OpenFileBackedDevice(device_kind, path, fopts, &h.device);
    if (st.ok()) {
      h.tree = std::make_unique<RTree<2>>(h.device.get());
      st = AttachTree(static_cast<FileBlockDevice*>(h.device.get()),
                      h.tree.get());
    }
  } else {
    h.device = std::make_unique<MemoryBlockDevice>();
    h.tree = std::make_unique<RTree<2>>(h.device.get());
    st = LoadTree(path, h.tree.get());
  }
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return h;
}

int CmdQuery(const std::map<std::string, std::string>& flags) {
  std::string index_path = FlagOr(flags, "index", "");
  std::string window = FlagOr(flags, "window", "");
  if (index_path.empty() || window.empty()) Usage();
  auto c = ParseDoubles(window, 4);

  IndexHandle h = OpenIndexOrDie(flags);
  RTree<2>& tree = *h.tree;
  Rect2 w = MakeRect(c[0], c[1], c[2], c[3]);
  size_t shown = 0;
  QueryStats qs = tree.Query(w, [&](const Record2& rec) {
    if (shown < 20) {
      std::printf("  id=%u %s\n", rec.id, rec.rect.ToString().c_str());
    } else if (shown == 20) {
      std::printf("  ...\n");
    }
    ++shown;
  });
  std::printf("%llu results, %llu nodes visited (%llu leaves)\n",
              static_cast<unsigned long long>(qs.results),
              static_cast<unsigned long long>(qs.nodes_visited),
              static_cast<unsigned long long>(qs.leaves_visited));
  return 0;
}

int CmdKnn(const std::map<std::string, std::string>& flags) {
  std::string index_path = FlagOr(flags, "index", "");
  std::string point = FlagOr(flags, "point", "");
  size_t k = std::strtoull(FlagOr(flags, "k", "10").c_str(), nullptr, 10);
  if (index_path.empty() || point.empty()) Usage();
  auto c = ParseDoubles(point, 2);

  IndexHandle h = OpenIndexOrDie(flags);
  RTree<2>& tree = *h.tree;
  QueryStats qs;
  auto neighbors = KnnSearch<2>(tree, {c[0], c[1]}, k, &qs);
  for (const auto& nb : neighbors) {
    std::printf("  id=%u dist=%.9g %s\n", nb.record.id, nb.distance,
                nb.record.rect.ToString().c_str());
  }
  std::printf("%zu neighbours, %llu nodes visited\n", neighbors.size(),
              static_cast<unsigned long long>(qs.nodes_visited));
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  IndexHandle h = OpenIndexOrDie(flags);
  RTree<2>& tree = *h.tree;
  Status st = ValidateTree(tree);
  TreeStats ts = tree.ComputeStats();
  std::printf("records:       %zu\n", tree.size());
  std::printf("height:        %d\n", tree.height());
  std::printf("nodes:         %llu (%llu leaves)\n",
              static_cast<unsigned long long>(ts.num_nodes),
              static_cast<unsigned long long>(ts.num_leaves));
  std::printf("fan-out:       %zu\n", tree.capacity());
  std::printf("utilisation:   %.2f%%\n", 100 * ts.utilization);
  std::printf("mbr:           %s\n", tree.Mbr().ToString().c_str());
  std::printf("validation:    %s\n", st.ToString().c_str());
  for (size_t lvl = 0; lvl < ts.nodes_per_level.size(); ++lvl) {
    std::printf("  level %zu: %llu nodes\n", lvl,
                static_cast<unsigned long long>(ts.nodes_per_level[lvl]));
  }
  return st.ok() ? 0 : 1;
}

int CmdUpdate(const std::map<std::string, std::string>& flags) {
  std::string index_path = FlagOr(flags, "index", "");
  std::string data_path = FlagOr(flags, "data", "");
  std::string op = FlagOr(flags, "op", "insert");
  std::string journal = FlagOr(flags, "journal", "on");
  std::string device_kind = FlagOr(flags, "device", "file");
  if (index_path.empty() || (op != "insert" && op != "delete") ||
      (journal != "on" && journal != "off") ||
      (device_kind != "file" && device_kind != "uring")) {
    Usage();
  }
  std::vector<Record2> data;
  if (!data_path.empty()) data = ReadCsv(data_path);

  if (journal == "on") {
    JournaledTree<2>::Options opts;
    opts.backend = device_kind;
    std::unique_ptr<JournaledTree<2>> t;
    JournaledTree<2>::RecoveryReport rep;
    Status st = JournaledTree<2>::Open(index_path, opts, &t, &rep);
    if (!st.ok()) {
      std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (rep.recovered) {
      std::printf(
          "recovered: %llu committed ops honoured, %zu torn frames "
          "truncated, %zu pages swept\n",
          static_cast<unsigned long long>(rep.committed_ops),
          rep.truncated_frames, rep.swept_pages);
    }
    size_t applied = 0;
    for (const auto& rec : data) {
      st = op == "insert" ? t->Insert(rec) : t->Delete(rec);
      if (!st.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", op.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      ++applied;
    }
    std::printf("%zu journaled %ss -> %s (%zu records, %llu meta writes)\n",
                applied, op.c_str(), index_path.c_str(), t->tree().size(),
                static_cast<unsigned long long>(
                    t->device()->stats().meta_writes));
    return 0;  // destructor checkpoints: clean close
  }

  // Journal off: plain in-place updates, durable only via PersistTree.
  FileDeviceOptions fopts;
  fopts.must_exist = true;
  std::unique_ptr<BlockDevice> device;
  Status st = OpenFileBackedDevice(device_kind, index_path, fopts, &device);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto* dev = static_cast<FileBlockDevice*>(device.get());
  RTree<2> tree(dev);
  st = AttachTree(dev, &tree);
  if (!st.ok()) {
    std::fprintf(stderr, "attach failed: %s\n", st.ToString().c_str());
    return 1;
  }
  RTreeUpdater<2> updater(&tree);
  for (const auto& rec : data) {
    if (op == "insert") {
      updater.Insert(rec);
    } else {
      updater.Delete(rec);
    }
  }
  st = PersistTree(tree, dev);
  if (!st.ok()) {
    std::fprintf(stderr, "persist failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%zu in-place %ss -> %s (%zu records)\n", data.size(),
              op.c_str(), index_path.c_str(), tree.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv);
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "build") return CmdBuild(flags);
  if (cmd == "query") return CmdQuery(flags);
  if (cmd == "knn") return CmdKnn(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "update") return CmdUpdate(flags);
  Usage();
}
