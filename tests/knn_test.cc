#include "rtree/knn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/prtree.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::RandomRects;

template <int D>
std::vector<Neighbor<D>> BruteForceKnn(const std::vector<Record<D>>& data,
                                       const std::array<Real, D>& p,
                                       size_t k) {
  std::vector<Neighbor<D>> all;
  for (const auto& rec : data) {
    all.push_back(Neighbor<D>{rec, MinDist<D>(p, rec.rect)});
  }
  std::sort(all.begin(), all.end(),
            [](const Neighbor<D>& a, const Neighbor<D>& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.record.id < b.record.id;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(MinDistTest, BasicGeometry) {
  Rect2 r = MakeRect(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ((MinDist<2>({1.5, 1.5}, r)), 0.0);  // inside
  EXPECT_DOUBLE_EQ((MinDist<2>({1.5, 1.0}, r)), 0.0);  // on boundary
  EXPECT_DOUBLE_EQ((MinDist<2>({0, 1.5}, r)), 1.0);    // left of
  EXPECT_DOUBLE_EQ((MinDist<2>({1.5, 4}, r)), 2.0);    // above
  EXPECT_DOUBLE_EQ((MinDist<2>({0, 0}, r)), std::sqrt(2.0));  // corner
}

TEST(KnnTest, EmptyTreeAndZeroK) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  EXPECT_TRUE(KnnSearch<2>(tree, {0.5, 0.5}, 5).empty());
  auto data = RandomRects<2>(100, 1);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 1u << 20}, data, &tree));
  EXPECT_TRUE(KnnSearch<2>(tree, {0.5, 0.5}, 0).empty());
}

TEST(KnnTest, KLargerThanTreeReturnsEverything) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  auto data = RandomRects<2>(50, 3);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 1u << 20}, data, &tree));
  auto res = KnnSearch<2>(tree, {0.5, 0.5}, 500);
  EXPECT_EQ(res.size(), 50u);
  // Distances non-decreasing.
  for (size_t i = 1; i < res.size(); ++i) {
    EXPECT_GE(res[i].distance, res[i - 1].distance);
  }
}

class KnnCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(KnnCorrectnessTest, MatchesBruteForce) {
  auto [n, k, seed] = GetParam();
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(n, seed);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));

  Rng rng(seed + 99);
  for (int q = 0; q < 20; ++q) {
    std::array<Real, 2> p{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};
    auto got = KnnSearch<2>(tree, p, k);
    auto expect = BruteForceKnn<2>(data, p, k);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      // Distances must agree exactly; the record may differ only between
      // equidistant candidates.
      EXPECT_DOUBLE_EQ(got[i].distance, expect[i].distance) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnCorrectnessTest,
    ::testing::Combine(::testing::Values(1, 100, 3000),
                       ::testing::Values(size_t{1}, size_t{10}, size_t{64}),
                       ::testing::Values(7, 1001)));

TEST(KnnTest, VisitsFarFewerNodesThanFullScan) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(100000, 13);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 16u << 20}, data, &tree));
  QueryStats stats;
  auto res = KnnSearch<2>(tree, {0.5, 0.5}, 10, &stats);
  ASSERT_EQ(res.size(), 10u);
  // Best-first search should touch a tiny fraction of the tree.
  EXPECT_LT(stats.nodes_visited, tree.ComputeStats().num_nodes / 20);
}

TEST(KnnTest, WorksThroughBufferPool) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(5000, 17);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  BufferPool pool(&dev, 4096);
  tree.CacheInternalNodes(&pool);
  auto with_pool = KnnSearch<2>(tree, {0.3, 0.7}, 25, nullptr, &pool);
  auto without = KnnSearch<2>(tree, {0.3, 0.7}, 25);
  ASSERT_EQ(with_pool.size(), without.size());
  for (size_t i = 0; i < with_pool.size(); ++i) {
    EXPECT_EQ(with_pool[i].record.id, without[i].record.id);
  }
}

TEST(KnnTest, ReadaheadPoolGivesIdenticalNeighborsAndStats) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(5000, 21);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  // Small pool, readahead on: best-first expansion prefetches each pushed
  // frontier; some of that is speculative, none of it may change answers.
  BufferPool pool(&dev, 64);
  pool.set_readahead(true);
  QueryStats plain_stats, ahead_stats;
  auto plain = KnnSearch<2>(tree, {0.6, 0.2}, 25, &plain_stats);
  auto ahead = KnnSearch<2>(tree, {0.6, 0.2}, 25, &ahead_stats, &pool);
  ASSERT_EQ(ahead.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(ahead[i].record.id, plain[i].record.id);
    EXPECT_EQ(ahead[i].distance, plain[i].distance);
  }
  EXPECT_EQ(ahead_stats.nodes_visited, plain_stats.nodes_visited);
  EXPECT_EQ(ahead_stats.leaves_visited, plain_stats.leaves_visited);
  EXPECT_GT(pool.prefetch_staged(), 0u);
}

TEST(KnnTest, ThreeDimensional) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<3>(3000, 19);
  RTree<3> tree(&dev);
  AbortIfError(BulkLoadPrTree<3>(WorkEnv{&dev, 4u << 20}, data, &tree));
  Rng rng(23);
  for (int q = 0; q < 10; ++q) {
    std::array<Real, 3> p{rng.Uniform(0, 1), rng.Uniform(0, 1),
                          rng.Uniform(0, 1)};
    auto got = KnnSearch<3>(tree, p, 8);
    auto expect = BruteForceKnn<3>(data, p, 8);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i].distance, expect[i].distance);
    }
  }
}

}  // namespace
}  // namespace prtree
