#include "geom/rect.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace prtree {
namespace {

TEST(RectTest, IntersectsBasic) {
  Rect2 a = MakeRect(0, 0, 1, 1);
  Rect2 b = MakeRect(0.5, 0.5, 2, 2);
  Rect2 c = MakeRect(1.5, 1.5, 2, 2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.Intersects(a));
}

TEST(RectTest, TouchingBoundariesIntersect) {
  Rect2 a = MakeRect(0, 0, 1, 1);
  Rect2 b = MakeRect(1, 0, 2, 1);  // shares the x=1 edge
  Rect2 c = MakeRect(1, 1, 2, 2);  // shares only the corner (1,1)
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(a.Intersects(c));
}

TEST(RectTest, DegenerateRectsIntersect) {
  Rect2 point = MakeRect(0.5, 0.5, 0.5, 0.5);
  Rect2 hline = MakeRect(0, 0.5, 1, 0.5);
  Rect2 box = MakeRect(0, 0, 1, 1);
  EXPECT_TRUE(point.Intersects(box));
  EXPECT_TRUE(hline.Intersects(box));
  EXPECT_TRUE(point.Intersects(hline));
  EXPECT_TRUE(point.Intersects(point));
}

TEST(RectTest, ContainsIncludesBoundary) {
  Rect2 a = MakeRect(0, 0, 1, 1);
  EXPECT_TRUE(a.Contains(MakeRect(0, 0, 1, 1)));
  EXPECT_TRUE(a.Contains(MakeRect(0.2, 0.3, 0.4, 0.5)));
  EXPECT_FALSE(a.Contains(MakeRect(0.2, 0.3, 1.4, 0.5)));
  EXPECT_FALSE(a.Contains(MakeRect(-0.1, 0, 1, 1)));
}

TEST(RectTest, ContainsPoint) {
  Rect2 a = MakeRect(0, 0, 1, 1);
  EXPECT_TRUE(a.ContainsPoint({0.0, 0.0}));
  EXPECT_TRUE(a.ContainsPoint({1.0, 1.0}));
  EXPECT_FALSE(a.ContainsPoint({1.0, 1.0001}));
}

TEST(RectTest, EmptyIdentity) {
  Rect2 e = Rect2::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Area(), 0);
  Rect2 a = MakeRect(0.25, 0.5, 0.75, 1.0);
  Rect2 joined = Rect2::Cover(e, a);
  EXPECT_EQ(joined, a);
  EXPECT_FALSE(joined.IsEmpty());
}

TEST(RectTest, CoverAndExtend) {
  Rect2 a = MakeRect(0, 0, 1, 1);
  Rect2 b = MakeRect(2, -1, 3, 0.5);
  Rect2 c = Rect2::Cover(a, b);
  EXPECT_EQ(c, MakeRect(0, -1, 3, 1));
  a.ExtendToCover(b);
  EXPECT_EQ(a, c);
}

TEST(RectTest, AreaMarginExtent) {
  Rect2 a = MakeRect(0, 0, 2, 3);
  EXPECT_DOUBLE_EQ(a.Area(), 6);
  EXPECT_DOUBLE_EQ(a.Margin(), 5);
  EXPECT_DOUBLE_EQ(a.Extent(0), 2);
  EXPECT_DOUBLE_EQ(a.Extent(1), 3);
  EXPECT_DOUBLE_EQ(a.Center(0), 1);
  EXPECT_DOUBLE_EQ(a.Center(1), 1.5);
}

TEST(RectTest, IntersectionArea) {
  Rect2 a = MakeRect(0, 0, 2, 2);
  Rect2 b = MakeRect(1, 1, 3, 3);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(b), 1);
  EXPECT_DOUBLE_EQ(b.IntersectionArea(a), 1);
  Rect2 c = MakeRect(5, 5, 6, 6);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(c), 0);
  // Touching edge: zero-area intersection.
  Rect2 d = MakeRect(2, 0, 3, 2);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(d), 0);
}

TEST(RectTest, Enlargement) {
  Rect2 a = MakeRect(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(a.Enlargement(MakeRect(0.2, 0.2, 0.8, 0.8)), 0);
  EXPECT_DOUBLE_EQ(a.Enlargement(MakeRect(0, 0, 2, 1)), 1);
}

TEST(RectTest, CornerCoordMatchesPaperMapping) {
  // R* = (xmin, ymin, xmax, ymax) per §2.1.
  Rect2 a = MakeRect(1, 2, 3, 4);
  EXPECT_EQ(a.CornerCoord(0), 1);
  EXPECT_EQ(a.CornerCoord(1), 2);
  EXPECT_EQ(a.CornerCoord(2), 3);
  EXPECT_EQ(a.CornerCoord(3), 4);
}

TEST(RectTest, ThreeDimensional) {
  Rect<3> a;
  a.lo = {0, 0, 0};
  a.hi = {1, 2, 3};
  EXPECT_DOUBLE_EQ(a.Area(), 6);
  EXPECT_DOUBLE_EQ(a.Margin(), 6);
  EXPECT_EQ(Rect<3>::kCorners, 6);
  Rect<3> b;
  b.lo = {0.5, 0.5, 2.9};
  b.hi = {0.6, 0.6, 3.1};
  EXPECT_TRUE(a.Intersects(b));
  b.lo[2] = 3.01;
  b.hi[2] = 3.2;
  EXPECT_FALSE(a.Intersects(b));
}

// Property sweep: Cover is commutative/associative and Intersects is
// symmetric and consistent with IntersectionArea on random rectangles.
class RectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectPropertyTest, AlgebraicProperties) {
  auto data = testing_util::RandomRects<2>(200, GetParam(), 0.3);
  for (size_t i = 0; i + 2 < data.size(); i += 3) {
    const Rect2& a = data[i].rect;
    const Rect2& b = data[i + 1].rect;
    const Rect2& c = data[i + 2].rect;
    EXPECT_EQ(Rect2::Cover(a, b), Rect2::Cover(b, a));
    EXPECT_EQ(Rect2::Cover(Rect2::Cover(a, b), c),
              Rect2::Cover(a, Rect2::Cover(b, c)));
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
    if (a.IntersectionArea(b) > 0) {
      EXPECT_TRUE(a.Intersects(b));
    }
    EXPECT_TRUE(Rect2::Cover(a, b).Contains(a));
    EXPECT_TRUE(Rect2::Cover(a, b).Contains(b));
    EXPECT_GE(a.Enlargement(b), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

}  // namespace
}  // namespace prtree
