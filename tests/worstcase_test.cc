// Theorem 3 and Table 1 behaviour: the heuristic R-trees can be forced to
// visit Θ(N/B) leaves on a query with empty output, while the PR-tree stays
// within its O(sqrt(N/B) + T/B) bound.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/hilbert_rtree.h"
#include "baselines/tgs_rtree.h"
#include "core/prtree.h"
#include "rtree/validate.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace prtree {
namespace {

struct BuiltTrees {
  RTree<2> h, h4, pr, tgs;
  explicit BuiltTrees(BlockDevice* dev) : h(dev), h4(dev), pr(dev), tgs(dev) {}
};

void BuildAll(WorkEnv env, const std::vector<Record2>& data, BuiltTrees* t) {
  AbortIfError(BulkLoadHilbert(env, data, &t->h));
  AbortIfError(BulkLoadHilbert4D<2>(env, data, &t->h4));
  AbortIfError(BulkLoadPrTree<2>(env, data, &t->pr));
  AbortIfError(BulkLoadTgs<2>(env, data, &t->tgs));
  ASSERT_TRUE(ValidateTree(t->h).ok());
  ASSERT_TRUE(ValidateTree(t->h4).ok());
  ASSERT_TRUE(ValidateTree(t->pr).ok());
  ASSERT_TRUE(ValidateTree(t->tgs).ok());
}

TEST(WorstCaseTest, Theorem3GridForcesHeuristicsToVisitAllLeaves) {
  MemoryBlockDevice dev(512);
  const size_t b = NodeCapacity<2>(512);  // 13
  const size_t columns = 512;
  auto data = workload::MakeWorstCaseGrid(columns, b);
  const size_t n = data.size();
  WorkEnv env{&dev, 2u << 20};
  BuiltTrees trees(&dev);
  BuildAll(env, data, &trees);

  // A horizontal line query between point rows: T = 0 (§2.4 proof).
  double y = 6.0 / static_cast<double>(b) - 0.5 / static_cast<double>(n);
  Rect2 line = MakeRect(-1, y, static_cast<double>(columns) + 1, y);

  auto leaves = [&](const RTree<2>& tree) {
    QueryStats qs = tree.Query(line, [](const Record2&) {});
    EXPECT_EQ(qs.results, 0u);
    return qs.leaves_visited;
  };
  uint64_t h = leaves(trees.h);
  uint64_t h4 = leaves(trees.h4);
  uint64_t tgs = leaves(trees.tgs);
  uint64_t pr = leaves(trees.pr);
  uint64_t total_leaves = trees.pr.ComputeStats().num_leaves;

  // Theorem 3: H, H4 and TGS visit Θ(N/B) leaves (the Hilbert curve and
  // TGS both isolate the columns).
  EXPECT_GE(h, total_leaves / 2) << "H should visit ~all leaves";
  EXPECT_GE(tgs, total_leaves / 2) << "TGS should visit ~all leaves";
  EXPECT_GE(h4, total_leaves / 4) << "H4 should visit many leaves";
  // Theorem 1: the PR-tree stays near sqrt(N/B).
  double bound = std::sqrt(static_cast<double>(n) / b);
  EXPECT_LE(pr, static_cast<uint64_t>(12 * bound) + 12);
  EXPECT_LT(8 * pr, h) << "PR-tree should beat H by a wide margin";
}

TEST(WorstCaseTest, TgsSplitsWorstCaseGridIntoColumns) {
  // §2.4's TGS argument: the greedy split always prefers vertical cuts on
  // the shifted grid, so every leaf ends up spanning a single column
  // (x-extent 0 for point columns).
  MemoryBlockDevice dev(512);
  const size_t b = NodeCapacity<2>(512);
  auto data = workload::MakeWorstCaseGrid(169, b);  // 13^2 columns
  WorkEnv env{&dev, 2u << 20};
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadTgs<2>(env, data, &tree));

  std::vector<std::byte> buf(512);
  std::vector<PageId> stack{tree.root()};
  size_t single_column_leaves = 0, leaves = 0;
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    ASSERT_TRUE(dev.Read(page, buf.data()).ok());
    NodeView<2> node(buf.data(), 512);
    if (!node.is_leaf()) {
      for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
      continue;
    }
    ++leaves;
    if (node.ComputeMbr().Extent(0) == 0.0) ++single_column_leaves;
  }
  EXPECT_EQ(single_column_leaves, leaves);
}

TEST(WorstCaseTest, ClusterDatasetStabQueries) {
  // Scaled-down Table 1: CLUSTER data with thin horizontal stabs through
  // all clusters.  Expected shape: PR visits a small fraction of the tree;
  // H, H4 and TGS visit large fractions (paper: 37 %, 94 %, 25 % vs 1.2 %).
  MemoryBlockDevice dev(4096);
  auto data = workload::MakeCluster(1000, 200, 7);  // 200k points
  WorkEnv env{&dev, 2u << 20};
  BuiltTrees trees(&dev);
  BuildAll(env, data, &trees);

  Rect2 extent = trees.pr.Mbr();
  auto queries = workload::MakeHorizontalStabQueries(
      extent, /*height=*/1e-7, /*band=*/0.9, /*count=*/20, 11);

  auto frac_visited = [&](const RTree<2>& tree) {
    uint64_t total = 0;
    uint64_t num_leaves = tree.ComputeStats().num_leaves;
    for (const auto& q : queries) {
      total += tree.Query(q, [](const Record2&) {}).leaves_visited;
    }
    return static_cast<double>(total) /
           (static_cast<double>(num_leaves) * queries.size());
  };

  double pr = frac_visited(trees.pr);
  double h = frac_visited(trees.h);
  double h4 = frac_visited(trees.h4);
  double tgs = frac_visited(trees.tgs);

  // At paper scale (10M points) the gaps are >10x; at this 200k-point
  // scale PR's sqrt(N/B) term is a larger share of a much smaller tree,
  // so assert the ordering with conservative margins.
  EXPECT_LT(pr, 0.10) << "pr=" << pr;
  EXPECT_GT(h, 2 * pr) << "h=" << h << " pr=" << pr;
  EXPECT_GT(h4, 2 * pr) << "h4=" << h4 << " pr=" << pr;
  EXPECT_GT(tgs, 1.2 * pr) << "tgs=" << tgs << " pr=" << pr;
}

TEST(WorstCaseTest, BitReverse) {
  EXPECT_EQ(workload::BitReverse(0b000, 3), 0b000u);
  EXPECT_EQ(workload::BitReverse(0b001, 3), 0b100u);
  EXPECT_EQ(workload::BitReverse(0b011, 3), 0b110u);
  EXPECT_EQ(workload::BitReverse(0b110, 3), 0b011u);
  EXPECT_EQ(workload::BitReverse(1, 10), 512u);
}

}  // namespace
}  // namespace prtree
