// FileBlockDevice: superblock round-trips, free-list reuse across reopen,
// failure paths (short reads, corruption), I/O-accounting parity with the
// in-memory backend, and the flagship guarantee of the multi-device I/O
// layer — an 8-thread file-backed bulk load is byte-identical to a serial
// one even after closing and reopening the device file.

#include "io/file_block_device.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "rtree/bulk_loader.h"
#include "rtree/persist.h"
#include "rtree/validate.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace prtree {
namespace {

using testing_util::RandomWindow;
using testing_util::SortedIds;

class FileBlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Test-name + pid qualified: ctest runs each TEST as its own process,
    // often concurrently, so an address-based name could collide.
    path_ = ::testing::TempDir() + "/prtree_device_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "." + std::to_string(static_cast<long>(getpid())) + ".dev";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<FileBlockDevice> Create(size_t block_size = 512) {
    FileDeviceOptions opts;
    opts.block_size = block_size;
    opts.truncate = true;
    std::unique_ptr<FileBlockDevice> dev;
    AbortIfError(FileBlockDevice::Open(path_, opts, &dev));
    return dev;
  }
  std::unique_ptr<FileBlockDevice> Reopen(size_t expect_block_size = 0) {
    FileDeviceOptions opts;
    opts.block_size = expect_block_size;  // 0 = accept the file's
    std::unique_ptr<FileBlockDevice> dev;
    AbortIfError(FileBlockDevice::Open(path_, opts, &dev));
    return dev;
  }

  std::string path_;
};

TEST_F(FileBlockDeviceTest, AllocateReadWriteAndCounters) {
  auto dev = Create(512);
  PageId p = dev->Allocate();
  std::vector<std::byte> w(512), r(512);
  std::memset(w.data(), 0xAB, 512);
  ASSERT_TRUE(dev->Write(p, w.data()).ok());
  ASSERT_TRUE(dev->Read(p, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), 512), 0);
  // Client I/Os only: the superblock and free-list traffic is not charged.
  EXPECT_EQ(dev->stats().reads, 1u);
  EXPECT_EQ(dev->stats().writes, 1u);
}

TEST_F(FileBlockDeviceTest, FreshAndReusedBlocksAreZeroed) {
  auto dev = Create(512);
  PageId p = dev->Allocate();
  std::vector<std::byte> buf(512);
  ASSERT_TRUE(dev->Read(p, buf.data()).ok());
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
  std::memset(buf.data(), 0xFF, 512);
  ASSERT_TRUE(dev->Write(p, buf.data()).ok());
  dev->Free(p);
  PageId q = dev->Allocate();  // reuses p
  EXPECT_EQ(q, p);
  ASSERT_TRUE(dev->Read(q, buf.data()).ok());
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FileBlockDeviceTest, ReadOfUnallocatedOrFreedPageFails) {
  auto dev = Create(512);
  std::vector<std::byte> buf(512);
  EXPECT_FALSE(dev->Read(17, buf.data()).ok());
  PageId p = dev->Allocate();
  dev->Free(p);
  EXPECT_FALSE(dev->Read(p, buf.data()).ok());
  EXPECT_FALSE(dev->Write(p, buf.data()).ok());
}

TEST_F(FileBlockDeviceTest, InjectedFaultSurfacesAsIoError) {
  auto dev = Create(512);
  PageId p = dev->Allocate();
  std::vector<std::byte> buf(512);
  dev->InjectReadFault(p);
  Status st = dev->Read(p, buf.data());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  dev->ClearFaults();
  EXPECT_TRUE(dev->Read(p, buf.data()).ok());
}

TEST_F(FileBlockDeviceTest, AllocationSequenceMatchesMemoryBackend) {
  // The determinism contract is backend-independent: the same Allocate/Free
  // call sequence must hand out the same page ids on both devices.
  auto fdev = Create(512);
  MemoryBlockDevice mdev(512);
  std::vector<PageId> fp, mp;
  for (int i = 0; i < 10; ++i) {
    fp.push_back(fdev->Allocate());
    mp.push_back(mdev.Allocate());
  }
  EXPECT_EQ(fp, mp);
  fdev->Free(fp[3]);
  mdev.Free(mp[3]);
  fdev->Free(fp[7]);
  mdev.Free(mp[7]);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fdev->Allocate(), mdev.Allocate());
  }
  EXPECT_EQ(fdev->num_allocated(), mdev.num_allocated());
  EXPECT_EQ(fdev->peak_allocated(), mdev.peak_allocated());
}

TEST_F(FileBlockDeviceTest, SuperblockAndFreeListSurviveReopen) {
  std::vector<std::byte> content(512);
  PageId a, b, c;
  {
    auto dev = Create(512);
    a = dev->Allocate();
    b = dev->Allocate();
    c = dev->Allocate();
    std::memset(content.data(), 0x5C, 512);
    ASSERT_TRUE(dev->Write(a, content.data()).ok());
    ASSERT_TRUE(dev->Write(c, content.data()).ok());
    dev->Free(b);
    ASSERT_TRUE(dev->Sync().ok());
  }  // destructor closes the file
  {
    auto dev = Reopen(512);
    EXPECT_EQ(dev->num_allocated(), 2u);
    EXPECT_EQ(dev->peak_allocated(), 3u);
    // Data pages intact.
    std::vector<std::byte> buf(512);
    ASSERT_TRUE(dev->Read(a, buf.data()).ok());
    EXPECT_EQ(std::memcmp(buf.data(), content.data(), 512), 0);
    ASSERT_TRUE(dev->Read(c, buf.data()).ok());
    EXPECT_EQ(std::memcmp(buf.data(), content.data(), 512), 0);
    // The freed page is not readable and is the next one reused.
    EXPECT_FALSE(dev->Read(b, buf.data()).ok());
    EXPECT_EQ(dev->Allocate(), b);
  }
}

TEST_F(FileBlockDeviceTest, LifoFreeOrderSurvivesReopen) {
  std::vector<PageId> pages;
  {
    auto dev = Create(512);
    for (int i = 0; i < 6; ++i) pages.push_back(dev->Allocate());
    // Free in a scrambled order; LIFO reuse must replay it exactly.
    dev->Free(pages[1]);
    dev->Free(pages[4]);
    dev->Free(pages[2]);
    ASSERT_TRUE(dev->Sync().ok());
  }
  auto dev = Reopen();
  EXPECT_EQ(dev->Allocate(), pages[2]);
  EXPECT_EQ(dev->Allocate(), pages[4]);
  EXPECT_EQ(dev->Allocate(), pages[1]);
  EXPECT_EQ(dev->num_allocated(), 6u);
}

TEST_F(FileBlockDeviceTest, UserMetaRoundTrip) {
  const char msg[] = "prtree user metadata";
  {
    auto dev = Create(512);
    ASSERT_TRUE(dev->SetUserMeta(msg, sizeof(msg)).ok());
    ASSERT_TRUE(dev->Sync().ok());
  }
  auto dev = Reopen();
  char buf[64] = {};
  EXPECT_EQ(dev->GetUserMeta(buf, sizeof(buf)), sizeof(msg));
  EXPECT_STREQ(buf, msg);
  // Oversized metadata is rejected.
  std::vector<char> big(FileBlockDevice::kUserMetaCapacity + 1);
  EXPECT_FALSE(dev->SetUserMeta(big.data(), big.size()).ok());
}

TEST_F(FileBlockDeviceTest, ShortReadSurfacesAsIoError) {
  // Truncate the file out from under a live device: the read of the
  // vanished page must fail with IoError, not return garbage.
  auto dev = Create(512);
  dev->Allocate();
  PageId last = dev->Allocate();
  std::vector<std::byte> buf(512, std::byte{0x11});
  ASSERT_TRUE(dev->Write(last, buf.data()).ok());
  ASSERT_TRUE(dev->Sync().ok());
  ASSERT_EQ(truncate(path_.c_str(), 2 * 512), 0);
  Status st = dev->Read(last, buf.data());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST_F(FileBlockDeviceTest, ReopenOfTruncatedFileFailsAtOpen) {
  // A truncated device file (e.g. a partial copy) is rejected up front:
  // the superblock claims more pages than the file holds.
  {
    auto dev = Create(512);
    dev->Allocate();
    dev->Allocate();
    ASSERT_TRUE(dev->Sync().ok());
  }
  ASSERT_EQ(truncate(path_.c_str(), 2 * 512), 0);
  std::unique_ptr<FileBlockDevice> dev;
  Status st = FileBlockDevice::Open(path_, FileDeviceOptions{}, &dev);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST_F(FileBlockDeviceTest, RejectsForeignAndCorruptFiles) {
  // Not a device file at all.
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a block device", f);
    std::fclose(f);
  }
  std::unique_ptr<FileBlockDevice> dev;
  Status st = FileBlockDevice::Open(path_, FileDeviceOptions{}, &dev);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);

  // Valid file, wrong expected block size.
  { auto d = Create(512); ASSERT_TRUE(d->Sync().ok()); }
  FileDeviceOptions opts;
  opts.block_size = 4096;
  st = FileBlockDevice::Open(path_, opts, &dev);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  // Damaged superblock topology: free a page, sync, then point the
  // free-list head out of range.
  {
    auto d = Create(512);
    PageId p = d->Allocate();
    d->Allocate();
    d->Free(p);
    ASSERT_TRUE(d->Sync().ok());
  }
  constexpr long kFreeHeadOffset = 40;  // after magic..peak_allocated
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, kFreeHeadOffset, SEEK_SET);
    uint32_t junk = 0x7FFFFFFF;
    std::fwrite(&junk, sizeof(junk), 1, f);
    std::fclose(f);
  }
  st = FileBlockDevice::Open(path_, FileDeviceOptions{}, &dev);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);

  // A failed open must not rewrite the file: the damaged field (and the
  // rest of the on-disk state) stays diagnosable.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, kFreeHeadOffset, SEEK_SET);
    uint32_t head = 0;
    ASSERT_EQ(std::fread(&head, sizeof(head), 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(head, 0x7FFFFFFFu);
  }
}

TEST_F(FileBlockDeviceTest, BrokenFreeStampDegradesToLeakNotFailure) {
  // A missing free stamp is the signature of a crash after the superblock
  // write (the chained page was reused and zeroed post-Sync).  Recovery
  // must open the device, keep the walkable free-list prefix and leak the
  // rest as allocated — never refuse the file, never reuse the page.
  PageId p;
  {
    auto dev = Create(512);
    p = dev->Allocate();
    dev->Allocate();
    dev->Free(p);
    ASSERT_TRUE(dev->Sync().ok());
  }
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 512, SEEK_SET);  // the freed page's stamp
    uint32_t junk[2] = {0xDEADBEEF, 0xDEADBEEF};
    std::fwrite(junk, sizeof(junk), 1, f);
    std::fclose(f);
  }
  auto dev = Reopen();
  EXPECT_EQ(dev->num_allocated(), 2u);  // the chained page leaked as live
  EXPECT_NE(dev->Allocate(), p);        // and is never handed out again
}

TEST_F(FileBlockDeviceTest, MustExistRefusesToCreate) {
  FileDeviceOptions opts;
  opts.must_exist = true;
  std::unique_ptr<FileBlockDevice> dev;
  Status st = FileBlockDevice::Open(path_, opts, &dev);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  // No stray device file was left behind by the failed open.
  EXPECT_NE(::access(path_.c_str(), F_OK), 0);

  // truncate + must_exist would wipe the file before validation could
  // fail; the contradiction is rejected up front, file untouched.
  { auto d = Create(512); d->Allocate(); ASSERT_TRUE(d->Sync().ok()); }
  opts.truncate = true;
  st = FileBlockDevice::Open(path_, opts, &dev);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  FileDeviceOptions reopen_opts;
  reopen_opts.must_exist = true;
  std::unique_ptr<FileBlockDevice> back;
  ASSERT_TRUE(FileBlockDevice::Open(path_, reopen_opts, &back).ok());
  EXPECT_EQ(back->num_allocated(), 1u);
}

// Simulates crashes AFTER a Sync by snapshotting the device file while the
// live device keeps mutating: the copy holds the as-of-Sync superblock
// with post-Sync page contents — exactly what a kill -9 leaves behind.
class FileBlockDeviceCrashTest : public FileBlockDeviceTest {
 protected:
  std::string CrashImage() {
    std::string copy = path_ + ".crash";
    std::FILE* in = std::fopen(path_.c_str(), "rb");
    std::FILE* out = std::fopen(copy.c_str(), "wb");
    PRTREE_CHECK(in != nullptr && out != nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      PRTREE_CHECK(std::fwrite(buf, 1, n, out) == n);
    }
    std::fclose(in);
    std::fclose(out);
    return copy;
  }
};

TEST_F(FileBlockDeviceCrashTest, ReuseThenRefreeAfterSyncStillOpens) {
  // Sync records free chain [P0 -> P1]; afterwards both are reused and P0
  // is re-freed with a SHORTER chain.  The crash image's recorded chain
  // ends early (P0's stamp now says next=invalid): recovery keeps P0,
  // leaks P1, and never hands out a page that might hold data.
  auto dev = Create(512);
  PageId p0 = dev->Allocate();
  PageId p1 = dev->Allocate();
  dev->Allocate();  // p2 stays live
  dev->Free(p1);
  dev->Free(p0);
  ASSERT_TRUE(dev->Sync().ok());
  ASSERT_EQ(dev->Allocate(), p0);
  ASSERT_EQ(dev->Allocate(), p1);
  dev->Free(p0);
  std::string image = CrashImage();

  std::unique_ptr<FileBlockDevice> re;
  ASSERT_TRUE(FileBlockDevice::Open(image, FileDeviceOptions{}, &re).ok());
  EXPECT_EQ(re->num_allocated(), 2u);  // p1 leaked as live
  EXPECT_EQ(re->Allocate(), p0);       // the walkable prefix survives
  std::remove(image.c_str());
}

TEST_F(FileBlockDeviceCrashTest, ExtraFreesAfterSyncStillOpen) {
  // Sync records free chain [P1]; afterwards P1 is reused and two MORE
  // pages are freed, so the crash image's chain is longer than recorded.
  // Recovery takes exactly the recorded count and leaves the tail live.
  auto dev = Create(512);
  dev->Allocate();  // p0
  PageId p1 = dev->Allocate();
  PageId p2 = dev->Allocate();
  dev->Free(p1);
  ASSERT_TRUE(dev->Sync().ok());
  ASSERT_EQ(dev->Allocate(), p1);
  dev->Free(p2);
  dev->Free(p1);  // chain now p1 -> p2, longer than the recorded [p1]
  std::string image = CrashImage();

  std::unique_ptr<FileBlockDevice> re;
  ASSERT_TRUE(FileBlockDevice::Open(image, FileDeviceOptions{}, &re).ok());
  EXPECT_EQ(re->num_allocated(), 2u);  // p2's post-Sync free is ignored
  EXPECT_EQ(re->Allocate(), p1);
  std::remove(image.c_str());
}

TEST_F(FileBlockDeviceTest, DirectIoRequestDegradesGracefully) {
  // tmpfs (the usual TempDir) rejects O_DIRECT; either outcome is fine as
  // long as the device works and reports what was negotiated.
  FileDeviceOptions opts;
  opts.block_size = 4096;
  opts.truncate = true;
  opts.direct_io = true;
  std::unique_ptr<FileBlockDevice> dev;
  ASSERT_TRUE(FileBlockDevice::Open(path_, opts, &dev).ok());
  PageId p = dev->Allocate();
  std::vector<std::byte> w(4096, std::byte{0x42}), r(4096);
  ASSERT_TRUE(dev->Write(p, w.data()).ok());
  ASSERT_TRUE(dev->Read(p, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);
  ASSERT_TRUE(dev->Sync().ok());
}

// The acceptance bar for the multi-device layer: an 8-thread bulk load
// onto a file device produces, page for page, the bytes a serial build
// produces — and the guarantee survives closing and reopening the file.
TEST_F(FileBlockDeviceTest, ParallelFileBuildByteIdenticalToSerialAfterReopen) {
  auto data =
      workload::MakeTigerLike(20000, workload::TigerRegion::kWestern, 5);
  std::string path2 = path_ + ".parallel";

  auto build = [&](const std::string& path, int threads) {
    FileDeviceOptions fopts;
    fopts.block_size = 1024;
    fopts.truncate = true;
    std::unique_ptr<FileBlockDevice> dev;
    AbortIfError(FileBlockDevice::Open(path, fopts, &dev));
    RTree<2> tree(dev.get());
    BuildOptions opts;
    opts.memory_bytes = 2u << 20;
    opts.threads = threads;
    AbortIfError(
        MakeBulkLoader<2>(LoaderKind::kPrTree, opts)->Build(dev.get(), data,
                                                            &tree));
    AbortIfError(PersistTree(tree, dev.get()));
  };
  build(path_, 1);
  build(path2, 8);

  // Reopen both from disk alone and compare the full page space.
  std::unique_ptr<FileBlockDevice> serial, parallel;
  AbortIfError(FileBlockDevice::Open(path_, FileDeviceOptions{}, &serial));
  AbortIfError(FileBlockDevice::Open(path2, FileDeviceOptions{}, &parallel));
  ASSERT_EQ(serial->num_allocated(), parallel->num_allocated());
  ASSERT_EQ(serial->peak_allocated(), parallel->peak_allocated());

  RTree<2> ts(serial.get()), tp(parallel.get());
  AbortIfError(AttachTree(serial.get(), &ts));
  AbortIfError(AttachTree(parallel.get(), &tp));
  ASSERT_EQ(ts.root(), tp.root());
  ASSERT_EQ(ts.height(), tp.height());
  ASSERT_EQ(ts.size(), tp.size());
  ASSERT_TRUE(ValidateTree(tp).ok());

  std::vector<std::byte> ba(1024), bb(1024);
  std::vector<PageId> stack{ts.root()};
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    AbortIfError(serial->Read(page, ba.data()));
    AbortIfError(parallel->Read(page, bb.data()));
    ASSERT_EQ(std::memcmp(ba.data(), bb.data(), 1024), 0)
        << "node page " << page << " differs after reopen";
    ConstNodeView<2> node(ba.data(), 1024);
    if (!node.is_leaf()) {
      for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
    }
  }

  // And the reopened trees answer queries identically.
  Rng rng(23);
  for (int q = 0; q < 10; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.15);
    EXPECT_EQ(SortedIds(ts.QueryToVector(w)), SortedIds(tp.QueryToVector(w)));
  }
  std::remove(path2.c_str());
}

}  // namespace
}  // namespace prtree
