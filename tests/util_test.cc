#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace prtree {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::InvalidArgument("bad n");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad n");
  EXPECT_EQ(err.message(), "bad n");

  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
}

Status FailsThrough() {
  PRTREE_RETURN_NOT_OK(Status::IoError("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  Status st = FailsThrough();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "inner");
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter t({"name", "count"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "12345"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name      | count"), std::string::npos);
  EXPECT_NE(s.find("a         | 1"), std::string::npos);
  EXPECT_NE(s.find("long-name | 12345"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::FmtCount(0), "0");
  EXPECT_EQ(TablePrinter::FmtCount(999), "999");
  EXPECT_EQ(TablePrinter::FmtCount(1000), "1,000");
  EXPECT_EQ(TablePrinter::FmtCount(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::FmtPercent(97.25), "97.2%");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double first = t.Seconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  EXPECT_GE(t.Seconds(), first);
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}

TEST(HarnessTest, VariantNamesAndOrder) {
  using harness::Variant;
  EXPECT_STREQ(harness::VariantName(Variant::kPrTree), "PR");
  EXPECT_STREQ(harness::VariantName(Variant::kHilbert), "H");
  EXPECT_STREQ(harness::VariantName(Variant::kHilbert4D), "H4");
  EXPECT_STREQ(harness::VariantName(Variant::kTgs), "TGS");
  EXPECT_STREQ(harness::VariantName(Variant::kStr), "STR");
  auto variants = harness::PaperVariants();
  ASSERT_EQ(variants.size(), 4u);
  EXPECT_EQ(variants[0], Variant::kTgs);  // paper presentation order
}

TEST(HarnessTest, ScaledMemoryBudget) {
  // ~9:1 data:memory with a 2 MB floor.
  EXPECT_EQ(harness::ScaledMemoryBudget(100), 2u << 20);
  size_t big = harness::ScaledMemoryBudget(10'000'000);
  EXPECT_NEAR(static_cast<double>(big),
              10'000'000.0 * sizeof(Record2) / 9, 1.0);
}

TEST(HarnessTest, BuildAndMeasureEndToEnd) {
  auto data = workload::MakeSize(5000, 0.01, 3);
  harness::BuiltIndex index =
      harness::BuildIndex(harness::Variant::kPrTree, data);
  EXPECT_EQ(index.tree->size(), data.size());
  EXPECT_GT(index.build_io.Total(), 0u);
  EXPECT_GT(index.tree_stats.utilization, 0.95);

  auto queries = workload::MakeSquareQueries(index.tree->Mbr(), 0.01, 20, 7);
  harness::QueryMeasurement m = harness::MeasureQueries(index, queries);
  EXPECT_GT(m.avg_results, 0.0);
  EXPECT_GE(m.pct_of_optimal, 100.0);  // can never beat T/B
  EXPECT_GT(m.frac_tree_visited, 0.0);
  EXPECT_LT(m.frac_tree_visited, 1.0);
}

}  // namespace
}  // namespace prtree
