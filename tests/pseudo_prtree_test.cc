#include "core/pseudo_prtree.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rtree/validate.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

// Replays the chunk stream and checks the §2.1 structural definition.
template <int D>
void CheckChunkInvariants(const std::vector<Record<D>>& records,
                          const std::vector<PseudoLeafChunk>& chunks,
                          size_t b) {
  constexpr int K = 2 * D;
  // 1. Chunks tile [0, n) without gaps or overlaps (DFS order).
  size_t covered = 0;
  std::map<size_t, size_t> ranges;
  for (const auto& c : chunks) {
    EXPECT_GE(c.count, 1u);
    EXPECT_LE(c.count, b);
    EXPECT_TRUE(ranges.emplace(c.offset, c.count).second);
    covered += c.count;
  }
  EXPECT_EQ(covered, records.size());
  size_t expect_next = 0;
  for (const auto& [off, cnt] : ranges) {
    EXPECT_EQ(off, expect_next);
    expect_next = off + cnt;
  }

  // 2. Priority-leaf extremeness: every record of a priority chunk in
  // direction c is at least as extreme as every record later in the same
  // pseudo-node subtree.
  for (const auto& c : chunks) {
    if (c.dir == kPlainLeaf) continue;
    ASSERT_GE(c.dir, 0);
    ASSERT_LT(c.dir, K);
    ExtremeLess<D> less{c.dir};
    // Least extreme member of the chunk.
    const Record<D>* least = &records[c.offset];
    for (size_t i = c.offset; i < c.offset + c.count; ++i) {
      if (less(*least, records[i])) least = &records[i];
    }
    for (size_t i = c.offset + c.count; i < c.subtree_end; ++i) {
      EXPECT_FALSE(less(records[i], *least))
          << "record " << i << " more extreme than priority leaf dir "
          << c.dir;
    }
  }
}

class PseudoBuilderTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(PseudoBuilderTest, LeafChunksSatisfyDefinition) {
  auto [n, b] = GetParam();
  auto records = RandomRects<2>(n, 1000 + n + b);
  PseudoPRTreeBuilder<2> builder(b);
  std::vector<PseudoLeafChunk> chunks;
  builder.EmitLeaves(&records,
                     [&](const PseudoLeafChunk& c) { chunks.push_back(c); });
  CheckChunkInvariants<2>(records, chunks, b);

  // Packing: all leaves hold >= max(1, b/4) records (§2.1 footnote 2 and
  // the "slightly smaller priority leaves" remark), and utilisation is
  // near-optimal: at most one underfull leaf per kd split path.
  size_t full = 0;
  for (const auto& c : chunks) {
    if (chunks.size() > 1) {
      EXPECT_GE(4 * c.count + 3, b);  // count >= ceil(b/4) - rounding slack
    }
    if (c.count == b) ++full;
  }
  if (n >= 20 * b) {
    EXPECT_GE(static_cast<double>(full) / chunks.size(), 0.75);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PseudoBuilderTest,
    ::testing::Combine(::testing::Values(1, 7, 8, 9, 63, 64, 100, 1000,
                                         20000),
                       ::testing::Values(size_t{8}, size_t{113})));

TEST(PseudoBuilderTest, ThreeDimensionalChunks) {
  auto records = RandomRects<3>(5000, 77);
  PseudoPRTreeBuilder<3> builder(78);
  std::vector<PseudoLeafChunk> chunks;
  builder.EmitLeaves(&records,
                     [&](const PseudoLeafChunk& c) { chunks.push_back(c); });
  CheckChunkInvariants<3>(records, chunks, 78);
}

TEST(PseudoBuilderTest, NearFullUtilizationOnLargeInput) {
  auto records = RandomRects<2>(100000, 3);
  PseudoPRTreeBuilder<2> builder(113);
  size_t leaves = 0;
  builder.EmitLeaves(&records, [&](const PseudoLeafChunk& c) {
    (void)c;
    ++leaves;
  });
  // >= 99% utilisation, matching §3.3.
  double util = static_cast<double>(records.size()) /
                (static_cast<double>(leaves) * 113.0);
  EXPECT_GT(util, 0.99);
}

TEST(PseudoBuilderTest, DuplicateCoordinatesHandledByIdTieBreak) {
  // All rectangles identical: selection must still be deterministic and
  // tile the input exactly.
  std::vector<Record2> records(1000, Record2{MakeRect(0.4, 0.4, 0.6, 0.6), 0});
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].id = static_cast<DataId>(i);
  }
  PseudoPRTreeBuilder<2> builder(16);
  std::vector<PseudoLeafChunk> chunks;
  builder.EmitLeaves(&records,
                     [&](const PseudoLeafChunk& c) { chunks.push_back(c); });
  CheckChunkInvariants<2>(records, chunks, 16);
}

TEST(PseudoIndexTest, QueryableIndexMatchesBruteForce) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(5000, 11);
  auto copy = data;
  RTree<2> tree(&dev);
  BuildPseudoPRTreeIndex<2>(&copy, &tree);
  EXPECT_EQ(tree.size(), data.size());

  // Structure is not height-balanced; validate MBRs only.
  ValidateOptions opts;
  opts.check_balance = false;
  ASSERT_TRUE(ValidateTree(tree, opts).ok());

  Rng rng(13);
  for (int q = 0; q < 40; ++q) {
    Rect2 w = RandomWindow<2>(&rng, q % 2 ? 0.3 : 0.05);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
  }
}

TEST(PseudoIndexTest, InternalDegreeAtMostSix) {
  // §2.1: internal nodes have degree six (2D priority leaves + 2 subtrees).
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(30000, 17);
  RTree<2> tree(&dev);
  BuildPseudoPRTreeIndex<2>(&data, &tree);

  std::vector<std::byte> buf(4096);
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    ASSERT_TRUE(dev.Read(page, buf.data()).ok());
    NodeView<2> node(buf.data(), 4096);
    if (node.is_leaf()) continue;
    EXPECT_LE(node.count(), 6);
    EXPECT_GE(node.count(), 2);
    for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
  }
}

TEST(PseudoIndexTest, OccupiesLinearSpace) {
  // Lemma 1: O(N/B) blocks.
  MemoryBlockDevice dev(4096);
  size_t baseline = dev.num_allocated();
  auto data = RandomRects<2>(50000, 19);
  RTree<2> tree(&dev);
  BuildPseudoPRTreeIndex<2>(&data, &tree);
  size_t blocks = dev.num_allocated() - baseline;
  size_t min_leaves = (data.size() + 112) / 113;
  // Leaves plus internals: internals are at most ~1/4 of leaves (degree>=4
  // effective); allow 1.6x slack.
  EXPECT_LE(blocks, min_leaves * 8 / 5 + 4);
}

// Lemma 2 shape check on the pseudo-PR-tree itself: an empty-result line
// query over the §2.4 grid visits O(sqrt(N/B)) nodes.
TEST(PseudoIndexTest, EmptyQueryVisitsFewNodesOnWorstCaseGrid) {
  MemoryBlockDevice dev(512);  // B = 13
  const size_t b = NodeCapacity<2>(512);
  auto data = workload::MakeWorstCaseGrid(256, b);
  const size_t n = data.size();
  RTree<2> tree(&dev);
  BuildPseudoPRTreeIndex<2>(&data, &tree);

  // Horizontal line between rows (§2.4): no point has y in
  // (j/rows - 1/n, j/rows).
  double y = 6.0 / static_cast<double>(b) - 0.5 / static_cast<double>(n);
  Rect2 line = MakeRect(-1, y, 1e9, y);
  QueryStats qs = tree.Query(line, [](const Record2&) {});
  EXPECT_EQ(qs.results, 0u);
  double bound = std::sqrt(static_cast<double>(n) / static_cast<double>(b));
  EXPECT_LE(qs.nodes_visited, static_cast<uint64_t>(14 * bound) + 16)
      << "n=" << n << " sqrt(N/B)=" << bound;
}

}  // namespace
}  // namespace prtree
