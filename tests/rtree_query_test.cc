#include <gtest/gtest.h>

#include <vector>

#include "rtree/builder.h"
#include "rtree/rtree.h"
#include "rtree/validate.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

// Builds an (unoptimised) R-tree by packing records in input order; query
// correctness must hold for any packing.
template <int D>
RTree<D> PackInOrder(BlockDevice* dev, const std::vector<Record<D>>& data) {
  RTree<D> tree(dev);
  NodeWriter<D> writer(dev, 0);
  for (const auto& rec : data) writer.Add(rec.rect, rec.id);
  PackUpward(&tree, writer.Finish(), data.size());
  return tree;
}

TEST(RTreeQueryTest, EmptyTree) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  EXPECT_TRUE(tree.empty());
  auto res = tree.QueryToVector(MakeRect(0, 0, 1, 1));
  EXPECT_TRUE(res.empty());
  EXPECT_TRUE(tree.Mbr().IsEmpty());
}

TEST(RTreeQueryTest, PointQueryFindsExactRecord) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(500, 31);
  auto tree = PackInOrder(&dev, data);
  const auto& target = data[123];
  auto res = tree.QueryToVector(target.rect);
  bool found = false;
  for (const auto& r : res) {
    if (r.id == target.id && r.rect == target.rect) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RTreeQueryTest, WholeExtentReturnsEverything) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(2000, 37);
  auto tree = PackInOrder(&dev, data);
  Rect2 all = MakeRect(-1, -1, 2, 2);
  QueryStats qs = tree.Query(all, [](const Record2&) {});
  EXPECT_EQ(qs.results, 2000u);
  TreeStats ts = tree.ComputeStats();
  EXPECT_EQ(qs.leaves_visited, ts.num_leaves);
  EXPECT_EQ(qs.nodes_visited, ts.num_nodes);
}

TEST(RTreeQueryTest, DisjointWindowReturnsNothing) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(500, 41);
  auto tree = PackInOrder(&dev, data);
  auto res = tree.QueryToVector(MakeRect(5, 5, 6, 6));
  EXPECT_TRUE(res.empty());
}

class QueryCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(QueryCorrectnessTest, MatchesBruteForce) {
  auto [n, block_size, seed] = GetParam();
  MemoryBlockDevice dev(block_size);
  auto data = RandomRects<2>(n, seed);
  auto tree = PackInOrder(&dev, data);
  ASSERT_TRUE(ValidateTree(tree).ok());

  Rng rng(seed * 31 + 7);
  for (int q = 0; q < 50; ++q) {
    Rect2 w = RandomWindow<2>(&rng, q % 2 ? 0.3 : 0.05);
    auto got = SortedIds(tree.QueryToVector(w));
    auto expect = BruteForceQuery(data, w);
    EXPECT_EQ(got, expect) << "window " << w.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryCorrectnessTest,
    ::testing::Combine(::testing::Values(1, 50, 113, 114, 1000, 5000),
                       ::testing::Values(512, 4096),
                       ::testing::Values(1, 99)));

TEST(RTreeQueryTest, QueryThroughBufferPoolIsEquivalent) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(3000, 43);
  auto tree = PackInOrder(&dev, data);
  BufferPool pool(&dev, 1024);
  tree.CacheInternalNodes(&pool);

  Rng rng(17);
  for (int q = 0; q < 25; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    auto with_pool = SortedIds(tree.QueryToVector(w, &pool));
    auto without = SortedIds(tree.QueryToVector(w));
    EXPECT_EQ(with_pool, without);
  }
}

TEST(RTreeQueryTest, CachedInternalNodesMakeQueriesLeafOnly) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(3000, 47);
  auto tree = PackInOrder(&dev, data);
  BufferPool pool(&dev, 4096);
  tree.CacheInternalNodes(&pool);
  dev.ResetStats();
  pool.ResetCounters();

  Rect2 w = MakeRect(0.4, 0.4, 0.6, 0.6);
  QueryStats qs = tree.Query(w, [](const Record2&) {}, &pool);
  // §3.3: with internal nodes cached, device reads == leaves visited.
  EXPECT_EQ(dev.stats().reads, qs.leaves_visited);
  EXPECT_EQ(pool.hits(), qs.internal_visited);
}

TEST(RTreeQueryTest, ReadaheadNeverChangesAnswersOrQueryStats) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(3000, 49);
  auto tree = PackInOrder(&dev, data);
  TreeStats ts = tree.ComputeStats();

  // A pool too small for the tree, so eviction and staging both run.
  BufferPool scalar_pool(&dev, ts.num_nodes / 4 + 2, /*num_shards=*/1);
  BufferPool ahead_pool(&dev, ts.num_nodes / 4 + 2, /*num_shards=*/1);
  ahead_pool.set_readahead(true);

  Rng rng(19);
  for (int q = 0; q < 25; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    QueryStats scalar_stats, ahead_stats;
    std::vector<Record2> scalar_out, ahead_out;
    scalar_stats = tree.Query(
        w, [&](const Record2& r) { scalar_out.push_back(r); }, &scalar_pool);
    ahead_stats = tree.Query(
        w, [&](const Record2& r) { ahead_out.push_back(r); }, &ahead_pool);
    // The readahead contract: identical visits, identical results, in the
    // identical order (prefetch must not perturb the traversal at all).
    EXPECT_EQ(ahead_stats.nodes_visited, scalar_stats.nodes_visited);
    EXPECT_EQ(ahead_stats.internal_visited, scalar_stats.internal_visited);
    EXPECT_EQ(ahead_stats.leaves_visited, scalar_stats.leaves_visited);
    EXPECT_EQ(ahead_stats.results, scalar_stats.results);
    EXPECT_EQ(SortedIds(ahead_out), SortedIds(scalar_out));
  }
  // The speculative traffic exists and is charged to the prefetch counter.
  EXPECT_GT(ahead_pool.prefetch_staged(), 0u);
  EXPECT_GT(dev.stats().prefetch_reads, 0u);
}

TEST(RTreeQueryTest, StatsCountNodesByKind) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(2000, 53);
  auto tree = PackInOrder(&dev, data);
  QueryStats qs = tree.Query(MakeRect(-1, -1, 2, 2), [](const Record2&) {});
  EXPECT_EQ(qs.nodes_visited, qs.leaves_visited + qs.internal_visited);
  EXPECT_GT(qs.internal_visited, 0u);
}

TEST(RTreeQueryTest, ThreeDimensionalQueries) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<3>(2000, 59);
  RTree<3> tree(&dev);
  NodeWriter<3> writer(&dev, 0);
  for (const auto& rec : data) writer.Add(rec.rect, rec.id);
  PackUpward(&tree, writer.Finish(), data.size());
  ASSERT_TRUE(ValidateTree(tree).ok());

  Rng rng(61);
  for (int q = 0; q < 20; ++q) {
    Rect<3> w = RandomWindow<3>(&rng, 0.4);
    auto got = SortedIds(tree.QueryToVector(w));
    auto expect = BruteForceQuery(data, w);
    EXPECT_EQ(got, expect);
  }
}

TEST(RTreeQueryTest, FreeAllReleasesEveryBlock) {
  MemoryBlockDevice dev(512);
  size_t before = dev.num_allocated();
  auto data = RandomRects<2>(2000, 67);
  auto tree = PackInOrder(&dev, data);
  EXPECT_GT(dev.num_allocated(), before);
  tree.FreeAll();
  EXPECT_EQ(dev.num_allocated(), before);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(ValidateTest, DetectsCorruptedMbr) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(500, 71);
  auto tree = PackInOrder(&dev, data);
  ASSERT_GE(tree.height(), 1);
  // Corrupt the root: shrink the first child MBR so it no longer covers the
  // subtree.
  std::vector<std::byte> buf(4096);
  ASSERT_TRUE(dev.Read(tree.root(), buf.data()).ok());
  NodeView<2> root(buf.data(), buf.size());
  Rect2 r = root.GetRect(0);
  r.hi[0] = r.lo[0];  // collapse
  r.hi[1] = r.lo[1];
  root.SetEntry(0, r, root.GetId(0));
  ASSERT_TRUE(dev.Write(tree.root(), buf.data()).ok());
  Status st = ValidateTree(tree);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(ValidateTest, DetectsWrongRecordCount) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(100, 73);
  auto tree = PackInOrder(&dev, data);
  tree.set_size(99);
  EXPECT_FALSE(ValidateTree(tree).ok());
}

}  // namespace
}  // namespace prtree
