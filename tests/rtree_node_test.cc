#include "rtree/node.h"

#include <gtest/gtest.h>

#include <vector>

#include "rtree/builder.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

TEST(NodeLayoutTest, PaperRecordSizesAndFanout) {
  // §3.1: 36-byte records, 4 KB blocks, max fan-out 113.
  EXPECT_EQ(NodeEntrySize<2>(), 36u);
  EXPECT_EQ(NodeCapacity<2>(4096), 113u);
  // 3-D entries: 6 coordinates + id = 52 bytes.
  EXPECT_EQ(NodeEntrySize<3>(), 52u);
  EXPECT_EQ(NodeCapacity<3>(4096), 78u);
}

TEST(NodeViewTest, FormatAndHeaderFields) {
  std::vector<std::byte> buf(4096);
  NodeView<2> node(buf.data(), buf.size());
  EXPECT_FALSE(node.IsFormatted());
  node.Format(3);
  EXPECT_TRUE(node.IsFormatted());
  EXPECT_EQ(node.level(), 3);
  EXPECT_FALSE(node.is_leaf());
  EXPECT_EQ(node.count(), 0);
  node.Format(0);
  EXPECT_TRUE(node.is_leaf());
}

TEST(NodeViewTest, EntryRoundTrip) {
  std::vector<std::byte> buf(4096);
  NodeView<2> node(buf.data(), buf.size());
  node.Format(0);
  auto data = testing_util::RandomRects<2>(113, 7);
  for (const auto& rec : data) node.Append(rec.rect, rec.id);
  EXPECT_TRUE(node.full());
  ASSERT_EQ(node.count(), 113);
  for (int i = 0; i < 113; ++i) {
    EXPECT_EQ(node.GetRect(i), data[i].rect);
    EXPECT_EQ(node.GetId(i), data[i].id);
  }
}

TEST(NodeViewTest, SerializationSurvivesDeviceRoundTrip) {
  MemoryBlockDevice dev(4096);
  std::vector<std::byte> buf(4096);
  NodeView<2> node(buf.data(), buf.size());
  node.Format(2);
  auto data = testing_util::RandomRects<2>(50, 11);
  for (const auto& rec : data) node.Append(rec.rect, rec.id);
  PageId p = dev.Allocate();
  ASSERT_TRUE(dev.Write(p, buf.data()).ok());

  std::vector<std::byte> buf2(4096);
  ASSERT_TRUE(dev.Read(p, buf2.data()).ok());
  NodeView<2> node2(buf2.data(), buf2.size());
  EXPECT_TRUE(node2.IsFormatted());
  EXPECT_EQ(node2.level(), 2);
  ASSERT_EQ(node2.count(), 50);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(node2.GetRect(i), data[i].rect);
    EXPECT_EQ(node2.GetId(i), data[i].id);
  }
}

TEST(NodeViewTest, RemoveSwap) {
  std::vector<std::byte> buf(4096);
  NodeView<2> node(buf.data(), buf.size());
  node.Format(0);
  node.Append(MakeRect(0, 0, 1, 1), 10);
  node.Append(MakeRect(1, 1, 2, 2), 11);
  node.Append(MakeRect(2, 2, 3, 3), 12);
  node.RemoveSwap(0);  // last entry (id 12) moves into slot 0
  ASSERT_EQ(node.count(), 2);
  EXPECT_EQ(node.GetId(0), 12u);
  EXPECT_EQ(node.GetId(1), 11u);
  node.RemoveSwap(1);
  ASSERT_EQ(node.count(), 1);
  EXPECT_EQ(node.GetId(0), 12u);
}

TEST(NodeViewTest, ComputeMbr) {
  std::vector<std::byte> buf(4096);
  NodeView<2> node(buf.data(), buf.size());
  node.Format(0);
  EXPECT_TRUE(node.ComputeMbr().IsEmpty());
  node.Append(MakeRect(0.2, 0.3, 0.4, 0.5), 1);
  node.Append(MakeRect(0.1, 0.4, 0.3, 0.9), 2);
  EXPECT_EQ(node.ComputeMbr(), MakeRect(0.1, 0.3, 0.4, 0.9));
}

TEST(NodeViewTest, ThreeDimensionalEntries) {
  std::vector<std::byte> buf(4096);
  NodeView<3> node(buf.data(), buf.size());
  node.Format(0);
  auto data = testing_util::RandomRects<3>(78, 13);
  for (const auto& rec : data) node.Append(rec.rect, rec.id);
  EXPECT_TRUE(node.full());
  for (int i = 0; i < 78; ++i) {
    EXPECT_EQ(node.GetRect(i), data[i].rect);
  }
}

TEST(NodeWriterTest, PacksFullNodes) {
  MemoryBlockDevice dev(4096);
  NodeWriter<2> writer(&dev, /*level=*/0);
  auto data = testing_util::RandomRects<2>(300, 17);
  for (const auto& rec : data) writer.Add(rec.rect, rec.id);
  auto level = writer.Finish();
  // 300 records at 113/leaf -> 3 leaves (113, 113, 74).
  ASSERT_EQ(level.size(), 3u);
  std::vector<std::byte> buf(4096);
  size_t total = 0;
  for (const auto& e : level) {
    ASSERT_TRUE(dev.Read(e.page, buf.data()).ok());
    NodeView<2> node(buf.data(), buf.size());
    EXPECT_EQ(node.ComputeMbr(), e.mbr);
    EXPECT_TRUE(node.is_leaf());
    total += node.count();
  }
  EXPECT_EQ(total, 300u);
}

TEST(NodeWriterTest, RespectsTargetFill) {
  MemoryBlockDevice dev(4096);
  NodeWriter<2> writer(&dev, /*level=*/1, /*target_fill=*/10);
  auto data = testing_util::RandomRects<2>(25, 19);
  for (const auto& rec : data) writer.Add(rec.rect, rec.id);
  auto level = writer.Finish();
  ASSERT_EQ(level.size(), 3u);  // 10 + 10 + 5
}

TEST(PackUpwardTest, BuildsBalancedTreeAndRoot) {
  MemoryBlockDevice dev(512);  // capacity (512-16)/36 = 13 for D=2
  EXPECT_EQ(NodeCapacity<2>(512), 13u);
  RTree<2> tree(&dev);
  auto data = testing_util::RandomRects<2>(1000, 23);
  NodeWriter<2> writer(&dev, 0);
  for (const auto& rec : data) writer.Add(rec.rect, rec.id);
  PackUpward(&tree, writer.Finish(), data.size());
  EXPECT_FALSE(tree.empty());
  EXPECT_EQ(tree.size(), 1000u);
  // 1000/13 = 77 leaves; 77/13 = 6; 6/13 = 1 root -> height 2.
  EXPECT_EQ(tree.height(), 2);
  TreeStats ts = tree.ComputeStats();
  EXPECT_EQ(ts.num_entries, 1000u);
  EXPECT_EQ(ts.nodes_per_level[0], 77u);
  EXPECT_GT(ts.utilization, 0.9);
}

TEST(PackUpwardTest, SingleLeafTree) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  auto data = testing_util::RandomRects<2>(5, 29);
  NodeWriter<2> writer(&dev, 0);
  for (const auto& rec : data) writer.Add(rec.rect, rec.id);
  PackUpward(&tree, writer.Finish(), data.size());
  EXPECT_EQ(tree.height(), 0);
  EXPECT_EQ(tree.size(), 5u);
}

}  // namespace
}  // namespace prtree
