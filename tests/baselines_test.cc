#include <gtest/gtest.h>

#include "baselines/hilbert_rtree.h"
#include "baselines/str_rtree.h"
#include "baselines/tgs_rtree.h"
#include "rtree/validate.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

enum class Loader { kHilbert, kHilbert4D, kStr, kTgs };

const char* LoaderName(Loader l) {
  switch (l) {
    case Loader::kHilbert:
      return "H";
    case Loader::kHilbert4D:
      return "H4";
    case Loader::kStr:
      return "STR";
    case Loader::kTgs:
      return "TGS";
  }
  return "?";
}

Status RunLoader(Loader l, WorkEnv env, const std::vector<Record2>& data,
                 RTree<2>* tree) {
  switch (l) {
    case Loader::kHilbert:
      return BulkLoadHilbert(env, data, tree);
    case Loader::kHilbert4D:
      return BulkLoadHilbert4D<2>(env, data, tree);
    case Loader::kStr:
      return BulkLoadStr<2>(env, data, tree);
    case Loader::kTgs:
      return BulkLoadTgs<2>(env, data, tree);
  }
  return Status::InvalidArgument("unknown loader");
}

class BaselineLoaderTest
    : public ::testing::TestWithParam<std::tuple<Loader, size_t, size_t>> {};

TEST_P(BaselineLoaderTest, ValidPackedTreeAndExactQueries) {
  auto [loader, n, block_size] = GetParam();
  MemoryBlockDevice dev(block_size);
  WorkEnv env{&dev, 4u << 20};
  auto data = RandomRects<2>(n, 100 + n);
  RTree<2> tree(&dev);
  ASSERT_TRUE(RunLoader(loader, env, data, &tree).ok()) << LoaderName(loader);

  ASSERT_TRUE(ValidateTree(tree).ok()) << LoaderName(loader);
  EXPECT_EQ(tree.size(), n);

  auto dumped = DumpRecords(tree);
  auto expect = data;
  CanonicalSort(&dumped);
  CanonicalSort(&expect);
  EXPECT_TRUE(dumped == expect) << LoaderName(loader);

  Rng rng(n * 3 + 1);
  for (int q = 0; q < 25; ++q) {
    Rect2 w = RandomWindow<2>(&rng, q % 2 ? 0.3 : 0.05);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w))
        << LoaderName(loader);
  }

  if (n >= 5000) {
    EXPECT_GT(tree.ComputeStats().utilization, 0.95) << LoaderName(loader);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineLoaderTest,
    ::testing::Combine(::testing::Values(Loader::kHilbert, Loader::kHilbert4D,
                                         Loader::kStr, Loader::kTgs),
                       ::testing::Values(1, 113, 1000, 8000),
                       ::testing::Values(size_t{512}, size_t{4096})));

TEST(BaselineLoaderTest, EmptyInputs) {
  MemoryBlockDevice dev(4096);
  WorkEnv env{&dev, 1u << 20};
  std::vector<Record2> empty;
  for (Loader l : {Loader::kHilbert, Loader::kHilbert4D, Loader::kStr,
                   Loader::kTgs}) {
    RTree<2> tree(&dev);
    ASSERT_TRUE(RunLoader(l, env, empty, &tree).ok());
    EXPECT_TRUE(tree.empty());
  }
}

TEST(BaselineLoaderTest, RejectNonEmptyTree) {
  MemoryBlockDevice dev(4096);
  WorkEnv env{&dev, 1u << 20};
  auto data = RandomRects<2>(50, 5);
  RTree<2> tree(&dev);
  ASSERT_TRUE(BulkLoadHilbert(env, data, &tree).ok());
  EXPECT_FALSE(BulkLoadHilbert(env, data, &tree).ok());
  EXPECT_FALSE(BulkLoadHilbert4D<2>(env, data, &tree).ok());
  EXPECT_FALSE(BulkLoadStr<2>(env, data, &tree).ok());
  EXPECT_FALSE(BulkLoadTgs<2>(env, data, &tree).ok());
}

TEST(HilbertLoaderTest, PacksLeavesInCurveOrder) {
  // Leaves of the packed Hilbert tree must contain records whose centre
  // Hilbert keys form non-overlapping consecutive key ranges.
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 4u << 20};
  auto data = RandomRects<2>(3000, 23);
  RTree<2> tree(&dev);
  ASSERT_TRUE(BulkLoadHilbert(env, data, &tree).ok());

  Rect2 extent = Rect2::Empty();
  for (const auto& r : data) extent.ExtendToCover(r.rect);

  // Collect per-leaf [min, max] key ranges.
  std::vector<std::pair<HilbertKey, HilbertKey>> ranges;
  std::vector<std::byte> buf(512);
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    ASSERT_TRUE(dev.Read(page, buf.data()).ok());
    NodeView<2> node(buf.data(), 512);
    if (!node.is_leaf()) {
      for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
      continue;
    }
    HilbertKey lo = HilbertCenterKey(node.GetRect(0), extent);
    HilbertKey hi = lo;
    for (int i = 1; i < node.count(); ++i) {
      HilbertKey k = HilbertCenterKey(node.GetRect(i), extent);
      if (k < lo) lo = k;
      if (hi < k) hi = k;
    }
    ranges.emplace_back(lo, hi);
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < ranges.size(); ++i) {
    // Strictly increasing, non-overlapping (keys can tie only at equal
    // centres, which RandomRects makes vanishingly unlikely).
    EXPECT_FALSE(ranges[i].first < ranges[i - 1].second)
        << "leaf key ranges overlap at " << i;
  }
}

TEST(TgsLoaderTest, SubtreesArePowersOfCapacity) {
  // García et al.'s rounding (§1.1 footnote 1): every child of the root
  // holds exactly B^h records except at most one remainder.
  MemoryBlockDevice dev(512);  // capacity 13
  WorkEnv env{&dev, 4u << 20};
  const size_t cap = NodeCapacity<2>(512);
  const size_t n = cap * cap * 3 + 7;  // forces height 2
  auto data = RandomRects<2>(n, 29);
  RTree<2> tree(&dev);
  ASSERT_TRUE(BulkLoadTgs<2>(env, data, &tree).ok());
  ASSERT_EQ(tree.height(), 2);

  std::vector<std::byte> buf(512);
  ASSERT_TRUE(dev.Read(tree.root(), buf.data()).ok());
  NodeView<2> root(buf.data(), 512);
  size_t full_children = 0;
  std::vector<size_t> sizes;
  for (int i = 0; i < root.count(); ++i) {
    // Count records in the subtree.
    size_t records = 0;
    std::vector<PageId> stack{root.GetId(i)};
    std::vector<std::byte> nb(512);
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      ASSERT_TRUE(dev.Read(page, nb.data()).ok());
      NodeView<2> node(nb.data(), 512);
      if (node.is_leaf()) {
        records += node.count();
      } else {
        for (int j = 0; j < node.count(); ++j) stack.push_back(node.GetId(j));
      }
    }
    sizes.push_back(records);
    if (records == cap * cap) ++full_children;
  }
  EXPECT_GE(full_children + 1, sizes.size());  // at most one remainder
}

TEST(StrLoaderTest, LeavesFormSlabs) {
  // After STR packing on points, the x-extents of leaves in different
  // slabs should rarely overlap; sanity: high utilisation + valid queries
  // is covered above, here check slab count is near sqrt(L).
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 4u << 20};
  auto data = testing_util::RandomPoints<2>(3380, 31);  // 13*13*20
  RTree<2> tree(&dev);
  ASSERT_TRUE(BulkLoadStr<2>(env, data, &tree).ok());
  TreeStats ts = tree.ComputeStats();
  EXPECT_EQ(ts.num_entries, data.size());
  EXPECT_GT(ts.utilization, 0.95);
}

TEST(BaselineLoaderTest, ThreeDimensionalVariants) {
  MemoryBlockDevice dev(4096);
  WorkEnv env{&dev, 4u << 20};
  auto data = RandomRects<3>(4000, 37);
  Rng rng(41);

  RTree<3> h4(&dev), str(&dev), tgs(&dev);
  ASSERT_TRUE(BulkLoadHilbert4D<3>(env, data, &h4).ok());
  ASSERT_TRUE(BulkLoadStr<3>(env, data, &str).ok());
  ASSERT_TRUE(BulkLoadTgs<3>(env, data, &tgs).ok());
  for (RTree<3>* tree : {&h4, &str, &tgs}) {
    ASSERT_TRUE(ValidateTree(*tree).ok());
    for (int q = 0; q < 10; ++q) {
      Rect<3> w = RandomWindow<3>(&rng, 0.3);
      EXPECT_EQ(SortedIds(tree->QueryToVector(w)),
                BruteForceQuery(data, w));
    }
  }
}

TEST(BaselineLoaderTest, BuildCostOrdering) {
  // Figure 9's qualitative ordering: H/H4 build with fewer I/Os than PR
  // would use (checked in bench), and TGS uses the most by a wide margin.
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(30000, 43);

  auto measure = [&](Loader l) {
    RTree<2> tree(&dev);
    WorkEnv env{&dev, 1u << 20};
    dev.ResetStats();
    AbortIfError(RunLoader(l, env, data, &tree));
    uint64_t io = dev.stats().Total();
    tree.FreeAll();
    return io;
  };
  uint64_t h = measure(Loader::kHilbert);
  uint64_t tgs = measure(Loader::kTgs);
  EXPECT_GT(tgs, 2 * h);
}

}  // namespace
}  // namespace prtree
