#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "io/block_device.h"
#include "io/buffer_pool.h"
#include "io/stream.h"

namespace prtree {
namespace {

TEST(BlockDeviceTest, AllocateReadWrite) {
  MemoryBlockDevice dev(512);
  PageId p = dev.Allocate();
  std::vector<std::byte> w(512), r(512);
  std::memset(w.data(), 0xAB, 512);
  ASSERT_TRUE(dev.Write(p, w.data()).ok());
  ASSERT_TRUE(dev.Read(p, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), 512), 0);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
}

TEST(BlockDeviceTest, FreshBlocksAreZeroed) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  std::vector<std::byte> w(256);
  std::memset(w.data(), 0xFF, 256);
  ASSERT_TRUE(dev.Write(p, w.data()).ok());
  dev.Free(p);
  PageId q = dev.Allocate();  // reuses p
  EXPECT_EQ(q, p);
  std::vector<std::byte> r(256);
  ASSERT_TRUE(dev.Read(q, r.data()).ok());
  for (auto b : r) EXPECT_EQ(b, std::byte{0});
}

TEST(BlockDeviceTest, FreeListReuseAndPeakAccounting) {
  MemoryBlockDevice dev(256);
  PageId a = dev.Allocate();
  PageId b = dev.Allocate();
  EXPECT_EQ(dev.num_allocated(), 2u);
  dev.Free(a);
  EXPECT_EQ(dev.num_allocated(), 1u);
  PageId c = dev.Allocate();
  EXPECT_EQ(c, a);  // reused
  EXPECT_EQ(dev.peak_allocated(), 2u);
  dev.Free(b);
  dev.Free(c);
  EXPECT_EQ(dev.num_allocated(), 0u);
  EXPECT_EQ(dev.peak_allocated(), 2u);
}

TEST(BlockDeviceTest, ReadOfUnallocatedPageFails) {
  MemoryBlockDevice dev(256);
  std::vector<std::byte> buf(256);
  EXPECT_FALSE(dev.Read(17, buf.data()).ok());
  PageId p = dev.Allocate();
  dev.Free(p);
  EXPECT_FALSE(dev.Read(p, buf.data()).ok());
  EXPECT_FALSE(dev.Write(p, buf.data()).ok());
}

TEST(BlockDeviceTest, InjectedFaultSurfacesAsIoError) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  std::vector<std::byte> buf(256);
  dev.InjectReadFault(p);
  Status st = dev.Read(p, buf.data());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  dev.ClearFaults();
  EXPECT_TRUE(dev.Read(p, buf.data()).ok());
}

TEST(BufferPoolTest, HitsAvoidDeviceReads) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  BufferPool pool(&dev, 4);
  {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(p, &g).ok());
  }
  uint64_t reads_after_miss = dev.stats().reads;
  for (int i = 0; i < 10; ++i) {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(p, &g).ok());
    EXPECT_EQ(g.page(), p);
  }
  EXPECT_EQ(dev.stats().reads, reads_after_miss);  // all hits
  EXPECT_EQ(pool.hits(), 10u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  MemoryBlockDevice dev(256);
  std::vector<PageId> pages;
  for (int i = 0; i < 3; ++i) pages.push_back(dev.Allocate());
  // One shard: a single deterministic LRU over all three pages.
  BufferPool pool(&dev, 2, /*num_shards=*/1);
  auto touch = [&](PageId p) {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(p, &g).ok());  // guard drops at end of scope
  };
  touch(pages[0]);  // miss
  touch(pages[1]);  // miss
  touch(pages[0]);  // hit; 0 is now MRU
  touch(pages[2]);  // miss; evicts 1
  touch(pages[0]);  // still cached
  EXPECT_EQ(pool.hits(), 2u);
  touch(pages[1]);  // miss again
  EXPECT_EQ(pool.misses(), 4u);
}

TEST(BufferPoolTest, ZeroCapacityStillPinsCorrectly) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  std::vector<std::byte> content(256);
  std::memset(content.data(), 0x3C, 256);
  ASSERT_TRUE(dev.Write(p, content.data()).ok());
  BufferPool pool(&dev, 0);
  // Every pin is a device read (no caching), but the guard still holds a
  // valid pinned copy for as long as the caller keeps it.
  PageGuard keep;
  ASSERT_TRUE(pool.Pin(p, &keep).ok());
  for (int i = 0; i < 2; ++i) {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(p, &g).ok());
    EXPECT_EQ(g.data()[0], std::byte{0x3C});
  }
  EXPECT_EQ(pool.misses(), 3u);
  EXPECT_EQ(dev.stats().reads, 3u);
  EXPECT_EQ(pool.size(), 0u);  // nothing cached
  EXPECT_EQ(keep.data()[0], std::byte{0x3C});  // long-lived pin still valid
}

TEST(BufferPoolTest, InvalidateDropsStaleData) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  BufferPool pool(&dev, 2);
  {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(p, &g).ok());
  }
  std::vector<std::byte> buf(256);
  std::memset(buf.data(), 0x5A, 256);
  ASSERT_TRUE(dev.Write(p, buf.data()).ok());
  pool.Invalidate(p);
  PageGuard g;
  ASSERT_TRUE(pool.Pin(p, &g).ok());
  EXPECT_EQ(g.data()[0], std::byte{0x5A});
}

TEST(BlockDeviceTest, ReadBatchMatchesScalarReadsAndAccounting) {
  MemoryBlockDevice dev(256);
  std::vector<PageId> pages;
  std::vector<std::byte> block(256);
  for (int i = 0; i < 4; ++i) {
    pages.push_back(dev.Allocate());
    std::memset(block.data(), 0x40 + i, 256);
    ASSERT_TRUE(dev.Write(pages.back(), block.data()).ok());
  }
  dev.ResetStats();

  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(256));
  std::vector<BlockReadRequest> reqs(4);
  for (int i = 0; i < 4; ++i) {
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev.ReadBatch(reqs.data(), reqs.size()).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bufs[i][0], static_cast<std::byte>(0x40 + i));
  }
  EXPECT_EQ(dev.stats().reads, 4u);  // one demand read per request

  // The prefetch kind moves the same bytes but charges the other counter.
  dev.ResetStats();
  ASSERT_TRUE(
      dev.ReadBatch(reqs.data(), reqs.size(), ReadKind::kPrefetch).ok());
  EXPECT_EQ(dev.stats().reads, 0u);
  EXPECT_EQ(dev.stats().prefetch_reads, 4u);
  EXPECT_EQ(dev.stats().Total(), 0u);  // the paper's metric: demand only
  EXPECT_EQ(dev.stats().TotalTransfers(), 4u);

  // Per-request failure: the rest of the batch is still served.
  dev.InjectReadFault(pages[1]);
  dev.ResetStats();
  Status st = dev.ReadBatch(reqs.data(), reqs.size());
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(reqs[1].status.ok());
  EXPECT_TRUE(reqs[0].status.ok());
  EXPECT_TRUE(reqs[3].status.ok());
  EXPECT_EQ(dev.stats().reads, 3u);  // only successes are charged
}

TEST(BufferPoolTest, PrefetchStagesUnpinnedFramesAndPinsBecomeHits) {
  MemoryBlockDevice dev(256);
  std::vector<PageId> pages;
  std::vector<std::byte> block(256);
  for (int i = 0; i < 3; ++i) {
    pages.push_back(dev.Allocate());
    std::memset(block.data(), 0x60 + i, 256);
    ASSERT_TRUE(dev.Write(pages.back(), block.data()).ok());
  }
  BufferPool pool(&dev, 4, /*num_shards=*/1);
  dev.ResetStats();

  EXPECT_EQ(pool.Prefetch(std::span<const PageId>(pages)), 3u);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.pinned(), 0u);  // staged frames are unpinned
  EXPECT_EQ(pool.prefetch_staged(), 3u);
  EXPECT_EQ(dev.stats().reads, 0u);  // charged as prefetch, not demand
  EXPECT_EQ(dev.stats().prefetch_reads, 3u);

  // Pinning a staged page is a hit — no demand read — and counts the
  // prefetch as useful.
  for (int i = 0; i < 3; ++i) {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(pages[i], &g).ok());
    EXPECT_EQ(g.data()[0], static_cast<std::byte>(0x60 + i));
  }
  EXPECT_EQ(pool.hits(), 3u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_EQ(dev.stats().reads, 0u);
  EXPECT_EQ(pool.prefetch_useful(), 3u);

  // Re-prefetching cached pages is a no-op (no extra transfers).
  EXPECT_EQ(pool.Prefetch(std::span<const PageId>(pages)), 0u);
  EXPECT_EQ(dev.stats().prefetch_reads, 3u);
}

TEST(BufferPoolTest, PrefetchRespectsCapacityAndPins) {
  MemoryBlockDevice dev(256);
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(dev.Allocate());
  BufferPool pool(&dev, 2, /*num_shards=*/1);

  // Both frames pinned: nothing is evictable, nothing can be staged — and
  // no device transfer may be issued for pages that provably have nowhere
  // to go (the kernel still gets an advisory PrefetchHint, which is free
  // on the memory backend).
  PageGuard g0, g1;
  ASSERT_TRUE(pool.Pin(pages[0], &g0).ok());
  ASSERT_TRUE(pool.Pin(pages[1], &g1).ok());
  dev.ResetStats();
  EXPECT_EQ(pool.Prefetch(std::span<const PageId>(pages).subspan(2)), 0u);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(dev.stats().prefetch_reads, 0u);  // planned nothing, read nothing

  // With the pins dropped, staging caps at capacity and evicts only LRU
  // unpinned frames.
  g0.Release();
  g1.Release();
  size_t staged = pool.Prefetch(std::span<const PageId>(pages).subspan(2));
  EXPECT_LE(staged, 2u);
  EXPECT_GE(staged, 1u);
  EXPECT_LE(pool.size(), 2u);
  EXPECT_EQ(pool.pinned(), 0u);

  // A capacity-0 pool never stages (there is nowhere to put a frame).
  BufferPool uncached(&dev, 0);
  EXPECT_EQ(uncached.Prefetch(std::span<const PageId>(pages)), 0u);
}

struct TestRec {
  uint64_t key;
  uint32_t payload;
};

TEST(StreamTest, RoundTripAndBlockCounting) {
  MemoryBlockDevice dev(256);  // 256/12... TestRec is 16 bytes padded -> 16/block
  Stream<TestRec> s(&dev);
  const size_t n = 1000;
  for (size_t i = 0; i < n; ++i) {
    s.Push(TestRec{i, static_cast<uint32_t>(i * 7)});
  }
  s.Flush();
  EXPECT_EQ(s.size(), n);
  EXPECT_EQ(s.num_blocks(), (n + s.records_per_block() - 1) /
                                s.records_per_block());
  std::vector<TestRec> all;
  s.ReadAll(&all);
  ASSERT_EQ(all.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(all[i].key, i);
    EXPECT_EQ(all[i].payload, i * 7);
  }
}

TEST(StreamTest, ReadRangeTouchesOnlyNeededBlocks) {
  MemoryBlockDevice dev(256);
  Stream<TestRec> s(&dev);
  for (size_t i = 0; i < 512; ++i) s.Push(TestRec{i, 0});
  s.Flush();
  size_t per_block = s.records_per_block();
  dev.ResetStats();
  std::vector<TestRec> out;
  s.ReadRange(0, per_block, &out);  // exactly one block
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(out.size(), per_block);
  dev.ResetStats();
  s.ReadRange(per_block - 1, 2, &out);  // straddles a boundary
  EXPECT_EQ(dev.stats().reads, 2u);
  EXPECT_EQ(out[0].key, per_block - 1);
  EXPECT_EQ(out[1].key, per_block);
}

TEST(StreamTest, SequentialReaderCostsOneReadPerBlock) {
  MemoryBlockDevice dev(256);
  Stream<TestRec> s(&dev);
  const size_t n = 333;
  for (size_t i = 0; i < n; ++i) s.Push(TestRec{i, 0});
  s.Flush();
  dev.ResetStats();
  Stream<TestRec>::Reader reader(&s);
  size_t count = 0;
  uint64_t expect = 0;
  while (!reader.Done()) {
    EXPECT_EQ(reader.Next().key, expect++);
    ++count;
  }
  EXPECT_EQ(count, n);
  EXPECT_EQ(dev.stats().reads, s.num_blocks());
}

TEST(StreamTest, ClearFreesBlocks) {
  MemoryBlockDevice dev(256);
  size_t before = dev.num_allocated();
  {
    Stream<TestRec> s(&dev);
    for (size_t i = 0; i < 100; ++i) s.Push(TestRec{i, 0});
    s.Flush();
    EXPECT_GT(dev.num_allocated(), before);
    s.Clear();
    EXPECT_EQ(dev.num_allocated(), before);
    // Stream is writable again after Clear.
    s.Push(TestRec{1, 1});
    s.Flush();
  }
  EXPECT_EQ(dev.num_allocated(), before);  // destructor frees
}

TEST(StreamTest, MoveTransfersOwnership) {
  MemoryBlockDevice dev(256);
  Stream<TestRec> a(&dev);
  for (size_t i = 0; i < 50; ++i) a.Push(TestRec{i, 0});
  a.Flush();
  Stream<TestRec> b = std::move(a);
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented reset
  std::vector<TestRec> out;
  b.ReadAll(&out);
  EXPECT_EQ(out.size(), 50u);
}

TEST(StreamTest, EmptyStream) {
  MemoryBlockDevice dev(256);
  Stream<TestRec> s(&dev);
  s.Flush();
  EXPECT_TRUE(s.empty());
  std::vector<TestRec> out;
  s.ReadAll(&out);
  EXPECT_TRUE(out.empty());
  Stream<TestRec>::Reader reader(&s);
  EXPECT_TRUE(reader.Done());
}

TEST(BlockDeviceTest, WriteBatchMatchesScalarWritesAndAccounting) {
  // The default (scalar-loop) WriteBatch on the memory backend: per-request
  // status, one demand write per success, one audit batch tick per call.
  MemoryBlockDevice dev(256);
  const size_t kPages = 5;
  std::vector<PageId> pages;
  for (size_t i = 0; i < kPages; ++i) pages.push_back(dev.Allocate());
  dev.ResetStats();

  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(256));
  std::vector<BlockWriteRequest> reqs(kPages);
  for (size_t i = 0; i < kPages; ++i) {
    std::memset(bufs[i].data(), 0x40 + static_cast<int>(i), 256);
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev.WriteBatch(reqs.data(), reqs.size()).ok());

  IoStats stats = dev.stats();
  EXPECT_EQ(stats.writes, kPages);
  EXPECT_EQ(stats.write_batches, 1u);
  // write_batches is audit-only: excluded from both totals.
  EXPECT_EQ(stats.Total(), kPages);
  EXPECT_EQ(stats.TotalTransfers(), kPages);

  std::vector<std::byte> r(256);
  for (size_t i = 0; i < kPages; ++i) {
    ASSERT_TRUE(dev.Read(pages[i], r.data()).ok());
    EXPECT_EQ(std::memcmp(r.data(), bufs[i].data(), 256), 0) << "page " << i;
  }
}

TEST(BlockDeviceTest, WriteBatchPartialFailuresMatchScalarWrites) {
  // An unallocated page and an injected write fault inside a batch fail
  // per-request — the rest of the batch lands, and the counters charge only
  // the successes, exactly like the same sequence of Write() calls.
  MemoryBlockDevice dev(256);
  PageId a = dev.Allocate();
  PageId b = dev.Allocate();
  PageId c = dev.Allocate();
  dev.InjectWriteFault(b);
  dev.ResetStats();

  std::vector<std::byte> buf(256);
  std::memset(buf.data(), 0x7E, 256);
  BlockWriteRequest reqs[4];
  reqs[0] = {a, buf.data(), Status::OK()};
  reqs[1] = {b, buf.data(), Status::OK()};         // injected fault
  reqs[2] = {PageId{999}, buf.data(), Status::OK()};  // unallocated
  reqs[3] = {c, buf.data(), Status::OK()};
  EXPECT_FALSE(dev.WriteBatch(reqs, 4).ok());
  EXPECT_TRUE(reqs[0].status.ok());
  EXPECT_FALSE(reqs[1].status.ok());
  EXPECT_FALSE(reqs[2].status.ok());
  EXPECT_TRUE(reqs[3].status.ok());
  EXPECT_EQ(dev.stats().writes, 2u);
  EXPECT_EQ(dev.stats().write_batches, 1u);

  // The scalar path honours the same injected fault...
  EXPECT_FALSE(dev.Write(b, buf.data()).ok());
  // ...and ClearFaults lifts it.
  dev.ClearFaults();
  EXPECT_TRUE(dev.Write(b, buf.data()).ok());
}

TEST(WriteStagerTest, PassthroughWhenBatchingBuysNothing) {
  // PreferredWriteBatch() == 1 (every non-uring backend): Stage == Write,
  // no buffering, no batch submissions.
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  std::vector<std::byte> buf(256);
  std::memset(buf.data(), 0x11, 256);
  WriteStager stager(&dev);
  EXPECT_EQ(stager.capacity(), 1u);
  stager.Stage(p, buf.data());
  EXPECT_EQ(stager.staged(), 0u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().write_batches, 0u);
}

TEST(WriteStagerTest, DrainsFullBatchesInStagingOrder) {
  MemoryBlockDevice dev(256);
  const size_t kPages = 10;
  std::vector<PageId> pages;
  for (size_t i = 0; i < kPages; ++i) pages.push_back(dev.Allocate());
  dev.ResetStats();

  std::vector<std::byte> buf(256);
  {
    WriteStager stager(&dev, /*capacity=*/4);
    for (size_t i = 0; i < kPages; ++i) {
      std::memset(buf.data(), 0x30 + static_cast<int>(i), 256);
      stager.Stage(pages[i], buf.data());
    }
    // 10 pages at capacity 4: two full drains so far, 2 still staged.
    EXPECT_EQ(stager.staged(), 2u);
    EXPECT_EQ(dev.stats().writes, 8u);
    EXPECT_EQ(dev.stats().write_batches, 2u);
  }  // destructor drains the tail

  EXPECT_EQ(dev.stats().writes, kPages);
  EXPECT_EQ(dev.stats().write_batches, 3u);
  std::vector<std::byte> r(256);
  for (size_t i = 0; i < kPages; ++i) {
    ASSERT_TRUE(dev.Read(pages[i], r.data()).ok());
    EXPECT_EQ(r[0], static_cast<std::byte>(0x30 + static_cast<int>(i)))
        << "page " << i;
  }
}

TEST(WriteStagerTest, MoveTransfersStagedPages) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  PageId q = dev.Allocate();
  std::vector<std::byte> buf(256);
  std::memset(buf.data(), 0x55, 256);
  WriteStager a(&dev, /*capacity=*/8);
  a.Stage(p, buf.data());
  std::memset(buf.data(), 0x66, 256);
  a.Stage(q, buf.data());
  WriteStager b = std::move(a);
  EXPECT_EQ(b.staged(), 2u);
  b.Drain();
  EXPECT_EQ(dev.stats().writes, 2u);
  std::vector<std::byte> r(256);
  ASSERT_TRUE(dev.Read(q, r.data()).ok());
  EXPECT_EQ(r[0], std::byte{0x66});
}

TEST(FaultInjectionTest, TornWriteLandsPrefixOnceThenHeals) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  std::vector<std::byte> a(256, std::byte{0xAA});
  std::vector<std::byte> b(256, std::byte{0xBB});
  ASSERT_TRUE(dev.Write(p, a.data()).ok());

  dev.InjectTornWrite(p, 100);
  ASSERT_TRUE(dev.Write(p, b.data()).ok());  // reports success anyway
  std::vector<std::byte> got(256);
  ASSERT_TRUE(dev.Read(p, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), b.data(), 100), 0);
  EXPECT_EQ(std::memcmp(got.data() + 100, a.data() + 100, 156), 0);

  // One-shot: the next write of the same page lands whole.
  ASSERT_TRUE(dev.Write(p, b.data()).ok());
  ASSERT_TRUE(dev.Read(p, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), b.data(), 256), 0);
}

TEST(FaultInjectionTest, CrashAfterNWritesDropsSilently) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  PageId q = dev.Allocate();
  std::vector<std::byte> a(256, std::byte{0x11});
  std::vector<std::byte> b(256, std::byte{0x22});
  ASSERT_TRUE(dev.Write(p, a.data()).ok());
  ASSERT_TRUE(dev.Write(q, a.data()).ok());

  dev.InjectCrashAfterWrites(1);
  EXPECT_FALSE(dev.crash_triggered());
  ASSERT_TRUE(dev.Write(p, b.data()).ok());  // write #1 lands
  ASSERT_TRUE(dev.Write(q, b.data()).ok());  // dropped, still reports OK
  ASSERT_TRUE(dev.Write(q, b.data()).ok());  // dropped too
  EXPECT_TRUE(dev.crash_triggered());
  EXPECT_EQ(dev.dropped_writes(), 2u);

  std::vector<std::byte> got(256);
  ASSERT_TRUE(dev.Read(p, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), b.data(), 256), 0);
  ASSERT_TRUE(dev.Read(q, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), a.data(), 256), 0);  // old contents

  dev.ClearFaults();
  ASSERT_TRUE(dev.Write(q, b.data()).ok());
  ASSERT_TRUE(dev.Read(q, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), b.data(), 256), 0);
}

TEST(FaultInjectionTest, CrashSwitchTearsTheFinalSurvivingWrite) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  std::vector<std::byte> a(256, std::byte{0x33});
  std::vector<std::byte> b(256, std::byte{0x44});
  ASSERT_TRUE(dev.Write(p, a.data()).ok());

  dev.InjectCrashAfterWrites(1, /*tear_prefix_bytes=*/64);
  ASSERT_TRUE(dev.Write(p, b.data()).ok());  // torn: first 64 bytes only
  EXPECT_TRUE(dev.crash_triggered());
  std::vector<std::byte> got(256);
  ASSERT_TRUE(dev.Read(p, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), b.data(), 64), 0);
  EXPECT_EQ(std::memcmp(got.data() + 64, a.data() + 64, 192), 0);

  ASSERT_TRUE(dev.Write(p, b.data()).ok());  // dropped outright
  ASSERT_TRUE(dev.Read(p, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data() + 64, a.data() + 64, 192), 0);
}

TEST(FaultInjectionTest, WriteBatchHonoursTheCrashSwitch) {
  MemoryBlockDevice dev(256);
  PageId pages[3] = {dev.Allocate(), dev.Allocate(), dev.Allocate()};
  std::vector<std::byte> a(256, std::byte{0x55});
  std::vector<std::byte> b(256, std::byte{0x66});
  for (PageId p : pages) ASSERT_TRUE(dev.Write(p, a.data()).ok());
  const uint64_t attempts_before = dev.write_attempts();

  dev.InjectCrashAfterWrites(1);
  BlockWriteRequest reqs[3];
  for (int i = 0; i < 3; ++i) {
    reqs[i].page = pages[i];
    reqs[i].buf = b.data();
  }
  ASSERT_TRUE(dev.WriteBatch(reqs, 3).ok());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(reqs[i].status.ok());

  // Writes are consumed in batch order: #1 lands, #2 and #3 are dropped;
  // attempts tick for all three either way.
  EXPECT_EQ(dev.write_attempts() - attempts_before, 3u);
  EXPECT_EQ(dev.dropped_writes(), 2u);
  std::vector<std::byte> got(256);
  ASSERT_TRUE(dev.Read(pages[0], got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), b.data(), 256), 0);
  for (int i = 1; i < 3; ++i) {
    ASSERT_TRUE(dev.Read(pages[i], got.data()).ok());
    EXPECT_EQ(std::memcmp(got.data(), a.data(), 256), 0);
  }
}

TEST(FaultInjectionTest, MetaTransfersChargeMetaCountersOnly) {
  MemoryBlockDevice dev(256);
  PageId p = dev.Allocate();
  std::vector<std::byte> buf(256, std::byte{0x77});
  const IoStats before = dev.stats();

  ASSERT_TRUE(dev.WriteMeta(p, buf.data()).ok());
  ASSERT_TRUE(dev.ReadMeta(p, buf.data()).ok());
  IoStats d = dev.stats() - before;
  EXPECT_EQ(d.meta_writes, 1u);
  EXPECT_EQ(d.meta_reads, 1u);
  EXPECT_EQ(d.reads, 0u);
  EXPECT_EQ(d.writes, 0u);
  EXPECT_EQ(d.Total(), 0u);  // §3.3 demand metric untouched
  EXPECT_EQ(d.TotalTransfers(), 2u);

  // A kMeta batch moves blocks through meta_writes and never ticks the
  // write_batches audit counter (that is a demand-path concept).
  BlockWriteRequest req{p, buf.data(), Status::OK()};
  ASSERT_TRUE(dev.WriteBatch(&req, 1, WriteKind::kMeta).ok());
  d = dev.stats() - before;
  EXPECT_EQ(d.meta_writes, 2u);
  EXPECT_EQ(d.write_batches, 0u);
  EXPECT_EQ(d.writes, 0u);
}

}  // namespace
}  // namespace prtree
