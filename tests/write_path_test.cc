// End-to-end write path: WriteStager batching threaded through Stream,
// the external sorter and the bulk loaders.
//
// The contract under test is byte-identity: a build that stages node and
// run emissions into WriteBatch() submissions must produce exactly the
// device file a scalar-write build produces — same bytes, same allocation
// order, same demand counters — for any engine (uring ring, pread/pwrite
// fallback, plain file backend) and any thread count.  Batching may only
// change wall-clock and the audit-only write_batches counter.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/prtree.h"
#include "io/external_sort.h"
#include "io/file_block_device.h"
#include "io/stream.h"
#include "io/uring_block_device.h"
#include "io/write_stager.h"
#include "tests/test_util.h"
#include "util/parallel.h"

namespace prtree {
namespace {

std::string TestPath(const std::string& tag) {
  return ::testing::TempDir() + "/prtree_writepath_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         "." + tag + "." + std::to_string(static_cast<long>(getpid())) +
         ".dev";
}

std::vector<char> FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

std::unique_ptr<UringBlockDevice> OpenUring(const std::string& path,
                                            size_t block_size = 512) {
  UringDeviceOptions opts;
  opts.file.block_size = block_size;
  opts.file.truncate = true;
  std::unique_ptr<UringBlockDevice> dev;
  AbortIfError(UringBlockDevice::Open(path, opts, &dev));
  return dev;
}

struct SortRec {
  uint64_t key;
  uint32_t payload;
};

TEST(WritePathTest, StagerDrainsInAllocationOrder) {
  // Pages staged in allocation order land with their own bytes: the drain
  // must not permute the (page, buffer) pairing even when the batch spans
  // multiple ring chunks.
  std::string path = TestPath("order");
  std::remove(path.c_str());
  {
    auto dev = OpenUring(path);
    const int kPages = 40;
    std::vector<std::byte> buf(512);
    std::vector<PageId> pages;
    {
      WriteStager stager(dev.get());
      for (int i = 0; i < kPages; ++i) {
        PageId p = dev->Allocate();
        std::memset(buf.data(), 1 + i, 512);
        stager.Stage(p, buf.data());
        pages.push_back(p);
      }
    }
    std::vector<std::byte> r(512);
    for (int i = 0; i < kPages; ++i) {
      ASSERT_TRUE(dev->Read(pages[i], r.data()).ok());
      EXPECT_EQ(r[0], static_cast<std::byte>(1 + i)) << i;
    }
  }
  std::remove(path.c_str());
}

TEST(WritePathTest, StreamWritesAreBatchedOnUringDevice) {
  std::string path = TestPath("stream");
  std::remove(path.c_str());
  {
    auto dev = OpenUring(path);
    std::vector<SortRec> data;
    for (uint32_t i = 0; i < 5000; ++i) {
      data.push_back(SortRec{static_cast<uint64_t>(i) * 7919u % 5000u, i});
    }
    dev->ResetStats();
    Stream<SortRec> s(dev.get());
    s.Append(data);
    s.Flush();
    // Every full block costs exactly one demand write, batched or not.
    EXPECT_EQ(dev->stats().writes, static_cast<uint64_t>(s.num_blocks()));
    // PreferredWriteBatch() > 1 on this backend regardless of ring
    // availability, so the emission went through WriteBatch submissions.
    EXPECT_GT(dev->PreferredWriteBatch(), 1u);
    EXPECT_GT(dev->stats().write_batches, 0u);
    EXPECT_LT(dev->stats().write_batches, dev->stats().writes);

    std::vector<SortRec> out;
    s.ReadAll(&out);
    ASSERT_EQ(out.size(), data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(out[i].key, data[i].key);
      EXPECT_EQ(out[i].payload, data[i].payload);
    }
  }
  std::remove(path.c_str());
}

TEST(WritePathTest, ExternalSortParityFileVsUring) {
  // The sorter's runs and merge output go through staged batches on the
  // uring backend and scalar writes on the file backend — same sorted
  // output, same demand reads and writes.
  std::vector<SortRec> data;
  for (uint32_t i = 0; i < 20000; ++i) {
    data.push_back(SortRec{static_cast<uint64_t>((i * 48271u) % 20000u), i});
  }
  auto less = [](const SortRec& a, const SortRec& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  };

  auto run = [&](BlockDevice* dev) {
    WorkEnv env{dev, /*memory_bytes=*/1u << 14};
    Stream<SortRec> sorted = ExternalSortVector(env, data, less);
    std::vector<SortRec> out;
    sorted.ReadAll(&out);
    return std::make_tuple(out.size(), out.front().key, out.back().key,
                           dev->stats().reads, dev->stats().writes);
  };

  std::string fpath = TestPath("file");
  std::string upath = TestPath("uring");
  std::remove(fpath.c_str());
  std::remove(upath.c_str());
  decltype(run(nullptr)) file_result, uring_result;
  {
    FileDeviceOptions opts;
    opts.block_size = 512;
    opts.truncate = true;
    std::unique_ptr<FileBlockDevice> dev;
    AbortIfError(FileBlockDevice::Open(fpath, opts, &dev));
    EXPECT_EQ(dev->PreferredWriteBatch(), 1u);  // scalar path
    file_result = run(dev.get());
    EXPECT_EQ(dev->stats().write_batches, 0u);
  }
  {
    auto dev = OpenUring(upath);
    uring_result = run(dev.get());
    EXPECT_GT(dev->stats().write_batches, 0u);
  }
  EXPECT_EQ(file_result, uring_result);
  std::remove(fpath.c_str());
  std::remove(upath.c_str());
}

// The PR 8 acceptance invariant: a PR-tree build through the batched write
// path produces a device file byte-identical to the scalar build — across
// backends (file vs uring) and thread counts (1 vs 8).  Demand counters
// match too; only write_batches (audit-only) may differ with threads.
TEST(WritePathTest, BuildByteIdentityScalarVsBatchedVsParallel) {
  auto data = testing_util::RandomRects<2>(6000, 11);
  PrTreeOptions opts;
  opts.force_grid = true;  // exercise the external grid emitters too

  auto build = [&](BlockDevice* dev, ThreadPool* pool, IoStats* io) {
    WorkEnv env{dev, /*memory_bytes=*/1u << 16};
    env.pool = pool;
    dev->ResetStats();
    RTree<2> tree(dev);
    AbortIfError(BulkLoadPrTree<2>(env, data, &tree, opts));
    *io = dev->stats();
    AbortIfError(dev->Sync());
  };

  std::string spath = TestPath("scalar");
  std::string bpath = TestPath("batched");
  std::string ppath = TestPath("parallel");
  for (auto* p : {&spath, &bpath, &ppath}) std::remove(p->c_str());

  IoStats scalar_io, batched_io, parallel_io;
  {
    FileDeviceOptions fopts;
    fopts.block_size = 512;
    fopts.truncate = true;
    std::unique_ptr<FileBlockDevice> dev;
    AbortIfError(FileBlockDevice::Open(spath, fopts, &dev));
    build(dev.get(), nullptr, &scalar_io);
  }
  {
    auto dev = OpenUring(bpath);
    build(dev.get(), nullptr, &batched_io);
  }
  {
    auto dev = OpenUring(ppath);
    ThreadPool pool(8);
    build(dev.get(), &pool, &parallel_io);
  }

  auto scalar_bytes = FileBytes(spath);
  auto batched_bytes = FileBytes(bpath);
  auto parallel_bytes = FileBytes(ppath);
  ASSERT_FALSE(scalar_bytes.empty());
  EXPECT_EQ(scalar_bytes == batched_bytes, true)
      << "batched uring build diverged from the scalar file build";
  EXPECT_EQ(scalar_bytes == parallel_bytes, true)
      << "8-thread batched build diverged from the scalar build";

  // Demand I/O is engine- and thread-invariant.
  EXPECT_EQ(scalar_io.reads, batched_io.reads);
  EXPECT_EQ(scalar_io.writes, batched_io.writes);
  EXPECT_EQ(scalar_io.reads, parallel_io.reads);
  EXPECT_EQ(scalar_io.writes, parallel_io.writes);
  EXPECT_EQ(scalar_io.write_batches, 0u);
  EXPECT_GT(batched_io.write_batches, 0u);

  for (auto* p : {&spath, &bpath, &ppath}) std::remove(p->c_str());
}

TEST(WritePathTest, NoUringEnvBuildIsByteAndCounterIdentical) {
  // PRTREE_NO_URING=1 swaps the engine under the same staged write path:
  // the fallback serves each WriteBatch as scalar pwrites.  Bytes and every
  // counter — write_batches included, because PreferredWriteBatch() reports
  // the configured depth either way — must be identical to the ring build.
  auto data = testing_util::RandomRects<2>(4000, 13);
  PrTreeOptions opts;
  opts.force_grid = true;

  auto build = [&](const std::string& path, bool no_uring, IoStats* io) {
    if (no_uring) ::setenv("PRTREE_NO_URING", "1", 1);
    auto dev = OpenUring(path);
    if (no_uring) {
      ::unsetenv("PRTREE_NO_URING");
      EXPECT_FALSE(dev->ring_active());
    }
    WorkEnv env{dev.get(), /*memory_bytes=*/1u << 16};
    RTree<2> tree(dev.get());
    AbortIfError(BulkLoadPrTree<2>(env, data, &tree, opts));
    *io = dev->stats();
    AbortIfError(dev->Sync());
  };

  std::string rpath = TestPath("ring");
  std::string npath = TestPath("nouring");
  std::remove(rpath.c_str());
  std::remove(npath.c_str());
  IoStats ring_io, fallback_io;
  build(rpath, false, &ring_io);
  build(npath, true, &fallback_io);

  EXPECT_EQ(FileBytes(rpath), FileBytes(npath));
  EXPECT_EQ(ring_io.reads, fallback_io.reads);
  EXPECT_EQ(ring_io.writes, fallback_io.writes);
  EXPECT_EQ(ring_io.write_batches, fallback_io.write_batches);
  EXPECT_GT(ring_io.write_batches, 0u);
  std::remove(rpath.c_str());
  std::remove(npath.c_str());
}

}  // namespace
}  // namespace prtree
