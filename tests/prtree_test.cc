#include "core/prtree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rtree/validate.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

WorkEnv Env(BlockDevice* dev, size_t mem = 8u << 20) {
  return WorkEnv{dev, mem};
}

TEST(PrTreeTest, EmptyInput) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  std::vector<Record2> empty;
  ASSERT_TRUE(BulkLoadPrTree<2>(Env(&dev), empty, &tree).ok());
  EXPECT_TRUE(tree.empty());
}

TEST(PrTreeTest, RejectsNonEmptyTree) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  auto data = RandomRects<2>(10, 1);
  ASSERT_TRUE(BulkLoadPrTree<2>(Env(&dev), data, &tree).ok());
  Status st = BulkLoadPrTree<2>(Env(&dev), data, &tree);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(PrTreeTest, RejectsBadPriorityFraction) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  auto data = RandomRects<2>(10, 1);
  PrTreeOptions opts;
  opts.priority_fraction = 0.0;
  EXPECT_FALSE(BulkLoadPrTree<2>(Env(&dev), data, &tree, opts).ok());
  opts.priority_fraction = 1.5;
  EXPECT_FALSE(BulkLoadPrTree<2>(Env(&dev), data, &tree, opts).ok());
}

class PrTreeCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, bool>> {};

TEST_P(PrTreeCorrectnessTest, ValidTreeAndExactQueries) {
  auto [n, block_size, force_grid] = GetParam();
  MemoryBlockDevice dev(block_size);
  auto data = RandomRects<2>(n, 31 * n + block_size);
  RTree<2> tree(&dev);
  PrTreeOptions opts;
  opts.force_grid = force_grid;
  // A small memory budget forces multi-level grid recursion when forced.
  WorkEnv env = Env(&dev, force_grid ? 64u << 10 : 8u << 20);
  ASSERT_TRUE(BulkLoadPrTree<2>(env, data, &tree, opts).ok());

  ASSERT_TRUE(ValidateTree(tree).ok());
  EXPECT_EQ(tree.size(), n);

  // The stored multiset equals the input.
  auto dumped = DumpRecords(tree);
  auto expect = data;
  CanonicalSort(&dumped);
  CanonicalSort(&expect);
  EXPECT_EQ(dumped.size(), expect.size());
  EXPECT_TRUE(dumped == expect);

  Rng rng(n + 7);
  for (int q = 0; q < 30; ++q) {
    Rect2 w = RandomWindow<2>(&rng, q % 2 ? 0.25 : 0.05);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    InMemory, PrTreeCorrectnessTest,
    ::testing::Combine(::testing::Values(1, 113, 114, 1000, 12000),
                       ::testing::Values(size_t{512}, size_t{4096}),
                       ::testing::Values(false)));

INSTANTIATE_TEST_SUITE_P(
    GridPath, PrTreeCorrectnessTest,
    ::testing::Combine(::testing::Values(1000, 12000, 40000),
                       ::testing::Values(size_t{512}, size_t{4096}),
                       ::testing::Values(true)));

TEST(PrTreeTest, AllLeavesOnBottomLevelAndPacked) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(100000, 41);
  RTree<2> tree(&dev);
  ASSERT_TRUE(BulkLoadPrTree<2>(Env(&dev, 64u << 20), data, &tree).ok());
  ASSERT_TRUE(ValidateTree(tree).ok());
  TreeStats ts = tree.ComputeStats();
  // §3.3: "in all experiments and for all R-trees we achieved a space
  // utilization above 99%".
  EXPECT_GT(ts.utilization, 0.99);
  // Height matches ceil(log_B N) for a packed tree.
  EXPECT_EQ(ts.height, 2);  // 100000 <= 113^3
  EXPECT_EQ(ts.num_entries, data.size());
}

TEST(PrTreeTest, GridAndInMemoryBuildsAreBothValidOnSameData) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(20000, 43);
  RTree<2> mem_tree(&dev), grid_tree(&dev);
  ASSERT_TRUE(BulkLoadPrTree<2>(Env(&dev), data, &mem_tree).ok());
  PrTreeOptions opts;
  opts.force_grid = true;
  ASSERT_TRUE(
      BulkLoadPrTree<2>(Env(&dev, 128u << 10), data, &grid_tree, opts).ok());
  ASSERT_TRUE(ValidateTree(mem_tree).ok());
  ASSERT_TRUE(ValidateTree(grid_tree).ok());
  // Identical answers.
  Rng rng(47);
  for (int q = 0; q < 20; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.1);
    EXPECT_EQ(SortedIds(mem_tree.QueryToVector(w)),
              SortedIds(grid_tree.QueryToVector(w)));
  }
  // Both near-full.
  EXPECT_GT(mem_tree.ComputeStats().utilization, 0.95);
  EXPECT_GT(grid_tree.ComputeStats().utilization, 0.90);
}

TEST(PrTreeTest, BuildIoIsSortLike) {
  // Theorem 1: O((N/B) log_{M/B} (N/B)) I/Os — i.e., a small constant
  // times the cost of 2D external sorts at realistic M.
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(60000, 53);
  Stream<Record2> input(&dev);
  input.Append(data);
  input.Flush();
  size_t data_blocks = input.num_blocks();

  dev.ResetStats();
  RTree<2> tree(&dev);
  WorkEnv env = Env(&dev, 1u << 20);  // M << N forces external behaviour
  ASSERT_TRUE(BulkLoadPrTree<2>(env, &input, &tree).ok());
  uint64_t io = dev.stats().Total();
  // 4 sorts (read+write each ~2 passes) + counting/filter/distribute scans
  // + output: generously under 40 passes over the data.
  EXPECT_LE(io, 40u * data_blocks) << "io=" << io
                                   << " blocks=" << data_blocks;
  ASSERT_TRUE(ValidateTree(tree).ok());
}

TEST(PrTreeTest, PriorityFractionAblationStillCorrect) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(8000, 59);
  for (double frac : {0.25, 0.5, 1.0}) {
    RTree<2> tree(&dev);
    PrTreeOptions opts;
    opts.priority_fraction = frac;
    ASSERT_TRUE(BulkLoadPrTree<2>(Env(&dev), data, &tree, opts).ok());
    ASSERT_TRUE(ValidateTree(tree).ok());
    Rng rng(61);
    for (int q = 0; q < 10; ++q) {
      Rect2 w = RandomWindow<2>(&rng, 0.2);
      EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
    }
    tree.FreeAll();
  }
}

TEST(PrTreeTest, ThreeDimensionalPrTree) {
  // §2.3: the d-dimensional PR-tree.
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<3>(20000, 67);
  RTree<3> tree(&dev);
  ASSERT_TRUE(BulkLoadPrTree<3>(Env(&dev), data, &tree).ok());
  ASSERT_TRUE(ValidateTree(tree).ok());
  EXPECT_GT(tree.ComputeStats().utilization, 0.95);
  Rng rng(71);
  for (int q = 0; q < 15; ++q) {
    Rect<3> w = RandomWindow<3>(&rng, 0.3);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
  }
}

TEST(PrTreeTest, ThreeDimensionalGridPath) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<3>(15000, 73);
  RTree<3> tree(&dev);
  PrTreeOptions opts;
  opts.force_grid = true;
  ASSERT_TRUE(
      BulkLoadPrTree<3>(Env(&dev, 256u << 10), data, &tree, opts).ok());
  ASSERT_TRUE(ValidateTree(tree).ok());
  Rng rng(79);
  for (int q = 0; q < 10; ++q) {
    Rect<3> w = RandomWindow<3>(&rng, 0.3);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
  }
}

// Theorem 1 query-bound property: empty-result queries on the worst-case
// grid stay within c * sqrt(N/B) leaves across a sweep of N.
class PrTreeQueryBoundTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PrTreeQueryBoundTest, EmptyQueryLeafVisitsAreSqrtBounded) {
  size_t columns = GetParam();
  MemoryBlockDevice dev(512);
  const size_t b = NodeCapacity<2>(512);  // 13
  auto data = workload::MakeWorstCaseGrid(columns, b);
  RTree<2> tree(&dev);
  ASSERT_TRUE(BulkLoadPrTree<2>(Env(&dev), data, &tree).ok());

  double worst = 0;
  const size_t n = data.size();
  for (int row = 1; row < 8; ++row) {
    double y = row / static_cast<double>(b) - 0.5 / static_cast<double>(n);
    Rect2 line = MakeRect(-1, y, 1e9, y);
    QueryStats qs = tree.Query(line, [](const Record2&) {});
    ASSERT_EQ(qs.results, 0u);
    worst = std::max(worst, static_cast<double>(qs.leaves_visited));
  }
  double bound = std::sqrt(static_cast<double>(n) / b);
  EXPECT_LE(worst, 12 * bound + 12)
      << "N=" << n << " sqrt(N/B)=" << bound << " worst=" << worst;
}

INSTANTIATE_TEST_SUITE_P(GridSizes, PrTreeQueryBoundTest,
                         ::testing::Values(64, 128, 256, 512, 1024));

}  // namespace
}  // namespace prtree
