// Shared helpers for the prtree test suite.

#ifndef PRTREE_TESTS_TEST_UTIL_H_
#define PRTREE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "geom/rect.h"
#include "util/random.h"

namespace prtree {
namespace testing_util {

/// Uniform random rectangles in the unit square with sides up to max_side.
template <int D>
std::vector<Record<D>> RandomRects(size_t n, uint64_t seed,
                                   double max_side = 0.05) {
  Rng rng(seed);
  std::vector<Record<D>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Record<D> rec;
    for (int d = 0; d < D; ++d) {
      double side = rng.Uniform(0.0, max_side);
      double lo = rng.Uniform(0.0, 1.0 - side);
      rec.rect.lo[d] = lo;
      rec.rect.hi[d] = lo + side;
    }
    rec.id = static_cast<DataId>(i);
    out.push_back(rec);
  }
  return out;
}

/// Uniform random points (degenerate rectangles) in the unit square.
template <int D>
std::vector<Record<D>> RandomPoints(size_t n, uint64_t seed) {
  return RandomRects<D>(n, seed, 0.0);
}

/// Reference result: ids of records intersecting `window`, sorted.
template <int D>
std::vector<DataId> BruteForceQuery(const std::vector<Record<D>>& data,
                                    const Rect<D>& window) {
  std::vector<DataId> out;
  for (const auto& rec : data) {
    if (rec.rect.Intersects(window)) out.push_back(rec.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Sorted id list from query output.
template <int D>
std::vector<DataId> SortedIds(const std::vector<Record<D>>& records) {
  std::vector<DataId> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.id);
  std::sort(out.begin(), out.end());
  return out;
}

/// A random query window with sides up to `max_side`.
template <int D>
Rect<D> RandomWindow(Rng* rng, double max_side) {
  Rect<D> w;
  for (int d = 0; d < D; ++d) {
    double side = rng->Uniform(0.0, max_side);
    double lo = rng->Uniform(-0.1, 1.1 - side);
    w.lo[d] = lo;
    w.hi[d] = lo + side;
  }
  return w;
}

}  // namespace testing_util
}  // namespace prtree

#endif  // PRTREE_TESTS_TEST_UTIL_H_
