// Kernel-level tests for geom/rect_batch.h: every available SIMD level
// must reproduce the scalar Rect predicates bit for bit — masks, tail
// bits, MINDIST² bits — over hostile inputs (special values, unaligned
// exactly-sized buffers, every batch length across the lane boundaries).
// The ASan/UBSan presets turn the "never read past element n-1" and
// alignment-freedom claims into hard failures.

#include "geom/rect_batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "geom/rect.h"
#include "util/random.h"

namespace prtree {
namespace {

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  for (SimdLevel l : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (ForceSimdLevel(l) == l) levels.push_back(l);
  }
  ForceSimdLevel(SimdLevel::kScalar);
  return levels;
}

struct Runs {
  std::vector<Real> xmin, ymin, xmax, ymax;
  size_t size() const { return xmin.size(); }
};

// Random rectangles with special values sprinkled in: infinities (an
// unbounded dimension), signed zeros, denormals, and NaN — the scalar
// predicates have defined comparison behaviour for all of them and the
// kernels must match it exactly.
Runs MakeRuns(size_t n, uint64_t seed) {
  Rng rng(seed);
  Runs r;
  const Real inf = std::numeric_limits<Real>::infinity();
  const Real nan = std::numeric_limits<Real>::quiet_NaN();
  const Real denorm = std::numeric_limits<Real>::denorm_min();
  for (size_t i = 0; i < n; ++i) {
    Real lox = rng.Uniform(-1, 1), loy = rng.Uniform(-1, 1);
    Real hix = lox + rng.Uniform(0, 0.5), hiy = loy + rng.Uniform(0, 0.5);
    switch (i % 11) {
      case 7:
        lox = -inf;
        break;
      case 8:
        hiy = inf;
        break;
      case 9:
        lox = -0.0;
        hix = denorm;
        break;
      case 10:
        loy = nan;
        break;
      default:
        break;
    }
    r.xmin.push_back(lox);
    r.ymin.push_back(loy);
    r.xmax.push_back(hix);
    r.ymax.push_back(hiy);
  }
  return r;
}

Rect2 EntryRect(const Runs& r, size_t i) {
  Rect2 e;
  e.lo = {r.xmin[i], r.ymin[i]};
  e.hi = {r.xmax[i], r.ymax[i]};
  return e;
}

// Reference MINDIST², the same if/else accumulation as MinDist in
// rtree/knn.h before the sqrt.  The test binary targets baseline x86-64 /
// AArch64 like the library, so no FMA contraction can sneak in here and
// bit-equality with the -ffp-contract=off kernel TU is well-defined.
Real RefMinDist2(Real px, Real py, const Rect2& r) {
  Real dx = 0;
  if (px < r.lo[0]) {
    dx = r.lo[0] - px;
  } else if (px > r.hi[0]) {
    dx = px - r.hi[0];
  }
  Real dy = 0;
  if (py < r.lo[1]) {
    dy = r.lo[1] - py;
  } else if (py > r.hi[1]) {
    dy = py - r.hi[1];
  }
  return dx * dx + dy * dy;
}

uint64_t Bits(Real v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

class RectBatchTest : public ::testing::Test {
 protected:
  void TearDown() override { ForceSimdLevel(SimdLevel::kScalar); }
};

// Batch lengths straddling every lane and mask-word boundary.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                           63, 64, 65, 100, 113, 127, 128, 130};

TEST_F(RectBatchTest, MasksMatchScalarPredicatesAtEveryLevel) {
  const Rect2 q = MakeRect(-0.25, -0.25, 0.4, 0.4);
  for (SimdLevel level : AvailableLevels()) {
    ASSERT_EQ(ForceSimdLevel(level), level);
    for (size_t n : kLengths) {
      Runs runs = MakeRuns(n, 1000 + n);
      std::vector<uint64_t> mask(RectMaskWords(n) + 1, ~uint64_t{0});
      BatchIntersect(q, runs.xmin.data(), runs.ymin.data(), runs.xmax.data(),
                     runs.ymax.data(), n, mask.data());
      for (size_t i = 0; i < n; ++i) {
        bool got = (mask[i >> 6] >> (i & 63)) & 1;
        EXPECT_EQ(got, EntryRect(runs, i).Intersects(q))
            << SimdLevelName(level) << " intersect entry " << i << "/" << n;
      }
      BatchContainedIn(q, runs.xmin.data(), runs.ymin.data(),
                       runs.xmax.data(), runs.ymax.data(), n, mask.data());
      for (size_t i = 0; i < n; ++i) {
        bool got = (mask[i >> 6] >> (i & 63)) & 1;
        EXPECT_EQ(got, q.Contains(EntryRect(runs, i)))
            << SimdLevelName(level) << " contained-in entry " << i << "/" << n;
      }
      BatchCovers(q, runs.xmin.data(), runs.ymin.data(), runs.xmax.data(),
                  runs.ymax.data(), n, mask.data());
      for (size_t i = 0; i < n; ++i) {
        bool got = (mask[i >> 6] >> (i & 63)) & 1;
        EXPECT_EQ(got, EntryRect(runs, i).Contains(q))
            << SimdLevelName(level) << " covers entry " << i << "/" << n;
      }
    }
  }
}

TEST_F(RectBatchTest, TailBitsBeyondNAreZero) {
  const Rect2 q = MakeRect(-10, -10, 10, 10);  // accepts every finite entry
  for (SimdLevel level : AvailableLevels()) {
    ASSERT_EQ(ForceSimdLevel(level), level);
    for (size_t n : kLengths) {
      if (n == 0) continue;
      Runs runs = MakeRuns(n, 2000 + n);
      std::vector<uint64_t> mask(RectMaskWords(n), ~uint64_t{0});
      BatchIntersect(q, runs.xmin.data(), runs.ymin.data(), runs.xmax.data(),
                     runs.ymax.data(), n, mask.data());
      for (size_t i = n; i < RectMaskWords(n) * 64; ++i) {
        EXPECT_EQ((mask[i >> 6] >> (i & 63)) & 1, 0u)
            << SimdLevelName(level) << " stray tail bit " << i << " at n=" << n;
      }
    }
  }
}

TEST_F(RectBatchTest, MinDist2BitIdenticalToReferenceAtEveryLevel) {
  for (SimdLevel level : AvailableLevels()) {
    ASSERT_EQ(ForceSimdLevel(level), level);
    for (size_t n : kLengths) {
      Runs runs = MakeRuns(n, 3000 + n);
      Rng rng(4000 + n);
      Real px = rng.Uniform(-1.5, 1.5), py = rng.Uniform(-1.5, 1.5);
      std::vector<Real> d2(n > 0 ? n : 1);
      BatchMinDist2(px, py, runs.xmin.data(), runs.ymin.data(),
                    runs.xmax.data(), runs.ymax.data(), n, d2.data());
      for (size_t i = 0; i < n; ++i) {
        Real want = RefMinDist2(px, py, EntryRect(runs, i));
        EXPECT_EQ(Bits(d2[i]), Bits(want))
            << SimdLevelName(level) << " d2 entry " << i << "/" << n
            << " got " << d2[i] << " want " << want;
      }
    }
  }
}

// The alignment/UB audit: exactly-sized runs placed at deliberately odd
// byte offsets.  Under ASan any overread of the heap block fails; under
// UBSan any aligned-load assumption fails.  The mask/d2 outputs must still
// be bit-exact.
TEST_F(RectBatchTest, UnalignedExactlySizedRunsAreSafe) {
  const Rect2 q = MakeRect(-0.5, -0.5, 0.5, 0.5);
  for (SimdLevel level : AvailableLevels()) {
    ASSERT_EQ(ForceSimdLevel(level), level);
    for (size_t offset : {1, 3, 5, 7}) {
      const size_t n = 113;
      Runs runs = MakeRuns(n, 5000 + offset);
      // One raw allocation per run, sized to the byte and shifted off
      // natural Real alignment.
      std::vector<std::vector<char>> storage;
      const Real* views[4];
      const std::vector<Real>* sources[4] = {&runs.xmin, &runs.ymin,
                                             &runs.xmax, &runs.ymax};
      for (int k = 0; k < 4; ++k) {
        storage.emplace_back(offset + n * sizeof(Real));
        std::memcpy(storage.back().data() + offset, sources[k]->data(),
                    n * sizeof(Real));
        views[k] = reinterpret_cast<const Real*>(storage.back().data() +
                                                 offset);
      }
      std::vector<uint64_t> mask(RectMaskWords(n));
      BatchIntersect(q, views[0], views[1], views[2], views[3], n,
                     mask.data());
      for (size_t i = 0; i < n; ++i) {
        bool got = (mask[i >> 6] >> (i & 63)) & 1;
        EXPECT_EQ(got, EntryRect(runs, i).Intersects(q))
            << SimdLevelName(level) << " offset " << offset << " entry " << i;
      }
      std::vector<Real> d2(n);
      BatchMinDist2(0.1, -0.2, views[0], views[1], views[2], views[3], n,
                    d2.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(Bits(d2[i]), Bits(RefMinDist2(0.1, -0.2, EntryRect(runs, i))))
            << SimdLevelName(level) << " offset " << offset << " entry " << i;
      }
    }
  }
}

TEST_F(RectBatchTest, ForEachSetBitVisitsInIncreasingOrder) {
  std::vector<uint64_t> mask(3, 0);
  std::vector<int> expected;
  for (int i : {0, 1, 63, 64, 70, 127, 128, 130, 191}) {
    mask[i >> 6] |= uint64_t{1} << (i & 63);
    expected.push_back(i);
  }
  std::vector<int> seen;
  ForEachSetBit(mask.data(), mask.size(), [&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);

  seen.clear();
  std::vector<uint64_t> empty(2, 0);
  ForEachSetBit(empty.data(), empty.size(), [&](int i) { seen.push_back(i); });
  EXPECT_TRUE(seen.empty());
}

TEST_F(RectBatchTest, ForceSimdLevelClampsAndNames) {
  EXPECT_EQ(ForceSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // Forcing an unavailable level falls back to something real and reports
  // what it actually activated.
  SimdLevel got = ForceSimdLevel(SimdLevel::kAvx2);
  EXPECT_EQ(ActiveSimdLevel(), got);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kNeon), "neon");
}

}  // namespace
}  // namespace prtree
