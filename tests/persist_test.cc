#include "rtree/persist.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "core/prtree.h"
#include "rtree/update.h"
#include "rtree/validate.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/prtree_snapshot_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PersistTest, RoundTripPreservesEverything) {
  BlockDevice dev(512);
  auto data = RandomRects<2>(5000, 7);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  // Load onto a completely different device with prior allocations (so
  // page ids cannot possibly coincide).
  BlockDevice dev2(512);
  for (int i = 0; i < 37; ++i) dev2.Allocate();
  RTree<2> loaded(&dev2);
  ASSERT_TRUE(LoadTree(path_, &loaded).ok());

  EXPECT_EQ(loaded.size(), tree.size());
  EXPECT_EQ(loaded.height(), tree.height());
  ASSERT_TRUE(ValidateTree(loaded).ok());

  auto a = DumpRecords(tree);
  auto b = DumpRecords(loaded);
  CanonicalSort(&a);
  CanonicalSort(&b);
  EXPECT_TRUE(a == b);

  Rng rng(11);
  for (int q = 0; q < 20; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    EXPECT_EQ(SortedIds(loaded.QueryToVector(w)),
              SortedIds(tree.QueryToVector(w)));
  }
}

TEST_F(PersistTest, LoadedTreeRemainsUpdatable) {
  BlockDevice dev(512);
  auto data = RandomRects<2>(1000, 13);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  BlockDevice dev2(512);
  RTree<2> loaded(&dev2);
  ASSERT_TRUE(LoadTree(path_, &loaded).ok());
  RTreeUpdater<2> upd(&loaded);
  auto extra = RandomRects<2>(500, 17);
  for (auto rec : extra) {
    rec.id += 1000000;
    upd.Insert(rec);
  }
  EXPECT_EQ(loaded.size(), 1500u);
  ValidateOptions opts;
  opts.min_entries = 1;
  ASSERT_TRUE(ValidateTree(loaded, opts).ok());
}

TEST_F(PersistTest, SingleLeafTree) {
  BlockDevice dev(4096);
  auto data = RandomRects<2>(5, 19);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 1u << 20}, data, &tree));
  ASSERT_EQ(tree.height(), 0);
  ASSERT_TRUE(SaveTree(tree, path_).ok());
  BlockDevice dev2(4096);
  RTree<2> loaded(&dev2);
  ASSERT_TRUE(LoadTree(path_, &loaded).ok());
  EXPECT_EQ(loaded.size(), 5u);
  EXPECT_EQ(SortedIds(loaded.QueryToVector(MakeRect(-1, -1, 2, 2))),
            SortedIds(tree.QueryToVector(MakeRect(-1, -1, 2, 2))));
}

TEST_F(PersistTest, RejectsEmptyTreeAndBadTargets) {
  BlockDevice dev(4096);
  RTree<2> empty(&dev);
  EXPECT_FALSE(SaveTree(empty, path_).ok());

  auto data = RandomRects<2>(100, 23);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 1u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  // Non-empty output tree.
  EXPECT_FALSE(LoadTree(path_, &tree).ok());
  // Block size mismatch.
  BlockDevice dev512(512);
  RTree<2> t512(&dev512);
  Status st = LoadTree(path_, &t512);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Dimension mismatch.
  BlockDevice dev3(4096);
  RTree<3> t3(&dev3);
  EXPECT_FALSE(LoadTree(path_, &t3).ok());
  // Missing file.
  BlockDevice dev4(4096);
  RTree<2> t4(&dev4);
  EXPECT_FALSE(LoadTree("/nonexistent/prtree.bin", &t4).ok());
}

TEST_F(PersistTest, DetectsTruncationAndCorruption) {
  BlockDevice dev(512);
  auto data = RandomRects<2>(2000, 29);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  // Truncate the file.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  }
  BlockDevice dev2(512);
  size_t baseline = dev2.num_allocated();
  RTree<2> loaded(&dev2);
  Status st = LoadTree(path_, &loaded);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  // No leaked pages after the failed load.
  EXPECT_EQ(dev2.num_allocated(), baseline);

  // Corrupt the magic.
  ASSERT_TRUE(SaveTree(tree, path_).ok());
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    uint32_t junk = 0xDEADBEEF;
    std::fwrite(&junk, sizeof(junk), 1, f);
    std::fclose(f);
  }
  BlockDevice dev3(512);
  RTree<2> loaded3(&dev3);
  EXPECT_EQ(LoadTree(path_, &loaded3).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace prtree
