#include "rtree/persist.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>

#include "core/prtree.h"
#include "io/file_block_device.h"
#include "rtree/update.h"
#include "rtree/validate.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Test-name + pid qualified: ctest runs each TEST as its own process,
    // often concurrently, so an address-based name could collide.
    path_ = ::testing::TempDir() + "/prtree_snapshot_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "." + std::to_string(static_cast<long>(getpid())) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PersistTest, RoundTripPreservesEverything) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(5000, 7);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  // Load onto a completely different device with prior allocations (so
  // page ids cannot possibly coincide).
  MemoryBlockDevice dev2(512);
  for (int i = 0; i < 37; ++i) dev2.Allocate();
  RTree<2> loaded(&dev2);
  ASSERT_TRUE(LoadTree(path_, &loaded).ok());

  EXPECT_EQ(loaded.size(), tree.size());
  EXPECT_EQ(loaded.height(), tree.height());
  ASSERT_TRUE(ValidateTree(loaded).ok());

  auto a = DumpRecords(tree);
  auto b = DumpRecords(loaded);
  CanonicalSort(&a);
  CanonicalSort(&b);
  EXPECT_TRUE(a == b);

  Rng rng(11);
  for (int q = 0; q < 20; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    EXPECT_EQ(SortedIds(loaded.QueryToVector(w)),
              SortedIds(tree.QueryToVector(w)));
  }
}

TEST_F(PersistTest, LoadedTreeRemainsUpdatable) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(1000, 13);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  MemoryBlockDevice dev2(512);
  RTree<2> loaded(&dev2);
  ASSERT_TRUE(LoadTree(path_, &loaded).ok());
  RTreeUpdater<2> upd(&loaded);
  auto extra = RandomRects<2>(500, 17);
  for (auto rec : extra) {
    rec.id += 1000000;
    upd.Insert(rec);
  }
  EXPECT_EQ(loaded.size(), 1500u);
  ValidateOptions opts;
  opts.min_entries = 1;
  ASSERT_TRUE(ValidateTree(loaded, opts).ok());
}

TEST_F(PersistTest, SingleLeafTree) {
  MemoryBlockDevice dev(4096);
  auto data = RandomRects<2>(5, 19);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 1u << 20}, data, &tree));
  ASSERT_EQ(tree.height(), 0);
  ASSERT_TRUE(SaveTree(tree, path_).ok());
  MemoryBlockDevice dev2(4096);
  RTree<2> loaded(&dev2);
  ASSERT_TRUE(LoadTree(path_, &loaded).ok());
  EXPECT_EQ(loaded.size(), 5u);
  EXPECT_EQ(SortedIds(loaded.QueryToVector(MakeRect(-1, -1, 2, 2))),
            SortedIds(tree.QueryToVector(MakeRect(-1, -1, 2, 2))));
}

TEST_F(PersistTest, RejectsEmptyTreeAndBadTargets) {
  MemoryBlockDevice dev(4096);
  RTree<2> empty(&dev);
  EXPECT_FALSE(SaveTree(empty, path_).ok());

  auto data = RandomRects<2>(100, 23);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 1u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  // Non-empty output tree.
  EXPECT_FALSE(LoadTree(path_, &tree).ok());
  // Block size mismatch.
  MemoryBlockDevice dev512(512);
  RTree<2> t512(&dev512);
  Status st = LoadTree(path_, &t512);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Dimension mismatch.
  MemoryBlockDevice dev3(4096);
  RTree<3> t3(&dev3);
  EXPECT_FALSE(LoadTree(path_, &t3).ok());
  // Missing file.
  MemoryBlockDevice dev4(4096);
  RTree<2> t4(&dev4);
  EXPECT_FALSE(LoadTree("/nonexistent/prtree.bin", &t4).ok());
}

TEST_F(PersistTest, DetectsTruncationAndCorruption) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(2000, 29);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  // Truncate the file.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  }
  MemoryBlockDevice dev2(512);
  size_t baseline = dev2.num_allocated();
  RTree<2> loaded(&dev2);
  Status st = LoadTree(path_, &loaded);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  // No leaked pages after the failed load.
  EXPECT_EQ(dev2.num_allocated(), baseline);

  // Corrupt the magic.
  ASSERT_TRUE(SaveTree(tree, path_).ok());
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    uint32_t junk = 0xDEADBEEF;
    std::fwrite(&junk, sizeof(junk), 1, f);
    std::fclose(f);
  }
  MemoryBlockDevice dev3(512);
  RTree<2> loaded3(&dev3);
  EXPECT_EQ(LoadTree(path_, &loaded3).code(), StatusCode::kCorruption);
}

// The in-place reopen path of the file backend: build straight onto a
// FileBlockDevice, persist the root in the superblock, drop every handle,
// reopen from the path alone and query — no snapshot copying involved.
TEST_F(PersistTest, FileDeviceWriteReopenQueryRoundTrip) {
  auto data = RandomRects<2>(4000, 31);
  std::vector<Rect2> windows;
  Rng rng(5);
  for (int q = 0; q < 20; ++q) windows.push_back(RandomWindow<2>(&rng, 0.2));

  std::vector<std::vector<DataId>> expected;
  {
    FileDeviceOptions opts;
    opts.block_size = 512;
    opts.truncate = true;
    std::unique_ptr<FileBlockDevice> dev;
    ASSERT_TRUE(FileBlockDevice::Open(path_, opts, &dev).ok());
    RTree<2> tree(dev.get());
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{dev.get(), 2u << 20}, data,
                                   &tree));
    for (const auto& w : windows) {
      expected.push_back(SortedIds(tree.QueryToVector(w)));
    }
    ASSERT_TRUE(PersistTree(tree, dev.get()).ok());
  }  // device closed; only the file remains

  std::unique_ptr<FileBlockDevice> dev;
  ASSERT_TRUE(FileBlockDevice::Open(path_, FileDeviceOptions{}, &dev).ok());
  RTree<2> tree(dev.get());
  ASSERT_TRUE(AttachTree(dev.get(), &tree).ok());
  EXPECT_EQ(tree.size(), data.size());
  ASSERT_TRUE(ValidateTree(tree).ok());
  for (size_t q = 0; q < windows.size(); ++q) {
    EXPECT_EQ(SortedIds(tree.QueryToVector(windows[q])), expected[q]);
  }

  // A reopened tree is still updatable, and re-persistable.
  RTreeUpdater<2> upd(&tree);
  auto extra = RandomRects<2>(200, 37);
  for (auto rec : extra) {
    rec.id += 1000000;
    upd.Insert(rec);
  }
  EXPECT_EQ(tree.size(), data.size() + 200);
  ASSERT_TRUE(PersistTree(tree, dev.get()).ok());
}

TEST_F(PersistTest, AttachRejectsMissingOrMismatchedMeta) {
  FileDeviceOptions opts;
  opts.block_size = 512;
  opts.truncate = true;
  std::unique_ptr<FileBlockDevice> dev;
  ASSERT_TRUE(FileBlockDevice::Open(path_, opts, &dev).ok());

  // No PersistTree ever ran on this device.
  RTree<2> tree(dev.get());
  EXPECT_EQ(AttachTree(dev.get(), &tree).code(), StatusCode::kNotFound);

  auto data = RandomRects<2>(500, 41);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{dev.get(), 1u << 20}, data, &tree));
  ASSERT_TRUE(PersistTree(tree, dev.get()).ok());

  // Dimension mismatch and non-empty output tree are both rejected.
  RTree<3> t3(dev.get());
  EXPECT_FALSE(AttachTree(dev.get(), &t3).ok());
  EXPECT_FALSE(AttachTree(dev.get(), &tree).ok());
}

TEST_F(PersistTest, AttachRejectsStaleMetadataAfterUpdates) {
  FileDeviceOptions opts;
  opts.block_size = 512;
  opts.truncate = true;
  {
    std::unique_ptr<FileBlockDevice> dev;
    ASSERT_TRUE(FileBlockDevice::Open(path_, opts, &dev).ok());
    RTree<2> tree(dev.get());
    auto data = RandomRects<2>(2000, 47);
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{dev.get(), 1u << 20}, data,
                                   &tree));
    ASSERT_TRUE(PersistTree(tree, dev.get()).ok());
    // Mutate after the persist: enough inserts to allocate pages (and
    // possibly move the root), then close WITHOUT re-persisting.
    RTreeUpdater<2> upd(&tree);
    auto extra = RandomRects<2>(1500, 53);
    for (auto rec : extra) {
      rec.id += 1000000;
      upd.Insert(rec);
    }
    ASSERT_TRUE(dev->Sync().ok());
  }
  std::unique_ptr<FileBlockDevice> dev;
  ASSERT_TRUE(FileBlockDevice::Open(path_, FileDeviceOptions{}, &dev).ok());
  RTree<2> tree(dev.get());
  Status st = AttachTree(dev.get(), &tree);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

// Snapshots are device-agnostic: a snapshot written from a memory device
// restores onto a file device (and the restored file index then reopens
// in place).
TEST_F(PersistTest, SnapshotRestoresOntoFileDevice) {
  MemoryBlockDevice mdev(512);
  auto data = RandomRects<2>(3000, 43);
  RTree<2> tree(&mdev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&mdev, 2u << 20}, data, &tree));
  ASSERT_TRUE(SaveTree(tree, path_).ok());

  std::string dev_path = path_ + ".dev";
  {
    FileDeviceOptions opts;
    opts.block_size = 512;
    opts.truncate = true;
    std::unique_ptr<FileBlockDevice> fdev;
    ASSERT_TRUE(FileBlockDevice::Open(dev_path, opts, &fdev).ok());
    RTree<2> loaded(fdev.get());
    ASSERT_TRUE(LoadTree(path_, &loaded).ok());
    ASSERT_TRUE(ValidateTree(loaded).ok());
    ASSERT_TRUE(PersistTree(loaded, fdev.get()).ok());
  }
  std::unique_ptr<FileBlockDevice> fdev;
  ASSERT_TRUE(
      FileBlockDevice::Open(dev_path, FileDeviceOptions{}, &fdev).ok());
  RTree<2> reopened(fdev.get());
  ASSERT_TRUE(AttachTree(fdev.get(), &reopened).ok());
  Rng rng(17);
  for (int q = 0; q < 10; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    EXPECT_EQ(SortedIds(reopened.QueryToVector(w)),
              SortedIds(tree.QueryToVector(w)));
  }
  std::remove(dev_path.c_str());
}

}  // namespace
}  // namespace prtree
