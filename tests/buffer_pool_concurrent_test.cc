// Pin semantics and concurrency of the sharded BufferPool.
//
// The single-threaded protocol tests live in io_test.cc; this suite covers
// what the pin-based refactor added: frames survive eviction pressure and
// Invalidate while pinned, pages spread over shards, capacity-0 pools still
// pin correctly, and — the contract the concurrent query engine rests on —
// many threads can query one shared tree through one shared pool and get
// exactly the single-threaded answers and statistics.  CI runs this suite
// under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "core/prtree.h"
#include "io/block_device.h"
#include "io/buffer_pool.h"
#include "rtree/knn.h"
#include "tests/test_util.h"
#include "util/parallel.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

std::vector<PageId> AllocatePattern(BlockDevice* dev, int n) {
  std::vector<PageId> pages;
  for (int i = 0; i < n; ++i) {
    PageId p = dev->Allocate();
    std::vector<std::byte> block(dev->block_size());
    std::memset(block.data(), 0x10 + i, block.size());
    EXPECT_TRUE(dev->Write(p, block.data()).ok());
    pages.push_back(p);
  }
  return pages;
}

TEST(BufferPoolPinTest, EvictionRefusesPinnedFrames) {
  MemoryBlockDevice dev(256);
  auto pages = AllocatePattern(&dev, 4);
  BufferPool pool(&dev, 2, /*num_shards=*/1);

  // Pin the pool full.
  PageGuard g0, g1;
  ASSERT_TRUE(pool.Pin(pages[0], &g0).ok());
  ASSERT_TRUE(pool.Pin(pages[1], &g1).ok());
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.pinned(), 2u);

  // A miss with every frame pinned must not evict: the caller gets a
  // private copy and the cache keeps serving the pinned pages.
  PageGuard g2;
  ASSERT_TRUE(pool.Pin(pages[2], &g2).ok());
  EXPECT_EQ(g2.data()[0], std::byte{0x12});
  EXPECT_EQ(pool.size(), 2u);  // pages[2] was refused caching
  EXPECT_EQ(g0.data()[0], std::byte{0x10});  // pinned bytes untouched
  EXPECT_EQ(g1.data()[0], std::byte{0x11});
  {
    PageGuard h;
    ASSERT_TRUE(pool.Pin(pages[0], &h).ok());  // still a hit
  }
  EXPECT_EQ(pool.hits(), 1u);

  // Once a pin drops, eviction works again and new pages cache normally.
  g0.Release();
  PageGuard g3;
  ASSERT_TRUE(pool.Pin(pages[3], &g3).ok());
  EXPECT_EQ(pool.size(), 2u);  // pages[0] evicted, pages[3] cached
  {
    PageGuard h;
    ASSERT_TRUE(pool.Pin(pages[3], &h).ok());
    EXPECT_EQ(h.data()[0], std::byte{0x13});
  }
  EXPECT_EQ(pool.hits(), 2u);
}

TEST(BufferPoolPinTest, InvalidateOfPinnedPageDefersTheFree) {
  MemoryBlockDevice dev(256);
  auto pages = AllocatePattern(&dev, 1);
  BufferPool pool(&dev, 4);

  PageGuard g;
  ASSERT_TRUE(pool.Pin(pages[0], &g).ok());
  const std::byte* old_bytes = g.data();

  // Overwrite on the device and invalidate while the guard is live.
  std::vector<std::byte> block(256);
  std::memset(block.data(), 0x77, 256);
  ASSERT_TRUE(dev.Write(pages[0], block.data()).ok());
  pool.Invalidate(pages[0]);

  // The guard still reads the pre-update bytes from the detached frame.
  EXPECT_EQ(old_bytes[0], std::byte{0x10});
  EXPECT_EQ(pool.size(), 0u);    // no longer cached
  EXPECT_EQ(pool.pinned(), 1u);  // but still alive

  // A fresh pin re-reads the device and sees the new bytes.
  {
    PageGuard fresh;
    ASSERT_TRUE(pool.Pin(pages[0], &fresh).ok());
    EXPECT_EQ(fresh.data()[0], std::byte{0x77});
  }

  // Dropping the last pin frees the detached frame.
  g.Release();
  EXPECT_EQ(pool.pinned(), 0u);
}

TEST(BufferPoolPinTest, ClearDetachesPinnedFrames) {
  MemoryBlockDevice dev(256);
  auto pages = AllocatePattern(&dev, 3);
  BufferPool pool(&dev, 4);
  PageGuard keep;
  ASSERT_TRUE(pool.Pin(pages[0], &keep).ok());
  for (int i = 1; i < 3; ++i) {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(pages[i], &g).ok());
  }
  EXPECT_EQ(pool.size(), 3u);
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.pinned(), 1u);
  EXPECT_EQ(keep.data()[0], std::byte{0x10});  // survives the Clear
  keep.Release();
  EXPECT_EQ(pool.pinned(), 0u);
}

TEST(BufferPoolPinTest, PagesSpreadAcrossShards) {
  MemoryBlockDevice dev(256);
  const int kPages = 64;
  auto pages = AllocatePattern(&dev, kPages);
  BufferPool pool(&dev, kPages, /*num_shards=*/8);
  ASSERT_EQ(pool.num_shards(), 8u);
  for (PageId p : pages) {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(p, &g).ok());
  }
  EXPECT_EQ(pool.size(), static_cast<size_t>(kPages));
  // Sequential PageIds round-robin over shards (shard = page % num_shards),
  // so every shard holds exactly kPages / 8 frames and none overflows its
  // slice of the capacity: re-pinning everything is all hits.
  pool.ResetCounters();
  for (PageId p : pages) {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(p, &g).ok());
  }
  EXPECT_EQ(pool.hits(), static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPoolPinTest, ShardCountClampedToCapacity) {
  MemoryBlockDevice dev(256);
  BufferPool small(&dev, 2, /*num_shards=*/16);
  EXPECT_EQ(small.num_shards(), 2u);  // every shard can hold a frame
  BufferPool uncached(&dev, 0);
  EXPECT_EQ(uncached.num_shards(), 1u);
}

TEST(BufferPoolPinTest, GuardMoveTransfersThePin) {
  MemoryBlockDevice dev(256);
  auto pages = AllocatePattern(&dev, 1);
  BufferPool pool(&dev, 2);
  PageGuard a;
  ASSERT_TRUE(pool.Pin(pages[0], &a).ok());
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): documented
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.pinned(), 1u);
  b.Release();
  EXPECT_EQ(pool.pinned(), 0u);
}

// The TSan-exercised smoke test of the tentpole contract: >= 4 threads
// hammer one shared PR-tree through one shared pool; results and stats must
// be exactly the single-threaded ones.
TEST(ConcurrentQueryTest, ManyThreadsOneTreeExactResults) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(20000, 91);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));

  // A pool deliberately smaller than the tree so eviction runs hot under
  // concurrency, with the internal nodes warmed per §3.3.
  TreeStats ts = tree.ComputeStats();
  BufferPool pool(&dev, ts.num_nodes / 2 + 8);
  tree.CacheInternalNodes(&pool);

  Rng rng(17);
  const int kQueries = 64;
  std::vector<Rect2> windows;
  for (int q = 0; q < kQueries; ++q) {
    windows.push_back(RandomWindow<2>(&rng, 0.15));
  }

  // Single-threaded reference.
  std::vector<std::vector<DataId>> expect(kQueries);
  QueryStats reference;
  for (int q = 0; q < kQueries; ++q) {
    expect[q] = SortedIds(tree.QueryToVector(windows[q], &pool));
    reference += tree.Query(windows[q], [](const Record2&) {}, &pool);
  }

  const int kThreads = 8;
  const int kRounds = 4;  // every thread answers every query, repeatedly
  std::vector<QueryStats> per_thread(kThreads);
  std::atomic<int> mismatches{0};
  ParallelForChunks(0, kThreads, kThreads, [&](int t, size_t, size_t) {
    QueryStats local;
    for (int round = 0; round < kRounds; ++round) {
      for (int q = 0; q < kQueries; ++q) {
        auto got = SortedIds(tree.QueryToVector(windows[q], &pool));
        if (got != expect[q]) mismatches.fetch_add(1);
        local += tree.Query(windows[q], [](const Record2&) {}, &pool);
      }
    }
    per_thread[t] = local;
  });

  EXPECT_EQ(mismatches.load(), 0);
  QueryStats sum;
  for (const auto& qs : per_thread) sum += qs;
  // Traversal is deterministic, so kThreads * kRounds times the reference.
  const uint64_t factor = kThreads * kRounds;
  EXPECT_EQ(sum.nodes_visited, factor * reference.nodes_visited);
  EXPECT_EQ(sum.internal_visited, factor * reference.internal_visited);
  EXPECT_EQ(sum.leaves_visited, factor * reference.leaves_visited);
  EXPECT_EQ(sum.results, factor * reference.results);
  EXPECT_EQ(pool.pinned(), 0u);
}

// Prefetch vs Pin vs Invalidate vs Clear vs eviction pressure, all at
// once, on a pool deliberately far smaller than the page set.  The
// invariants under fire (TSan runs this suite): pinned bytes never change
// or vanish, eviction/staging never exceeds capacity, a prefetched frame
// is indistinguishable from a demand-cached one, and no frame leaks
// (pinned() == 0 at the end).
TEST(ConcurrentPrefetchTest, PrefetchRacesPinInvalidateAndEviction) {
  MemoryBlockDevice dev(256);
  const int kPages = 96;
  auto pages = AllocatePattern(&dev, kPages);
  BufferPool pool(&dev, 12, /*num_shards=*/4);  // hot eviction guaranteed

  const int kThreads = 8;
  const int kRounds = 200;
  std::atomic<int> byte_errors{0};
  ParallelForChunks(0, kThreads, kThreads, [&](int t, size_t, size_t) {
    Rng rng(1000 + t);
    std::vector<PageId> frontier;
    for (int round = 0; round < kRounds; ++round) {
      switch (t % 4) {
        case 0:  // prefetcher: random frontiers, overlapping other threads'
        case 1: {
          frontier.clear();
          for (int i = 0; i < 8; ++i) {
            frontier.push_back(
                pages[rng.UniformInt(0, kPages - 1)]);
          }
          pool.Prefetch(std::span<const PageId>(frontier));
          break;
        }
        case 2: {  // pinner: every pinned frame must hold its pattern byte
          PageId p = pages[rng.UniformInt(0, kPages - 1)];
          PageGuard g;
          if (pool.Pin(p, &g).ok()) {
            size_t index = static_cast<size_t>(p - pages[0]);
            if (g.data()[0] != static_cast<std::byte>(0x10 + index)) {
              byte_errors.fetch_add(1);
            }
          }
          break;
        }
        default: {  // invalidator/clearer
          if (round % 32 == 31) {
            pool.Clear();
          } else {
            pool.Invalidate(pages[rng.UniformInt(0, kPages - 1)]);
          }
          break;
        }
      }
    }
  });

  EXPECT_EQ(byte_errors.load(), 0);
  EXPECT_LE(pool.size(), 12u);
  EXPECT_EQ(pool.pinned(), 0u);
  // Sanity on the counters: everything staged was really staged, uses are
  // a subset of stages.
  EXPECT_LE(pool.prefetch_useful(), pool.prefetch_staged());
}

// Concurrent queries over one shared readahead pool must stay exact: the
// prefetch path may only change which reads are speculative, never the
// answers or the traversal counters.
TEST(ConcurrentPrefetchTest, ReadaheadQueriesStayExactUnderConcurrency) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(20000, 95);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  TreeStats ts = tree.ComputeStats();
  BufferPool pool(&dev, ts.num_nodes / 2 + 8);
  pool.set_readahead(true);

  Rng rng(23);
  const int kQueries = 32;
  std::vector<Rect2> windows;
  for (int q = 0; q < kQueries; ++q) {
    windows.push_back(RandomWindow<2>(&rng, 0.15));
  }
  std::vector<std::vector<DataId>> expect(kQueries);
  QueryStats reference;
  for (int q = 0; q < kQueries; ++q) {
    expect[q] = SortedIds(tree.QueryToVector(windows[q]));  // pool-less
    reference += tree.Query(windows[q], [](const Record2&) {});
  }

  const int kThreads = 8;
  std::vector<QueryStats> per_thread(kThreads);
  std::atomic<int> mismatches{0};
  ParallelForChunks(0, kThreads, kThreads, [&](int t, size_t, size_t) {
    QueryStats local;
    for (int q = 0; q < kQueries; ++q) {
      auto got = SortedIds(tree.QueryToVector(windows[q], &pool));
      if (got != expect[q]) mismatches.fetch_add(1);
      local += tree.Query(windows[q], [](const Record2&) {}, &pool);
    }
    per_thread[t] = local;
  });

  EXPECT_EQ(mismatches.load(), 0);
  QueryStats sum;
  for (const auto& qs : per_thread) sum += qs;
  EXPECT_EQ(sum.leaves_visited, kThreads * reference.leaves_visited);
  EXPECT_EQ(sum.results, kThreads * reference.results);
  EXPECT_EQ(pool.pinned(), 0u);
}

// Mixed window + kNN traffic through a shared capacity-0 pool: the
// always-miss path must also be safe under concurrency (it exercises the
// guard-owned copy branch on every access).
TEST(ConcurrentQueryTest, UncachedPoolServesConcurrentMixedQueries) {
  MemoryBlockDevice dev(512);
  auto data = RandomRects<2>(5000, 93);
  RTree<2> tree(&dev);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  BufferPool pool(&dev, 0);

  auto expect_window = SortedIds(tree.QueryToVector(MakeRect(0.2, 0.2,
                                                             0.6, 0.6)));
  auto expect_knn = KnnSearch<2>(tree, {0.5, 0.5}, 10);

  std::atomic<int> mismatches{0};
  ParallelFor(0, 8, 4, [&](size_t i) {
    if (i % 2 == 0) {
      auto got =
          SortedIds(tree.QueryToVector(MakeRect(0.2, 0.2, 0.6, 0.6), &pool));
      if (got != expect_window) mismatches.fetch_add(1);
    } else {
      auto got = KnnSearch<2>(tree, {0.5, 0.5}, 10, nullptr, &pool);
      if (got.size() != expect_knn.size()) {
        mismatches.fetch_add(1);
      } else {
        for (size_t k = 0; k < got.size(); ++k) {
          if (got[k].record.id != expect_knn[k].record.id) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pool.size(), 0u);
}

}  // namespace
}  // namespace prtree
